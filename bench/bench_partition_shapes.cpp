// Partition-shape sweep: streams the same SBM + BFS workload through every
// partition shape (row stripes, column stripes, 2-D tiles, each with and
// without load-adaptive rebalancing) on 4 workers, crossed with the IO-side
// configurations that motivate them — north/south IO spreads injection
// across columns (hot border *rows*), west/east IO funnels it through two
// border columns (hot *columns*, and row stripes put every IO cell into
// just two partitions). Checks the determinism contract (identical
// simulated cycles and energy vs the serial engine) on every row, so the
// only number that may vary per shape is host wall-clock.
//
// Speedup is bounded by the host cores actually available — on a 1-core
// machine every row measures partition bookkeeping, not scaling.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

using namespace ccastream;

struct IoCase {
  const char* label;
  std::uint8_t sides;
};

struct Measurement {
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  double wall_ms = 0.0;
  std::uint32_t parts = 1;
  std::uint64_t rebalances = 0;
};

Measurement run_once(std::uint32_t dim, std::uint8_t io_sides,
                     std::uint32_t threads, const char* partition,
                     std::uint64_t vertices, std::uint64_t edges) {
  sim::ChipConfig cfg = bench::paper_chip_config();
  cfg.width = dim;
  cfg.height = dim;
  cfg.io_sides = io_sides;
  cfg.threads = threads;
  cfg.partition = *sim::PartitionSpec::parse(partition);

  auto e = bench::make_experiment(cfg, vertices, /*with_bfs=*/true,
                                  /*bfs_source=*/0);
  const auto sched = wl::make_graphchallenge_like(
      vertices, edges, wl::SamplingKind::kEdge, /*increments=*/4, /*seed=*/42);

  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = bench::run_schedule(e, sched);
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.cycles = bench::total_cycles(reports);
  m.energy_uj = bench::total_energy_uj(reports);
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.parts = e.chip->partitions();
  m.rebalances = e.chip->partition_rebalances();
  return m;
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  bench::JsonReporter reporter("partition_shapes");

  const std::uint32_t dim = scale == bench::Scale::kTiny ? 16 : 32;
  const std::uint64_t verts_per_cell = scale == bench::Scale::kTiny ? 2 : 8;
  const std::uint64_t degree = scale == bench::Scale::kTiny ? 8 : 16;
  const std::uint64_t vertices = verts_per_cell * dim * dim;
  const std::uint64_t edges = degree * vertices;
  constexpr std::uint32_t kThreads = 4;

  const IoCase io_cases[] = {
      {"IoNS", static_cast<std::uint8_t>(sim::kIoNorth | sim::kIoSouth)},
      {"IoWE", static_cast<std::uint8_t>(sim::kIoWest | sim::kIoEast)},
      {"IoNSWE", static_cast<std::uint8_t>(sim::kIoNorth | sim::kIoSouth |
                                           sim::kIoWest | sim::kIoEast)},
  };
  const char* shapes[] = {"rows",           "cols",
                          "tiles",          "rows+rebalance",
                          "cols+rebalance", "tiles+rebalance"};

  for (const IoCase& io : io_cases) {
    bench::print_header(
        (std::string("Partition shapes — ") + io.label + ", " +
         std::to_string(dim) + "x" + std::to_string(dim) + " mesh, " +
         std::to_string(vertices) + " vertices, " + std::to_string(edges) +
         " edges (SBM + streaming BFS, " + std::to_string(kThreads) +
         " workers vs serial)")
            .c_str());
    std::printf("%-18s %6s %8s %14s %12s %10s %10s\n", "Partition", "Parts",
                "Rebal", "SimCycles", "Energy µJ", "Wall ms", "Identical");

    const Measurement serial =
        run_once(dim, io.sides, /*threads=*/1, "rows", vertices, edges);
    std::printf("%-18s %6u %8lu %14lu %12.1f %10.1f %10s\n", "serial", 1u,
                0ul, static_cast<unsigned long>(serial.cycles),
                serial.energy_uj, serial.wall_ms, "-");

    for (const char* shape : shapes) {
      const Measurement m =
          run_once(dim, io.sides, kThreads, shape, vertices, edges);
      const bool identical =
          m.cycles == serial.cycles && m.energy_uj == serial.energy_uj;
      std::printf("%-18s %6u %8lu %14lu %12.1f %10.1f %10s\n", shape, m.parts,
                  static_cast<unsigned long>(m.rebalances),
                  static_cast<unsigned long>(m.cycles), m.energy_uj, m.wall_ms,
                  identical ? "yes" : "NO!");
      if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: partition %s diverged from "
                     "serial under %s\n",
                     shape, io.label);
        return 1;
      }
      // wall_ms persists into BENCH_*.json so shape overhead/speedup per IO
      // config is trackable across PRs (cycles/energy are shape-invariant
      // by design).
      reporter.record(std::string(io.label) + "/" + shape, m.cycles,
                      m.energy_uj, kThreads, m.wall_ms, shape);
    }
  }
  return 0;
}
