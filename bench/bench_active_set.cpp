// Active-set (event-driven) engine sweep: the same streaming-BFS workloads
// through the full-scan oracle and the active-set engine, side by side.
//
// The headline scenario is the sparse frontier the refactor exists for: a
// long path graph on a 64x64 mesh, where the BFS wave touches a handful of
// cells per cycle while the scan engine dutifully walks all 4096 three
// times a cycle. A dense SBM ingest rides along as the contrast case (a
// saturated mesh leaves little for the active set to skip) — it is where
// the dense/sparse hybrid has to prove the active engine never costs
// meaningfully more than the scan it replaced as the default.
//
// Every row doubles as a correctness gate: simulated cycles, the complete
// ChipStats block, and energy must be bit-identical across engines; the
// sparse 64x64 row must show at least a 5x reduction in cell visits per
// cycle; the dense SBM row must keep hybrid visits within 1.1x of the scan
// engine's; and after an idle settle the shrink policy must have decayed
// the active-set capacity below its in-run peak. All of it is tracked in
// BENCH_active.json (records carry "engine", "cell_visits", "dense_pct",
// "cap_peak", and "cap_end" fields).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

using namespace ccastream;

struct Scenario {
  std::string label;
  std::uint32_t dim = 64;
  std::uint64_t vertices = 0;
  wl::StreamSchedule sched;
  bool sparse = false;  ///< subject to the >=5x visit-reduction gate
};

/// A path graph 0-1-2-…-(len-1): the sparsest possible BFS frontier (one
/// wavefront vertex at a time once ingestion settles).
Scenario make_sparse_path(std::uint32_t dim, std::uint64_t len) {
  Scenario s;
  s.label = std::to_string(dim) + "x" + std::to_string(dim) + "/path" +
            std::to_string(len);
  s.dim = dim;
  s.vertices = len;
  s.sparse = true;
  std::vector<StreamEdge> edges;
  edges.reserve(len - 1);
  for (std::uint64_t i = 0; i + 1 < len; ++i) {
    edges.push_back({i, i + 1, 1});
  }
  s.sched.increments.push_back(std::move(edges));
  return s;
}

/// The contrast case: a bulk SBM ingest that keeps most of the mesh busy.
Scenario make_dense_sbm(std::uint32_t dim, std::uint64_t vertices,
                        std::uint64_t edges) {
  Scenario s;
  s.label = std::to_string(dim) + "x" + std::to_string(dim) + "/sbm" +
            std::to_string(vertices);
  s.dim = dim;
  s.vertices = vertices;
  s.sched = wl::make_graphchallenge_like(vertices, edges,
                                         wl::SamplingKind::kEdge,
                                         /*increments=*/4, /*seed=*/42);
  return s;
}

struct Measurement {
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  double wall_ms = 0.0;
  std::uint64_t cell_visits = 0;
  std::uint64_t threads = 1;
  std::string partition;
  sim::ChipStats stats;
  // Hybrid metrics (active engine only; zero under scan).
  std::uint32_t dense_pct = 0;
  std::uint64_t dense_cycles = 0;
  std::uint64_t cap_peak = 0;
  std::uint64_t cap_end = 0;
};

Measurement run_once(const Scenario& sc, sim::EngineKind engine) {
  sim::ChipConfig cfg = bench::paper_chip_config();
  cfg.width = sc.dim;
  cfg.height = sc.dim;
  cfg.engine = engine;

  auto e = bench::make_experiment(cfg, sc.vertices, /*with_bfs=*/true,
                                  /*bfs_source=*/0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = bench::run_schedule(e, sc.sched);
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.cycles = bench::total_cycles(reports);
  m.energy_uj = bench::total_energy_uj(reports);
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.cell_visits = e.chip->cell_visits();
  m.threads = e.chip->threads();
  m.partition = e.chip->partition_spec().to_string();
  m.stats = e.chip->stats();

  if (engine == sim::EngineKind::kActive) {
    m.dense_pct = e.chip->dense_threshold_pct();
    m.dense_cycles = e.chip->hybrid_dense_cycles();
    m.cap_peak = e.chip->active_set_capacity_peak();
    // The shrink-policy proof: idle cycles after the burst (the comparison
    // stats above are already captured, so the extra simulated cycles
    // cannot skew the determinism gate) let sustained low occupancy decay
    // the active-set vectors, and the end capacity must come back below
    // the in-run peak whenever a meaningful peak built up.
    for (int i = 0; i < 160; ++i) e.chip->step();
    m.cap_end = e.chip->active_set_capacity();
  }
  return m;
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  bench::JsonReporter reporter("active_set");

  // The sparse scenario stays on the 64x64 mesh at every scale — the mesh
  // size *is* the point (it is what the scan engine's cost scales with);
  // only the path length grows.
  const std::uint64_t path_len = scale == bench::Scale::kTiny ? 256
                                 : scale == bench::Scale::kPaper ? 1024
                                                                 : 4096;
  const std::uint64_t sbm_vertices =
      scale == bench::Scale::kTiny ? 1'024 : 8'192;

  Scenario scenarios[] = {
      make_sparse_path(64, path_len),
      make_dense_sbm(scale == bench::Scale::kTiny ? 32 : 64, sbm_vertices,
                     8 * sbm_vertices),
  };

  bench::print_header(
      (std::string("Active-set engine vs full scan (streaming BFS, scale ") +
       bench::to_string(scale) + ")")
          .c_str());
  std::printf("%-16s %-8s %12s %16s %14s %10s %10s\n", "Dataset", "Engine",
              "SimCycles", "CellVisits", "Visits/cycle", "Wall ms",
              "Identical");

  bool ok = true;
  for (const Scenario& sc : scenarios) {
    const Measurement scan = run_once(sc, sim::EngineKind::kScan);
    const Measurement active = run_once(sc, sim::EngineKind::kActive);

    const bool identical = active.cycles == scan.cycles &&
                           active.stats == scan.stats &&
                           active.energy_uj == scan.energy_uj;
    const auto per_cycle = [](const Measurement& m) {
      return m.cycles == 0 ? 0.0
                           : static_cast<double>(m.cell_visits) /
                                 static_cast<double>(m.cycles);
    };
    std::printf("%-16s %-8s %12lu %16lu %14.1f %10.1f %10s\n",
                sc.label.c_str(), "scan",
                static_cast<unsigned long>(scan.cycles),
                static_cast<unsigned long>(scan.cell_visits), per_cycle(scan),
                scan.wall_ms, "-");
    std::printf("%-16s %-8s %12lu %16lu %14.1f %10.1f %10s\n",
                sc.label.c_str(), "active",
                static_cast<unsigned long>(active.cycles),
                static_cast<unsigned long>(active.cell_visits),
                per_cycle(active), active.wall_ms, identical ? "yes" : "NO!");
    if (!identical) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: active engine diverged from scan "
                   "on %s\n",
                   sc.label.c_str());
      ok = false;
      continue;
    }

    const double ratio = active.cell_visits == 0
                             ? 0.0
                             : static_cast<double>(scan.cell_visits) /
                                   static_cast<double>(active.cell_visits);
    std::printf("%-16s visit reduction: %.1fx%s\n", sc.label.c_str(), ratio,
                sc.sparse ? " (target >= 5x)" : " (dense gate <= 1.1x scan)");
    if (sc.sparse && ratio < 5.0) {
      std::fprintf(stderr,
                   "TARGET MISSED: %.1fx < 5x visit reduction on the sparse "
                   "frontier scenario %s\n",
                   ratio, sc.label.c_str());
      ok = false;
    }
    // The dense-regime gate that made the hybrid safe to promote to the
    // default: on the saturated contrast dataset, the active engine must
    // not do meaningfully more host work than the scan engine it replaced.
    if (!sc.sparse &&
        static_cast<double>(active.cell_visits) >
            1.1 * static_cast<double>(scan.cell_visits)) {
      std::fprintf(stderr,
                   "DENSE GATE MISSED: hybrid visits %lu > 1.1x scan visits "
                   "%lu on %s\n",
                   static_cast<unsigned long>(active.cell_visits),
                   static_cast<unsigned long>(scan.cell_visits),
                   sc.label.c_str());
      ok = false;
    }
    std::printf(
        "%-16s hybrid: dense-pct %u, %lu dense partition-cycles, "
        "active-set capacity peak %lu -> %lu entries after idle settle\n",
        sc.label.c_str(), active.dense_pct,
        static_cast<unsigned long>(active.dense_cycles),
        static_cast<unsigned long>(active.cap_peak),
        static_cast<unsigned long>(active.cap_end));
    // The shrink-policy gate: whenever a run built up a real capacity peak,
    // the idle settle must have decayed it (the active-set vectors never
    // shrink on their own — this is what bounds memory after a dense
    // burst). "Real" scales with the partition count: each partition may
    // legitimately retain up to 2 vectors × 2 × the 64-entry shrink floor,
    // below which nothing is shrink-eligible and cap_end == cap_peak is
    // correct behaviour.
    const std::uint64_t shrinkable_floor = active.threads * 2 * 2 * 64;
    if (active.cap_peak > shrinkable_floor &&
        active.cap_end >= active.cap_peak) {
      std::fprintf(stderr,
                   "SHRINK GATE MISSED: capacity %lu did not drop below its "
                   "peak %lu on %s\n",
                   static_cast<unsigned long>(active.cap_end),
                   static_cast<unsigned long>(active.cap_peak),
                   sc.label.c_str());
      ok = false;
    }

    reporter.record(sc.label, scan.cycles, scan.energy_uj, scan.threads,
                    scan.wall_ms, scan.partition, "scan", scan.cell_visits);
    bench::BenchRecord rec;
    rec.dataset = sc.label;
    rec.cycles = active.cycles;
    rec.energy_uj = active.energy_uj;
    rec.threads = active.threads;
    rec.wall_ms = active.wall_ms;
    rec.partition = active.partition;
    rec.engine = "active";
    rec.cell_visits = active.cell_visits;
    rec.dense_pct = active.dense_pct;
    rec.cap_peak = active.cap_peak;
    rec.cap_end = active.cap_end;
    reporter.record(rec);
  }
  return ok ? 0 : 1;
}
