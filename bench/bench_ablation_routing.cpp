// Ablation: routing policy (the paper fixes YX dimension-ordered routing;
// DESIGN.md calls out the policy as a design choice worth isolating). Runs
// the same streaming-BFS workload under YX, XY and West-First adaptive
// routing.
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

int main() {
  const auto scale = bench::scale_from_env();
  const auto ds = bench::datasets(scale).front();
  const bench::JsonReporter reporter("bench_ablation_routing");
  bench::print_header("Ablation: mesh routing policy (ingestion+BFS)");
  std::printf("%-12s %12s %12s %12s %12s\n", "Routing", "Cycles", "Energy µJ",
              "MeanLat", "Stalls");

  const auto sched = wl::make_graphchallenge_like(
      ds.vertices, ds.edges, wl::SamplingKind::kEdge, 10, 42);

  for (const auto routing :
       {sim::RoutingPolicyKind::kYX, sim::RoutingPolicyKind::kXY,
        sim::RoutingPolicyKind::kWestFirst, sim::RoutingPolicyKind::kOddEven}) {
    auto cfg = bench::paper_chip_config();
    cfg.routing = routing;
    auto e = bench::make_experiment(cfg, ds.vertices, /*with_bfs=*/true, 0);
    const auto reports = bench::run_schedule(e, sched);
    if (routing == sim::RoutingPolicyKind::kYX) {
      // Headline record: the paper's YX dimension-ordered routing.
      reporter.record(ds.label, bench::total_cycles(reports),
                      bench::total_energy_uj(reports), e.chip->threads());
    }
    std::printf("%-12s %12lu %12.0f %12.1f %12lu\n",
                std::string(sim::to_string(routing)).c_str(),
                bench::total_cycles(reports), bench::total_energy_uj(reports),
                e.chip->stats().mean_delivery_latency(),
                e.chip->stats().stage_stalls);
  }
  std::printf(
      "\nAll policies are minimal, so hop counts match; differences come from\n"
      "congestion spreading (adaptive West-First can shave stalls under load).\n");
  return 0;
}
