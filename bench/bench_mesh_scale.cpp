// Mesh-scale sweep: streaming BFS over windowed increments on square
// meshes far beyond the paper's 32x32 chip — 256x256 and 512x512 at the
// default scale (128x128 at tiny, 1024x1024 = a million cells behind
// CCASTREAM_STRESS=1) — recording cell visits, wall-clock, and peak RSS.
// This is the bench the struct-of-arrays cell refactor answers to: at
// ~10^5-10^6 cells the engine's dense-mode walks and idle sweeps are
// memory-bound on per-cell state, so layout changes show up here as
// wall-clock per cell-visit (the visit totals themselves are pinned by
// the determinism invariant) and as resident bytes per cell.
//
// Gates (enforced wherever a baseline row exists for the mesh side):
//   - wall-clock per cell-visit must beat the committed pre-refactor
//     (array-of-structs ComputeCell) baseline, and
//   - peak resident bytes per cell must drop vs the same baseline
//     (slab FIFOs + SoA hot words replace per-cell heap containers).
//
// Pre-refactor baselines (array-of-structs ComputeCell with per-cell heap
// containers), measured on the 1-core dev container (Release, serial,
// rows, active engine) at commit a0f405b:
//   256x256: 19374.5 ms wall / 285313968 visits = 67.91 ns/visit,
//            343.6 MiB peak RSS = 5498 B/cell
//   512x512: 236321.6 ms wall / 2404071026 visits = 98.30 ns/visit,
//            1372.6 MiB peak RSS = 5490 B/cell
// The visit totals are engine-deterministic (identical before and after
// the layout change), so the gates below compare the SoA layout's
// wall-clock-per-visit and resident-bytes-per-cell directly against those
// measured AoS numbers.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

using namespace ccastream;

/// Pre-refactor reference points for one mesh side; `per_visit_ns` is the
/// wall-clock-per-visit gate ceiling and `bytes_per_cell` the peak-RSS
/// gate ceiling. Sides without a row (128, 1024) run ungated.
struct Baseline {
  double per_visit_ns = 0.0;
  double bytes_per_cell = 0.0;
};

std::optional<Baseline> baseline_for(std::uint32_t side) {
  // Ceilings: the measured pre-refactor per-visit wall-clock and
  // bytes-per-cell (header comment above) — the SoA layout must beat the
  // AoS layout outright on both axes.
  if (side == 256) return Baseline{67.91, 5498.0};
  if (side == 512) return Baseline{98.30, 5490.0};
  return std::nullopt;
}

struct Scenario {
  std::uint32_t side = 0;
  std::uint64_t vertices = 0;
  wl::StreamSchedule sched;
};

/// A windowed ingest sized to the mesh: one vertex per cell and 2x edges,
/// streamed in 3 increments under a 2-increment window, so the final
/// increment carries the first increment's expirations through the
/// deletion-repair path while BFS keeps settling new arrivals.
Scenario make_scenario(std::uint32_t side) {
  Scenario s;
  s.side = side;
  s.vertices = static_cast<std::uint64_t>(side) * side;
  const auto arrivals = wl::make_graphchallenge_like(
      s.vertices, 2 * s.vertices, wl::SamplingKind::kEdge,
      /*increments=*/3, /*seed=*/42);
  s.sched = wl::apply_sliding_window(arrivals, /*window=*/2,
                                     /*drain=*/false);
  return s;
}

struct Measurement {
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  double wall_ms = 0.0;
  std::uint64_t cell_visits = 0;
  std::uint64_t threads = 1;
  std::string partition;
  std::uint64_t rss_kb = 0;
  std::uint32_t dense_pct = 0;
  std::uint64_t cap_peak = 0;
  std::uint64_t cap_end = 0;
};

Measurement run_once(const Scenario& sc) {
  sim::ChipConfig cfg = bench::paper_chip_config();
  cfg.width = sc.side;
  cfg.height = sc.side;
  cfg.engine = sim::EngineKind::kActive;

  auto e = bench::make_experiment(cfg, sc.vertices, bench::AppKind::kBfs,
                                  /*source=*/0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = bench::run_schedule(e, sc.sched);
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.cycles = bench::total_cycles(reports);
  m.energy_uj = bench::total_energy_uj(reports);
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.cell_visits = e.chip->cell_visits();
  m.threads = e.chip->threads();
  m.partition = e.chip->partition_spec().to_string();
  m.dense_pct = e.chip->dense_threshold_pct();
  m.cap_peak = e.chip->active_set_capacity_peak();
  m.cap_end = e.chip->active_set_capacity();
  // Sampled while the chip is still alive, so the per-cell state it owns
  // is resident. Scenarios run in ascending size, keeping the lifetime
  // high-water mark equal to the current mesh's peak (see peak_rss_kb).
  m.rss_kb = bench::peak_rss_kb();
  return m;
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  bench::JsonReporter reporter("mesh_scale");

  std::vector<std::uint32_t> sides;
  switch (scale) {
    case bench::Scale::kTiny:
      sides = {128};
      break;
    case bench::Scale::kPaper:
    case bench::Scale::kLarge:
      sides = {256, 512};
      break;
  }
  const char* stress = std::getenv("CCASTREAM_STRESS");
  if (stress != nullptr && std::strcmp(stress, "1") == 0) {
    sides.push_back(1024);  // the million-cell mesh
  }
  // CCASTREAM_MESH_MAX caps the mesh side (after scale/stress selection):
  // CI's Release perf-smoke leg gates the 256x256 run on every push
  // without paying the minutes-long 512x512 leg. Unparsable or zero
  // values are ignored, like every other knob.
  if (const char* cap_env = std::getenv("CCASTREAM_MESH_MAX")) {
    const unsigned long cap = std::strtoul(cap_env, nullptr, 10);
    if (cap > 0) {
      std::erase_if(sides, [cap](std::uint32_t s) { return s > cap; });
    }
  }

  bench::print_header(
      (std::string("Mesh scale: windowed streaming BFS, active engine "
                   "(scale ") +
       bench::to_string(scale) + ")")
          .c_str());
  std::printf("%-10s %10s %12s %14s %10s %10s %10s %10s\n", "Mesh",
              "Vertices", "SimCycles", "CellVisits", "Wall ms", "ns/visit",
              "RSS MiB", "B/cell");

  // CCASTREAM_BENCH_REPS: repetitions per scenario, keeping the
  // best (minimum) wall-clock — the classic defense against host noise
  // for wall-clock gates. Simulated results are rep-invariant by the
  // determinism invariant; only wall-clock varies. Default 1; CI's
  // perf-smoke leg uses 3.
  std::uint32_t reps = 1;
  if (const char* reps_env = std::getenv("CCASTREAM_BENCH_REPS")) {
    const unsigned long parsed = std::strtoul(reps_env, nullptr, 10);
    if (parsed > 0 && parsed <= 100) reps = static_cast<std::uint32_t>(parsed);
  }

  bool ok = true;
  for (const std::uint32_t side : sides) {
    const Scenario sc = make_scenario(side);
    Measurement m = run_once(sc);
    for (std::uint32_t rep = 1; rep < reps; ++rep) {
      const Measurement again = run_once(sc);
      const double best_wall = m.wall_ms;
      // peak_rss_kb is the process-lifetime high water, so the latest
      // sample is the honest (monotone) one regardless of which rep wins
      // on wall-clock.
      m = again;
      m.wall_ms = std::min(m.wall_ms, best_wall);
    }
    const std::uint64_t cells = static_cast<std::uint64_t>(side) * side;
    const double per_visit_ns =
        m.cell_visits != 0 ? m.wall_ms * 1e6 / static_cast<double>(m.cell_visits)
                           : 0.0;
    const double bytes_per_cell =
        static_cast<double>(m.rss_kb) * 1024.0 / static_cast<double>(cells);
    const std::string label = "mesh" + std::to_string(side);

    std::printf("%-10s %10lu %12lu %14lu %10.1f %10.2f %10.1f %10.0f\n",
                label.c_str(), static_cast<unsigned long>(sc.vertices),
                static_cast<unsigned long>(m.cycles),
                static_cast<unsigned long>(m.cell_visits), m.wall_ms,
                per_visit_ns,
                static_cast<double>(m.rss_kb) / 1024.0, bytes_per_cell);

    if (const auto base = baseline_for(side)) {
      if (base->per_visit_ns > 0.0 && per_visit_ns >= base->per_visit_ns) {
        std::fprintf(stderr,
                     "PER-VISIT GATE MISSED: %.2f ns/visit >= pre-refactor "
                     "%.2f ns/visit at %s\n",
                     per_visit_ns, base->per_visit_ns, label.c_str());
        ok = false;
      }
      if (base->bytes_per_cell > 0.0 && m.rss_kb != 0 &&
          bytes_per_cell >= base->bytes_per_cell) {
        std::fprintf(stderr,
                     "RSS GATE MISSED: %.0f B/cell >= pre-refactor bound "
                     "%.0f B/cell at %s\n",
                     bytes_per_cell, base->bytes_per_cell, label.c_str());
        ok = false;
      }
    }

    bench::BenchRecord rec;
    rec.dataset = label;
    rec.cycles = m.cycles;
    rec.energy_uj = m.energy_uj;
    rec.threads = m.threads;
    rec.wall_ms = m.wall_ms;
    rec.partition = m.partition;
    rec.engine = "active";
    rec.cell_visits = m.cell_visits;
    rec.dense_pct = m.dense_pct;
    rec.cap_peak = m.cap_peak;
    rec.cap_end = m.cap_end;
    rec.rss_kb = m.rss_kb;
    reporter.record(rec);
  }
  return ok ? 0 : 1;
}
