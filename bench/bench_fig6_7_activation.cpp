// Reproduces paper Figures 6 & 7: percent of compute cells active per
// cycle on the 32x32 chip — ingestion only (Fig 6) and ingestion+BFS
// (Fig 7), for both samplings, on the larger graph.
//
// Expected shapes: high sustained activation during streaming with a decay
// tail once IO drains; the BFS runs last longer (more cycles) with similar
// peak activation. Writes fig6_7_<mode>_<sampling>.csv series for plotting.
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

int main() {
  const auto scale = bench::scale_from_env();
  // Figures 6/7 use the larger graph; take the second dataset row.
  const auto ds = bench::datasets(scale).back();
  const bench::JsonReporter reporter("bench_fig6_7_activation");
  bench::print_header("Figures 6 & 7: cells active per cycle");

  for (const bool with_bfs : {false, true}) {
    for (const auto kind : {wl::SamplingKind::kEdge, wl::SamplingKind::kSnowball}) {
      const auto sched =
          wl::make_graphchallenge_like(ds.vertices, ds.edges, kind, 10, 42);
      const std::uint64_t source =
          kind == wl::SamplingKind::kSnowball ? sched.seed_vertex : 0;

      auto cfg = bench::paper_chip_config();
      cfg.record_activation = true;
      auto e = bench::make_experiment(cfg, ds.vertices, with_bfs, source);
      const auto reports = bench::run_schedule(e, sched);
      if (with_bfs && kind == wl::SamplingKind::kEdge) {
        // Headline record: Fig 7's ingestion+BFS edge-sampled run.
        reporter.record(ds.label, bench::total_cycles(reports),
                        bench::total_energy_uj(reports), e.chip->threads());
      }

      const auto& trace = e.chip->activation();
      const std::uint32_t cells = e.chip->geometry().cell_count();
      std::printf(
          "\n%s (%s, %s): %lu cycles, peak %.0f%% cells active, mean %.0f%%\n",
          with_bfs ? "Fig 7 ingestion+BFS" : "Fig 6 ingestion only",
          ds.label.c_str(), std::string(wl::to_string(kind)).c_str(),
          e.chip->stats().cycles, 100.0 * trace.peak_active_fraction(cells),
          100.0 * trace.mean_active_fraction(cells));

      // Coarse ASCII rendition of the figure (16 buckets).
      const auto series = trace.percent_series(cells, 16);
      std::printf("  activity: ");
      for (const auto& [cycle, pct] : series) {
        static const char* blocks[] = {" ", ".", ":", "-", "=", "#", "%", "@"};
        std::printf("%s", blocks[static_cast<int>(pct / 12.51)]);
      }
      std::printf("  (time ->)\n");

      const std::string csv_name =
          std::string("fig6_7_") + (with_bfs ? "bfs" : "ingest") + "_" +
          std::string(wl::to_string(kind)) + ".csv";
      io::CsvWriter csv(csv_name, {"cycle", "percent_active"});
      for (const auto& [cycle, pct] : trace.percent_series(cells, 512)) {
        csv.row_numeric({static_cast<double>(cycle), pct});
      }
      std::printf("  wrote %s\n", csv_name.c_str());
    }
  }
  return 0;
}
