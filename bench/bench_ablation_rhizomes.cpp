// Ablation: rhizomes per vertex (the hub-spreading extension from the
// authors' companion design, arXiv:2402.06086) on a hub-heavy R-MAT graph.
// More rhizomes spread a hub's insert and BFS traffic across several cells
// at the cost of ring-synchronisation messages.
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

int main() {
  const auto scale = bench::scale_from_env();
  const std::uint32_t rmat_scale = scale == bench::Scale::kTiny ? 11u : 14u;
  wl::RmatParams rp;
  rp.scale = rmat_scale;
  rp.num_edges = (1ull << rmat_scale) * 12;
  const auto edges = wl::generate_rmat(rp);
  const bench::JsonReporter reporter("bench_ablation_rhizomes");

  bench::print_header("Ablation: rhizomes per vertex (R-MAT, ingestion+BFS)");
  std::printf("(R-MAT scale %u, %zu edges, heavy-hub degree distribution)\n",
              rp.scale, edges.size());
  std::printf("%-10s %12s %12s %14s %14s\n", "Rhizomes", "Cycles", "Energy µJ",
              "PeakCellLoad", "MeanLat");

  for (const std::uint32_t rhizomes : {1u, 2u, 4u, 8u}) {
    auto cfg = bench::paper_chip_config();
    sim::Chip chip(cfg);
    graph::GraphProtocol proto(chip);
    apps::StreamingBfs bfs(proto);
    bfs.install();
    graph::GraphConfig gc;
    gc.num_vertices = 1ull << rp.scale;
    gc.rhizomes = rhizomes;
    gc.root_init = apps::StreamingBfs::initial_state();
    graph::StreamingGraph g(proto, gc);
    bfs.set_source(g, 0);

    const auto r = g.stream_increment(edges);
    if (rhizomes == 1) {
      // Headline record: the paper's single-root configuration.
      reporter.record("rmat" + std::to_string(rp.scale), r.cycles, r.energy_uj,
                      chip.threads());
    }
    std::uint64_t peak = 0;
    for (const auto l : chip.cell_load()) peak = std::max(peak, l);
    std::printf("%-10u %12lu %12.1f %14lu %14.1f\n", rhizomes, r.cycles,
                r.energy_uj, peak, chip.stats().mean_delivery_latency());
  }
  std::printf(
      "\nExpected: peak per-cell load (the hub hotspot) drops as rhizomes\n"
      "increase; total cycles improve until ring-sync overhead dominates.\n");
  return 0;
}
