// Reproduces paper Figures 8 & 9: simulation cycles per dynamic-graph
// increment on the 32x32 chip — "Streaming Edges" vs "Streaming Edges with
// BFS", for Edge and Snowball sampling, at both graph sizes.
//
// Expected shapes:
//   Edge sampling:     ingestion cycles flat across increments; the BFS
//                      overhead varies (random arrivals trigger random
//                      amounts of re-diffusion).
//   Snowball sampling: ingestion cycles grow with the increment (increments
//                      get bigger); BFS overhead stays small (edges arrive
//                      in monotonically increasing BFS-level order).
//
// Writes fig8_9_<label>_<sampling>.csv next to the binary for plotting.
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

int main() {
  const auto scale = bench::scale_from_env();
  const bench::JsonReporter reporter("bench_fig8_9_increments");
  bool recorded = false;
  bench::print_header("Figures 8 & 9: cycles per increment");

  for (const auto& ds : bench::datasets(scale)) {
    for (const auto kind : {wl::SamplingKind::kEdge, wl::SamplingKind::kSnowball}) {
      const auto sched =
          wl::make_graphchallenge_like(ds.vertices, ds.edges, kind, 10, 42);
      const std::uint64_t source =
          kind == wl::SamplingKind::kSnowball ? sched.seed_vertex : 0;

      std::vector<graph::IncrementReport> plain, with_bfs;
      std::uint64_t backend_threads = 1;
      {
        auto e = bench::make_experiment(bench::paper_chip_config(), ds.vertices,
                                        false, source);
        plain = bench::run_schedule(e, sched);
      }
      {
        auto e = bench::make_experiment(bench::paper_chip_config(), ds.vertices,
                                        true, source);
        with_bfs = bench::run_schedule(e, sched);
        backend_threads = e.chip->threads();
      }
      if (!recorded && kind == wl::SamplingKind::kEdge) {
        // Headline record: first dataset, edge sampling, streaming+BFS.
        reporter.record(ds.label, bench::total_cycles(with_bfs),
                        bench::total_energy_uj(with_bfs), backend_threads);
        recorded = true;
      }

      std::printf("\n%s vertices, %s sampling (cycles per increment):\n",
                  ds.label.c_str(), std::string(wl::to_string(kind)).c_str());
      std::printf("%-10s %12s %12s %8s\n", "Increment", "Streaming",
                  "Stream+BFS", "Ratio");
      const std::string csv_name = "fig8_9_" + bench::path_safe_label(ds.label) +
                                   "_" + std::string(wl::to_string(kind)) +
                                   ".csv";
      io::CsvWriter csv(csv_name, {"increment", "edges", "cycles_streaming",
                                   "cycles_streaming_bfs"});
      for (std::size_t i = 0; i < plain.size(); ++i) {
        const double ratio = plain[i].cycles == 0
                                 ? 0.0
                                 : static_cast<double>(with_bfs[i].cycles) /
                                       static_cast<double>(plain[i].cycles);
        std::printf("%-10zu %11luK %11luK %8.2f\n", i + 1,
                    plain[i].cycles / 1000, with_bfs[i].cycles / 1000, ratio);
        csv.row_numeric({static_cast<double>(i + 1),
                         static_cast<double>(plain[i].edges),
                         static_cast<double>(plain[i].cycles),
                         static_cast<double>(with_bfs[i].cycles)});
      }
      std::printf("wrote %s\n", csv_name.c_str());
    }
  }
  return 0;
}
