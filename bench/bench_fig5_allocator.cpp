// Reproduces the paper's Figure 5 design choice as a measurement: Vicinity
// vs Random ghost-vertex allocation (plus RoundRobin and Local for
// context). The Vicinity Allocator keeps ghosts within 2 hops of the
// originating cell, minimising intra-vertex operation latency; Random
// disperses them across the whole chip.
//
// Expected shape: Vicinity wins on total cycles and mean message latency;
// Random pays chip-diameter hops on every chain traversal.
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

int main() {
  const auto scale = bench::scale_from_env();
  const auto ds = bench::datasets(scale).front();
  const bench::JsonReporter reporter("bench_fig5_allocator");
  // A smaller edge capacity exaggerates chains, which is exactly where the
  // allocation policy matters.
  bench::print_header("Figure 5 ablation: ghost allocation policy");
  std::printf("(dataset %s, %lu edges, edge sampling, ingestion+BFS)\n",
              ds.label.c_str(), ds.edges);
  std::printf("%-12s %12s %12s %12s %12s\n", "Policy", "Cycles", "Energy µJ",
              "MeanLat", "MeanHops");

  const auto sched = wl::make_graphchallenge_like(
      ds.vertices, ds.edges, wl::SamplingKind::kEdge, 10, 42);

  for (const auto policy :
       {rt::AllocPolicyKind::kVicinity, rt::AllocPolicyKind::kRandom,
        rt::AllocPolicyKind::kRoundRobin, rt::AllocPolicyKind::kLocal}) {
    auto cfg = bench::paper_chip_config();
    cfg.alloc_policy = policy;
    auto e = bench::make_experiment(cfg, ds.vertices, /*with_bfs=*/true, 0);
    const auto reports = bench::run_schedule(e, sched);
    if (policy == rt::AllocPolicyKind::kVicinity) {
      // Headline record: the paper's vicinity configuration.
      reporter.record(ds.label, bench::total_cycles(reports),
                      bench::total_energy_uj(reports), e.chip->threads());
    }
    std::printf("%-12s %12lu %12.0f %12.1f %12.1f\n",
                std::string(rt::to_string(policy)).c_str(),
                bench::total_cycles(reports), bench::total_energy_uj(reports),
                e.chip->stats().mean_delivery_latency(),
                e.chip->stats().mean_hops());
  }
  std::printf(
      "\nExpected: vicinity <= round-robin/random on latency and energy;\n"
      "local is hop-free for chains but concentrates memory pressure.\n");
  return 0;
}
