// Parallel-engine scaling sweep: streams the same SBM + BFS workload
// through 1-, 2-, and 4-thread chips at 32x32 and 64x64 meshes, reporting
// wall-clock speedup over the serial engine and checking the determinism
// contract (identical simulated cycles and energy for every thread count)
// on the way. Simulated cycles are a property of the workload, so the
// interesting column here is host milliseconds.
//
// Speedup is bounded by the host cores actually available — on a 1-core
// machine every row measures barrier overhead, not scaling.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"

namespace {

using namespace ccastream;

struct Measurement {
  std::uint32_t threads = 1;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  double wall_ms = 0.0;
};

Measurement run_once(std::uint32_t dim, std::uint32_t threads,
                     std::uint64_t vertices, std::uint64_t edges) {
  sim::ChipConfig cfg = bench::paper_chip_config();
  cfg.width = dim;
  cfg.height = dim;
  cfg.threads = threads;

  auto e = bench::make_experiment(cfg, vertices, /*with_bfs=*/true,
                                  /*bfs_source=*/0);
  const auto sched = wl::make_graphchallenge_like(
      vertices, edges, wl::SamplingKind::kEdge, /*increments=*/4, /*seed=*/42);

  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = bench::run_schedule(e, sched);
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.threads = e.chip->threads();  // resolved backend, not the raw request
  m.cycles = bench::total_cycles(reports);
  m.energy_uj = bench::total_energy_uj(reports);
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return m;
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  bench::JsonReporter reporter("parallel_scaling");

  // Workload sized with the mesh so bigger chips do proportionally bigger
  // work (otherwise 64x64 under-utilises and scaling looks artificially
  // poor).
  std::uint64_t verts_per_cell = 8, degree = 16;
  if (scale == bench::Scale::kTiny) {
    verts_per_cell = 2;
    degree = 8;
  } else if (scale == bench::Scale::kLarge) {
    verts_per_cell = 16;
    degree = 24;
  }

  std::printf("host cores: %u (speedup is bounded by this)\n",
              std::thread::hardware_concurrency());

  for (const std::uint32_t dim : {32u, 64u}) {
    const std::uint64_t vertices = verts_per_cell * dim * dim;
    const std::uint64_t edges = degree * vertices;
    bench::print_header(
        ("Parallel scaling — " + std::to_string(dim) + "x" + std::to_string(dim) +
         " mesh, " + std::to_string(vertices) + " vertices, " +
         std::to_string(edges) + " edges (SBM + streaming BFS)")
            .c_str());
    std::printf("%-8s %14s %12s %10s %10s %10s\n", "Threads", "SimCycles",
                "Energy µJ", "Wall ms", "Speedup", "Identical");

    std::vector<Measurement> rows;
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      rows.push_back(run_once(dim, threads, vertices, edges));
      const Measurement& m = rows.back();
      const Measurement& serial = rows.front();
      const bool identical =
          m.cycles == serial.cycles && m.energy_uj == serial.energy_uj;
      std::printf("%-8u %14lu %12.1f %10.1f %9.2fx %10s\n", m.threads,
                  static_cast<unsigned long>(m.cycles), m.energy_uj, m.wall_ms,
                  serial.wall_ms / m.wall_ms, identical ? "yes" : "NO!");
      if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %u-thread run diverged from "
                     "serial on %ux%u\n",
                     m.threads, dim, dim);
        return 1;
      }

      const std::string dataset =
          std::to_string(dim) + "x" + std::to_string(dim);
      // wall_ms persists into BENCH_*.json so backend speedup is trackable
      // across PRs (cycles/energy are backend-invariant by design).
      reporter.record(dataset, m.cycles, m.energy_uj, m.threads, m.wall_ms);
    }
  }
  return 0;
}
