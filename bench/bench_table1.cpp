// Reproduces paper Table 1: "Details of the GraphChallenge input dynamic
// graphs" — edges per streaming increment for the Edge- and Snowball-
// sampled datasets.
//
// Paper values for reference (K = thousand):
//   50K  Edge:     102 102 102 102 102 101 102 102 102 102  (total 1.0M)
//   50K  Snowball:  37  29  48  68  88 109 129 149 169 191  (total 1.0M)
//   500K Edge:    1016 .. 1019 per increment                (total 10.2M)
//   500K Snowball: 223 329 514 710 904 1102 1297 1502 1698 1896
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

int main() {
  const auto scale = bench::scale_from_env();
  const bench::JsonReporter reporter("bench_table1");
  bool recorded = false;
  bench::print_header("Table 1: edges per streaming increment");
  std::printf("%-12s %-9s", "Vertices", "Sampling");
  for (int i = 1; i <= 10; ++i) std::printf(" %8d", i);
  std::printf(" %10s\n", "Total");

  for (const auto& ds : bench::datasets(scale)) {
    for (const auto kind : {wl::SamplingKind::kEdge, wl::SamplingKind::kSnowball}) {
      const auto sched =
          wl::make_graphchallenge_like(ds.vertices, ds.edges, kind, 10, 42);
      if (!recorded) {
        // Workload-shape bench: no chip is simulated, so cycles/energy are
        // zero and the measurement is backend-independent — tag threads=1
        // so records from serial and parallel sweeps stay identical.
        reporter.record(ds.label + "/" + std::to_string(sched.total_edges()) +
                            "edges",
                        0, 0.0, /*threads=*/1);
        recorded = true;
      }
      std::printf("%-12s %-9s", ds.label.c_str(),
                  std::string(wl::to_string(kind)).c_str());
      for (const auto& inc : sched.increments) {
        std::printf(" %7zuK", inc.size() / 1000);
      }
      std::printf(" %9.1fM\n", static_cast<double>(sched.total_edges()) / 1e6);
    }
  }
  std::printf(
      "\nShape checks vs the paper: Edge rows are flat (equal increments);\n"
      "Snowball rows ramp ~1:5 from increment 1 to 10.\n");
  return 0;
}
