// Ablation: RPVO shape and chip provisioning —
//   (a) fragment edge capacity (chain length vs in-fragment scan cost),
//   (b) ghost fan-out (chain vs small tree),
//   (c) router FIFO depth (buffering vs backpressure),
//   (d) IO channel placement (injection bandwidth).
// All on the same streaming-BFS workload.
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

namespace {

using namespace ccastream::bench;

Experiment make_structured(const sim::ChipConfig& cfg, std::uint64_t verts,
                           const graph::RpvoConfig& rc, std::uint64_t source) {
  Experiment e;
  e.chip = std::make_unique<sim::Chip>(cfg);
  e.proto = std::make_unique<graph::GraphProtocol>(*e.chip, rc);
  e.bfs = std::make_unique<apps::StreamingBfs>(*e.proto);
  e.bfs->install();
  graph::GraphConfig gc;
  gc.num_vertices = verts;
  gc.root_init = apps::StreamingBfs::initial_state();
  e.graph = std::make_unique<graph::StreamingGraph>(*e.proto, gc);
  e.bfs->set_source(*e.graph, source);
  return e;
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  // Structure ablations are about per-vertex shape: a smaller graph keeps
  // the sweep fast without changing the comparison.
  const auto ds = bench::datasets(scale).front();
  const std::uint64_t verts = ds.vertices / 5;
  const std::uint64_t edges = ds.edges / 5;
  const auto sched = wl::make_graphchallenge_like(
      verts, edges, wl::SamplingKind::kEdge, 10, 42);
  const bench::JsonReporter reporter("bench_ablation_structure");

  bench::print_header("Ablation (a): fragment edge capacity");
  std::printf("%-10s %12s %12s %14s\n", "Capacity", "Cycles", "Energy µJ",
              "GhostLinks");
  for (const std::uint32_t cap : {2u, 4u, 8u, 16u, 32u}) {
    graph::RpvoConfig rc;
    rc.edge_capacity = cap;
    auto e = make_structured(bench::paper_chip_config(), verts, rc, 0);
    const auto reports = bench::run_schedule(e, sched);
    if (cap == 16) {
      // Headline record: the default fragment shape on the 1/5 dataset.
      reporter.record(ds.label + "/5", bench::total_cycles(reports),
                      bench::total_energy_uj(reports), e.chip->threads());
    }
    std::printf("%-10u %12lu %12.0f %14lu\n", cap, bench::total_cycles(reports),
                bench::total_energy_uj(reports),
                e.proto->stats().ghost_links_made);
  }

  bench::print_header("Ablation (b): ghost fan-out (capacity 4)");
  std::printf("%-10s %12s %12s %14s\n", "Fanout", "Cycles", "Energy µJ",
              "GhostLinks");
  for (const std::uint32_t fanout : {1u, 2u, 4u}) {
    graph::RpvoConfig rc;
    rc.edge_capacity = 4;
    rc.ghost_fanout = fanout;
    auto e = make_structured(bench::paper_chip_config(), verts, rc, 0);
    const auto reports = bench::run_schedule(e, sched);
    std::printf("%-10u %12lu %12.0f %14lu\n", fanout,
                bench::total_cycles(reports), bench::total_energy_uj(reports),
                e.proto->stats().ghost_links_made);
  }

  bench::print_header("Ablation (c): router FIFO depth");
  std::printf("%-10s %12s %12s %14s\n", "Depth", "Cycles", "MeanLat", "Stalls");
  for (const std::uint32_t depth : {1u, 2u, 4u, 8u, 16u}) {
    auto cfg = bench::paper_chip_config();
    cfg.fifo_depth = depth;
    auto e = make_structured(cfg, verts, {}, 0);
    const auto reports = bench::run_schedule(e, sched);
    std::printf("%-10u %12lu %12.1f %14lu\n", depth,
                bench::total_cycles(reports),
                e.chip->stats().mean_delivery_latency(),
                e.chip->stats().stage_stalls);
  }

  bench::print_header("Ablation (d): IO channel sides");
  std::printf("%-10s %12s %12s %14s\n", "Sides", "IOCells", "Cycles",
              "Energy µJ");
  struct SideCase {
    const char* name;
    std::uint8_t mask;
  };
  for (const auto& sc :
       {SideCase{"W", sim::kIoWest}, SideCase{"W+E", sim::kIoWest | sim::kIoEast},
        SideCase{"all4", sim::kIoWest | sim::kIoEast | sim::kIoNorth |
                             sim::kIoSouth}}) {
    auto cfg = bench::paper_chip_config();
    cfg.io_sides = sc.mask;
    auto e = make_structured(cfg, verts, {}, 0);
    const auto reports = bench::run_schedule(e, sched);
    std::printf("%-10s %12zu %12lu %14.0f\n", sc.name, e.chip->io().cell_count(),
                bench::total_cycles(reports), bench::total_energy_uj(reports));
  }
  std::printf("\nExpected: more IO cells -> fewer cycles until compute-bound;\n"
              "tiny capacities -> long chains; depth-1 FIFOs -> stalls.\n");
  return 0;
}
