// Baseline comparison: incremental dynamic BFS vs recompute-from-scratch on
// the CPU oracle, and the corresponding on-chip work metric. This is the
// quantitative backing for the paper's central claim that streaming updates
// "update the results of any previous computation without recomputing from
// scratch".
#include <chrono>
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  const auto ds = bench::datasets(scale).front();
  bench::print_header(
      "Baseline: incremental dynamic BFS vs recompute per increment");

  const auto sched = wl::make_graphchallenge_like(
      ds.vertices, ds.edges, wl::SamplingKind::kEdge, 10, 42);
  const bench::JsonReporter reporter("bench_baseline_comparison");

  base::DynamicBfs dyn(ds.vertices, 0);
  std::printf("%-10s %14s %14s %16s %16s\n", "Increment", "IncrTime ms",
              "RecompTime ms", "Resettled", "Chip bfs-msgs");

  // Chip run alongside, to report the diffusion's message count per
  // increment (its own "work" metric).
  auto e = bench::make_experiment(bench::paper_chip_config(), ds.vertices,
                                  /*with_bfs=*/true, 0);
  std::uint64_t resettled_before = 0;
  std::uint64_t chip_cycles = 0;
  double chip_uj = 0.0;
  for (std::size_t i = 0; i < sched.increments.size(); ++i) {
    const auto& inc = sched.increments[i];

    const auto t0 = std::chrono::steady_clock::now();
    dyn.insert_increment(inc);
    const double incr_ms = ms_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    const auto full = dyn.recompute();
    const double recomp_ms = ms_since(t1);
    (void)full;

    const auto report = e.graph->stream_increment(inc);
    chip_cycles += report.cycles;
    chip_uj += report.energy_uj;
    std::printf("%-10zu %14.2f %14.2f %16lu %16lu\n", i + 1, incr_ms, recomp_ms,
                dyn.vertices_resettled() - resettled_before,
                report.stats_delta.actions_created);
    resettled_before = dyn.vertices_resettled();
  }
  reporter.record(ds.label, chip_cycles, chip_uj, e.chip->threads());
  std::printf(
      "\nExpected: incremental repair touches far fewer vertices than a\n"
      "recompute, especially in late increments when most levels are final.\n");
  return 0;
}
