// google-benchmark microbenchmarks of the simulator's primitives: these
// bound how fast the chip can be simulated, independent of any workload.
#include <benchmark/benchmark.h>

#include <memory>

#include "harness.hpp"

using namespace ccastream;

namespace {

void BM_RngBelow(benchmark::State& state) {
  rt::Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1024));
  }
}
BENCHMARK(BM_RngBelow);

void BM_RouteYx(benchmark::State& state) {
  const sim::DownstreamOccupancy occ{};
  rt::Xoshiro256 rng(2);
  for (auto _ : state) {
    const rt::Coord cur{static_cast<std::uint32_t>(rng.below(32)),
                        static_cast<std::uint32_t>(rng.below(32))};
    const rt::Coord dst{static_cast<std::uint32_t>(rng.below(32)),
                        static_cast<std::uint32_t>(rng.below(32))};
    benchmark::DoNotOptimize(
        sim::route(sim::RoutingPolicyKind::kYX, cur, dst, occ));
  }
}
BENCHMARK(BM_RouteYx);

void BM_ArenaInsert(benchmark::State& state) {
  class Obj final : public rt::ArenaObject {
   public:
    [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 64; }
  };
  for (auto _ : state) {
    state.PauseTiming();
    rt::ObjectArena arena(1u << 24);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(arena.insert(std::make_unique<Obj>()));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ArenaInsert);

void BM_FutureEnqueueDrain(benchmark::State& state) {
  const auto waiters = static_cast<int>(state.range(0));
  // A throwaway chip gives us a real Context for the drain.
  sim::ChipConfig cfg;
  cfg.width = cfg.height = 2;
  for (auto _ : state) {
    sim::Chip chip(cfg);
    const rt::HandlerId h = chip.handlers().register_handler(
        "drain", [&](rt::Context& ctx, const rt::Action&) {
          rt::FutureAddr fut;
          fut.set_pending();
          for (int i = 0; i < waiters; ++i) {
            fut.enqueue(rt::make_action(rt::HandlerId{1}, rt::kNullAddress));
          }
          benchmark::DoNotOptimize(fut.fulfil(rt::GlobalAddress{0, 0}, ctx));
        });
    chip.inject_local(rt::make_action(h, rt::GlobalAddress{0, 0}));
    chip.step();
  }
  state.SetItemsProcessed(state.iterations() * waiters);
}
BENCHMARK(BM_FutureEnqueueDrain)->Arg(4)->Arg(64)->Arg(1024);

void BM_ChipCyclesIdleScan(benchmark::State& state) {
  // Cost of one cycle on an idle chip: the floor of simulation overhead.
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  sim::ChipConfig cfg;
  cfg.width = cfg.height = dim;
  sim::Chip chip(cfg);
  for (auto _ : state) {
    chip.step();
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_ChipCyclesIdleScan)->Arg(8)->Arg(16)->Arg(32);

void BM_ChipMessageThroughput(benchmark::State& state) {
  // Self-regenerating ping-pong between opposite corners: measures
  // end-to-end message cost (stage + route + deliver + dispatch).
  sim::ChipConfig cfg;
  cfg.width = cfg.height = 16;
  sim::Chip chip(cfg);

  class Obj final : public rt::ArenaObject {
   public:
    [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 16; }
  };
  const auto a = *chip.host_allocate(0, std::make_unique<Obj>());
  const auto b = *chip.host_allocate(255, std::make_unique<Obj>());
  rt::HandlerId ping = 0;
  ping = chip.handlers().register_handler(
      "ping", [&](rt::Context& ctx, const rt::Action& act) {
        const auto next = act.target == a ? b : a;
        ctx.propagate(rt::make_action(ping, next));
      });
  chip.inject_local(rt::make_action(ping, a));
  std::uint64_t delivered_before = chip.stats().deliveries;
  for (auto _ : state) {
    chip.step();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(chip.stats().deliveries - delivered_before));
}
BENCHMARK(BM_ChipMessageThroughput);

void BM_SbmGeneration(benchmark::State& state) {
  wl::SbmParams p;
  p.num_vertices = 10'000;
  p.num_edges = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl::generate_sbm(p));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SbmGeneration)->Arg(10'000)->Arg(100'000);

// One full (small) ingestion on a 16x16 chip — shared between the
// wall-clock microbenchmark and the headline JSON record below, so both
// always measure the same configuration.
constexpr std::uint64_t kIngestVerts = 2'000;
constexpr std::uint64_t kIngestEdges = 20'000;

struct IngestResult {
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  std::uint64_t threads = 1;  ///< Resolved backend of the measuring chip.
};

IngestResult run_small_ingest(const wl::StreamSchedule& sched) {
  sim::ChipConfig cfg;
  cfg.width = cfg.height = 16;
  sim::Chip chip(cfg);
  graph::GraphProtocol proto(chip);
  graph::GraphConfig gc;
  gc.num_vertices = kIngestVerts;
  graph::StreamingGraph g(proto, gc);
  IngestResult out;
  out.threads = chip.threads();
  for (const auto& inc : sched.increments) {
    const auto r = g.stream_increment(inc);
    out.cycles += r.cycles;
    out.energy_uj += r.energy_uj;
  }
  return out;
}

wl::StreamSchedule small_ingest_schedule() {
  return wl::make_graphchallenge_like(kIngestVerts, kIngestEdges,
                                      wl::SamplingKind::kEdge, 1, 9);
}

void BM_StreamingIngestEndToEnd(benchmark::State& state) {
  // Wall-clock cost of simulating one full (small) ingestion per iteration.
  const auto sched = small_ingest_schedule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_small_ingest(sched).cycles);
  }
  state.SetItemsProcessed(state.iterations() * kIngestEdges);
}
BENCHMARK(BM_StreamingIngestEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() plus a headline JSON record: one deterministic 2K/20K
// ingest, so this binary leaves the same {cycles, energy} datapoint shape
// as the harness-driven benches.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The 2K/20K workload is fixed regardless of CCASTREAM_SCALE.
  const bench::JsonReporter reporter("bench_micro", "fixed");
  if (reporter.enabled()) {
    const auto r = run_small_ingest(small_ingest_schedule());
    reporter.record("2K/20K(ingest)", r.cycles, r.energy_uj, r.threads);
  }
  return 0;
}
