// Sliding-window (insert + expire) sweep for every deletion-repairing app
// (BFS, SSSP, components): the same windowed workload through the
// full-scan oracle and the active-set engine.
//
// The scenario the deletion path exists for: an SBM arrival stream pushed
// through wl::apply_sliding_window with drain enabled, so the graph grows
// until the window fills, churns while arrivals and expirations overlap,
// then *shrinks to empty* over the trailing delete-only increments. The
// drain tail is the interesting regime for the hybrid engine — partitions
// that went dense during ingest must collapse back to sparse tracking as
// deletion repair waves thin out, and the shrink policy must hand the
// active-set memory back afterwards.
//
// Every row is also a correctness gate: simulated cycles, the complete
// ChipStats block, and energy must be bit-identical across engines, and
// the hybrid engine must keep its cell visits within 1.1x of the scan
// engine's across the whole grow/churn/shrink run (deletion repair is
// host-seeded at O(settled vertices), so the mesh stays busy — there is
// no sparse-frontier discount to hide behind). Records land in
// BENCH_window.json with "cell_visits", "dense_pct", "cap_peak",
// "cap_end", and "host_cores" fields.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

using namespace ccastream;

struct Scenario {
  std::string label;
  std::uint64_t vertices = 0;
  std::uint32_t window = 0;
  wl::StreamSchedule sched;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
};

/// An SBM arrival stream windowed to `window` increments, with the drain
/// tail appended so the run ends on an empty graph (the dense -> sparse
/// collapse the bench exists to stress).
Scenario make_windowed_sbm(std::uint64_t vertices, std::uint64_t edges,
                           std::uint64_t increments, std::uint32_t window) {
  Scenario s;
  s.label = "sbm" + std::to_string(vertices) + "/w" + std::to_string(window);
  s.vertices = vertices;
  s.window = window;
  const auto arrivals = wl::make_graphchallenge_like(
      vertices, edges, wl::SamplingKind::kEdge, increments, /*seed=*/42);
  s.sched = wl::apply_sliding_window(arrivals, window, /*drain=*/true);
  for (const auto& inc : s.sched.increments) {
    for (const auto& e : inc) {
      if (e.is_delete()) ++s.deletes; else ++s.inserts;
    }
  }
  return s;
}

struct Measurement {
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  double wall_ms = 0.0;
  std::uint64_t cell_visits = 0;
  std::uint64_t threads = 1;
  std::string partition;
  sim::ChipStats stats;
  std::uint64_t edges_deleted = 0;
  // Hybrid metrics (active engine only; zero under scan).
  std::uint32_t dense_pct = 0;
  std::uint64_t dense_cycles = 0;
  std::uint64_t cap_peak = 0;
  std::uint64_t cap_end = 0;
};

Measurement run_once(const Scenario& sc, bench::AppKind app,
                     sim::EngineKind engine) {
  sim::ChipConfig cfg = bench::paper_chip_config();
  cfg.engine = engine;

  auto e = bench::make_experiment(cfg, sc.vertices, app, /*source=*/0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reports = bench::run_schedule(e, sc.sched);
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.cycles = bench::total_cycles(reports);
  m.energy_uj = bench::total_energy_uj(reports);
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.cell_visits = e.chip->cell_visits();
  m.threads = e.chip->threads();
  m.partition = e.chip->partition_spec().to_string();
  m.stats = e.chip->stats();
  m.edges_deleted = e.proto->stats().edges_deleted;

  if (engine == sim::EngineKind::kActive) {
    m.dense_pct = e.chip->dense_threshold_pct();
    m.dense_cycles = e.chip->hybrid_dense_cycles();
    m.cap_peak = e.chip->active_set_capacity_peak();
    // After the drain the graph is empty and the mesh idle: the shrink
    // policy gets its settle window here (the comparison stats above are
    // already captured, so these extra cycles cannot skew the gate), and
    // the end capacity shows how much of the ingest-era peak it returned.
    for (int i = 0; i < 160; ++i) e.chip->step();
    m.cap_end = e.chip->active_set_capacity();
  }
  return m;
}

}  // namespace

int main() {
  const auto scale = bench::scale_from_env();
  bench::JsonReporter reporter("sliding_window");

  // Deletion repair seeds every settled vertex per invalidating increment,
  // so the workload sizes stay modest: the point is the mode transitions
  // on the 32x32 mesh, not raw edge volume.
  std::vector<Scenario> scenarios;
  switch (scale) {
    case bench::Scale::kTiny:
      scenarios.push_back(make_windowed_sbm(512, 2'048, /*increments=*/6,
                                            /*window=*/2));
      break;
    case bench::Scale::kPaper:
      scenarios.push_back(make_windowed_sbm(1'024, 4'096, /*increments=*/6,
                                            /*window=*/2));
      scenarios.push_back(make_windowed_sbm(2'048, 8'192, /*increments=*/8,
                                            /*window=*/3));
      break;
    case bench::Scale::kLarge:
      scenarios.push_back(make_windowed_sbm(2'048, 8'192, /*increments=*/8,
                                            /*window=*/3));
      scenarios.push_back(make_windowed_sbm(4'096, 16'384, /*increments=*/10,
                                            /*window=*/4));
      break;
  }

  bench::print_header(
      (std::string(
           "Sliding-window streaming BFS/SSSP/components, scan vs active "
           "(scale ") +
       bench::to_string(scale) + ")")
          .c_str());
  std::printf("%-22s %-8s %10s %10s %12s %14s %10s %10s\n", "Dataset",
              "Engine", "Inserts", "Deletes", "SimCycles", "CellVisits",
              "Wall ms", "Identical");

  // Every deletion-repairing app rides the same windowed schedule; BFS
  // keeps its historical dataset label, the newer apps suffix theirs.
  constexpr bench::AppKind kApps[] = {bench::AppKind::kBfs,
                                      bench::AppKind::kSssp,
                                      bench::AppKind::kComponents};

  bool ok = true;
  for (const Scenario& sc : scenarios) {
    for (const bench::AppKind app : kApps) {
      const std::string label =
          app == bench::AppKind::kBfs
              ? sc.label
              : sc.label + "/" + bench::to_string(app);
      const Measurement scan = run_once(sc, app, sim::EngineKind::kScan);
      const Measurement active = run_once(sc, app, sim::EngineKind::kActive);

      const bool identical = active.cycles == scan.cycles &&
                             active.stats == scan.stats &&
                             active.energy_uj == scan.energy_uj;
      const auto row = [&](const char* name, const Measurement& m,
                           const char* ident) {
        std::printf("%-22s %-8s %10lu %10lu %12lu %14lu %10.1f %10s\n",
                    label.c_str(), name,
                    static_cast<unsigned long>(sc.inserts),
                    static_cast<unsigned long>(sc.deletes),
                    static_cast<unsigned long>(m.cycles),
                    static_cast<unsigned long>(m.cell_visits), m.wall_ms,
                    ident);
      };
      row("scan", scan, "-");
      row("active", active, identical ? "yes" : "NO!");
      if (!identical) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: active engine diverged from scan "
                     "on windowed workload %s\n",
                     label.c_str());
        ok = false;
        continue;
      }
      // Sanity: the drain really emptied the chip — every stored record that
      // the windowed schedule deleted must have been removed on-cell.
      if (scan.edges_deleted == 0 ||
          scan.edges_deleted != active.edges_deleted) {
        std::fprintf(stderr,
                     "DELETION MISMATCH: scan removed %lu records, active %lu "
                     "on %s\n",
                     static_cast<unsigned long>(scan.edges_deleted),
                     static_cast<unsigned long>(active.edges_deleted),
                     label.c_str());
        ok = false;
      }

      // The shrinking-regime gate: across grow/churn/drain the hybrid engine
      // must not do meaningfully more host work than the scan oracle. This
      // is the deletion-path analogue of bench_active_set's dense gate — the
      // repair waves keep occupancy high, so a hybrid that thrashed modes on
      // the way down would show up here as excess visits.
      if (static_cast<double>(active.cell_visits) >
          1.1 * static_cast<double>(scan.cell_visits)) {
        std::fprintf(stderr,
                     "SHRINK-REGIME GATE MISSED: hybrid visits %lu > 1.1x "
                     "scan visits %lu on %s\n",
                     static_cast<unsigned long>(active.cell_visits),
                     static_cast<unsigned long>(scan.cell_visits),
                     label.c_str());
        ok = false;
      }
      std::printf(
          "%-22s hybrid: dense-pct %u, %lu dense partition-cycles, "
          "active-set capacity peak %lu -> %lu entries after drain+settle\n",
          label.c_str(), active.dense_pct,
          static_cast<unsigned long>(active.dense_cycles),
          static_cast<unsigned long>(active.cap_peak),
          static_cast<unsigned long>(active.cap_end));
      // Same shrink-policy floor as bench_active_set: below it nothing is
      // shrink-eligible and cap_end == cap_peak is correct behaviour.
      const std::uint64_t shrinkable_floor = active.threads * 2 * 2 * 64;
      if (active.cap_peak > shrinkable_floor &&
          active.cap_end >= active.cap_peak) {
        std::fprintf(stderr,
                     "SHRINK GATE MISSED: capacity %lu did not drop below its "
                     "peak %lu on %s\n",
                     static_cast<unsigned long>(active.cap_end),
                     static_cast<unsigned long>(active.cap_peak),
                     label.c_str());
        ok = false;
      }

      reporter.record(label, scan.cycles, scan.energy_uj, scan.threads,
                      scan.wall_ms, scan.partition, "scan", scan.cell_visits);
      bench::BenchRecord rec;
      rec.dataset = label;
      rec.cycles = active.cycles;
      rec.energy_uj = active.energy_uj;
      rec.threads = active.threads;
      rec.wall_ms = active.wall_ms;
      rec.partition = active.partition;
      rec.engine = "active";
      rec.cell_visits = active.cell_visits;
      rec.dense_pct = active.dense_pct;
      rec.cap_peak = active.cap_peak;
      rec.cap_end = active.cap_end;
      reporter.record(rec);
    }
  }
  return ok ? 0 : 1;
}
