// Reproduces paper Table 2: energy (µJ) and time (µs at 1 GHz) on the
// 32x32 chip, for ingestion-only and ingestion+BFS, on all four datasets.
//
// Paper values (50K rows; 500K scaled by default — see CCASTREAM_SCALE):
//   50K  Edge:     ingest 1355 µJ / 22 µs   ingest+BFS 4669 µJ / 68 µs
//   50K  Snowball: ingest 1357 µJ / 25 µs   ingest+BFS 2929 µJ / 43 µs
//   500K Edge:     ingest 13480 µJ / 206 µs ingest+BFS 50274 µJ / 694 µs
//   500K Snowball: ingest 13498 µJ / 232 µs ingest+BFS 32895 µJ / 448 µs
//
// Expected shape: Snowball ingestion slightly slower than Edge (frontier
// congestion); Edge ingestion+BFS much more expensive than Snowball
// ingestion+BFS (random arrivals re-trigger BFS waves; snowball arrives in
// monotone level order).
#include <cstdio>

#include "harness.hpp"

using namespace ccastream;

int main() {
  const auto scale = bench::scale_from_env();
  const bench::JsonReporter reporter("bench_table2");
  bool recorded = false;
  bench::print_header("Table 2: energy and time on the 32x32 chip @ 1 GHz");
  std::printf("%-12s %-9s | %12s %10s | %12s %10s\n", "Vertices", "Sampling",
              "Ingest µJ", "Ingest µs", "Ing+BFS µJ", "Ing+BFS µs");

  for (const auto& ds : bench::datasets(scale)) {
    for (const auto kind : {wl::SamplingKind::kEdge, wl::SamplingKind::kSnowball}) {
      const auto sched =
          wl::make_graphchallenge_like(ds.vertices, ds.edges, kind, 10, 42);
      const std::uint64_t source =
          kind == wl::SamplingKind::kSnowball ? sched.seed_vertex : 0;

      double uj[2];
      std::uint64_t cycles[2];
      std::uint64_t backend_threads = 1;
      for (const bool with_bfs : {false, true}) {
        auto e = bench::make_experiment(bench::paper_chip_config(), ds.vertices,
                                        with_bfs, source);
        const auto reports = bench::run_schedule(e, sched);
        uj[with_bfs] = bench::total_energy_uj(reports);
        cycles[with_bfs] = bench::total_cycles(reports);
        backend_threads = e.chip->threads();
      }
      if (!recorded) {
        // Headline record: first dataset, edge sampling, ingestion+BFS.
        reporter.record(ds.label, cycles[1], uj[1], backend_threads);
        recorded = true;
      }
      std::printf("%-12s %-9s | %12.0f %10.0f | %12.0f %10.0f\n",
                  ds.label.c_str(), std::string(wl::to_string(kind)).c_str(),
                  uj[0], sim::cycles_to_us(cycles[0]), uj[1],
                  sim::cycles_to_us(cycles[1]));
    }
  }
  std::printf(
      "\nCompare shapes with the paper: BFS multiplies ingestion cost ~2-3.5x;\n"
      "the multiplier is larger for Edge sampling than Snowball.\n");
  return 0;
}
