// Shared experiment harness for the paper-reproduction benchmarks.
//
// Scale control (environment):
//   CCASTREAM_SCALE=tiny   — smoke-test sizes (seconds; CI-friendly)
//   CCASTREAM_SCALE=paper  — the paper's 50K-vertex rows at full size and
//                            the 500K rows scaled 1/5 (default)
//   CCASTREAM_SCALE=large  — the full 500K/10.2M rows as well
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ccastream/ccastream.hpp"

namespace ccastream::bench {

struct DatasetSpec {
  std::string label;         ///< e.g. "50K"
  std::uint64_t vertices;
  std::uint64_t edges;
  bool scaled = false;       ///< true if reduced from the paper's size
};

enum class Scale { kTiny, kPaper, kLarge };

inline Scale scale_from_env() {
  const char* s = std::getenv("CCASTREAM_SCALE");
  if (s == nullptr) return Scale::kPaper;
  if (std::strcmp(s, "tiny") == 0) return Scale::kTiny;
  if (std::strcmp(s, "large") == 0) return Scale::kLarge;
  return Scale::kPaper;
}

/// Peak resident set of this process in KiB (`VmHWM` from
/// /proc/self/status), or 0 where the procfs interface is unavailable.
/// The counter is a process-lifetime high-water mark — it never resets —
/// so benches that sweep several footprints should run them in ascending
/// size order, making each sample the current scenario's peak.
inline std::uint64_t peak_rss_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

/// The two dataset rows of paper Table 1, at the configured scale.
inline std::vector<DatasetSpec> datasets(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return {{"2K(tiny)", 2'000, 40'000, true},
              {"8K(tiny)", 8'000, 160'000, true}};
    case Scale::kPaper:
      return {{"50K", 50'000, 1'000'000, false},
              {"500K(1/5)", 100'000, 2'040'000, true}};
    case Scale::kLarge:
      return {{"50K", 50'000, 1'000'000, false},
              {"500K", 500'000, 10'200'000, false}};
  }
  return {};
}

/// The paper's chip: 32x32 mesh, YX routing, vicinity allocation. The
/// thread count is left at 0 (= CCASTREAM_THREADS env, default serial) so
/// a whole bench sweep can be re-run on the parallel backend by exporting
/// one variable; results are cycle-identical either way.
inline sim::ChipConfig paper_chip_config() {
  sim::ChipConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.routing = sim::RoutingPolicyKind::kYX;
  cfg.alloc_policy = rt::AllocPolicyKind::kVicinity;
  cfg.vicinity_radius = 2;
  cfg.cc_memory_bytes = 4u << 20;
  return cfg;
}

/// Which vertex program an experiment installs. kNone is the ingestion-only
/// variant (hooks disabled — the paper's "disabling the subsequent
/// propagation of bfs-action").
enum class AppKind { kNone, kBfs, kSssp, kComponents };

inline const char* to_string(AppKind app) {
  switch (app) {
    case AppKind::kNone: return "none";
    case AppKind::kBfs: return "bfs";
    case AppKind::kSssp: return "sssp";
    case AppKind::kComponents: return "components";
  }
  return "none";
}

/// One assembled experiment: chip + protocol + installed app + graph. `bfs`
/// is always constructed (the protocol-level benches read its state even in
/// ingestion-only runs); `sssp`/`comps` exist only when requested, so
/// BFS-era measurements stay byte-for-byte what they were.
struct Experiment {
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<apps::StreamingBfs> bfs;
  std::unique_ptr<apps::StreamingSssp> sssp;
  std::unique_ptr<apps::StreamingComponents> comps;
  std::unique_ptr<graph::StreamingGraph> graph;
};

/// Builds a streaming experiment running `app`. `source` seeds BFS/SSSP
/// (components self-seeds every vertex with its own label).
inline Experiment make_experiment(const sim::ChipConfig& cfg,
                                  std::uint64_t num_vertices, AppKind app,
                                  std::uint64_t source) {
  Experiment e;
  e.chip = std::make_unique<sim::Chip>(cfg);
  e.proto = std::make_unique<graph::GraphProtocol>(*e.chip);
  e.bfs = std::make_unique<apps::StreamingBfs>(*e.proto);
  graph::GraphConfig gc;
  gc.num_vertices = num_vertices;
  gc.root_init = apps::StreamingBfs::initial_state();
  switch (app) {
    case AppKind::kNone: {
      graph::AppHooks hooks;  // ingestion only; keep levels inert
      hooks.ghost_init = apps::StreamingBfs::initial_state();
      e.proto->set_hooks(hooks);
      break;
    }
    case AppKind::kBfs:
      e.bfs->install();
      break;
    case AppKind::kSssp:
      e.sssp = std::make_unique<apps::StreamingSssp>(*e.proto);
      e.sssp->install();
      gc.root_init = apps::StreamingSssp::initial_state();
      break;
    case AppKind::kComponents:
      e.comps = std::make_unique<apps::StreamingComponents>(*e.proto);
      e.comps->install();
      gc.root_init = apps::StreamingComponents::initial_state();
      break;
  }
  e.graph = std::make_unique<graph::StreamingGraph>(*e.proto, gc);
  if (app == AppKind::kBfs) e.bfs->set_source(*e.graph, source);
  if (app == AppKind::kSssp) e.sssp->set_source(*e.graph, source);
  if (app == AppKind::kComponents) e.comps->seed_labels(*e.graph);
  return e;
}

/// Builds the streaming-BFS experiment of the paper (or its ingestion-only
/// variant). Legacy form kept for the single-app benches.
inline Experiment make_experiment(const sim::ChipConfig& cfg,
                                  std::uint64_t num_vertices, bool with_bfs,
                                  std::uint64_t bfs_source) {
  return make_experiment(cfg, num_vertices,
                         with_bfs ? AppKind::kBfs : AppKind::kNone, bfs_source);
}

/// Streams every increment of a schedule; returns per-increment reports.
inline std::vector<graph::IncrementReport> run_schedule(
    Experiment& e, const wl::StreamSchedule& sched) {
  std::vector<graph::IncrementReport> reports;
  reports.reserve(sched.increments.size());
  for (const auto& inc : sched.increments) {
    reports.push_back(e.graph->stream_increment(inc));
  }
  return reports;
}

inline std::uint64_t total_cycles(const std::vector<graph::IncrementReport>& r) {
  std::uint64_t c = 0;
  for (const auto& x : r) c += x.cycles;
  return c;
}

inline double total_energy_uj(const std::vector<graph::IncrementReport>& r) {
  double e = 0;
  for (const auto& x : r) e += x.energy_uj;
  return e;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

inline const char* to_string(Scale scale) {
  switch (scale) {
    case Scale::kTiny: return "tiny";
    case Scale::kPaper: return "paper";
    case Scale::kLarge: return "large";
  }
  return "paper";
}

// ---------------------------------------------------------------------------
// Machine-readable reporting: each bench emits one headline JSON record per
// run so every PR leaves a perf datapoint (aggregated into BENCH_*.json by
// tools/run_benches.sh).

/// One measurement record: `{"bench":...,"dataset":...,"cycles":N,
/// "energy_uj":X,"scale":...,"threads":T,"partition":P,"engine":E
/// [,"wall_ms":W][,"cell_visits":V][,"dense_pct":D][,"cap_peak":C]
/// [,"cap_end":C]}`.
/// `threads`, `partition`, and `engine` identify the simulator backend the
/// record was measured on (1 = serial; partition spec as in
/// CCASTREAM_PARTITION, e.g. "rows" or "tiles+rebalance"; engine as in
/// CCASTREAM_ENGINE, "scan" or "active"), making records comparable across
/// backends in aggregated BENCH_*.json files. `wall_ms` is host wall-clock
/// and `cell_visits` the per-cell phase-loop visit total — the only numbers
/// that *should* differ across backends (simulated cycles are
/// backend-invariant by the determinism guarantee); 0 means unmeasured and
/// the field is omitted. Records measured on the hybrid active-set engine
/// may additionally carry the mode configuration and memory metrics:
/// `dense_pct` (the resolved dense-mode threshold,
/// `Chip::dense_threshold_pct()`), `cap_peak`
/// (`Chip::active_set_capacity_peak()` — the active-set memory high-water,
/// in entries) and `cap_end` (`Chip::active_set_capacity()` at measurement
/// end — below `cap_peak` when the shrink policy returned memory); all
/// three omitted when 0. `rss_kb` is the process's peak resident set
/// (`VmHWM` from /proc/self/status, in KiB) sampled right after the
/// measurement — the memory-side currency for the mesh-scale benches,
/// where per-cell state dominates the footprint; 0 means unmeasured
/// (e.g. a non-Linux host) and the field is omitted. `host_cores`
/// records the host machine's logical
/// core count (`std::thread::hardware_concurrency()`), giving the wall_ms
/// numbers in aggregated files the hardware context needed to compare
/// them across machines; the reporter stamps it on every record it
/// writes, and legacy records (which carried no hardware context at all)
/// parse as the conservative 1 — the same as the field's default.
struct BenchRecord {
  std::string bench;
  std::string dataset;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  std::string scale;
  std::uint64_t threads = 1;
  double wall_ms = 0.0;
  std::string partition = "rows";
  std::string engine = "scan";
  std::uint64_t cell_visits = 0;
  std::uint32_t dense_pct = 0;
  std::uint64_t cap_peak = 0;
  std::uint64_t cap_end = 0;
  std::uint64_t rss_kb = 0;
  std::uint64_t host_cores = 1;

  friend bool operator==(const BenchRecord&, const BenchRecord&) = default;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

/// Replaces filesystem-hostile characters in a dataset label ('/' would
/// introduce a directory component) for use in output filenames.
inline std::string path_safe_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ' ') c = '-';
  }
  return out;
}

/// Serialises one record as a single-line JSON object. `%.17g` keeps the
/// energy double bit-exact across a parse round trip.
inline std::string format_record(const BenchRecord& r) {
  char num[64];
  std::string out = "{\"bench\":\"" + json_escape(r.bench) + "\"";
  out += ",\"dataset\":\"" + json_escape(r.dataset) + "\"";
  std::snprintf(num, sizeof num, "%llu",
                static_cast<unsigned long long>(r.cycles));
  out += std::string(",\"cycles\":") + num;
  std::snprintf(num, sizeof num, "%.17g", r.energy_uj);
  out += std::string(",\"energy_uj\":") + num;
  out += ",\"scale\":\"" + json_escape(r.scale) + "\"";
  std::snprintf(num, sizeof num, "%llu",
                static_cast<unsigned long long>(r.threads));
  out += std::string(",\"threads\":") + num;
  out += ",\"partition\":\"" + json_escape(r.partition) + "\"";
  out += ",\"engine\":\"" + json_escape(r.engine) + "\"";
  if (r.wall_ms != 0.0) {
    std::snprintf(num, sizeof num, "%.17g", r.wall_ms);
    out += std::string(",\"wall_ms\":") + num;
  }
  if (r.cell_visits != 0) {
    std::snprintf(num, sizeof num, "%llu",
                  static_cast<unsigned long long>(r.cell_visits));
    out += std::string(",\"cell_visits\":") + num;
  }
  if (r.dense_pct != 0) {
    std::snprintf(num, sizeof num, "%u", r.dense_pct);
    out += std::string(",\"dense_pct\":") + num;
  }
  if (r.cap_peak != 0) {
    std::snprintf(num, sizeof num, "%llu",
                  static_cast<unsigned long long>(r.cap_peak));
    out += std::string(",\"cap_peak\":") + num;
  }
  if (r.cap_end != 0) {
    std::snprintf(num, sizeof num, "%llu",
                  static_cast<unsigned long long>(r.cap_end));
    out += std::string(",\"cap_end\":") + num;
  }
  if (r.rss_kb != 0) {
    std::snprintf(num, sizeof num, "%llu",
                  static_cast<unsigned long long>(r.rss_kb));
    out += std::string(",\"rss_kb\":") + num;
  }
  if (r.host_cores != 0) {
    std::snprintf(num, sizeof num, "%llu",
                  static_cast<unsigned long long>(r.host_cores));
    out += std::string(",\"host_cores\":") + num;
  }
  out += "}";
  return out;
}

namespace detail {

/// Locates the first character of `key`'s value; nullopt when absent.
inline std::optional<std::size_t> find_value_start(const std::string& line,
                                                   const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return pos + needle.size();
}

inline std::optional<std::string> parse_string_field(const std::string& line,
                                                     const std::string& key) {
  const auto start = find_value_start(line, key);
  if (!start || *start >= line.size() || line[*start] != '"') {
    return std::nullopt;
  }
  std::string out;
  for (std::size_t i = *start + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      const char next = line[++i];
      switch (next) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (i + 4 < line.size()) {
            out += static_cast<char>(
                std::strtoul(line.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += next; break;
      }
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  return std::nullopt;  // unterminated string
}

inline std::optional<double> parse_number_field(const std::string& line,
                                                const std::string& key) {
  const auto pos = find_value_start(line, key);
  if (!pos) return std::nullopt;
  const char* start = line.c_str() + *pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

// Cycle counts can exceed 2^53, so they never go through a double.
inline std::optional<std::uint64_t> parse_uint_field(const std::string& line,
                                                     const std::string& key) {
  const auto pos = find_value_start(line, key);
  if (!pos) return std::nullopt;
  const char* start = line.c_str() + *pos;
  // strtoull wraps negatives to huge values; reject them outright.
  if (*start < '0' || *start > '9') return std::nullopt;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(start, &end, 10);
  if (end == start) return std::nullopt;
  return v;
}

}  // namespace detail

/// Parses one `format_record` line back into a record. Returns nullopt for
/// lines that are not records (blank lines, truncated writes).
inline std::optional<BenchRecord> parse_record(const std::string& line) {
  BenchRecord r;
  const auto bench = detail::parse_string_field(line, "bench");
  const auto dataset = detail::parse_string_field(line, "dataset");
  const auto cycles = detail::parse_uint_field(line, "cycles");
  const auto energy = detail::parse_number_field(line, "energy_uj");
  const auto scale = detail::parse_string_field(line, "scale");
  if (!bench || !dataset || !cycles || !energy || !scale) return std::nullopt;
  r.bench = *bench;
  r.dataset = *dataset;
  r.cycles = *cycles;
  r.energy_uj = *energy;
  r.scale = *scale;
  // Absent in records written before the parallel backend existed: those
  // were all measured on the serial engine (and did not record wall time).
  r.threads = detail::parse_uint_field(line, "threads").value_or(1);
  r.wall_ms = detail::parse_number_field(line, "wall_ms").value_or(0.0);
  // Absent before the partition layer existed: row stripes were the only
  // decomposition.
  r.partition = detail::parse_string_field(line, "partition").value_or("rows");
  // Absent before the active-set engine existed: everything was measured
  // on the full-scan engine, and cell visits were not counted.
  r.engine = detail::parse_string_field(line, "engine").value_or("scan");
  r.cell_visits = detail::parse_uint_field(line, "cell_visits").value_or(0);
  // Absent before the dense/sparse hybrid existed: pre-hybrid active
  // records were pure sparse mode and tracked no capacity.
  r.dense_pct = static_cast<std::uint32_t>(
      detail::parse_uint_field(line, "dense_pct").value_or(0));
  r.cap_peak = detail::parse_uint_field(line, "cap_peak").value_or(0);
  r.cap_end = detail::parse_uint_field(line, "cap_end").value_or(0);
  // Absent before the mesh-scale benches: earlier records measured time
  // and visits only, never the resident footprint.
  r.rss_kb = detail::parse_uint_field(line, "rss_kb").value_or(0);
  // Absent before hardware context was recorded; legacy records came from
  // machines whose core count is unknown, so the conservative 1 (also the
  // field's default) marks their wall_ms as "single unknown core".
  r.host_cores = detail::parse_uint_field(line, "host_cores").value_or(1);
  return r;
}

/// Appends records (JSON Lines) to the file named by CCASTREAM_BENCH_JSON;
/// a no-op when the variable is unset, so interactive runs stay unchanged.
/// Benches whose workload ignores CCASTREAM_SCALE pass `fixed_scale` so
/// identical measurements are never tagged with different scales.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench, const char* fixed_scale = nullptr)
      : bench_(std::move(bench)),
        scale_(fixed_scale != nullptr ? fixed_scale
                                      : to_string(scale_from_env())),
        threads_(sim::resolve_threads(0)),
        partition_(sim::resolve_partition({}).to_string()),
        engine_(sim::to_string(sim::resolve_engine({}))),
        // hardware_concurrency() may report 0 on hosts it cannot probe;
        // fall back to the legacy-parse default rather than writing an
        // impossible core count.
        host_cores_(std::max(1u, std::thread::hardware_concurrency())) {
    const char* path = std::getenv("CCASTREAM_BENCH_JSON");
    if (path != nullptr && *path != '\0') path_ = path;
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Appends one record. `threads` should be the *measured* backend — pass
  /// `chip.threads()` (the resolved worker count, which clamps the env
  /// request to the partition shape's capacity) rather than the raw env
  /// value; 0 falls back to the env-resolved default for chip-less
  /// measurements. `partition` likewise should be the measured spec
  /// (`chip.partition_spec().to_string()`) and `engine` the measured
  /// engine (`to_string(chip.engine())`); empty falls back to the
  /// env-resolved default. `wall_ms` and `cell_visits`, when nonzero,
  /// persist host wall-clock and the phase-loop visit total so backend
  /// speedup is trackable from the aggregated BENCH_*.json files.
  /// Measurements carrying the hybrid metrics (dense_pct, cap_peak,
  /// cap_end) should use the BenchRecord overload below and name the
  /// fields.
  void record(const std::string& dataset, std::uint64_t cycles,
              double energy_uj, std::uint64_t threads = 0,
              double wall_ms = 0.0, const std::string& partition = {},
              const std::string& engine = {},
              std::uint64_t cell_visits = 0) const {
    BenchRecord r;
    r.dataset = dataset;
    r.cycles = cycles;
    r.energy_uj = energy_uj;
    r.threads = threads;
    r.wall_ms = wall_ms;
    r.partition = partition;
    r.engine = engine;
    r.cell_visits = cell_visits;
    record(r);
  }

  /// Struct form for measurements with many optional fields (the hybrid
  /// metrics): callers name each field instead of threading a long
  /// positional tail of same-typed integers. `bench` and `scale` are
  /// overwritten by the reporter; threads/partition/engine fall back to
  /// the env-resolved defaults when left 0/empty.
  void record(BenchRecord r) const {
    if (path_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path_.c_str());
      return;
    }
    r.bench = bench_;
    r.scale = scale_;
    if (r.threads == 0) r.threads = threads_;
    if (r.partition.empty()) r.partition = partition_;
    if (r.engine.empty()) r.engine = engine_;
    // Like `bench` and `scale`, the host's logical core count is always
    // the reporter's to stamp: wall_ms without the hardware it was
    // measured on is not comparable across machines.
    r.host_cores = host_cores_;
    std::fprintf(f, "%s\n", format_record(r).c_str());
    std::fclose(f);
  }

 private:
  std::string bench_;
  std::string scale_;
  std::string path_;
  std::uint64_t threads_ = 1;
  std::string partition_ = "rows";
  std::string engine_ = "scan";
  std::uint64_t host_cores_ = 1;
};

}  // namespace ccastream::bench
