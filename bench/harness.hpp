// Shared experiment harness for the paper-reproduction benchmarks.
//
// Scale control (environment):
//   CCASTREAM_SCALE=tiny   — smoke-test sizes (seconds; CI-friendly)
//   CCASTREAM_SCALE=paper  — the paper's 50K-vertex rows at full size and
//                            the 500K rows scaled 1/5 (default)
//   CCASTREAM_SCALE=large  — the full 500K/10.2M rows as well
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ccastream/ccastream.hpp"

namespace ccastream::bench {

struct DatasetSpec {
  std::string label;         ///< e.g. "50K"
  std::uint64_t vertices;
  std::uint64_t edges;
  bool scaled = false;       ///< true if reduced from the paper's size
};

enum class Scale { kTiny, kPaper, kLarge };

inline Scale scale_from_env() {
  const char* s = std::getenv("CCASTREAM_SCALE");
  if (s == nullptr) return Scale::kPaper;
  if (std::strcmp(s, "tiny") == 0) return Scale::kTiny;
  if (std::strcmp(s, "large") == 0) return Scale::kLarge;
  return Scale::kPaper;
}

/// The two dataset rows of paper Table 1, at the configured scale.
inline std::vector<DatasetSpec> datasets(Scale scale) {
  switch (scale) {
    case Scale::kTiny:
      return {{"2K(tiny)", 2'000, 40'000, true},
              {"8K(tiny)", 8'000, 160'000, true}};
    case Scale::kPaper:
      return {{"50K", 50'000, 1'000'000, false},
              {"500K(1/5)", 100'000, 2'040'000, true}};
    case Scale::kLarge:
      return {{"50K", 50'000, 1'000'000, false},
              {"500K", 500'000, 10'200'000, false}};
  }
  return {};
}

/// The paper's chip: 32x32 mesh, YX routing, vicinity allocation.
inline sim::ChipConfig paper_chip_config() {
  sim::ChipConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.routing = sim::RoutingPolicyKind::kYX;
  cfg.alloc_policy = rt::AllocPolicyKind::kVicinity;
  cfg.vicinity_radius = 2;
  cfg.cc_memory_bytes = 4u << 20;
  return cfg;
}

/// One assembled experiment: chip + protocol + BFS app + graph.
struct Experiment {
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<apps::StreamingBfs> bfs;
  std::unique_ptr<graph::StreamingGraph> graph;
};

/// Builds the streaming-BFS experiment of the paper. `with_bfs` false gives
/// the ingestion-only variant (hooks disabled — the paper's "disabling the
/// subsequent propagation of bfs-action").
inline Experiment make_experiment(const sim::ChipConfig& cfg,
                                  std::uint64_t num_vertices, bool with_bfs,
                                  std::uint64_t bfs_source) {
  Experiment e;
  e.chip = std::make_unique<sim::Chip>(cfg);
  e.proto = std::make_unique<graph::GraphProtocol>(*e.chip);
  e.bfs = std::make_unique<apps::StreamingBfs>(*e.proto);
  if (with_bfs) {
    e.bfs->install();
  } else {
    graph::AppHooks hooks;  // ingestion only; keep levels inert
    hooks.ghost_init = apps::StreamingBfs::initial_state();
    e.proto->set_hooks(hooks);
  }
  graph::GraphConfig gc;
  gc.num_vertices = num_vertices;
  gc.root_init = apps::StreamingBfs::initial_state();
  e.graph = std::make_unique<graph::StreamingGraph>(*e.proto, gc);
  if (with_bfs) e.bfs->set_source(*e.graph, bfs_source);
  return e;
}

/// Streams every increment of a schedule; returns per-increment reports.
inline std::vector<graph::IncrementReport> run_schedule(
    Experiment& e, const wl::StreamSchedule& sched) {
  std::vector<graph::IncrementReport> reports;
  reports.reserve(sched.increments.size());
  for (const auto& inc : sched.increments) {
    reports.push_back(e.graph->stream_increment(inc));
  }
  return reports;
}

inline std::uint64_t total_cycles(const std::vector<graph::IncrementReport>& r) {
  std::uint64_t c = 0;
  for (const auto& x : r) c += x.cycles;
  return c;
}

inline double total_energy_uj(const std::vector<graph::IncrementReport>& r) {
  double e = 0;
  for (const auto& x : r) e += x.energy_uj;
  return e;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace ccastream::bench
