// Umbrella header: the full public API of the ccastream library.
//
//   sim::Chip          — the AM-CCA chip simulator (mesh, routing, IO, energy)
//   graph::*           — RPVO fragments, insert-edge protocol, host façade
//   apps::*            — streaming BFS/SSSP/components, PageRank, triangles
//   wl::*              — SBM/R-MAT generators, Edge/Snowball sampling
//   base::*            — sequential reference oracles and baselines
//   io::*              — edge lists, CSV experiment outputs, increment logs
//   svc::*             — long-lived streaming service (ingest + queries)
#pragma once

#include "runtime/action.hpp"
#include "runtime/alloc_policy.hpp"
#include "runtime/arena.hpp"
#include "runtime/context.hpp"
#include "runtime/future.hpp"
#include "runtime/geometry.hpp"
#include "runtime/handler_registry.hpp"
#include "runtime/rng.hpp"
#include "runtime/terminator.hpp"
#include "runtime/types.hpp"

#include "sim/chip.hpp"
#include "sim/compute_cell.hpp"
#include "sim/energy.hpp"
#include "sim/io_channel.hpp"
#include "sim/message.hpp"
#include "sim/routing.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

#include "graph/builder.hpp"
#include "graph/device.hpp"
#include "graph/fragment.hpp"
#include "graph/protocol.hpp"
#include "graph/stream_edge.hpp"

#include "apps/bfs.hpp"
#include "apps/components.hpp"
#include "apps/pagerank.hpp"
#include "apps/reach.hpp"
#include "apps/repair.hpp"
#include "apps/sssp.hpp"
#include "apps/triangles.hpp"

#include "workload/rmat.hpp"
#include "workload/sampling.hpp"
#include "workload/sbm.hpp"
#include "workload/sliding_window.hpp"

#include "baseline/algorithms.hpp"
#include "baseline/dynamic_bfs.hpp"
#include "baseline/dynamic_components.hpp"
#include "baseline/dynamic_sssp.hpp"
#include "baseline/graph.hpp"

#include "io/csv.hpp"
#include "io/edgelist.hpp"
#include "io/increment_codec.hpp"

#include "svc/stream_service.hpp"
