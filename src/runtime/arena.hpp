// Arena storage of the runtime: the per-compute-cell scratchpad object
// arena, and the chip-wide slab arena backing the struct-of-arrays cell
// state.
//
// Each AM-CCA compute cell owns a fixed-capacity scratchpad memory. The
// runtime models it as an object arena: vertex fragments (and any other
// runtime objects) are placed into slots, and a GlobalAddress is
// (cc, slot). Capacity is accounted in *logical bytes* — the footprint the
// object would occupy in the real scratchpad — so allocation failure
// behaviour (arena exhaustion, allocation forwarding) can be exercised.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "runtime/check.hpp"
#include "runtime/types.hpp"

namespace ccastream::rt {

/// Chip-lifetime bump allocator for the struct-of-arrays cell state: one
/// zero-initialised byte slab carved into typed, cache-line-aligned
/// parallel arrays (hot words, FIFO message lanes, snapshot latches — see
/// sim/cell_soa.hpp). Two properties matter at the million-cell scale the
/// slab exists for:
///
///   * the backing store comes from calloc, so the kernel hands out
///     copy-on-write zero pages — a 1024x1024 mesh *reserves* its worst
///     case FIFO storage up front but only pages in what traffic actually
///     touches, and the first touch happens on the worker that owns the
///     cell (the NUMA-friendly placement the SoA layout was built for);
///   * every span is allocated exactly once, before the first cycle, and
///     never moves — so raw pointers into the slab are stable for the
///     chip's lifetime (the property the FIFO views rely on).
///
/// All spans must be reserved before the first allocate() (reserve() sums
/// span_bytes() for the planned layout); exceeding the reservation is a
/// fatal misuse, not a growth path — growth would invalidate every
/// outstanding pointer.
class SlabArena {
 public:
  /// Cache-line alignment of every span: no allocated array ever shares a
  /// line with its neighbour, so adjacent spans never false-share.
  static constexpr std::size_t kSpanAlign = 64;

  SlabArena() = default;

  /// Bytes allocate<T>(count) will consume: the array footprint rounded up
  /// to whole cache lines. Callers sum these to size reserve().
  template <typename T>
  [[nodiscard]] static constexpr std::size_t span_bytes(
      std::size_t count) noexcept {
    static_assert(alignof(T) <= kSpanAlign);
    return (count * sizeof(T) + kSpanAlign - 1) / kSpanAlign * kSpanAlign;
  }

  /// (Re)establishes the slab at `bytes` capacity, discarding any previous
  /// contents. Zero-page-backed: untouched spans cost address space, not
  /// resident memory.
  void reserve(std::size_t bytes) {
    buf_.reset(static_cast<std::byte*>(std::calloc(bytes, 1)));
    if (bytes != 0 && buf_ == nullptr) {
      fatal_misuse("SlabArena::reserve allocation failed", __FILE__, __LINE__);
    }
    capacity_ = bytes;
    used_ = 0;
  }

  /// Carves the next `count`-element array of T out of the slab,
  /// zero-filled and kSpanAlign-aligned. T must be trivially copyable: the
  /// slab never runs constructors or destructors — the zero fill IS the
  /// initial state (which is why every SoA field is designed so that
  /// all-zero means "idle").
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t bytes = span_bytes<T>(count);
    if (used_ + bytes > capacity_) {
      fatal_misuse("SlabArena::allocate beyond the reservation", __FILE__,
                   __LINE__);
    }
    T* span = reinterpret_cast<T*>(buf_.get() + used_);
    used_ += bytes;
    return span;
  }

  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  [[nodiscard]] std::size_t bytes_capacity() const noexcept {
    return capacity_;
  }

 private:
  struct FreeDeleter {
    void operator()(std::byte* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<std::byte, FreeDeleter> buf_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
};

/// Base class of every object that can live in a compute cell's scratchpad.
class ArenaObject {
 public:
  virtual ~ArenaObject() = default;

  /// Scratchpad footprint in bytes, charged against the cell's capacity at
  /// allocation time (objects reserve their full footprint up front).
  [[nodiscard]] virtual std::size_t logical_bytes() const noexcept = 0;
};

/// Object arena of one compute cell.
///
/// Slots are stable for the lifetime of the arena (objects are never moved),
/// so raw pointers returned by get() remain valid until clear().
class ObjectArena {
 public:
  explicit ObjectArena(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Places an object; returns its slot, or nullopt if the scratchpad would
  /// overflow. Ownership is transferred to the arena.
  std::optional<std::uint32_t> insert(std::unique_ptr<ArenaObject> obj);

  /// Returns the object in `slot`, or nullptr for an out-of-range slot.
  [[nodiscard]] ArenaObject* get(std::uint32_t slot) noexcept;
  [[nodiscard]] const ArenaObject* get(std::uint32_t slot) const noexcept;

  [[nodiscard]] std::size_t object_count() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  [[nodiscard]] std::size_t bytes_capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool would_fit(std::size_t bytes) const noexcept {
    return used_ + bytes <= capacity_;
  }

  /// Destroys all objects and resets the usage accounting.
  void clear();

 private:
  /// unique_ptr indirection keeps pointee addresses stable across slot
  /// growth (the get() contract above). A vector of them — unlike the
  /// deque it replaced — costs nothing while empty, which is what an idle
  /// cell's arena is; at a million cells the empty-deque block allocations
  /// alone were ~0.5 GiB.
  std::vector<std::unique_ptr<ArenaObject>> slots_;
  std::size_t capacity_;
  std::size_t used_ = 0;
};

}  // namespace ccastream::rt
