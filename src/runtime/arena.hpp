// Per-compute-cell scratchpad object arena.
//
// Each AM-CCA compute cell owns a fixed-capacity scratchpad memory. The
// runtime models it as an object arena: vertex fragments (and any other
// runtime objects) are placed into slots, and a GlobalAddress is
// (cc, slot). Capacity is accounted in *logical bytes* — the footprint the
// object would occupy in the real scratchpad — so allocation failure
// behaviour (arena exhaustion, allocation forwarding) can be exercised.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>

#include "runtime/types.hpp"

namespace ccastream::rt {

/// Base class of every object that can live in a compute cell's scratchpad.
class ArenaObject {
 public:
  virtual ~ArenaObject() = default;

  /// Scratchpad footprint in bytes, charged against the cell's capacity at
  /// allocation time (objects reserve their full footprint up front).
  [[nodiscard]] virtual std::size_t logical_bytes() const noexcept = 0;
};

/// Object arena of one compute cell.
///
/// Slots are stable for the lifetime of the arena (objects are never moved),
/// so raw pointers returned by get() remain valid until clear().
class ObjectArena {
 public:
  explicit ObjectArena(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Places an object; returns its slot, or nullopt if the scratchpad would
  /// overflow. Ownership is transferred to the arena.
  std::optional<std::uint32_t> insert(std::unique_ptr<ArenaObject> obj);

  /// Returns the object in `slot`, or nullptr for an out-of-range slot.
  [[nodiscard]] ArenaObject* get(std::uint32_t slot) noexcept;
  [[nodiscard]] const ArenaObject* get(std::uint32_t slot) const noexcept;

  [[nodiscard]] std::size_t object_count() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t bytes_used() const noexcept { return used_; }
  [[nodiscard]] std::size_t bytes_capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool would_fit(std::size_t bytes) const noexcept {
    return used_ + bytes <= capacity_;
  }

  /// Destroys all objects and resets the usage accounting.
  void clear();

 private:
  std::deque<std::unique_ptr<ArenaObject>> slots_;
  std::size_t capacity_;
  std::size_t used_ = 0;
};

}  // namespace ccastream::rt
