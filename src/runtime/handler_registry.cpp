#include "runtime/handler_registry.hpp"

namespace ccastream::rt {

void HandlerRegistry::ensure(std::size_t n) {
  if (entries_.size() < n) entries_.resize(n);
}

HandlerId HandlerRegistry::register_handler(std::string_view name, Handler fn) {
  const HandlerId id = next_user_++;
  ensure(static_cast<std::size_t>(id) + 1);
  entries_[id] = Entry{std::string(name), std::move(fn)};
  return id;
}

void HandlerRegistry::register_system_handler(HandlerId id, std::string_view name,
                                              Handler fn) {
  ensure(static_cast<std::size_t>(id) + 1);
  entries_[id] = Entry{std::string(name), std::move(fn)};
}

const Handler* HandlerRegistry::find(HandlerId id) const noexcept {
  if (id >= entries_.size() || !entries_[id].fn) return nullptr;
  return &entries_[id].fn;
}

std::string_view HandlerRegistry::name(HandlerId id) const noexcept {
  if (id >= entries_.size() || entries_[id].name.empty()) return "<unregistered>";
  return entries_[id].name;
}

}  // namespace ccastream::rt
