// Small deterministic PRNGs used throughout the simulator and workload
// generators. Self-contained so that every experiment is reproducible from a
// single seed, independent of the standard library's distribution details.
#pragma once

#include <cstdint>

namespace ccastream::rt {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality generator for simulation decisions
/// (allocator target choice, arbitration tie-breaks, workload sampling).
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via a multiply-shift reduction for
  /// bounds below 2^32 (all simulation uses), modulo reduction above.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    if (bound <= 0xFFFF'FFFFull) {
      return ((next() >> 32) * bound) >> 32;
    }
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ccastream::rt
