// Registry mapping handler ids to executable handler functions — the
// AMCCA_REGISTER_ACTION facility of paper Listing 1.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/action.hpp"
#include "runtime/context.hpp"

namespace ccastream::rt {

/// Executable body of an action. Runs on the compute cell owning
/// `action.target`.
using Handler = std::function<void(Context&, const Action&)>;

/// Table of registered action handlers. Ids below kFirstUserHandler are
/// reserved for runtime system actions (allocate, allocate-reply).
class HandlerRegistry {
 public:
  /// Registers `fn` under a fresh user handler id and returns that id.
  HandlerId register_handler(std::string_view name, Handler fn);

  /// Registers `fn` under a specific (reserved) id. Overwrites any previous
  /// registration; used by the runtime for its system handlers.
  void register_system_handler(HandlerId id, std::string_view name, Handler fn);

  /// Looks up a handler; nullptr for unknown ids (the simulator treats
  /// dispatching an unknown handler as a fault, not a crash).
  [[nodiscard]] const Handler* find(HandlerId id) const noexcept;

  /// Human-readable name for diagnostics; "<unregistered>" if unknown.
  [[nodiscard]] std::string_view name(HandlerId id) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Handler fn;
  };
  void ensure(std::size_t n);
  std::vector<Entry> entries_;
  HandlerId next_user_ = kFirstUserHandler;
};

}  // namespace ccastream::rt
