// The future LCO (Local Control Object) of paper §3 / Figure 4.
//
// A FutureAddr is a future of Pointer type living inside a vertex fragment.
// Its life cycle mirrors Figure 4 exactly:
//   (0) empty   — value null, queue empty;
//   (1) pending — an insert saw the edge list full and fired the allocate
//                 continuation; the future awaits the return trigger;
//   (2) pending with enqueued closures — actions that depend on the value
//                 arrive meanwhile; their deferred tasks queue up;
//   (3) ready   — the continuation returned with the new memory address;
//   (4) queue drained — every deferred task is scheduled on the cell's
//                 local task queue and the wait queue empties.
//
// A deferred task is represented as an Action whose target is patched with
// the future's value at fulfilment time (the closure of Listing 6 line 23-26
// always re-targets the awaited address).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/action.hpp"
#include "runtime/context.hpp"
#include "runtime/types.hpp"

namespace ccastream::rt {

/// future : (Future Pointer) — see file comment.
class FutureAddr {
 public:
  enum class State : std::uint8_t {
    kEmpty,    ///< No value, no allocation in flight.
    kPending,  ///< Allocation continuation in flight; waiters may queue.
    kReady,    ///< Value available.
  };

  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] bool is_empty() const noexcept { return state_ == State::kEmpty; }
  [[nodiscard]] bool is_pending() const noexcept { return state_ == State::kPending; }
  [[nodiscard]] bool is_ready() const noexcept { return state_ == State::kReady; }

  /// Value of a ready future; null address otherwise.
  [[nodiscard]] GlobalAddress value() const noexcept { return value_; }

  /// Marks the future pending (`future-pending!`). Only legal from empty;
  /// returns false (no-op) otherwise so callers can detect protocol misuse.
  bool set_pending() noexcept;

  /// Enqueues a deferred task to run once the value arrives
  /// (`enqueue-future!`). The task's target is patched to the value at
  /// fulfilment. Only legal while pending; returns false otherwise.
  bool enqueue(const Action& deferred);

  /// Fulfils the future (`set-future!` via the returned continuation) and
  /// drains every waiter onto the executing cell's local task queue.
  /// Returns the number of waiters drained; -1 if the future was already
  /// ready (double fulfilment is a protocol fault the caller can surface).
  int fulfil(GlobalAddress value, Context& ctx);

  /// Number of tasks currently waiting on the value.
  [[nodiscard]] std::size_t pending_tasks() const noexcept { return waiters_.size(); }

  /// High-water mark of the wait queue (diagnostics / paper Figure 4 study).
  [[nodiscard]] std::size_t max_queue_depth() const noexcept { return max_depth_; }

  /// Scratchpad footprint contribution of the queue bookkeeping.
  [[nodiscard]] static constexpr std::size_t logical_bytes() noexcept {
    return sizeof(GlobalAddress) + sizeof(State);
  }

 private:
  GlobalAddress value_ = kNullAddress;
  State state_ = State::kEmpty;
  std::vector<Action> waiters_;
  std::size_t max_depth_ = 0;
};

}  // namespace ccastream::rt
