#include "runtime/arena.hpp"

namespace ccastream::rt {

std::optional<std::uint32_t> ObjectArena::insert(std::unique_ptr<ArenaObject> obj) {
  if (obj == nullptr) return std::nullopt;
  const std::size_t bytes = obj->logical_bytes();
  if (!would_fit(bytes)) return std::nullopt;
  used_ += bytes;
  slots_.push_back(std::move(obj));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

ArenaObject* ObjectArena::get(std::uint32_t slot) noexcept {
  if (slot >= slots_.size()) return nullptr;
  return slots_[slot].get();
}

const ArenaObject* ObjectArena::get(std::uint32_t slot) const noexcept {
  if (slot >= slots_.size()) return nullptr;
  return slots_[slot].get();
}

void ObjectArena::clear() {
  slots_.clear();
  used_ = 0;
}

}  // namespace ccastream::rt
