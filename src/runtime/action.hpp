// The active message ("action") of the diffusive programming model.
//
// An action couples a handler (code) with a target global address (data) and
// a small operand payload. Sending an action moves *work to data*: the
// handler executes on the compute cell that owns the target address and may
// itself `propagate` further actions, producing the diffusion of paper §2.
#pragma once

#include <cstdint>

#include "runtime/types.hpp"

namespace ccastream::rt {

/// One asynchronous active message.
struct Action {
  HandlerId handler = 0;          ///< Registered handler to run at the target.
  std::uint16_t nargs = 0;        ///< Number of valid words in `args`.
  GlobalAddress target;           ///< Data locality the handler runs against.
  Payload args{};                 ///< Operand words (single 256-bit flit).
};

/// Convenience factory packing up to kPayloadWords operand words.
template <typename... Ws>
[[nodiscard]] inline Action make_action(HandlerId handler, GlobalAddress target,
                                        Ws... words) {
  static_assert(sizeof...(Ws) <= kPayloadWords,
                "action payload exceeds one 256-bit flit");
  Action a;
  a.handler = handler;
  a.target = target;
  a.nargs = static_cast<std::uint16_t>(sizeof...(Ws));
  std::size_t i = 0;
  ((a.args[i++] = static_cast<Word>(words)), ...);
  return a;
}

/// Handler ids reserved by the runtime itself. Applications register their
/// handlers above kFirstUserHandler.
enum SystemHandler : HandlerId {
  /// Allocate an object in the target CC's arena and send back a trigger
  /// action carrying the new address (the `allocate` system action of
  /// paper Listing 6 / Figure 3).
  kHandlerAllocate = 0,
  /// First id available to library/user handlers.
  kFirstUserHandler = 8,
};

}  // namespace ccastream::rt
