// Core value types of the diffusive runtime: machine words, global (PGAS)
// addresses, and the payload carried by a single network flit.
//
// AM-CCA links are 256 bits wide (paper §4), so an action's operand payload
// is modelled as four 64-bit words: small enough to traverse one hop per
// simulation cycle in a single flit.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace ccastream::rt {

/// Machine word of the AM-CCA abstract machine.
using Word = std::uint64_t;

/// Number of operand words in one action payload (256-bit flit).
inline constexpr std::size_t kPayloadWords = 4;

/// Operand payload of an action: fits in a single 256-bit flit.
using Payload = std::array<Word, kPayloadWords>;

/// Identifies a registered action handler ("instruction stream") on the chip.
using HandlerId = std::uint16_t;

/// Sentinel compute-cell id used by null addresses.
inline constexpr std::uint32_t kNullCc = std::numeric_limits<std::uint32_t>::max();

/// A PGAS address: (compute cell, slot within that cell's object arena).
///
/// This is the "Pointer" type of the paper's listings. Actions are routed to
/// `cc` and dereference `slot` in the cell's scratchpad arena on arrival.
struct GlobalAddress {
  std::uint32_t cc = kNullCc;
  std::uint32_t slot = 0;

  [[nodiscard]] constexpr bool is_null() const noexcept { return cc == kNullCc; }

  friend constexpr bool operator==(GlobalAddress, GlobalAddress) = default;

  /// Packs the address into one machine word for payload transport.
  [[nodiscard]] constexpr Word pack() const noexcept {
    return (static_cast<Word>(cc) << 32) | slot;
  }
  /// Inverse of pack().
  [[nodiscard]] static constexpr GlobalAddress unpack(Word w) noexcept {
    return GlobalAddress{static_cast<std::uint32_t>(w >> 32),
                         static_cast<std::uint32_t>(w & 0xFFFF'FFFFu)};
  }
};

/// Distinguished null address ("the future has no value yet").
inline constexpr GlobalAddress kNullAddress{};

}  // namespace ccastream::rt

template <>
struct std::hash<ccastream::rt::GlobalAddress> {
  std::size_t operator()(const ccastream::rt::GlobalAddress& a) const noexcept {
    return std::hash<ccastream::rt::Word>{}(a.pack());
  }
};
