// Mesh geometry shared by the simulator's routers and the runtime's
// allocation policies: 2-D coordinates on the chip, index <-> coordinate
// mapping, and Manhattan (minimal-path) hop distance.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace ccastream::rt {

/// Coordinate of a compute cell on the chip mesh. x is the column
/// (horizontal), y the row (vertical); (0,0) is the north-west corner.
struct Coord {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  friend constexpr bool operator==(Coord, Coord) = default;
};

/// Rectangular mesh of width*height compute cells, linearised row-major.
class MeshGeometry {
 public:
  constexpr MeshGeometry(std::uint32_t width, std::uint32_t height) noexcept
      : width_(width), height_(height) {}

  [[nodiscard]] constexpr std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] constexpr std::uint32_t height() const noexcept { return height_; }
  [[nodiscard]] constexpr std::uint32_t cell_count() const noexcept {
    return width_ * height_;
  }

  [[nodiscard]] constexpr Coord coord_of(std::uint32_t cc) const noexcept {
    return Coord{cc % width_, cc / width_};
  }
  [[nodiscard]] constexpr std::uint32_t index_of(Coord c) const noexcept {
    return c.y * width_ + c.x;
  }
  [[nodiscard]] constexpr bool contains(Coord c) const noexcept {
    return c.x < width_ && c.y < height_;
  }

  /// Minimal-path (Manhattan) hop count between two cells.
  [[nodiscard]] constexpr std::uint32_t hops(std::uint32_t a, std::uint32_t b) const noexcept {
    const Coord ca = coord_of(a), cb = coord_of(b);
    const auto dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
    const auto dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
    return dx + dy;
  }

 private:
  std::uint32_t width_;
  std::uint32_t height_;
};

}  // namespace ccastream::rt
