#include "runtime/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ccastream::rt {

std::string_view to_string(CheckLevel level) noexcept {
  switch (level) {
    case CheckLevel::off: return "off";
    case CheckLevel::cheap: return "cheap";
    case CheckLevel::full: return "full";
  }
  return "off";
}

std::optional<CheckLevel> parse_check_level(std::string_view text) {
  if (text == "off") return CheckLevel::off;
  if (text == "cheap") return CheckLevel::cheap;
  if (text == "full") return CheckLevel::full;
  return std::nullopt;
}

CheckLevel resolve_check_level(const std::optional<CheckLevel>& requested) {
  if (requested) return *requested;
  if (const char* env = std::getenv("CCASTREAM_CHECK")) {
    if (const auto level = parse_check_level(env)) return *level;
    // Warn (once) instead of failing, mirroring CCASTREAM_ENGINE: a typo
    // ("ful") would otherwise silently run the unchecked build — e.g. the
    // CI checked-determinism leg verifying nothing.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccastream: ignoring unparsable CCASTREAM_CHECK '%s' "
                   "(using off)\n",
                   env);
    }
  }
  return CheckLevel::off;
}

void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ccastream: CCA_CHECK failed: %s at %s:%d\n", expr,
               file, line);
  std::abort();
}

void fatal_misuse(const char* what, const char* file, int line) {
  std::fprintf(stderr, "ccastream: fatal misuse: %s at %s:%d\n", what, file,
               line);
  std::abort();
}

}  // namespace ccastream::rt
