// Ghost-vertex allocation policies (paper §4 "Graph Construction",
// Figure 5): when a vertex fragment overflows and a ghost must be allocated
// on some compute cell, the policy picks the cell.
//
//  - Vicinity:   uniformly among cells within `radius` hops of the origin
//                (paper default: at most 2 hops) — keeps intra-vertex
//                operation latency minimal.
//  - Random:     uniformly over the whole chip — the paper's contrast case.
//  - RoundRobin: deterministic chip-wide rotation (load-balance contrast).
//  - Local:      always the origin cell (degenerate lower bound on hops;
//                exercises arena-exhaustion forwarding).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/geometry.hpp"
#include "runtime/rng.hpp"

namespace ccastream::rt {

enum class AllocPolicyKind : std::uint8_t {
  kVicinity,
  kRandom,
  kRoundRobin,
  kLocal,
};

/// Returns a short stable name ("vicinity", "random", ...) for reports.
[[nodiscard]] std::string_view to_string(AllocPolicyKind kind) noexcept;

/// Strategy interface: chooses the compute cell that should host a new
/// ghost fragment for a vertex rooted at `origin_cc`.
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;
  [[nodiscard]] virtual std::uint32_t choose(std::uint32_t origin_cc,
                                             const MeshGeometry& mesh,
                                             Xoshiro256& rng) = 0;
  [[nodiscard]] virtual AllocPolicyKind kind() const noexcept = 0;

  /// Called once by the chip before simulation starts. Policies that keep
  /// per-origin state size it here so concurrent choose() calls from
  /// different cells never reallocate shared storage.
  virtual void prepare(const MeshGeometry& /*mesh*/) {}
};

/// Vicinity allocator: cells with 1..radius hop distance from the origin.
class VicinityAllocator final : public AllocationPolicy {
 public:
  explicit VicinityAllocator(std::uint32_t radius = 2) : radius_(radius) {}
  [[nodiscard]] std::uint32_t choose(std::uint32_t origin_cc, const MeshGeometry& mesh,
                                     Xoshiro256& rng) override;
  [[nodiscard]] AllocPolicyKind kind() const noexcept override {
    return AllocPolicyKind::kVicinity;
  }
  [[nodiscard]] std::uint32_t radius() const noexcept { return radius_; }

 private:
  std::uint32_t radius_;
};

/// Random allocator: uniform over all cells (Figure 5b).
class RandomAllocator final : public AllocationPolicy {
 public:
  [[nodiscard]] std::uint32_t choose(std::uint32_t origin_cc, const MeshGeometry& mesh,
                                     Xoshiro256& rng) override;
  [[nodiscard]] AllocPolicyKind kind() const noexcept override {
    return AllocPolicyKind::kRandom;
  }
};

/// Chip-wide rotation, keyed per originating cell: each origin walks the
/// whole chip in index order with its own cursor. Keying by cell (instead
/// of one global call-order cursor) keeps the sequence deterministic under
/// the parallel engine, where the interleaving of choose() calls from
/// different cells depends on thread scheduling.
class RoundRobinAllocator final : public AllocationPolicy {
 public:
  [[nodiscard]] std::uint32_t choose(std::uint32_t origin_cc, const MeshGeometry& mesh,
                                     Xoshiro256& rng) override;
  [[nodiscard]] AllocPolicyKind kind() const noexcept override {
    return AllocPolicyKind::kRoundRobin;
  }
  void prepare(const MeshGeometry& mesh) override;

 private:
  std::vector<std::uint32_t> cursors_;  // per-origin rotation state
};

/// Always the originating cell.
class LocalAllocator final : public AllocationPolicy {
 public:
  [[nodiscard]] std::uint32_t choose(std::uint32_t origin_cc, const MeshGeometry& mesh,
                                     Xoshiro256& rng) override;
  [[nodiscard]] AllocPolicyKind kind() const noexcept override {
    return AllocPolicyKind::kLocal;
  }
};

/// Factory. `vicinity_radius` only applies to the vicinity policy.
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_alloc_policy(
    AllocPolicyKind kind, std::uint32_t vicinity_radius = 2);

}  // namespace ccastream::rt
