// Execution context handed to every action handler.
//
// A handler runs *at* a compute cell, against a target object in that cell's
// scratchpad. Through the context it can: mutate local objects, `propagate`
// new actions into the network (the diffusion), schedule deferred local
// tasks (used when a future LCO is fulfilled), charge abstract instruction
// cost, and issue the asynchronous `allocate` system action with a
// return-trigger continuation (paper §3.1, Figure 3).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>

#include "runtime/action.hpp"
#include "runtime/arena.hpp"
#include "runtime/geometry.hpp"
#include "runtime/rng.hpp"
#include "runtime/types.hpp"

namespace ccastream::rt {

/// Kind tag for arena objects creatable through the allocate system action.
/// Object factories are registered per kind with the chip.
using ObjectKind = std::uint16_t;

/// Simulator statistic channels a handler (or the protocol library) may
/// bump from inside an action. The simulator routes them to the executing
/// partition's private accumulator and merges at the end-of-cycle barrier,
/// so handlers never write shared chip state — the invariant that makes the
/// parallel engine race-free and deterministic.
enum class SimCounter : std::uint8_t {
  kFuturesFulfilled,
  kFutureWaitersDrained,
  kAllocForwards,
  kAllocFailures,
};

/// Abstract handler execution context. The simulator provides the concrete
/// implementation; tests may provide mocks.
class Context {
 public:
  virtual ~Context() = default;

  /// Index of the compute cell this handler is executing on.
  [[nodiscard]] virtual std::uint32_t cc() const = 0;

  /// Chip mesh geometry (for locality-aware decisions).
  [[nodiscard]] virtual const MeshGeometry& geometry() const = 0;

  /// Stages an outbound action. Staging costs one cell-cycle per message
  /// (paper §4: a cell either executes an instruction or stages a message).
  virtual void propagate(const Action& action) = 0;

  /// Enqueues an action on this cell's local task queue, bypassing the
  /// network. Used to schedule closures drained from a future's wait queue.
  virtual void schedule_local(const Action& action) = 0;

  /// Charges `instructions` abstract instruction cycles to this cell.
  virtual void charge(std::uint32_t instructions) = 0;

  /// Dereferences an address owned by this cell. Returns nullptr if the
  /// address belongs to a different cell or is out of range — actions only
  /// ever touch memory local to the cell they run on.
  [[nodiscard]] virtual ArenaObject* deref(GlobalAddress addr) = 0;

  /// Synchronously allocates an object of `kind` in this cell's own arena.
  /// Returns the new address, or nullopt when the scratchpad is full.
  virtual std::optional<GlobalAddress> allocate_local(ObjectKind kind) = 0;

  /// Fires the asynchronous `allocate` system action (paper Listing 6 line
  /// 18, Figure 3): an allocation request is propagated to a compute cell
  /// chosen by the chip's ghost-allocation policy; when the remote cell has
  /// allocated, it sends back the *return-trigger* action
  /// `reply_handler(reply_to, new_address, tag)` which resumes the waiting
  /// state (typically by fulfilling a future LCO).
  virtual void call_cc_allocate(ObjectKind kind, GlobalAddress reply_to,
                                HandlerId reply_handler, Word tag) = 0;

  /// Per-cell deterministic RNG.
  [[nodiscard]] virtual Xoshiro256& rng() = 0;

  /// Bumps a simulator statistic from handler code. Mock contexts may keep
  /// the default no-op.
  virtual void count(SimCounter /*counter*/, std::uint64_t /*n*/) {}

  /// Index of the engine partition (row stripe, column stripe, or 2-D
  /// tile — see sim/partition.hpp) executing this handler — always 0 on
  /// mocks and the serial engine. Handler libraries that keep their own
  /// counters key them by this index so concurrent handlers never write
  /// shared memory (see graph::GraphProtocol::stats()). Ids are stable
  /// 0..partitions-1 even when boundaries rebalance, and every keyed
  /// counter must be a pure sum so totals stay partition-invariant.
  [[nodiscard]] virtual std::uint32_t partition() const { return 0; }

  /// Typed local dereference helper. T must derive from ArenaObject.
  template <typename T>
  [[nodiscard]] T* as(GlobalAddress addr) {
    static_assert(std::is_base_of_v<ArenaObject, T>);
    return static_cast<T*>(deref(addr));
  }
};

}  // namespace ccastream::rt
