#include "runtime/terminator.hpp"

#include <cassert>

namespace ccastream::rt {

SafraTerminator::SafraTerminator(std::uint32_t process_count)
    : counter_(process_count, 0),
      colour_(process_count, Colour::kWhite),
      active_(process_count, true),
      n_(process_count) {
  assert(process_count > 0);
}

void SafraTerminator::on_send(std::uint32_t p) {
  assert(p < n_);
  ++counter_[p];
}

void SafraTerminator::on_receive(std::uint32_t p) {
  assert(p < n_);
  --counter_[p];
  colour_[p] = Colour::kBlack;
  active_[p] = true;
}

void SafraTerminator::on_passive(std::uint32_t p) {
  assert(p < n_);
  active_[p] = false;
}

void SafraTerminator::on_active(std::uint32_t p) {
  assert(p < n_);
  active_[p] = true;
}

bool SafraTerminator::pump(std::uint32_t max_hops) {
  for (std::uint32_t hop = 0; hop < max_hops && !announced_; ++hop) {
    if (active_[token_at_]) break;  // token waits at an active process

    if (token_at_ == 0) {
      if (!token_in_flight_) {
        // Initiate (or re-initiate) a probe round with a fresh white token.
        token_colour_ = Colour::kWhite;
        token_count_ = 0;
        colour_[0] = Colour::kWhite;
        token_in_flight_ = true;
        token_at_ = n_ > 1 ? n_ - 1 : 0;  // token travels n-1, n-2, ..., 0
        ++rounds_;
        if (n_ == 1) {
          // Single process: the round completes immediately.
          token_in_flight_ = false;
          if (counter_[0] == 0 && colour_[0] == Colour::kWhite) announced_ = true;
        }
        continue;
      }
      // Round complete: token returned to process 0.
      token_in_flight_ = false;
      const bool white_round = token_colour_ == Colour::kWhite &&
                               colour_[0] == Colour::kWhite;
      if (white_round && token_count_ + counter_[0] == 0) {
        announced_ = true;
      } else {
        colour_[0] = Colour::kWhite;  // unsuccessful round; will re-probe
      }
      continue;
    }

    // Forward the token from token_at_ to token_at_ - 1.
    token_count_ += counter_[token_at_];
    if (colour_[token_at_] == Colour::kBlack) token_colour_ = Colour::kBlack;
    colour_[token_at_] = Colour::kWhite;
    --token_at_;
  }
  return announced_;
}

}  // namespace ccastream::rt
