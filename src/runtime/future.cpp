#include "runtime/future.hpp"

namespace ccastream::rt {

bool FutureAddr::set_pending() noexcept {
  if (state_ != State::kEmpty) return false;
  state_ = State::kPending;
  return true;
}

bool FutureAddr::enqueue(const Action& deferred) {
  if (state_ != State::kPending) return false;
  waiters_.push_back(deferred);
  if (waiters_.size() > max_depth_) max_depth_ = waiters_.size();
  return true;
}

int FutureAddr::fulfil(GlobalAddress value, Context& ctx) {
  if (state_ == State::kReady) return -1;
  state_ = State::kReady;
  value_ = value;
  const int drained = static_cast<int>(waiters_.size());
  for (Action& w : waiters_) {
    w.target = value_;
    ctx.schedule_local(w);
  }
  waiters_.clear();
  waiters_.shrink_to_fit();
  return drained;
}

}  // namespace ccastream::rt
