#include "runtime/alloc_policy.hpp"

#include <vector>

namespace ccastream::rt {

std::string_view to_string(AllocPolicyKind kind) noexcept {
  switch (kind) {
    case AllocPolicyKind::kVicinity: return "vicinity";
    case AllocPolicyKind::kRandom: return "random";
    case AllocPolicyKind::kRoundRobin: return "round-robin";
    case AllocPolicyKind::kLocal: return "local";
  }
  return "unknown";
}

std::uint32_t VicinityAllocator::choose(std::uint32_t origin_cc,
                                        const MeshGeometry& mesh, Xoshiro256& rng) {
  // Enumerate cells at Manhattan distance 1..radius_ around the origin.
  // The candidate set is tiny (2r(r+1) cells for radius r), so direct
  // enumeration per call is cheap and avoids any per-cell cached state.
  const Coord o = mesh.coord_of(origin_cc);
  std::vector<std::uint32_t> candidates;
  candidates.reserve(2 * radius_ * (radius_ + 1));
  const auto r = static_cast<std::int64_t>(radius_);
  for (std::int64_t dy = -r; dy <= r; ++dy) {
    const std::int64_t rem = r - (dy < 0 ? -dy : dy);
    for (std::int64_t dx = -rem; dx <= rem; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const std::int64_t x = static_cast<std::int64_t>(o.x) + dx;
      const std::int64_t y = static_cast<std::int64_t>(o.y) + dy;
      if (x < 0 || y < 0) continue;
      const Coord c{static_cast<std::uint32_t>(x), static_cast<std::uint32_t>(y)};
      if (!mesh.contains(c)) continue;
      candidates.push_back(mesh.index_of(c));
    }
  }
  if (candidates.empty()) return origin_cc;  // 1x1 mesh: nowhere else to go.
  return candidates[rng.below(candidates.size())];
}

std::uint32_t RandomAllocator::choose(std::uint32_t /*origin_cc*/,
                                      const MeshGeometry& mesh, Xoshiro256& rng) {
  return static_cast<std::uint32_t>(rng.below(mesh.cell_count()));
}

void RoundRobinAllocator::prepare(const MeshGeometry& mesh) {
  cursors_.assign(mesh.cell_count(), 0);
}

std::uint32_t RoundRobinAllocator::choose(std::uint32_t origin_cc,
                                          const MeshGeometry& mesh,
                                          Xoshiro256& /*rng*/) {
  // Unprepared standalone use (unit tests, host-side experiments) grows the
  // cursor table lazily; the chip always calls prepare() first, so choose()
  // never reallocates while handlers run concurrently.
  if (cursors_.size() < mesh.cell_count()) cursors_.resize(mesh.cell_count(), 0);
  std::uint32_t& cursor = cursors_[origin_cc % cursors_.size()];
  // Anchoring each origin's walk at its own cell keeps concurrent early
  // allocations spread across the whole chip (cursor-from-zero would point
  // every origin's first ghost at cell 0, piling load onto low indices).
  const std::uint32_t cc =
      static_cast<std::uint32_t>((origin_cc + cursor) % mesh.cell_count());
  ++cursor;
  return cc;
}

std::uint32_t LocalAllocator::choose(std::uint32_t origin_cc,
                                     const MeshGeometry& /*mesh*/,
                                     Xoshiro256& /*rng*/) {
  return origin_cc;
}

std::unique_ptr<AllocationPolicy> make_alloc_policy(AllocPolicyKind kind,
                                                    std::uint32_t vicinity_radius) {
  switch (kind) {
    case AllocPolicyKind::kVicinity:
      return std::make_unique<VicinityAllocator>(vicinity_radius);
    case AllocPolicyKind::kRandom: return std::make_unique<RandomAllocator>();
    case AllocPolicyKind::kRoundRobin: return std::make_unique<RoundRobinAllocator>();
    case AllocPolicyKind::kLocal: return std::make_unique<LocalAllocator>();
  }
  return std::make_unique<VicinityAllocator>(vicinity_radius);
}

}  // namespace ccastream::rt
