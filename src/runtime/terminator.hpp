// Distributed termination detection for the diffusion.
//
// Paper Listing 1 creates an `AMCCA_Terminator` and `dev.run(terminator)`
// blocks until the diffusion has terminated. On the simulator the chip can
// see global quiescence directly; a *decentralized* system cannot, so the
// library also provides Safra's ring-token termination-detection algorithm
// (the classic colour/counter scheme for asynchronous message passing).
// Tests validate that Safra's detector announces termination exactly when
// the global view is quiescent and never before.
#pragma once

#include <cstdint>
#include <vector>

namespace ccastream::rt {

/// Safra's termination detection over N processes arranged in a ring.
///
/// Protocol summary (Dijkstra/Safra):
///  * every process keeps a message counter (sends - receives) and a colour;
///  * receiving a basic message turns a process black;
///  * process 0 starts a white token with count 0 when it goes passive;
///  * a passive process forwards the token, adding its counter; if the
///    process is black the token turns black, and the process turns white;
///  * process 0 announces termination when it is passive and white and
///    receives a white token whose count plus its own counter is zero.
///
/// The harness drives the detector by reporting basic-message sends and
/// receives and activity transitions; `pump()` advances the token whenever
/// its current holder is passive.
class SafraTerminator {
 public:
  explicit SafraTerminator(std::uint32_t process_count);

  /// Process `p` sent one basic message.
  void on_send(std::uint32_t p);
  /// Process `p` received one basic message (and becomes active).
  void on_receive(std::uint32_t p);
  /// Process `p` finished its local work and became passive.
  void on_passive(std::uint32_t p);
  /// Process `p` became active for a non-message reason (local spawn).
  void on_active(std::uint32_t p);

  /// Advances the token by at most `max_hops` ring positions (a hop only
  /// happens while the holder is passive). Returns true if termination has
  /// been announced (now or earlier).
  bool pump(std::uint32_t max_hops = 1);

  [[nodiscard]] bool terminated() const noexcept { return announced_; }
  [[nodiscard]] std::uint32_t token_position() const noexcept { return token_at_; }
  [[nodiscard]] std::uint64_t token_rounds() const noexcept { return rounds_; }

 private:
  enum class Colour : std::uint8_t { kWhite, kBlack };

  std::vector<std::int64_t> counter_;  // sends - receives per process
  std::vector<Colour> colour_;
  std::vector<bool> active_;
  std::uint32_t n_;
  std::uint32_t token_at_ = 0;
  std::int64_t token_count_ = 0;
  Colour token_colour_ = Colour::kWhite;
  bool token_in_flight_ = false;  // token issued and circulating
  bool announced_ = false;
  std::uint64_t rounds_ = 0;
};

}  // namespace ccastream::rt
