// The checked-build verifier: CCA_CHECK(level, expr) — runtime-gated
// invariant checks that stay compiled into every build type (unlike
// assert) and cost one byte-compare when disabled.
//
// Three levels, resolved per chip (config > CCASTREAM_CHECK env > off):
//   * off   — every CCA_CHECK is a predictable untaken branch; the
//             production default (benchmarked: no measurable cost).
//   * cheap — O(1)-per-event checks at every mutation helper: the cached
//             fifo_msgs counter is cross-checked against the actual FIFO
//             occupancy after each sanctioned push/pop (see
//             ComputeCell's FIFO helpers).
//   * full  — everything in cheap, plus O(mesh) barrier-point sweeps at
//             the end of every cycle verifying the invariants no static
//             tool can see: active-set membership exactly equals
//             ComputeCell::has_work(), dense flag counts equal the flag
//             popcount, every cell's cached counter equals its real
//             occupancy, partition rectangles exactly cover the mesh, and
//             all cross-partition outboxes are drained (see
//             Chip::verify_cycle_invariants). CI runs the determinism and
//             engine-equivalence suites under CCASTREAM_CHECK=full.
//
// The macro reads the *current scope's* `cca_check_level()` — Chip and
// ComputeCell each provide one returning their resolved level — so two
// chips in one process can run at different levels (the resolution tests
// depend on that).
//
// A failed check is a fatal invariant violation, not an error condition:
// it prints the expression and location and aborts, same contract as the
// lint's runtime sibling (tools/lint/ccastream_lint.py covers what *can*
// be seen statically; CCA_CHECK covers what cannot).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace ccastream::rt {

/// Runtime verification level of the checked build. Enumerators are
/// lowercase so check sites read as the documented knob values:
/// CCA_CHECK(cheap, ...) / CCA_CHECK(full, ...).
enum class CheckLevel : std::uint8_t { off = 0, cheap = 1, full = 2 };

[[nodiscard]] std::string_view to_string(CheckLevel level) noexcept;

/// Parses "off", "cheap" or "full"; nullopt otherwise.
[[nodiscard]] std::optional<CheckLevel> parse_check_level(
    std::string_view text);

/// Resolves a chip's check level: an explicit config wins, otherwise the
/// CCASTREAM_CHECK environment variable (ignored with a one-shot warning
/// when unparsable), otherwise off.
[[nodiscard]] CheckLevel resolve_check_level(
    const std::optional<CheckLevel>& requested);

/// Reports a failed CCA_CHECK and aborts. Out of line so the check sites
/// stay a compare + cold call.
[[noreturn]] void check_failed(const char* expr, const char* file, int line);

/// Reports a structural-misuse fault (e.g. a FIFO pushed past capacity)
/// and aborts. Always on — these guard "impossible by construction"
/// contracts whose violation means memory corruption is next.
[[noreturn]] void fatal_misuse(const char* what, const char* file, int line);

}  // namespace ccastream::rt

/// Runtime-gated invariant check. `lvl` is `cheap` or `full`; the check
/// fires when the scope's cca_check_level() is at or above it. Evaluates
/// `expr` only when enabled, so full-level sweeps can guard O(mesh) work
/// behind their own level test.
#define CCA_CHECK(lvl, expr)                                          \
  do {                                                                \
    if (cca_check_level() >= ::ccastream::rt::CheckLevel::lvl &&      \
        !(expr)) {                                                    \
      ::ccastream::rt::check_failed(#expr, __FILE__, __LINE__);       \
    }                                                                 \
  } while (0)
