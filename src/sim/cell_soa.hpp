// Struct-of-arrays hot cell state, owned by the Chip and keyed by cell id.
//
// ComputeCell used to be an array-of-structs object dragging six Fifo
// containers, three deques, an ObjectArena, and an RNG through every cache
// line the engines touch; at 512x512-1024x1024 meshes the dense-mode
// rectangle walks and per-cycle idle sweeps were memory-bound on state
// they never read. CellSoA splits the *hot* per-cell state into parallel
// arrays carved out of one rt::SlabArena:
//
//   hot_       one packed word per cell: busy cycles in the high half,
//              total queued work items (FIFO messages + staged + task +
//              action queue entries) in the low half. idle() is exactly
//              `hot == 0` — one aligned load per cell for the sweeps that
//              used to touch a whole object.
//   fifo_msgs_ the exact router-occupancy counter (all six lanes) the
//              checked build cross-checks at every sanctioned mutation.
//   snapshot_  the four phase-start router-input latches per cell that
//              neighbour room/occupancy decisions read.
//   arb_next_  the round-robin arbitration pointer per cell.
//   active_    the activity-flag BITMAP of the event-driven engine: bit i
//              is cell i's in_active_set flag. Dense-mode phase walks
//              sweep these words directly (64 cells per load +
//              countr_zero) instead of testing a bool per cell object.
//   lanes_ / lane_head_ / lane_size_
//              the six per-cell message FIFOs (4 router ports, the IO
//              port, the local outport) as slab storage indexed by
//              (cell, lane), mutated only through FifoView — per-object
//              heap ring buffers are gone entirely.
//
// Concurrency: every array except `active_` is single-writer — only the
// partition that owns a cell writes its words, and cross-phase visibility
// comes from the engine's barriers, exactly as with the old per-cell
// members. The activity bitmap alone is written bit-per-owner but
// word-across-partitions (a 64-cell word can straddle a partition
// boundary), so all flag access goes through relaxed std::atomic_ref
// read-modify-writes; each *bit* still has a single writer, which is what
// keeps the engine deterministic.
//
// All-zero is the idle state of every array, so the slab's calloc zero
// pages ARE the initial state: a fresh million-cell mesh reserves its
// worst-case FIFO storage without paging any of it in, and each page is
// first touched by the worker that owns the cell (NUMA-friendly first
// touch; see docs/ARCHITECTURE.md "Memory layout").
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdint>

#include "runtime/arena.hpp"
#include "runtime/check.hpp"
#include "sim/fifo.hpp"
#include "sim/message.hpp"
#include "sim/routing.hpp"

namespace ccastream::sim {

class CellSoA {
 public:
  /// FIFO lanes per cell, in arbitration order: router ports 0..3
  /// (kMeshDirections), then the IO input, then the local outport.
  static constexpr std::size_t kLanes = kMeshDirections + 2;
  static constexpr std::size_t kIoLane = kMeshDirections;
  static constexpr std::size_t kLocalOutLane = kMeshDirections + 1;

  CellSoA() = default;
  CellSoA(const CellSoA&) = delete;
  CellSoA& operator=(const CellSoA&) = delete;

  /// Reserves and carves the slab for `cell_count` cells with
  /// `fifo_depth`-deep lanes. Called exactly once, from the Chip
  /// constructor, before any cell exists; the returned spans never move.
  void init(std::uint32_t cell_count, std::uint32_t fifo_depth);

  [[nodiscard]] std::uint32_t cell_count() const noexcept { return cells_; }
  [[nodiscard]] std::uint32_t fifo_depth() const noexcept { return depth_; }

  // --- The packed hot word -------------------------------------------------
  // hot = busy << 32 | work_items. work_items counts everything the cell
  // holds: FIFO messages plus staged/task/action queue entries. A cell is
  // idle iff its hot word is zero.

  [[nodiscard]] std::uint64_t hot_word(std::uint32_t cc) const noexcept {
    return hot_[cc];
  }
  [[nodiscard]] std::uint32_t busy(std::uint32_t cc) const noexcept {
    return static_cast<std::uint32_t>(hot_[cc] >> 32);
  }
  void set_busy(std::uint32_t cc, std::uint32_t cycles) noexcept {
    hot_[cc] = (hot_[cc] & 0xFFFFFFFFull) |
               (static_cast<std::uint64_t>(cycles) << 32);
  }
  void dec_busy(std::uint32_t cc) noexcept {
    assert(busy(cc) > 0);
    hot_[cc] -= 1ull << 32;
  }
  [[nodiscard]] std::uint32_t work_items(std::uint32_t cc) const noexcept {
    return static_cast<std::uint32_t>(hot_[cc]);
  }
  void add_work(std::uint32_t cc) noexcept { ++hot_[cc]; }
  void sub_work(std::uint32_t cc) noexcept {
    assert(work_items(cc) > 0);
    --hot_[cc];
  }

  // --- The exact FIFO occupancy counter ------------------------------------

  [[nodiscard]] std::uint32_t fifo_msgs(std::uint32_t cc) const noexcept {
    return fifo_msgs_[cc];
  }
  void inc_fifo_msgs(std::uint32_t cc) noexcept {
    ++fifo_msgs_[cc];
    add_work(cc);
  }
  void dec_fifo_msgs(std::uint32_t cc) noexcept {
    assert(fifo_msgs_[cc] > 0);
    --fifo_msgs_[cc];
    sub_work(cc);
  }

  // --- Router-input snapshot latches ---------------------------------------

  [[nodiscard]] std::uint32_t* snapshot(std::uint32_t cc) noexcept {
    return &snapshot_[static_cast<std::size_t>(cc) * kMeshDirections];
  }
  [[nodiscard]] const std::uint32_t* snapshot(std::uint32_t cc) const noexcept {
    return &snapshot_[static_cast<std::size_t>(cc) * kMeshDirections];
  }
  /// Latches the cell's four router-input sizes (the phase-start values
  /// every neighbour room/occupancy decision reads this cycle).
  void latch_snapshot(std::uint32_t cc) noexcept {
    const std::uint32_t* sz = &lane_size_[static_cast<std::size_t>(cc) * kLanes];
    std::uint32_t* snap = snapshot(cc);
    for (std::size_t d = 0; d < kMeshDirections; ++d) snap[d] = sz[d];
  }
  /// Re-establishes the inactive-cell invariant: a cell outside the active
  /// set must hold all-zero latches, indistinguishable from a fresh latch
  /// of its (empty) FIFOs.
  void zero_snapshot(std::uint32_t cc) noexcept {
    std::uint32_t* snap = snapshot(cc);
    for (std::size_t d = 0; d < kMeshDirections; ++d) snap[d] = 0;
  }

  // --- Arbitration pointers ------------------------------------------------

  [[nodiscard]] std::uint8_t arb_next(std::uint32_t cc) const noexcept {
    return arb_next_[cc];
  }
  void advance_arb(std::uint32_t cc) noexcept {
    arb_next_[cc] = static_cast<std::uint8_t>((arb_next_[cc] + 1) % kLanes);
  }

  // --- The activity-flag bitmap (active-set engine) ------------------------
  // Bit cc of word cc/64. Each bit has a single writer (the owning
  // partition's worker) but a word can straddle a partition boundary, so
  // the read-modify-writes are relaxed atomics — deterministic because no
  // two workers ever race on the same *bit*.

  [[nodiscard]] bool is_active(std::uint32_t cc) const noexcept {
    const std::uint64_t word = std::atomic_ref<const std::uint64_t>(
                                   active_[cc >> 6])
                                   .load(std::memory_order_relaxed);
    return (word >> (cc & 63)) & 1u;
  }
  void set_active(std::uint32_t cc) noexcept {
    std::atomic_ref<std::uint64_t>(active_[cc >> 6])
        .fetch_or(1ull << (cc & 63), std::memory_order_relaxed);
  }
  void clear_active(std::uint32_t cc) noexcept {
    std::atomic_ref<std::uint64_t>(active_[cc >> 6])
        .fetch_and(~(1ull << (cc & 63)), std::memory_order_relaxed);
  }

  /// Sweeps the set bits of the half-open cell-index span [begin, end) in
  /// ascending order — the vectorizable core of every dense-mode phase
  /// walk (a partition rectangle is one such span per row). Loads each
  /// 64-cell word once; `f` receives the cell index. Bits set *by f
  /// itself* after the containing word was loaded are not revisited, which
  /// matches the engines' phase semantics (a cell activated mid-phase is
  /// first visited next cycle; its visit this cycle would be a no-op).
  template <typename F>
  void for_each_active(std::uint32_t begin, std::uint32_t end, F&& f) const {
    if (begin >= end) return;
    std::uint32_t w = begin >> 6;
    const std::uint32_t w_last = (end - 1) >> 6;
    for (; w <= w_last; ++w) {
      std::uint64_t word =
          std::atomic_ref<const std::uint64_t>(active_[w])
              .load(std::memory_order_relaxed);
      if (w == begin >> 6) word &= ~0ull << (begin & 63);
      if (w == w_last && (end & 63) != 0) word &= ~0ull >> (64 - (end & 63));
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        f((w << 6) | static_cast<std::uint32_t>(bit));
      }
    }
  }

  /// Set bits in [begin, end) — the dense-mode live count over a span.
  [[nodiscard]] std::uint64_t count_active(std::uint32_t begin,
                                           std::uint32_t end) const noexcept {
    std::uint64_t n = 0;
    for_each_active(begin, end, [&n](std::uint32_t) { ++n; });
    return n;
  }

  // --- The FIFO lane slab --------------------------------------------------

  /// The (cell, lane) ring-buffer view; lane in [0, kLanes) follows the
  /// arbitration order above. All mutation goes through ComputeCell's
  /// sanctioned helpers, which maintain fifo_msgs_ and the hot word.
  [[nodiscard]] FifoView<Message> lane(std::uint32_t cc,
                                       std::size_t l) const noexcept {
    const std::size_t li = static_cast<std::size_t>(cc) * kLanes + l;
    return FifoView<Message>(lanes_ + li * depth_, &lane_head_[li],
                             &lane_size_[li], depth_);
  }

  /// True iff `view` is one of cell `cc`'s six lanes — the cheap-level
  /// guard that pop_input is not handed a neighbour's lane (which would
  /// silently desynchronise two fifo_msgs counters).
  [[nodiscard]] bool owns_lane(std::uint32_t cc,
                               const FifoView<Message>& view) const noexcept {
    const std::uint32_t* base =
        &lane_size_[static_cast<std::size_t>(cc) * kLanes];
    return view.size_word() >= base && view.size_word() < base + kLanes;
  }

  /// Messages currently buffered across all six lanes of cell `cc` — the
  /// ground truth fifo_msgs(cc) caches.
  [[nodiscard]] std::uint32_t lane_occupancy(std::uint32_t cc) const noexcept {
    const std::uint32_t* sz = &lane_size_[static_cast<std::size_t>(cc) * kLanes];
    std::uint32_t n = 0;
    for (std::size_t l = 0; l < kLanes; ++l) n += sz[l];
    return n;
  }

  // --- Test/introspection backdoors ----------------------------------------
  // The checked-build death tests corrupt these directly to prove the
  // full-level sweeps still have teeth (tests/check_test.cpp).

  [[nodiscard]] std::uint32_t& fifo_msgs_ref(std::uint32_t cc) noexcept {
    return fifo_msgs_[cc];
  }
  /// Forces the activity flag without maintaining partition structures —
  /// deliberately corrupting, test-only.
  void corrupt_active_flag(std::uint32_t cc, bool on) noexcept {
    if (on) {
      set_active(cc);
    } else {
      clear_active(cc);
    }
  }

  [[nodiscard]] std::size_t slab_bytes() const noexcept {
    return slab_.bytes_capacity();
  }

 private:
  rt::SlabArena slab_;
  std::uint32_t cells_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t* hot_ = nullptr;
  std::uint32_t* fifo_msgs_ = nullptr;
  std::uint32_t* snapshot_ = nullptr;
  std::uint8_t* arb_next_ = nullptr;
  std::uint64_t* active_ = nullptr;
  Message* lanes_ = nullptr;
  std::uint32_t* lane_head_ = nullptr;
  std::uint32_t* lane_size_ = nullptr;
};

}  // namespace ccastream::sim
