#include "sim/io_channel.hpp"

namespace ccastream::sim {

IoSystem::IoSystem(const rt::MeshGeometry& mesh, std::uint8_t sides) {
  // One IO cell per border compute cell on each configured side, matching
  // the paper's sketch of channels whose IO cells pair with the border row
  // or column they touch.
  if (sides & kIoWest) {
    for (std::uint32_t y = 0; y < mesh.height(); ++y) {
      cells_.push_back(IoCell{mesh.index_of({0, y}), {}});
    }
  }
  if (sides & kIoEast) {
    for (std::uint32_t y = 0; y < mesh.height(); ++y) {
      cells_.push_back(IoCell{mesh.index_of({mesh.width() - 1, y}), {}});
    }
  }
  if (sides & kIoNorth) {
    for (std::uint32_t x = 0; x < mesh.width(); ++x) {
      cells_.push_back(IoCell{mesh.index_of({x, 0}), {}});
    }
  }
  if (sides & kIoSouth) {
    for (std::uint32_t x = 0; x < mesh.width(); ++x) {
      cells_.push_back(IoCell{mesh.index_of({x, mesh.height() - 1}), {}});
    }
  }
  if (cells_.empty()) {
    // A chip with no IO channel cannot stream; default to one west cell so
    // host injection still has a path (degenerate configs in tests).
    cells_.push_back(IoCell{0, {}});
  }
}

void IoSystem::enqueue(const rt::Action& action) {
  cells_[next_].pending.push_back(action);
  next_ = (next_ + 1) % cells_.size();
}

void IoSystem::enqueue_at(std::size_t io_cell, const rt::Action& action) {
  cells_[io_cell % cells_.size()].pending.push_back(action);
}

std::size_t IoSystem::pending() const noexcept {
  std::size_t n = 0;
  for (const auto& c : cells_) n += c.pending.size();
  return n;
}

}  // namespace ccastream::sim
