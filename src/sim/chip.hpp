// The AM-CCA chip: a mesh of compute cells, border IO channels, a handler
// registry, and the cycle-level execution loop implementing the paper's
// timing rules (§4):
//   * one message traverses one link per cycle (single-flit messages);
//   * each compute cell performs one operation per cycle — an action
//     instruction or the staging of one propagated message;
//   * YX dimension-ordered (turn-restricted, minimal, deadlock-free)
//     routing by default;
//   * each IO cell injects at most one action per cycle.
//
// The chip also implements the runtime side of the continuation protocol
// (paper §3.1): the `allocate` system action runs at a remote cell, places
// an object in its arena, and propagates the registered return-trigger
// action back to the requester.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/action.hpp"
#include "runtime/alloc_policy.hpp"
#include "runtime/arena.hpp"
#include "runtime/context.hpp"
#include "runtime/geometry.hpp"
#include "runtime/handler_registry.hpp"
#include "sim/compute_cell.hpp"
#include "sim/energy.hpp"
#include "sim/io_channel.hpp"
#include "sim/message.hpp"
#include "sim/parallel.hpp"
#include "sim/partition.hpp"
#include "sim/routing.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace ccastream::sim {

/// Which cycle engine executes the chip. Both engines are cycle-for-cycle
/// identical — same cycles, counters, energy, traces, results — for every
/// workload, partition shape, and thread count; they differ only in host
/// cost per simulated cycle.
///
///   * kScan   — the paper-literal engine: every phase walks every cell of
///               every partition rectangle, costing O(width × height) per
///               cycle regardless of how much of the mesh is doing
///               anything. Kept as the in-tree oracle the active engine is
///               pinned against.
///   * kActive — the event-driven engine: each partition maintains a
///               deterministic active-cell set (a cell is a member iff it
///               has work — see ComputeCell::has_work), updated at every
///               point work is created, and all phases iterate only active
///               cells in ascending cell-index order. Per-cycle cost is
///               O(active cells) — the win on sparse frontiers (see
///               bench_active_set and the `cell_visits` metric).
enum class EngineKind : std::uint8_t { kScan, kActive };

[[nodiscard]] std::string_view to_string(EngineKind engine) noexcept;

/// Parses "scan" or "active"; nullopt otherwise.
[[nodiscard]] std::optional<EngineKind> parse_engine(std::string_view text);

/// Resolves a chip's engine request: an explicit config wins, otherwise the
/// CCASTREAM_ENGINE environment variable (ignored with a one-shot warning
/// when unparsable), otherwise the scan engine.
[[nodiscard]] EngineKind resolve_engine(
    const std::optional<EngineKind>& requested);

/// Static configuration of a chip instance.
struct ChipConfig {
  std::uint32_t width = 32;            ///< Mesh columns (paper: 32).
  std::uint32_t height = 32;           ///< Mesh rows (paper: 32).
  std::uint32_t fifo_depth = 4;        ///< Router port buffer depth (messages).
  RoutingPolicyKind routing = RoutingPolicyKind::kYX;
  /// North + south channels co-design with YX routing: an injected
  /// message's first (vertical) leg runs down its own column, so all
  /// `width` columns share the injection load. West/east channels with YX
  /// routing funnel everything through two border columns — measurably
  /// ~10x slower ingestion (see bench_ablation_structure).
  std::uint8_t io_sides = kIoNorth | kIoSouth;
  std::size_t cc_memory_bytes = 1u << 20;  ///< Scratchpad capacity per cell.
  std::uint32_t action_base_cost = 2;  ///< Instruction cycles per dispatched action.
  std::uint32_t ejections_per_cycle = 2;  ///< Router->cell deliveries per cycle.
  std::uint32_t alloc_forward_budget = 32;  ///< Hops an allocate may bounce on full arenas.
  rt::AllocPolicyKind alloc_policy = rt::AllocPolicyKind::kVicinity;
  std::uint32_t vicinity_radius = 2;   ///< Paper: ghosts at most 2 hops away.
  EnergyModel energy{};
  std::uint64_t seed = 0xC0FFEEull;
  bool record_activation = false;      ///< Record Figure 6/7 activation trace.
  bool profile_handlers = false;       ///< Per-handler execution/instruction counts.
  /// Worker threads for the partitioned parallel engine. 0 resolves from
  /// the CCASTREAM_THREADS environment variable (defaulting to 1 = serial);
  /// always clamped to the partition shape's capacity (each worker owns at
  /// least one row, column, or tile). Results are cycle-for-cycle
  /// identical for every thread count.
  std::uint32_t threads = 0;
  /// Mesh partition driving the parallel engine: row stripes (default),
  /// column stripes, or 2-D tiles, each optionally with load-adaptive
  /// boundary rebalancing (see sim/partition.hpp). nullopt resolves from
  /// the CCASTREAM_PARTITION environment variable, defaulting to row
  /// stripes. An explicit tile grid (`tiles:GXxGY`) pins the partition —
  /// and therefore worker — count, overriding `threads`. Partitioning is
  /// a performance knob only: results are identical for every shape and
  /// rebalance schedule.
  std::optional<PartitionSpec> partition;
  /// Cycle engine (see EngineKind). nullopt resolves from the
  /// CCASTREAM_ENGINE environment variable, defaulting to the full-scan
  /// engine. A performance knob only: both engines are cycle-for-cycle
  /// identical.
  std::optional<EngineKind> engine;
  /// Rebalance hysteresis: a load-adaptive re-split is adopted only when it
  /// improves the hottest band's (decayed) load by at least this many
  /// percent, so oscillating workloads stop ping-ponging boundaries. 0
  /// restores always-adopt. Another performance knob: the rebalance
  /// schedule never changes results.
  std::uint32_t rebalance_min_gain_pct = 5;
};

/// Resolves a requested thread count: 0 reads CCASTREAM_THREADS (default 1).
[[nodiscard]] std::uint32_t resolve_threads(std::uint32_t requested) noexcept;

/// Per-handler profile entry (enabled via ChipConfig::profile_handlers).
struct HandlerProfile {
  std::uint64_t executions = 0;
  std::uint64_t instructions = 0;
};

/// Creates arena objects for the allocate system action, per object kind.
using ObjectFactory = std::function<std::unique_ptr<rt::ArenaObject>()>;

class Chip {
 public:
  static constexpr std::uint64_t kNoLimit = ~0ull;

  explicit Chip(ChipConfig cfg = {});

  // --- Setup (host side, not simulated) -----------------------------------

  /// Handler table; register application actions here before running.
  [[nodiscard]] rt::HandlerRegistry& handlers() noexcept { return registry_; }

  /// Registers the factory the allocate system action uses for `kind`.
  void register_object_kind(rt::ObjectKind kind, ObjectFactory factory);

  /// Places an object directly into cell `cc`'s arena (initial vertex
  /// placement happens host-side, before simulated time starts). Returns
  /// nullopt if the scratchpad is full.
  std::optional<rt::GlobalAddress> host_allocate(std::uint32_t cc,
                                                 std::unique_ptr<rt::ArenaObject> obj);

  /// Host-side dereference of any address on the chip (inspection only).
  [[nodiscard]] rt::ArenaObject* deref(rt::GlobalAddress addr);
  template <typename T>
  [[nodiscard]] T* as(rt::GlobalAddress addr) {
    return static_cast<T*>(deref(addr));
  }

  /// Replaces the ghost-allocation policy (defaults from ChipConfig).
  void set_alloc_policy(std::unique_ptr<rt::AllocationPolicy> policy);
  [[nodiscard]] rt::AllocationPolicy& alloc_policy() noexcept { return *alloc_policy_; }

  // --- Work injection ------------------------------------------------------

  /// Queues an action on the IO channels (round-robin over IO cells); it
  /// will be injected at one action per IO cell per cycle.
  void io_enqueue(const rt::Action& action);

  /// Number of actions still queued in IO cells.
  [[nodiscard]] std::size_t io_pending() const noexcept { return io_.pending(); }

  /// Host backdoor: delivers an action straight into its target cell's
  /// dispatch queue (no network traversal). Used for seeding (e.g. the BFS
  /// source) and unit tests.
  void inject_local(const rt::Action& action);

  /// Host injection that *does* traverse the network, entering the mesh at
  /// cell `at_cc` (pays staging + hop costs like any propagated message).
  void inject_via(std::uint32_t at_cc, const rt::Action& action);

  // --- Execution ------------------------------------------------------------

  /// Advances simulated time by one cycle (network, IO, compute phases).
  void step();

  /// Runs until the diffusion terminates (global quiescence: no queued or
  /// in-flight actions, no busy cell, IO drained) or `max_cycles` elapse.
  /// Returns the number of cycles executed by this call. This is the
  /// `dev.run(terminator)` of paper Listing 1.
  std::uint64_t run_until_quiescent(std::uint64_t max_cycles = kNoLimit);

  /// True when no work of any kind remains anywhere on the chip.
  [[nodiscard]] bool quiescent() const;

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] const ChipConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const rt::MeshGeometry& geometry() const noexcept { return mesh_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return cycle_; }
  [[nodiscard]] ChipStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ChipStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ActivationTrace& activation() noexcept { return trace_; }
  [[nodiscard]] const ActivationTrace& activation() const noexcept { return trace_; }
  [[nodiscard]] ComputeCell& cell(std::uint32_t cc) { return cells_[cc]; }
  [[nodiscard]] const ComputeCell& cell(std::uint32_t cc) const { return cells_[cc]; }
  [[nodiscard]] IoSystem& io() noexcept { return io_; }

  /// Total energy of the run so far, in picojoules, under the configured
  /// energy model.
  [[nodiscard]] double energy_pj() const {
    return total_pj(cfg_.energy, stats_.energy_events());
  }

  /// Per-cell activity levels (0..255) for animation frames; a heuristic
  /// blend of router occupancy, execution state, and queued work.
  [[nodiscard]] std::vector<std::uint8_t> activity_levels() const;

  /// Cumulative operations performed by each cell (compute-phase ops:
  /// instruction cycles, stagings, dispatches). The spatial load histogram
  /// behind congestion heatmaps — and the input to load-adaptive partition
  /// rebalancing. Identical for every partitioning (it counts simulated
  /// work), which is what makes the rebalance schedule deterministic.
  [[nodiscard]] const std::vector<std::uint64_t>& cell_load() const noexcept {
    return cell_load_;
  }

  /// Per-handler execution profile; entries index by HandlerId. Empty
  /// unless ChipConfig::profile_handlers was set.
  [[nodiscard]] const std::vector<HandlerProfile>& handler_profile() const noexcept {
    return handler_profile_;
  }

  /// The resolved cycle engine of this chip instance (config, else
  /// CCASTREAM_ENGINE, else scan).
  [[nodiscard]] EngineKind engine() const noexcept { return engine_; }

  /// Cells visited by the per-cell phase loops (snapshot + route +
  /// compute) over the whole run — the cost metric the engines differ in.
  /// The scan engine visits 3 × width × height cells per cycle; the
  /// active-set engine visits 3 × |active set|. Simulated results are
  /// engine-invariant; this counter is deliberately *outside* ChipStats so
  /// stats comparisons stay engine-agnostic.
  [[nodiscard]] std::uint64_t cell_visits() const noexcept {
    return cell_visits_;
  }

  /// Live cells across all partitions right now (scan engine: recomputed;
  /// active engine: the summed active-set sizes).
  [[nodiscard]] std::uint64_t active_cells() const noexcept;

  /// Barrier arrivals performed by the worker pool so far (0 on
  /// single-partition chips). Together with cell_visits() this exposes the
  /// active engine's sparse fast path: cycles run serially perform no
  /// barrier arrivals at all.
  [[nodiscard]] std::uint64_t barrier_syncs() const noexcept {
    return pool_ ? pool_->syncs() : 0;
  }

  /// Resolved worker count of this chip instance (one worker per
  /// partition).
  [[nodiscard]] std::uint32_t threads() const noexcept { return num_parts_; }

  /// Resolved partition count (== threads(): one worker per partition).
  [[nodiscard]] std::uint32_t partitions() const noexcept { return num_parts_; }

  /// The resolved partition request (config, else env, else row stripes).
  [[nodiscard]] const PartitionSpec& partition_spec() const noexcept {
    return partition_spec_;
  }

  /// The current concrete decomposition (moves when rebalancing fires).
  [[nodiscard]] const PartitionLayout& partition_layout() const noexcept {
    return layout_;
  }

  /// Re-splits the partition boundaries from the cumulative cell_load()
  /// histogram (see PartitionLayout::rebalanced). Called automatically at
  /// the start of every step()/run_until_quiescent() when the spec enables
  /// rebalancing — i.e. between increments, never mid-cycle — and callable
  /// explicitly. A no-op on single-partition chips or when the balanced
  /// boundaries equal the current ones. Never changes results.
  void rebalance_partitions();

  /// How many times rebalance_partitions() actually moved a boundary.
  [[nodiscard]] std::uint64_t partition_rebalances() const noexcept {
    return rebalances_;
  }

 private:
  friend class CellContext;

  /// One deferred cross-partition router push (applied behind a barrier so
  /// no FIFO is ever touched by two threads in the same phase).
  struct PendingPush {
    std::uint32_t target_cc = 0;
    std::uint8_t port = 0;  ///< Index into ComputeCell::router_in.
    Message msg;
  };

  /// One mesh partition (an axis-aligned cell rectangle) plus every
  /// accumulator its worker thread writes during a cycle. Accumulators are
  /// merged into the chip-global counters, in partition order, at the
  /// end-of-cycle barrier; all of them are sums, so the merged totals are
  /// independent of the partition count and shape.
  struct alignas(64) PartitionState {
    std::uint32_t index = 0;
    PartRect rect;                      ///< Cells this worker owns.
    std::vector<std::size_t> io_cells;  ///< IO cells attached to these cells.
    ChipStats stats;                    ///< This cycle's counter deltas.
    std::int64_t outstanding = 0;       ///< This cycle's outstanding delta.
    std::vector<HandlerProfile> profile;
    std::uint32_t trace_active = 0, trace_live = 0;
    bool idle = true;                   ///< All owned cells idle after compute.
    /// Router pushes crossing into another partition, keyed by destination
    /// partition id; the destination drains its inbox behind the route
    /// barrier. (With one-hop-per-cycle routing only edge-adjacent
    /// partitions ever receive traffic, but keying by destination keeps
    /// the scheme shape-agnostic.) Each slot is cache-line padded: during
    /// the apply phase every *other* partition clears its own slot of this
    /// array concurrently, so unpadded vector headers would false-share.
    struct alignas(64) Outbox {
      std::vector<PendingPush> pushes;
    };
    std::vector<Outbox> outbox;

    // --- Active-set engine state (EngineKind::kActive only) ---------------
    /// The partition's live cells, ascending cell index. Invariant between
    /// cycles: exactly the owned cells for which ComputeCell::has_work()
    /// holds (each flagged via ComputeCell::in_active_set). All four phases
    /// iterate this instead of the rectangle.
    std::vector<std::uint32_t> active;
    /// Cells of this partition activated mid-cycle (router pushes, inbound
    /// cross-partition traffic, IO injection); merged — sorted — into
    /// `active` at the start of the compute phase, which is exactly when
    /// the scan engine would first observe them as live.
    std::vector<std::uint32_t> incoming;
    /// Cells visited by the per-cell phase loops this cycle (snapshot +
    /// route + compute); merged into Chip::cell_visits_. The perf currency
    /// of the engine comparison: scan visits 3 × width × height per cycle,
    /// active visits 3 × |active set|.
    std::uint64_t cell_visits = 0;

    // --- Cross-partition traffic registration (both engines) --------------
    /// Producers that pushed into this partition's inbox (their
    /// `outbox[this]`) during the route phase, registered on first push.
    /// The apply phase drains exactly `inbox_producers[0..inbox_count)`
    /// instead of scanning every partition's (mostly empty) outboxes, so
    /// application cost is proportional to actual cross-partition traffic.
    /// Slot reservation via fetch_add; the route barrier publishes the
    /// slot contents before the consumer reads them.
    std::vector<std::uint32_t> inbox_producers;
    /// Producer count this cycle. Wrapped so PartitionState stays movable
    /// (construction-time only; the atomic itself is never moved mid-run).
    struct MovableAtomicU32 {
      std::atomic<std::uint32_t> v{0};
      MovableAtomicU32() = default;
      MovableAtomicU32(MovableAtomicU32&& o) noexcept
          : v(o.v.load(std::memory_order_relaxed)) {}
      MovableAtomicU32& operator=(MovableAtomicU32&& o) noexcept {
        v.store(o.v.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        return *this;
      }
    };
    MovableAtomicU32 inbox_count;
  };

  /// The cycle engine: runs up to `max_cycles` cycles (optionally stopping
  /// at global quiescence) and returns how many were executed. Serial and
  /// parallel paths run the same per-partition phase functions.
  std::uint64_t run_cycles(std::uint64_t max_cycles, bool until_quiescent);

  /// Points every PartitionState at its layout_ rectangle and reassigns IO
  /// cells to the partition owning their attached cell. Only called
  /// between cycles (construction and rebalancing), when every outbox and
  /// per-cycle accumulator is drained.
  void apply_layout();

  // Per-partition cycle phases (worker-thread side). Each dispatches on
  // the engine: the scan paths walk the partition rectangle, the active
  // paths walk the active set — over the *same* shared per-cell bodies
  // (snapshot_cell/route_cell/compute_one), which is what makes the two
  // engines trivially cycle-identical.
  void cycle_snapshot(PartitionState& st);
  void cycle_route(PartitionState& st);
  void cycle_apply(PartitionState& st);
  void cycle_io(PartitionState& st);
  void cycle_compute(PartitionState& st);
  /// End-of-cycle merge (single-threaded, behind the barrier).
  void merge_partitions();
  /// Quiescence from the partition idle flags of the cycle just merged.
  [[nodiscard]] bool partitions_quiescent() const noexcept;

  // Shared per-cell phase bodies.
  void route_cell(PartitionState& st, std::uint32_t idx, bool adaptive);
  /// One compute-phase visit; returns whether the cell still has work
  /// (drives both the idle flag and active-set retention).
  bool compute_one(PartitionState& st, std::uint32_t idx, bool tracing);

  /// One serial cycle over all partitions, phase-major (all snapshots,
  /// then all routes, then apply/io/compute, then the merge) — exactly the
  /// barrier schedule without the barriers. The sparse fast path of the
  /// parallel engine and the whole of the single-partition engine.
  void serial_cycle();

  // --- Active-set maintenance (engine_active_ only) ------------------------
  /// In-cycle activation: flags `idx` (owned by `st`) and queues it on
  /// `st.incoming` for the pre-compute merge. Called at every point work
  /// is created: same-partition router pushes, inbound cross-partition
  /// applies, IO injection.
  void mark_active(PartitionState& st, std::uint32_t idx) {
    ComputeCell& cell = cells_[idx];
    if (!cell.in_active_set) {
      cell.in_active_set = true;
      st.incoming.push_back(idx);
    }
  }
  /// Host-side activation (between cycles): inserts straight into the
  /// owning partition's sorted active list. Used by the injection APIs.
  void activate_cell(std::uint32_t idx);
  /// Rebuilds every partition's active list from the per-cell flags after
  /// a layout change (construction, rebalancing). Between cycles only.
  void rebuild_active_sets();

  void execute_action(PartitionState& st, ComputeCell& cell, const rt::Action& action);
  void deliver(PartitionState& st, ComputeCell& cell, const Message& msg);
  /// Handler body of the allocate system action.
  void handle_allocate(rt::Context& ctx, const rt::Action& action);
  std::optional<rt::GlobalAddress> allocate_on(ChipStats& stats, std::uint32_t cc,
                                               rt::ObjectKind kind);

  ChipConfig cfg_;
  rt::MeshGeometry mesh_;
  std::vector<ComputeCell> cells_;
  rt::HandlerRegistry registry_;
  std::unordered_map<rt::ObjectKind, ObjectFactory> factories_;
  std::unique_ptr<rt::AllocationPolicy> alloc_policy_;
  IoSystem io_;
  ChipStats stats_;
  ActivationTrace trace_;
  std::uint64_t cycle_ = 0;
  std::vector<std::uint64_t> cell_load_;
  std::vector<HandlerProfile> handler_profile_;
  std::uint64_t cell_visits_ = 0;
  EngineKind engine_ = EngineKind::kScan;
  /// engine_ == kActive, hoisted: checked on several per-cell hot paths.
  bool engine_active_ = false;
  /// Rebalance hysteresis state: cell_load_ snapshot at the last rebalance
  /// call, and the exponentially decayed per-cell load window fed to the
  /// quantile splitter (old increments lose half their weight per call, so
  /// the split tracks *recent* load instead of all of history).
  std::vector<std::uint64_t> load_at_rebalance_;
  std::vector<std::uint64_t> load_window_;
  /// Actions created but whose handler has not yet finished executing.
  /// Includes actions still queued in IO cells. Zero is necessary (not
  /// sufficient — cells may still be in busy residue) for quiescence.
  std::uint64_t outstanding_ = 0;
  PartitionSpec partition_spec_;
  PartitionLayout layout_;
  std::uint32_t num_parts_ = 1;
  std::uint64_t rebalances_ = 0;
  std::vector<PartitionState> parts_;
  std::unique_ptr<PartitionPool> pool_;  ///< Created only when num_parts_ > 1.
};

}  // namespace ccastream::sim
