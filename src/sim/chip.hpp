// The AM-CCA chip: a mesh of compute cells, border IO channels, a handler
// registry, and the cycle-level execution loop implementing the paper's
// timing rules (§4):
//   * one message traverses one link per cycle (single-flit messages);
//   * each compute cell performs one operation per cycle — an action
//     instruction or the staging of one propagated message;
//   * YX dimension-ordered (turn-restricted, minimal, deadlock-free)
//     routing by default;
//   * each IO cell injects at most one action per cycle.
//
// The chip also implements the runtime side of the continuation protocol
// (paper §3.1): the `allocate` system action runs at a remote cell, places
// an object in its arena, and propagates the registered return-trigger
// action back to the requester.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/action.hpp"
#include "runtime/alloc_policy.hpp"
#include "runtime/arena.hpp"
#include "runtime/check.hpp"
#include "runtime/context.hpp"
#include "runtime/geometry.hpp"
#include "runtime/handler_registry.hpp"
#include "sim/cell_soa.hpp"
#include "sim/compute_cell.hpp"
#include "sim/energy.hpp"
#include "sim/io_channel.hpp"
#include "sim/message.hpp"
#include "sim/parallel.hpp"
#include "sim/partition.hpp"
#include "sim/routing.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace ccastream::sim {

/// Which cycle engine executes the chip. Both engines are cycle-for-cycle
/// identical — same cycles, counters, energy, traces, results — for every
/// workload, partition shape, and thread count; they differ only in host
/// cost per simulated cycle.
///
///   * kScan   — the paper-literal engine: every phase walks every cell of
///               every partition rectangle, costing O(width × height) per
///               cycle regardless of how much of the mesh is doing
///               anything. Kept as the in-tree oracle the active engine is
///               pinned against (CCASTREAM_ENGINE=scan).
///   * kActive — the event-driven engine, and the default: each partition
///               maintains a deterministic active-cell set (a cell is a
///               member iff it has work — see ComputeCell::has_work),
///               updated at every point work is created, and all phases
///               iterate only active cells in ascending cell-index order.
///               Per-cycle cost is O(active cells) — the win on sparse
///               frontiers (see bench_active_set and the `cell_visits`
///               metric). Each partition runs a dense/sparse *hybrid*: when
///               its live-cell occupancy crosses
///               ChipConfig::dense_threshold_pct, membership switches from
///               the sorted vector to the per-cell flag bitmap and the
///               compute-phase sort/merge to a counting merge (a plain
///               rectangle walk over the flags), so a saturated mesh never
///               pays more than the scan engine would; it switches back —
///               with hysteresis, at half the threshold — when the
///               frontier thins. The hybrid is invisible to simulated
///               results; only host cost and Chip::cell_visits() move.
enum class EngineKind : std::uint8_t { kScan, kActive };

[[nodiscard]] std::string_view to_string(EngineKind engine) noexcept;

/// Parses "scan" or "active"; nullopt otherwise.
[[nodiscard]] std::optional<EngineKind> parse_engine(std::string_view text);

/// Resolves a chip's engine request: an explicit config wins, otherwise the
/// CCASTREAM_ENGINE environment variable (ignored with a one-shot warning
/// when unparsable), otherwise the event-driven active-set engine. The
/// full-scan oracle stays one env var away: CCASTREAM_ENGINE=scan.
[[nodiscard]] EngineKind resolve_engine(
    const std::optional<EngineKind>& requested);

/// Default dense-mode threshold of the hybrid active-set engine, in percent
/// of a partition's cells (see ChipConfig::dense_threshold_pct).
inline constexpr std::uint32_t kDefaultDenseThresholdPct = 50;

/// Resolves the hybrid's dense threshold: a nonzero request wins, otherwise
/// the CCASTREAM_DENSE_PCT environment variable (values 1..1000; anything
/// else ignored), otherwise kDefaultDenseThresholdPct. Values above 100 can
/// never be reached by an occupancy percentage, so they pin the engine
/// sparse (the pre-hybrid behaviour).
[[nodiscard]] std::uint32_t resolve_dense_threshold(
    std::uint32_t requested) noexcept;

/// Static configuration of a chip instance.
struct ChipConfig {
  std::uint32_t width = 32;            ///< Mesh columns (paper: 32).
  std::uint32_t height = 32;           ///< Mesh rows (paper: 32).
  std::uint32_t fifo_depth = 4;        ///< Router port buffer depth (messages).
  RoutingPolicyKind routing = RoutingPolicyKind::kYX;
  /// North + south channels co-design with YX routing: an injected
  /// message's first (vertical) leg runs down its own column, so all
  /// `width` columns share the injection load. West/east channels with YX
  /// routing funnel everything through two border columns — measurably
  /// ~10x slower ingestion (see bench_ablation_structure).
  std::uint8_t io_sides = kIoNorth | kIoSouth;
  std::size_t cc_memory_bytes = 1u << 20;  ///< Scratchpad capacity per cell.
  std::uint32_t action_base_cost = 2;  ///< Instruction cycles per dispatched action.
  std::uint32_t ejections_per_cycle = 2;  ///< Router->cell deliveries per cycle.
  std::uint32_t alloc_forward_budget = 32;  ///< Hops an allocate may bounce on full arenas.
  rt::AllocPolicyKind alloc_policy = rt::AllocPolicyKind::kVicinity;
  std::uint32_t vicinity_radius = 2;   ///< Paper: ghosts at most 2 hops away.
  EnergyModel energy{};
  std::uint64_t seed = 0xC0FFEEull;
  bool record_activation = false;      ///< Record Figure 6/7 activation trace.
  bool profile_handlers = false;       ///< Per-handler execution/instruction counts.
  /// Worker threads for the partitioned parallel engine. 0 resolves from
  /// the CCASTREAM_THREADS environment variable (defaulting to 1 = serial);
  /// always clamped to the partition shape's capacity (each worker owns at
  /// least one row, column, or tile). Results are cycle-for-cycle
  /// identical for every thread count.
  std::uint32_t threads = 0;
  /// Mesh partition driving the parallel engine: row stripes (default),
  /// column stripes, or 2-D tiles, each optionally with load-adaptive
  /// boundary rebalancing (see sim/partition.hpp). nullopt resolves from
  /// the CCASTREAM_PARTITION environment variable, defaulting to row
  /// stripes. An explicit tile grid (`tiles:GXxGY`) pins the partition —
  /// and therefore worker — count, overriding `threads`. Partitioning is
  /// a performance knob only: results are identical for every shape and
  /// rebalance schedule.
  std::optional<PartitionSpec> partition;
  /// Cycle engine (see EngineKind). nullopt resolves from the
  /// CCASTREAM_ENGINE environment variable, defaulting to the event-driven
  /// active-set engine (the full-scan oracle stays selectable with
  /// CCASTREAM_ENGINE=scan). A performance knob only: both engines are
  /// cycle-for-cycle identical.
  std::optional<EngineKind> engine;
  /// Dense-mode threshold of the hybrid active-set engine, in percent of a
  /// partition's cells: when a partition's live-cell occupancy reaches this
  /// percentage it switches its membership structure to the per-cell flag
  /// bitmap (rectangle walks, counting merge — scan-equivalent host cost);
  /// it drops back to the sorted-vector sparse mode when occupancy falls
  /// below *half* this percentage (hysteresis, so an oscillating frontier
  /// does not flap between modes every cycle). 0 resolves from the
  /// CCASTREAM_DENSE_PCT environment variable (default
  /// kDefaultDenseThresholdPct = 50); values above 100 pin the engine
  /// sparse. Yet another performance knob: the mode schedule never changes
  /// results, only host cost and cell_visits().
  std::uint32_t dense_threshold_pct = 0;
  /// Rebalance hysteresis: a load-adaptive re-split is adopted only when it
  /// improves the hottest band's (decayed) load by at least this many
  /// percent, so oscillating workloads stop ping-ponging boundaries. 0
  /// restores always-adopt. Another performance knob: the rebalance
  /// schedule never changes results.
  std::uint32_t rebalance_min_gain_pct = 5;
  /// Runtime verification level of the checked build (see
  /// runtime/check.hpp): off (default) compiles the checks to untaken
  /// branches, cheap cross-checks the cached fifo_msgs counter at every
  /// sanctioned FIFO mutation, full additionally sweeps every
  /// engine-structure invariant (membership == has_work, counters, outbox
  /// drain, partition cover) at the end of every cycle. nullopt resolves
  /// from the CCASTREAM_CHECK environment variable (CLI `--check`).
  /// Verification never changes results — only host cost.
  std::optional<rt::CheckLevel> check_level;
};

/// Resolves a requested thread count: 0 reads CCASTREAM_THREADS (default 1).
[[nodiscard]] std::uint32_t resolve_threads(std::uint32_t requested) noexcept;

/// Per-handler profile entry (enabled via ChipConfig::profile_handlers).
struct HandlerProfile {
  std::uint64_t executions = 0;
  std::uint64_t instructions = 0;
};

/// Creates arena objects for the allocate system action, per object kind.
using ObjectFactory = std::function<std::unique_ptr<rt::ArenaObject>()>;

class Chip {
 public:
  static constexpr std::uint64_t kNoLimit = ~0ull;

  explicit Chip(ChipConfig cfg = {});

  // A chip never relocates: the SoA block, the FIFO lane views, and the
  // partition workers all hold raw pointers and cell indices into storage
  // reserved exactly once, from the ChipConfig dimensions, in the
  // constructor. Callers that need to hand a chip around hold it behind
  // unique_ptr (as the bench/test experiment harness does).
  Chip(const Chip&) = delete;
  Chip& operator=(const Chip&) = delete;
  Chip(Chip&&) = delete;
  Chip& operator=(Chip&&) = delete;

  // --- Setup (host side, not simulated) -----------------------------------

  /// Handler table; register application actions here before running.
  [[nodiscard]] rt::HandlerRegistry& handlers() noexcept { return registry_; }

  /// Registers the factory the allocate system action uses for `kind`.
  void register_object_kind(rt::ObjectKind kind, ObjectFactory factory);

  /// Places an object directly into cell `cc`'s arena (initial vertex
  /// placement happens host-side, before simulated time starts). Returns
  /// nullopt if the scratchpad is full.
  std::optional<rt::GlobalAddress> host_allocate(std::uint32_t cc,
                                                 std::unique_ptr<rt::ArenaObject> obj);

  /// Host-side dereference of any address on the chip (inspection only).
  [[nodiscard]] rt::ArenaObject* deref(rt::GlobalAddress addr);
  template <typename T>
  [[nodiscard]] T* as(rt::GlobalAddress addr) {
    return static_cast<T*>(deref(addr));
  }

  /// Replaces the ghost-allocation policy (defaults from ChipConfig).
  void set_alloc_policy(std::unique_ptr<rt::AllocationPolicy> policy);
  [[nodiscard]] rt::AllocationPolicy& alloc_policy() noexcept { return *alloc_policy_; }

  // --- Work injection ------------------------------------------------------

  /// Queues an action on the IO channels (round-robin over IO cells); it
  /// will be injected at one action per IO cell per cycle.
  void io_enqueue(const rt::Action& action);

  /// Number of actions still queued in IO cells.
  [[nodiscard]] std::size_t io_pending() const noexcept { return io_.pending(); }

  /// Host backdoor: delivers an action straight into its target cell's
  /// dispatch queue (no network traversal). Used for seeding (e.g. the BFS
  /// source) and unit tests.
  void inject_local(const rt::Action& action);

  /// Host injection that *does* traverse the network, entering the mesh at
  /// cell `at_cc` (pays staging + hop costs like any propagated message).
  void inject_via(std::uint32_t at_cc, const rt::Action& action);

  // --- Execution ------------------------------------------------------------

  /// Advances simulated time by one cycle (network, IO, compute phases).
  void step();

  /// Runs until the diffusion terminates (global quiescence: no queued or
  /// in-flight actions, no busy cell, IO drained) or `max_cycles` elapse.
  /// Returns the number of cycles executed by this call. This is the
  /// `dev.run(terminator)` of paper Listing 1.
  std::uint64_t run_until_quiescent(std::uint64_t max_cycles = kNoLimit);

  /// True when no work of any kind remains anywhere on the chip.
  [[nodiscard]] bool quiescent() const;

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] const ChipConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const rt::MeshGeometry& geometry() const noexcept { return mesh_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return cycle_; }
  [[nodiscard]] ChipStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ChipStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ActivationTrace& activation() noexcept { return trace_; }
  [[nodiscard]] const ActivationTrace& activation() const noexcept { return trace_; }
  [[nodiscard]] ComputeCell& cell(std::uint32_t cc) { return cells_[cc]; }
  [[nodiscard]] const ComputeCell& cell(std::uint32_t cc) const { return cells_[cc]; }
  /// The struct-of-arrays hot cell state (see sim/cell_soa.hpp). Read-only
  /// introspection for tools; tests additionally use its corruption
  /// backdoors to prove the full-level invariant sweeps have teeth.
  [[nodiscard]] CellSoA& cell_state() noexcept { return soa_; }
  [[nodiscard]] const CellSoA& cell_state() const noexcept { return soa_; }
  [[nodiscard]] IoSystem& io() noexcept { return io_; }

  /// Total energy of the run so far, in picojoules, under the configured
  /// energy model.
  [[nodiscard]] double energy_pj() const {
    return total_pj(cfg_.energy, stats_.energy_events());
  }

  /// Per-cell activity levels (0..255) for animation frames; a heuristic
  /// blend of router occupancy, execution state, and queued work.
  [[nodiscard]] std::vector<std::uint8_t> activity_levels() const;

  /// Cumulative operations performed by each cell (compute-phase ops:
  /// instruction cycles, stagings, dispatches). The spatial load histogram
  /// behind congestion heatmaps — and the input to load-adaptive partition
  /// rebalancing. Identical for every partitioning (it counts simulated
  /// work), which is what makes the rebalance schedule deterministic.
  [[nodiscard]] const std::vector<std::uint64_t>& cell_load() const noexcept {
    return cell_load_;
  }

  /// Per-handler execution profile; entries index by HandlerId. Empty
  /// unless ChipConfig::profile_handlers was set.
  [[nodiscard]] const std::vector<HandlerProfile>& handler_profile() const noexcept {
    return handler_profile_;
  }

  /// The resolved cycle engine of this chip instance (config, else
  /// CCASTREAM_ENGINE, else scan).
  [[nodiscard]] EngineKind engine() const noexcept { return engine_; }

  /// The resolved check level of this chip instance (config, else
  /// CCASTREAM_CHECK, else off).
  [[nodiscard]] rt::CheckLevel check_level() const noexcept {
    return check_level_;
  }

  /// Cells visited by the per-cell phase loops (snapshot + route +
  /// compute) over the whole run — the cost metric the engines differ in.
  /// The scan engine visits 3 × width × height cells per cycle; the
  /// active-set engine visits 3 × |active set| while a partition is in
  /// sparse mode and 3 × the partition rectangle while it is in dense
  /// (bitmap) mode — so the hybrid is bounded above by the scan cost on
  /// saturated meshes and collapses to the live set on sparse ones.
  /// Simulated results are engine-invariant; this counter is deliberately
  /// *outside* ChipStats so stats comparisons stay engine-agnostic.
  [[nodiscard]] std::uint64_t cell_visits() const noexcept {
    return cell_visits_;
  }

  /// The resolved dense-mode threshold of this chip instance (config, else
  /// CCASTREAM_DENSE_PCT, else kDefaultDenseThresholdPct). Meaningful only
  /// under the active-set engine.
  [[nodiscard]] std::uint32_t dense_threshold_pct() const noexcept {
    return dense_threshold_;
  }

  /// Sparse↔dense hybrid transitions performed so far, both directions,
  /// summed over partitions. 0 under the scan engine and on runs that never
  /// crossed the threshold.
  [[nodiscard]] std::uint64_t hybrid_dense_switches() const noexcept {
    return dense_switches_;
  }

  /// Partition-cycles spent in dense (bitmap) mode so far: each cycle
  /// merge adds the number of partitions dense at that cycle's end.
  /// Together with hybrid_dense_switches() this makes the hybrid's mode
  /// schedule observable without affecting it.
  [[nodiscard]] std::uint64_t hybrid_dense_cycles() const noexcept {
    return dense_cycles_;
  }

  /// Partitions currently in dense (bitmap) mode.
  [[nodiscard]] std::uint32_t dense_partitions() const noexcept;

  /// Current total capacity, in entries, of every partition's active-set
  /// vectors (`active` + `incoming`). The memory the shrink policy bounds:
  /// sustained low occupancy decays it back towards the per-partition
  /// floor, and a sparse→dense switch releases it outright (dense
  /// membership lives in the per-cell flags).
  [[nodiscard]] std::uint64_t active_set_capacity() const noexcept;

  /// High-water mark of active_set_capacity(), sampled at every cycle
  /// merge. `active_set_capacity() < active_set_capacity_peak()` after a
  /// burst demonstrates the shrink policy actually returned memory
  /// (bench_active_set records both).
  [[nodiscard]] std::uint64_t active_set_capacity_peak() const noexcept {
    return active_cap_peak_;
  }

  /// Live cells across all partitions right now (scan engine: recomputed
  /// with a full mesh walk; active engine: the summed active-set sizes —
  /// sparse vectors or dense flag counts, both O(partitions)).
  [[nodiscard]] std::uint64_t active_cells() const noexcept;

  /// Barrier arrivals performed by the worker pool so far (0 on
  /// single-partition chips). Together with cell_visits() this exposes the
  /// active engine's sparse fast path: cycles run serially perform no
  /// barrier arrivals at all.
  [[nodiscard]] std::uint64_t barrier_syncs() const noexcept {
    return pool_ ? pool_->syncs() : 0;
  }

  /// Resolved worker count of this chip instance (one worker per
  /// partition).
  [[nodiscard]] std::uint32_t threads() const noexcept { return num_parts_; }

  /// Resolved partition count (== threads(): one worker per partition).
  [[nodiscard]] std::uint32_t partitions() const noexcept { return num_parts_; }

  /// The resolved partition request (config, else env, else row stripes).
  [[nodiscard]] const PartitionSpec& partition_spec() const noexcept {
    return partition_spec_;
  }

  /// The current concrete decomposition (moves when rebalancing fires).
  [[nodiscard]] const PartitionLayout& partition_layout() const noexcept {
    return layout_;
  }

  /// Re-splits the partition boundaries from the cumulative cell_load()
  /// histogram (see PartitionLayout::rebalanced). Called automatically at
  /// the start of every step()/run_until_quiescent() when the spec enables
  /// rebalancing — i.e. between increments, never mid-cycle — and callable
  /// explicitly. A no-op on single-partition chips or when the balanced
  /// boundaries equal the current ones. Never changes results.
  void rebalance_partitions();

  /// How many times rebalance_partitions() actually moved a boundary.
  [[nodiscard]] std::uint64_t partition_rebalances() const noexcept {
    return rebalances_;
  }

 private:
  friend class CellContext;

  /// Current check level for the CCA_CHECK macro (see runtime/check.hpp).
  [[nodiscard]] rt::CheckLevel cca_check_level() const noexcept {
    return check_level_;
  }

  /// One deferred cross-partition router push (applied behind a barrier so
  /// no FIFO lane is ever touched by two threads in the same phase).
  struct PendingPush {
    std::uint32_t target_cc = 0;
    std::uint8_t port = 0;  ///< Router port (CellSoA lane index).
    Message msg;
  };

  /// In-place storage of the mesh's ComputeCells. Cells are neither
  /// copyable nor movable (their identity is baked into the SoA block and
  /// the partition structures), so the array is raw aligned storage built
  /// exactly once — from the ChipConfig dimensions, in the Chip
  /// constructor — with every cell constructed in place. There is no
  /// growth, shrink, or relocation path by design.
  class CellArray {
   public:
    CellArray() = default;
    CellArray(const CellArray&) = delete;
    CellArray& operator=(const CellArray&) = delete;
    ~CellArray() {
      for (std::uint32_t i = count_; i > 0; --i) cells_[i - 1].~ComputeCell();
      ::operator delete[](static_cast<void*>(cells_),
                          std::align_val_t{alignof(ComputeCell)});
    }

    /// Constructs `count` cells in place; `make(slot, i)` must
    /// placement-new cell `i` into `slot`. Callable exactly once.
    template <typename MakeFn>
    void build(std::uint32_t count, MakeFn&& make) {
      if (cells_ != nullptr) {
        rt::fatal_misuse("CellArray::build called twice", __FILE__, __LINE__);
      }
      cells_ = static_cast<ComputeCell*>(::operator new[](
          static_cast<std::size_t>(count) * sizeof(ComputeCell),
          std::align_val_t{alignof(ComputeCell)}));
      for (count_ = 0; count_ < count; ++count_) make(cells_ + count_, count_);
    }

    [[nodiscard]] ComputeCell& operator[](std::size_t i) noexcept {
      return cells_[i];
    }
    [[nodiscard]] const ComputeCell& operator[](std::size_t i) const noexcept {
      return cells_[i];
    }
    [[nodiscard]] std::uint32_t size() const noexcept { return count_; }

   private:
    ComputeCell* cells_ = nullptr;
    std::uint32_t count_ = 0;
  };

  /// One mesh partition (an axis-aligned cell rectangle) plus every
  /// accumulator its worker thread writes during a cycle. Accumulators are
  /// merged into the chip-global counters, in partition order, at the
  /// end-of-cycle barrier; all of them are sums, so the merged totals are
  /// independent of the partition count and shape.
  struct alignas(64) PartitionState {
    std::uint32_t index = 0;
    PartRect rect;                      ///< Cells this worker owns.
    std::vector<std::size_t> io_cells;  ///< IO cells attached to these cells.
    ChipStats stats;                    ///< This cycle's counter deltas.
    std::int64_t outstanding = 0;       ///< This cycle's outstanding delta.
    std::vector<HandlerProfile> profile;
    std::uint32_t trace_active = 0, trace_live = 0;
    bool idle = true;                   ///< All owned cells idle after compute.
    /// Router pushes crossing into another partition, keyed by destination
    /// partition id; the destination drains its inbox behind the route
    /// barrier. (With one-hop-per-cycle routing only edge-adjacent
    /// partitions ever receive traffic, but keying by destination keeps
    /// the scheme shape-agnostic.) Each slot is cache-line padded: during
    /// the apply phase every *other* partition clears its own slot of this
    /// array concurrently, so unpadded vector headers would false-share.
    struct alignas(64) Outbox {
      std::vector<PendingPush> pushes;
    };
    std::vector<Outbox> outbox;

    // --- Active-set engine state (EngineKind::kActive only) ---------------
    /// The partition's live cells, ascending cell index — the *sparse-mode*
    /// membership structure. Invariant between cycles while sparse: exactly
    /// the owned cells for which ComputeCell::has_work() holds (each
    /// flagged in the CellSoA activity bitmap). All four phases iterate
    /// this instead of the rectangle. Emptied (capacity released) while the
    /// partition is in dense mode, where the bitmap alone carries
    /// membership.
    std::vector<std::uint32_t> active;
    /// Cells of this partition activated mid-cycle (router pushes, inbound
    /// cross-partition traffic, IO injection); merged — sorted — into
    /// `active` at the start of the compute phase, which is exactly when
    /// the scan engine would first observe them as live. Unused in dense
    /// mode: the compute-phase rectangle walk discovers newly flagged cells
    /// by itself (the counting merge).
    std::vector<std::uint32_t> incoming;
    /// Dense (bitmap) mode of the hybrid: membership is the CellSoA
    /// activity bitmap plus `active_count`, and every phase sweeps the
    /// rectangle's bitmap words (64 cells per load) — the counting merge
    /// that replaces sparse mode's sort/inplace_merge when most cells are
    /// live.
    /// Entered when live occupancy reaches Chip::dense_threshold_ percent
    /// of the rectangle, left (with hysteresis) below half that. Purely a
    /// host-cost mode: both modes visit exactly the cells whose visit is
    /// not a provable no-op, in the same ascending order.
    bool dense = false;
    /// Dense mode's live-cell count (== flagged cells in the rectangle);
    /// maintained at the same activation/deactivation points the sparse
    /// vector is. Meaningless (0) in sparse mode.
    std::uint64_t active_count = 0;
    /// Consecutive cycles the active-set vectors sat far below their
    /// capacity; drives the shrink policy (see Chip::update_hybrid_mode).
    std::uint32_t low_occupancy_cycles = 0;
    /// Sparse↔dense transitions this cycle; merged into
    /// Chip::dense_switches_.
    std::uint64_t dense_switches = 0;
    /// Cells visited by the per-cell phase loops this cycle (snapshot +
    /// route + compute); merged into Chip::cell_visits_. The perf currency
    /// of the engine comparison: scan visits 3 × width × height per cycle,
    /// active visits 3 × |active set| sparse / 3 × rect dense.
    std::uint64_t cell_visits = 0;

    // --- Cross-partition traffic registration (both engines) --------------
    /// Producers that pushed into this partition's inbox (their
    /// `outbox[this]`) during the route phase, registered on first push.
    /// The apply phase drains exactly `inbox_producers[0..inbox_count)`
    /// instead of scanning every partition's (mostly empty) outboxes, so
    /// application cost is proportional to actual cross-partition traffic.
    /// Slot reservation via fetch_add; the route barrier publishes the
    /// slot contents before the consumer reads them.
    std::vector<std::uint32_t> inbox_producers;
    /// Producer count this cycle. Wrapped so PartitionState stays movable
    /// (construction-time only; the atomic itself is never moved mid-run).
    struct MovableAtomicU32 {
      std::atomic<std::uint32_t> v{0};
      MovableAtomicU32() = default;
      MovableAtomicU32(MovableAtomicU32&& o) noexcept
          : v(o.v.load(std::memory_order_relaxed)) {}
      MovableAtomicU32& operator=(MovableAtomicU32&& o) noexcept {
        v.store(o.v.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        return *this;
      }
    };
    MovableAtomicU32 inbox_count;
  };

  /// The cycle engine: runs up to `max_cycles` cycles (optionally stopping
  /// at global quiescence) and returns how many were executed. Serial and
  /// parallel paths run the same per-partition phase functions.
  std::uint64_t run_cycles(std::uint64_t max_cycles, bool until_quiescent);

  /// Points every PartitionState at its layout_ rectangle and reassigns IO
  /// cells to the partition owning their attached cell. Only called
  /// between cycles (construction and rebalancing), when every outbox and
  /// per-cycle accumulator is drained.
  void apply_layout();

  // Per-partition cycle phases (worker-thread side). Each dispatches on
  // the engine: the scan paths walk the partition rectangle, the active
  // paths walk the active set — over the *same* shared per-cell bodies
  // (snapshot_cell/route_cell/compute_one), which is what makes the two
  // engines trivially cycle-identical.
  void cycle_snapshot(PartitionState& st);
  void cycle_route(PartitionState& st);
  void cycle_apply(PartitionState& st);
  void cycle_io(PartitionState& st);
  void cycle_compute(PartitionState& st);
  /// End-of-cycle merge (single-threaded, behind the barrier).
  void merge_partitions();
  /// Full-level barrier-point sweep (CCASTREAM_CHECK=full), run at the end
  /// of every merge while the worker pool is parked at the cycle barrier:
  /// verifies the invariants the lint cannot see statically — every cell's
  /// cached fifo_msgs equals its real FIFO occupancy, active-set/dense
  /// membership exactly equals has_work(), dense counts equal the flag
  /// popcount, sparse vectors mirror the flags in ascending order, all
  /// cross-partition outboxes are drained, and the partition rectangles
  /// exactly cover the mesh. O(mesh) per cycle by design; a failure
  /// aborts via CCA_CHECK.
  void verify_cycle_invariants() const;
  /// Quiescence from the partition idle flags of the cycle just merged.
  [[nodiscard]] bool partitions_quiescent() const noexcept;

  // Shared per-cell phase bodies.
  void route_cell(PartitionState& st, std::uint32_t idx, bool adaptive);
  /// One compute-phase visit; returns whether the cell still has work
  /// (drives both the idle flag and active-set retention).
  bool compute_one(PartitionState& st, std::uint32_t idx, bool tracing);

  /// One serial cycle over all partitions, phase-major (all snapshots,
  /// then all routes, then apply/io/compute, then the merge) — exactly the
  /// barrier schedule without the barriers. The sparse fast path of the
  /// parallel engine and the whole of the single-partition engine.
  void serial_cycle();

  // --- Active-set maintenance (engine_active_ only) ------------------------
  /// In-cycle activation: flags `idx` (owned by `st`) and queues it on
  /// `st.incoming` for the pre-compute merge — or, in dense mode, just
  /// bumps the flag count (the compute-phase rectangle walk will find the
  /// flag; no queue, no sort). Called at every point work is created:
  /// same-partition router pushes, inbound cross-partition applies, IO
  /// injection.
  void mark_active(PartitionState& st, std::uint32_t idx) {
    // Only the owning partition's worker marks a cell (route pushes stay
    // same-partition, inbound applies run on the destination, IO cells
    // belong to their attached cell's owner), so the test-then-set pair
    // cannot race on a bit; the atomics inside CellSoA only arbitrate
    // *words* straddling a partition boundary.
    if (!soa_.is_active(idx)) {
      soa_.set_active(idx);
      if (st.dense) {
        ++st.active_count;
      } else {
        st.incoming.push_back(idx);
      }
    }
  }
  /// Host-side activation (between cycles): inserts straight into the
  /// owning partition's sorted active list (sparse) or bumps its flag
  /// count (dense). Used by the injection APIs.
  void activate_cell(std::uint32_t idx);
  /// Rebuilds every partition's active list / flag count from the per-cell
  /// flags after a layout change (construction, rebalancing). Between
  /// cycles only.
  void rebuild_active_sets();
  /// End-of-compute hybrid maintenance for one partition: applies the
  /// dense↔sparse mode switch (threshold up, half-threshold down) and, in
  /// sparse mode, the capacity shrink policy (sustained low occupancy
  /// decays the vectors back towards the floor). Reads only simulated
  /// state, so the schedule is deterministic — and it only ever moves host
  /// cost, never results.
  void update_hybrid_mode(PartitionState& st);

  void execute_action(PartitionState& st, ComputeCell& cell, const rt::Action& action);
  void deliver(PartitionState& st, ComputeCell& cell, const Message& msg);
  /// Handler body of the allocate system action.
  void handle_allocate(rt::Context& ctx, const rt::Action& action);
  std::optional<rt::GlobalAddress> allocate_on(ChipStats& stats, std::uint32_t cc,
                                               rt::ObjectKind kind);

  ChipConfig cfg_;
  rt::MeshGeometry mesh_;
  /// The struct-of-arrays hot cell state; initialized (and its slab
  /// reserved) before the cells are built, since every cell holds a
  /// pointer to it.
  CellSoA soa_;
  CellArray cells_;
  rt::HandlerRegistry registry_;
  std::unordered_map<rt::ObjectKind, ObjectFactory> factories_;
  std::unique_ptr<rt::AllocationPolicy> alloc_policy_;
  IoSystem io_;
  ChipStats stats_;
  ActivationTrace trace_;
  std::uint64_t cycle_ = 0;
  std::vector<std::uint64_t> cell_load_;
  std::vector<HandlerProfile> handler_profile_;
  std::uint64_t cell_visits_ = 0;
  EngineKind engine_ = EngineKind::kScan;
  /// engine_ == kActive, hoisted: checked on several per-cell hot paths.
  bool engine_active_ = false;
  /// Resolved hybrid dense threshold percent (see resolve_dense_threshold).
  std::uint32_t dense_threshold_ = kDefaultDenseThresholdPct;
  /// Resolved runtime-verification level (see resolve_check_level); read
  /// by the CCA_CHECK macro via cca_check_level() below.
  rt::CheckLevel check_level_ = rt::CheckLevel::off;
  /// Hybrid telemetry, merged once per cycle: total sparse↔dense switches,
  /// partition-cycles run dense, and the active-set capacity high-water.
  std::uint64_t dense_switches_ = 0;
  std::uint64_t dense_cycles_ = 0;
  std::uint64_t active_cap_peak_ = 0;
  /// Rebalance hysteresis state: cell_load_ snapshot at the last rebalance
  /// call, and the exponentially decayed per-cell load window fed to the
  /// quantile splitter (old increments lose half their weight per call, so
  /// the split tracks *recent* load instead of all of history).
  std::vector<std::uint64_t> load_at_rebalance_;
  std::vector<std::uint64_t> load_window_;
  /// Actions created but whose handler has not yet finished executing.
  /// Includes actions still queued in IO cells. Zero is necessary (not
  /// sufficient — cells may still be in busy residue) for quiescence.
  std::uint64_t outstanding_ = 0;
  PartitionSpec partition_spec_;
  PartitionLayout layout_;
  std::uint32_t num_parts_ = 1;
  std::uint64_t rebalances_ = 0;
  std::vector<PartitionState> parts_;
  std::unique_ptr<PartitionPool> pool_;  ///< Created only when num_parts_ > 1.
};

}  // namespace ccastream::sim
