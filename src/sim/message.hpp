// A message in flight on the mesh: one action plus routing/diagnostic state.
// Actions fit a single 256-bit flit (paper §4), so a message occupies one
// link for exactly one cycle per hop.
#pragma once

#include <cstdint>

#include "runtime/action.hpp"

namespace ccastream::sim {

struct Message {
  rt::Action action;
  std::uint32_t src_cc = 0;          ///< Cell (or border cell for IO) of origin.
  std::uint32_t hops = 0;            ///< Link traversals so far.
  std::uint64_t birth_cycle = 0;     ///< Cycle the message was created.
  std::uint64_t last_move_cycle = 0; ///< Guards against >1 hop per cycle.
};

}  // namespace ccastream::sim
