#include "sim/chip.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>

namespace ccastream::sim {

namespace {

/// Packs the operands of the allocate system action into a payload.
/// w0 = kind | budget<<16 | reply_handler<<32 ; w1 = reply_to ; w2 = tag.
rt::Action make_allocate_action(std::uint32_t target_cc, rt::ObjectKind kind,
                                std::uint32_t budget, rt::HandlerId reply_handler,
                                rt::GlobalAddress reply_to, rt::Word tag) {
  const rt::Word w0 = static_cast<rt::Word>(kind) |
                      (static_cast<rt::Word>(budget & 0xFFFFu) << 16) |
                      (static_cast<rt::Word>(reply_handler) << 32);
  return rt::make_action(rt::kHandlerAllocate,
                         rt::GlobalAddress{target_cc, 0}, w0, reply_to.pack(), tag);
}

/// Sparse fast-path trigger of the parallel active-set engine: when the
/// whole chip holds at most this many live cells *per partition*, a cycle's
/// useful work (a few hundred cell visits) is dwarfed by its four barrier
/// waits, so run_cycles executes the cycle phase-major on the calling
/// thread instead of dispatching the pool. Purely a host-performance knob:
/// the serial schedule is the barrier schedule minus the barriers, so
/// results are identical either way.
constexpr std::uint64_t kSparseSerialThreshold = 32;

/// Shrink policy of the hybrid's sparse mode: after this many consecutive
/// cycles with the active-set vectors sitting far below their capacity, the
/// capacity decays towards what is actually in use — so a mesh that peaked
/// dense once does not pin its high-water memory for the rest of the run.
constexpr std::uint32_t kShrinkAfterCycles = 64;
/// Capacity (entries) the shrink policy never decays below; keeps steady
/// sparse traffic from churning reallocations.
constexpr std::size_t kShrinkFloorEntries = 64;

/// std::vector never releases capacity on its own: reallocate down to
/// `cap` entries, keeping the contents.
void shrink_vector(std::vector<std::uint32_t>& v, std::size_t cap) {
  if (v.capacity() <= cap) return;
  std::vector<std::uint32_t> tmp;
  tmp.reserve(std::max(cap, v.size()));
  tmp.assign(v.begin(), v.end());
  v.swap(tmp);
}

/// Frees a vector's storage outright (swap with an empty temporary).
void release_vector(std::vector<std::uint32_t>& v) {
  std::vector<std::uint32_t>().swap(v);
}

}  // namespace

std::string_view to_string(EngineKind engine) noexcept {
  switch (engine) {
    case EngineKind::kScan: return "scan";
    case EngineKind::kActive: return "active";
  }
  return "scan";
}

std::optional<EngineKind> parse_engine(std::string_view text) {
  if (text == "scan") return EngineKind::kScan;
  if (text == "active") return EngineKind::kActive;
  return std::nullopt;
}

EngineKind resolve_engine(const std::optional<EngineKind>& requested) {
  if (requested) return *requested;
  if (const char* env = std::getenv("CCASTREAM_ENGINE")) {
    if (const auto engine = parse_engine(env)) return *engine;
    // Warn (once) instead of failing, mirroring CCASTREAM_PARTITION: a typo
    // would otherwise silently fall back to the default engine — e.g. a CI
    // matrix job or a bench sweep measuring the wrong engine.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccastream: ignoring unparsable CCASTREAM_ENGINE '%s' "
                   "(using active)\n",
                   env);
    }
  }
  // The event-driven hybrid is the default since it became safe at that
  // station (dense mode bounds its cost by the scan engine's, the shrink
  // policy bounds its memory); the scan oracle stays selectable.
  return EngineKind::kActive;
}

std::uint32_t resolve_dense_threshold(std::uint32_t requested) noexcept {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("CCASTREAM_DENSE_PCT")) {
    // strtol so negatives are rejected instead of wrapping; the endptr
    // check rejects trailing garbage ("5O" must warn, not parse as 5);
    // the 1000 cap only keeps the arithmetic far from overflow (anything
    // above 100 already means "never dense").
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1000) {
      return static_cast<std::uint32_t>(v);
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccastream: ignoring out-of-range CCASTREAM_DENSE_PCT "
                   "'%s' (using %u)\n",
                   env, kDefaultDenseThresholdPct);
    }
  }
  return kDefaultDenseThresholdPct;
}

std::uint32_t resolve_threads(std::uint32_t requested) noexcept {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("CCASTREAM_THREADS")) {
    // strtol (not strtoul) so a negative value falls through to serial
    // instead of wrapping to a huge unsigned count.
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::uint32_t>(std::min(v, 4096l));
  }
  return 1;
}

/// Concrete handler execution context bound to one cell for one dispatch.
/// All mutations land in the cell itself or in the executing partition's
/// private accumulators — never in shared chip state — which is what makes
/// handler execution safe and deterministic under the parallel engine (and
/// what keeps the active-set invariant local: a handler can only create
/// work on the cell that is already executing, which is active by
/// definition).
class CellContext final : public rt::Context {
 public:
  CellContext(Chip& chip, Chip::PartitionState& st, ComputeCell& cell)
      : chip_(chip), st_(st), cell_(cell) {}

  [[nodiscard]] std::uint32_t cc() const override { return cell_.index(); }

  [[nodiscard]] const rt::MeshGeometry& geometry() const override {
    return chip_.mesh_;
  }

  void propagate(const rt::Action& action) override {
    Message m;
    m.action = action;
    m.src_cc = cell_.index();
    m.birth_cycle = chip_.cycle_;
    cell_.push_staged(m);
    ++st_.outstanding;
    ++st_.stats.actions_created;
  }

  void schedule_local(const rt::Action& action) override {
    cell_.push_task(action);
    ++st_.outstanding;
    ++st_.stats.tasks_scheduled;
  }

  void charge(std::uint32_t instructions) override { charged_ += instructions; }

  [[nodiscard]] rt::ArenaObject* deref(rt::GlobalAddress addr) override {
    if (addr.cc != cell_.index()) return nullptr;
    return cell_.arena.get(addr.slot);
  }

  std::optional<rt::GlobalAddress> allocate_local(rt::ObjectKind kind) override {
    return chip_.allocate_on(st_.stats, cell_.index(), kind);
  }

  void call_cc_allocate(rt::ObjectKind kind, rt::GlobalAddress reply_to,
                        rt::HandlerId reply_handler, rt::Word tag) override {
    const std::uint32_t target_cc =
        chip_.alloc_policy_->choose(cell_.index(), chip_.mesh_, cell_.rng);
    propagate(make_allocate_action(target_cc, kind, chip_.cfg_.alloc_forward_budget,
                                   reply_handler, reply_to, tag));
  }

  [[nodiscard]] rt::Xoshiro256& rng() override { return cell_.rng; }

  [[nodiscard]] std::uint32_t partition() const override { return st_.index; }

  void count(rt::SimCounter counter, std::uint64_t n) override {
    switch (counter) {
      case rt::SimCounter::kFuturesFulfilled: st_.stats.futures_fulfilled += n; break;
      case rt::SimCounter::kFutureWaitersDrained:
        st_.stats.future_waiters_drained += n;
        break;
      case rt::SimCounter::kAllocForwards: st_.stats.alloc_forwards += n; break;
      case rt::SimCounter::kAllocFailures: st_.stats.alloc_failures += n; break;
    }
  }

  [[nodiscard]] std::uint32_t charged() const noexcept { return charged_; }

 private:
  Chip& chip_;
  Chip::PartitionState& st_;
  ComputeCell& cell_;
  std::uint32_t charged_ = 0;
};

Chip::Chip(ChipConfig cfg)
    : cfg_(cfg),
      mesh_(cfg.width, cfg.height),
      alloc_policy_(rt::make_alloc_policy(cfg.alloc_policy, cfg.vicinity_radius)),
      io_(mesh_, cfg.io_sides) {
  assert(cfg.width > 0 && cfg.height > 0);
  check_level_ = rt::resolve_check_level(cfg_.check_level);
  // The SoA slab first (the cells hold a pointer into it), then the cell
  // array — both sized exactly once from the config dimensions; neither
  // ever grows or relocates.
  soa_.init(mesh_.cell_count(), cfg.fifo_depth);
  rt::SplitMix64 seeder(cfg.seed);
  cells_.build(mesh_.cell_count(), [&](ComputeCell* slot, std::uint32_t i) {
    new (slot) ComputeCell(i, cfg.cc_memory_bytes, &soa_, seeder.next(),
                           check_level_);
  });
  trace_.set_enabled(cfg.record_activation);
  cell_load_.assign(mesh_.cell_count(), 0);
  load_at_rebalance_.assign(mesh_.cell_count(), 0);
  load_window_.assign(mesh_.cell_count(), 0);
  alloc_policy_->prepare(mesh_);
  registry_.register_system_handler(
      rt::kHandlerAllocate, "sys.allocate",
      [this](rt::Context& ctx, const rt::Action& a) { handle_allocate(ctx, a); });

  engine_ = resolve_engine(cfg_.engine);
  engine_active_ = engine_ == EngineKind::kActive;
  dense_threshold_ = resolve_dense_threshold(cfg_.dense_threshold_pct);

  // Mesh partition: one worker per partition. The layout starts uniform;
  // rebalancing (when enabled) moves the boundaries between increments.
  partition_spec_ = resolve_partition(cfg_.partition);
  layout_ = PartitionLayout::build(partition_spec_, cfg_.width, cfg_.height,
                                   resolve_threads(cfg_.threads));
  num_parts_ = layout_.parts();
  parts_.resize(num_parts_);
  for (std::uint32_t p = 0; p < num_parts_; ++p) {
    parts_[p].index = p;
    parts_[p].outbox.resize(num_parts_);
    parts_[p].inbox_producers.assign(num_parts_, 0);
  }
  apply_layout();
  if (num_parts_ > 1) pool_ = std::make_unique<PartitionPool>(num_parts_);
}

void Chip::apply_layout() {
  // Checked build: a fresh decomposition (construction or rebalance) must
  // still cover the mesh exactly — catches splitter bugs before the first
  // cycle runs on the new rectangles.
  CCA_CHECK(full, layout_.exact_cover());
  for (std::uint32_t p = 0; p < num_parts_; ++p) {
    parts_[p].rect = layout_.rect(p);
    parts_[p].io_cells.clear();
  }
  for (std::size_t i = 0; i < io_.cell_count(); ++i) {
    parts_[layout_.owner(io_.cell(i).attached_cc)].io_cells.push_back(i);
  }
  rebuild_active_sets();
}

void Chip::rebuild_active_sets() {
  if (!engine_active_) return;
  for (PartitionState& st : parts_) {
    assert(st.incoming.empty());  // layout moves only between cycles
    st.active.clear();
    st.active_count = 0;
    // Row-major over the rectangle == ascending cell index: the iteration
    // order every phase relies on. A partition keeps its current hybrid
    // mode across the relayout (update_hybrid_mode corrects it at the next
    // compute if the new rectangle changed the occupancy picture).
    for (std::uint32_t y = st.rect.y0; y < st.rect.y1; ++y) {
      const auto span = st.rect.row_span(y, cfg_.width);
      if (st.dense) {
        st.active_count += soa_.count_active(span.begin, span.end);
      } else {
        soa_.for_each_active(span.begin, span.end, [&st](std::uint32_t idx) {
          st.active.push_back(idx);
        });
      }
    }
  }
}

void Chip::activate_cell(std::uint32_t idx) {
  if (!engine_active_) return;
  if (soa_.is_active(idx)) return;
  soa_.set_active(idx);
  PartitionState& st = parts_[layout_.owner(idx)];
  if (st.dense) {
    ++st.active_count;
    return;
  }
  std::vector<std::uint32_t>& active = st.active;
  active.insert(std::upper_bound(active.begin(), active.end(), idx), idx);
}

void Chip::rebalance_partitions() {
  if (num_parts_ <= 1) return;
  // Decay half of the anti-ping-pong pair: the splitter sees an
  // exponentially decayed window of cell_load_, so increments from the
  // distant past stop dominating the quantiles (cell_load_ itself stays
  // the pure cumulative histogram the public API documents).
  for (std::size_t i = 0; i < cell_load_.size(); ++i) {
    const std::uint64_t delta = cell_load_[i] - load_at_rebalance_[i];
    load_window_[i] = load_window_[i] / 2 + delta;
    load_at_rebalance_[i] = cell_load_[i];
  }
  // Hysteresis half: rebalanced() keeps the current boundaries unless the
  // re-split improves the hottest band by the configured margin.
  PartitionLayout next =
      layout_.rebalanced(load_window_, cfg_.rebalance_min_gain_pct);
  if (next == layout_) return;
  layout_ = std::move(next);
  apply_layout();
  ++rebalances_;
}

void Chip::register_object_kind(rt::ObjectKind kind, ObjectFactory factory) {
  factories_[kind] = std::move(factory);
}

std::optional<rt::GlobalAddress> Chip::host_allocate(
    std::uint32_t cc, std::unique_ptr<rt::ArenaObject> obj) {
  if (cc >= cells_.size()) return std::nullopt;
  const auto slot = cells_[cc].arena.insert(std::move(obj));
  if (!slot) return std::nullopt;
  return rt::GlobalAddress{cc, *slot};
}

rt::ArenaObject* Chip::deref(rt::GlobalAddress addr) {
  if (addr.is_null() || addr.cc >= cells_.size()) return nullptr;
  return cells_[addr.cc].arena.get(addr.slot);
}

void Chip::set_alloc_policy(std::unique_ptr<rt::AllocationPolicy> policy) {
  if (policy) {
    alloc_policy_ = std::move(policy);
    alloc_policy_->prepare(mesh_);
  }
}

void Chip::io_enqueue(const rt::Action& action) {
  io_.enqueue(action);
  ++outstanding_;
  ++stats_.actions_created;
  // No cell is touched yet: the attached cell activates when cycle_io
  // actually injects, and outstanding_ != 0 keeps the chip non-quiescent
  // until then.
}

void Chip::inject_local(const rt::Action& action) {
  assert(!action.target.is_null() && action.target.cc < cells_.size());
  cells_[action.target.cc].push_action(action);
  ++outstanding_;
  ++stats_.actions_created;
  activate_cell(action.target.cc);
}

void Chip::inject_via(std::uint32_t at_cc, const rt::Action& action) {
  assert(at_cc < cells_.size());
  Message m;
  m.action = action;
  m.src_cc = at_cc;
  m.birth_cycle = cycle_;
  cells_[at_cc].push_staged(m);
  ++outstanding_;
  ++stats_.actions_created;
  activate_cell(at_cc);
}

bool Chip::quiescent() const {
  if (outstanding_ != 0) return false;
  if (engine_active_) {
    // The active sets are exactly the cells with work (the post-cycle
    // invariant), so quiescence is O(partitions) instead of O(mesh) —
    // dense partitions carry the count in active_count instead of a
    // vector.
    for (const PartitionState& st : parts_) {
      if (st.dense ? st.active_count != 0
                   : !st.active.empty() || !st.incoming.empty()) {
        return false;
      }
    }
    return true;
  }
  // Scan engine: one packed hot word per cell — zero iff idle — so the
  // O(mesh) sweep is a linear pass over one uint64 array.
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (soa_.hot_word(i) != 0) return false;
  }
  return true;
}

std::uint64_t Chip::active_cells() const noexcept {
  std::uint64_t n = 0;
  if (engine_active_) {
    for (const PartitionState& st : parts_) {
      n += st.dense ? st.active_count : st.active.size() + st.incoming.size();
    }
    return n;
  }
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (soa_.hot_word(i) != 0) ++n;
  }
  return n;
}

std::uint32_t Chip::dense_partitions() const noexcept {
  std::uint32_t n = 0;
  for (const PartitionState& st : parts_) n += st.dense ? 1u : 0u;
  return n;
}

std::uint64_t Chip::active_set_capacity() const noexcept {
  std::uint64_t cap = 0;
  for (const PartitionState& st : parts_) {
    cap += st.active.capacity() + st.incoming.capacity();
  }
  return cap;
}

bool Chip::partitions_quiescent() const noexcept {
  if (outstanding_ != 0) return false;
  for (const auto& st : parts_) {
    if (!st.idle) return false;
  }
  return true;
}

std::uint64_t Chip::run_until_quiescent(std::uint64_t max_cycles) {
  return run_cycles(max_cycles, /*until_quiescent=*/true);
}

void Chip::step() { run_cycles(1, /*until_quiescent=*/false); }

std::uint64_t Chip::run_cycles(std::uint64_t max_cycles, bool until_quiescent) {
  if (max_cycles == 0) return 0;
  if (until_quiescent && quiescent()) return 0;

  // Load-adaptive rebalancing fires only here — between public run/step
  // calls (i.e. between increments), never inside the cycle loop, where
  // outboxes and per-cycle accumulators are guaranteed drained. Results
  // are partition-invariant, so the schedule cannot change them.
  if (partition_spec_.rebalance) rebalance_partitions();

  // Serial whenever there is one partition — or the active engine reports
  // so little live work that the four barrier waits of a pooled cycle
  // would dwarf the cell visits (see kSparseSerialThreshold). The mode can
  // flip per cycle as a frontier thins out or widens; the decision reads
  // only simulated state, so it is deterministic, and either mode produces
  // bit-identical results.
  const auto serial_preferred = [this] {
    return num_parts_ == 1 ||
           (engine_active_ &&
            active_cells() <= kSparseSerialThreshold * num_parts_);
  };

  std::uint64_t ran = 0;
  while (ran < max_cycles) {
    if (serial_preferred()) {
      serial_cycle();
      ++ran;
      if (until_quiescent && partitions_quiescent()) break;
      continue;
    }

    // Parallel engine: one dispatch for a whole batch of cycles; the cycle
    // loop lives inside the job and synchronises on the pool's phase
    // barrier. Partition 0 (the calling thread) performs the merge and the
    // stop decision between the third and fourth barriers of each cycle;
    // the barriers provide the happens-before edges, so `stop` and `ran`
    // need no atomics. The batch also ends when the mesh goes sparse, so
    // the outer loop can continue on the serial fast path.
    bool stop = false;
    bool done = false;
    pool_->run([&](std::uint32_t p) {
      PartitionState& st = parts_[p];
      for (;;) {
        cycle_snapshot(st);
        pool_->sync();  // snapshots visible to neighbouring partitions
        cycle_route(st);
        pool_->sync();  // all routing decisions made; outboxes final
        cycle_apply(st);
        cycle_io(st);
        cycle_compute(st);
        pool_->sync();  // all cell state settled for this cycle
        if (p == 0) {
          merge_partitions();
          ++ran;
          done = ran >= max_cycles ||
                 (until_quiescent && partitions_quiescent());
          stop = done || serial_preferred();
        }
        pool_->sync();  // merge + stop decision visible to all partitions
        if (stop) break;
      }
    });
    if (done) break;
  }
  return ran;
}

void Chip::serial_cycle() {
  // Phase-major over all partitions — exactly the barrier schedule without
  // the barriers: every snapshot lands before any route reads a
  // neighbour's latch, every outbox is final before any apply drains it.
  for (PartitionState& st : parts_) cycle_snapshot(st);
  for (PartitionState& st : parts_) cycle_route(st);
  for (PartitionState& st : parts_) {
    cycle_apply(st);
    cycle_io(st);
    cycle_compute(st);
  }
  merge_partitions();
}

void Chip::cycle_snapshot(PartitionState& st) {
  if (engine_active_) {
    if (st.dense) {
      // Dense mode: membership is the activity bitmap, so the phase is a
      // word sweep over the rectangle's rows — the same cells in the same
      // ascending order as sparse mode, testing 64 flags per load (cost
      // still billed as the full rectangle: the sweep IS the scan-shaped
      // walk, it just skips dead cells 64 at a time).
      st.cell_visits += st.rect.cells();
      for (std::uint32_t y = st.rect.y0; y < st.rect.y1; ++y) {
        const auto span = st.rect.row_span(y, cfg_.width);
        soa_.for_each_active(span.begin, span.end, [this](std::uint32_t idx) {
          soa_.latch_snapshot(idx);
        });
      }
      return;
    }
    st.cell_visits += st.active.size();
    for (const std::uint32_t idx : st.active) soa_.latch_snapshot(idx);
    // Inactive cells need no latch: leaving the set zeroed their snapshot
    // (cycle_compute), and an idle cell's live sizes are all zero, so the
    // stored values already equal what a full scan would latch.
    return;
  }
  st.cell_visits += st.rect.cells();
  for (std::uint32_t y = st.rect.y0; y < st.rect.y1; ++y) {
    const auto span = st.rect.row_span(y, cfg_.width);
    for (std::uint32_t idx = span.begin; idx < span.end; ++idx) {
      soa_.latch_snapshot(idx);
    }
  }
}

void Chip::deliver(PartitionState& st, ComputeCell& cell, const Message& msg) {
  cell.push_action(msg.action);
  ++st.stats.deliveries;
  st.stats.total_delivery_latency += cycle_ - msg.birth_cycle;
}

void Chip::cycle_route(PartitionState& st) {
  const bool adaptive = cfg_.routing == RoutingPolicyKind::kWestFirst ||
                        cfg_.routing == RoutingPolicyKind::kOddEven;

  if (engine_active_) {
    if (st.dense) {
      st.cell_visits += st.rect.cells();
      // A flagged-but-empty-router cell is handled by route_cell's
      // occupancy early-return, identical to the scan engine's visit.
      // Cells another partition's push flags mid-sweep may or may not land
      // in an already-loaded word; either is correct — a cell activated
      // this phase has zero snapshot latches and empty io/local_out, so
      // its route visit is the same early-return no-op (and does not
      // advance its arbitration pointer).
      for (std::uint32_t y = st.rect.y0; y < st.rect.y1; ++y) {
        const auto span = st.rect.row_span(y, cfg_.width);
        soa_.for_each_active(span.begin, span.end,
                             [this, &st, adaptive](std::uint32_t idx) {
                               route_cell(st, idx, adaptive);
                             });
      }
      return;
    }
    st.cell_visits += st.active.size();
    // Iterating the phase-start set only is exact: a cell outside it has
    // zero phase-start router occupancy, which is precisely the cells the
    // scan loop skips (without advancing their arbitration pointer). Cells
    // activated mid-phase by a neighbour's push join via st.incoming and
    // are not visited until next cycle — again matching the scan engine,
    // where their `last_move_cycle` guard makes the visit a no-op.
    for (const std::uint32_t idx : st.active) route_cell(st, idx, adaptive);
    return;
  }
  st.cell_visits += st.rect.cells();
  for (std::uint32_t cy = st.rect.y0; cy < st.rect.y1; ++cy) {
    const auto span = st.rect.row_span(cy, cfg_.width);
    for (std::uint32_t idx = span.begin; idx < span.end; ++idx) {
      route_cell(st, idx, adaptive);
    }
  }
}

void Chip::route_cell(PartitionState& st, std::uint32_t idx, bool adaptive) {
  ComputeCell& cell = cells_[idx];
  // Skip (freezing the arbitration pointer) based on the router state at
  // phase start. Live occupancy would count messages pushed by earlier
  // cells *this* phase, making the skip — and thus arb_next's advance —
  // depend on cell visit order and the mesh partitioning. io_in and
  // local_out are only written in later phases, so their live sizes are
  // their phase-start sizes.
  const std::uint32_t* snap = soa_.snapshot(idx);
  std::uint32_t start_occupancy =
      cell.io_in().size() + cell.local_out().size();
  for (std::size_t d = 0; d < kMeshDirections; ++d) {
    start_occupancy += snap[d];
  }
  if (start_occupancy == 0) return;
  const rt::Coord cur = mesh_.coord_of(idx);

  std::uint32_t ejections_left = cfg_.ejections_per_cycle;
  bool used_out[kMeshDirections] = {false, false, false, false};

  // Downstream buffer occupancy, used only by adaptive routing, read from
  // the phase-start snapshots (deterministic regardless of the order the
  // partitions — or the cells within a partition — are visited). Off-mesh
  // directions read as "full" so they are never preferred. Inactive
  // neighbours hold all-zero latches (see cycle_snapshot), identical to
  // what a scan latch of their empty FIFOs would produce.
  DownstreamOccupancy occ{};
  if (adaptive) {
    for (std::size_t d = 0; d < kMeshDirections; ++d) {
      const auto dir = static_cast<Direction>(d);
      const rt::Coord n = ccastream::sim::step(cur, dir);
      occ[d] = mesh_.contains(n) && !(dir == Direction::kNorth && cur.y == 0) &&
                       !(dir == Direction::kWest && cur.x == 0)
                   ? soa_.snapshot(mesh_.index_of(n))[static_cast<std::size_t>(
                         opposite(dir))]
                   : ~0u;
    }
  }

  // Six input sources arbitrated round-robin: four neighbour ports, the
  // IO port, and locally staged traffic — the SoA lane order, so the
  // arbitration index IS the lane index.
  constexpr std::size_t kSources = CellSoA::kLanes;
  for (std::size_t s = 0; s < kSources; ++s) {
    const std::size_t src_idx = (soa_.arb_next(idx) + s) % kSources;
    FifoView<Message> src = soa_.lane(idx, src_idx);
    if (src.empty()) continue;

    Message& m = src.front();
    if (m.last_move_cycle == cycle_ && m.hops > 0) continue;  // already hopped

    const rt::Coord dst = mesh_.coord_of(m.action.target.cc);
    if (dst == cur) {
      if (ejections_left == 0) continue;
      deliver(st, cell, m);
      cell.pop_input(src);
      --ejections_left;
      continue;
    }

    const Direction dir = route(cfg_.routing, cur, dst, occ);
    assert(dir != Direction::kLocal);
    const auto d = static_cast<std::size_t>(dir);
    if (used_out[d]) continue;

    const rt::Coord next = ccastream::sim::step(cur, dir);
    assert(mesh_.contains(next));
    const std::uint32_t next_idx = mesh_.index_of(next);
    const auto port = static_cast<std::size_t>(opposite(dir));
    // Room check against the neighbour's phase-start snapshot. This cell
    // is the only writer of that port lane and used_out caps it at one
    // push per cycle, so snapshot-room guarantees real room; pops by the
    // owner during this phase only free additional space.
    if (soa_.snapshot(next_idx)[port] >= soa_.fifo_depth()) {
      continue;
    }

    m.last_move_cycle = cycle_;
    ++m.hops;
    if (const std::uint32_t owner = layout_.owner(next_idx);
        owner != st.index) {
      auto& box = st.outbox[owner];
      if (box.pushes.empty()) {
        // First push to this destination this cycle: register as a
        // producer so the destination's apply phase drains exactly the
        // partitions with traffic (see PartitionState::inbox_producers).
        PartitionState& dst_part = parts_[owner];
        const std::uint32_t slot =
            dst_part.inbox_count.v.fetch_add(1, std::memory_order_relaxed);
        dst_part.inbox_producers[slot] = st.index;
      }
      box.pushes.push_back(
          {next_idx, static_cast<std::uint8_t>(port), m});
    } else {
      cells_[next_idx].push_router(port, m);
      if (engine_active_) mark_active(st, next_idx);
    }
    cell.pop_input(src);
    used_out[d] = true;
    ++st.stats.hops;
  }
  soa_.advance_arb(idx);
}

void Chip::cycle_apply(PartitionState& st) {
  // Inbound cross-partition pushes: drain exactly the producers that
  // registered during route instead of scanning every partition's (mostly
  // empty) outboxes — O(actual traffic), not O(partitions). Every port
  // FIFO receives at most one message per cycle (single writer + used_out)
  // so application order cannot matter; the sort still pins a reproducible
  // drain order, since registration order depends on thread timing.
  const std::uint32_t n = st.inbox_count.v.load(std::memory_order_relaxed);
  if (n == 0) return;
  std::sort(st.inbox_producers.begin(), st.inbox_producers.begin() + n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto& inbox = parts_[st.inbox_producers[i]].outbox[st.index].pushes;
    for (const PendingPush& p : inbox) {
      cells_[p.target_cc].push_router(p.port, p.msg);
      if (engine_active_) mark_active(st, p.target_cc);
    }
    inbox.clear();
  }
  st.inbox_count.v.store(0, std::memory_order_relaxed);
}

void Chip::cycle_io(PartitionState& st) {
  for (const std::size_t i : st.io_cells) {
    IoCell& ioc = io_.cell(i);
    if (ioc.pending.empty()) continue;
    ComputeCell& cc = cells_[ioc.attached_cc];
    if (!cc.io_in().has_room()) continue;
    Message m;
    m.action = ioc.pending.front();
    m.src_cc = ioc.attached_cc;
    m.birth_cycle = cycle_;
    m.last_move_cycle = cycle_;  // injection consumes this cycle's movement
    cc.push_io(m);
    if (engine_active_) mark_active(st, ioc.attached_cc);
    ioc.pending.pop_front();
    ++st.stats.io_injections;
  }
}

void Chip::cycle_compute(PartitionState& st) {
  const bool tracing = trace_.enabled();

  if (engine_active_) {
    if (st.dense) {
      // Dense mode's counting merge: cells activated since the route phase
      // began already carry their bitmap flag (mark_active), so one word
      // sweep over the rectangle's rows visits exactly the cells the
      // sparse merge would have produced — in the same ascending order —
      // without any sort/inplace_merge. The compute phase never activates
      // a cell other than the one executing (propagate/schedule_local
      // target the executing cell), so no flag is set ahead of the sweep
      // mid-phase and the loaded word copies are exact.
      st.cell_visits += st.rect.cells();
      std::uint64_t live = 0;
      for (std::uint32_t y = st.rect.y0; y < st.rect.y1; ++y) {
        const auto span = st.rect.row_span(y, cfg_.width);
        soa_.for_each_active(
            span.begin, span.end, [&](std::uint32_t idx) {
              if (compute_one(st, idx, tracing)) {
                ++live;
              } else {
                soa_.clear_active(idx);
                // Same invariant as the sparse path: an inactive cell must
                // hold all-zero snapshot latches for its neighbours' reads.
                soa_.zero_snapshot(idx);
              }
            });
      }
      st.active_count = live;
      st.idle = live == 0;
      update_hybrid_mode(st);
      return;
    }
    // Fold in the cells activated since the route phase began (same-
    // partition router pushes, inbound applies, IO injections): the
    // compute phase is exactly when the scan engine first observes them
    // as live, so they must be visited — and counted — this cycle.
    if (!st.incoming.empty()) {
      std::sort(st.incoming.begin(), st.incoming.end());
      const auto mid = static_cast<std::ptrdiff_t>(st.active.size());
      st.active.insert(st.active.end(), st.incoming.begin(), st.incoming.end());
      std::inplace_merge(st.active.begin(), st.active.begin() + mid,
                         st.active.end());
      st.incoming.clear();
    }
    st.cell_visits += st.active.size();
    std::size_t keep = 0;
    for (std::size_t i = 0; i < st.active.size(); ++i) {
      const std::uint32_t idx = st.active[i];
      if (compute_one(st, idx, tracing)) {
        st.active[keep++] = idx;
      } else {
        soa_.clear_active(idx);
        // Leaving the set re-establishes the inactive-cell invariant: a
        // neighbour's room/occupancy read of this cell next cycle must see
        // the zeros a fresh latch of its (now empty) FIFOs would produce.
        soa_.zero_snapshot(idx);
      }
    }
    st.active.resize(keep);
    st.idle = st.active.empty();
    update_hybrid_mode(st);
    return;
  }

  st.idle = true;
  st.cell_visits += st.rect.cells();
  for (std::uint32_t cy = st.rect.y0; cy < st.rect.y1; ++cy) {
    const auto span = st.rect.row_span(cy, cfg_.width);
    for (std::uint32_t idx = span.begin; idx < span.end; ++idx) {
      if (compute_one(st, idx, tracing)) st.idle = false;
    }
  }
}

void Chip::update_hybrid_mode(PartitionState& st) {
  const std::uint64_t cells = st.rect.cells();
  if (!st.dense) {
    const std::uint64_t occ = st.active.size();
    if (occ * 100 >= cells * dense_threshold_) {
      // Sparse → dense: membership moves to the per-cell flags (which are
      // already correct — sparse mode maintains them too), and the vectors
      // are released outright. A mesh that saturates therefore *frees* its
      // active-set memory instead of growing it.
      st.dense = true;
      st.active_count = occ;
      release_vector(st.active);
      release_vector(st.incoming);
      st.low_occupancy_cycles = 0;
      ++st.dense_switches;
      return;
    }
    // Shrink policy: capacity decays after kShrinkAfterCycles consecutive
    // cycles of sitting far above what the frontier needs (2× headroom on
    // the current occupancy, never below the floor). One burst that never
    // reached the dense threshold stops pinning high-water memory.
    const std::size_t want =
        std::max<std::size_t>(kShrinkFloorEntries, 2 * st.active.size());
    if (st.active.capacity() > 2 * want || st.incoming.capacity() > 2 * want) {
      if (++st.low_occupancy_cycles >= kShrinkAfterCycles) {
        shrink_vector(st.active, want);
        shrink_vector(st.incoming, want);
        st.low_occupancy_cycles = 0;
      }
    } else {
      st.low_occupancy_cycles = 0;
    }
    return;
  }
  // Dense → sparse, with hysteresis at *half* the entry threshold: a
  // frontier hovering around the boundary keeps its current mode instead
  // of flapping (and paying the rebuild) every few cycles.
  if (st.active_count * 200 < cells * dense_threshold_) {
    st.dense = false;
    st.active.reserve(st.active_count);
    for (std::uint32_t y = st.rect.y0; y < st.rect.y1; ++y) {
      const auto span = st.rect.row_span(y, cfg_.width);
      soa_.for_each_active(span.begin, span.end, [&st](std::uint32_t idx) {
        st.active.push_back(idx);
      });
    }
    st.active_count = 0;
    st.low_occupancy_cycles = 0;
    ++st.dense_switches;
  }
}

bool Chip::compute_one(PartitionState& st, std::uint32_t idx, bool tracing) {
  ComputeCell& cell = cells_[idx];
  bool did_op = false;
  if (cell.busy() > 0) {
    // Finishing the instruction cycles of the current action.
    cell.dec_busy();
    did_op = true;
  } else if (cell.staged_count() != 0) {
    // Staging one created message into the network (one op).
    if (cell.local_out().has_room()) {
      cell.push_local_out(cell.front_staged());
      cell.pop_staged();
      ++st.stats.messages_staged;
      did_op = true;
    } else {
      ++st.stats.stage_stalls;  // backpressure: network outport full
    }
  } else if (cell.task_count() != 0) {
    const rt::Action a = cell.front_task();
    cell.pop_task();
    if (a.target.cc != cell.index() && !a.target.is_null()) {
      // A drained future closure whose patched target lives elsewhere —
      // the closure's body is a propagate (paper Listing 6 line 23-26),
      // so running it converts the task into an outbound message.
      Message m;
      m.action = a;
      m.src_cc = cell.index();
      m.birth_cycle = cycle_;
      cell.push_staged(m);  // stays outstanding as a message
    } else {
      execute_action(st, cell, a);
    }
    did_op = true;
  } else if (cell.action_count() != 0) {
    const rt::Action a = cell.front_action();
    cell.pop_action();
    execute_action(st, cell, a);
    did_op = true;
  }

  if (did_op) ++cell_load_[idx];
  const bool live = cell.has_work();
  if (tracing) {
    if (did_op) ++st.trace_active;
    if (did_op || live) ++st.trace_live;
  }
  return live;
}

void Chip::merge_partitions() {
  std::uint32_t active = 0;
  std::uint32_t live = 0;
  std::int64_t outstanding_delta = 0;
  for (PartitionState& st : parts_) {
    stats_.add(st.stats);
    st.stats = ChipStats{};
    outstanding_delta += st.outstanding;
    st.outstanding = 0;
    active += st.trace_active;
    live += st.trace_live;
    st.trace_active = st.trace_live = 0;
    cell_visits_ += st.cell_visits;
    st.cell_visits = 0;
    dense_switches_ += st.dense_switches;
    st.dense_switches = 0;
    if (cfg_.profile_handlers && !st.profile.empty()) {
      if (handler_profile_.size() < st.profile.size()) {
        handler_profile_.resize(st.profile.size());
      }
      for (std::size_t h = 0; h < st.profile.size(); ++h) {
        handler_profile_[h].executions += st.profile[h].executions;
        handler_profile_[h].instructions += st.profile[h].instructions;
        st.profile[h] = HandlerProfile{};
      }
    }
  }
  if (engine_active_) {
    // Hybrid telemetry: partitions that ended this cycle dense, and the
    // active-set capacity high-water the shrink policy is measured
    // against. O(partitions), behind the barrier like the rest of the
    // merge.
    dense_cycles_ += dense_partitions();
    const std::uint64_t cap = active_set_capacity();
    if (cap > active_cap_peak_) active_cap_peak_ = cap;
  }
  assert(static_cast<std::int64_t>(outstanding_) + outstanding_delta >= 0);
  outstanding_ =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(outstanding_) +
                                 outstanding_delta);
  ++cycle_;
  ++stats_.cycles;
  if (trace_.enabled()) trace_.record(active, live);
  // Checked build, full level: sweep every structural invariant at this
  // barrier point. The merge runs on partition 0's thread while all other
  // workers are parked at the cycle barrier (their writes are published by
  // the arrival that admitted us here), so reading every cell and
  // partition is race-free.
  if (check_level_ == rt::CheckLevel::full) verify_cycle_invariants();
}

void Chip::verify_cycle_invariants() const {
  // 1. Per-cell: the cached counter equals real lane occupancy, the packed
  //    hot word sums exactly the containers it caches, and — under the
  //    active engine — the bitmap flags are exactly the activity predicate
  //    (the invariant every phase sweep trusts when it skips a cell).
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    const ComputeCell& c = cells_[i];
    CCA_CHECK(full, c.fifo_msgs() == c.router_occupancy());
    CCA_CHECK(full, soa_.work_items(i) ==
                        c.fifo_msgs() + c.staged_count() + c.task_count() +
                            c.action_count());
    if (engine_active_) CCA_CHECK(full, soa_.is_active(i) == c.has_work());
  }
  for (const PartitionState& st : parts_) {
    // 2. Cross-partition plumbing drained: no outbox holds a push and no
    //    producer registration survived the apply phase.
    for (const PartitionState::Outbox& box : st.outbox) {
      CCA_CHECK(full, box.pushes.empty());
    }
    CCA_CHECK(full,
              st.inbox_count.v.load(std::memory_order_relaxed) == 0);
    if (!engine_active_) continue;
    // 3. Membership structures mirror the per-cell flags: dense partitions
    //    carry the exact popcount (and no stale vectors), sparse ones a
    //    sorted vector of exactly the flagged cells, with the mid-cycle
    //    queue folded in.
    CCA_CHECK(full, st.incoming.empty());
    std::uint64_t flagged = 0;
    std::size_t pos = 0;
    bool sparse_mirrors_flags = true;
    for (std::uint32_t y = st.rect.y0; y < st.rect.y1; ++y) {
      const auto span = st.rect.row_span(y, cfg_.width);
      soa_.for_each_active(span.begin, span.end, [&](std::uint32_t idx) {
        ++flagged;
        if (!st.dense) {
          if (pos >= st.active.size() || st.active[pos] != idx) {
            sparse_mirrors_flags = false;
          }
          ++pos;
        }
      });
    }
    if (st.dense) {
      CCA_CHECK(full, st.active.empty());
      CCA_CHECK(full, st.active_count == flagged);
    } else {
      CCA_CHECK(full, sparse_mirrors_flags && pos == st.active.size());
    }
  }
  // 4. The decomposition itself: disjoint rectangles covering every cell,
  //    owner table in agreement.
  CCA_CHECK(full, layout_.exact_cover());
}

void Chip::execute_action(PartitionState& st, ComputeCell& cell,
                          const rt::Action& action) {
  --st.outstanding;  // global non-negativity asserted at the merge

  const rt::Handler* handler = registry_.find(action.handler);
  if (handler == nullptr) {
    ++st.stats.faults;
    return;
  }
  CellContext ctx(*this, st, cell);
  try {
    (*handler)(ctx, action);
  } catch (const std::exception& e) {
    // A throwing handler is a fault, not a crash: letting the exception
    // escape the cycle loop would strand the other partition workers at
    // the phase barrier (and ~PartitionPool in join) — a deadlock instead
    // of an error. The same action throws identically under every
    // partitioning, so the fault count stays deterministic.
    ++st.stats.faults;
    // atomic: handlers on different partition workers may throw in the
    // same compute phase.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccastream: handler '%.*s' threw (%s); counted as fault\n",
                   static_cast<int>(registry_.name(action.handler).size()),
                   registry_.name(action.handler).data(), e.what());
    }
    return;
  } catch (...) {
    ++st.stats.faults;
    return;
  }
  ++st.stats.actions_executed;
  const std::uint32_t cost = cfg_.action_base_cost + ctx.charged();
  st.stats.instructions += cost;
  if (cfg_.profile_handlers) {
    if (st.profile.size() <= action.handler) {
      st.profile.resize(action.handler + 1);
    }
    ++st.profile[action.handler].executions;
    st.profile[action.handler].instructions += cost;
  }
  cell.set_busy(cost > 0 ? cost - 1 : 0);  // this cycle was the first
}

std::optional<rt::GlobalAddress> Chip::allocate_on(ChipStats& stats,
                                                   std::uint32_t cc,
                                                   rt::ObjectKind kind) {
  const auto it = factories_.find(kind);
  if (it == factories_.end()) {
    ++stats.faults;
    return std::nullopt;
  }
  const auto slot = cells_[cc].arena.insert(it->second());
  if (!slot) return std::nullopt;
  ++stats.allocations;
  return rt::GlobalAddress{cc, *slot};
}

void Chip::handle_allocate(rt::Context& ctx, const rt::Action& action) {
  const rt::Word w0 = action.args[0];
  const auto kind = static_cast<rt::ObjectKind>(w0 & 0xFFFFu);
  const auto budget = static_cast<std::uint32_t>((w0 >> 16) & 0xFFFFu);
  const auto reply_handler = static_cast<rt::HandlerId>((w0 >> 32) & 0xFFFFu);
  const rt::GlobalAddress reply_to = rt::GlobalAddress::unpack(action.args[1]);
  const rt::Word tag = action.args[2];

  ctx.charge(2);
  if (const auto addr = ctx.allocate_local(kind)) {
    // Success: fire the return trigger carrying the new address (paper
    // Figure 3, steps 1-2).
    ctx.propagate(rt::make_action(reply_handler, reply_to, addr->pack(), tag));
    return;
  }
  if (budget > 0) {
    // Scratchpad full here — bounce the request to the next cell on the
    // chip (linear probe) with a decremented hop budget.
    ctx.count(rt::SimCounter::kAllocForwards, 1);
    const std::uint32_t next_cc = (ctx.cc() + 1) % mesh_.cell_count();
    ctx.propagate(make_allocate_action(next_cc, kind, budget - 1, reply_handler,
                                       reply_to, tag));
    return;
  }
  // Budget exhausted: report failure with a null address so the requester's
  // future is fulfilled with null and the application can surface the error.
  ctx.count(rt::SimCounter::kAllocFailures, 1);
  ctx.propagate(rt::make_action(reply_handler, reply_to, rt::kNullAddress.pack(), tag));
}

std::vector<std::uint8_t> Chip::activity_levels() const {
  std::vector<std::uint8_t> levels(cells_.size(), 0);
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    const ComputeCell& c = cells_[i];
    // Heuristic brightness: executing > staging > routing > queued.
    std::uint32_t level = 0;
    if (c.busy() > 0) level += 96;
    level += 24 * std::min<std::uint32_t>(4, c.router_occupancy());
    level += 16 * std::min<std::size_t>(4, c.staged_count());
    level += 8 * std::min<std::size_t>(4, c.action_count() + c.task_count());
    levels[i] = static_cast<std::uint8_t>(std::min<std::uint32_t>(255, level));
  }
  return levels;
}

}  // namespace ccastream::sim
