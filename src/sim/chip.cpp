#include "sim/chip.hpp"

#include <algorithm>
#include <cassert>

namespace ccastream::sim {

namespace {

/// Packs the operands of the allocate system action into a payload.
/// w0 = kind | budget<<16 | reply_handler<<32 ; w1 = reply_to ; w2 = tag.
rt::Action make_allocate_action(std::uint32_t target_cc, rt::ObjectKind kind,
                                std::uint32_t budget, rt::HandlerId reply_handler,
                                rt::GlobalAddress reply_to, rt::Word tag) {
  const rt::Word w0 = static_cast<rt::Word>(kind) |
                      (static_cast<rt::Word>(budget & 0xFFFFu) << 16) |
                      (static_cast<rt::Word>(reply_handler) << 32);
  return rt::make_action(rt::kHandlerAllocate,
                         rt::GlobalAddress{target_cc, 0}, w0, reply_to.pack(), tag);
}

}  // namespace

/// Concrete handler execution context bound to one cell for one dispatch.
class CellContext final : public rt::Context {
 public:
  CellContext(Chip& chip, ComputeCell& cell) : chip_(chip), cell_(cell) {}

  [[nodiscard]] std::uint32_t cc() const override { return cell_.index(); }

  [[nodiscard]] const rt::MeshGeometry& geometry() const override {
    return chip_.mesh_;
  }

  void propagate(const rt::Action& action) override {
    Message m;
    m.action = action;
    m.src_cc = cell_.index();
    m.birth_cycle = chip_.cycle_;
    cell_.staged.push_back(m);
    ++chip_.outstanding_;
    ++chip_.stats_.actions_created;
  }

  void schedule_local(const rt::Action& action) override {
    cell_.task_queue.push_back(action);
    ++chip_.outstanding_;
    ++chip_.stats_.tasks_scheduled;
  }

  void charge(std::uint32_t instructions) override { charged_ += instructions; }

  [[nodiscard]] rt::ArenaObject* deref(rt::GlobalAddress addr) override {
    if (addr.cc != cell_.index()) return nullptr;
    return cell_.arena.get(addr.slot);
  }

  std::optional<rt::GlobalAddress> allocate_local(rt::ObjectKind kind) override {
    return chip_.allocate_on(cell_.index(), kind);
  }

  void call_cc_allocate(rt::ObjectKind kind, rt::GlobalAddress reply_to,
                        rt::HandlerId reply_handler, rt::Word tag) override {
    const std::uint32_t target_cc =
        chip_.alloc_policy_->choose(cell_.index(), chip_.mesh_, cell_.rng);
    propagate(make_allocate_action(target_cc, kind, chip_.cfg_.alloc_forward_budget,
                                   reply_handler, reply_to, tag));
  }

  [[nodiscard]] rt::Xoshiro256& rng() override { return cell_.rng; }

  [[nodiscard]] std::uint32_t charged() const noexcept { return charged_; }

 private:
  Chip& chip_;
  ComputeCell& cell_;
  std::uint32_t charged_ = 0;
};

Chip::Chip(ChipConfig cfg)
    : cfg_(cfg),
      mesh_(cfg.width, cfg.height),
      alloc_policy_(rt::make_alloc_policy(cfg.alloc_policy, cfg.vicinity_radius)),
      io_(mesh_, cfg.io_sides) {
  assert(cfg.width > 0 && cfg.height > 0);
  cells_.reserve(mesh_.cell_count());
  rt::SplitMix64 seeder(cfg.seed);
  for (std::uint32_t i = 0; i < mesh_.cell_count(); ++i) {
    cells_.emplace_back(i, cfg.cc_memory_bytes, cfg.fifo_depth, seeder.next());
  }
  trace_.set_enabled(cfg.record_activation);
  cell_load_.assign(mesh_.cell_count(), 0);
  registry_.register_system_handler(
      rt::kHandlerAllocate, "sys.allocate",
      [this](rt::Context& ctx, const rt::Action& a) { handle_allocate(ctx, a); });
}

void Chip::register_object_kind(rt::ObjectKind kind, ObjectFactory factory) {
  factories_[kind] = std::move(factory);
}

std::optional<rt::GlobalAddress> Chip::host_allocate(
    std::uint32_t cc, std::unique_ptr<rt::ArenaObject> obj) {
  if (cc >= cells_.size()) return std::nullopt;
  const auto slot = cells_[cc].arena.insert(std::move(obj));
  if (!slot) return std::nullopt;
  return rt::GlobalAddress{cc, *slot};
}

rt::ArenaObject* Chip::deref(rt::GlobalAddress addr) {
  if (addr.is_null() || addr.cc >= cells_.size()) return nullptr;
  return cells_[addr.cc].arena.get(addr.slot);
}

void Chip::set_alloc_policy(std::unique_ptr<rt::AllocationPolicy> policy) {
  if (policy) alloc_policy_ = std::move(policy);
}

void Chip::io_enqueue(const rt::Action& action) {
  io_.enqueue(action);
  ++outstanding_;
  ++stats_.actions_created;
}

void Chip::inject_local(const rt::Action& action) {
  assert(!action.target.is_null() && action.target.cc < cells_.size());
  cells_[action.target.cc].action_queue.push_back(action);
  ++outstanding_;
  ++stats_.actions_created;
}

void Chip::inject_via(std::uint32_t at_cc, const rt::Action& action) {
  assert(at_cc < cells_.size());
  Message m;
  m.action = action;
  m.src_cc = at_cc;
  m.birth_cycle = cycle_;
  cells_[at_cc].staged.push_back(m);
  ++outstanding_;
  ++stats_.actions_created;
}

bool Chip::quiescent() const {
  if (outstanding_ != 0) return false;
  for (const auto& c : cells_) {
    if (!c.idle()) return false;
  }
  return true;
}

std::uint64_t Chip::run_until_quiescent(std::uint64_t max_cycles) {
  std::uint64_t ran = 0;
  while (ran < max_cycles && !quiescent()) {
    step();
    ++ran;
  }
  return ran;
}

void Chip::step() {
  network_phase();
  io_phase();
  compute_phase();
  ++cycle_;
  ++stats_.cycles;
}

void Chip::deliver(ComputeCell& cell, const Message& msg) {
  cell.action_queue.push_back(msg.action);
  ++stats_.deliveries;
  stats_.total_delivery_latency += cycle_ - msg.birth_cycle;
}

void Chip::network_phase() {
  const bool adaptive = cfg_.routing == RoutingPolicyKind::kWestFirst ||
                        cfg_.routing == RoutingPolicyKind::kOddEven;

  for (auto& cell : cells_) {
    if (cell.router_occupancy() == 0) continue;
    const rt::Coord cur = mesh_.coord_of(cell.index());

    std::uint32_t ejections_left = cfg_.ejections_per_cycle;
    bool used_out[kMeshDirections] = {false, false, false, false};

    // Downstream buffer occupancy, used only by adaptive routing. Off-mesh
    // directions read as "full" so they are never preferred.
    DownstreamOccupancy occ{};
    if (adaptive) {
      for (std::size_t d = 0; d < kMeshDirections; ++d) {
        const auto dir = static_cast<Direction>(d);
        const rt::Coord n = ccastream::sim::step(cur, dir);
        occ[d] = mesh_.contains(n) && !(dir == Direction::kNorth && cur.y == 0) &&
                         !(dir == Direction::kWest && cur.x == 0)
                     ? static_cast<std::uint32_t>(
                           cells_[mesh_.index_of(n)]
                               .router_in[static_cast<std::size_t>(opposite(dir))]
                               .size())
                     : ~0u;
      }
    }

    // Six input sources arbitrated round-robin: four neighbour ports, the
    // IO port, and locally staged traffic.
    constexpr std::size_t kSources = kMeshDirections + 2;
    for (std::size_t s = 0; s < kSources; ++s) {
      const std::size_t src_idx = (cell.arb_next + s) % kSources;
      Fifo<Message>* src = nullptr;
      if (src_idx < kMeshDirections) {
        src = &cell.router_in[src_idx];
      } else if (src_idx == kMeshDirections) {
        src = &cell.io_in;
      } else {
        src = &cell.local_out;
      }
      if (src->empty()) continue;

      Message& m = src->front();
      if (m.last_move_cycle == cycle_ && m.hops > 0) continue;  // already hopped

      const rt::Coord dst = mesh_.coord_of(m.action.target.cc);
      if (dst == cur) {
        if (ejections_left == 0) continue;
        deliver(cell, m);
        src->pop();
        --ejections_left;
        continue;
      }

      const Direction dir = route(cfg_.routing, cur, dst, occ);
      assert(dir != Direction::kLocal);
      const auto d = static_cast<std::size_t>(dir);
      if (used_out[d]) continue;

      const rt::Coord next = ccastream::sim::step(cur, dir);
      assert(mesh_.contains(next));
      ComputeCell& neighbour = cells_[mesh_.index_of(next)];
      Fifo<Message>& in = neighbour.router_in[static_cast<std::size_t>(opposite(dir))];
      if (!in.has_room()) continue;

      m.last_move_cycle = cycle_;
      ++m.hops;
      in.push(m);
      src->pop();
      used_out[d] = true;
      ++stats_.hops;
    }
    cell.arb_next = static_cast<std::uint8_t>((cell.arb_next + 1) % kSources);
  }
}

void Chip::io_phase() {
  for (std::size_t i = 0; i < io_.cell_count(); ++i) {
    IoCell& ioc = io_.cell(i);
    if (ioc.pending.empty()) continue;
    ComputeCell& cc = cells_[ioc.attached_cc];
    if (!cc.io_in.has_room()) continue;
    Message m;
    m.action = ioc.pending.front();
    m.src_cc = ioc.attached_cc;
    m.birth_cycle = cycle_;
    m.last_move_cycle = cycle_;  // injection consumes this cycle's movement
    cc.io_in.push(m);
    ioc.pending.pop_front();
    ++stats_.io_injections;
  }
}

void Chip::compute_phase() {
  std::uint32_t active = 0;
  std::uint32_t live = 0;
  const bool tracing = trace_.enabled();

  for (auto& cell : cells_) {
    bool did_op = false;
    if (cell.busy > 0) {
      // Finishing the instruction cycles of the current action.
      --cell.busy;
      did_op = true;
    } else if (!cell.staged.empty()) {
      // Staging one created message into the network (one op).
      if (cell.local_out.has_room()) {
        cell.local_out.push(cell.staged.front());
        cell.staged.pop_front();
        ++stats_.messages_staged;
        did_op = true;
      } else {
        ++stats_.stage_stalls;  // backpressure: network outport full
      }
    } else if (!cell.task_queue.empty()) {
      const rt::Action a = cell.task_queue.front();
      cell.task_queue.pop_front();
      if (a.target.cc != cell.index() && !a.target.is_null()) {
        // A drained future closure whose patched target lives elsewhere —
        // the closure's body is a propagate (paper Listing 6 line 23-26),
        // so running it converts the task into an outbound message.
        Message m;
        m.action = a;
        m.src_cc = cell.index();
        m.birth_cycle = cycle_;
        cell.staged.push_back(m);  // stays outstanding as a message
      } else {
        execute_action(cell, a);
      }
      did_op = true;
    } else if (!cell.action_queue.empty()) {
      const rt::Action a = cell.action_queue.front();
      cell.action_queue.pop_front();
      execute_action(cell, a);
      did_op = true;
    }

    if (did_op) ++cell_load_[cell.index()];
    if (tracing) {
      if (did_op) ++active;
      if (did_op || !cell.idle()) ++live;
    }
  }
  if (tracing) trace_.record(active, live);
}

void Chip::execute_action(ComputeCell& cell, const rt::Action& action) {
  assert(outstanding_ > 0);
  --outstanding_;

  const rt::Handler* handler = registry_.find(action.handler);
  if (handler == nullptr) {
    ++stats_.faults;
    return;
  }
  CellContext ctx(*this, cell);
  (*handler)(ctx, action);
  ++stats_.actions_executed;
  const std::uint32_t cost = cfg_.action_base_cost + ctx.charged();
  stats_.instructions += cost;
  if (cfg_.profile_handlers) {
    if (handler_profile_.size() <= action.handler) {
      handler_profile_.resize(action.handler + 1);
    }
    ++handler_profile_[action.handler].executions;
    handler_profile_[action.handler].instructions += cost;
  }
  cell.busy = cost > 0 ? cost - 1 : 0;  // this cycle was the first
}

std::optional<rt::GlobalAddress> Chip::allocate_on(std::uint32_t cc,
                                                   rt::ObjectKind kind) {
  const auto it = factories_.find(kind);
  if (it == factories_.end()) {
    ++stats_.faults;
    return std::nullopt;
  }
  const auto slot = cells_[cc].arena.insert(it->second());
  if (!slot) return std::nullopt;
  ++stats_.allocations;
  return rt::GlobalAddress{cc, *slot};
}

void Chip::handle_allocate(rt::Context& ctx, const rt::Action& action) {
  const rt::Word w0 = action.args[0];
  const auto kind = static_cast<rt::ObjectKind>(w0 & 0xFFFFu);
  const auto budget = static_cast<std::uint32_t>((w0 >> 16) & 0xFFFFu);
  const auto reply_handler = static_cast<rt::HandlerId>((w0 >> 32) & 0xFFFFu);
  const rt::GlobalAddress reply_to = rt::GlobalAddress::unpack(action.args[1]);
  const rt::Word tag = action.args[2];

  ctx.charge(2);
  if (const auto addr = ctx.allocate_local(kind)) {
    // Success: fire the return trigger carrying the new address (paper
    // Figure 3, steps 1-2).
    ctx.propagate(rt::make_action(reply_handler, reply_to, addr->pack(), tag));
    return;
  }
  if (budget > 0) {
    // Scratchpad full here — bounce the request to the next cell on the
    // chip (linear probe) with a decremented hop budget.
    ++stats_.alloc_forwards;
    const std::uint32_t next_cc = (ctx.cc() + 1) % mesh_.cell_count();
    ctx.propagate(make_allocate_action(next_cc, kind, budget - 1, reply_handler,
                                       reply_to, tag));
    return;
  }
  // Budget exhausted: report failure with a null address so the requester's
  // future is fulfilled with null and the application can surface the error.
  ++stats_.alloc_failures;
  ctx.propagate(rt::make_action(reply_handler, reply_to, rt::kNullAddress.pack(), tag));
}

std::vector<std::uint8_t> Chip::activity_levels() const {
  std::vector<std::uint8_t> levels(cells_.size(), 0);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const auto& c = cells_[i];
    // Heuristic brightness: executing > staging > routing > queued.
    std::uint32_t level = 0;
    if (c.busy > 0) level += 96;
    level += 24 * std::min<std::uint32_t>(4, c.router_occupancy());
    level += 16 * std::min<std::size_t>(4, c.staged.size());
    level += 8 * std::min<std::size_t>(4, c.action_queue.size() + c.task_queue.size());
    levels[i] = static_cast<std::uint8_t>(std::min<std::uint32_t>(255, level));
  }
  return levels;
}

}  // namespace ccastream::sim
