// Per-cycle activation trace (paper Figures 6 & 7): how many compute cells
// performed an operation each cycle, plus an optional spatial snapshot
// facility used to render chip-activity animations like the authors'.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ccastream::sim {

/// Records one sample per simulated cycle while enabled.
class ActivationTrace {
 public:
  struct Sample {
    std::uint32_t active = 0;  ///< cells that performed an op this cycle.
    std::uint32_t live = 0;    ///< cells holding any pending work.
  };

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(std::uint32_t active, std::uint32_t live) {
    if (enabled_) samples_.push_back({active, live});
  }

  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  void clear() { samples_.clear(); }

  /// Mean fraction of cells active over the trace, given the cell count.
  [[nodiscard]] double mean_active_fraction(std::uint32_t cell_count) const;

  /// Peak fraction of cells active in any one cycle.
  [[nodiscard]] double peak_active_fraction(std::uint32_t cell_count) const;

  /// Downsamples to at most `max_points` (cycle, percent-active) pairs —
  /// what the Figure 6/7 plots consume.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> percent_series(
      std::uint32_t cell_count, std::size_t max_points = 512) const;

 private:
  std::vector<Sample> samples_;
  bool enabled_ = false;
};

/// Writes spatial activity snapshots (one PGM image per sample) for
/// animation, mirroring the authors' repository animations.
class ActivityGridWriter {
 public:
  ActivityGridWriter(std::string directory, std::uint32_t width, std::uint32_t height);

  /// Writes frame `index` from per-cell activity levels (0..255).
  /// Returns false on I/O failure.
  bool write_frame(std::uint64_t index, const std::vector<std::uint8_t>& levels) const;

 private:
  std::string dir_;
  std::uint32_t width_;
  std::uint32_t height_;
};

}  // namespace ccastream::sim
