// Fixed-capacity ring-buffer FIFO used for router port buffers.
// Capacity is set at construction (from ChipConfig::fifo_depth); overflow is
// impossible by construction because callers must check has_room() — the
// mesh applies backpressure instead of dropping messages.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace ccastream::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity = 0) : buf_(capacity) {}

  void set_capacity(std::size_t capacity) {
    assert(size_ == 0 && "cannot resize a non-empty FIFO");
    buf_.assign(capacity, T{});
    head_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool has_room() const noexcept { return size_ < buf_.size(); }

  /// Pushes a value; caller must have checked has_room().
  void push(const T& v) {
    assert(has_room());
    buf_[(head_ + size_) % buf_.size()] = v;
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void pop() {
    assert(!empty());
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ccastream::sim
