// The FIFO family of the simulator:
//
//   * Fifo<T>     — the owning fixed-capacity ring buffer (capacity from
//                   ChipConfig::fifo_depth). The historical router-buffer
//                   container, still the right tool for standalone FIFOs;
//                   the per-cell router lanes themselves now live in the
//                   chip's SoA slab and are mutated through FifoView.
//   * FifoView<T> — a non-owning ring-buffer view over one slab lane
//                   (element span + head/size words inside
//                   sim/cell_soa.hpp's arrays). Same semantics and the
//                   same always-on misuse guards as Fifo; copying the view
//                   copies three pointers, never the lane.
//   * RingQueue<T>— an unbounded deque replacement for the per-cell
//                   action/task/staging queues: allocates NOTHING until
//                   the first push (an empty libstdc++ deque allocates a
//                   512-byte block — ~2 GiB of pure overhead across a
//                   million idle cells), then grows by doubling.
//
// Overflow of the bounded variants is impossible by construction because
// callers must check has_room() — the mesh applies backpressure instead of
// dropping messages.
//
// Misuse (push on full, pop on empty, resizing a non-empty buffer) aborts
// in EVERY build type, not just debug: each of these means a routing or
// backpressure invariant is already broken and silent wraparound would
// corrupt messages. The guards are a single predictable compare on state
// the operation loads anyway; death tests in tests/fifo_test.cpp pin them.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/check.hpp"

namespace ccastream::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity = 0) : buf_(capacity) {}

  void set_capacity(std::size_t capacity) {
    if (size_ != 0) {
      rt::fatal_misuse("Fifo::set_capacity on a non-empty FIFO", __FILE__,
                       __LINE__);
    }
    buf_.assign(capacity, T{});
    head_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool has_room() const noexcept { return size_ < buf_.size(); }

  /// Pushes a value; caller must have checked has_room().
  void push(const T& v) {
    if (size_ >= buf_.size()) {
      rt::fatal_misuse("Fifo::push on a full FIFO", __FILE__, __LINE__);
    }
    buf_[(head_ + size_) % buf_.size()] = v;
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void pop() {
    if (size_ == 0) {
      rt::fatal_misuse("Fifo::pop on an empty FIFO", __FILE__, __LINE__);
    }
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Non-owning ring-buffer FIFO over one slab lane: `buf[0..capacity)` holds
/// the elements, `*head`/`*size` are the lane's occupancy words inside the
/// SoA arrays (see sim/cell_soa.hpp). Behaviour — including the always-on
/// misuse aborts — mirrors Fifo<T> exactly; the view itself is three
/// pointers and a capacity, so call sites pass it by value.
template <typename T>
class FifoView {
 public:
  FifoView(T* buf, std::uint32_t* head, std::uint32_t* size,
           std::uint32_t capacity) noexcept
      : buf_(buf), head_(head), size_(size), capacity_(capacity) {}

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return *size_; }
  [[nodiscard]] bool empty() const noexcept { return *size_ == 0; }
  [[nodiscard]] bool has_room() const noexcept { return *size_ < capacity_; }

  /// Pushes a value; caller must have checked has_room().
  void push(const T& v) {
    if (*size_ >= capacity_) {
      rt::fatal_misuse("FifoView::push on a full FIFO", __FILE__, __LINE__);
    }
    buf_[(*head_ + *size_) % capacity_] = v;
    ++*size_;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buf_[*head_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[*head_];
  }

  void pop() {
    if (*size_ == 0) {
      rt::fatal_misuse("FifoView::pop on an empty FIFO", __FILE__, __LINE__);
    }
    *head_ = (*head_ + 1) % capacity_;
    --*size_;
  }

  /// The lane's occupancy word — identity of the underlying lane, used by
  /// ComputeCell's pop_input ownership guard.
  [[nodiscard]] const std::uint32_t* size_word() const noexcept {
    return size_;
  }

 private:
  T* buf_;
  std::uint32_t* head_;
  std::uint32_t* size_;
  std::uint32_t capacity_;
};

/// Unbounded FIFO queue with a lazily allocated doubling ring buffer — the
/// deque replacement for per-cell work queues. An idle cell's queue is a
/// null pointer and three integers; the first push allocates a small ring
/// that doubles as needed and is reused for the cell's lifetime.
template <typename T>
class RingQueue {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    buf_[(head_ + size_) % cap_] = v;
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void pop_front() {
    if (size_ == 0) {
      rt::fatal_misuse("RingQueue::pop_front on an empty queue", __FILE__,
                       __LINE__);
    }
    head_ = (head_ + 1) % cap_;
    --size_;
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    std::unique_ptr<T[]> next(new T[new_cap]);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = buf_[(head_ + i) % cap_];
    }
    buf_ = std::move(next);
    cap_ = new_cap;
    head_ = 0;
  }

  std::unique_ptr<T[]> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ccastream::sim
