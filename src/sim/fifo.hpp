// Fixed-capacity ring-buffer FIFO used for router port buffers.
// Capacity is set at construction (from ChipConfig::fifo_depth); overflow is
// impossible by construction because callers must check has_room() — the
// mesh applies backpressure instead of dropping messages.
//
// Misuse (push on full, pop on empty, resizing a non-empty buffer) aborts
// in EVERY build type, not just debug: each of these means a routing or
// backpressure invariant is already broken and silent wraparound would
// corrupt messages. The guards are a single predictable compare on state
// the operation loads anyway; death tests in tests/fifo_test.cpp pin them.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "runtime/check.hpp"

namespace ccastream::sim {

template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity = 0) : buf_(capacity) {}

  void set_capacity(std::size_t capacity) {
    if (size_ != 0) {
      rt::fatal_misuse("Fifo::set_capacity on a non-empty FIFO", __FILE__,
                       __LINE__);
    }
    buf_.assign(capacity, T{});
    head_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool has_room() const noexcept { return size_ < buf_.size(); }

  /// Pushes a value; caller must have checked has_room().
  void push(const T& v) {
    if (size_ >= buf_.size()) {
      rt::fatal_misuse("Fifo::push on a full FIFO", __FILE__, __LINE__);
    }
    buf_[(head_ + size_) % buf_.size()] = v;
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  void pop() {
    if (size_ == 0) {
      rt::fatal_misuse("Fifo::pop on an empty FIFO", __FILE__, __LINE__);
    }
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ccastream::sim
