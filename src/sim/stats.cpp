#include "sim/stats.hpp"

#include <ostream>

namespace ccastream::sim {

ChipStats ChipStats::delta_since(const ChipStats& earlier) const noexcept {
  ChipStats d;
  d.cycles = cycles - earlier.cycles;
  d.actions_created = actions_created - earlier.actions_created;
  d.actions_executed = actions_executed - earlier.actions_executed;
  d.tasks_scheduled = tasks_scheduled - earlier.tasks_scheduled;
  d.instructions = instructions - earlier.instructions;
  d.stage_stalls = stage_stalls - earlier.stage_stalls;
  d.messages_staged = messages_staged - earlier.messages_staged;
  d.hops = hops - earlier.hops;
  d.deliveries = deliveries - earlier.deliveries;
  d.total_delivery_latency = total_delivery_latency - earlier.total_delivery_latency;
  d.io_injections = io_injections - earlier.io_injections;
  d.allocations = allocations - earlier.allocations;
  d.alloc_forwards = alloc_forwards - earlier.alloc_forwards;
  d.alloc_failures = alloc_failures - earlier.alloc_failures;
  d.futures_fulfilled = futures_fulfilled - earlier.futures_fulfilled;
  d.future_waiters_drained = future_waiters_drained - earlier.future_waiters_drained;
  d.faults = faults - earlier.faults;
  return d;
}

void ChipStats::add(const ChipStats& other) noexcept {
  cycles += other.cycles;
  actions_created += other.actions_created;
  actions_executed += other.actions_executed;
  tasks_scheduled += other.tasks_scheduled;
  instructions += other.instructions;
  stage_stalls += other.stage_stalls;
  messages_staged += other.messages_staged;
  hops += other.hops;
  deliveries += other.deliveries;
  total_delivery_latency += other.total_delivery_latency;
  io_injections += other.io_injections;
  allocations += other.allocations;
  alloc_forwards += other.alloc_forwards;
  alloc_failures += other.alloc_failures;
  futures_fulfilled += other.futures_fulfilled;
  future_waiters_drained += other.future_waiters_drained;
  faults += other.faults;
}

std::ostream& operator<<(std::ostream& os, const ChipStats& s) {
  os << "cycles=" << s.cycles << " actions(created=" << s.actions_created
     << ", executed=" << s.actions_executed << ", tasks=" << s.tasks_scheduled
     << ") instr=" << s.instructions << " msgs(staged=" << s.messages_staged
     << ", hops=" << s.hops << ", delivered=" << s.deliveries
     << ", mean_lat=" << s.mean_delivery_latency() << ") io=" << s.io_injections
     << " alloc(ok=" << s.allocations << ", fwd=" << s.alloc_forwards
     << ", fail=" << s.alloc_failures << ") futures(fulfilled=" << s.futures_fulfilled
     << ", drained=" << s.future_waiters_drained << ") faults=" << s.faults;
  return os;
}

}  // namespace ccastream::sim
