#include "sim/stats.hpp"

#include <ostream>

namespace ccastream::sim {

ChipStats ChipStats::delta_since(const ChipStats& earlier) const noexcept {
  ChipStats d;
  d.cycles = cycles - earlier.cycles;
  d.actions_created = actions_created - earlier.actions_created;
  d.actions_executed = actions_executed - earlier.actions_executed;
  d.tasks_scheduled = tasks_scheduled - earlier.tasks_scheduled;
  d.instructions = instructions - earlier.instructions;
  d.stage_stalls = stage_stalls - earlier.stage_stalls;
  d.messages_staged = messages_staged - earlier.messages_staged;
  d.hops = hops - earlier.hops;
  d.deliveries = deliveries - earlier.deliveries;
  d.total_delivery_latency = total_delivery_latency - earlier.total_delivery_latency;
  d.io_injections = io_injections - earlier.io_injections;
  d.allocations = allocations - earlier.allocations;
  d.alloc_forwards = alloc_forwards - earlier.alloc_forwards;
  d.alloc_failures = alloc_failures - earlier.alloc_failures;
  d.futures_fulfilled = futures_fulfilled - earlier.futures_fulfilled;
  d.future_waiters_drained = future_waiters_drained - earlier.future_waiters_drained;
  d.faults = faults - earlier.faults;
  return d;
}

std::ostream& operator<<(std::ostream& os, const ChipStats& s) {
  os << "cycles=" << s.cycles << " actions(created=" << s.actions_created
     << ", executed=" << s.actions_executed << ", tasks=" << s.tasks_scheduled
     << ") instr=" << s.instructions << " msgs(staged=" << s.messages_staged
     << ", hops=" << s.hops << ", delivered=" << s.deliveries
     << ", mean_lat=" << s.mean_delivery_latency() << ") io=" << s.io_injections
     << " alloc(ok=" << s.allocations << ", fwd=" << s.alloc_forwards
     << ", fail=" << s.alloc_failures << ") futures(fulfilled=" << s.futures_fulfilled
     << ", drained=" << s.future_waiters_drained << ") faults=" << s.faults;
  return os;
}

}  // namespace ccastream::sim
