// IO Channels and IO Cells (paper Figure 2 & §4 "Graph Construction").
//
// Edges stream onto the chip through IO channels sitting on the chip
// borders. Each channel has one IO cell per border compute cell; the host
// distributes pending actions round-robin among all IO cells, and every
// cycle each IO cell pushes at most one action into its attached border
// cell's router ("every cycle, each IO Cell reads an edge, creates the
// corresponding action ... and sends it to its connected CC").
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/action.hpp"
#include "runtime/geometry.hpp"

namespace ccastream::sim {

/// Which chip borders carry an IO channel.
enum IoSide : std::uint8_t {
  kIoWest = 1 << 0,
  kIoEast = 1 << 1,
  kIoNorth = 1 << 2,
  kIoSouth = 1 << 3,
};

/// One IO cell: a queue of pending actions feeding one border compute cell.
struct IoCell {
  std::uint32_t attached_cc = 0;
  std::deque<rt::Action> pending;
};

/// The set of IO cells on the configured chip borders.
class IoSystem {
 public:
  IoSystem(const rt::MeshGeometry& mesh, std::uint8_t sides);

  /// Queues an action for injection, distributing round-robin across cells.
  void enqueue(const rt::Action& action);

  /// Queues an action on the IO cell nearest to `preferred_cc`'s column/row
  /// (used by tests exercising specific injection points).
  void enqueue_at(std::size_t io_cell, const rt::Action& action);

  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  [[nodiscard]] IoCell& cell(std::size_t i) { return cells_[i]; }
  [[nodiscard]] const IoCell& cell(std::size_t i) const { return cells_[i]; }

  /// Total actions still waiting in IO cells.
  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] bool drained() const noexcept { return pending() == 0; }

 private:
  std::vector<IoCell> cells_;
  std::size_t next_ = 0;
};

}  // namespace ccastream::sim
