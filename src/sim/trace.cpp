#include "sim/trace.hpp"

#include <algorithm>
#include <fstream>

namespace ccastream::sim {

double ActivationTrace::mean_active_fraction(std::uint32_t cell_count) const {
  if (samples_.empty() || cell_count == 0) return 0.0;
  std::uint64_t sum = 0;
  for (const auto& s : samples_) sum += s.active;
  return static_cast<double>(sum) /
         (static_cast<double>(samples_.size()) * cell_count);
}

double ActivationTrace::peak_active_fraction(std::uint32_t cell_count) const {
  if (samples_.empty() || cell_count == 0) return 0.0;
  std::uint32_t peak = 0;
  for (const auto& s : samples_) peak = std::max(peak, s.active);
  return static_cast<double>(peak) / cell_count;
}

std::vector<std::pair<std::uint64_t, double>> ActivationTrace::percent_series(
    std::uint32_t cell_count, std::size_t max_points) const {
  std::vector<std::pair<std::uint64_t, double>> out;
  if (samples_.empty() || cell_count == 0 || max_points == 0) return out;
  const std::size_t stride = std::max<std::size_t>(1, samples_.size() / max_points);
  out.reserve(samples_.size() / stride + 1);
  for (std::size_t i = 0; i < samples_.size(); i += stride) {
    // Average the bucket so short activity bursts are not aliased away.
    std::uint64_t sum = 0;
    const std::size_t end = std::min(i + stride, samples_.size());
    for (std::size_t j = i; j < end; ++j) sum += samples_[j].active;
    const double pct = 100.0 * static_cast<double>(sum) /
                       (static_cast<double>(end - i) * cell_count);
    out.emplace_back(i, pct);
  }
  return out;
}

ActivityGridWriter::ActivityGridWriter(std::string directory, std::uint32_t width,
                                       std::uint32_t height)
    : dir_(std::move(directory)), width_(width), height_(height) {}

bool ActivityGridWriter::write_frame(std::uint64_t index,
                                     const std::vector<std::uint8_t>& levels) const {
  if (levels.size() != static_cast<std::size_t>(width_) * height_) return false;
  std::ofstream f(dir_ + "/frame_" + std::to_string(index) + ".pgm",
                  std::ios::binary);
  if (!f) return false;
  f << "P5\n" << width_ << " " << height_ << "\n255\n";
  f.write(reinterpret_cast<const char*>(levels.data()),
          static_cast<std::streamsize>(levels.size()));
  return static_cast<bool>(f);
}

}  // namespace ccastream::sim
