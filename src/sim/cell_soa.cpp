#include "sim/cell_soa.hpp"

namespace ccastream::sim {

void CellSoA::init(std::uint32_t cell_count, std::uint32_t fifo_depth) {
  cells_ = cell_count;
  depth_ = fifo_depth;
  const std::size_t n = cell_count;
  const std::size_t lanes = n * kLanes;
  const std::size_t words = (n + 63) / 64;

  // One reservation for the whole layout; the slab is calloc-backed, so
  // the worst-case message storage below is address space until traffic
  // actually touches it.
  std::size_t bytes = 0;
  bytes += rt::SlabArena::span_bytes<std::uint64_t>(n);               // hot_
  bytes += rt::SlabArena::span_bytes<std::uint32_t>(n);               // fifo_msgs_
  bytes += rt::SlabArena::span_bytes<std::uint32_t>(n * kMeshDirections);
  bytes += rt::SlabArena::span_bytes<std::uint8_t>(n);                // arb_next_
  bytes += rt::SlabArena::span_bytes<std::uint64_t>(words);           // active_
  bytes += rt::SlabArena::span_bytes<Message>(lanes * fifo_depth);    // lanes_
  bytes += rt::SlabArena::span_bytes<std::uint32_t>(lanes);           // lane_head_
  bytes += rt::SlabArena::span_bytes<std::uint32_t>(lanes);           // lane_size_
  slab_.reserve(bytes);

  hot_ = slab_.allocate<std::uint64_t>(n);
  fifo_msgs_ = slab_.allocate<std::uint32_t>(n);
  snapshot_ = slab_.allocate<std::uint32_t>(n * kMeshDirections);
  arb_next_ = slab_.allocate<std::uint8_t>(n);
  active_ = slab_.allocate<std::uint64_t>(words);
  lanes_ = slab_.allocate<Message>(lanes * fifo_depth);
  lane_head_ = slab_.allocate<std::uint32_t>(lanes);
  lane_size_ = slab_.allocate<std::uint32_t>(lanes);
  if (slab_.bytes_used() != slab_.bytes_capacity()) {
    rt::fatal_misuse("CellSoA::init slab layout mismatch", __FILE__, __LINE__);
  }
}

}  // namespace ccastream::sim
