#include "sim/partition.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace ccastream::sim {

namespace {

/// Parses a base-10 uint32 spanning the whole of `text` (no sign, no
/// trailing junk). nullopt on empty input or overflow.
std::optional<std::uint32_t> parse_u32(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xFFFFFFFFull) return std::nullopt;
  }
  return static_cast<std::uint32_t>(v);
}

/// Uniform boundaries: n bins into parts ranges via floor(n*s/parts), the
/// same arithmetic the original row-stripe engine used.
std::vector<std::uint32_t> uniform_boundaries(std::uint32_t n,
                                              std::uint32_t parts) {
  std::vector<std::uint32_t> b(parts + 1);
  for (std::uint32_t s = 0; s <= parts; ++s) {
    b[s] = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(n) * s) / parts);
  }
  return b;
}

/// The most nearly square gx × gy = parts that fits gx <= width and
/// gy <= height, degrading parts until a factorisation fits (parts = 1
/// always does). Ties prefer the taller grid (gy >= gx): row-major bands
/// keep each tile's cells closer together in the cell array.
void choose_tile_grid(std::uint32_t width, std::uint32_t height,
                      std::uint32_t parts, std::uint32_t& gx,
                      std::uint32_t& gy) {
  for (;; --parts) {
    std::uint32_t best_gx = 0, best_gy = 0;
    for (std::uint32_t d = 1; d <= parts; ++d) {
      if (parts % d != 0) continue;
      const std::uint32_t cand_gy = d, cand_gx = parts / d;
      if (cand_gx > width || cand_gy > height) continue;
      const auto skew = [](std::uint32_t a, std::uint32_t b) {
        return a > b ? a - b : b - a;
      };
      if (best_gx == 0 || skew(cand_gx, cand_gy) < skew(best_gx, best_gy) ||
          (skew(cand_gx, cand_gy) == skew(best_gx, best_gy) &&
           cand_gy > best_gy)) {
        best_gx = cand_gx;
        best_gy = cand_gy;
      }
    }
    if (best_gx != 0) {
      gx = best_gx;
      gy = best_gy;
      return;
    }
  }
}

/// The hottest band's cumulative load under `bounds` (a parts+1 boundary
/// vector over `bins`) — the quantity rebalancing exists to minimise.
std::uint64_t max_band_load(const std::vector<std::uint64_t>& bins,
                            const std::vector<std::uint32_t>& bounds) {
  std::uint64_t worst = 0;
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    std::uint64_t band = 0;
    for (std::uint32_t i = bounds[s]; i < bounds[s + 1]; ++i) band += bins[i];
    worst = std::max(worst, band);
  }
  return worst;
}

/// Hysteresis gate: adopt `candidate` over `current` only when it shrinks
/// the hottest band by at least `min_gain_pct` percent. 128-bit products
/// keep the comparison exact for any run length.
bool improves_enough(const std::vector<std::uint64_t>& bins,
                     const std::vector<std::uint32_t>& current,
                     const std::vector<std::uint32_t>& candidate,
                     std::uint32_t min_gain_pct) {
  if (min_gain_pct == 0) return true;
  const std::uint64_t cur = max_band_load(bins, current);
  const std::uint64_t cand = max_band_load(bins, candidate);
  const std::uint32_t keep = 100 - std::min<std::uint32_t>(min_gain_pct, 100);
  return static_cast<unsigned __int128>(cand) * 100 <=
         static_cast<unsigned __int128>(cur) * keep;
}

}  // namespace

std::string_view to_string(PartitionShape shape) noexcept {
  switch (shape) {
    case PartitionShape::kRows: return "rows";
    case PartitionShape::kCols: return "cols";
    case PartitionShape::kTiles: return "tiles";
  }
  return "rows";
}

std::optional<PartitionSpec> PartitionSpec::parse(std::string_view text) {
  PartitionSpec spec;
  if (const auto plus = text.find('+'); plus != std::string_view::npos) {
    if (text.substr(plus + 1) != "rebalance") return std::nullopt;
    spec.rebalance = true;
    text = text.substr(0, plus);
  }
  if (text == "rows") {
    spec.shape = PartitionShape::kRows;
  } else if (text == "cols") {
    spec.shape = PartitionShape::kCols;
  } else if (text == "tiles") {
    spec.shape = PartitionShape::kTiles;
  } else if (text.substr(0, 6) == "tiles:") {
    spec.shape = PartitionShape::kTiles;
    const std::string_view grid = text.substr(6);
    const auto x = grid.find('x');
    if (x == std::string_view::npos) return std::nullopt;
    const auto gx = parse_u32(grid.substr(0, x));
    const auto gy = parse_u32(grid.substr(x + 1));
    if (!gx || !gy || *gx == 0 || *gy == 0) return std::nullopt;
    spec.tiles_x = *gx;
    spec.tiles_y = *gy;
  } else {
    return std::nullopt;
  }
  return spec;
}

std::string PartitionSpec::to_string() const {
  std::string out{sim::to_string(shape)};
  if (shape == PartitionShape::kTiles && tiles_x != 0 && tiles_y != 0) {
    out += ':';
    out += std::to_string(tiles_x);
    out += 'x';
    out += std::to_string(tiles_y);
  }
  if (rebalance) out += "+rebalance";
  return out;
}

PartitionSpec resolve_partition(const std::optional<PartitionSpec>& requested) {
  if (requested) return *requested;
  if (const char* env = std::getenv("CCASTREAM_PARTITION")) {
    if (const auto spec = PartitionSpec::parse(env)) return *spec;
    // Warn (once) instead of failing: library code cannot abort the host
    // program, but a typo here would otherwise silently run everything on
    // the default row stripes — e.g. a CI partition-matrix job testing
    // nothing. atomic: chips may be constructed from concurrent host
    // threads.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccastream: ignoring unparsable CCASTREAM_PARTITION '%s' "
                   "(using rows)\n",
                   env);
    }
  }
  return {};
}

std::vector<std::uint32_t> balanced_boundaries(
    const std::vector<std::uint64_t>& bins, std::uint32_t parts) {
  const auto n = static_cast<std::uint32_t>(bins.size());
  assert(parts >= 1 && parts <= n);
  std::uint64_t total = 0;
  for (const std::uint64_t v : bins) total += v;
  if (total == 0) return uniform_boundaries(n, parts);

  std::vector<std::uint32_t> b(parts + 1);
  b[0] = 0;
  b[parts] = n;
  std::uint64_t prefix = 0;  // sum of bins [0, cursor)
  std::uint32_t cursor = 0;
  for (std::uint32_t s = 1; s < parts; ++s) {
    // 128-bit product: total * s overflows u64 only for absurd loads, but
    // the rebalance schedule must stay exact for any run length.
    const std::uint64_t target = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(total) * s) / parts);
    const std::uint32_t lo = b[s - 1] + 1;     // keep this band non-empty
    const std::uint32_t hi = n - (parts - s);  // leave one bin per later band
    while (cursor < lo || (cursor < hi && prefix < target)) {
      prefix += bins[cursor];
      ++cursor;
    }
    b[s] = cursor;
  }
  return b;
}

PartitionLayout PartitionLayout::from_boundaries(
    PartitionShape shape, std::uint32_t width, std::uint32_t height,
    const std::vector<std::uint32_t>& xb, const std::vector<std::uint32_t>& yb) {
  PartitionLayout layout;
  layout.shape_ = shape;
  layout.width_ = width;
  layout.height_ = height;
  layout.grid_x_ = static_cast<std::uint32_t>(xb.size() - 1);
  layout.grid_y_ = static_cast<std::uint32_t>(yb.size() - 1);
  layout.rects_.clear();
  layout.rects_.reserve(static_cast<std::size_t>(layout.grid_x_) * layout.grid_y_);
  for (std::uint32_t ty = 0; ty < layout.grid_y_; ++ty) {
    for (std::uint32_t tx = 0; tx < layout.grid_x_; ++tx) {
      layout.rects_.push_back({xb[tx], xb[tx + 1], yb[ty], yb[ty + 1]});
    }
  }
  layout.owner_.assign(static_cast<std::size_t>(width) * height, 0);
  for (std::uint32_t p = 0; p < layout.parts(); ++p) {
    const PartRect& r = layout.rects_[p];
    for (std::uint32_t y = r.y0; y < r.y1; ++y) {
      for (std::uint32_t x = r.x0; x < r.x1; ++x) {
        layout.owner_[static_cast<std::size_t>(y) * width + x] = p;
      }
    }
  }
  return layout;
}

PartitionLayout PartitionLayout::build(const PartitionSpec& spec,
                                       std::uint32_t width, std::uint32_t height,
                                       std::uint32_t target_parts) {
  assert(width > 0 && height > 0);
  target_parts = std::max<std::uint32_t>(1, target_parts);
  std::uint32_t gx = 1, gy = 1;
  switch (spec.shape) {
    case PartitionShape::kRows:
      gy = std::min(target_parts, height);
      break;
    case PartitionShape::kCols:
      gx = std::min(target_parts, width);
      break;
    case PartitionShape::kTiles:
      if (spec.tiles_x != 0 && spec.tiles_y != 0) {
        gx = std::min(spec.tiles_x, width);
        gy = std::min(spec.tiles_y, height);
      } else {
        // Clamp before the divisor search: it is O(parts^2) in the worst
        // case, and an unclamped request (ChipConfig::threads bypasses
        // resolve_threads' 4096 cap) must not stall construction.
        const std::uint64_t capacity =
            std::min<std::uint64_t>(static_cast<std::uint64_t>(width) * height,
                                    4096);
        choose_tile_grid(
            width, height,
            static_cast<std::uint32_t>(
                std::min<std::uint64_t>(target_parts, capacity)),
            gx, gy);
      }
      break;
  }
  return from_boundaries(spec.shape, width, height,
                         uniform_boundaries(width, gx),
                         uniform_boundaries(height, gy));
}

std::vector<std::uint32_t> PartitionLayout::x_boundaries() const {
  std::vector<std::uint32_t> xb(grid_x_ + 1);
  for (std::uint32_t tx = 0; tx < grid_x_; ++tx) xb[tx] = rects_[tx].x0;
  xb[grid_x_] = width_;
  return xb;
}

std::vector<std::uint32_t> PartitionLayout::y_boundaries() const {
  std::vector<std::uint32_t> yb(grid_y_ + 1);
  for (std::uint32_t ty = 0; ty < grid_y_; ++ty) {
    yb[ty] = rects_[static_cast<std::size_t>(ty) * grid_x_].y0;
  }
  yb[grid_y_] = height_;
  return yb;
}

bool PartitionLayout::exact_cover() const {
  if (owner_.size() != static_cast<std::size_t>(width_) * height_) return false;
  // Count coverage per cell from the rectangles themselves; the owner
  // table must agree with (and therefore be derivable from) the rects.
  std::vector<std::uint8_t> covered(owner_.size(), 0);
  for (std::uint32_t p = 0; p < parts(); ++p) {
    const PartRect& r = rects_[p];
    if (r.x0 >= r.x1 || r.y0 >= r.y1 || r.x1 > width_ || r.y1 > height_) {
      return false;
    }
    for (std::uint32_t y = r.y0; y < r.y1; ++y) {
      for (std::uint32_t x = r.x0; x < r.x1; ++x) {
        const std::size_t idx = static_cast<std::size_t>(y) * width_ + x;
        if (covered[idx] != 0) return false;  // overlap
        covered[idx] = 1;
        if (owner_[idx] != p) return false;
      }
    }
  }
  for (const std::uint8_t c : covered) {
    if (c == 0) return false;  // gap
  }
  return true;
}

PartitionLayout PartitionLayout::rebalanced(
    const std::vector<std::uint64_t>& cell_load,
    std::uint32_t min_gain_pct) const {
  assert(cell_load.size() == static_cast<std::size_t>(width_) * height_);
  std::vector<std::uint32_t> xb = uniform_boundaries(width_, grid_x_);
  std::vector<std::uint32_t> yb = uniform_boundaries(height_, grid_y_);
  if (grid_y_ > 1) {
    std::vector<std::uint64_t> row_load(height_, 0);
    for (std::uint32_t y = 0; y < height_; ++y) {
      for (std::uint32_t x = 0; x < width_; ++x) {
        row_load[y] += cell_load[static_cast<std::size_t>(y) * width_ + x];
      }
    }
    yb = balanced_boundaries(row_load, grid_y_);
    if (!improves_enough(row_load, y_boundaries(), yb, min_gain_pct)) {
      yb = y_boundaries();  // marginal gain: keep the current split
    }
  }
  if (grid_x_ > 1) {
    std::vector<std::uint64_t> col_load(width_, 0);
    for (std::uint32_t y = 0; y < height_; ++y) {
      for (std::uint32_t x = 0; x < width_; ++x) {
        col_load[x] += cell_load[static_cast<std::size_t>(y) * width_ + x];
      }
    }
    xb = balanced_boundaries(col_load, grid_x_);
    if (!improves_enough(col_load, x_boundaries(), xb, min_gain_pct)) {
      xb = x_boundaries();  // marginal gain: keep the current split
    }
  }
  // Skip the rect/owner-table rebuild when the split did not move — the
  // common steady-state case for a chip rebalancing every increment.
  if (xb == x_boundaries() && yb == y_boundaries()) return *this;
  return from_boundaries(shape_, width_, height_, xb, yb);
}

}  // namespace ccastream::sim
