// One AM-CCA Compute Cell: scratchpad memory, compute logic, and a 5-port
// mesh router (4 neighbour input buffers + an IO input on border cells).
//
// Per simulation cycle a cell performs at most ONE operation (paper §4):
// either one abstract instruction of the action it is executing, or the
// staging of one outbound message created by `propagate`. The Chip owns the
// per-cycle orchestration; this class is the cell's state.
#pragma once

#include <cstdint>
#include <deque>

#include "runtime/action.hpp"
#include "runtime/arena.hpp"
#include "runtime/rng.hpp"
#include "sim/fifo.hpp"
#include "sim/message.hpp"
#include "sim/routing.hpp"

namespace ccastream::sim {

class ComputeCell {
 public:
  ComputeCell(std::uint32_t index, std::size_t memory_bytes, std::uint32_t fifo_depth,
              std::uint64_t rng_seed)
      : arena(memory_bytes), rng(rng_seed), index_(index) {
    for (auto& f : router_in) f.set_capacity(fifo_depth);
    io_in.set_capacity(fifo_depth);
    local_out.set_capacity(fifo_depth);
  }

  // Cells are move-only: copying a scratchpad full of owned objects is
  // never meaningful, and deleting the copy operations also steers
  // std::vector relocation to the move constructor.
  ComputeCell(const ComputeCell&) = delete;
  ComputeCell& operator=(const ComputeCell&) = delete;
  ComputeCell(ComputeCell&&) = default;
  ComputeCell& operator=(ComputeCell&&) = default;

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

  /// True when the cell holds no work of any kind — the per-cell component
  /// of global quiescence. O(1): queue emptiness plus the cached FIFO
  /// occupancy counter (`fifo_msgs`), so the active-set engine can
  /// re-evaluate it for every live cell every cycle.
  [[nodiscard]] bool idle() const noexcept;

  /// The activity predicate of the event-driven engine: a cell belongs in
  /// its partition's active set iff it has work — it is busy, or any of
  /// `action_queue`/`task_queue`/`staged`/`local_out`/`io_in`/`router_in`
  /// is non-empty. Exactly `!idle()`, named for the call sites that reason
  /// about set membership.
  [[nodiscard]] bool has_work() const noexcept { return !idle(); }

  /// Messages currently buffered in this cell's router (all six inputs:
  /// four neighbour ports, the IO port, and locally staged traffic).
  [[nodiscard]] std::uint32_t router_occupancy() const noexcept;

  // --- Scratchpad ---------------------------------------------------------
  rt::ObjectArena arena;

  // --- Compute state ------------------------------------------------------
  /// Remaining busy cycles of the action currently "executing".
  std::uint32_t busy = 0;
  /// Actions delivered to this cell, awaiting dispatch.
  std::deque<rt::Action> action_queue;
  /// Deferred local tasks (future LCO drains); dispatched before new actions.
  std::deque<rt::Action> task_queue;
  /// Messages created by handlers, not yet staged into the network.
  std::deque<Message> staged;

  // --- Router state -------------------------------------------------------
  /// Input buffer per neighbour direction (indexed by the port side: the
  /// kNorth buffer holds messages that arrived from the north neighbour).
  Fifo<Message> router_in[kMeshDirections] = {Fifo<Message>{}, Fifo<Message>{},
                                              Fifo<Message>{}, Fifo<Message>{}};
  /// Messages injected by an attached IO cell (border cells only).
  Fifo<Message> io_in;
  /// Locally staged messages entering the network.
  Fifo<Message> local_out;

  /// Router input sizes latched at the start of each network phase. All
  /// room/occupancy decisions made *about* this cell by its neighbours this
  /// cycle read these latched values (never the live FIFOs), which is what
  /// makes the network phase independent of cell visit order — and hence of
  /// the mesh partitioning (stripes or tiles) of the parallel engine.
  std::uint32_t in_size_snapshot[kMeshDirections] = {0, 0, 0, 0};

  /// Cached occupancy: messages currently held across all six FIFOs
  /// (`router_in[4]`, `io_in`, `local_out`). The Chip maintains it at every
  /// push/pop site, making `idle()` a constant-count check instead of six
  /// container walks — the activity predicate runs once per live cell per
  /// cycle under the active-set engine. `router_occupancy()` recomputes
  /// from the containers and asserts agreement in debug builds.
  std::uint32_t fifo_msgs = 0;

  // --- Misc ---------------------------------------------------------------
  rt::Xoshiro256 rng;
  /// Round-robin pointer for router input arbitration fairness.
  std::uint8_t arb_next = 0;
  /// Membership flag of the event-driven engine's per-partition active
  /// set (see Chip::PartitionState::active). In the hybrid's sparse mode
  /// it mirrors membership of the sorted vector; in dense mode these
  /// per-cell flags ARE the membership structure (the bitmap the
  /// rectangle walks test). Written only by the owning partition's
  /// worker; meaningless (always false) under the scan engine.
  bool in_active_set = false;

 private:
  std::uint32_t index_;
};

}  // namespace ccastream::sim
