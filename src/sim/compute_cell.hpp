// One AM-CCA Compute Cell: scratchpad memory, compute logic, and a 5-port
// mesh router (4 neighbour input buffers + an IO input on border cells).
//
// Per simulation cycle a cell performs at most ONE operation (paper §4):
// either one abstract instruction of the action it is executing, or the
// staging of one outbound message created by `propagate`. The Chip owns the
// per-cycle orchestration; this class is the cell's *cold* state.
//
// The hot state — busy cycles, FIFO occupancy, snapshot latches, the
// arbitration pointer, the activity flag, and the six message FIFOs
// themselves — lives in the chip's struct-of-arrays block (sim/cell_soa.hpp),
// keyed by this cell's index. What remains here is what only the compute
// phase of THIS cell ever touches: the scratchpad arena, the RNG, and the
// unbounded action/task/staging queues. Every mutation of the hot state
// still goes through this class's sanctioned helpers, which keep the SoA
// words (the packed hot word and the exact fifo_msgs counter) in lockstep
// with the containers.
#pragma once

#include <cstdint>

#include "runtime/action.hpp"
#include "runtime/arena.hpp"
#include "runtime/check.hpp"
#include "runtime/rng.hpp"
#include "sim/cell_soa.hpp"
#include "sim/fifo.hpp"
#include "sim/message.hpp"
#include "sim/routing.hpp"

namespace ccastream::sim {

class ComputeCell {
 public:
  ComputeCell(std::uint32_t index, std::size_t memory_bytes, CellSoA* soa,
              std::uint64_t rng_seed,
              rt::CheckLevel check_level = rt::CheckLevel::off)
      : arena(memory_bytes), rng(rng_seed), soa_(soa), index_(index),
        check_level_(check_level) {}

  // Cells are pinned: the SoA block and the partition workers hold the
  // cell's index as an identity, and the chip builds the cell array in
  // place exactly once (sized from ChipConfig), so relocation is never
  // meaningful. Deleting all four operations enforces that statically.
  ComputeCell(const ComputeCell&) = delete;
  ComputeCell& operator=(const ComputeCell&) = delete;
  ComputeCell(ComputeCell&&) = delete;
  ComputeCell& operator=(ComputeCell&&) = delete;

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

  /// True when the cell holds no work of any kind — the per-cell component
  /// of global quiescence. One load: the packed hot word (busy cycles and
  /// the total queued-work count) is zero iff the cell is idle.
  [[nodiscard]] bool idle() const noexcept;

  /// The activity predicate of the event-driven engine: a cell belongs in
  /// its partition's active set iff it has work — it is busy, or any of
  /// its queues or FIFO lanes is non-empty. Exactly `!idle()`, named for
  /// the call sites that reason about set membership.
  [[nodiscard]] bool has_work() const noexcept { return !idle(); }

  /// Messages currently buffered in this cell's router (all six inputs:
  /// four neighbour ports, the IO port, and locally staged traffic).
  [[nodiscard]] std::uint32_t router_occupancy() const noexcept;

  // --- Busy-cycle accessors (high half of the SoA hot word) ---------------

  [[nodiscard]] std::uint32_t busy() const noexcept {
    return soa_->busy(index_);
  }
  void set_busy(std::uint32_t cycles) noexcept {
    soa_->set_busy(index_, cycles);
  }
  void dec_busy() noexcept { soa_->dec_busy(index_); }

  // --- FIFO lane views ----------------------------------------------------
  // Non-owning views over this cell's slab lanes; mutation only through
  // the sanctioned helpers below.

  [[nodiscard]] FifoView<Message> router_in(std::size_t port) const noexcept {
    return soa_->lane(index_, port);
  }
  [[nodiscard]] FifoView<Message> io_in() const noexcept {
    return soa_->lane(index_, CellSoA::kIoLane);
  }
  [[nodiscard]] FifoView<Message> local_out() const noexcept {
    return soa_->lane(index_, CellSoA::kLocalOutLane);
  }

  // --- Sanctioned FIFO mutation helpers -----------------------------------
  // The ONLY operations allowed to push/pop this cell's message FIFOs
  // (enforced statically by the `fifo-discipline` rule of
  // tools/lint/ccastream_lint.py): each keeps the cached `fifo_msgs`
  // counter — and through it the packed hot word — in lockstep with the
  // lanes and, at check level `cheap` and above, cross-checks the counter
  // after every mutation — the runtime side of the same invariant.

  /// Pushes a message arriving from a neighbour into router port `port`.
  void push_router(std::size_t port, const Message& m) {
    router_in(port).push(m);
    soa_->inc_fifo_msgs(index_);
    CCA_CHECK(cheap, fifo_msgs() == router_occupancy());
  }

  /// Pushes a message injected by the attached IO cell.
  void push_io(const Message& m) {
    io_in().push(m);
    soa_->inc_fifo_msgs(index_);
    CCA_CHECK(cheap, fifo_msgs() == router_occupancy());
  }

  /// Stages one locally created message into the network outport.
  void push_local_out(const Message& m) {
    local_out().push(m);
    soa_->inc_fifo_msgs(index_);
    CCA_CHECK(cheap, fifo_msgs() == router_occupancy());
  }

  /// Pops the front of one of this cell's own input FIFOs (router port,
  /// IO port, or local outport — the router phase selects the source
  /// dynamically, so the helper takes the lane view itself).
  void pop_input(FifoView<Message> src) {
    CCA_CHECK(cheap, soa_->owns_lane(index_, src));
    src.pop();
    soa_->dec_fifo_msgs(index_);
    CCA_CHECK(cheap, fifo_msgs() == router_occupancy());
  }

  /// The cached FIFO occupancy counter (see CellSoA::fifo_msgs).
  [[nodiscard]] std::uint32_t fifo_msgs() const noexcept {
    return soa_->fifo_msgs(index_);
  }

  // --- Sanctioned queue mutation helpers ----------------------------------
  // Same contract as the FIFO helpers, for the unbounded queues this class
  // still owns: every push/pop maintains the work count in the hot word,
  // so `idle()` stays a single load.

  void push_action(const rt::Action& a) {
    action_queue_.push_back(a);
    soa_->add_work(index_);
  }
  [[nodiscard]] const rt::Action& front_action() const {
    return action_queue_.front();
  }
  void pop_action() {
    action_queue_.pop_front();
    soa_->sub_work(index_);
  }
  [[nodiscard]] std::size_t action_count() const noexcept {
    return action_queue_.size();
  }

  void push_task(const rt::Action& a) {
    task_queue_.push_back(a);
    soa_->add_work(index_);
  }
  [[nodiscard]] const rt::Action& front_task() const {
    return task_queue_.front();
  }
  void pop_task() {
    task_queue_.pop_front();
    soa_->sub_work(index_);
  }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return task_queue_.size();
  }

  void push_staged(const Message& m) {
    staged_.push_back(m);
    soa_->add_work(index_);
  }
  [[nodiscard]] const Message& front_staged() const { return staged_.front(); }
  void pop_staged() {
    staged_.pop_front();
    soa_->sub_work(index_);
  }
  [[nodiscard]] std::size_t staged_count() const noexcept {
    return staged_.size();
  }

  // --- Scratchpad ---------------------------------------------------------
  rt::ObjectArena arena;

  // --- Misc ---------------------------------------------------------------
  rt::Xoshiro256 rng;

 private:
  /// Current check level for the CCA_CHECK macro (see runtime/check.hpp);
  /// set by the owning Chip from its resolved ChipConfig::check_level.
  [[nodiscard]] rt::CheckLevel cca_check_level() const noexcept {
    return check_level_;
  }

  /// Actions delivered to this cell, awaiting dispatch.
  RingQueue<rt::Action> action_queue_;
  /// Deferred local tasks (future LCO drains); dispatched before new actions.
  RingQueue<rt::Action> task_queue_;
  /// Messages created by handlers, not yet staged into the network.
  RingQueue<Message> staged_;

  CellSoA* soa_;
  std::uint32_t index_;
  rt::CheckLevel check_level_;
};

}  // namespace ccastream::sim
