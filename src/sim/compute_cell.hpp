// One AM-CCA Compute Cell: scratchpad memory, compute logic, and a 5-port
// mesh router (4 neighbour input buffers + an IO input on border cells).
//
// Per simulation cycle a cell performs at most ONE operation (paper §4):
// either one abstract instruction of the action it is executing, or the
// staging of one outbound message created by `propagate`. The Chip owns the
// per-cycle orchestration; this class is the cell's state.
#pragma once

#include <cstdint>
#include <deque>

#include "runtime/action.hpp"
#include "runtime/arena.hpp"
#include "runtime/check.hpp"
#include "runtime/rng.hpp"
#include "sim/fifo.hpp"
#include "sim/message.hpp"
#include "sim/routing.hpp"

namespace ccastream::sim {

class ComputeCell {
 public:
  ComputeCell(std::uint32_t index, std::size_t memory_bytes, std::uint32_t fifo_depth,
              std::uint64_t rng_seed,
              rt::CheckLevel check_level = rt::CheckLevel::off)
      : arena(memory_bytes), rng(rng_seed), index_(index),
        check_level_(check_level) {
    for (auto& f : router_in) f.set_capacity(fifo_depth);
    io_in.set_capacity(fifo_depth);
    local_out.set_capacity(fifo_depth);
  }

  // Cells are move-only: copying a scratchpad full of owned objects is
  // never meaningful, and deleting the copy operations also steers
  // std::vector relocation to the move constructor.
  ComputeCell(const ComputeCell&) = delete;
  ComputeCell& operator=(const ComputeCell&) = delete;
  ComputeCell(ComputeCell&&) = default;
  ComputeCell& operator=(ComputeCell&&) = default;

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

  /// True when the cell holds no work of any kind — the per-cell component
  /// of global quiescence. O(1): queue emptiness plus the cached FIFO
  /// occupancy counter (`fifo_msgs`), so the active-set engine can
  /// re-evaluate it for every live cell every cycle.
  [[nodiscard]] bool idle() const noexcept;

  /// The activity predicate of the event-driven engine: a cell belongs in
  /// its partition's active set iff it has work — it is busy, or any of
  /// `action_queue`/`task_queue`/`staged`/`local_out`/`io_in`/`router_in`
  /// is non-empty. Exactly `!idle()`, named for the call sites that reason
  /// about set membership.
  [[nodiscard]] bool has_work() const noexcept { return !idle(); }

  /// Messages currently buffered in this cell's router (all six inputs:
  /// four neighbour ports, the IO port, and locally staged traffic).
  [[nodiscard]] std::uint32_t router_occupancy() const noexcept;

  // --- Sanctioned FIFO mutation helpers -----------------------------------
  // The ONLY operations allowed to push/pop this cell's message FIFOs
  // (enforced statically by the `fifo-discipline` rule of
  // tools/lint/ccastream_lint.py): each keeps the cached `fifo_msgs`
  // counter in lockstep with the containers and, at check level `cheap`
  // and above, cross-checks the counter after every mutation — the
  // runtime side of the same invariant.

  /// Pushes a message arriving from a neighbour into router port `port`.
  void push_router(std::size_t port, const Message& m) {
    router_in[port].push(m);
    ++fifo_msgs;
    CCA_CHECK(cheap, fifo_msgs == router_occupancy());
  }

  /// Pushes a message injected by the attached IO cell.
  void push_io(const Message& m) {
    io_in.push(m);
    ++fifo_msgs;
    CCA_CHECK(cheap, fifo_msgs == router_occupancy());
  }

  /// Stages one locally created message into the network outport.
  void push_local_out(const Message& m) {
    local_out.push(m);
    ++fifo_msgs;
    CCA_CHECK(cheap, fifo_msgs == router_occupancy());
  }

  /// Pops the front of one of this cell's own input FIFOs (router port,
  /// IO port, or local outport — the router phase selects the source
  /// dynamically, so the helper takes the FIFO itself).
  void pop_input(Fifo<Message>& src) {
    CCA_CHECK(cheap, owns_fifo(src));
    src.pop();
    --fifo_msgs;
    CCA_CHECK(cheap, fifo_msgs == router_occupancy());
  }

  // --- Scratchpad ---------------------------------------------------------
  rt::ObjectArena arena;

  // --- Compute state ------------------------------------------------------
  /// Remaining busy cycles of the action currently "executing".
  std::uint32_t busy = 0;
  /// Actions delivered to this cell, awaiting dispatch.
  std::deque<rt::Action> action_queue;
  /// Deferred local tasks (future LCO drains); dispatched before new actions.
  std::deque<rt::Action> task_queue;
  /// Messages created by handlers, not yet staged into the network.
  std::deque<Message> staged;

  // --- Router state -------------------------------------------------------
  /// Input buffer per neighbour direction (indexed by the port side: the
  /// kNorth buffer holds messages that arrived from the north neighbour).
  Fifo<Message> router_in[kMeshDirections] = {Fifo<Message>{}, Fifo<Message>{},
                                              Fifo<Message>{}, Fifo<Message>{}};
  /// Messages injected by an attached IO cell (border cells only).
  Fifo<Message> io_in;
  /// Locally staged messages entering the network.
  Fifo<Message> local_out;

  /// Router input sizes latched at the start of each network phase. All
  /// room/occupancy decisions made *about* this cell by its neighbours this
  /// cycle read these latched values (never the live FIFOs), which is what
  /// makes the network phase independent of cell visit order — and hence of
  /// the mesh partitioning (stripes or tiles) of the parallel engine.
  std::uint32_t in_size_snapshot[kMeshDirections] = {0, 0, 0, 0};

  /// Cached occupancy: messages currently held across all six FIFOs
  /// (`router_in[4]`, `io_in`, `local_out`). Maintained exclusively by the
  /// sanctioned mutation helpers above, making `idle()` a constant-count
  /// check instead of six container walks — the activity predicate runs
  /// once per live cell per cycle under the active-set engine. Each helper
  /// cross-checks it against `router_occupancy()` at check level `cheap`;
  /// the full-level cycle sweep re-verifies every cell.
  std::uint32_t fifo_msgs = 0;

  // --- Misc ---------------------------------------------------------------
  rt::Xoshiro256 rng;
  /// Round-robin pointer for router input arbitration fairness.
  std::uint8_t arb_next = 0;
  /// Membership flag of the event-driven engine's per-partition active
  /// set (see Chip::PartitionState::active). In the hybrid's sparse mode
  /// it mirrors membership of the sorted vector; in dense mode these
  /// per-cell flags ARE the membership structure (the bitmap the
  /// rectangle walks test). Written only by the owning partition's
  /// worker; meaningless (always false) under the scan engine.
  bool in_active_set = false;

 private:
  /// Current check level for the CCA_CHECK macro (see runtime/check.hpp);
  /// set by the owning Chip from its resolved ChipConfig::check_level.
  [[nodiscard]] rt::CheckLevel cca_check_level() const noexcept {
    return check_level_;
  }

  /// True iff `f` is one of this cell's six message FIFOs — the
  /// cheap-level guard that pop_input is not handed a neighbour's FIFO
  /// (which would silently desynchronise two fifo_msgs counters).
  [[nodiscard]] bool owns_fifo(const Fifo<Message>& f) const noexcept {
    for (const auto& r : router_in) {
      if (&f == &r) return true;
    }
    return &f == &io_in || &f == &local_out;
  }

  std::uint32_t index_;
  rt::CheckLevel check_level_;
};

}  // namespace ccastream::sim
