#include "sim/routing.hpp"

namespace ccastream::sim {

std::string_view to_string(Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return "north";
    case Direction::kSouth: return "south";
    case Direction::kEast: return "east";
    case Direction::kWest: return "west";
    case Direction::kLocal: return "local";
  }
  return "?";
}

std::string_view to_string(RoutingPolicyKind k) noexcept {
  switch (k) {
    case RoutingPolicyKind::kYX: return "YX";
    case RoutingPolicyKind::kXY: return "XY";
    case RoutingPolicyKind::kWestFirst: return "west-first";
    case RoutingPolicyKind::kOddEven: return "odd-even";
  }
  return "?";
}

namespace {

Direction route_yx(rt::Coord cur, rt::Coord dst) {
  if (cur.y != dst.y) return dst.y > cur.y ? Direction::kSouth : Direction::kNorth;
  if (cur.x != dst.x) return dst.x > cur.x ? Direction::kEast : Direction::kWest;
  return Direction::kLocal;
}

Direction route_xy(rt::Coord cur, rt::Coord dst) {
  if (cur.x != dst.x) return dst.x > cur.x ? Direction::kEast : Direction::kWest;
  if (cur.y != dst.y) return dst.y > cur.y ? Direction::kSouth : Direction::kNorth;
  return Direction::kLocal;
}

Direction route_west_first(rt::Coord cur, rt::Coord dst,
                           const DownstreamOccupancy& occ) {
  // West-first turn model: a message must take all its westward hops first;
  // afterwards it may route adaptively among the remaining productive
  // directions (east / north / south), none of which can ever turn back
  // west — which is exactly the turn restriction that breaks cyclic waits.
  if (dst.x < cur.x) return Direction::kWest;

  Direction best = Direction::kLocal;
  std::uint32_t best_occ = 0;
  auto consider = [&](Direction d) {
    const auto o = occ[static_cast<std::size_t>(d)];
    if (best == Direction::kLocal || o < best_occ) {
      best = d;
      best_occ = o;
    }
  };
  if (dst.y < cur.y) consider(Direction::kNorth);
  if (dst.y > cur.y) consider(Direction::kSouth);
  if (dst.x > cur.x) consider(Direction::kEast);
  return best;  // kLocal when cur == dst
}

Direction route_odd_even(rt::Coord cur, rt::Coord dst,
                         const DownstreamOccupancy& occ) {
  // Odd-even turn model [Chiu 2000], minimal adaptive variant. Forbidden
  // turns: east->north and east->south at cells in EVEN columns; north->west
  // and south->west at cells in ODD columns. The admissible-direction
  // computation is Chiu's ROUTE function restricted to the options that
  // need no source knowledge; among admissible productive directions the
  // least-occupied downstream buffer wins.
  if (cur == dst) return Direction::kLocal;
  const std::int64_t dx = static_cast<std::int64_t>(dst.x) -
                          static_cast<std::int64_t>(cur.x);
  const std::int64_t dy = static_cast<std::int64_t>(dst.y) -
                          static_cast<std::int64_t>(cur.y);
  const Direction vertical = dy > 0 ? Direction::kSouth : Direction::kNorth;

  Direction best = Direction::kLocal;
  std::uint32_t best_occ = 0;
  auto consider = [&](Direction d) {
    const auto o = occ[static_cast<std::size_t>(d)];
    if (best == Direction::kLocal || o < best_occ) {
      best = d;
      best_occ = o;
    }
  };

  if (dx == 0) return dy == 0 ? Direction::kLocal : vertical;
  if (dx > 0) {
    // Eastbound. A vertical hop here commits to a later vertical->east or
    // east->vertical turn; it is admissible only in odd columns (where
    // east->north/south is legal). Continuing east is admissible unless the
    // destination column is adjacent and even (the packet could then never
    // legally turn vertical again).
    if (dy == 0) return Direction::kEast;
    if (cur.x % 2 == 1) consider(vertical);
    if (dst.x % 2 == 1 || dx != 1) consider(Direction::kEast);
    return best;
  }
  // Westbound. West is always admissible; a vertical hop is admissible only
  // in even columns (north/south->west turns are illegal in odd columns,
  // and vertical moves never change the column).
  if (dy == 0) return Direction::kWest;
  if (cur.x % 2 == 0) consider(vertical);
  consider(Direction::kWest);
  return best;
}

}  // namespace

Direction route(RoutingPolicyKind policy, rt::Coord cur, rt::Coord dst,
                const DownstreamOccupancy& occupancy) {
  switch (policy) {
    case RoutingPolicyKind::kYX: return route_yx(cur, dst);
    case RoutingPolicyKind::kXY: return route_xy(cur, dst);
    case RoutingPolicyKind::kWestFirst: return route_west_first(cur, dst, occupancy);
    case RoutingPolicyKind::kOddEven: return route_odd_even(cur, dst, occupancy);
  }
  return Direction::kLocal;
}

bool turn_allowed(RoutingPolicyKind policy, Direction in, Direction out,
                  rt::Coord at) {
  if (in == Direction::kLocal || out == Direction::kLocal) return true;
  const bool in_vertical = in == Direction::kNorth || in == Direction::kSouth;
  const bool out_vertical = out == Direction::kNorth || out == Direction::kSouth;
  switch (policy) {
    case RoutingPolicyKind::kYX:
      // Once travelling horizontally a message may never turn vertical.
      // `in` is the direction the message was moving (south means it came
      // from the north port). Horizontal -> vertical turns are forbidden.
      return !(!in_vertical && out_vertical);
    case RoutingPolicyKind::kXY:
      // Dual restriction: vertical -> horizontal turns are forbidden.
      return !(in_vertical && !out_vertical);
    case RoutingPolicyKind::kWestFirst:
      // Only turns *into* west are forbidden (a west-going message started
      // west and never returns to it).
      return out != Direction::kWest || in == Direction::kWest;
    case RoutingPolicyKind::kOddEven:
      // East->vertical turns are forbidden in even columns; vertical->west
      // turns are forbidden in odd columns.
      if (in == Direction::kEast && out_vertical) return at.x % 2 == 1;
      if (in_vertical && out == Direction::kWest) return at.x % 2 == 0;
      return true;
  }
  return true;
}

}  // namespace ccastream::sim
