// Mesh partitioning for the parallel chip engine.
//
// The engine assigns each worker one *partition* of the mesh — an
// axis-aligned rectangle of cells. Three shapes are supported:
//
//   * rows  — horizontal stripes of contiguous rows (the default; pairs
//             well with north/south IO, whose YX injection legs run down
//             their own columns);
//   * cols  — vertical stripes of contiguous columns (pairs with west/east
//             IO, where row stripes would put every IO cell into just two
//             partitions);
//   * tiles — a gx × gy grid of rectangles (general 2-D decomposition;
//             the grid is auto-factored from the worker count unless
//             pinned with `tiles:GXxGY`).
//
// Any shape may additionally enable *load-adaptive rebalancing*: the chip
// re-splits the partition boundaries between increments from its cumulative
// per-cell load histogram (quantile split per axis), so hot regions — e.g.
// border rows under north/south IO skew — spread across workers.
//
// Partitioning is a performance knob only: the engine's snapshot protocol
// makes every run cycle-for-cycle identical to serial for every shape,
// worker count, and rebalance schedule. It composes freely with the other
// backend knobs — cycle engine (CCASTREAM_ENGINE) and dense threshold
// (CCASTREAM_DENSE_PCT) — every combination is pinned against the serial
// scan oracle; see docs/ARCHITECTURE.md for the execution model and
// docs/TUNING.md for when to pick which shape.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ccastream::sim {

enum class PartitionShape : std::uint8_t { kRows, kCols, kTiles };

[[nodiscard]] std::string_view to_string(PartitionShape shape) noexcept;

/// Requested partitioning: shape, optional explicit tile grid, and the
/// rebalancing flag. Parses from / prints to the spec grammar shared by
/// `CCASTREAM_PARTITION` and the CLI `--partition` flag:
///
///   rows | cols | tiles[:GXxGY]  [+rebalance]
///
/// e.g. "rows", "cols+rebalance", "tiles", "tiles:4x2+rebalance".
struct PartitionSpec {
  PartitionShape shape = PartitionShape::kRows;
  bool rebalance = false;
  /// Explicit tile grid (columns × rows of tiles). 0 = auto-factor the
  /// grid from the worker count. Only meaningful for kTiles; an explicit
  /// grid pins the partition (and therefore worker) count.
  std::uint32_t tiles_x = 0, tiles_y = 0;

  [[nodiscard]] static std::optional<PartitionSpec> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

/// Resolves a chip's partition request: an explicit config wins, otherwise
/// the CCASTREAM_PARTITION environment variable (ignored when unparsable),
/// otherwise the default row stripes. Same resolution order as every
/// backend knob (engine, threads, dense threshold): config > env >
/// default.
[[nodiscard]] PartitionSpec resolve_partition(
    const std::optional<PartitionSpec>& requested);

/// One partition: a half-open cell rectangle [x0,x1) × [y0,y1).
struct PartRect {
  std::uint32_t x0 = 0, x1 = 0, y0 = 0, y1 = 0;

  [[nodiscard]] std::uint32_t width() const noexcept { return x1 - x0; }
  [[nodiscard]] std::uint32_t height() const noexcept { return y1 - y0; }
  [[nodiscard]] std::uint64_t cells() const noexcept {
    return static_cast<std::uint64_t>(width()) * height();
  }
  [[nodiscard]] bool contains(std::uint32_t x, std::uint32_t y) const noexcept {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }

  /// One row of the rectangle as a half-open cell-index span on a
  /// `width`-column mesh: [y*width + x0, y*width + x1). A rectangle is
  /// contiguous in cell-index space row by row, which is the unit the
  /// engine's dense-mode bitmap sweeps consume (see
  /// CellSoA::for_each_active) — iterating rows in order yields every
  /// owned cell in ascending cell index, the order every phase relies on.
  struct CellSpan {
    std::uint32_t begin = 0, end = 0;
  };
  [[nodiscard]] CellSpan row_span(std::uint32_t y,
                                  std::uint32_t width) const noexcept {
    return {y * width + x0, y * width + x1};
  }

  friend bool operator==(const PartRect&, const PartRect&) = default;
};

/// A concrete decomposition of a width × height mesh into disjoint
/// rectangles that cover every cell exactly once. All three shapes are a
/// gx × gy grid of rectangles (rows: gx = 1; cols: gy = 1); partition ids
/// are row-major over the grid, and the per-axis boundaries are the only
/// degrees of freedom — which is what `rebalanced` moves.
class PartitionLayout {
 public:
  /// Single partition covering a 1x1 mesh (a usable placeholder).
  PartitionLayout() : rects_{{0, 1, 0, 1}}, owner_{0} {}

  /// Builds the uniform layout for `spec` with (up to) `target_parts`
  /// partitions. The part count is clamped by the shape's capacity (rows:
  /// height, cols: width, tiles: width × height); an explicit tile grid
  /// overrides `target_parts`. Auto-factored tile grids pick the most
  /// nearly square gx × gy = parts that fits the mesh, degrading the part
  /// count only when no factorisation fits.
  [[nodiscard]] static PartitionLayout build(const PartitionSpec& spec,
                                             std::uint32_t width,
                                             std::uint32_t height,
                                             std::uint32_t target_parts);

  /// The load-adaptive re-split: keeps the shape and grid dimensions but
  /// moves the per-axis boundaries to quantile-balance the cumulative
  /// per-cell load histogram (row sums split the y axis, column sums the x
  /// axis; tiles balance both axes independently). Every band keeps at
  /// least one row/column. A zero histogram yields the uniform layout.
  /// `cell_load` is indexed `y * width + x` and must cover the mesh.
  ///
  /// `min_gain_pct` adds hysteresis: a candidate split replaces an axis's
  /// current boundaries only when it shrinks that axis's hottest band load
  /// by at least that many percent, so marginal quantile wobble — the
  /// signature of an oscillating workload — no longer ping-pongs the
  /// boundaries (and thereby the IO-cell and worker assignments) every
  /// increment. 0 keeps the historic always-adopt behaviour.
  [[nodiscard]] PartitionLayout rebalanced(
      const std::vector<std::uint64_t>& cell_load,
      std::uint32_t min_gain_pct = 0) const;

  [[nodiscard]] std::uint32_t parts() const noexcept {
    return static_cast<std::uint32_t>(rects_.size());
  }
  [[nodiscard]] PartitionShape shape() const noexcept { return shape_; }
  [[nodiscard]] std::uint32_t mesh_width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t mesh_height() const noexcept { return height_; }
  [[nodiscard]] std::uint32_t grid_x() const noexcept { return grid_x_; }
  [[nodiscard]] std::uint32_t grid_y() const noexcept { return grid_y_; }
  [[nodiscard]] const PartRect& rect(std::uint32_t part) const {
    return rects_[part];
  }
  [[nodiscard]] const std::vector<PartRect>& rects() const noexcept {
    return rects_;
  }
  /// Partition id owning cell `y * width + x`. O(1) table lookup — this is
  /// on the router hot path (every hop consults the owner of its target).
  [[nodiscard]] std::uint32_t owner(std::uint32_t cell) const {
    return owner_[cell];
  }

  /// Structural self-check: every mesh cell lies in exactly one rectangle,
  /// that rectangle is the one the owner table names, and no rectangle is
  /// degenerate. O(mesh); used by the full-level checked build
  /// (CCASTREAM_CHECK=full — see runtime/check.hpp) after every layout
  /// change and cycle, and by the partition property tests.
  [[nodiscard]] bool exact_cover() const;

  friend bool operator==(const PartitionLayout& a, const PartitionLayout& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.rects_ == b.rects_;
  }

 private:
  static PartitionLayout from_boundaries(PartitionShape shape,
                                         std::uint32_t width, std::uint32_t height,
                                         const std::vector<std::uint32_t>& xb,
                                         const std::vector<std::uint32_t>& yb);
  /// The per-axis boundaries encoded in rects_ (grid_x_+1 / grid_y_+1
  /// entries) — what `rebalanced` compares against to skip the rebuild
  /// when the quantile split did not move.
  [[nodiscard]] std::vector<std::uint32_t> x_boundaries() const;
  [[nodiscard]] std::vector<std::uint32_t> y_boundaries() const;

  PartitionShape shape_ = PartitionShape::kRows;
  std::uint32_t width_ = 1, height_ = 1;
  std::uint32_t grid_x_ = 1, grid_y_ = 1;
  std::vector<PartRect> rects_;     ///< Row-major over the grid.
  std::vector<std::uint32_t> owner_;  ///< Cell index -> partition id.
};

/// Splits `bins` into `parts` contiguous non-empty ranges with near-equal
/// cumulative load: interior boundary s lands on the smallest index whose
/// prefix sum reaches s/parts of the total, clamped so every range keeps at
/// least one bin. Returns the parts+1 boundaries (first 0, last bins.size()).
/// A zero total degrades to the uniform split. Exposed for the property
/// tests; requires 1 <= parts <= bins.size().
[[nodiscard]] std::vector<std::uint32_t> balanced_boundaries(
    const std::vector<std::uint64_t>& bins, std::uint32_t parts);

}  // namespace ccastream::sim
