// First-order energy model for the AM-CCA chip.
//
// The paper carries its energy assumptions over from the authors' prior
// design-space study (their ref [4]) without restating the constants, so we
// document ours explicitly here (DESIGN.md §7). Energy is linear in event
// counts; the constants only scale Table 2's absolute magnitudes — every
// ratio the paper discusses (Edge vs Snowball, ingestion vs ingestion+BFS)
// comes out of the simulated event counts themselves.
//
// Defaults are in the range published for ~7nm-class mesh NoCs and simple
// in-order cores: tens of pJ per instruction and per router traversal.
#pragma once

#include <cstdint>

namespace ccastream::sim {

/// Per-event energy constants, in picojoules.
struct EnergyModel {
  double instruction_pj = 30.0;  ///< One abstract action instruction.
  double hop_pj = 28.0;          ///< One message traversing one mesh link.
  double stage_pj = 10.0;        ///< Creating + staging one message.
  double delivery_pj = 6.0;      ///< Ejecting a message into a cell's queue.
  double allocation_pj = 120.0;  ///< Allocating one fragment in a scratchpad.
  double io_injection_pj = 15.0; ///< An IO cell pushing one action on chip.
};

/// Event counters the model prices (filled in by the chip).
struct EnergyEvents {
  std::uint64_t instructions = 0;
  std::uint64_t hops = 0;
  std::uint64_t stages = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t allocations = 0;
  std::uint64_t io_injections = 0;
};

/// Total energy in picojoules for a set of counted events.
[[nodiscard]] inline double total_pj(const EnergyModel& m, const EnergyEvents& e) {
  return static_cast<double>(e.instructions) * m.instruction_pj +
         static_cast<double>(e.hops) * m.hop_pj +
         static_cast<double>(e.stages) * m.stage_pj +
         static_cast<double>(e.deliveries) * m.delivery_pj +
         static_cast<double>(e.allocations) * m.allocation_pj +
         static_cast<double>(e.io_injections) * m.io_injection_pj;
}

/// Picojoules -> microjoules (Table 2 unit).
[[nodiscard]] inline double pj_to_uj(double pj) { return pj * 1e-6; }

/// Cycles at `ghz` -> microseconds (Table 2 reports a 1 GHz clock).
[[nodiscard]] inline double cycles_to_us(std::uint64_t cycles, double ghz = 1.0) {
  return static_cast<double>(cycles) / (ghz * 1e3);
}

}  // namespace ccastream::sim
