// Aggregate statistics of a chip run: event counters (which also feed the
// energy model), queue high-water marks, and latency accumulators.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "sim/energy.hpp"

namespace ccastream::sim {

struct ChipStats {
  std::uint64_t cycles = 0;

  // Action life cycle.
  std::uint64_t actions_created = 0;    ///< propagate + IO + host injections.
  std::uint64_t actions_executed = 0;
  std::uint64_t tasks_scheduled = 0;    ///< future-drain closures.

  // Compute.
  std::uint64_t instructions = 0;       ///< abstract instruction cycles.
  std::uint64_t stage_stalls = 0;       ///< cycles a cell stalled on a full outport.

  // Network.
  std::uint64_t messages_staged = 0;
  std::uint64_t hops = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t total_delivery_latency = 0;  ///< sum over delivered messages.

  // IO.
  std::uint64_t io_injections = 0;

  // Memory / LCO protocol.
  std::uint64_t allocations = 0;
  std::uint64_t alloc_forwards = 0;   ///< allocate bounced off a full arena.
  std::uint64_t alloc_failures = 0;   ///< allocate exhausted its hop budget.
  std::uint64_t futures_fulfilled = 0;
  std::uint64_t future_waiters_drained = 0;
  std::uint64_t faults = 0;           ///< unknown handler / bad address.

  /// Event view consumed by the energy model.
  [[nodiscard]] EnergyEvents energy_events() const noexcept {
    EnergyEvents e;
    e.instructions = instructions;
    e.hops = hops;
    e.stages = messages_staged;
    e.deliveries = deliveries;
    e.allocations = allocations;
    e.io_injections = io_injections;
    return e;
  }

  /// Mean end-to-end message latency in cycles (0 when nothing delivered).
  [[nodiscard]] double mean_delivery_latency() const noexcept {
    return deliveries == 0
               ? 0.0
               : static_cast<double>(total_delivery_latency) /
                     static_cast<double>(deliveries);
  }

  /// Mean hops per delivered message.
  [[nodiscard]] double mean_hops() const noexcept {
    return deliveries == 0
               ? 0.0
               : static_cast<double>(hops) / static_cast<double>(deliveries);
  }

  /// Difference between two snapshots (for per-increment reporting).
  [[nodiscard]] ChipStats delta_since(const ChipStats& earlier) const noexcept;

  /// Adds every counter of `other` into this one (the per-partition merge
  /// of the parallel engine; all fields are sums, so merging is commutative
  /// and the totals are invariant to the partition shape and count).
  void add(const ChipStats& other) noexcept;

  friend bool operator==(const ChipStats&, const ChipStats&) = default;
};

std::ostream& operator<<(std::ostream& os, const ChipStats& s);

}  // namespace ccastream::sim
