#include "sim/compute_cell.hpp"

#include <cassert>

namespace ccastream::sim {

bool ComputeCell::idle() const noexcept {
  // The cached counter stands in for walking all six FIFOs. The sanctioned
  // mutation helpers (push_router/push_io/push_local_out/pop_input) are
  // the only writers and each cross-checks it at check level `cheap`;
  // debug builds additionally cross-check at this read site — the one
  // place every engine path funnels through.
  assert(fifo_msgs == router_occupancy());
  return busy == 0 && fifo_msgs == 0 && staged.empty() && task_queue.empty() &&
         action_queue.empty();
}

std::uint32_t ComputeCell::router_occupancy() const noexcept {
  auto n = static_cast<std::uint32_t>(io_in.size() + local_out.size());
  for (const auto& f : router_in) n += static_cast<std::uint32_t>(f.size());
  return n;
}

}  // namespace ccastream::sim
