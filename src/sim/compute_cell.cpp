#include "sim/compute_cell.hpp"

namespace ccastream::sim {

bool ComputeCell::idle() const noexcept {
  if (busy > 0 || !staged.empty() || !local_out.empty() || !io_in.empty()) {
    return false;
  }
  if (!task_queue.empty() || !action_queue.empty()) return false;
  for (const auto& f : router_in) {
    if (!f.empty()) return false;
  }
  return true;
}

std::uint32_t ComputeCell::router_occupancy() const noexcept {
  auto n = static_cast<std::uint32_t>(io_in.size() + local_out.size());
  for (const auto& f : router_in) n += static_cast<std::uint32_t>(f.size());
  return n;
}

}  // namespace ccastream::sim
