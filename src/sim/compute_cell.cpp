#include "sim/compute_cell.hpp"

#include <cassert>

namespace ccastream::sim {

bool ComputeCell::idle() const noexcept {
  // The cached counter stands in for walking all six FIFOs; the Chip
  // updates it at every push/pop site, and debug builds cross-check it
  // against the containers here — the one place every engine path funnels
  // through.
  assert(fifo_msgs == router_occupancy());
  return busy == 0 && fifo_msgs == 0 && staged.empty() && task_queue.empty() &&
         action_queue.empty();
}

std::uint32_t ComputeCell::router_occupancy() const noexcept {
  auto n = static_cast<std::uint32_t>(io_in.size() + local_out.size());
  for (const auto& f : router_in) n += static_cast<std::uint32_t>(f.size());
  return n;
}

}  // namespace ccastream::sim
