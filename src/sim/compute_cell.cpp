#include "sim/compute_cell.hpp"

#include <cassert>

namespace ccastream::sim {

bool ComputeCell::idle() const noexcept {
  // The packed hot word stands in for walking six FIFO lanes and three
  // queues: the sanctioned mutation helpers are its only writers. Debug
  // builds cross-check the cached FIFO counter against the lanes at this
  // read site — the one place every engine path funnels through — and
  // the work count against the containers it summarises.
  assert(fifo_msgs() == router_occupancy());
  assert(soa_->work_items(index_) ==
         fifo_msgs() + staged_.size() + task_queue_.size() +
             action_queue_.size());
  return soa_->hot_word(index_) == 0;
}

std::uint32_t ComputeCell::router_occupancy() const noexcept {
  return soa_->lane_occupancy(index_);
}

}  // namespace ccastream::sim
