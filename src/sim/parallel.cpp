#include "sim/parallel.hpp"

namespace ccastream::sim {

StripePool::StripePool(std::uint32_t stripes)
    : stripes_(stripes), barrier_(static_cast<std::ptrdiff_t>(stripes)) {
  workers_.reserve(stripes_ > 0 ? stripes_ - 1 : 0);
  for (std::uint32_t s = 1; s < stripes_; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
}

StripePool::~StripePool() {
  {
    const std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void StripePool::run(const std::function<void(std::uint32_t)>& job) {
  if (stripes_ <= 1) {
    job(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(m_);
    job_ = &job;
    ++generation_;
    running_ = stripes_ - 1;
  }
  cv_start_.notify_all();
  job(0);  // the caller is stripe 0
  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [this] { return running_ == 0; });
  job_ = nullptr;
}

void StripePool::worker_loop(std::uint32_t stripe) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::uint32_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(stripe);
    {
      const std::lock_guard<std::mutex> lk(m_);
      --running_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace ccastream::sim
