#include "sim/parallel.hpp"

namespace ccastream::sim {

PartitionPool::PartitionPool(std::uint32_t workers)
    : workers_(workers), barrier_(static_cast<std::ptrdiff_t>(workers)) {
  workers_threads_.reserve(workers_ > 0 ? workers_ - 1 : 0);
  for (std::uint32_t p = 1; p < workers_; ++p) {
    workers_threads_.emplace_back([this, p] { worker_loop(p); });
  }
}

PartitionPool::~PartitionPool() {
  {
    const std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_threads_) w.join();
}

void PartitionPool::run(const std::function<void(std::uint32_t)>& job) {
  // Dispatches are cheap enough to repeat: the active-set engine's sparse
  // fast path may end a batch, run a stretch of cycles serially, and
  // re-dispatch the pool many times within one run_cycles call — each
  // dispatch is one generation bump plus a condition-variable wakeup.
  if (workers_ <= 1) {
    job(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(m_);
    job_ = &job;
    ++generation_;
    running_ = workers_ - 1;
  }
  cv_start_.notify_all();
  job(0);  // the caller is partition 0
  std::unique_lock<std::mutex> lk(m_);
  cv_done_.wait(lk, [this] { return running_ == 0; });
  job_ = nullptr;
}

void PartitionPool::worker_loop(std::uint32_t partition) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::uint32_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(partition);
    {
      const std::lock_guard<std::mutex> lk(m_);
      --running_;
    }
    cv_done_.notify_one();
  }
}

}  // namespace ccastream::sim
