// Persistent worker pool for the striped chip engine.
//
// One pool drives `stripes` logical mesh stripes: the calling thread
// executes stripe 0 and `stripes - 1` resident workers execute the rest.
// A job is dispatched once per run() and typically loops over many cycles
// internally, using sync() as the phase barrier shared by all stripe
// threads — dispatching once per run (instead of once per phase) keeps the
// per-cycle synchronisation down to futex-backed barrier waits.
#pragma once

#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccastream::sim {

class StripePool {
 public:
  explicit StripePool(std::uint32_t stripes);
  ~StripePool();

  StripePool(const StripePool&) = delete;
  StripePool& operator=(const StripePool&) = delete;

  [[nodiscard]] std::uint32_t stripes() const noexcept { return stripes_; }

  /// Runs job(stripe) on every stripe concurrently; returns when all have
  /// finished. The job must call sync() an identical number of times from
  /// every stripe (the barrier counts all of them).
  void run(const std::function<void(std::uint32_t)>& job);

  /// Phase barrier: blocks until every stripe thread has arrived.
  void sync() { barrier_.arrive_and_wait(); }

 private:
  void worker_loop(std::uint32_t stripe);

  std::uint32_t stripes_;
  std::barrier<> barrier_;
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::uint32_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint32_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ccastream::sim
