// Persistent worker pool for the partitioned chip engine.
//
// One pool drives `workers` logical mesh partitions (row stripes, column
// stripes, or 2-D tiles — see sim/partition.hpp): the calling thread
// executes partition 0 and `workers - 1` resident threads execute the rest.
// A job is dispatched once per run() and typically loops over many cycles
// internally, using sync() as the phase barrier shared by all partition
// threads — dispatching once per run (instead of once per phase) keeps the
// per-cycle synchronisation down to futex-backed barrier waits.
//
// The active-set engine (the default — see EngineKind in sim/chip.hpp)
// adds a sparse fast path on top: when a cycle has almost no live cells,
// Chip::run_cycles ends the pooled batch and executes cycles phase-major
// on the calling thread, re-dispatching the pool only when the frontier
// widens again. The syncs() counter makes that mode switch observable (a
// serially executed cycle performs zero barrier arrivals). The barrier
// schedule itself — snapshot | route | apply+io+compute | merge, one sync
// between each — is what the determinism invariant rests on: every
// cross-partition read happens against state settled behind the previous
// barrier (docs/ARCHITECTURE.md, "The cycle lifecycle").
#pragma once

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccastream::sim {

class PartitionPool {
 public:
  explicit PartitionPool(std::uint32_t workers);
  ~PartitionPool();

  PartitionPool(const PartitionPool&) = delete;
  PartitionPool& operator=(const PartitionPool&) = delete;

  [[nodiscard]] std::uint32_t workers() const noexcept { return workers_; }

  /// Runs job(partition) on every partition concurrently; returns when all
  /// have finished. The job must call sync() an identical number of times
  /// from every partition (the barrier counts all of them) — the chip's
  /// cycle loop satisfies this because every partition executes the same
  /// four-phase schedule and the batch-stop decision is itself published
  /// behind a sync.
  void run(const std::function<void(std::uint32_t)>& job);

  /// Phase barrier: blocks until every partition thread has arrived.
  /// Arrival-and-wait also establishes the happens-before edge that lets
  /// the next phase read state other partitions wrote in the previous one
  /// without atomics.
  void sync() {
    syncs_.fetch_add(1, std::memory_order_relaxed);
    barrier_.arrive_and_wait();
  }

  /// Barrier arrivals over the pool's lifetime, summed across all threads
  /// — telemetry for the engine's sparse fast path (cycles executed on the
  /// calling thread bypass the pool entirely, so sparse runs show far
  /// fewer arrivals than 4 × threads × cycles).
  [[nodiscard]] std::uint64_t syncs() const noexcept {
    return syncs_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(std::uint32_t partition);

  std::uint32_t workers_;
  std::barrier<> barrier_;
  std::atomic<std::uint64_t> syncs_{0};
  std::mutex m_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(std::uint32_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::uint32_t running_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_threads_;
};

}  // namespace ccastream::sim
