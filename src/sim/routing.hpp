// Mesh routing policies (paper §4): turn-restricted, minimal, deadlock-free.
//
// The paper uses YX dimension-ordered routing — vertical hops first, then
// horizontal. XY and the West-First adaptive turn-model policy [Glass & Ni
// '92] are provided for the routing ablation benchmark.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "runtime/geometry.hpp"

namespace ccastream::sim {

/// Output direction of a router. kLocal means the message has arrived.
enum class Direction : std::uint8_t {
  kNorth = 0,  ///< y - 1
  kSouth = 1,  ///< y + 1
  kEast = 2,   ///< x + 1
  kWest = 3,   ///< x - 1
  kLocal = 4,
};
inline constexpr std::size_t kMeshDirections = 4;

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kLocal: return Direction::kLocal;
  }
  return Direction::kLocal;
}

[[nodiscard]] std::string_view to_string(Direction d) noexcept;

enum class RoutingPolicyKind : std::uint8_t {
  kYX,         ///< Vertical first (the paper's policy).
  kXY,         ///< Horizontal first.
  kWestFirst,  ///< West-first adaptive turn model.
  kOddEven,    ///< Odd-even turn model (Chiu 2000): adaptive, column-parity
               ///< turn restrictions, no single congestion pivot direction.
};

[[nodiscard]] std::string_view to_string(RoutingPolicyKind k) noexcept;

/// Occupancy of the four candidate downstream buffers, used by adaptive
/// policies to prefer the least congested productive direction. Entries for
/// directions that leave the mesh are ignored.
using DownstreamOccupancy = std::array<std::uint32_t, kMeshDirections>;

/// Computes the output direction for a message at `cur` heading to `dst`.
/// All provided policies are minimal: they only ever return productive
/// directions, so `hops(route path) == manhattan(cur, dst)`.
[[nodiscard]] Direction route(RoutingPolicyKind policy, rt::Coord cur, rt::Coord dst,
                              const DownstreamOccupancy& occupancy);

/// Returns true if the (in -> out) turn at the router at `at` is permitted
/// under the policy's turn restrictions (`at` matters only for odd-even,
/// whose rules depend on column parity). Used by property tests to prove
/// that routed paths never take a forbidden turn (the deadlock-freedom
/// argument).
[[nodiscard]] bool turn_allowed(RoutingPolicyKind policy, Direction in, Direction out,
                                rt::Coord at = {});

/// Coordinate one hop from `c` in direction `d` (caller ensures it stays on
/// the mesh).
[[nodiscard]] constexpr rt::Coord step(rt::Coord c, Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return {c.x, c.y - 1};
    case Direction::kSouth: return {c.x, c.y + 1};
    case Direction::kEast: return {c.x + 1, c.y};
    case Direction::kWest: return {c.x - 1, c.y};
    case Direction::kLocal: return c;
  }
  return c;
}

}  // namespace ccastream::sim
