#include "io/csv.hpp"

#include <sstream>

namespace ccastream::io {

CsvWriter::CsvWriter(const std::string& path,
                     std::initializer_list<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) return;
  bool first = true;
  for (const auto& h : header) {
    if (!first) out_ << ',';
    out_ << escape(h);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& f) {
  if (f.find_first_of(",\"\n") == std::string::npos) return f;
  std::ostringstream os;
  os << '"';
  for (const char c : f) {
    if (c == '"') os << "\"\"";
    else os << c;
  }
  os << '"';
  return os.str();
}

}  // namespace ccastream::io
