// Minimal CSV writer for experiment outputs (activation traces, increment
// series) so the paper figures can be re-plotted from the bench binaries.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace ccastream::io {

class CsvWriter {
 public:
  /// Opens `path` and writes the header row. ok() reports failure.
  CsvWriter(const std::string& path, std::initializer_list<std::string> header);

  [[nodiscard]] bool ok() const noexcept { return static_cast<bool>(out_); }

  /// Writes one row; fields are escaped if they contain separators/quotes.
  void row(const std::vector<std::string>& fields);

  /// Convenience numeric row.
  void row_numeric(const std::vector<double>& fields);

 private:
  static std::string escape(const std::string& f);
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace ccastream::io
