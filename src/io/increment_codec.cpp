// Binary increment-log codec (see increment_codec.hpp for the format).
//
// Encoding goes through explicit little-endian byte packing — never a raw
// struct memcpy — so the on-disk bytes are identical on every host and the
// decoder touches nothing but bounds-checked buffers (no misaligned loads,
// no uninitialised padding reads: the properties the ubsan CI leg checks).
#include "io/increment_codec.hpp"

#include <array>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

namespace ccastream::io {

namespace {

void put_u16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v & 0xFF);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
  }
}

[[nodiscard]] std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

[[nodiscard]] std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void write_bytes(std::ostream& out, const unsigned char* p, std::size_t n,
                 const char* what) {
  out.write(reinterpret_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!out) throw IncrementCodecError(std::string("write failed (") + what + ")");
}

/// Reads exactly n bytes. Returns false on an immediate clean EOF (zero
/// bytes read) when eof_ok; throws on truncation (some but not all bytes).
bool read_bytes(std::istream& in, unsigned char* p, std::size_t n,
                const char* what, bool eof_ok) {
  in.read(reinterpret_cast<char*>(p), static_cast<std::streamsize>(n));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got == n) return true;
  if (got == 0 && eof_ok) return false;
  throw IncrementCodecError(std::string("truncated ") + what + " (got " +
                            std::to_string(got) + " of " + std::to_string(n) +
                            " bytes)");
}

}  // namespace

IncrementLogWriter::IncrementLogWriter(std::ostream& out,
                                       std::uint64_t num_vertices)
    : out_(out) {
  std::array<unsigned char, kIncrementLogHeaderBytes> h{};
  std::memcpy(h.data(), kIncrementLogMagic, 4);
  put_u16(h.data() + 4, kIncrementLogVersion);
  put_u16(h.data() + 6, static_cast<std::uint16_t>(kIncrementRecordBytes));
  put_u64(h.data() + 8, num_vertices);
  put_u64(h.data() + 16, 0);  // reserved
  write_bytes(out_, h.data(), h.size(), "header");
}

void IncrementLogWriter::write_increment(std::span<const StreamEdge> ops) {
  std::array<unsigned char, kIncrementFrameHeaderBytes> f{};
  std::memcpy(f.data(), kIncrementFrameMagic, 4);
  if (ops.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw IncrementCodecError("increment exceeds the u32 op-count field");
  }
  put_u32(f.data() + 4, static_cast<std::uint32_t>(ops.size()));
  write_bytes(out_, f.data(), f.size(), "frame header");

  std::array<unsigned char, kIncrementRecordBytes> r{};
  for (const StreamEdge& e : ops) {
    put_u64(r.data() + 0, e.src);
    put_u64(r.data() + 8, e.dst);
    put_u32(r.data() + 16, e.weight);
    r[20] = static_cast<unsigned char>(e.op);
    r[21] = r[22] = r[23] = 0;
    write_bytes(out_, r.data(), r.size(), "record");
  }
  ++increments_;
}

IncrementLogReader::IncrementLogReader(std::istream& in) : in_(in) {
  std::array<unsigned char, kIncrementLogHeaderBytes> h{};
  read_bytes(in_, h.data(), h.size(), "header", /*eof_ok=*/false);
  if (std::memcmp(h.data(), kIncrementLogMagic, 4) != 0) {
    throw IncrementCodecError("bad magic (not an increment log)");
  }
  header_.version = get_u16(h.data() + 4);
  if (header_.version == 0 || header_.version > kIncrementLogVersion) {
    throw IncrementCodecError(
        "unsupported version " + std::to_string(header_.version) +
        " (this build reads v" + std::to_string(kIncrementLogVersion) + ")");
  }
  const std::uint16_t record_bytes = get_u16(h.data() + 6);
  if (record_bytes != kIncrementRecordBytes) {
    throw IncrementCodecError("unexpected record stride " +
                              std::to_string(record_bytes) + " (want " +
                              std::to_string(kIncrementRecordBytes) + ")");
  }
  header_.num_vertices = get_u64(h.data() + 8);
  if (get_u64(h.data() + 16) != 0) {
    throw IncrementCodecError("nonzero reserved header field");
  }
}

std::optional<std::vector<StreamEdge>> IncrementLogReader::next() {
  std::array<unsigned char, kIncrementFrameHeaderBytes> f{};
  if (!read_bytes(in_, f.data(), f.size(), "frame header", /*eof_ok=*/true)) {
    return std::nullopt;  // clean end-of-log at a frame boundary
  }
  if (std::memcmp(f.data(), kIncrementFrameMagic, 4) != 0) {
    throw IncrementCodecError("bad frame tag (log desynchronised or corrupt)");
  }
  const std::uint32_t count = get_u32(f.data() + 4);

  std::vector<StreamEdge> ops;
  ops.reserve(count);
  std::array<unsigned char, kIncrementRecordBytes> r{};
  for (std::uint32_t i = 0; i < count; ++i) {
    read_bytes(in_, r.data(), r.size(), "record", /*eof_ok=*/false);
    StreamEdge e;
    e.src = get_u64(r.data() + 0);
    e.dst = get_u64(r.data() + 8);
    e.weight = get_u32(r.data() + 16);
    const unsigned char op = r[20];
    if (op > static_cast<unsigned char>(EdgeOp::kDelete)) {
      throw IncrementCodecError("unknown op kind " + std::to_string(op));
    }
    e.op = static_cast<EdgeOp>(op);
    if (r[21] != 0 || r[22] != 0 || r[23] != 0) {
      throw IncrementCodecError("nonzero record padding");
    }
    ops.push_back(e);
  }
  ++increments_;
  return ops;
}

void write_increment_log(std::ostream& out, std::uint64_t num_vertices,
                         std::span<const std::vector<StreamEdge>> increments) {
  IncrementLogWriter w(out, num_vertices);
  for (const auto& inc : increments) w.write_increment(inc);
}

DecodedIncrementLog read_increment_log(std::istream& in) {
  IncrementLogReader r(in);
  DecodedIncrementLog log;
  log.header = r.header();
  while (auto inc = r.next()) log.increments.push_back(std::move(*inc));
  return log;
}

}  // namespace ccastream::io
