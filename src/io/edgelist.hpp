// Plain-text edge list I/O ("src dst [weight]" per line, '#' comments) so
// real datasets — e.g. the actual GraphChallenge files — can be streamed
// through the chip in place of the synthetic generators.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/stream_edge.hpp"

namespace ccastream::io {

/// Parses an edge list stream. Throws std::runtime_error on malformed lines.
[[nodiscard]] std::vector<StreamEdge> read_edgelist(std::istream& in);

/// Reads a file; throws std::runtime_error if it cannot be opened.
[[nodiscard]] std::vector<StreamEdge> read_edgelist_file(const std::string& path);

void write_edgelist(std::ostream& out, const std::vector<StreamEdge>& edges);
void write_edgelist_file(const std::string& path,
                         const std::vector<StreamEdge>& edges);

}  // namespace ccastream::io
