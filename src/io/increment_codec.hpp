// Compact binary increment log — the wire/replay format of the streaming
// service layer (svc/stream_service.hpp and the CLI's `serve` subcommand).
//
// A log is a fixed-width packed byte stream shared between pipes and
// on-disk replay logs (the sctrltp ARQFrame packed-packet idiom): one
// self-describing header, then one frame per streaming increment. All
// integers are little-endian regardless of host byte order, so a log is
// byte-portable and the format-v1 golden bytes pinned by
// tests/increment_codec_test.cpp never move.
//
//   header (24 bytes)   "CCIL" | u16 version (=1) | u16 record_bytes (=24)
//                       | u64 num_vertices | u64 reserved (=0)
//   frame  (8 bytes)    "INCR" | u32 op_count
//   record (24 bytes)   u64 src | u64 dst | u32 weight | u8 op | u8 pad[3]
//
// op mirrors graph/stream_edge.hpp's EdgeOp (0 insert, 1 delete); pad
// bytes must be zero. A log ends cleanly only at a frame boundary.
//
// Malformed input never invokes undefined behaviour: every field is
// decoded from bounds-checked byte buffers and validated before use, and
// every violation — bad magic, truncated header/frame/record, a future
// version, an unknown op kind, nonzero padding — surfaces as a structured
// IncrementCodecError naming what was wrong. The whole suite runs under
// the ubsan preset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/stream_edge.hpp"

namespace ccastream::io {

/// Structured decode/encode failure (a std::runtime_error so generic
/// handlers keep working). The message names the violated field and, for
/// versioned rejections, what this build supports.
class IncrementCodecError : public std::runtime_error {
 public:
  explicit IncrementCodecError(const std::string& what)
      : std::runtime_error("increment codec: " + what) {}
};

/// Format constants, public so tests can construct adversarial inputs.
inline constexpr std::uint16_t kIncrementLogVersion = 1;
inline constexpr std::size_t kIncrementLogHeaderBytes = 24;
inline constexpr std::size_t kIncrementFrameHeaderBytes = 8;
inline constexpr std::size_t kIncrementRecordBytes = 24;
inline constexpr char kIncrementLogMagic[4] = {'C', 'C', 'I', 'L'};
inline constexpr char kIncrementFrameMagic[4] = {'I', 'N', 'C', 'R'};

/// Decoded log header.
struct IncrementLogHeader {
  std::uint16_t version = kIncrementLogVersion;
  std::uint64_t num_vertices = 0;

  friend bool operator==(const IncrementLogHeader&,
                         const IncrementLogHeader&) = default;
};

/// Appends framed increments to a stream. The header is written by the
/// constructor; each write_increment() emits one frame. Throws
/// IncrementCodecError if the underlying stream fails mid-write.
class IncrementLogWriter {
 public:
  IncrementLogWriter(std::ostream& out, std::uint64_t num_vertices);

  /// One streaming increment -> one frame (op order preserved verbatim;
  /// an empty increment is a legal zero-record frame).
  void write_increment(std::span<const StreamEdge> ops);

  [[nodiscard]] std::uint64_t increments_written() const noexcept {
    return increments_;
  }

 private:
  std::ostream& out_;
  std::uint64_t increments_ = 0;
};

/// Pull-reader over a framed log: validates the header up front, then
/// yields one increment per next() call. Suitable for pipes — it reads
/// exactly one frame ahead, never the whole log.
class IncrementLogReader {
 public:
  /// Reads and validates the header. Throws IncrementCodecError on bad
  /// magic, truncation, a future version, or a record stride this build
  /// does not understand.
  explicit IncrementLogReader(std::istream& in);

  [[nodiscard]] const IncrementLogHeader& header() const noexcept {
    return header_;
  }

  /// Next framed increment, or std::nullopt at a clean end-of-log.
  /// Throws IncrementCodecError on a garbage frame tag, truncation inside
  /// a frame, an unknown op kind, or nonzero record padding.
  [[nodiscard]] std::optional<std::vector<StreamEdge>> next();

  [[nodiscard]] std::uint64_t increments_read() const noexcept {
    return increments_;
  }

 private:
  std::istream& in_;
  IncrementLogHeader header_;
  std::uint64_t increments_ = 0;
};

// --- Whole-log conveniences (the replay-log path) ---------------------------

/// Encodes a full schedule-shaped op sequence (one inner vector per
/// increment) — the binary counterpart of replaying wl::StreamSchedule
/// increments.
void write_increment_log(
    std::ostream& out, std::uint64_t num_vertices,
    std::span<const std::vector<StreamEdge>> increments);

struct DecodedIncrementLog {
  IncrementLogHeader header;
  std::vector<std::vector<StreamEdge>> increments;
};

/// Decodes a whole log. Same validation (and errors) as the pull reader.
[[nodiscard]] DecodedIncrementLog read_increment_log(std::istream& in);

}  // namespace ccastream::io
