#include "io/edgelist.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ccastream::io {

std::vector<StreamEdge> read_edgelist(std::istream& in) {
  std::vector<StreamEdge> edges;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    StreamEdge e;
    if (!(ls >> e.src >> e.dst)) {
      throw std::runtime_error("edgelist: malformed line " + std::to_string(lineno) +
                               ": '" + line + "'");
    }
    if (!(ls >> e.weight)) e.weight = 1;
    edges.push_back(e);
  }
  return edges;
}

std::vector<StreamEdge> read_edgelist_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("edgelist: cannot open '" + path + "'");
  return read_edgelist(f);
}

void write_edgelist(std::ostream& out, const std::vector<StreamEdge>& edges) {
  for (const auto& e : edges) {
    out << e.src << ' ' << e.dst << ' ' << e.weight << '\n';
  }
}

void write_edgelist_file(const std::string& path,
                         const std::vector<StreamEdge>& edges) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("edgelist: cannot open '" + path + "' for write");
  write_edgelist(f, edges);
}

}  // namespace ccastream::io
