// StreamService implementation. Concurrency layout:
//
//   - One engine thread owns the StreamingGraph/chip exclusively between
//     construction and stop(); stream_increment and snapshot latching run
//     with the service mutex RELEASED, so producers and readers never wait
//     on simulated work.
//   - One mutex guards the batch queue, the published SnapshotView
//     pointer, the stats/report blocks, and the pause/stop/failure flags.
//     Everything under it is O(1) bookkeeping.
//   - Readers copy the shared_ptr under the mutex and compute on their own
//     thread against the immutable view.
//
// An exception escaping the engine (DeletionRhizomeError, out-of-range
// endpoint ids, snapshot failures) is captured as the service's terminal
// failure: the engine parks, and every subsequent submit()/flush()
// rethrows it on the caller's thread.
#include "svc/stream_service.hpp"

#include <atomic>
#include <charconv>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "baseline/algorithms.hpp"
#include "baseline/dynamic_components.hpp"

namespace ccastream::svc {

std::string_view to_string(QueuePolicy p) noexcept {
  switch (p) {
    case QueuePolicy::kBlock: return "block";
    case QueuePolicy::kDrop: return "drop";
    case QueuePolicy::kFlush: return "flush";
  }
  return "?";
}

std::string QueueSpec::to_string() const {
  return std::string(svc::to_string(policy)) + ":" + std::to_string(capacity);
}

std::optional<QueueSpec> parse_queue_spec(std::string_view s) {
  QueueSpec spec;
  const auto colon = s.find(':');
  const std::string_view policy = s.substr(0, colon);
  if (policy == "block") spec.policy = QueuePolicy::kBlock;
  else if (policy == "drop") spec.policy = QueuePolicy::kDrop;
  else if (policy == "flush") spec.policy = QueuePolicy::kFlush;
  else return std::nullopt;
  if (colon != std::string_view::npos) {
    const std::string_view cap = s.substr(colon + 1);
    std::size_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(cap.data(), cap.data() + cap.size(), v);
    if (ec != std::errc{} || ptr != cap.data() + cap.size() || v < 1 ||
        v > 65536) {
      return std::nullopt;
    }
    spec.capacity = v;
  }
  return spec;
}

QueueSpec resolve_queue_spec(std::optional<QueueSpec> requested) {
  if (requested) return *requested;
  if (const char* env = std::getenv("CCASTREAM_SVC_QUEUE")) {
    if (auto spec = parse_queue_spec(env)) return *spec;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccastream: ignoring invalid CCASTREAM_SVC_QUEUE '%s' "
                   "(want block|drop|flush[:1..65536]; using block:8)\n",
                   env);
    }
  }
  return QueueSpec{};
}

base::RefGraph SnapshotView::ref_graph() const {
  base::RefGraph g(num_vertices());
  for (std::uint64_t v = 0; v < num_vertices(); ++v) {
    for (const auto& arc : out(v)) g.add_edge(v, arc.dst, arc.weight);
  }
  return g;
}

struct StreamService::State {
  mutable std::mutex m;
  std::condition_variable cv_engine;  ///< Wakes the engine: work / stop.
  std::condition_variable cv_client;  ///< Wakes producers/flushers.
  std::deque<std::vector<StreamEdge>> queue;
  std::shared_ptr<const SnapshotView> view;
  ServiceStats stats;
  std::vector<BatchReport> reports;
  std::exception_ptr failure;
  bool engine_busy = false;
  bool paused = false;
  bool stop_requested = false;
  bool stopped = false;
  std::thread engine;

  void rethrow_failure_locked() const {
    if (failure) std::rethrow_exception(failure);
  }
};

StreamService::StreamService(graph::StreamingGraph& g, Config cfg)
    : graph_(g), cfg_(cfg), st_(std::make_unique<State>()) {
  if (cfg_.queue.capacity == 0) {
    throw std::invalid_argument("StreamService: queue capacity must be >= 1");
  }
  // Latch the pre-stream view (seq 0) before the engine exists, so queries
  // have an answerable snapshot from the first instant.
  latch_snapshot_locked(0);
  st_->stats.snapshots_latched = 1;
  st_->engine = std::thread([this] { engine_loop(); });
}

StreamService::~StreamService() { stop(); }

void StreamService::latch_snapshot_locked(std::uint64_t seq) {
  // Caller guarantees exclusive graph access (constructor, or the engine
  // thread between increments). Only the publish itself needs the mutex.
  std::ostringstream text;
  graph_.save_snapshot(text);
  std::istringstream parse(text.str());
  auto view = std::make_shared<const SnapshotView>(
      graph::parse_snapshot_digest(parse), seq);
  const std::lock_guard<std::mutex> lock(st_->m);
  st_->view = std::move(view);
}

void StreamService::engine_loop() {
  for (;;) {
    std::vector<StreamEdge> batch;
    std::uint64_t seq = 0;
    {
      std::unique_lock<std::mutex> lock(st_->m);
      st_->cv_engine.wait(lock, [&] {
        return st_->stop_requested ||
               (!st_->queue.empty() && !st_->paused && !st_->failure);
      });
      if (st_->stop_requested && (st_->queue.empty() || st_->failure)) return;
      if (st_->queue.empty() || st_->paused || st_->failure) continue;
      batch = std::move(st_->queue.front());
      st_->queue.pop_front();
      st_->engine_busy = true;
      seq = st_->stats.batches_executed + 1;
    }

    try {
      const graph::IncrementReport rep = graph_.stream_increment(batch);
      latch_snapshot_locked(seq);
      const std::lock_guard<std::mutex> lock(st_->m);
      st_->stats.batches_executed = seq;
      st_->stats.ops_executed += rep.edges;
      st_->stats.deletes_executed += rep.deletes;
      ++st_->stats.snapshots_latched;
      st_->reports.push_back({seq, rep.edges, rep.deletes, rep.cycles,
                              rep.energy_uj});
      st_->engine_busy = false;
    } catch (...) {
      const std::lock_guard<std::mutex> lock(st_->m);
      st_->failure = std::current_exception();
      st_->engine_busy = false;
    }
    st_->cv_client.notify_all();
  }
}

bool StreamService::submit(std::vector<StreamEdge> batch) {
  std::unique_lock<std::mutex> lock(st_->m);
  if (st_->stopped || st_->stop_requested) {
    throw std::logic_error("StreamService: submit after stop");
  }
  st_->rethrow_failure_locked();
  switch (cfg_.queue.policy) {
    case QueuePolicy::kDrop:
      if (st_->queue.size() >= cfg_.queue.capacity) {
        ++st_->stats.batches_dropped;
        return false;
      }
      break;
    case QueuePolicy::kBlock:
      st_->cv_client.wait(lock, [&] {
        return st_->failure || st_->queue.size() < cfg_.queue.capacity;
      });
      st_->rethrow_failure_locked();
      break;
    case QueuePolicy::kFlush:
      if (st_->queue.size() >= cfg_.queue.capacity) {
        ++st_->stats.flush_waits;
        st_->cv_client.wait(lock, [&] {
          return st_->failure || (st_->queue.empty() && !st_->engine_busy);
        });
        st_->rethrow_failure_locked();
      }
      break;
  }
  st_->queue.push_back(std::move(batch));
  ++st_->stats.batches_submitted;
  st_->cv_engine.notify_one();
  return true;
}

void StreamService::flush() {
  std::unique_lock<std::mutex> lock(st_->m);
  st_->cv_client.wait(lock, [&] {
    return st_->failure || (st_->queue.empty() && !st_->engine_busy);
  });
  st_->rethrow_failure_locked();
}

void StreamService::stop() {
  {
    std::unique_lock<std::mutex> lock(st_->m);
    if (st_->stopped) return;
    // Let the engine drain what was accepted (unless it already failed —
    // then the leftover queue is abandoned).
    st_->paused = false;
    st_->stop_requested = true;
    st_->cv_engine.notify_all();
  }
  if (st_->engine.joinable()) st_->engine.join();
  const std::lock_guard<std::mutex> lock(st_->m);
  st_->stopped = true;
  st_->cv_client.notify_all();
}

void StreamService::pause() {
  const std::lock_guard<std::mutex> lock(st_->m);
  st_->paused = true;
}

void StreamService::resume() {
  const std::lock_guard<std::mutex> lock(st_->m);
  st_->paused = false;
  st_->cv_engine.notify_all();
}

std::shared_ptr<const SnapshotView> StreamService::snapshot() const {
  const std::lock_guard<std::mutex> lock(st_->m);
  return st_->view;
}

QueryResult StreamService::query(const QueryRequest& req) const {
  const std::shared_ptr<const SnapshotView> view = snapshot();
  const std::uint64_t n = view->num_vertices();
  QueryResult res;
  res.seq = view->seq();
  switch (req.kind) {
    case QueryKind::kBfs: {
      if (req.source >= n) throw std::out_of_range("query source out of range");
      res.values = base::bfs_levels(view->ref_graph(), req.source);
      break;
    }
    case QueryKind::kSssp: {
      if (req.source >= n) throw std::out_of_range("query source out of range");
      res.values = base::sssp_distances(view->ref_graph(), req.source);
      break;
    }
    case QueryKind::kComponents: {
      // Directed min-reaching labels — the semantics the streamed
      // components app computes (see base::DynamicComponents).
      base::DynamicComponents oracle(n);
      for (std::uint64_t v = 0; v < n; ++v) {
        for (const auto& arc : view->out(v)) oracle.insert_edge(v, arc.dst);
      }
      res.values = oracle.recompute();
      break;
    }
    case QueryKind::kPagerank: {
      res.ranks = base::pagerank(view->ref_graph(), req.damping, req.epsilon);
      break;
    }
    case QueryKind::kAppWord: {
      res.values.reserve(n);
      for (std::uint64_t v = 0; v < n; ++v) {
        res.values.push_back(view->app_word(v, req.app_word));
      }
      break;
    }
  }
  const std::lock_guard<std::mutex> lock(st_->m);
  ++st_->stats.queries_answered;
  return res;
}

ServiceStats StreamService::stats() const {
  const std::lock_guard<std::mutex> lock(st_->m);
  return st_->stats;
}

std::vector<BatchReport> StreamService::batch_reports() const {
  const std::lock_guard<std::mutex> lock(st_->m);
  return st_->reports;
}

}  // namespace ccastream::svc
