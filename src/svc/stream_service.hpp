// Long-lived streaming service mode: continuous ingest of batched edge
// increments with backpressure, plus concurrent read queries answered from
// the snapshot layer while the next increment executes — the ROADMAP's
// "heavy traffic from millions of users" scenario.
//
// Architecture (the gnrc-style decoupled event loops, one per concern):
//
//   producers ──submit()──► bounded batch queue ──► engine loop (1 thread)
//                           block / drop / flush        │ StreamingGraph::
//                           backpressure policy         │ stream_increment
//                                                       ▼
//   readers  ◄──query()──── latched SnapshotView ◄── latch (save_snapshot
//                           (immutable, shared_ptr)     → SnapshotDigest)
//
// The engine thread is the ONLY thread that ever touches the
// StreamingGraph/chip after start; everything the query front-end reads is
// an immutable SnapshotView latched at a quiescent point between
// increments and published by shared_ptr swap. Queries therefore never
// observe a torn mid-cycle view — they see exactly the fixed point after
// batch k, for some k ≤ the number of executed batches — and the engine
// never blocks on readers.
//
// Determinism: the engine loop calls stream_increment batch-by-batch in
// submission order on one thread, exactly like a one-shot batch run of the
// same schedule — so a service-mode replay of a recorded increment log is
// cycle-for-cycle identical to the batch run (pinned by
// tests/determinism_test.cpp's service-replay leg and the CI serve smoke).
// Snapshot latching only reads the quiescent chip.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/graph.hpp"
#include "graph/builder.hpp"
#include "graph/stream_edge.hpp"

namespace ccastream::svc {

/// What submit() does when the ingest queue is full.
enum class QueuePolicy : std::uint8_t {
  kBlock,  ///< Wait for the engine to free a slot (lossless, applies
           ///< backpressure to the producer). Default.
  kDrop,   ///< Reject the batch (returns false, counted in stats) — the
           ///< load-shedding mode for overloaded ingest.
  kFlush,  ///< Quiesce: wait until the queue fully drains AND the engine
           ///< goes idle, then enqueue — amortised batching for producers
           ///< that prefer rare long stalls over per-batch pushback.
};

[[nodiscard]] std::string_view to_string(QueuePolicy p) noexcept;

/// Parsed `--svc-queue` / CCASTREAM_SVC_QUEUE value: `policy[:capacity]`
/// with policy block|drop|flush and capacity 1..65536 (default 8).
struct QueueSpec {
  QueuePolicy policy = QueuePolicy::kBlock;
  std::size_t capacity = 8;

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const QueueSpec&, const QueueSpec&) = default;
};

/// Parses `block`, `drop:32`, `flush:4`, ... Returns std::nullopt on
/// anything else (bad policy, capacity outside 1..65536, trailing junk).
[[nodiscard]] std::optional<QueueSpec> parse_queue_spec(std::string_view s);

/// Resolution follows the global knob rule (docs/TUNING.md): an explicit
/// spec wins, else CCASTREAM_SVC_QUEUE (unparsable values ignored with a
/// one-shot warning), else the default block:8.
[[nodiscard]] QueueSpec resolve_queue_spec(
    std::optional<QueueSpec> requested = std::nullopt);

/// Service counters. Monotone; a consistent copy is returned by
/// StreamService::stats().
struct ServiceStats {
  std::uint64_t batches_submitted = 0;  ///< Accepted into the queue.
  std::uint64_t batches_dropped = 0;    ///< Rejected by the kDrop policy.
  std::uint64_t batches_executed = 0;   ///< Drained through stream_increment.
  std::uint64_t ops_executed = 0;       ///< StreamEdge ops across them.
  std::uint64_t deletes_executed = 0;   ///< Delete ops among those.
  std::uint64_t snapshots_latched = 0;  ///< Published SnapshotViews.
  std::uint64_t flush_waits = 0;        ///< kFlush full-queue quiesces.
  std::uint64_t queries_answered = 0;   ///< query() calls served.

  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

/// Per-batch execution record (the service-mode counterpart of
/// graph::IncrementReport), kept in submission order for post-run
/// reporting — the CLI's `serve` mode emits these as JSON lines.
struct BatchReport {
  std::uint64_t seq = 0;  ///< 1-based batch sequence number.
  std::uint64_t edges = 0;
  std::uint64_t deletes = 0;
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
};

/// An immutable graph view latched between increments: the logical
/// adjacency plus the installed app's result words, parsed from the
/// snapshot layer (graph/snapshot.cpp text format) at a quiescent point.
/// seq() says how many batches the view reflects. Thread-safe by
/// construction — nothing mutates after the constructor.
class SnapshotView {
 public:
  SnapshotView(graph::SnapshotDigest digest, std::uint64_t seq)
      : digest_(std::move(digest)), seq_(seq) {}

  [[nodiscard]] std::uint64_t seq() const noexcept { return seq_; }
  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return digest_.num_vertices;
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return digest_.num_edges;
  }
  [[nodiscard]] const std::vector<graph::SnapshotDigest::Arc>& out(
      std::uint64_t vid) const {
    return digest_.adjacency[vid];
  }
  /// The installed app's latched result word for a vertex (primary-root
  /// app state — e.g. StreamingBfs::kLevelWord holds the BFS level).
  [[nodiscard]] rt::Word app_word(std::uint64_t vid, std::size_t word) const {
    return digest_.app_words[vid][word];
  }
  /// Copies the view into the sequential-oracle graph type, for answering
  /// algorithmic queries host-side.
  [[nodiscard]] base::RefGraph ref_graph() const;

 private:
  graph::SnapshotDigest digest_;
  std::uint64_t seq_ = 0;
};

/// Read queries the front-end answers from the latched view.
enum class QueryKind : std::uint8_t {
  kBfs,         ///< BFS levels from `source` (base::bfs_levels).
  kSssp,        ///< Dijkstra distances from `source` (base::sssp_distances).
  kComponents,  ///< Directed min-reaching labels (base::DynamicComponents).
  kPagerank,    ///< Delta-push PageRank (base::pagerank).
  kAppWord,     ///< The installed app's own latched word per vertex.
};

struct QueryRequest {
  QueryKind kind = QueryKind::kAppWord;
  std::uint64_t source = 0;   ///< kBfs / kSssp.
  std::size_t app_word = 0;   ///< kAppWord: which AppState word.
  double damping = 0.85;      ///< kPagerank.
  double epsilon = 1e-7;      ///< kPagerank.
};

struct QueryResult {
  std::uint64_t seq = 0;  ///< Which latched view answered (≤ batches run).
  std::vector<rt::Word> values;  ///< kBfs/kSssp/kComponents/kAppWord.
  std::vector<double> ranks;     ///< kPagerank.
};

class StreamService {
 public:
  struct Config {
    QueueSpec queue;  ///< Pass resolve_queue_spec(...) for env resolution.
  };

  /// The service takes over the graph: after construction, the engine
  /// thread is the only writer of `g` (and its chip) until stop(). The
  /// initial empty-graph snapshot (seq 0) is latched before the engine
  /// starts, so queries are answerable immediately.
  explicit StreamService(graph::StreamingGraph& g, Config cfg = {});

  /// stop()s if still running.
  ~StreamService();

  StreamService(const StreamService&) = delete;
  StreamService& operator=(const StreamService&) = delete;

  // --- Ingest front-end (any thread) ---------------------------------------

  /// Offers one batch (one streaming increment) to the engine. Returns
  /// true when accepted; false when the kDrop policy rejected it. Under
  /// kBlock a full queue blocks the caller; under kFlush it quiesces
  /// first (see QueuePolicy). Rethrows a pending engine failure.
  bool submit(std::vector<StreamEdge> batch);

  /// Blocks until every accepted batch has executed and its snapshot is
  /// latched. Rethrows a pending engine failure (e.g.
  /// graph::DeletionRhizomeError from a delete batch on a rhizomed graph).
  void flush();

  /// flush() (best-effort when the engine failed), then joins the engine
  /// thread. Idempotent. After stop() returns, the caller owns the graph
  /// again and submit() is a misuse.
  void stop();

  /// Maintenance valve, also the deterministic handle the backpressure
  /// tests use: the engine finishes its current batch and parks; the
  /// queue keeps accepting per its policy. resume() restarts draining.
  void pause();
  void resume();

  // --- Query front-end (any thread, concurrent with ingest) ----------------

  /// The newest latched view (never null after construction).
  [[nodiscard]] std::shared_ptr<const SnapshotView> snapshot() const;

  /// Answers a read query from the newest latched view ON THE CALLER'S
  /// THREAD — the engine is never involved, so queries run concurrently
  /// with the next increment's execution.
  [[nodiscard]] QueryResult query(const QueryRequest& req) const;

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] ServiceStats stats() const;
  /// Per-batch execution records so far (copy; submission order).
  [[nodiscard]] std::vector<BatchReport> batch_reports() const;
  [[nodiscard]] const QueueSpec& queue_spec() const noexcept {
    return cfg_.queue;
  }

 private:
  struct State;  // queue + latch + cv plumbing, hidden from the header
  void engine_loop();
  void latch_snapshot_locked(std::uint64_t seq);

  graph::StreamingGraph& graph_;
  Config cfg_;
  std::unique_ptr<State> st_;
};

}  // namespace ccastream::svc
