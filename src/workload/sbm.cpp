#include "workload/sbm.hpp"

#include <cassert>
#include <cmath>

#include "runtime/rng.hpp"

namespace ccastream::wl {

namespace {

/// Picks a vertex inside [lo, hi) with optional power-law skew toward lo.
std::uint64_t pick_in_range(rt::Xoshiro256& rng, std::uint64_t lo, std::uint64_t hi,
                            double skew) {
  const std::uint64_t size = hi - lo;
  if (size == 0) return lo;
  if (skew <= 1.0) return lo + rng.below(size);
  const double u = rng.uniform();
  const auto idx = static_cast<std::uint64_t>(std::pow(u, skew) *
                                              static_cast<double>(size));
  return lo + (idx >= size ? size - 1 : idx);
}

}  // namespace

std::vector<StreamEdge> generate_sbm(const SbmParams& p) {
  assert(p.num_vertices > 0);
  rt::Xoshiro256 rng(p.seed);

  const std::uint64_t requested_blocks =
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(p.num_blocks, p.num_vertices));
  const std::uint64_t block_size =
      (p.num_vertices + requested_blocks - 1) / requested_blocks;
  // Rounding block_size up can leave trailing blocks empty; only sample
  // from blocks that actually contain vertices.
  const std::uint64_t blocks = (p.num_vertices + block_size - 1) / block_size;
  auto block_range = [&](std::uint64_t b) {
    const std::uint64_t lo = b * block_size;
    const std::uint64_t hi = std::min(p.num_vertices, lo + block_size);
    return std::pair{lo, hi};
  };

  std::vector<StreamEdge> edges;
  edges.reserve(p.num_edges);
  while (edges.size() < p.num_edges) {
    const std::uint64_t b_src = rng.below(blocks);
    const std::uint64_t b_dst = rng.bernoulli(p.intra_prob) ? b_src : rng.below(blocks);
    const auto [slo, shi] = block_range(b_src);
    const auto [dlo, dhi] = block_range(b_dst);
    const std::uint64_t u = pick_in_range(rng, slo, shi, p.degree_skew);
    const std::uint64_t v = pick_in_range(rng, dlo, dhi, p.degree_skew);
    if (!p.allow_self_loops && u == v) continue;
    edges.push_back(StreamEdge{u, v, 1});
  }
  return edges;
}

}  // namespace ccastream::wl
