// Streaming order generators — the two sampling methods of the
// GraphChallenge datasets (paper §4, Table 1):
//
//  * Edge sampling: edges arrive in a uniformly random order, "as if they
//    were formed or observed in the real world"; every increment carries a
//    near-equal share of the edges.
//  * Snowball sampling: edges arrive "as they are discovered from a
//    starting point" — a breadth-first expansion, so increments grow as the
//    frontier widens (Table 1's 37K -> 191K ramp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/stream_edge.hpp"

namespace ccastream::wl {

enum class SamplingKind : std::uint8_t { kEdge, kSnowball };

[[nodiscard]] std::string_view to_string(SamplingKind kind) noexcept;

/// A full streaming schedule: the edge set cut into ordered increments.
struct StreamSchedule {
  std::vector<std::vector<StreamEdge>> increments;
  SamplingKind kind = SamplingKind::kEdge;
  /// Snowball only: the vertex the expansion started from (a natural BFS
  /// source for the streaming-BFS experiments).
  std::uint64_t seed_vertex = 0;

  [[nodiscard]] std::uint64_t total_edges() const noexcept {
    std::uint64_t n = 0;
    for (const auto& inc : increments) n += inc.size();
    return n;
  }
};

/// Uniformly shuffles `edges` and cuts them into `increments` equal parts.
[[nodiscard]] StreamSchedule edge_sampling(std::vector<StreamEdge> edges,
                                           std::uint32_t increments,
                                           std::uint64_t seed);

/// Orders `edges` by breadth-first discovery from a random start vertex
/// (restarting on unreached components), then cuts the sequence into
/// increments whose sizes ramp linearly — the growth profile of Table 1's
/// snowball rows.
[[nodiscard]] StreamSchedule snowball_sampling(const std::vector<StreamEdge>& edges,
                                               std::uint64_t num_vertices,
                                               std::uint32_t increments,
                                               std::uint64_t seed);

/// Convenience: SBM graph + sampling order in one call (a Table 1 row).
[[nodiscard]] StreamSchedule make_graphchallenge_like(std::uint64_t vertices,
                                                      std::uint64_t edges,
                                                      SamplingKind kind,
                                                      std::uint32_t increments,
                                                      std::uint64_t seed);

/// Appends the reverse of every edge (for undirected-semantics algorithms:
/// connected components, triangle counting, Jaccard).
[[nodiscard]] std::vector<StreamEdge> symmetrize(const std::vector<StreamEdge>& edges);

/// Removes duplicate (src, dst) pairs and self-loops, turning an
/// observation stream into a simple directed graph. Duplicate handling
/// follows the project-wide last-write rule (see stream_edge.hpp): the
/// surviving edge sits at the pair's FIRST position in the arrival order
/// but carries the LAST observed weight — a duplicate is a re-observation,
/// and the newest observation is canonical (the same weight the on-chip
/// multiset nets after a delete + re-insert of the pair).
[[nodiscard]] std::vector<StreamEdge> simplify(const std::vector<StreamEdge>& edges);

/// Canonicalises to a simple *undirected* graph: drops self-loops, dedups
/// unordered pairs (so {u,v} survives only once even if both directions
/// were observed), and emits both directions of each surviving pair. The
/// result has symmetric, duplicate-free adjacency — the precondition for
/// triangle counting and Jaccard queries. Re-observed pairs keep the last
/// observed weight on both directions, matching `simplify`.
[[nodiscard]] std::vector<StreamEdge> undirected_simple(
    const std::vector<StreamEdge>& edges);

}  // namespace ccastream::wl
