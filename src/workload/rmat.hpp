// Recursive-matrix (R-MAT / Graph500-style) generator: a second workload
// family with heavy degree skew, used by the ablation benchmarks to stress
// RPVO chains and allocator policies beyond the SBM graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/stream_edge.hpp"

namespace ccastream::wl {

struct RmatParams {
  std::uint32_t scale = 10;      ///< 2^scale vertices.
  std::uint64_t num_edges = 0;   ///< 0 -> 16 * vertices (Graph500 density).
  double a = 0.57, b = 0.19, c = 0.19;  ///< Quadrant probabilities (d = 1-a-b-c).
  bool allow_self_loops = false;
  std::uint64_t seed = 7;
};

[[nodiscard]] std::vector<StreamEdge> generate_rmat(const RmatParams& params);

}  // namespace ccastream::wl
