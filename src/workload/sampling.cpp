#include "workload/sampling.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "runtime/rng.hpp"
#include "workload/sbm.hpp"

namespace ccastream::wl {

std::string_view to_string(SamplingKind kind) noexcept {
  switch (kind) {
    case SamplingKind::kEdge: return "Edge";
    case SamplingKind::kSnowball: return "Snowball";
  }
  return "?";
}

StreamSchedule edge_sampling(std::vector<StreamEdge> edges, std::uint32_t increments,
                             std::uint64_t seed) {
  rt::Xoshiro256 rng(seed);
  // Fisher-Yates with our deterministic RNG (std::shuffle's output is
  // implementation-defined, which would break cross-platform repro).
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.below(i)]);
  }

  StreamSchedule sched;
  sched.kind = SamplingKind::kEdge;
  sched.increments.resize(std::max<std::uint32_t>(1, increments));
  const std::size_t k = sched.increments.size();
  const std::size_t base = edges.size() / k;
  const std::size_t extra = edges.size() % k;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    sched.increments[i].assign(edges.begin() + static_cast<std::ptrdiff_t>(pos),
                               edges.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return sched;
}

StreamSchedule snowball_sampling(const std::vector<StreamEdge>& edges,
                                 std::uint64_t num_vertices, std::uint32_t increments,
                                 std::uint64_t seed) {
  rt::Xoshiro256 rng(seed);

  // Undirected incidence: vertex -> indices of edges touching it.
  std::vector<std::vector<std::uint32_t>> incidence(num_vertices);
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    if (edges[i].src < num_vertices) incidence[edges[i].src].push_back(i);
    if (edges[i].dst < num_vertices && edges[i].dst != edges[i].src) {
      incidence[edges[i].dst].push_back(i);
    }
  }

  // Breadth-first discovery: an edge is emitted when its first endpoint is
  // processed; a vertex joins the frontier when first touched. Restart from
  // a random unvisited vertex when a component is exhausted.
  std::vector<StreamEdge> ordered;
  ordered.reserve(edges.size());
  std::vector<bool> edge_done(edges.size(), false);
  std::vector<bool> visited(num_vertices, false);
  std::deque<std::uint64_t> frontier;
  const std::uint64_t start = num_vertices == 0 ? 0 : rng.below(num_vertices);

  auto visit = [&](std::uint64_t v) {
    if (v < num_vertices && !visited[v]) {
      visited[v] = true;
      frontier.push_back(v);
    }
  };
  visit(start);
  std::uint64_t scan = 0;  // restart cursor for disconnected remainders
  while (ordered.size() < edges.size()) {
    if (frontier.empty()) {
      while (scan < num_vertices && visited[scan]) ++scan;
      if (scan >= num_vertices) break;
      visit(scan);
      continue;
    }
    const std::uint64_t u = frontier.front();
    frontier.pop_front();
    for (const std::uint32_t ei : incidence[u]) {
      if (edge_done[ei]) continue;
      edge_done[ei] = true;
      ordered.push_back(edges[ei]);
      visit(edges[ei].src);
      visit(edges[ei].dst);
    }
  }
  // Edges whose endpoints exceed num_vertices (defensive): append in order.
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    if (!edge_done[i]) ordered.push_back(edges[i]);
  }

  // Cut into increments with a linear ramp: the paper's snowball rows grow
  // from ~3% of the edges in increment 1 to ~19% in increment 10.
  StreamSchedule sched;
  sched.kind = SamplingKind::kSnowball;
  sched.seed_vertex = start;
  const std::uint32_t k = std::max<std::uint32_t>(1, increments);
  sched.increments.resize(k);
  // Weights w_i = first + i * step, scaled so they sum to the edge count.
  // first:last = ~1:6 matches Table 1 (37K : 191K ≈ 1 : 5.2).
  const double first = 1.0;
  const double last = 6.0;
  double wsum = 0.0;
  std::vector<double> w(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    w[i] = k == 1 ? 1.0 : first + (last - first) * i / (k - 1);
    wsum += w[i];
  }
  std::size_t pos = 0;
  for (std::uint32_t i = 0; i < k; ++i) {
    std::size_t len =
        i + 1 == k ? ordered.size() - pos
                   : static_cast<std::size_t>(w[i] / wsum *
                                              static_cast<double>(ordered.size()));
    len = std::min(len, ordered.size() - pos);
    sched.increments[i].assign(
        ordered.begin() + static_cast<std::ptrdiff_t>(pos),
        ordered.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return sched;
}

StreamSchedule make_graphchallenge_like(std::uint64_t vertices, std::uint64_t edges,
                                        SamplingKind kind, std::uint32_t increments,
                                        std::uint64_t seed) {
  SbmParams p;
  p.num_vertices = vertices;
  p.num_edges = edges;
  p.num_blocks = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      2, vertices / 1500));  // GraphChallenge-like community sizes
  p.intra_prob = 0.7;
  p.degree_skew = 1.3;
  p.seed = seed;
  auto raw = generate_sbm(p);
  if (kind == SamplingKind::kEdge) {
    return edge_sampling(std::move(raw), increments, seed ^ 0x9E3779B9ull);
  }
  return snowball_sampling(raw, vertices, increments, seed ^ 0x9E3779B9ull);
}

std::vector<StreamEdge> symmetrize(const std::vector<StreamEdge>& edges) {
  std::vector<StreamEdge> out;
  out.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    out.push_back(e);
    if (e.src != e.dst) out.push_back(StreamEdge{e.dst, e.src, e.weight});
  }
  return out;
}

std::vector<StreamEdge> undirected_simple(const std::vector<StreamEdge>& edges) {
  // position of {a,b}'s first record pair in `out`
  std::unordered_map<std::uint64_t, std::size_t> seen;
  seen.reserve(edges.size() * 2);
  std::vector<StreamEdge> out;
  out.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    if (e.src == e.dst) continue;
    const std::uint64_t a = std::min(e.src, e.dst);
    const std::uint64_t b = std::max(e.src, e.dst);
    const std::uint64_t key = (a << 32) | (b & 0xFFFF'FFFFull);
    const auto [it, fresh] = seen.emplace(key, out.size());
    if (fresh) {
      out.push_back(StreamEdge{a, b, e.weight});
      out.push_back(StreamEdge{b, a, e.weight});
    } else {
      // Last-write weight (see stream_edge.hpp): the pair keeps its first
      // position in the arrival order but the most recent observed weight.
      out[it->second].weight = e.weight;
      out[it->second + 1].weight = e.weight;
    }
  }
  return out;
}

std::vector<StreamEdge> simplify(const std::vector<StreamEdge>& edges) {
  std::unordered_map<std::uint64_t, std::size_t> seen;  // pair -> index in out
  seen.reserve(edges.size() * 2);
  std::vector<StreamEdge> out;
  out.reserve(edges.size());
  for (const auto& e : edges) {
    if (e.src == e.dst) continue;
    // Pair key; workloads keep vertex ids below 2^32.
    const std::uint64_t key = (e.src << 32) | (e.dst & 0xFFFF'FFFFull);
    const auto [it, fresh] = seen.emplace(key, out.size());
    if (fresh) {
      out.push_back(e);
    } else {
      // Last-write weight (see stream_edge.hpp): first arrival position,
      // most recent weight — a duplicate is a re-observation of the edge.
      out[it->second].weight = e.weight;
    }
  }
  return out;
}

}  // namespace ccastream::wl
