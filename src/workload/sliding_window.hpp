// Sliding-window stream rewriting: turns an insert-only schedule into a
// windowed stream where edges expire (as delete ops) once they age out.
//
// The window is measured in increments: an edge pair observed in increment
// i is deleted at the start of increment i + window — unless the pair is
// re-observed in the meantime, which renews its lease (expiry tracks the
// pair's LATEST arrival, the temporal form of the last-write rule in
// stream_edge.hpp). Deletes are emitted at the head of their increment,
// matching the delete-before-insert sub-phase order of
// StreamingGraph::stream_increment and base::DynamicBfs::apply_increment,
// so a pair expiring in the same increment it re-arrives nets one live
// edge on every layer.
//
// This is the workload that drives the active-set engine through its
// shrinking-frontier regime (dense -> sparse collapse, capacity decay):
// with `drain`, trailing delete-only increments empty the window entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/stream_edge.hpp"
#include "workload/sampling.hpp"

namespace ccastream::wl {

/// Rewrites `inserts` (an insert-only schedule; op fields are ignored)
/// into a sliding-window stream. window == 0 disables expiry and returns
/// the schedule unchanged. With `drain`, enough delete-only increments are
/// appended to expire every pair still live after the last arrival.
/// One delete op is emitted per expiring *pair* (on-chip deletes remove
/// every matching record, so duplicate observations need no extra ops).
[[nodiscard]] StreamSchedule apply_sliding_window(const StreamSchedule& inserts,
                                                  std::uint32_t window,
                                                  bool drain = false);

/// Resolves the sliding-window length: an explicit nonzero `requested`
/// wins, else the CCASTREAM_WINDOW environment variable (a positive
/// increment count; unparsable values are ignored with a one-shot
/// warning), else 0 (windowing disabled).
[[nodiscard]] std::uint32_t resolve_window(std::uint32_t requested) noexcept;

/// Replays a schedule's ops host-side and returns the live edge multiset
/// at the end: inserts append; a delete removes every record matching its
/// (src, dst) pair — the same semantics the chip applies. Increment
/// sub-phase order (deletes before inserts) is honoured. The result is
/// what reference oracles should be built from when verifying a windowed
/// run.
[[nodiscard]] std::vector<StreamEdge> live_edges(const StreamSchedule& sched);

}  // namespace ccastream::wl
