// Stochastic block model generator — the synthetic stand-in for MIT's
// Streaming GraphChallenge partition datasets (which are themselves
// SBM-generated; see DESIGN.md §2 for the substitution rationale).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/stream_edge.hpp"

namespace ccastream::wl {

struct SbmParams {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_blocks = 32;   ///< Communities (contiguous vid ranges).
  double intra_prob = 0.7;         ///< P(edge stays inside its block).
  double degree_skew = 1.0;        ///< >1 skews endpoint choice to low ids
                                   ///< inside a block (degree-corrected SBM).
  bool allow_self_loops = false;
  std::uint64_t seed = 42;
};

/// Generates `num_edges` directed edges (a multigraph; duplicates possible,
/// as in a raw observation stream).
[[nodiscard]] std::vector<StreamEdge> generate_sbm(const SbmParams& params);

}  // namespace ccastream::wl
