#include "workload/rmat.hpp"

#include "runtime/rng.hpp"

namespace ccastream::wl {

std::vector<StreamEdge> generate_rmat(const RmatParams& p) {
  rt::Xoshiro256 rng(p.seed);
  const std::uint64_t n = 1ull << p.scale;
  const std::uint64_t m = p.num_edges == 0 ? 16ull * n : p.num_edges;

  std::vector<StreamEdge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    std::uint64_t u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < p.scale; ++bit) {
      const double r = rng.uniform();
      // Quadrant choice: a (0,0), b (0,1), c (1,0), d (1,1).
      const bool row = r >= p.a + p.b;
      const bool col = row ? (r >= p.a + p.b + p.c) : (r >= p.a);
      u = (u << 1) | static_cast<std::uint64_t>(row);
      v = (v << 1) | static_cast<std::uint64_t>(col);
    }
    if (!p.allow_self_loops && u == v) continue;
    edges.push_back(StreamEdge{u, v, static_cast<std::uint32_t>(1 + rng.below(8))});
  }
  return edges;
}

}  // namespace ccastream::wl
