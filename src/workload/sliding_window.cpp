#include "workload/sliding_window.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace ccastream::wl {

namespace {

// Pair key; workloads keep vertex ids below 2^32 (same convention as
// wl::simplify).
[[nodiscard]] constexpr std::uint64_t pair_key(std::uint64_t src,
                                               std::uint64_t dst) noexcept {
  return (src << 32) | (dst & 0xFFFF'FFFFull);
}

}  // namespace

StreamSchedule apply_sliding_window(const StreamSchedule& inserts,
                                    std::uint32_t window, bool drain) {
  if (window == 0) return inserts;

  // latest increment each live pair was observed in, plus a representative
  // (src, dst) to build the delete op from.
  struct Lease {
    std::uint64_t last_seen;
    std::uint64_t src;
    std::uint64_t dst;
  };
  std::unordered_map<std::uint64_t, Lease> leases;

  StreamSchedule out;
  out.kind = inserts.kind;
  out.seed_vertex = inserts.seed_vertex;

  const std::uint64_t arrivals = inserts.increments.size();
  const std::uint64_t total =
      drain ? arrivals + window : arrivals;  // trailing delete-only increments
  out.increments.resize(total);

  for (std::uint64_t i = 0; i < total; ++i) {
    auto& inc = out.increments[i];
    // Expirations first (the increment's sub-phase order): every pair whose
    // latest observation was exactly `window` increments ago ages out. The
    // map is small relative to the stream; iterating it per increment keeps
    // the generator simple, and emission order is made deterministic below.
    if (i >= window) {
      const std::uint64_t cutoff = i - window;
      std::vector<std::uint64_t> expired;
      for (const auto& [key, lease] : leases) {
        if (lease.last_seen == cutoff) expired.push_back(key);
      }
      // unordered_map iteration order is not part of the determinism
      // contract; sorted emission is.
      std::sort(expired.begin(), expired.end());
      for (const std::uint64_t key : expired) {
        const Lease lease = leases.at(key);
        inc.push_back(make_delete_edge(lease.src, lease.dst));
        leases.erase(key);
      }
    }
    if (i < arrivals) {
      for (const StreamEdge& e : inserts.increments[i]) {
        inc.push_back(make_insert_edge(e.src, e.dst, e.weight));
        leases[pair_key(e.src, e.dst)] = Lease{i, e.src, e.dst};
      }
    }
  }
  return out;
}

std::uint32_t resolve_window(std::uint32_t requested) noexcept {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("CCASTREAM_WINDOW")) {
    // strtol so negatives are rejected instead of wrapping; the endptr
    // check rejects trailing garbage (mirrors CCASTREAM_DENSE_PCT).
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1'000'000) {
      return static_cast<std::uint32_t>(v);
    }
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "ccastream: ignoring out-of-range CCASTREAM_WINDOW '%s' "
                   "(windowing disabled)\n",
                   env);
    }
  }
  return 0;
}

std::vector<StreamEdge> live_edges(const StreamSchedule& sched) {
  std::vector<StreamEdge> live;
  for (const auto& inc : sched.increments) {
    for (const StreamEdge& e : inc) {
      if (!e.is_delete()) continue;
      std::erase_if(live, [&](const StreamEdge& l) {
        return l.src == e.src && l.dst == e.dst;
      });
    }
    for (const StreamEdge& e : inc) {
      if (e.is_delete()) continue;
      live.push_back(make_insert_edge(e.src, e.dst, e.weight));
    }
  }
  return live;
}

}  // namespace ccastream::wl
