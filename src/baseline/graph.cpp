#include "baseline/graph.hpp"

// RefGraph is header-only; this translation unit anchors the library target.
namespace ccastream::base {}
