#include "baseline/dynamic_sssp.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "baseline/graph.hpp"

namespace ccastream::base {

DynamicSssp::DynamicSssp(std::uint64_t num_vertices, std::uint64_t source)
    : adj_(num_vertices), dist_(num_vertices, kUnreached), source_(source) {
  if (source_ < num_vertices) dist_[source_] = 0;
}

bool DynamicSssp::in_range(std::uint64_t src, std::uint64_t dst) noexcept {
  if (src < adj_.size() && dst < adj_.size()) return true;
  ++rejected_;
  return false;
}

void DynamicSssp::insert_edge(std::uint64_t src, std::uint64_t dst,
                              std::uint32_t weight) {
  if (!in_range(src, dst)) return;
  adj_[src].push_back({dst, weight});
  if (dist_[src] != kUnreached && dist_[src] + weight < dist_[dst]) {
    dist_[dst] = dist_[src] + weight;
    ++resettled_;
    flood_from(dst);
  }
}

void DynamicSssp::delete_edge(std::uint64_t src, std::uint64_t dst) {
  if (!in_range(src, dst)) return;
  auto& out = adj_[src];
  // Delete-all-matches; remember whether any removed arc could have carried
  // dst's distance (a shortest-path tree arc: dist(src) + w == dist(dst)).
  bool tree_arc = false;
  const auto removed =
      static_cast<std::uint64_t>(std::erase_if(out, [&](const Arc& a) {
        if (a.dst != dst) return false;
        if (dist_[src] != kUnreached && dist_[src] + a.weight == dist_[dst]) {
          tree_arc = true;
        }
        return true;
      }));
  if (removed == 0) return;
  deleted_ += removed;
  if (tree_arc) {
    invalidate_from(dst);
    reflood_survivors();
  }
}

void DynamicSssp::apply(const StreamEdge& e) {
  if (e.is_delete()) {
    delete_edge(e.src, e.dst);
  } else {
    insert_edge(e.src, e.dst, e.weight);
  }
}

void DynamicSssp::apply_increment(std::span<const StreamEdge> edges) {
  for (const auto& e : edges) {
    if (e.is_delete()) apply(e);
  }
  for (const auto& e : edges) {
    if (!e.is_delete()) apply(e);
  }
}

void DynamicSssp::flood_from(std::uint64_t v) {
  if (v >= adj_.size()) return;
  std::deque<std::uint64_t> q{v};
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const Arc& a : adj_[u]) {
      if (dist_[u] + a.weight < dist_[a.dst]) {
        dist_[a.dst] = dist_[u] + a.weight;
        ++resettled_;
        q.push_back(a.dst);
      }
    }
  }
}

// Forward closure over exact derivation arcs, using the frozen pre-deletion
// distances: a vertex whose old distance was D un-settles every
// out-neighbor still sitting exactly at D + w across a surviving arc.
// Distances only move valid -> unreached here, so the closure is
// order-independent; it over-approximates (the neighbor may have another
// intact derivation) but never misses a vertex whose every shortest path
// crossed the deleted arc. The source (distance 0) is never cleared when
// weights are >= 1 — every wave target sits at a strictly larger distance.
void DynamicSssp::invalidate_from(std::uint64_t v) {
  std::deque<std::pair<std::uint64_t, std::uint64_t>> q;  // (vertex, old dist)
  q.emplace_back(v, dist_[v]);
  dist_[v] = kUnreached;
  ++invalidated_;
  while (!q.empty()) {
    const auto [u, old] = q.front();
    q.pop_front();
    for (const Arc& a : adj_[u]) {
      if (dist_[a.dst] != kUnreached && dist_[a.dst] == old + a.weight) {
        q.emplace_back(a.dst, dist_[a.dst]);
        dist_[a.dst] = kUnreached;
        ++invalidated_;
      }
    }
  }
}

// Multi-source re-flood from every still-settled vertex; surviving
// distances are exact, so monotone relaxation restores the true shortest
// paths of the current adjacency.
void DynamicSssp::reflood_survivors() {
  std::deque<std::uint64_t> q;
  for (std::uint64_t u = 0; u < adj_.size(); ++u) {
    if (dist_[u] != kUnreached) q.push_back(u);
  }
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const Arc& a : adj_[u]) {
      if (dist_[u] + a.weight < dist_[a.dst]) {
        dist_[a.dst] = dist_[u] + a.weight;
        ++resettled_;
        q.push_back(a.dst);
      }
    }
  }
}

std::vector<std::uint64_t> DynamicSssp::recompute() const {
  RefGraph g(adj_.size());
  for (std::uint64_t u = 0; u < adj_.size(); ++u) {
    for (const Arc& a : adj_[u]) g.add_edge(u, a.dst, a.weight);
  }
  return sssp_distances(g, source_);
}

}  // namespace ccastream::base
