#include "baseline/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_set>

namespace ccastream::base {

std::vector<std::uint64_t> bfs_levels(const RefGraph& g, std::uint64_t source) {
  std::vector<std::uint64_t> level(g.num_vertices(), kUnreached);
  if (source >= g.num_vertices()) return level;
  std::deque<std::uint64_t> q{source};
  level[source] = 0;
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const auto& arc : g.out(u)) {
      if (level[arc.dst] == kUnreached) {
        level[arc.dst] = level[u] + 1;
        q.push_back(arc.dst);
      }
    }
  }
  return level;
}

std::vector<std::uint64_t> sssp_distances(const RefGraph& g, std::uint64_t source) {
  std::vector<std::uint64_t> dist(g.num_vertices(), kUnreached);
  if (source >= g.num_vertices()) return dist;
  using Item = std::pair<std::uint64_t, std::uint64_t>;  // (dist, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    for (const auto& arc : g.out(u)) {
      const std::uint64_t nd = d + arc.weight;
      if (nd < dist[arc.dst]) {
        dist[arc.dst] = nd;
        pq.emplace(nd, arc.dst);
      }
    }
  }
  return dist;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::uint64_t n) : parent_(n) {
    for (std::uint64_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::uint64_t find(std::uint64_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint64_t a, std::uint64_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::uint64_t> parent_;
};

}  // namespace

std::vector<std::uint64_t> component_min_labels(const RefGraph& g) {
  UnionFind uf(g.num_vertices());
  for (std::uint64_t u = 0; u < g.num_vertices(); ++u) {
    for (const auto& arc : g.out(u)) uf.unite(u, arc.dst);
  }
  std::vector<std::uint64_t> min_of(g.num_vertices(), kUnreached);
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t r = uf.find(v);
    min_of[r] = std::min(min_of[r], v);
  }
  std::vector<std::uint64_t> label(g.num_vertices());
  for (std::uint64_t v = 0; v < g.num_vertices(); ++v) label[v] = min_of[uf.find(v)];
  return label;
}

std::uint64_t closed_wedges(const RefGraph& g) {
  // Adjacency sets for O(1) membership tests.
  std::vector<std::unordered_set<std::uint64_t>> nbr(g.num_vertices());
  for (std::uint64_t u = 0; u < g.num_vertices(); ++u) {
    for (const auto& arc : g.out(u)) nbr[u].insert(arc.dst);
  }
  std::uint64_t total = 0;
  for (std::uint64_t u = 0; u < g.num_vertices(); ++u) {
    const auto& out = g.out(u);
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      for (std::size_t j = i + 1; j < out.size(); ++j) {
        if (nbr[out[i].dst].contains(out[j].dst)) ++total;
      }
    }
  }
  return total;
}

double jaccard(const RefGraph& g, std::uint64_t u, std::uint64_t v) {
  std::unordered_set<std::uint64_t> nu, nv;
  for (const auto& arc : g.out(u)) nu.insert(arc.dst);
  for (const auto& arc : g.out(v)) nv.insert(arc.dst);
  std::uint64_t common = 0;
  for (const auto x : nu) {
    if (nv.contains(x)) ++common;
  }
  const std::uint64_t uni = nu.size() + nv.size() - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(uni);
}

std::vector<double> pagerank(const RefGraph& g, double damping, double epsilon) {
  const std::uint64_t n = g.num_vertices();
  std::vector<double> rank(n, 0.0), residual(n, 1.0 - damping);
  std::deque<std::uint64_t> q;
  std::vector<bool> queued(n, false);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (residual[v] >= epsilon) {
      q.push_back(v);
      queued[v] = true;
    }
  }
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    queued[u] = false;
    const double res = residual[u];
    if (res < epsilon) continue;
    rank[u] += res;
    residual[u] = 0.0;
    const auto& out = g.out(u);
    if (out.empty()) continue;
    const double per_edge = damping * res / static_cast<double>(out.size());
    for (const auto& arc : out) {
      residual[arc.dst] += per_edge;
      if (residual[arc.dst] >= epsilon && !queued[arc.dst]) {
        q.push_back(arc.dst);
        queued[arc.dst] = true;
      }
    }
  }
  for (std::uint64_t v = 0; v < n; ++v) rank[v] += residual[v];
  return rank;
}

}  // namespace ccastream::base
