// Sequential in-memory reference graph — plays the role NetworkX plays in
// the paper ("we verify the results for correctness against known results
// found using NetworkX"), and provides the CPU baselines for benchmarks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/stream_edge.hpp"

namespace ccastream::base {

/// Directed multigraph over vertices [0, n) with adjacency lists.
class RefGraph {
 public:
  explicit RefGraph(std::uint64_t num_vertices) : adj_(num_vertices) {}

  void add_edge(std::uint64_t src, std::uint64_t dst, std::uint32_t weight = 1) {
    adj_[src].push_back({dst, weight});
    ++num_edges_;
  }

  /// Removes every stored (src, dst) arc — the chip protocol's
  /// delete-all-matches semantics (see graph/stream_edge.hpp).
  void remove_edge(std::uint64_t src, std::uint64_t dst) {
    num_edges_ -= static_cast<std::uint64_t>(
        std::erase_if(adj_[src], [&](const Arc& a) { return a.dst == dst; }));
  }

  /// Applies a batch of stream ops according to their kind. Like the chip
  /// and base::DynamicBfs, an increment's deletes apply before its inserts.
  void add_edges(std::span<const StreamEdge> edges) {
    for (const auto& e : edges) {
      if (e.is_delete()) remove_edge(e.src, e.dst);
    }
    for (const auto& e : edges) {
      if (!e.is_delete()) add_edge(e.src, e.dst, e.weight);
    }
  }

  [[nodiscard]] std::uint64_t num_vertices() const noexcept { return adj_.size(); }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return num_edges_; }

  struct Arc {
    std::uint64_t dst;
    std::uint32_t weight;
  };
  [[nodiscard]] const std::vector<Arc>& out(std::uint64_t v) const { return adj_[v]; }

 private:
  std::vector<std::vector<Arc>> adj_;
  std::uint64_t num_edges_ = 0;
};

}  // namespace ccastream::base
