// Incremental (streaming) BFS on the CPU: the oracle for the chip's
// streaming dynamic BFS and the "recompute vs incremental" baseline pair
// used by the benchmark harness.
//
// Insertion rule: when edge (u, v) arrives and level(u) + 1 < level(v),
// v improves and the improvement is flooded breadth-first — exactly the
// fixed point the chip's asynchronous bfs-action diffusion converges to.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseline/algorithms.hpp"
#include "graph/stream_edge.hpp"

namespace ccastream::base {

class DynamicBfs {
 public:
  DynamicBfs(std::uint64_t num_vertices, std::uint64_t source);

  /// Inserts one edge and repairs levels incrementally.
  void insert_edge(std::uint64_t src, std::uint64_t dst);

  /// Inserts a batch (one streaming increment).
  void insert_increment(std::span<const StreamEdge> edges);

  [[nodiscard]] const std::vector<std::uint64_t>& levels() const noexcept {
    return level_;
  }
  [[nodiscard]] std::uint64_t level_of(std::uint64_t v) const { return level_[v]; }

  /// Work metric: vertices re-settled by incremental repair so far.
  [[nodiscard]] std::uint64_t vertices_resettled() const noexcept {
    return resettled_;
  }

  /// The same final levels computed from scratch (the recompute baseline).
  [[nodiscard]] std::vector<std::uint64_t> recompute() const;

 private:
  void flood_from(std::uint64_t v);

  std::vector<std::vector<std::uint64_t>> adj_;
  std::vector<std::uint64_t> level_;
  std::uint64_t source_;
  std::uint64_t resettled_ = 0;
};

}  // namespace ccastream::base
