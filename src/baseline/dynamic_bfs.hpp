// Incremental (streaming) BFS on the CPU: the oracle for the chip's
// streaming dynamic BFS and the "recompute vs incremental" baseline pair
// used by the benchmark harness.
//
// Insertion rule: when edge (u, v) arrives and level(u) + 1 < level(v),
// v improves and the improvement is flooded breadth-first — exactly the
// fixed point the chip's asynchronous bfs-action diffusion converges to.
//
// Deletion rule: removing (u, v) can only *raise* levels. If the edge was
// a potential tree edge (level(u) + 1 == level(v)), the affected region is
// invalidated by following exact level(+1) edges forward from v — every
// vertex whose shortest paths all crossed the deleted edge lies in that
// closure — and then re-flooded from the surviving (still-settled)
// frontier. Vertices invalidated conservatively get their old level back
// from an intact neighbor during the re-flood. `recompute()` stays the
// from-scratch ground truth either way.
//
// Hardening: all public entry points bounds-check vertex ids. An edge
// naming an id outside [0, num_vertices) is rejected (counted in
// `edges_rejected()`), never indexed — a malformed stream edge must not be
// UB in the oracle the chip is pinned against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseline/algorithms.hpp"
#include "graph/stream_edge.hpp"

namespace ccastream::base {

class DynamicBfs {
 public:
  DynamicBfs(std::uint64_t num_vertices, std::uint64_t source);

  /// Inserts one edge and repairs levels incrementally.
  /// Out-of-range ids are rejected (see `edges_rejected()`).
  void insert_edge(std::uint64_t src, std::uint64_t dst);

  /// Deletes every stored (src, dst) record (observation-multiset
  /// semantics, matching the chip's delete-all-matches protocol) and
  /// repairs levels via invalidate + re-flood. Unknown pairs and
  /// out-of-range ids are no-ops (the latter counted as rejected).
  void delete_edge(std::uint64_t src, std::uint64_t dst);

  /// Applies one stream op according to its kind.
  void apply(const StreamEdge& e);

  /// Applies a batch (one streaming increment): all deletes first, then
  /// all inserts — the same sub-phase order the chip's
  /// StreamingGraph::stream_increment uses for op-mixed increments, so a
  /// delete + re-insert of the same pair inside one increment nets one
  /// stored edge on both sides.
  void apply_increment(std::span<const StreamEdge> edges);

  /// Insert-only legacy entry: treats every element as an insertion
  /// regardless of its op. Prefer `apply_increment` for op-mixed streams.
  void insert_increment(std::span<const StreamEdge> edges);

  [[nodiscard]] const std::vector<std::uint64_t>& levels() const noexcept {
    return level_;
  }
  [[nodiscard]] std::uint64_t level_of(std::uint64_t v) const { return level_[v]; }

  /// Work metric: vertices whose level actually changed during incremental
  /// repair (insert relaxations + post-deletion re-settlement). Queue pops
  /// that relax nothing are not counted.
  [[nodiscard]] std::uint64_t vertices_resettled() const noexcept {
    return resettled_;
  }

  /// Vertices un-settled by deletion invalidation waves so far.
  [[nodiscard]] std::uint64_t vertices_invalidated() const noexcept {
    return invalidated_;
  }

  /// Stored edge records removed by `delete_edge` so far.
  [[nodiscard]] std::uint64_t edges_deleted() const noexcept { return deleted_; }

  /// Ops dropped because an endpoint id was out of range.
  [[nodiscard]] std::uint64_t edges_rejected() const noexcept { return rejected_; }

  /// The same final levels computed from scratch (the recompute baseline).
  [[nodiscard]] std::vector<std::uint64_t> recompute() const;

 private:
  [[nodiscard]] bool in_range(std::uint64_t src, std::uint64_t dst) noexcept;
  void flood_from(std::uint64_t v);
  void invalidate_from(std::uint64_t v);
  void reflood_survivors();

  std::vector<std::vector<std::uint64_t>> adj_;
  std::vector<std::uint64_t> level_;
  std::uint64_t source_;
  std::uint64_t resettled_ = 0;
  std::uint64_t invalidated_ = 0;
  std::uint64_t deleted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace ccastream::base
