#include "baseline/dynamic_bfs.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "baseline/graph.hpp"

namespace ccastream::base {

DynamicBfs::DynamicBfs(std::uint64_t num_vertices, std::uint64_t source)
    : adj_(num_vertices), level_(num_vertices, kUnreached), source_(source) {
  if (source_ < num_vertices) level_[source_] = 0;
}

bool DynamicBfs::in_range(std::uint64_t src, std::uint64_t dst) noexcept {
  if (src < adj_.size() && dst < adj_.size()) return true;
  ++rejected_;
  return false;
}

void DynamicBfs::insert_edge(std::uint64_t src, std::uint64_t dst) {
  if (!in_range(src, dst)) return;
  adj_[src].push_back(dst);
  if (level_[src] != kUnreached && level_[src] + 1 < level_[dst]) {
    level_[dst] = level_[src] + 1;
    ++resettled_;
    flood_from(dst);
  }
}

void DynamicBfs::delete_edge(std::uint64_t src, std::uint64_t dst) {
  if (!in_range(src, dst)) return;
  auto& out = adj_[src];
  const auto removed = static_cast<std::uint64_t>(std::erase(out, dst));
  if (removed == 0) return;
  deleted_ += removed;
  // The pair was a potential BFS tree edge only when dst sits exactly one
  // level below src; any other shape cannot have carried dst's level.
  if (level_[src] != kUnreached && level_[dst] == level_[src] + 1) {
    invalidate_from(dst);
    reflood_survivors();
  }
}

void DynamicBfs::apply(const StreamEdge& e) {
  if (e.is_delete()) {
    delete_edge(e.src, e.dst);
  } else {
    insert_edge(e.src, e.dst);
  }
}

void DynamicBfs::apply_increment(std::span<const StreamEdge> edges) {
  for (const auto& e : edges) {
    if (e.is_delete()) apply(e);
  }
  for (const auto& e : edges) {
    if (!e.is_delete()) apply(e);
  }
}

void DynamicBfs::insert_increment(std::span<const StreamEdge> edges) {
  for (const auto& e : edges) insert_edge(e.src, e.dst);
}

void DynamicBfs::flood_from(std::uint64_t v) {
  if (v >= adj_.size()) return;
  std::deque<std::uint64_t> q{v};
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const std::uint64_t w : adj_[u]) {
      if (level_[u] + 1 < level_[w]) {
        level_[w] = level_[u] + 1;
        ++resettled_;
        q.push_back(w);
      }
    }
  }
}

// Forward closure over exact tree-shaped edges: a vertex at level L
// un-settles every out-neighbor still sitting at L + 1. Levels only move
// valid -> unreached here, so the closure is order-independent; it
// over-approximates (a neighbor at L + 1 may have another intact parent)
// but never misses a vertex whose every shortest path crossed a deleted
// edge. The source (level 0) can never be invalidated: the wave only
// targets levels >= 1.
void DynamicBfs::invalidate_from(std::uint64_t v) {
  std::deque<std::pair<std::uint64_t, std::uint64_t>> q;  // (vertex, old level)
  q.emplace_back(v, level_[v]);
  level_[v] = kUnreached;
  ++invalidated_;
  while (!q.empty()) {
    const auto [u, old] = q.front();
    q.pop_front();
    for (const std::uint64_t w : adj_[u]) {
      if (level_[w] == old + 1) {
        q.emplace_back(w, level_[w]);
        level_[w] = kUnreached;
        ++invalidated_;
      }
    }
  }
}

// Multi-source re-flood from every still-settled vertex. Surviving levels
// are exact (deletion cannot shorten a path, and any vertex that depended
// only on the deleted edge is in the invalidation closure), so monotone
// relaxation from the surviving frontier restores the true BFS fixed
// point over the current adjacency.
void DynamicBfs::reflood_survivors() {
  std::deque<std::uint64_t> q;
  for (std::uint64_t u = 0; u < adj_.size(); ++u) {
    if (level_[u] != kUnreached) q.push_back(u);
  }
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const std::uint64_t w : adj_[u]) {
      if (level_[u] + 1 < level_[w]) {
        level_[w] = level_[u] + 1;
        ++resettled_;
        q.push_back(w);
      }
    }
  }
}

std::vector<std::uint64_t> DynamicBfs::recompute() const {
  RefGraph g(adj_.size());
  for (std::uint64_t u = 0; u < adj_.size(); ++u) {
    for (const std::uint64_t v : adj_[u]) g.add_edge(u, v);
  }
  return bfs_levels(g, source_);
}

}  // namespace ccastream::base
