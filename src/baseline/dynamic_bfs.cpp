#include "baseline/dynamic_bfs.hpp"

#include <deque>

#include "baseline/graph.hpp"

namespace ccastream::base {

DynamicBfs::DynamicBfs(std::uint64_t num_vertices, std::uint64_t source)
    : adj_(num_vertices), level_(num_vertices, kUnreached), source_(source) {
  if (source_ < num_vertices) level_[source_] = 0;
}

void DynamicBfs::insert_edge(std::uint64_t src, std::uint64_t dst) {
  adj_[src].push_back(dst);
  if (level_[src] != kUnreached && level_[src] + 1 < level_[dst]) {
    level_[dst] = level_[src] + 1;
    flood_from(dst);
  }
}

void DynamicBfs::insert_increment(std::span<const StreamEdge> edges) {
  for (const auto& e : edges) insert_edge(e.src, e.dst);
}

void DynamicBfs::flood_from(std::uint64_t v) {
  std::deque<std::uint64_t> q{v};
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    ++resettled_;
    for (const std::uint64_t w : adj_[u]) {
      if (level_[u] + 1 < level_[w]) {
        level_[w] = level_[u] + 1;
        q.push_back(w);
      }
    }
  }
}

std::vector<std::uint64_t> DynamicBfs::recompute() const {
  RefGraph g(adj_.size());
  for (std::uint64_t u = 0; u < adj_.size(); ++u) {
    for (const std::uint64_t v : adj_[u]) g.add_edge(u, v);
  }
  return bfs_levels(g, source_);
}

}  // namespace ccastream::base
