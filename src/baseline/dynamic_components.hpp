// Incremental (streaming) min-label propagation on the CPU: the deletion
// oracle for the chip's streaming components, mirroring base::DynamicBfs.
//
// The fixed point is *directed*: label(v) = min{ u : u reaches v along
// stored arcs } (every vertex reaches itself, so labels are never
// unsettled). On a symmetrized stream this equals the undirected component
// minimum (base::component_min_labels), but a sliding window can expire
// the two arcs of a symmetric pair in different increments, so windowed
// runs must be pinned against this directed oracle.
//
// Insertion rule: when arc (u, v) arrives and label(u) < label(v), v
// adopts label(u) and the improvement floods forward.
//
// Deletion rule: removing (u, v) erases every stored (u, v) arc. If
// label(v) == label(u) and v is not its own label source, v's label may
// have been carried across the deleted arc: the equal-label closure
// forward of v is invalidated — each cleared vertex resets to its OWN id,
// and the label's source vertex (vid == label) is protected, its label
// depends on no arc — then every vertex re-floods its current label.
// Surviving labels still name a vertex that reaches them (at a min-label
// fixed point, every vertex on a derivation path of label L holds exactly
// L, so the closure covers the whole severed region), which makes the
// re-flood converge to the true directed fixed point. `recompute()` is the
// from-scratch ground truth: ascending-id BFS sweeps, each skipping
// already-labelled vertices, O(V + E).
//
// Hardening mirrors DynamicBfs: out-of-range endpoint ids are rejected and
// counted, never indexed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/stream_edge.hpp"

namespace ccastream::base {

class DynamicComponents {
 public:
  explicit DynamicComponents(std::uint64_t num_vertices);

  /// Inserts one arc and repairs labels incrementally (weight ignored).
  void insert_edge(std::uint64_t src, std::uint64_t dst);

  /// Deletes every stored (src, dst) arc and repairs labels via
  /// invalidate + re-flood. Unknown pairs and out-of-range ids are no-ops
  /// (the latter counted as rejected).
  void delete_edge(std::uint64_t src, std::uint64_t dst);

  /// Applies one stream op according to its kind.
  void apply(const StreamEdge& e);

  /// Applies a batch (one streaming increment): deletes first, then
  /// inserts — the chip's stream_increment sub-phase order.
  void apply_increment(std::span<const StreamEdge> edges);

  [[nodiscard]] const std::vector<std::uint64_t>& labels() const noexcept {
    return label_;
  }
  [[nodiscard]] std::uint64_t label_of(std::uint64_t v) const { return label_[v]; }

  /// Vertices whose label actually changed during incremental repair.
  [[nodiscard]] std::uint64_t vertices_resettled() const noexcept {
    return resettled_;
  }
  /// Vertices reset to their own id by deletion invalidation waves so far.
  [[nodiscard]] std::uint64_t vertices_invalidated() const noexcept {
    return invalidated_;
  }
  /// Stored arcs removed by `delete_edge` so far.
  [[nodiscard]] std::uint64_t edges_deleted() const noexcept { return deleted_; }
  /// Ops dropped because an endpoint id was out of range.
  [[nodiscard]] std::uint64_t edges_rejected() const noexcept { return rejected_; }

  /// The same final labels computed from scratch.
  [[nodiscard]] std::vector<std::uint64_t> recompute() const;

 private:
  [[nodiscard]] bool in_range(std::uint64_t src, std::uint64_t dst) noexcept;
  void flood_from(std::uint64_t v);
  void invalidate_from(std::uint64_t v, std::uint64_t expected);
  void reflood_all();

  std::vector<std::vector<std::uint64_t>> adj_;
  std::vector<std::uint64_t> label_;
  std::uint64_t resettled_ = 0;
  std::uint64_t invalidated_ = 0;
  std::uint64_t deleted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace ccastream::base
