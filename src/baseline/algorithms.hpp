// Reference algorithms over RefGraph: the correctness oracles for every
// on-chip application, and the sequential baselines for benchmarks.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "baseline/graph.hpp"

namespace ccastream::base {

inline constexpr std::uint64_t kUnreached = std::numeric_limits<std::uint64_t>::max();

/// Directed BFS levels from `source` (kUnreached where unreachable).
[[nodiscard]] std::vector<std::uint64_t> bfs_levels(const RefGraph& g,
                                                    std::uint64_t source);

/// Dijkstra distances from `source` (non-negative weights).
[[nodiscard]] std::vector<std::uint64_t> sssp_distances(const RefGraph& g,
                                                        std::uint64_t source);

/// Per-vertex minimum vertex id of the *undirected* connected component
/// (edges treated as bidirectional; union-find).
[[nodiscard]] std::vector<std::uint64_t> component_min_labels(const RefGraph& g);

/// Closed wedges: sum over u of unordered neighbour pairs {v, w} of u with
/// an edge between v and w. On a simple undirected graph (both arc
/// directions present) this equals 3x the triangle count — the exact
/// quantity the on-chip TriangleCounter measures.
[[nodiscard]] std::uint64_t closed_wedges(const RefGraph& g);

/// Jaccard coefficient of the out-neighbour sets of u and v.
[[nodiscard]] double jaccard(const RefGraph& g, std::uint64_t u, std::uint64_t v);

/// Sequential delta-push PageRank to residual threshold epsilon, matching
/// the semantics of the on-chip apps::PageRank (rank + final residual).
[[nodiscard]] std::vector<double> pagerank(const RefGraph& g, double damping,
                                           double epsilon);

}  // namespace ccastream::base
