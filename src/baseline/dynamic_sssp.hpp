// Incremental (streaming) single-source shortest paths on the CPU: the
// deletion oracle for the chip's streaming SSSP, mirroring
// base::DynamicBfs with weighted relaxation.
//
// Insertion rule: when arc (u, v, w) arrives and dist(u) + w < dist(v),
// v improves and the improvement floods forward (chaotic relaxation —
// order does not matter for the fixed point on non-negative weights).
//
// Deletion rule: removing (u, v) erases every stored (u, v) arc (the
// chip's delete-all-matches semantics). If any removed arc was a potential
// shortest-path tree arc (dist(u) + w == dist(v)), the affected region is
// invalidated by following exact-derivation arcs forward from v over the
// *surviving* adjacency — clearing every vertex whose stored distance may
// have been carried across the deleted arc, using the frozen pre-deletion
// distances — then re-flooded from every still-settled vertex. Surviving
// distances are exact (deleting an arc cannot shorten a path), so the
// re-flood restores the true fixed point. `recompute()` is the from-scratch
// Dijkstra ground truth.
//
// Hardening mirrors DynamicBfs: out-of-range endpoint ids are rejected and
// counted, never indexed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "baseline/algorithms.hpp"
#include "graph/stream_edge.hpp"

namespace ccastream::base {

class DynamicSssp {
 public:
  DynamicSssp(std::uint64_t num_vertices, std::uint64_t source);

  /// Inserts one weighted arc and repairs distances incrementally.
  void insert_edge(std::uint64_t src, std::uint64_t dst, std::uint32_t weight = 1);

  /// Deletes every stored (src, dst) arc and repairs distances via
  /// invalidate + re-flood. Unknown pairs and out-of-range ids are no-ops
  /// (the latter counted as rejected).
  void delete_edge(std::uint64_t src, std::uint64_t dst);

  /// Applies one stream op according to its kind.
  void apply(const StreamEdge& e);

  /// Applies a batch (one streaming increment): deletes first, then
  /// inserts — the chip's stream_increment sub-phase order.
  void apply_increment(std::span<const StreamEdge> edges);

  [[nodiscard]] const std::vector<std::uint64_t>& distances() const noexcept {
    return dist_;
  }
  [[nodiscard]] std::uint64_t distance_of(std::uint64_t v) const { return dist_[v]; }

  /// Vertices whose distance actually changed during incremental repair.
  [[nodiscard]] std::uint64_t vertices_resettled() const noexcept {
    return resettled_;
  }
  /// Vertices un-settled by deletion invalidation waves so far.
  [[nodiscard]] std::uint64_t vertices_invalidated() const noexcept {
    return invalidated_;
  }
  /// Stored arcs removed by `delete_edge` so far.
  [[nodiscard]] std::uint64_t edges_deleted() const noexcept { return deleted_; }
  /// Ops dropped because an endpoint id was out of range.
  [[nodiscard]] std::uint64_t edges_rejected() const noexcept { return rejected_; }

  /// The same final distances computed from scratch (Dijkstra).
  [[nodiscard]] std::vector<std::uint64_t> recompute() const;

 private:
  struct Arc {
    std::uint64_t dst;
    std::uint32_t weight;
  };

  [[nodiscard]] bool in_range(std::uint64_t src, std::uint64_t dst) noexcept;
  void flood_from(std::uint64_t v);
  void invalidate_from(std::uint64_t v);
  void reflood_survivors();

  std::vector<std::vector<Arc>> adj_;
  std::vector<std::uint64_t> dist_;
  std::uint64_t source_;
  std::uint64_t resettled_ = 0;
  std::uint64_t invalidated_ = 0;
  std::uint64_t deleted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace ccastream::base
