#include "baseline/dynamic_components.hpp"

#include <algorithm>
#include <deque>

namespace ccastream::base {

DynamicComponents::DynamicComponents(std::uint64_t num_vertices)
    : adj_(num_vertices), label_(num_vertices) {
  for (std::uint64_t v = 0; v < num_vertices; ++v) label_[v] = v;
}

bool DynamicComponents::in_range(std::uint64_t src, std::uint64_t dst) noexcept {
  if (src < adj_.size() && dst < adj_.size()) return true;
  ++rejected_;
  return false;
}

void DynamicComponents::insert_edge(std::uint64_t src, std::uint64_t dst) {
  if (!in_range(src, dst)) return;
  adj_[src].push_back(dst);
  if (label_[src] < label_[dst]) {
    label_[dst] = label_[src];
    ++resettled_;
    flood_from(dst);
  }
}

void DynamicComponents::delete_edge(std::uint64_t src, std::uint64_t dst) {
  if (!in_range(src, dst)) return;
  auto& out = adj_[src];
  const auto removed = static_cast<std::uint64_t>(std::erase(out, dst));
  if (removed == 0) return;
  deleted_ += removed;
  // The arc could have carried dst's label only if both ends hold the same
  // label and dst is not the label's own source.
  if (label_[src] == label_[dst] && label_[dst] != dst) {
    invalidate_from(dst, label_[dst]);
    reflood_all();
  }
}

void DynamicComponents::apply(const StreamEdge& e) {
  if (e.is_delete()) {
    delete_edge(e.src, e.dst);
  } else {
    insert_edge(e.src, e.dst);
  }
}

void DynamicComponents::apply_increment(std::span<const StreamEdge> edges) {
  for (const auto& e : edges) {
    if (e.is_delete()) apply(e);
  }
  for (const auto& e : edges) {
    if (!e.is_delete()) apply(e);
  }
}

void DynamicComponents::flood_from(std::uint64_t v) {
  if (v >= adj_.size()) return;
  std::deque<std::uint64_t> q{v};
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const std::uint64_t w : adj_[u]) {
      if (label_[u] < label_[w]) {
        label_[w] = label_[u];
        ++resettled_;
        q.push_back(w);
      }
    }
  }
}

// Equal-label closure forward of v with the constant expected label L: at a
// min-label fixed point every vertex on a derivation path of L holds
// exactly L, so following label == L arcs covers every vertex whose every
// derivation of L crossed the deleted arc. Cleared vertices reset to their
// own id (a valid label — every vertex reaches itself), which also makes
// revisits skip (own id != L since the source vertex L is protected). The
// protection is sound: if a derivation path runs through vertex L itself,
// its suffix from L is an intact derivation avoiding the deleted arc.
void DynamicComponents::invalidate_from(std::uint64_t v, std::uint64_t expected) {
  std::deque<std::uint64_t> q{v};
  label_[v] = v;
  ++invalidated_;
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const std::uint64_t w : adj_[u]) {
      if (label_[w] == expected && w != expected) {
        label_[w] = w;
        ++invalidated_;
        q.push_back(w);
      }
    }
  }
}

// Every label is valid after invalidation (own id or a surviving label that
// still reaches its holder), so min-label relaxation seeded at every vertex
// converges to the true directed fixed point.
void DynamicComponents::reflood_all() {
  std::deque<std::uint64_t> q(adj_.size());
  for (std::uint64_t u = 0; u < adj_.size(); ++u) q[u] = u;
  while (!q.empty()) {
    const std::uint64_t u = q.front();
    q.pop_front();
    for (const std::uint64_t w : adj_[u]) {
      if (label_[u] < label_[w]) {
        label_[w] = label_[u];
        ++resettled_;
        q.push_back(w);
      }
    }
  }
}

// Ascending-id BFS sweeps: vertex v seeds a sweep only if nothing smaller
// reached it; the sweep prunes at already-labelled vertices (their closure
// was labelled by a smaller seed). Each vertex is visited once — O(V + E).
std::vector<std::uint64_t> DynamicComponents::recompute() const {
  constexpr std::uint64_t kUnset = ~0ull;
  std::vector<std::uint64_t> out(adj_.size(), kUnset);
  std::deque<std::uint64_t> q;
  for (std::uint64_t v = 0; v < adj_.size(); ++v) {
    if (out[v] != kUnset) continue;
    out[v] = v;
    q.push_back(v);
    while (!q.empty()) {
      const std::uint64_t u = q.front();
      q.pop_front();
      for (const std::uint64_t w : adj_[u]) {
        if (out[w] == kUnset) {
          out[w] = v;
          q.push_back(w);
        }
      }
    }
  }
  return out;
}

}  // namespace ccastream::base
