#include "apps/components.hpp"

namespace ccastream::apps {

using graph::VertexFragment;

StreamingComponents::StreamingComponents(graph::GraphProtocol& protocol)
    : proto_(protocol),
      h_cc_(protocol.chip().handlers().register_handler(
          "app.components",
          [this](rt::Context& ctx, const rt::Action& a) { handle_label(ctx, a); })),
      repair_(protocol,
              MonotoneRaiseRepair::Policy{
                  .name = "components",
                  .word = kLabelWord,
                  .unsettled = kNoLabel,
                  .value_handler = h_cc_,
                  .step = MonotoneRaiseRepair::EdgeStep::kSame,
                  .seed = MonotoneRaiseRepair::SeedWhen::kSameLabel,
                  .reset = MonotoneRaiseRepair::ResetTo::kSelfId}) {}

graph::AppHooks StreamingComponents::make_hooks() const {
  graph::AppHooks hooks;
  hooks.ghost_init = initial_state();
  hooks.on_edge_inserted = [this](rt::Context& ctx, VertexFragment& frag,
                                  const graph::EdgeRecord& e) {
    if (frag.app[kLabelWord] != kNoLabel) {
      ctx.propagate(rt::make_action(h_cc_, e.dst, frag.app[kLabelWord]));
      ctx.charge(1);
    }
  };
  hooks.on_ghost_linked = [this](rt::Context& ctx, VertexFragment& frag,
                                 rt::GlobalAddress ghost) {
    if (frag.app[kLabelWord] != kNoLabel) {
      ctx.propagate(rt::make_action(h_cc_, ghost, frag.app[kLabelWord]));
      ctx.charge(1);
    }
  };
  // Deletion repair (see repair.hpp; reset-to-self-id keeps every label
  // valid, so the resettle phase re-seeds the whole graph).
  repair_.attach(hooks);
  return hooks;
}

void StreamingComponents::install() { proto_.set_hooks(make_hooks()); }

void StreamingComponents::seed_labels(graph::StreamingGraph& g) const {
  for (std::uint64_t vid = 0; vid < g.num_vertices(); ++vid) {
    g.set_root_app_word(vid, kLabelWord, vid);
  }
}

rt::Word StreamingComponents::label_of(const graph::StreamingGraph& g,
                                       std::uint64_t vid) const {
  return g.app_word(vid, kLabelWord);
}

void StreamingComponents::handle_label(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::Word label = a.args[0];
  ctx.charge(1);
  if (label >= frag->app[kLabelWord]) return;

  frag->app[kLabelWord] = label;
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_cc_, e.dst, label));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_cc_, ghost.value(), label));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_cc_, rt::kNullAddress, label));
    }
  }
  if (!frag->rhizome_next.is_null()) {
    ctx.propagate(rt::make_action(h_cc_, frag->rhizome_next, label));
  }
}

}  // namespace ccastream::apps
