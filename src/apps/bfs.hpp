// Asynchronous streaming dynamic BFS — the paper's demonstration
// application (Listings 4 & 5).
//
// Levels propagate monotonically: bfs-action(v, lvl) lowers v's level if
// lvl is better and re-diffuses lvl+1 along v's edges. Streamed edge
// insertions chain into bfs-action through the on_edge_inserted hook, so
// results of previous computation are *updated*, never recomputed from
// scratch. Ghost fragments keep a level copy; the ghost link forwards the
// level unchanged (a ghost is the same logical vertex).
//
// Deletions break monotonicity (removing a tree edge must RAISE levels).
// BFS instantiates the shared monotone-raise repair framework
// (apps/repair.hpp) with the level policy: the bfs-unsettle wave follows
// exact level(+1) edges from each deleted tree edge's destination, and
// bfs-resettle re-diffuses every surviving level until monotone diffusion
// restores the exact BFS fixed point of the post-increment graph.
// StreamingGraph::stream_increment orchestrates the phases for op-mixed
// increments; see repair.hpp for the wave semantics and the correctness
// argument.
//
// Deletion repair requires rhizomes == 1 (enforced by StreamingGraph);
// resettle intentionally does not traverse the rhizome ring, which would
// cycle without an improvement check.
#pragma once

#include <cstdint>

#include "apps/repair.hpp"
#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class StreamingBfs {
 public:
  /// Sentinel "no valid BFS level" (the paper's max-level).
  static constexpr rt::Word kUnreached = ~0ull;
  /// App word that stores the level.
  static constexpr std::size_t kLevelWord = 0;

  /// Registers the bfs-action handler (and the repair framework's
  /// unsettle/resettle pair) on the protocol's chip.
  explicit StreamingBfs(graph::GraphProtocol& protocol);

  /// Installs the BFS hooks on the protocol (insert-edge will chain into
  /// bfs-action from then on). Call before streaming.
  void install();

  /// Hooks without installing (for callers composing their own AppHooks).
  [[nodiscard]] graph::AppHooks make_hooks() const;

  /// Initial app state for fragments (level = unreached).
  [[nodiscard]] static graph::AppState initial_state() {
    graph::AppState s{};
    s[kLevelWord] = kUnreached;
    return s;
  }

  /// Marks `vid` as the BFS source (level 0) before streaming starts.
  void set_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  /// Injects bfs-action(root(vid), 0) — seeds or re-seeds a BFS on a graph
  /// that already has edges. Run the chip afterwards.
  void kick_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  /// The computed level of a vertex (kUnreached if not reachable).
  [[nodiscard]] rt::Word level_of(const graph::StreamingGraph& g,
                                  std::uint64_t vid) const;

  [[nodiscard]] rt::HandlerId handler() const noexcept { return h_bfs_; }
  [[nodiscard]] rt::HandlerId unsettle_handler() const noexcept {
    return repair_.unsettle_handler();
  }
  [[nodiscard]] rt::HandlerId resettle_handler() const noexcept {
    return repair_.resettle_handler();
  }

 private:
  void handle_bfs(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_bfs_ = 0;
  /// Deletion repair: level policy over the shared framework. Constructed
  /// after h_bfs_ so handler-id order stays (bfs, unsettle, resettle).
  MonotoneRaiseRepair repair_;
};

}  // namespace ccastream::apps
