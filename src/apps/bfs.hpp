// Asynchronous streaming dynamic BFS — the paper's demonstration
// application (Listings 4 & 5).
//
// Levels propagate monotonically: bfs-action(v, lvl) lowers v's level if
// lvl is better and re-diffuses lvl+1 along v's edges. Streamed edge
// insertions chain into bfs-action through the on_edge_inserted hook, so
// results of previous computation are *updated*, never recomputed from
// scratch. Ghost fragments keep a level copy; the ghost link forwards the
// level unchanged (a ghost is the same logical vertex).
//
// Deletions break monotonicity (removing a tree edge must RAISE levels),
// so the app adds two more actions and a host-orchestrated repair, run by
// StreamingGraph::stream_increment for op-mixed increments:
//
//   bfs-unsettle(v, expected): if v still sits exactly at `expected`, its
//     level may have depended on a severed edge — clear it to unreached
//     and cascade unsettle(w, expected+1) along local edges (forwarding
//     down the ghost chain with `expected` unchanged). The wave follows
//     exact level(+1) edges only, so it is order-independent and can never
//     touch the source (expected >= 1 always). It over-approximates —
//     a cleared vertex may have had another intact parent — but provably
//     covers every vertex whose every shortest path used a deleted edge.
//
//   bfs-resettle(v, lvl): adopt lvl if better, then re-diffuse the current
//     level along ALL local edges even though nothing improved (the plain
//     bfs-action only diffuses on improvement). Host repair seeds this at
//     every surviving vertex; monotone diffusion then restores the exact
//     BFS fixed point of the post-increment graph: surviving levels are
//     still exact (deletions cannot shorten paths), and each invalidated
//     vertex regains its true level from its shortest-path predecessor by
//     induction along that path.
//
// Deletion repair requires rhizomes == 1 (enforced by StreamingGraph);
// resettle intentionally does not traverse the rhizome ring, which would
// cycle without an improvement check.
#pragma once

#include <cstdint>
#include <span>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"
#include "graph/stream_edge.hpp"

namespace ccastream::apps {

class StreamingBfs {
 public:
  /// Sentinel "no valid BFS level" (the paper's max-level).
  static constexpr rt::Word kUnreached = ~0ull;
  /// App word that stores the level.
  static constexpr std::size_t kLevelWord = 0;

  /// Registers the bfs-action handler on the protocol's chip.
  explicit StreamingBfs(graph::GraphProtocol& protocol);

  /// Installs the BFS hooks on the protocol (insert-edge will chain into
  /// bfs-action from then on). Call before streaming.
  void install();

  /// Hooks without installing (for callers composing their own AppHooks).
  [[nodiscard]] graph::AppHooks make_hooks() const;

  /// Initial app state for fragments (level = unreached).
  [[nodiscard]] static graph::AppState initial_state() {
    graph::AppState s{};
    s[kLevelWord] = kUnreached;
    return s;
  }

  /// Marks `vid` as the BFS source (level 0) before streaming starts.
  void set_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  /// Injects bfs-action(root(vid), 0) — seeds or re-seeds a BFS on a graph
  /// that already has edges. Run the chip afterwards.
  void kick_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  /// The computed level of a vertex (kUnreached if not reachable).
  [[nodiscard]] rt::Word level_of(const graph::StreamingGraph& g,
                                  std::uint64_t vid) const;

  [[nodiscard]] rt::HandlerId handler() const noexcept { return h_bfs_; }
  [[nodiscard]] rt::HandlerId unsettle_handler() const noexcept { return h_unsettle_; }
  [[nodiscard]] rt::HandlerId resettle_handler() const noexcept { return h_resettle_; }

 private:
  void handle_bfs(rt::Context& ctx, const rt::Action& a);
  void handle_unsettle(rt::Context& ctx, const rt::Action& a);
  void handle_resettle(rt::Context& ctx, const rt::Action& a);

  /// Host repair phase I: seed un-settle waves for the increment's deletes.
  bool seed_invalidation(graph::StreamingGraph& g,
                         std::span<const StreamEdge> ops) const;
  /// Host repair phase R: seed re-settlement kicks.
  void seed_resettle(graph::StreamingGraph& g, std::span<const StreamEdge> ops,
                     bool invalidated) const;

  graph::GraphProtocol& proto_;
  rt::HandlerId h_bfs_ = 0;
  rt::HandlerId h_unsettle_ = 0;
  rt::HandlerId h_resettle_ = 0;
};

}  // namespace ccastream::apps
