#include "apps/triangles.hpp"

#include <cassert>
#include <stdexcept>

#include "runtime/check.hpp"

namespace ccastream::apps {

using graph::VertexFragment;

namespace {

/// Forwards `a` retargeted to the fragment's ghost if the link is ready.
/// Post-construction queries run on a quiescent chip, so futures are either
/// empty (end of chain) or ready; pending links cannot occur.
void forward_down_chain(rt::Context& ctx, VertexFragment& frag, rt::Action a) {
  for (rt::FutureAddr& ghost : frag.ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      a.target = ghost.value();
      ctx.propagate(a);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// TriangleCounter
// ---------------------------------------------------------------------------

TriangleCounter::TriangleCounter(graph::GraphProtocol& protocol)
    : proto_(protocol) {
  assert(proto_.rpvo_config().ghost_fanout == 1 &&
         "triangle counting requires a chain RPVO (ghost_fanout == 1)");
  h_kick_ = proto_.chip().handlers().register_handler(
      "app.tri-kick",
      [this](rt::Context& ctx, const rt::Action& a) { handle_kick(ctx, a); });
  h_cross_ = proto_.chip().handlers().register_handler(
      "app.tri-cross",
      [this](rt::Context& ctx, const rt::Action& a) { handle_cross(ctx, a); });
  h_probe_ = proto_.chip().handlers().register_handler(
      "app.tri-probe",
      [this](rt::Context& ctx, const rt::Action& a) { handle_probe(ctx, a); });
}

void TriangleCounter::start(graph::StreamingGraph& g) const {
  if (g.rhizome_count() != 1) {
    throw std::invalid_argument(
        "TriangleCounter requires rhizomes == 1: probes only walk one "
        "rhizome's chain");
  }
  if (g.protocol().stats().edges_deleted > 0 ||
      g.protocol().stats().deletes_unmatched > 0) {
    // Wedge counts accumulated during streaming are not unwound by
    // structural deletion — a deleted graph would report phantom
    // triangles. Better a loud deterministic abort than a wrong count.
    rt::fatal_misuse("TriangleCounter::start on a graph that streamed deletions",
                     __FILE__, __LINE__);
  }
  sim::Chip& chip = g.chip();
  for (std::uint64_t vid = 0; vid < g.num_vertices(); ++vid) {
    for (const auto addr : g.fragments_of(vid)) {
      chip.as<VertexFragment>(addr)->app[kCountWord] = 0;
    }
    chip.inject_local(rt::make_action(h_kick_, g.root_of(vid)));
  }
}

std::uint64_t TriangleCounter::closed_wedges(const graph::StreamingGraph& g) const {
  std::uint64_t total = 0;
  for (std::uint64_t vid = 0; vid < g.num_vertices(); ++vid) {
    total += g.app_word_chain_sum(vid, kCountWord);
  }
  return total;
}

// tri-kick(frag): probe local pairs, cross local edges against the rest of
// the chain, and continue the kick down the chain.
void TriangleCounter::handle_kick(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const auto n = frag->edges.size();
  ctx.charge(static_cast<std::uint32_t>(n * (n > 0 ? n - 1 : 0) / 2 + 1));

  // Pairs inside this fragment: ask v_i whether it stores an edge to w_j.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ctx.propagate(rt::make_action(h_probe_, frag->edges[i].dst,
                                    frag->edges[j].dst.pack()));
    }
  }
  // Pairs straddling this fragment and everything below it in the chain:
  // one cross wave per local edge.
  for (const graph::EdgeRecord& e : frag->edges) {
    forward_down_chain(ctx, *frag, rt::make_action(h_cross_, rt::kNullAddress,
                                                   e.dst.pack()));
  }
  forward_down_chain(ctx, *frag, rt::make_action(h_kick_, rt::kNullAddress));
}

// tri-cross(frag, v): pair v against this fragment's local edges, then keep
// walking down.
void TriangleCounter::handle_cross(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::GlobalAddress v = rt::GlobalAddress::unpack(a.args[0]);
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()) + 1);
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_probe_, v, e.dst.pack()));
  }
  forward_down_chain(ctx, *frag, rt::make_action(h_cross_, rt::kNullAddress,
                                                 a.args[0]));
}

// tri-probe(frag of v, w): does v store an edge to w? Found -> count here;
// miss -> try the next fragment in v's chain; end of chain -> not a triangle.
void TriangleCounter::handle_probe(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::GlobalAddress w = rt::GlobalAddress::unpack(a.args[0]);
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()) + 1);
  for (const graph::EdgeRecord& e : frag->edges) {
    if (e.dst == w) {
      ++frag->app[kCountWord];
      return;
    }
  }
  forward_down_chain(ctx, *frag, rt::make_action(h_probe_, rt::kNullAddress,
                                                 a.args[0]));
}

// ---------------------------------------------------------------------------
// JaccardQuery
// ---------------------------------------------------------------------------

JaccardQuery::JaccardQuery(graph::GraphProtocol& protocol) : proto_(protocol) {
  h_kick_ = proto_.chip().handlers().register_handler(
      "app.jacc-kick",
      [this](rt::Context& ctx, const rt::Action& a) { handle_kick(ctx, a); });
  h_probe_ = proto_.chip().handlers().register_handler(
      "app.jacc-probe",
      [this](rt::Context& ctx, const rt::Action& a) { handle_probe(ctx, a); });
  h_hit_ = proto_.chip().handlers().register_handler(
      "app.jacc-hit",
      [this](rt::Context& ctx, const rt::Action& a) { handle_hit(ctx, a); });
}

double JaccardQuery::query(graph::StreamingGraph& g, std::uint64_t u,
                           std::uint64_t v) const {
  if (g.rhizome_count() != 1) {
    throw std::invalid_argument("JaccardQuery requires rhizomes == 1");
  }
  sim::Chip& chip = g.chip();
  chip.as<VertexFragment>(g.root_of(u))->app[kCommonWord] = 0;
  chip.inject_local(rt::make_action(h_kick_, g.root_of(u), g.root_of(v).pack(),
                                    g.root_of(u).pack()));
  g.run();
  const auto common = static_cast<double>(common_neighbors(g, u));
  const auto du = static_cast<double>(g.stored_degree(u));
  const auto dv = static_cast<double>(g.stored_degree(v));
  const double uni = du + dv - common;
  return uni <= 0.0 ? 0.0 : common / uni;
}

std::uint64_t JaccardQuery::common_neighbors(const graph::StreamingGraph& g,
                                             std::uint64_t u) const {
  return g.app_word(u, kCommonWord);
}

// jacc-kick(frag of u, v, u_root): probe each local neighbour against v.
void JaccardQuery::handle_kick(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::GlobalAddress v = rt::GlobalAddress::unpack(a.args[0]);
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()) + 1);
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_probe_, v, e.dst.pack(), a.args[1]));
  }
  forward_down_chain(ctx, *frag,
                     rt::make_action(h_kick_, rt::kNullAddress, a.args[0], a.args[1]));
}

// jacc-probe(frag of v, w, u_root): hit -> report to u's root; miss -> walk.
void JaccardQuery::handle_probe(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::GlobalAddress w = rt::GlobalAddress::unpack(a.args[0]);
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()) + 1);
  for (const graph::EdgeRecord& e : frag->edges) {
    if (e.dst == w) {
      ctx.propagate(rt::make_action(h_hit_, rt::GlobalAddress::unpack(a.args[1])));
      return;
    }
  }
  forward_down_chain(ctx, *frag,
                     rt::make_action(h_probe_, rt::kNullAddress, a.args[0], a.args[1]));
}

void JaccardQuery::handle_hit(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  ctx.charge(1);
  ++frag->app[kCommonWord];
}

}  // namespace ccastream::apps
