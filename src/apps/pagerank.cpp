#include "apps/pagerank.hpp"

#include <stdexcept>

#include "runtime/check.hpp"

namespace ccastream::apps {

using graph::VertexFragment;

namespace {
double as_double(rt::Word w) { return std::bit_cast<double>(w); }
rt::Word as_word(double d) { return std::bit_cast<rt::Word>(d); }
}  // namespace

PageRank::PageRank(graph::GraphProtocol& protocol, Params params)
    : proto_(protocol), params_(params) {
  h_delta_ = proto_.chip().handlers().register_handler(
      "app.pr-delta",
      [this](rt::Context& ctx, const rt::Action& a) { handle_delta(ctx, a); });
  h_push_ = proto_.chip().handlers().register_handler(
      "app.pr-push",
      [this](rt::Context& ctx, const rt::Action& a) { handle_push(ctx, a); });
}

void PageRank::seed(graph::StreamingGraph& g) const {
  if (g.rhizome_count() != 1) {
    throw std::invalid_argument(
        "PageRank requires rhizomes == 1: the degree normalisation relies on "
        "a single root observing every insert");
  }
  if (g.protocol().stats().edges_deleted > 0 ||
      g.protocol().stats().deletes_unmatched > 0) {
    // inserts_seen is the degree normalisation; deletions make it stale
    // and there is no repair story. Better a loud deterministic abort than
    // a silently wrong rank vector.
    rt::fatal_misuse("PageRank::seed on a graph that streamed deletions",
                     __FILE__, __LINE__);
  }
  sim::Chip& chip = g.chip();
  for (std::uint64_t vid = 0; vid < g.num_vertices(); ++vid) {
    for (const auto addr : g.fragments_of(vid)) {
      auto* frag = chip.as<VertexFragment>(addr);
      frag->app[kRankWord] = as_word(0.0);
      frag->app[kResidualWord] = as_word(0.0);
    }
    chip.inject_local(
        rt::make_action(h_delta_, g.root_of(vid), as_word(1.0 - params_.damping)));
  }
}

double PageRank::rank_of(const graph::StreamingGraph& g, std::uint64_t vid) const {
  return as_double(g.app_word(vid, kRankWord)) +
         as_double(g.app_word(vid, kResidualWord));
}

// pr-delta(v_root, delta): accumulate residual; absorb and push when it
// crosses the threshold.
void PageRank::handle_delta(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  ctx.charge(2);

  double residual = as_double(frag->app[kResidualWord]) + as_double(a.args[0]);
  if (residual < params_.epsilon) {
    frag->app[kResidualWord] = as_word(residual);
    return;
  }
  // Absorb and push. The root has seen every insert for this vertex, so
  // inserts_seen is the logical out-degree used for normalisation.
  frag->app[kRankWord] = as_word(as_double(frag->app[kRankWord]) + residual);
  frag->app[kResidualWord] = as_word(0.0);
  const std::uint64_t degree = frag->inserts_seen;
  if (degree == 0) return;  // dangling vertex: mass is retained in rank

  const double per_edge = params_.damping * residual / static_cast<double>(degree);
  // Push along this fragment's edges and hand the wave down the chain.
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_delta_, e.dst, as_word(per_edge)));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_push_, ghost.value(), as_word(per_edge)));
    }
  }
}

// pr-push(frag, per_edge): emit one delta per locally stored edge, then
// continue down the chain.
void PageRank::handle_push(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::Word per_edge = a.args[0];
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()) + 1);
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_delta_, e.dst, per_edge));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_push_, ghost.value(), per_edge));
    }
  }
}

}  // namespace ccastream::apps
