#include "apps/repair.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace ccastream::apps {

using graph::VertexFragment;

MonotoneRaiseRepair::MonotoneRaiseRepair(graph::GraphProtocol& protocol,
                                         Policy policy)
    : proto_(protocol), policy_(std::move(policy)) {
  h_unsettle_ = proto_.chip().handlers().register_handler(
      "app." + policy_.name + "-unsettle",
      [this](rt::Context& ctx, const rt::Action& a) { handle_unsettle(ctx, a); });
  h_resettle_ = proto_.chip().handlers().register_handler(
      "app." + policy_.name + "-resettle",
      [this](rt::Context& ctx, const rt::Action& a) { handle_resettle(ctx, a); });
}

void MonotoneRaiseRepair::attach(graph::AppHooks& hooks) const {
  hooks.host_repair.invalidate = [this](graph::StreamingGraph& g,
                                        std::span<const StreamEdge> ops) {
    return seed_invalidation(g, ops);
  };
  hooks.host_repair.resettle = [this](graph::StreamingGraph& g,
                                      std::span<const StreamEdge> ops,
                                      bool invalidated) {
    seed_resettle(g, ops, invalidated);
  };
}

// <name>-unsettle(v, expected): exact-derivation invalidation wave (header
// comment). Only fires when the fragment still sits exactly at `expected`;
// at chain quiescence every fragment of a vertex holds the vertex's value,
// so the whole chain clears together (the ghost forward keeps `expected`,
// the edge cascade applies EdgeStep).
void MonotoneRaiseRepair::handle_unsettle(rt::Context& ctx,
                                          const rt::Action& a) const {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::Word expected = a.args[0];
  ctx.charge(1);
  // A self-derived value (components: label == own vid) depends on no edge
  // and must survive every wave.
  if (policy_.reset == ResetTo::kSelfId && frag->vid == expected) return;
  if (frag->app[policy_.word] != expected) return;  // survived, or cleared

  frag->app[policy_.word] =
      policy_.reset == ResetTo::kSelfId ? frag->vid : policy_.unsettled;
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_unsettle_, e.dst, step(expected, e)));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_unsettle_, ghost.value(), expected));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_unsettle_, rt::kNullAddress, expected));
    }
  }
}

// <name>-resettle(v, val): adopt val if better, then re-diffuse the current
// value along all local edges through the app's plain value handler WITHOUT
// requiring an improvement at this fragment — the seed that lets monotone
// diffusion flow back into the invalidated region (and perform diffusion
// for edges inserted while the on-cell hooks were suppressed).
void MonotoneRaiseRepair::handle_resettle(rt::Context& ctx,
                                          const rt::Action& a) const {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::Word val = a.args[0];
  ctx.charge(1);
  if (val < frag->app[policy_.word]) frag->app[policy_.word] = val;
  const rt::Word value = frag->app[policy_.word];
  if (value == policy_.unsettled) return;

  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(policy_.value_handler, e.dst, step(value, e)));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_resettle_, ghost.value(), value));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_resettle_, rt::kNullAddress, value));
    }
  }
}

// Phase I seed: a deleted edge (u, v) can only have carried v's value if
// the frozen pre-increment pair (value(u), value(v)) satisfies the
// policy's SeedWhen (app state is frozen through the structural phases, so
// reading it here reads exactly the pre-increment fixed point). Duplicate
// seeds for the same v are harmless — the wave is idempotent (the second
// arrival finds the value already cleared).
bool MonotoneRaiseRepair::seed_invalidation(
    graph::StreamingGraph& g, std::span<const StreamEdge> ops) const {
  bool any = false;
  for (const StreamEdge& e : ops) {
    if (!e.is_delete()) continue;
    const rt::Word vu = g.app_word(e.src, policy_.word);
    const rt::Word vv = g.app_word(e.dst, policy_.word);
    bool hit = false;
    switch (policy_.seed) {
      case SeedWhen::kExactPlusOne:
        hit = vu != policy_.unsettled && vv == vu + 1;
        break;
      case SeedWhen::kDownstream:
        hit = vu != policy_.unsettled && vv != policy_.unsettled && vv > vu;
        break;
      case SeedWhen::kSameLabel:
        // A label equal to dst's own vid is self-derived; it cannot have
        // crossed the deleted edge (see ResetTo::kSelfId).
        hit = vv == vu && vv != e.dst;
        break;
    }
    if (hit) {
      g.chip().io_enqueue(rt::make_action(h_unsettle_, g.root_of(e.dst), vv));
      any = true;
    }
  }
  return any;
}

// Phase R seed. When anything was invalidated, every still-settled vertex
// re-diffuses (its value is provably exact, and collectively the surviving
// frontier dominates every derivation path into the cleared region). When
// nothing was invalidated, only the increment's insert sources need a kick
// — their diffusion was deferred while hooks were suppressed.
void MonotoneRaiseRepair::seed_resettle(graph::StreamingGraph& g,
                                        std::span<const StreamEdge> ops,
                                        bool invalidated) const {
  if (invalidated) {
    for (std::uint64_t vid = 0; vid < g.num_vertices(); ++vid) {
      const rt::Word value = g.app_word(vid, policy_.word);
      if (value != policy_.unsettled) {
        g.chip().io_enqueue(rt::make_action(h_resettle_, g.root_of(vid), value));
      }
    }
    return;
  }
  std::vector<std::uint64_t> srcs;
  for (const StreamEdge& e : ops) {
    if (!e.is_delete()) srcs.push_back(e.src);
  }
  std::sort(srcs.begin(), srcs.end());
  srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
  for (const std::uint64_t vid : srcs) {
    const rt::Word value = g.app_word(vid, policy_.word);
    if (value != policy_.unsettled) {
      g.chip().io_enqueue(rt::make_action(h_resettle_, g.root_of(vid), value));
    }
  }
}

}  // namespace ccastream::apps
