// Streaming multi-source reachability — a bit-parallel diffusive
// application: up to 256 sources are tracked simultaneously, one bit each,
// packed into the fragment's four app words (one full 256-bit flit of
// payload per action).
//
// reach-action(v, mask) ORs the mask into v's reached-set; any *new* bits
// re-diffuse along v's edges. Monotone (bits only get set), so asynchronous
// delivery order cannot affect the fixed point — and streamed edge
// insertions extend reachability incrementally, like the paper's BFS.
#pragma once

#include <array>
#include <cstdint>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class MultiSourceReach {
 public:
  /// Maximum simultaneous sources (4 app words x 64 bits).
  static constexpr std::size_t kMaxSources = graph::kAppWords * 64;

  explicit MultiSourceReach(graph::GraphProtocol& protocol);

  void install();
  [[nodiscard]] graph::AppHooks make_hooks() const;

  /// Fragments start with an empty reached-set.
  [[nodiscard]] static graph::AppState initial_state() { return {}; }

  /// Marks `vid` as source number `source_index` (sets its own bit).
  /// Call before streaming (or kick afterwards via chip injection).
  void add_source(graph::StreamingGraph& g, std::uint64_t vid,
                  std::size_t source_index) const;

  /// True if `vid` is reachable from source number `source_index`.
  [[nodiscard]] bool reached(const graph::StreamingGraph& g, std::uint64_t vid,
                             std::size_t source_index) const;

  /// Number of sources that reach `vid`.
  [[nodiscard]] std::uint32_t reach_count(const graph::StreamingGraph& g,
                                          std::uint64_t vid) const;

  [[nodiscard]] rt::HandlerId handler() const noexcept { return h_reach_; }

 private:
  void handle_reach(rt::Context& ctx, const rt::Action& a);
  static bool merge(graph::VertexFragment& frag, const rt::Payload& mask,
                    rt::Payload& fresh);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_reach_ = 0;
};

}  // namespace ccastream::apps
