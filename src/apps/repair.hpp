// Monotone-raise deletion repair, factored out of the streaming BFS of
// PR 7 so every monotone diffusion app (BFS, SSSP, components) shares one
// invalidate/resettle implementation.
//
// The shape of the problem is identical across the three apps: each
// maintains a per-vertex value that only ever *improves* (level, distance,
// min label) under insert-driven diffusion, so deleting an edge — which can
// only make values *worse* — breaks the monotone update rule. The repair is
// the same two-wave protocol in every case, run host-seeded by
// StreamingGraph::stream_increment between quiescent chip runs (phases I
// and R of the four-phase deletion increment):
//
//   <name>-unsettle(v, expected): the invalidation wave. If v still holds
//     exactly `expected` (read from the pre-increment fixed point, frozen
//     through the structural phases), its value may have been derived
//     through a severed edge: reset it and cascade unsettle along local
//     edges with the value the neighbour would have derived from this one
//     (EdgeStep). Ghost links forward `expected` unchanged — a ghost is the
//     same logical vertex. The wave follows exact derivation edges only, so
//     it is order-independent and composes across any number of deletes in
//     one increment; it over-approximates (a cleared vertex may have had
//     another intact derivation) but provably covers every vertex whose
//     every derivation path used a deleted edge.
//
//   <name>-resettle(v, val): the re-diffusion seed. Adopt `val` if better,
//     then push the current value along ALL local edges through the app's
//     plain value handler even though nothing improved here (the plain
//     handler only diffuses on improvement). Host repair seeds this at
//     every surviving vertex; monotone diffusion then converges on the
//     exact fixed point of the post-increment graph — surviving values are
//     still exact (deletions cannot improve a value), and each invalidated
//     vertex regains its true value from a surviving derivation by
//     induction along that path. Ghost links forward the resettle itself,
//     carrying the settled value so cleared/fresh ghosts re-sync; the
//     rhizome ring is intentionally not traversed (deletions require
//     rhizomes == 1).
//
// What differs per app is captured in Policy:
//   * EdgeStep — how a value derives across an edge (level + 1, distance +
//     weight, same label).
//   * SeedWhen — which frozen (src, dst) value pairs of a deleted edge mark
//     dst's value as possibly derived through it. SSSP uses the
//     conservative `dist(dst) > dist(src)` form: the deleted records (and
//     their weights) are already gone when phase I runs, so the host
//     cannot test dist(dst) == dist(src) + w exactly; the over-
//     approximation is safe because resettle restores exact values. This
//     relies on edge weights >= 1 — with dist(src) < dist(dst) the source
//     (distance 0) can never be seeded.
//   * ResetTo — the cleared value: the app's unsettled sentinel, or the
//     vertex's own id (components, where every root is its own label
//     seed). ResetTo::kSelfId additionally *protects* a fragment whose
//     expected value equals its vid: a self-derived label cannot have
//     depended on any edge, so the wave must not clear it (and deleting an
//     edge into such a vertex needs no invalidation at all — SeedWhen
//     skips it).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"
#include "graph/stream_edge.hpp"

namespace ccastream::apps {

class MonotoneRaiseRepair {
 public:
  /// How a value derives across an edge record.
  enum class EdgeStep : std::uint8_t {
    kPlusOne,     ///< BFS: level(dst) = level(src) + 1.
    kPlusWeight,  ///< SSSP: dist(dst) = dist(src) + weight.
    kSame,        ///< Components: label(dst) = label(src).
  };

  /// Phase I seed condition over the frozen (value(src), value(dst)) pair
  /// of a deleted edge.
  enum class SeedWhen : std::uint8_t {
    kExactPlusOne,  ///< value(dst) == value(src) + 1 (BFS tree edge).
    kDownstream,    ///< value(dst) > value(src), both settled (SSSP: the
                    ///< deleted weights are unknown host-side).
    kSameLabel,     ///< value(dst) == value(src), and dst's label is not
                    ///< its own vid (components).
  };

  /// What an invalidated fragment's value resets to.
  enum class ResetTo : std::uint8_t {
    kUnsettled,  ///< The app's unreached/unsettled sentinel.
    kSelfId,     ///< The fragment's own vertex id (components).
  };

  struct Policy {
    std::string name;             ///< Handler-name stem, e.g. "bfs".
    std::size_t word = 0;         ///< App word holding the value.
    rt::Word unsettled = ~0ull;   ///< The app's unsettled sentinel.
    rt::HandlerId value_handler;  ///< The app's plain diffusion handler.
    EdgeStep step = EdgeStep::kPlusOne;
    SeedWhen seed = SeedWhen::kExactPlusOne;
    ResetTo reset = ResetTo::kUnsettled;
  };

  /// Registers "app.<name>-unsettle" and "app.<name>-resettle" on the
  /// protocol's chip. Construct after registering the app's value handler
  /// so handler-id order stays (value, unsettle, resettle).
  MonotoneRaiseRepair(graph::GraphProtocol& protocol, Policy policy);

  /// Fills hooks.host_repair with this repair's phase I/R seeds.
  void attach(graph::AppHooks& hooks) const;

  [[nodiscard]] rt::HandlerId unsettle_handler() const noexcept {
    return h_unsettle_;
  }
  [[nodiscard]] rt::HandlerId resettle_handler() const noexcept {
    return h_resettle_;
  }

 private:
  void handle_unsettle(rt::Context& ctx, const rt::Action& a) const;
  void handle_resettle(rt::Context& ctx, const rt::Action& a) const;

  /// Host repair phase I: seed un-settle waves for the increment's deletes.
  bool seed_invalidation(graph::StreamingGraph& g,
                         std::span<const StreamEdge> ops) const;
  /// Host repair phase R: seed re-settlement kicks.
  void seed_resettle(graph::StreamingGraph& g, std::span<const StreamEdge> ops,
                     bool invalidated) const;

  /// The value an out-neighbour would have derived from `value` across `e`.
  [[nodiscard]] rt::Word step(rt::Word value,
                              const graph::EdgeRecord& e) const noexcept {
    switch (policy_.step) {
      case EdgeStep::kPlusOne: return value + 1;
      case EdgeStep::kPlusWeight: return value + e.weight;
      case EdgeStep::kSame: return value;
    }
    return value;
  }

  graph::GraphProtocol& proto_;
  Policy policy_;
  rt::HandlerId h_unsettle_ = 0;
  rt::HandlerId h_resettle_ = 0;
};

}  // namespace ccastream::apps
