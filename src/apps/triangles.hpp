// Message-driven triangle counting and Jaccard-coefficient queries — two of
// the algorithms the paper's conclusion names as the natural next step
// ("Triangle Counting, Jaccard Coefficient").
//
// Both are built from the same fine-grain primitive: a *probe* action that
// asks a vertex "do you store an edge to w?", walking the RPVO chain via
// ghost links when the local fragment misses.
//
// Triangle counting (post-construction query): a kick wave walks every
// vertex's chain; each fragment probes the pairs of its local edge list and
// cross-pairs against later fragments in the chain. A found probe bumps a
// per-fragment counter; the host sums counters chain-wide. On a simple
// undirected graph (both edge directions streamed) the total equals 3x the
// triangle count.
//
// Jaccard(u, v): a kick at u probes every neighbour of u against v's edge
// list; hits are accumulated at u's root, giving |N(u) ∩ N(v)|, and the
// host computes |∩| / (deg u + deg v - |∩|).
//
// Requires ghost_fanout == 1 (chain RPVO): pair coverage across sibling
// ghost subtrees is not implemented.
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class TriangleCounter {
 public:
  /// Per-fragment closed-wedge counter (app word 3 — BFS/SSSP/CC keep
  /// word 0, so triangle queries can run on their graphs).
  static constexpr std::size_t kCountWord = 3;

  explicit TriangleCounter(graph::GraphProtocol& protocol);

  /// Clears counters and kicks the counting wave at every vertex; run the
  /// chip to quiescence afterwards.
  void start(graph::StreamingGraph& g) const;

  /// Total found probes = sum over all vertices of connected neighbour
  /// pairs ("closed wedges"); valid after quiescence.
  [[nodiscard]] std::uint64_t closed_wedges(const graph::StreamingGraph& g) const;

  /// closed_wedges / 3 — the triangle count on a simple undirected graph.
  [[nodiscard]] std::uint64_t triangles(const graph::StreamingGraph& g) const {
    return closed_wedges(g) / 3;
  }

 private:
  void handle_kick(rt::Context& ctx, const rt::Action& a);
  void handle_cross(rt::Context& ctx, const rt::Action& a);
  void handle_probe(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_kick_ = 0;
  rt::HandlerId h_cross_ = 0;
  rt::HandlerId h_probe_ = 0;
};

class JaccardQuery {
 public:
  /// Intersection counter at the query vertex's root (app word 2).
  static constexpr std::size_t kCommonWord = 2;

  explicit JaccardQuery(graph::GraphProtocol& protocol);

  /// Runs the chip to quiescence and returns J(u, v) = |N∩| / |N∪|.
  /// Assumes simple undirected adjacency (both directions streamed).
  [[nodiscard]] double query(graph::StreamingGraph& g, std::uint64_t u,
                             std::uint64_t v) const;

  /// |N(u) ∩ N(v)| as counted by the last query for `u`.
  [[nodiscard]] std::uint64_t common_neighbors(const graph::StreamingGraph& g,
                                               std::uint64_t u) const;

 private:
  void handle_kick(rt::Context& ctx, const rt::Action& a);
  void handle_probe(rt::Context& ctx, const rt::Action& a);
  void handle_hit(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_kick_ = 0;
  rt::HandlerId h_probe_ = 0;
  rt::HandlerId h_hit_ = 0;
};

}  // namespace ccastream::apps
