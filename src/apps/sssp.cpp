#include "apps/sssp.hpp"

namespace ccastream::apps {

using graph::VertexFragment;

StreamingSssp::StreamingSssp(graph::GraphProtocol& protocol)
    : proto_(protocol),
      h_sssp_(protocol.chip().handlers().register_handler(
          "app.sssp",
          [this](rt::Context& ctx, const rt::Action& a) { handle_sssp(ctx, a); })),
      repair_(protocol,
              MonotoneRaiseRepair::Policy{
                  .name = "sssp",
                  .word = kDistWord,
                  .unsettled = kUnreached,
                  .value_handler = h_sssp_,
                  .step = MonotoneRaiseRepair::EdgeStep::kPlusWeight,
                  .seed = MonotoneRaiseRepair::SeedWhen::kDownstream,
                  .reset = MonotoneRaiseRepair::ResetTo::kUnsettled}) {}

graph::AppHooks StreamingSssp::make_hooks() const {
  graph::AppHooks hooks;
  hooks.ghost_init = initial_state();
  hooks.on_edge_inserted = [this](rt::Context& ctx, VertexFragment& frag,
                                  const graph::EdgeRecord& e) {
    if (frag.app[kDistWord] != kUnreached) {
      ctx.propagate(
          rt::make_action(h_sssp_, e.dst, frag.app[kDistWord] + e.weight));
      ctx.charge(1);
    }
  };
  hooks.on_ghost_linked = [this](rt::Context& ctx, VertexFragment& frag,
                                 rt::GlobalAddress ghost) {
    if (frag.app[kDistWord] != kUnreached) {
      ctx.propagate(rt::make_action(h_sssp_, ghost, frag.app[kDistWord]));
      ctx.charge(1);
    }
  };
  // Deletion repair (see repair.hpp and the header comment for why the
  // invalidation seed is conservative).
  repair_.attach(hooks);
  return hooks;
}

void StreamingSssp::install() { proto_.set_hooks(make_hooks()); }

void StreamingSssp::set_source(graph::StreamingGraph& g, std::uint64_t vid) const {
  g.set_root_app_word(vid, kDistWord, 0);
}

void StreamingSssp::kick_source(graph::StreamingGraph& g, std::uint64_t vid) const {
  g.chip().inject_local(rt::make_action(h_sssp_, g.root_of(vid), rt::Word{0}));
}

rt::Word StreamingSssp::distance_of(const graph::StreamingGraph& g,
                                    std::uint64_t vid) const {
  return g.app_word(vid, kDistWord);
}

void StreamingSssp::handle_sssp(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::Word dist = a.args[0];
  ctx.charge(1);
  if (dist >= frag->app[kDistWord]) return;

  frag->app[kDistWord] = dist;
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_sssp_, e.dst, dist + e.weight));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_sssp_, ghost.value(), dist));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_sssp_, rt::kNullAddress, dist));
    }
  }
  if (!frag->rhizome_next.is_null()) {
    ctx.propagate(rt::make_action(h_sssp_, frag->rhizome_next, dist));
  }
}

}  // namespace ccastream::apps
