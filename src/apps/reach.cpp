#include "apps/reach.hpp"

#include <bit>
#include <stdexcept>

namespace ccastream::apps {

using graph::VertexFragment;

namespace {

rt::Action reach_action(rt::HandlerId h, rt::GlobalAddress target,
                        const rt::Payload& mask) {
  rt::Action a;
  a.handler = h;
  a.target = target;
  a.nargs = rt::kPayloadWords;
  a.args = mask;
  return a;
}

rt::Payload state_of(const VertexFragment& frag) {
  rt::Payload p{};
  for (std::size_t w = 0; w < graph::kAppWords; ++w) p[w] = frag.app[w];
  return p;
}

bool any(const rt::Payload& p) {
  for (const auto w : p) {
    if (w != 0) return true;
  }
  return false;
}

}  // namespace

MultiSourceReach::MultiSourceReach(graph::GraphProtocol& protocol)
    : proto_(protocol) {
  h_reach_ = proto_.chip().handlers().register_handler(
      "app.reach",
      [this](rt::Context& ctx, const rt::Action& a) { handle_reach(ctx, a); });
}

graph::AppHooks MultiSourceReach::make_hooks() const {
  graph::AppHooks hooks;
  hooks.ghost_init = initial_state();
  hooks.on_edge_inserted = [this](rt::Context& ctx, VertexFragment& frag,
                                  const graph::EdgeRecord& e) {
    const rt::Payload mask = state_of(frag);
    if (any(mask)) {
      ctx.propagate(reach_action(h_reach_, e.dst, mask));
      ctx.charge(1);
    }
  };
  hooks.on_ghost_linked = [this](rt::Context& ctx, VertexFragment& frag,
                                 rt::GlobalAddress ghost) {
    const rt::Payload mask = state_of(frag);
    if (any(mask)) {
      ctx.propagate(reach_action(h_reach_, ghost, mask));
      ctx.charge(1);
    }
  };
  return hooks;
}

void MultiSourceReach::install() { proto_.set_hooks(make_hooks()); }

void MultiSourceReach::add_source(graph::StreamingGraph& g, std::uint64_t vid,
                                  std::size_t source_index) const {
  if (source_index >= kMaxSources) {
    throw std::out_of_range("MultiSourceReach: source index exceeds 256");
  }
  const auto word = source_index / 64;
  const auto bit = source_index % 64;
  const rt::Word prev = g.app_word(vid, word);
  g.set_root_app_word(vid, word, prev | (rt::Word{1} << bit));
}

bool MultiSourceReach::reached(const graph::StreamingGraph& g, std::uint64_t vid,
                               std::size_t source_index) const {
  const auto word = source_index / 64;
  const auto bit = source_index % 64;
  return (g.app_word(vid, word) >> bit) & 1;
}

std::uint32_t MultiSourceReach::reach_count(const graph::StreamingGraph& g,
                                            std::uint64_t vid) const {
  std::uint32_t n = 0;
  for (std::size_t w = 0; w < graph::kAppWords; ++w) {
    n += static_cast<std::uint32_t>(std::popcount(g.app_word(vid, w)));
  }
  return n;
}

bool MultiSourceReach::merge(VertexFragment& frag, const rt::Payload& mask,
                             rt::Payload& fresh) {
  bool grew = false;
  for (std::size_t w = 0; w < graph::kAppWords; ++w) {
    fresh[w] = mask[w] & ~frag.app[w];
    if (fresh[w] != 0) {
      frag.app[w] |= fresh[w];
      grew = true;
    }
  }
  return grew;
}

void MultiSourceReach::handle_reach(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  ctx.charge(2);

  rt::Payload fresh{};
  if (!merge(*frag, a.args, fresh)) return;  // no new bits: diffusion dies

  // Only the fresh bits re-diffuse (bits the neighbours may already have
  // get filtered again at their end — monotone and idempotent).
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(reach_action(h_reach_, e.dst, fresh));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(reach_action(h_reach_, ghost.value(), fresh));
    } else if (ghost.is_pending()) {
      ghost.enqueue(reach_action(h_reach_, rt::kNullAddress, fresh));
    }
  }
  if (!frag->rhizome_next.is_null()) {
    ctx.propagate(reach_action(h_reach_, frag->rhizome_next, fresh));
  }
}

}  // namespace ccastream::apps
