// Streaming connected components by asynchronous min-label propagation.
//
// Every root starts with label = vid; labels spread over edges and the
// minimum wins. For undirected semantics the stream must carry both edge
// directions (use workload::symmetrize) — the algorithm then converges to
// the minimum vertex id of each connected component, updating incrementally
// as new edges merge components.
//
// Deletion repair instantiates the monotone-raise framework
// (apps/repair.hpp) with the label policy: a deleted edge (u, v) where
// label(v) == label(u) may have carried v's label, so the unsettle wave
// clears the equal-label region downstream of v — resetting each cleared
// vertex to its OWN vid (every root is its own label seed, so labels are
// never unsettled), and protecting self-labelled vertices, whose label
// depends on no edge. Resettle then re-diffuses every label and min wins
// again. Note the fixed point is that of the *directed* stream: the label
// of v is the minimum vid that reaches v along streamed arcs. With a
// symmetrized stream that equals the undirected component minimum, but a
// sliding window can expire the two arcs of a pair in different
// increments, so windowed runs are checked against the directed oracle
// (base::DynamicComponents), not union-find.
#pragma once

#include <cstdint>

#include "apps/repair.hpp"
#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class StreamingComponents {
 public:
  static constexpr rt::Word kNoLabel = ~0ull;
  static constexpr std::size_t kLabelWord = 0;

  explicit StreamingComponents(graph::GraphProtocol& protocol);

  void install();
  [[nodiscard]] graph::AppHooks make_hooks() const;

  /// Ghosts start unlabeled; the ghost-link hook forwards the root's label.
  [[nodiscard]] static graph::AppState initial_state() {
    graph::AppState s{};
    s[kLabelWord] = kNoLabel;
    return s;
  }

  /// Seeds every root's label with its own vertex id. Call once after
  /// constructing the StreamingGraph, before streaming.
  void seed_labels(graph::StreamingGraph& g) const;

  [[nodiscard]] rt::Word label_of(const graph::StreamingGraph& g,
                                  std::uint64_t vid) const;

  [[nodiscard]] rt::HandlerId handler() const noexcept { return h_cc_; }
  [[nodiscard]] rt::HandlerId unsettle_handler() const noexcept {
    return repair_.unsettle_handler();
  }
  [[nodiscard]] rt::HandlerId resettle_handler() const noexcept {
    return repair_.resettle_handler();
  }

 private:
  void handle_label(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_cc_ = 0;
  /// Deletion repair: label policy over the shared framework.
  MonotoneRaiseRepair repair_;
};

}  // namespace ccastream::apps
