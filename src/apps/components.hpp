// Streaming connected components by asynchronous min-label propagation.
//
// Every root starts with label = vid; labels spread over edges and the
// minimum wins. For undirected semantics the stream must carry both edge
// directions (use workload::symmetrize) — the algorithm then converges to
// the minimum vertex id of each connected component, updating incrementally
// as new edges merge components.
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class StreamingComponents {
 public:
  static constexpr rt::Word kNoLabel = ~0ull;
  static constexpr std::size_t kLabelWord = 0;

  explicit StreamingComponents(graph::GraphProtocol& protocol);

  void install();
  [[nodiscard]] graph::AppHooks make_hooks() const;

  /// Ghosts start unlabeled; the ghost-link hook forwards the root's label.
  [[nodiscard]] static graph::AppState initial_state() {
    graph::AppState s{};
    s[kLabelWord] = kNoLabel;
    return s;
  }

  /// Seeds every root's label with its own vertex id. Call once after
  /// constructing the StreamingGraph, before streaming.
  void seed_labels(graph::StreamingGraph& g) const;

  [[nodiscard]] rt::Word label_of(const graph::StreamingGraph& g,
                                  std::uint64_t vid) const;

  [[nodiscard]] rt::HandlerId handler() const noexcept { return h_cc_; }

 private:
  void handle_label(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_cc_ = 0;
};

}  // namespace ccastream::apps
