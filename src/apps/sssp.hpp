// Streaming single-source shortest paths — the weighted generalisation of
// the paper's streaming BFS (first of the "more complex message-driven
// streaming dynamic algorithms" the conclusion calls for).
//
// Identical diffusion structure to BFS, but the relaxation carries the edge
// weight: sssp-action(v, d) lowers v's tentative distance and re-diffuses
// d + w(e) along each edge. Monotonic min-updates make the asynchronous,
// unordered message delivery safe (chaotic relaxation).
//
// Deletion repair instantiates the monotone-raise framework
// (apps/repair.hpp) with the distance policy. Because deleted edge records
// (and their weights) are gone by the time phase I runs, the invalidation
// seed is the conservative `dist(dst) > dist(src)` test rather than the
// exact `dist(dst) == dist(src) + w`; the over-approximation is corrected
// by resettle. This relies on edge weights >= 1 (every generator in
// workload/ emits weight >= 1), which keeps the source (distance 0) out of
// every wave.
#pragma once

#include <cstdint>

#include "apps/repair.hpp"
#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class StreamingSssp {
 public:
  static constexpr rt::Word kUnreached = ~0ull;
  static constexpr std::size_t kDistWord = 0;

  explicit StreamingSssp(graph::GraphProtocol& protocol);

  void install();
  [[nodiscard]] graph::AppHooks make_hooks() const;

  [[nodiscard]] static graph::AppState initial_state() {
    graph::AppState s{};
    s[kDistWord] = kUnreached;
    return s;
  }

  /// Marks `vid` as the source (distance 0) before streaming.
  void set_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  /// Injects sssp-action(root(vid), 0) to (re)start on a built graph.
  void kick_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  [[nodiscard]] rt::Word distance_of(const graph::StreamingGraph& g,
                                     std::uint64_t vid) const;

  [[nodiscard]] rt::HandlerId handler() const noexcept { return h_sssp_; }
  [[nodiscard]] rt::HandlerId unsettle_handler() const noexcept {
    return repair_.unsettle_handler();
  }
  [[nodiscard]] rt::HandlerId resettle_handler() const noexcept {
    return repair_.resettle_handler();
  }

 private:
  void handle_sssp(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_sssp_ = 0;
  /// Deletion repair: distance policy over the shared framework.
  MonotoneRaiseRepair repair_;
};

}  // namespace ccastream::apps
