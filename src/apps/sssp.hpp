// Streaming single-source shortest paths — the weighted generalisation of
// the paper's streaming BFS (first of the "more complex message-driven
// streaming dynamic algorithms" the conclusion calls for).
//
// Identical diffusion structure to BFS, but the relaxation carries the edge
// weight: sssp-action(v, d) lowers v's tentative distance and re-diffuses
// d + w(e) along each edge. Monotonic min-updates make the asynchronous,
// unordered message delivery safe (chaotic relaxation).
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class StreamingSssp {
 public:
  static constexpr rt::Word kUnreached = ~0ull;
  static constexpr std::size_t kDistWord = 0;

  explicit StreamingSssp(graph::GraphProtocol& protocol);

  void install();
  [[nodiscard]] graph::AppHooks make_hooks() const;

  [[nodiscard]] static graph::AppState initial_state() {
    graph::AppState s{};
    s[kDistWord] = kUnreached;
    return s;
  }

  /// Marks `vid` as the source (distance 0) before streaming.
  void set_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  /// Injects sssp-action(root(vid), 0) to (re)start on a built graph.
  void kick_source(graph::StreamingGraph& g, std::uint64_t vid) const;

  [[nodiscard]] rt::Word distance_of(const graph::StreamingGraph& g,
                                     std::uint64_t vid) const;

  [[nodiscard]] rt::HandlerId handler() const noexcept { return h_sssp_; }

 private:
  void handle_sssp(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  rt::HandlerId h_sssp_ = 0;
};

}  // namespace ccastream::apps
