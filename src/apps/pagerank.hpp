// Asynchronous delta-push PageRank over the RPVO graph.
//
// A demonstration of a non-monotone diffusive application: residual mass is
// pushed along edges until every residual falls below epsilon. Deltas
// always target vertex roots; the root absorbs (rank += residual), divides
// the damped residual by its logical degree (which the root knows — every
// insert is routed through it), and a push wave walks the RPVO chain
// emitting one delta per stored edge.
//
// PageRank runs as a post-construction query: build (or grow) the graph,
// reach quiescence, then seed() and run. Uses app words 0 (rank) and 1
// (residual) as IEEE-754 bit patterns.
#pragma once

#include <bit>
#include <cstdint>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"

namespace ccastream::apps {

class PageRank {
 public:
  static constexpr std::size_t kRankWord = 0;
  static constexpr std::size_t kResidualWord = 1;

  struct Params {
    double damping = 0.85;
    double epsilon = 1e-9;  ///< Residual threshold to keep pushing.
  };

  PageRank(graph::GraphProtocol& protocol, Params params);
  explicit PageRank(graph::GraphProtocol& protocol) : PageRank(protocol, Params{}) {}

  /// Zeroes rank/residual on every fragment and injects the initial
  /// (1 - damping) residual at every root. Run the chip afterwards.
  void seed(graph::StreamingGraph& g) const;

  /// rank + leftover residual of a vertex (valid after quiescence).
  [[nodiscard]] double rank_of(const graph::StreamingGraph& g,
                               std::uint64_t vid) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  void handle_delta(rt::Context& ctx, const rt::Action& a);
  void handle_push(rt::Context& ctx, const rt::Action& a);

  graph::GraphProtocol& proto_;
  Params params_;
  rt::HandlerId h_delta_ = 0;
  rt::HandlerId h_push_ = 0;
};

}  // namespace ccastream::apps
