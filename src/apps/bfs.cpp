#include "apps/bfs.hpp"

namespace ccastream::apps {

using graph::VertexFragment;

StreamingBfs::StreamingBfs(graph::GraphProtocol& protocol)
    : proto_(protocol),
      h_bfs_(protocol.chip().handlers().register_handler(
          "app.bfs",
          [this](rt::Context& ctx, const rt::Action& a) { handle_bfs(ctx, a); })),
      repair_(protocol,
              MonotoneRaiseRepair::Policy{
                  .name = "bfs",
                  .word = kLevelWord,
                  .unsettled = kUnreached,
                  .value_handler = h_bfs_,
                  .step = MonotoneRaiseRepair::EdgeStep::kPlusOne,
                  .seed = MonotoneRaiseRepair::SeedWhen::kExactPlusOne,
                  .reset = MonotoneRaiseRepair::ResetTo::kUnsettled}) {}

graph::AppHooks StreamingBfs::make_hooks() const {
  graph::AppHooks hooks;
  hooks.ghost_init = initial_state();
  // Listing 4: after inserting an edge, inform the destination vertex about
  // it — but only if this fragment has a valid BFS level.
  hooks.on_edge_inserted = [this](rt::Context& ctx, VertexFragment& frag,
                                  const graph::EdgeRecord& e) {
    if (frag.app[kLevelWord] != kUnreached) {
      ctx.propagate(rt::make_action(h_bfs_, e.dst, frag.app[kLevelWord] + 1));
      ctx.charge(1);
    }
  };
  // A new ghost joined the chain: push the current level down the link so
  // edges already parked at the ghost diffuse correctly.
  hooks.on_ghost_linked = [this](rt::Context& ctx, VertexFragment& frag,
                                 rt::GlobalAddress ghost) {
    if (frag.app[kLevelWord] != kUnreached) {
      ctx.propagate(rt::make_action(h_bfs_, ghost, frag.app[kLevelWord]));
      ctx.charge(1);
    }
  };
  // Deletion repair (see repair.hpp): stream_increment suppresses the
  // on-cell hooks for the structural phases and calls these host-side
  // seeds between quiescent runs.
  repair_.attach(hooks);
  return hooks;
}

void StreamingBfs::install() { proto_.set_hooks(make_hooks()); }

void StreamingBfs::set_source(graph::StreamingGraph& g, std::uint64_t vid) const {
  g.set_root_app_word(vid, kLevelWord, 0);
}

void StreamingBfs::kick_source(graph::StreamingGraph& g, std::uint64_t vid) const {
  g.chip().inject_local(rt::make_action(h_bfs_, g.root_of(vid), rt::Word{0}));
}

rt::Word StreamingBfs::level_of(const graph::StreamingGraph& g,
                                std::uint64_t vid) const {
  return g.app_word(vid, kLevelWord);
}

// Listing 5: (if (> (vertex-level v) lvl) { set level; diffuse lvl+1 }).
void StreamingBfs::handle_bfs(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;  // dropped waiter of a failed allocation
  const rt::Word lvl = a.args[0];
  ctx.charge(1);
  if (lvl >= frag->app[kLevelWord]) return;  // no improvement: diffusion dies

  frag->app[kLevelWord] = lvl;
  // Diffusion: send the next level along every locally stored edge.
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_bfs_, e.dst, lvl + 1));
  }
  // Intra-vertex: forward the (unincremented) level down each ghost link so
  // the rest of this logical vertex's edge list diffuses too.
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_bfs_, ghost.value(), lvl));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_bfs_, rt::kNullAddress, lvl));
    }
  }
  // And around the rhizome ring (improvement stops the cycle when the next
  // root already holds this level).
  if (!frag->rhizome_next.is_null()) {
    ctx.propagate(rt::make_action(h_bfs_, frag->rhizome_next, lvl));
  }
}

}  // namespace ccastream::apps
