#include "apps/bfs.hpp"

#include <algorithm>
#include <vector>

namespace ccastream::apps {

using graph::VertexFragment;

StreamingBfs::StreamingBfs(graph::GraphProtocol& protocol) : proto_(protocol) {
  h_bfs_ = proto_.chip().handlers().register_handler(
      "app.bfs", [this](rt::Context& ctx, const rt::Action& a) { handle_bfs(ctx, a); });
  h_unsettle_ = proto_.chip().handlers().register_handler(
      "app.bfs-unsettle",
      [this](rt::Context& ctx, const rt::Action& a) { handle_unsettle(ctx, a); });
  h_resettle_ = proto_.chip().handlers().register_handler(
      "app.bfs-resettle",
      [this](rt::Context& ctx, const rt::Action& a) { handle_resettle(ctx, a); });
}

graph::AppHooks StreamingBfs::make_hooks() const {
  graph::AppHooks hooks;
  hooks.ghost_init = initial_state();
  // Listing 4: after inserting an edge, inform the destination vertex about
  // it — but only if this fragment has a valid BFS level.
  hooks.on_edge_inserted = [this](rt::Context& ctx, VertexFragment& frag,
                                  const graph::EdgeRecord& e) {
    if (frag.app[kLevelWord] != kUnreached) {
      ctx.propagate(rt::make_action(h_bfs_, e.dst, frag.app[kLevelWord] + 1));
      ctx.charge(1);
    }
  };
  // A new ghost joined the chain: push the current level down the link so
  // edges already parked at the ghost diffuse correctly.
  hooks.on_ghost_linked = [this](rt::Context& ctx, VertexFragment& frag,
                                 rt::GlobalAddress ghost) {
    if (frag.app[kLevelWord] != kUnreached) {
      ctx.propagate(rt::make_action(h_bfs_, ghost, frag.app[kLevelWord]));
      ctx.charge(1);
    }
  };
  // Deletion repair (see the header comment): stream_increment suppresses
  // the on-cell hooks for the structural phases and calls these host-side
  // seeds between quiescent runs.
  hooks.host_repair.invalidate = [this](graph::StreamingGraph& g,
                                        std::span<const StreamEdge> ops) {
    return seed_invalidation(g, ops);
  };
  hooks.host_repair.resettle = [this](graph::StreamingGraph& g,
                                      std::span<const StreamEdge> ops,
                                      bool invalidated) {
    seed_resettle(g, ops, invalidated);
  };
  return hooks;
}

void StreamingBfs::install() { proto_.set_hooks(make_hooks()); }

void StreamingBfs::set_source(graph::StreamingGraph& g, std::uint64_t vid) const {
  g.set_root_app_word(vid, kLevelWord, 0);
}

void StreamingBfs::kick_source(graph::StreamingGraph& g, std::uint64_t vid) const {
  g.chip().inject_local(rt::make_action(h_bfs_, g.root_of(vid), rt::Word{0}));
}

rt::Word StreamingBfs::level_of(const graph::StreamingGraph& g,
                                std::uint64_t vid) const {
  return g.app_word(vid, kLevelWord);
}

// Listing 5: (if (> (vertex-level v) lvl) { set level; diffuse lvl+1 }).
void StreamingBfs::handle_bfs(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;  // dropped waiter of a failed allocation
  const rt::Word lvl = a.args[0];
  ctx.charge(1);
  if (lvl >= frag->app[kLevelWord]) return;  // no improvement: diffusion dies

  frag->app[kLevelWord] = lvl;
  // Diffusion: send the next level along every locally stored edge.
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_bfs_, e.dst, lvl + 1));
  }
  // Intra-vertex: forward the (unincremented) level down each ghost link so
  // the rest of this logical vertex's edge list diffuses too.
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_bfs_, ghost.value(), lvl));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_bfs_, rt::kNullAddress, lvl));
    }
  }
  // And around the rhizome ring (improvement stops the cycle when the next
  // root already holds this level).
  if (!frag->rhizome_next.is_null()) {
    ctx.propagate(rt::make_action(h_bfs_, frag->rhizome_next, lvl));
  }
}

// bfs-unsettle(v, expected): exact-level invalidation wave (header comment).
// Only fires when the fragment still sits exactly at `expected`; at chain
// quiescence every fragment of a vertex holds the vertex's level, so the
// whole chain clears together (the ghost forward keeps `expected`, the
// edge cascade uses expected + 1).
void StreamingBfs::handle_unsettle(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::Word expected = a.args[0];
  ctx.charge(1);
  if (frag->app[kLevelWord] != expected) return;  // survived, or already cleared

  frag->app[kLevelWord] = kUnreached;
  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_unsettle_, e.dst, expected + 1));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_unsettle_, ghost.value(), expected));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_unsettle_, rt::kNullAddress, expected));
    }
  }
}

// bfs-resettle(v, lvl): adopt lvl if better, then re-diffuse the current
// level along all local edges WITHOUT requiring an improvement at this
// fragment — the seed that lets monotone diffusion flow back into the
// invalidated region (and perform diffusion for edges inserted while the
// on-cell hooks were suppressed). Ghost links forward the resettle itself,
// carrying the settled level so cleared/fresh ghosts re-sync; the rhizome
// ring is intentionally not traversed (deletions require rhizomes == 1).
void StreamingBfs::handle_resettle(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) return;
  const rt::Word lvl = a.args[0];
  ctx.charge(1);
  if (lvl < frag->app[kLevelWord]) frag->app[kLevelWord] = lvl;
  const rt::Word level = frag->app[kLevelWord];
  if (level == kUnreached) return;

  ctx.charge(static_cast<std::uint32_t>(frag->edges.size()));
  for (const graph::EdgeRecord& e : frag->edges) {
    ctx.propagate(rt::make_action(h_bfs_, e.dst, level + 1));
  }
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_ready() && !ghost.value().is_null()) {
      ctx.propagate(rt::make_action(h_resettle_, ghost.value(), level));
    } else if (ghost.is_pending()) {
      ghost.enqueue(rt::make_action(h_resettle_, rt::kNullAddress, level));
    }
  }
}

// Phase I seed: a deleted edge (u, v) can only have carried v's level if v
// sits exactly one below u in the *pre-increment* fixed point (app state is
// frozen through the structural phases, so reading it here reads exactly
// that). Duplicate seeds for the same v are harmless — the wave is
// idempotent (the second arrival finds the level already cleared).
bool StreamingBfs::seed_invalidation(graph::StreamingGraph& g,
                                     std::span<const StreamEdge> ops) const {
  bool any = false;
  for (const StreamEdge& e : ops) {
    if (!e.is_delete()) continue;
    const rt::Word lu = g.app_word(e.src, kLevelWord);
    if (lu == kUnreached) continue;
    const rt::Word lv = g.app_word(e.dst, kLevelWord);
    if (lv == lu + 1) {
      g.chip().io_enqueue(rt::make_action(h_unsettle_, g.root_of(e.dst), lv));
      any = true;
    }
  }
  return any;
}

// Phase R seed. When anything was invalidated, every still-settled vertex
// re-diffuses (its level is provably exact, and collectively the surviving
// frontier dominates every shortest path into the cleared region). When
// nothing was invalidated, only the increment's insert sources need a kick
// — their diffusion was deferred while hooks were suppressed.
void StreamingBfs::seed_resettle(graph::StreamingGraph& g,
                                 std::span<const StreamEdge> ops,
                                 bool invalidated) const {
  if (invalidated) {
    for (std::uint64_t vid = 0; vid < g.num_vertices(); ++vid) {
      const rt::Word lvl = g.app_word(vid, kLevelWord);
      if (lvl != kUnreached) {
        g.chip().io_enqueue(rt::make_action(h_resettle_, g.root_of(vid), lvl));
      }
    }
    return;
  }
  std::vector<std::uint64_t> srcs;
  for (const StreamEdge& e : ops) {
    if (!e.is_delete()) srcs.push_back(e.src);
  }
  std::sort(srcs.begin(), srcs.end());
  srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
  for (const std::uint64_t vid : srcs) {
    const rt::Word lvl = g.app_word(vid, kLevelWord);
    if (lvl != kUnreached) {
      g.chip().io_enqueue(rt::make_action(h_resettle_, g.root_of(vid), lvl));
    }
  }
}

}  // namespace ccastream::apps
