#include "graph/fragment.hpp"

namespace ccastream::graph {

std::size_t VertexFragment::logical_bytes() const noexcept {
  // Modelled scratchpad layout: a 48-byte fragment header (id, root pointer,
  // flags, app words), 12 bytes per edge slot (packed address + weight), and
  // the per-ghost future state.
  constexpr std::size_t kHeaderBytes = 48;
  constexpr std::size_t kEdgeSlotBytes = 12;
  return kHeaderBytes + static_cast<std::size_t>(edge_capacity) * kEdgeSlotBytes +
         ghosts.size() * rt::FutureAddr::logical_bytes();
}

}  // namespace ccastream::graph
