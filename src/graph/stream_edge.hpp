// A streamed edge operation as produced by workload generators and consumed
// by the host-side graph builder: plain vertex ids, before address
// translation.
//
// Duplicate (src,dst) semantics (decided once, applied everywhere): the
// stream is a sequence of *observations*. On-chip, every insert appends an
// edge record (the stored graph is an observation multiset), and a delete
// removes EVERY record matching the pair — so a delete followed by a
// re-insert nets exactly one record whose weight is the most recent
// observation. The host-side simple-graph views (`wl::simplify`,
// `wl::undirected_simple`) follow the same last-write rule: when a pair is
// observed more than once, the collapsed edge keeps the LAST weight seen.
#pragma once

#include <cstdint>

namespace ccastream {

// Operation kind carried by a StreamEdge. Insert-only call sites that
// aggregate-initialize `{src, dst, weight}` keep working: the op defaults
// to kInsert.
enum class EdgeOp : std::uint8_t {
  kInsert = 0,  // append an edge record at src's vertex
  kDelete = 1,  // remove every (src,dst) record along src's fragment chain
};

struct StreamEdge {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint32_t weight = 1;
  EdgeOp op = EdgeOp::kInsert;

  [[nodiscard]] constexpr bool is_delete() const noexcept {
    return op == EdgeOp::kDelete;
  }

  friend constexpr bool operator==(const StreamEdge&, const StreamEdge&) = default;
};

// Convenience makers for op-mixed streams.
[[nodiscard]] constexpr StreamEdge make_insert_edge(std::uint64_t src, std::uint64_t dst,
                                                    std::uint32_t weight = 1) noexcept {
  return StreamEdge{src, dst, weight, EdgeOp::kInsert};
}

[[nodiscard]] constexpr StreamEdge make_delete_edge(std::uint64_t src,
                                                    std::uint64_t dst) noexcept {
  return StreamEdge{src, dst, 1, EdgeOp::kDelete};
}

}  // namespace ccastream
