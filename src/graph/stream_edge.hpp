// A streamed edge as produced by workload generators and consumed by the
// host-side graph builder: plain vertex ids, before address translation.
#pragma once

#include <cstdint>

namespace ccastream {

struct StreamEdge {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint32_t weight = 1;

  friend constexpr bool operator==(const StreamEdge&, const StreamEdge&) = default;
};

}  // namespace ccastream
