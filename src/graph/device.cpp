#include "graph/device.hpp"

#include <stdexcept>

namespace ccastream::graph {

AmccaDevice::AmccaDevice(sim::ChipConfig chip_cfg, RpvoConfig rpvo_cfg)
    : chip_(std::make_unique<sim::Chip>(chip_cfg)),
      proto_(std::make_unique<GraphProtocol>(*chip_, rpvo_cfg)) {}

StreamingGraph& AmccaDevice::allocate_vertices(GraphConfig cfg) {
  if (graph_ != nullptr) {
    throw std::logic_error("AmccaDevice: vertices already allocated");
  }
  graph_ = std::make_unique<StreamingGraph>(*proto_, cfg);
  return *graph_;
}

void AmccaDevice::register_data_transfer(std::span<const StreamEdge> edges) {
  StreamingGraph& g = graph();
  for (const StreamEdge& e : edges) g.enqueue_edge(e);
}

std::uint64_t AmccaDevice::run(Terminator& terminator, std::uint64_t max_cycles) {
  const std::uint64_t ran = chip_->run_until_quiescent(max_cycles);
  terminator.cycles_ += ran;
  terminator.satisfied_ = chip_->quiescent();
  return ran;
}

StreamingGraph& AmccaDevice::graph() {
  if (graph_ == nullptr) {
    throw std::logic_error(
        "AmccaDevice: call allocate_vertices() before streaming");
  }
  return *graph_;
}

}  // namespace ccastream::graph
