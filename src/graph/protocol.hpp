// The streaming-graph action protocol: insert-edge-action (paper Listings
// 4 & 6), the ghost allocation return trigger (paper Figure 3), and ghost
// initialisation. Applications plug in through AppHooks, which is how
// `insert-edge-action` chains into `bfs-action` ("inform the dst vertex
// about this new edge only if this src vertex has a valid level").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/fragment.hpp"
#include "runtime/action.hpp"
#include "runtime/context.hpp"
#include "sim/chip.hpp"

namespace ccastream::graph {

/// Object kind of VertexFragment in the chip's allocate factory table.
inline constexpr rt::ObjectKind kFragmentKind = 1;

/// Application integration points invoked by the graph protocol. All hooks
/// run *on-cell*, inside the action that triggered them, and may charge
/// cycles and propagate further actions (the diffusion).
struct AppHooks {
  /// After an edge lands in `frag`'s edge list. The BFS hook propagates
  /// bfs-action(edge.dst, level + 1) when frag's level is valid (Listing 4).
  std::function<void(rt::Context&, VertexFragment& frag, const EdgeRecord&)>
      on_edge_inserted;

  /// After `frag`'s ghost future fulfils with a freshly allocated fragment.
  /// Apps use this to push current state down the new chain link (the BFS
  /// hook forwards its level so edges already queued at the ghost diffuse).
  std::function<void(rt::Context&, VertexFragment& frag, rt::GlobalAddress ghost)>
      on_ghost_linked;

  /// Initial application state for fragments created by the allocator
  /// (ghosts) and, by default, for roots.
  AppState ghost_init{};
};

/// Counters specific to the graph protocol (chip-wide counters live in
/// sim::ChipStats). The protocol accumulates one block per engine
/// partition (stripe or tile) — handlers bump only their own partition's
/// plain counters, the same contention-free pattern the chip uses for
/// ChipStats — and GraphProtocol::stats() sums the blocks on demand. Every
/// field is a pure sum, so the totals are deterministic for any thread
/// count, partition shape, and rebalance schedule.
struct ProtocolStats {
  std::uint64_t edges_inserted = 0;    ///< Edge records physically appended.
  std::uint64_t inserts_forwarded = 0; ///< Inserts sent down a ready ghost link.
  std::uint64_t inserts_deferred = 0;  ///< Inserts parked on a pending future.
  std::uint64_t ghost_allocs_started = 0;
  std::uint64_t ghost_links_made = 0;
  std::uint64_t ghost_alloc_failures = 0;  ///< Future fulfilled with null.
  std::uint64_t bad_targets = 0;       ///< Actions whose target didn't resolve.
};

/// Registers and owns the graph handlers on a chip. One protocol instance
/// per chip; hooks may be swapped between runs (e.g. ingestion-only vs
/// ingestion+BFS experiments).
class GraphProtocol {
 public:
  explicit GraphProtocol(sim::Chip& chip, RpvoConfig cfg = {});

  GraphProtocol(const GraphProtocol&) = delete;
  GraphProtocol& operator=(const GraphProtocol&) = delete;

  /// Installs (or replaces) the application hooks. Pass a default-
  /// constructed AppHooks to run ingestion-only.
  void set_hooks(AppHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const AppHooks& hooks() const noexcept { return hooks_; }

  [[nodiscard]] const RpvoConfig& rpvo_config() const noexcept { return cfg_; }
  [[nodiscard]] rt::HandlerId insert_handler() const noexcept { return h_insert_; }
  /// Aggregated protocol counters (sum over the per-partition blocks).
  /// Call host-side, between runs.
  [[nodiscard]] ProtocolStats stats() const noexcept;
  [[nodiscard]] sim::Chip& chip() noexcept { return chip_; }

  /// Builds the insert-edge-action for an edge whose endpoints have been
  /// translated to root fragment addresses.
  [[nodiscard]] rt::Action make_insert(rt::GlobalAddress src_root,
                                       rt::GlobalAddress dst_root,
                                       std::uint32_t weight) const {
    return rt::make_action(h_insert_, src_root, dst_root.pack(),
                           static_cast<rt::Word>(weight));
  }

 private:
  void handle_insert(rt::Context& ctx, const rt::Action& a);
  void handle_ghost_reply(rt::Context& ctx, const rt::Action& a);
  void handle_init_ghost(rt::Context& ctx, const rt::Action& a);

  /// One per engine partition, cache-line separated so concurrent handlers
  /// on different partitions never share a written line.
  struct alignas(64) StatsBlock {
    ProtocolStats s;
  };
  [[nodiscard]] ProtocolStats& partition_stats(const rt::Context& ctx) {
    return blocks_[ctx.partition() % blocks_.size()].s;
  }

  sim::Chip& chip_;
  RpvoConfig cfg_;
  AppHooks hooks_;
  std::vector<StatsBlock> blocks_;
  rt::HandlerId h_insert_ = 0;
  rt::HandlerId h_ghost_reply_ = 0;
  rt::HandlerId h_init_ghost_ = 0;
};

}  // namespace ccastream::graph
