// The streaming-graph action protocol: insert-edge-action (paper Listings
// 4 & 6), the ghost allocation return trigger (paper Figure 3), ghost
// initialisation, and delete-edge-action (the sliding-window / expiry
// extension). Applications plug in through AppHooks, which is how
// `insert-edge-action` chains into `bfs-action` ("inform the dst vertex
// about this new edge only if this src vertex has a valid level").
//
// Deletion semantics: the stored graph is an observation multiset (every
// insert appends a record), so `delete-edge-action` removes EVERY record
// matching the destination root along the whole fragment chain — it is
// forwarded down every ghost branch unconditionally, which makes the
// "delete all matches" contract safe under ghost fan-out > 1. Deletions
// require rhizomes == 1 (StreamingGraph enforces this): with multiple
// roots a record's destination address depends on round-robin targeting
// and cannot be matched on-cell.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/fragment.hpp"
#include "graph/stream_edge.hpp"
#include "runtime/action.hpp"
#include "runtime/context.hpp"
#include "sim/chip.hpp"

namespace ccastream::graph {

class StreamingGraph;  // host-side builder (graph/builder.hpp)

/// Object kind of VertexFragment in the chip's allocate factory table.
inline constexpr rt::ObjectKind kFragmentKind = 1;

/// Application integration points invoked by the graph protocol. All hooks
/// run *on-cell*, inside the action that triggered them, and may charge
/// cycles and propagate further actions (the diffusion).
struct AppHooks {
  /// After an edge lands in `frag`'s edge list. The BFS hook propagates
  /// bfs-action(edge.dst, level + 1) when frag's level is valid (Listing 4).
  std::function<void(rt::Context&, VertexFragment& frag, const EdgeRecord&)>
      on_edge_inserted;

  /// After `frag`'s ghost future fulfils with a freshly allocated fragment.
  /// Apps use this to push current state down the new chain link (the BFS
  /// hook forwards its level so edges already queued at the ghost diffuse).
  std::function<void(rt::Context&, VertexFragment& frag, rt::GlobalAddress ghost)>
      on_ghost_linked;

  /// After a delete-edge removes `edge` from `frag`'s edge list (called once
  /// per removed record). Apps that can repair locally react here; BFS uses
  /// the host-orchestrated repair below instead and leaves this unset.
  std::function<void(rt::Context&, VertexFragment& frag, const EdgeRecord&)>
      on_edge_deleted;

  /// Host-side deletion repair, run by StreamingGraph::stream_increment for
  /// increments containing delete ops (see its header comment for the full
  /// phase protocol). Both callbacks run host-side between quiescent chip
  /// runs and inject repair actions through the IO channels.
  struct HostDeletionRepair {
    /// Phase I seed: called after the increment's structural ops have
    /// quiesced (with on-cell hooks suppressed, so app state is still
    /// pre-increment). Injects invalidation actions for the batch's delete
    /// ops; returns true if anything was injected (phase R then re-seeds
    /// every settled vertex instead of just the increment's insert sources).
    std::function<bool(class StreamingGraph&, std::span<const StreamEdge>)> invalidate;
    /// Phase R seed: called after invalidation quiesced. Injects re-settle
    /// kicks; the chip then diffuses to the monotone fixed point.
    std::function<void(class StreamingGraph&, std::span<const StreamEdge>,
                       bool invalidated)>
        resettle;
  };
  HostDeletionRepair host_repair;

  /// Initial application state for fragments created by the allocator
  /// (ghosts) and, by default, for roots.
  AppState ghost_init{};
};

/// Counters specific to the graph protocol (chip-wide counters live in
/// sim::ChipStats). The protocol accumulates one block per engine
/// partition (stripe or tile) — handlers bump only their own partition's
/// plain counters, the same contention-free pattern the chip uses for
/// ChipStats — and GraphProtocol::stats() sums the blocks on demand. Every
/// field is a pure sum, so the totals are deterministic for any thread
/// count, partition shape, and rebalance schedule.
struct ProtocolStats {
  std::uint64_t edges_inserted = 0;    ///< Edge records physically appended.
  std::uint64_t inserts_forwarded = 0; ///< Inserts sent down a ready ghost link.
  std::uint64_t inserts_deferred = 0;  ///< Inserts parked on a pending future.
  std::uint64_t edges_deleted = 0;     ///< Edge records physically removed.
  std::uint64_t deletes_forwarded = 0; ///< Deletes sent down ready ghost links.
  std::uint64_t deletes_deferred = 0;  ///< Deletes parked on a pending future.
  std::uint64_t deletes_unmatched = 0; ///< Deletes that died at the end of a
                                       ///< chain branch with no local match
                                       ///< (per-fragment events, not per-op:
                                       ///< fan-out > 1 can terminate several
                                       ///< branches for one delete op).
  std::uint64_t ghost_allocs_started = 0;
  std::uint64_t ghost_links_made = 0;
  std::uint64_t ghost_alloc_failures = 0;  ///< Future fulfilled with null.
  std::uint64_t bad_targets = 0;       ///< Actions whose target didn't resolve.
};

/// Registers and owns the graph handlers on a chip. One protocol instance
/// per chip; hooks may be swapped between runs (e.g. ingestion-only vs
/// ingestion+BFS experiments).
class GraphProtocol {
 public:
  explicit GraphProtocol(sim::Chip& chip, RpvoConfig cfg = {});

  GraphProtocol(const GraphProtocol&) = delete;
  GraphProtocol& operator=(const GraphProtocol&) = delete;

  /// Installs (or replaces) the application hooks. Pass a default-
  /// constructed AppHooks to run ingestion-only.
  void set_hooks(AppHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const AppHooks& hooks() const noexcept { return hooks_; }

  /// Temporarily silences the on-cell hooks (on_edge_inserted /
  /// on_ghost_linked / on_edge_deleted) without discarding them. The
  /// deletion-repair phases use this to stream structural ops over frozen
  /// application state. Host-side only, between runs — never toggle while
  /// the chip is executing.
  void set_hooks_suppressed(bool s) noexcept { hooks_suppressed_ = s; }
  [[nodiscard]] bool hooks_suppressed() const noexcept { return hooks_suppressed_; }

  [[nodiscard]] const RpvoConfig& rpvo_config() const noexcept { return cfg_; }
  [[nodiscard]] rt::HandlerId insert_handler() const noexcept { return h_insert_; }
  [[nodiscard]] rt::HandlerId delete_handler() const noexcept { return h_delete_; }
  /// Aggregated protocol counters (sum over the per-partition blocks).
  /// Call host-side, between runs.
  [[nodiscard]] ProtocolStats stats() const noexcept;
  [[nodiscard]] sim::Chip& chip() noexcept { return chip_; }

  /// Builds the insert-edge-action for an edge whose endpoints have been
  /// translated to root fragment addresses.
  [[nodiscard]] rt::Action make_insert(rt::GlobalAddress src_root,
                                       rt::GlobalAddress dst_root,
                                       std::uint32_t weight) const {
    return rt::make_action(h_insert_, src_root, dst_root.pack(),
                           static_cast<rt::Word>(weight));
  }

  /// Builds the delete-edge-action: removes every (src, dst) record along
  /// src's fragment chain. w1 mirrors the insert shape (unused in matching).
  [[nodiscard]] rt::Action make_delete(rt::GlobalAddress src_root,
                                       rt::GlobalAddress dst_root) const {
    return rt::make_action(h_delete_, src_root, dst_root.pack(), rt::Word{0});
  }

 private:
  void handle_insert(rt::Context& ctx, const rt::Action& a);
  void handle_delete(rt::Context& ctx, const rt::Action& a);
  void handle_ghost_reply(rt::Context& ctx, const rt::Action& a);
  void handle_init_ghost(rt::Context& ctx, const rt::Action& a);

  /// One per engine partition, cache-line separated so concurrent handlers
  /// on different partitions never share a written line.
  struct alignas(64) StatsBlock {
    ProtocolStats s;
  };
  [[nodiscard]] ProtocolStats& partition_stats(const rt::Context& ctx) {
    return blocks_[ctx.partition() % blocks_.size()].s;
  }

  sim::Chip& chip_;
  RpvoConfig cfg_;
  AppHooks hooks_;
  std::vector<StatsBlock> blocks_;
  bool hooks_suppressed_ = false;
  rt::HandlerId h_insert_ = 0;
  rt::HandlerId h_delete_ = 0;
  rt::HandlerId h_ghost_reply_ = 0;
  rt::HandlerId h_init_ghost_ = 0;
};

}  // namespace ccastream::graph
