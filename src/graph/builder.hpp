// Host-side façade over the chip + graph protocol: places root fragments,
// translates streamed (src, dst) vertex-id edges into insert-edge actions on
// the IO channels, runs increments to quiescence, and walks RPVO chains to
// extract results for verification (paper Listing 1's main()).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/fragment.hpp"
#include "graph/protocol.hpp"
#include "graph/stream_edge.hpp"
#include "sim/chip.hpp"

namespace ccastream::graph {

/// How vertex roots are spread over the compute cells.
enum class PlacementPolicy : std::uint8_t {
  kRoundRobin,  ///< vid % cells — fine-grain interleave (default).
  kBlocked,     ///< contiguous vid ranges per cell.
  kRandom,      ///< uniform random cell per vertex.
};

struct GraphConfig {
  std::uint64_t num_vertices = 0;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  std::uint64_t placement_seed = 0x5EED;
  /// Initial app state for root fragments; roots whose id appears in
  /// StreamingGraph::set_root_app_word get per-vertex overrides (e.g. the
  /// BFS source's level 0).
  AppState root_init{};
  /// Root fragments per vertex (the "Rhizomes" of the authors' companion
  /// design, arXiv:2402.06086): with k > 1, every vertex gets k roots on
  /// different cells linked in a ring; streamed edges round-robin across
  /// the source's roots and destination addresses round-robin across the
  /// destination's roots, spreading hub hotspots. Monotone apps (BFS,
  /// SSSP, components, reachability) forward improved state around the
  /// ring; PageRank/triangles/Jaccard require rhizomes == 1.
  std::uint32_t rhizomes = 1;
};

/// A delete op reached a graph built with rhizomes > 1. Stored edge
/// records point at round-robin-chosen destination roots, so a delete
/// could not find all its matches on-cell (see protocol.hpp); the
/// configurations are mutually exclusive, and the conflict is reported
/// up front as this structured error (a std::runtime_error, so generic
/// handlers keep working) rather than a fatal mid-increment.
class DeletionRhizomeError : public std::runtime_error {
 public:
  explicit DeletionRhizomeError(std::uint32_t rhizomes)
      : std::runtime_error(
            "deletion requires rhizomes == 1, but this graph was built with "
            "rhizomes == " +
            std::to_string(rhizomes) +
            "; drop the sliding window (--window 0 / unset CCASTREAM_WINDOW) "
            "or build the graph with --rhizomes 1") {}
};

/// Summary of one streamed increment (one paper data point of Fig 8/9).
struct IncrementReport {
  std::uint64_t edges = 0;    ///< Total ops in the increment (inserts + deletes).
  std::uint64_t deletes = 0;  ///< Delete ops among them.
  std::uint64_t cycles = 0;
  double energy_uj = 0.0;
  sim::ChipStats stats_delta;  ///< Full counter delta for deep analysis.
};

/// Host-readable digest of a saved snapshot: the logical graph (per-vertex
/// out-arcs as vertex ids) plus each vertex's primary-root application
/// words, recovered from the save_snapshot text format WITHOUT restoring
/// onto a chip. This is what the streaming service layer's query
/// front-end latches between increments (svc/stream_service.hpp): queries
/// read the digest while the chip executes the next increment.
struct SnapshotDigest {
  struct Arc {
    std::uint64_t dst = 0;
    std::uint32_t weight = 0;
    friend bool operator==(const Arc&, const Arc&) = default;
  };
  std::uint64_t num_vertices = 0;
  std::uint32_t rhizomes = 1;
  std::uint64_t num_edges = 0;  ///< Stored records summed over all chains.
  /// vid-major adjacency, merged across every fragment of the chain in
  /// chain order (root first, then ghosts in snapshot order).
  std::vector<std::vector<Arc>> adjacency;
  /// Primary-root app words per vertex (where monotone apps keep results).
  std::vector<AppState> app_words;
};

/// Parses a save_snapshot stream (v2 or legacy v1) into a SnapshotDigest.
/// Throws std::runtime_error on malformed input, exactly like
/// load_snapshot — the two readers share the format definitions in
/// graph/snapshot.cpp.
[[nodiscard]] SnapshotDigest parse_snapshot_digest(std::istream& in);

class StreamingGraph {
 public:
  /// Places all root fragments host-side (graph construction in the paper
  /// starts "by first allocating the root RPVO objects on the chip").
  /// Throws std::runtime_error if a scratchpad cannot hold its roots.
  StreamingGraph(GraphProtocol& protocol, GraphConfig cfg);

  // --- Setup ----------------------------------------------------------------

  /// Primary root fragment address of a vertex.
  [[nodiscard]] rt::GlobalAddress root_of(std::uint64_t vid) const {
    return roots_[vid * rhizomes_];
  }

  /// All rhizome root addresses of a vertex (size == config's `rhizomes`).
  [[nodiscard]] std::span<const rt::GlobalAddress> rhizome_roots(
      std::uint64_t vid) const {
    return {roots_.data() + vid * rhizomes_, rhizomes_};
  }

  /// Overrides one app word on *every* rhizome root of a vertex before
  /// streaming (host-side seeding: e.g. BFS source level = 0, component
  /// labels = vid).
  void set_root_app_word(std::uint64_t vid, std::size_t word, rt::Word value);

  // --- Streaming --------------------------------------------------------------

  /// Queues one edge op on the IO channels without running (inserts and
  /// structural deletes alike; no repair orchestration). Throws
  /// std::out_of_range when an endpoint id is outside the graph and
  /// DeletionRhizomeError for a delete with rhizomes > 1.
  void enqueue_edge(const StreamEdge& e);

  /// Queues a batch and runs the chip to quiescence — one streaming
  /// increment. Returns the per-increment report.
  ///
  /// Insert-only batches stream in a single phase, exactly as before.
  /// Batches containing delete ops run the four-phase deletion protocol
  /// (every phase is an ordinary deterministic chip run, so the whole
  /// increment stays cycle-identical across engines/threads/partitions):
  ///   S-D  all deletes stream and quiesce (on-cell app hooks suppressed
  ///        while the installed app provides host repair);
  ///   S-I  all inserts stream and quiesce (hooks still suppressed) —
  ///        app state is untouched so far, so the pre-increment fixed
  ///        point is what phase I reads;
  ///   I    AppHooks::host_repair.invalidate seeds un-settle waves for
  ///        severed dependencies; the chip runs them to quiescence;
  ///   R    AppHooks::host_repair.resettle seeds re-settlement and the
  ///        monotone diffusion converges on the repaired fixed point.
  /// Deleting increments are validated up front: rhizomes > 1 throws
  /// DeletionRhizomeError before any op is enqueued, and an app that
  /// chains on inserts (on_edge_inserted set) but has neither host_repair
  /// nor on_edge_deleted is a fatal misuse — silently deleting structure
  /// under it would leave its state stale with no repair story. Hook-free
  /// structural streaming (no app installed) still gets plain
  /// structure-only deletion.
  /// The report's cycle/energy deltas span all phases.
  IncrementReport stream_increment(std::span<const StreamEdge> edges,
                                   std::uint64_t max_cycles = sim::Chip::kNoLimit);

  /// Runs whatever work is pending to quiescence (used after host-injected
  /// seed actions). Returns cycles executed.
  std::uint64_t run(std::uint64_t max_cycles = sim::Chip::kNoLimit);

  // --- Inspection (host side, not simulated) -----------------------------------

  /// All fragment addresses of a vertex, root first, following every ghost
  /// link that is ready.
  [[nodiscard]] std::vector<rt::GlobalAddress> fragments_of(std::uint64_t vid) const;

  /// Number of edge records physically stored across the vertex's chain.
  [[nodiscard]] std::uint64_t stored_degree(std::uint64_t vid) const;

  /// Out-neighbours (as vertex ids) across the whole chain, with weights.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint32_t>> neighbors(
      std::uint64_t vid) const;

  /// Root fragment's app word (where monotone apps keep their result).
  [[nodiscard]] rt::Word app_word(std::uint64_t vid, std::size_t word) const;

  /// Sum of an app word over *all* fragments of the vertex (used by apps
  /// that accumulate per-fragment, e.g. triangle counting).
  [[nodiscard]] rt::Word app_word_chain_sum(std::uint64_t vid, std::size_t word) const;

  /// Maps a root fragment address back to its vertex id.
  [[nodiscard]] std::optional<std::uint64_t> vid_of_root(rt::GlobalAddress a) const;

  // --- Checkpoint / restore ---------------------------------------------------

  /// Serialises the whole graph (every fragment on the chip, including
  /// ghost-chain structure and application state) to a text snapshot. The
  /// chip must be quiescent — pending futures cannot be checkpointed.
  /// Throws std::logic_error if it is not.
  void save_snapshot(std::ostream& out) const;

  /// Reconstructs a graph from a snapshot onto a *fresh* chip (same
  /// geometry and RPVO configuration as at save time; validated). The
  /// restored graph continues streaming exactly where the saved one
  /// stopped. Throws std::runtime_error on format or config mismatch.
  [[nodiscard]] static std::unique_ptr<StreamingGraph> load_snapshot(
      GraphProtocol& protocol, std::istream& in);

  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return cfg_.num_vertices;
  }
  /// Root fragments per vertex (>= 1).
  [[nodiscard]] std::uint32_t rhizome_count() const noexcept { return rhizomes_; }
  [[nodiscard]] GraphProtocol& protocol() noexcept { return proto_; }
  [[nodiscard]] sim::Chip& chip() noexcept { return proto_.chip(); }
  [[nodiscard]] const sim::Chip& chip() const noexcept { return chip_; }

 private:
  struct RestoreTag {};
  /// Restore constructor: adopts already-placed roots instead of allocating.
  StreamingGraph(GraphProtocol& protocol, GraphConfig cfg, RestoreTag);

  GraphProtocol& proto_;
  sim::Chip& chip_;
  GraphConfig cfg_;
  std::uint32_t rhizomes_ = 1;
  /// vid-major: roots_[vid * rhizomes_ + i] is vertex vid's i-th root.
  std::vector<rt::GlobalAddress> roots_;
  std::unordered_map<rt::GlobalAddress, std::uint64_t> root_to_vid_;
  std::uint64_t src_rr_ = 0;  ///< round-robin cursors for edge streaming
  std::uint64_t dst_rr_ = 0;
};

}  // namespace ccastream::graph
