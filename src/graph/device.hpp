// The accelerator-style host API of paper Listing 1:
//
//   AMCCA_Device dev = ...;
//   vertices = /* allocate vertices on the device */;
//   AMCCA_REGISTER_ACTION(dev, INSERT_ACTION, "insert-edge-action");
//   dev.register_data_transfer(vertices, edges, INSERT_ACTION);
//   AMCCA_Terminator terminator;
//   dev.run(terminator);
//
// AmccaDevice bundles the chip, the graph protocol and the streaming graph
// behind that exact flow. It is a convenience wrapper: everything it does
// is available on the underlying components for callers that need control.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "graph/builder.hpp"
#include "graph/protocol.hpp"
#include "graph/stream_edge.hpp"
#include "sim/chip.hpp"

namespace ccastream::graph {

/// Host-side handle for termination detection (paper Listing 1's
/// AMCCA_Terminator). The device satisfies it when the diffusion reaches
/// global quiescence.
class Terminator {
 public:
  [[nodiscard]] bool satisfied() const noexcept { return satisfied_; }
  [[nodiscard]] std::uint64_t cycles_waited() const noexcept { return cycles_; }

 private:
  friend class AmccaDevice;
  bool satisfied_ = false;
  std::uint64_t cycles_ = 0;
};

class AmccaDevice {
 public:
  explicit AmccaDevice(sim::ChipConfig chip_cfg = {}, RpvoConfig rpvo_cfg = {});

  /// AMCCA_REGISTER_ACTION: registers a user action handler.
  rt::HandlerId register_action(std::string_view name, rt::Handler handler) {
    return chip_->handlers().register_handler(name, std::move(handler));
  }

  /// "Allocate vertices on the device and get their addresses."
  /// Must be called exactly once, before streaming.
  StreamingGraph& allocate_vertices(GraphConfig cfg);

  /// "Register the edge transfer with the IO channels": queues the edges on
  /// the IO cells as insert-edge actions. The transfer happens while
  /// run() executes, one action per IO cell per cycle.
  void register_data_transfer(std::span<const StreamEdge> edges);

  /// "Diffuse and wait on the terminator": runs the chip until the
  /// diffusion terminates (or max_cycles elapse), then satisfies the
  /// terminator. Returns cycles executed.
  std::uint64_t run(Terminator& terminator,
                    std::uint64_t max_cycles = sim::Chip::kNoLimit);

  [[nodiscard]] sim::Chip& chip() noexcept { return *chip_; }
  [[nodiscard]] GraphProtocol& protocol() noexcept { return *proto_; }
  [[nodiscard]] StreamingGraph& graph();
  [[nodiscard]] bool has_graph() const noexcept { return graph_ != nullptr; }

 private:
  std::unique_ptr<sim::Chip> chip_;
  std::unique_ptr<GraphProtocol> proto_;
  std::unique_ptr<StreamingGraph> graph_;
};

}  // namespace ccastream::graph
