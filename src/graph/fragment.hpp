// The Recursively Parallel Vertex Object (RPVO) fragment — paper Figure 1.
//
// A logical vertex is stored as a chain (or small tree, with fan-out > 1) of
// fragments spread across compute cells. Each fragment holds a bounded
// in-place edge list and one future-of-pointer per ghost slot; the root
// fragment is the vertex's public address. Edge inserts that overflow a
// fragment flow through the ghost future to the next fragment, allocating
// it on demand via the asynchronous continuation protocol.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/future.hpp"
#include "runtime/types.hpp"

namespace ccastream::graph {

/// Number of application state words in each fragment (BFS level, SSSP
/// distance, component label, triangle counter, ... — one app at a time).
inline constexpr std::size_t kAppWords = 4;
using AppState = std::array<rt::Word, kAppWords>;

/// An edge stored in a fragment's edge list. The destination is the *root*
/// address of the destination vertex (paper Listing 3: edges carry the
/// vertex pointer, not the id, so diffusion needs no translation step).
struct EdgeRecord {
  rt::GlobalAddress dst;
  std::uint32_t weight = 1;
};

/// Shape parameters of the RPVO structure.
struct RpvoConfig {
  std::uint32_t edge_capacity = 16;  ///< Edge slots per fragment.
  std::uint32_t ghost_fanout = 1;    ///< Ghost futures per fragment (paper: >= 1).
};

/// One fragment of a vertex (root or ghost).
class VertexFragment final : public rt::ArenaObject {
 public:
  VertexFragment(std::uint64_t vertex_id, bool as_root, const RpvoConfig& cfg,
                 const AppState& app_init)
      : vid(vertex_id),
        is_root(as_root),
        edge_capacity(cfg.edge_capacity),
        ghosts(cfg.ghost_fanout),
        app(app_init) {
    edges.reserve(edge_capacity);
  }

  /// vertex-has-room of paper Listing 6.
  [[nodiscard]] bool has_room() const noexcept {
    return edges.size() < edge_capacity;
  }

  /// Ghost slot to overflow into next (round-robin across the fan-out).
  [[nodiscard]] std::uint32_t next_ghost_slot() noexcept {
    const std::uint32_t s = next_ghost_;
    next_ghost_ = (next_ghost_ + 1) % static_cast<std::uint32_t>(ghosts.size());
    return s;
  }

  /// Scratchpad footprint: fixed header + the reserved edge array + ghost
  /// future bookkeeping. Charged in full at allocation (the edge list is a
  /// fixed-capacity in-place array on the real hardware).
  [[nodiscard]] std::size_t logical_bytes() const noexcept override;

  std::uint64_t vid;                 ///< Vertex id (ghosts learn it via init).
  rt::GlobalAddress root;            ///< Root fragment address (self for roots).
  /// Next root in this vertex's rhizome ring (see StreamingGraph: vertices
  /// may have several root fragments to spread hub load, after the authors'
  /// companion "Rhizomes" design). Null when the vertex has a single root
  /// and on ghost fragments. Monotone apps forward improved state around
  /// the ring so every rhizome converges to the vertex's value.
  rt::GlobalAddress rhizome_next;
  bool is_root;
  std::uint32_t edge_capacity;
  std::vector<EdgeRecord> edges;     ///< Local slice of the edge list.
  std::vector<rt::FutureAddr> ghosts;
  std::uint64_t inserts_seen = 0;    ///< Inserts routed through this fragment;
                                     ///< at the root this is the vertex's
                                     ///< cumulative insert count.
  std::uint64_t deletes_seen = 0;    ///< Delete ops routed through this
                                     ///< fragment, mirroring inserts_seen.
                                     ///< (inserts_seen - deletes_seen at the
                                     ///< root is NOT the live degree: one
                                     ///< delete op can remove several records
                                     ///< and an unmatched delete removes none.
                                     ///< Live degree is stored_degree().)
  AppState app;                      ///< Application state (level, dist, ...).

 private:
  std::uint32_t next_ghost_ = 0;
};

}  // namespace ccastream::graph
