// Checkpoint/restore of the streaming graph (StreamingGraph::save_snapshot /
// load_snapshot). The snapshot captures the *physical* state of every
// vertex fragment — scratchpad placement, edge records (as global
// addresses), ghost link values, rhizome links, and application words — so
// a restored chip is bit-identical as far as the graph protocol and the
// applications are concerned, and streaming can continue seamlessly.
//
// Only quiescent chips can be checkpointed: a pending ghost future has an
// allocation continuation in flight, which has no meaningful serialised
// form.
//
// Text format (one fragment block per arena slot, cells in index order):
//   ccastream-snapshot v2
//   chip <width> <height>
//   rpvo <edge_capacity> <ghost_fanout>
//   graph <num_vertices> <rhizomes> <src_rr> <dst_rr>
//   frag <cc> <slot> <vid> <is_root> <root> <rhizome_next> <inserts_seen> <deletes_seen>
//   app <w0> <w1> <w2> <w3>
//   edges <n> [<dst> <weight>]...
//   ghosts <k> [R <addr> | E]...
//   end
//
// v1 snapshots (no <deletes_seen> on the frag line) still load; the
// counter restores as 0.
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace ccastream::graph {

namespace {

constexpr std::string_view kMagic = "ccastream-snapshot";
constexpr std::string_view kVersion = "v2";
constexpr std::string_view kVersionLegacy = "v1";  // pre-deletion format

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph snapshot: " + what);
}

void expect_tag(std::istream& in, std::string_view tag) {
  std::string got;
  if (!(in >> got) || got != tag) {
    fail("expected '" + std::string(tag) + "', got '" + got + "'");
  }
}

}  // namespace

void StreamingGraph::save_snapshot(std::ostream& out) const {
  sim::Chip& chip = const_cast<sim::Chip&>(chip_);
  if (!chip.quiescent()) {
    throw std::logic_error(
        "graph snapshot: chip must be quiescent (run to termination first)");
  }
  const auto& mesh = chip.geometry();
  const auto& rpvo = proto_.rpvo_config();

  out << kMagic << ' ' << kVersion << '\n';
  out << "chip " << mesh.width() << ' ' << mesh.height() << '\n';
  out << "rpvo " << rpvo.edge_capacity << ' ' << rpvo.ghost_fanout << '\n';
  out << "graph " << cfg_.num_vertices << ' ' << rhizomes_ << ' ' << src_rr_
      << ' ' << dst_rr_ << '\n';
  // The roots table is recorded explicitly so the restored graph addresses
  // the same primary/secondary rhizome order the saved one used.
  out << "roots " << roots_.size();
  for (const auto a : roots_) out << ' ' << a.pack();
  out << '\n';

  for (std::uint32_t cc = 0; cc < mesh.cell_count(); ++cc) {
    const auto& arena = chip.cell(cc).arena;
    for (std::uint32_t slot = 0; slot < arena.object_count(); ++slot) {
      const auto* frag = dynamic_cast<const VertexFragment*>(
          chip.cell(cc).arena.get(slot));
      if (frag == nullptr) {
        fail("cell " + std::to_string(cc) +
             " holds a non-fragment object; only graph-only chips can be "
             "checkpointed");
      }
      out << "frag " << cc << ' ' << slot << ' ' << frag->vid << ' '
          << (frag->is_root ? 1 : 0) << ' ' << frag->root.pack() << ' '
          << frag->rhizome_next.pack() << ' ' << frag->inserts_seen << ' '
          << frag->deletes_seen << '\n';
      out << "app";
      for (const auto w : frag->app) out << ' ' << w;
      out << '\n';
      out << "edges " << frag->edges.size();
      for (const auto& e : frag->edges) out << ' ' << e.dst.pack() << ' ' << e.weight;
      out << '\n';
      out << "ghosts " << frag->ghosts.size();
      for (const auto& g : frag->ghosts) {
        if (g.is_pending()) fail("pending ghost future cannot be checkpointed");
        if (g.is_ready()) {
          out << " R " << g.value().pack();
        } else {
          out << " E";
        }
      }
      out << '\n';
      out << "end\n";
    }
  }
}

StreamingGraph::StreamingGraph(GraphProtocol& protocol, GraphConfig cfg,
                               RestoreTag)
    : proto_(protocol),
      chip_(protocol.chip()),
      cfg_(cfg),
      rhizomes_(cfg.rhizomes == 0 ? 1 : cfg.rhizomes) {}

std::unique_ptr<StreamingGraph> StreamingGraph::load_snapshot(
    GraphProtocol& protocol, std::istream& in) {
  sim::Chip& chip = protocol.chip();

  expect_tag(in, kMagic);
  std::string version;
  if (!(in >> version) || (version != kVersion && version != kVersionLegacy)) {
    fail("unsupported snapshot version '" + version + "'");
  }
  const bool legacy_v1 = version == kVersionLegacy;
  expect_tag(in, "chip");
  std::uint32_t width = 0, height = 0;
  in >> width >> height;
  if (width != chip.geometry().width() || height != chip.geometry().height()) {
    fail("chip geometry mismatch: snapshot is " + std::to_string(width) + "x" +
         std::to_string(height));
  }
  expect_tag(in, "rpvo");
  std::uint32_t edge_capacity = 0, ghost_fanout = 0;
  in >> edge_capacity >> ghost_fanout;
  if (edge_capacity != protocol.rpvo_config().edge_capacity ||
      ghost_fanout != protocol.rpvo_config().ghost_fanout) {
    fail("RPVO configuration mismatch");
  }
  expect_tag(in, "graph");
  GraphConfig gc;
  std::uint64_t src_rr = 0, dst_rr = 0;
  in >> gc.num_vertices >> gc.rhizomes >> src_rr >> dst_rr;
  if (!in) fail("truncated header");

  auto g = std::unique_ptr<StreamingGraph>(
      new StreamingGraph(protocol, gc, RestoreTag{}));
  g->src_rr_ = src_rr;
  g->dst_rr_ = dst_rr;

  expect_tag(in, "roots");
  std::size_t nroots = 0;
  in >> nroots;
  if (nroots != gc.num_vertices * g->rhizomes_) fail("roots table size mismatch");
  g->roots_.reserve(nroots);
  for (std::size_t i = 0; i < nroots; ++i) {
    rt::Word w = 0;
    in >> w;
    g->roots_.push_back(rt::GlobalAddress::unpack(w));
    g->root_to_vid_.emplace(g->roots_.back(), i / g->rhizomes_);
  }
  if (!in) fail("truncated roots table");

  const RpvoConfig& rpvo = protocol.rpvo_config();
  std::string tag;
  while (in >> tag) {
    if (tag != "frag") fail("expected 'frag', got '" + tag + "'");
    std::uint32_t cc = 0, slot = 0;
    std::uint64_t vid = 0;
    int is_root = 0;
    rt::Word root_w = 0, rhz_w = 0;
    std::uint64_t inserts_seen = 0;
    std::uint64_t deletes_seen = 0;
    in >> cc >> slot >> vid >> is_root >> root_w >> rhz_w >> inserts_seen;
    if (!legacy_v1) in >> deletes_seen;

    AppState app{};
    expect_tag(in, "app");
    for (auto& w : app) in >> w;

    auto frag = std::make_unique<VertexFragment>(vid, is_root != 0, rpvo, app);
    frag->root = rt::GlobalAddress::unpack(root_w);
    frag->rhizome_next = rt::GlobalAddress::unpack(rhz_w);
    frag->inserts_seen = inserts_seen;
    frag->deletes_seen = deletes_seen;

    expect_tag(in, "edges");
    std::size_t nedges = 0;
    in >> nedges;
    if (nedges > rpvo.edge_capacity) fail("fragment overflows edge capacity");
    for (std::size_t i = 0; i < nedges; ++i) {
      rt::Word dst_w = 0;
      std::uint32_t weight = 0;
      in >> dst_w >> weight;
      frag->edges.push_back({rt::GlobalAddress::unpack(dst_w), weight});
    }

    expect_tag(in, "ghosts");
    std::size_t nghosts = 0;
    in >> nghosts;
    if (nghosts != frag->ghosts.size()) fail("ghost fan-out mismatch");
    for (std::size_t i = 0; i < nghosts; ++i) {
      std::string state;
      in >> state;
      if (state == "R") {
        rt::Word addr_w = 0;
        in >> addr_w;
        frag->ghosts[i].set_pending();
        // Restore to ready without scheduling anything: drain into a void.
        struct NullCtx final : rt::Context {
          explicit NullCtx(const rt::MeshGeometry& m) : mesh(m) {}
          [[nodiscard]] std::uint32_t cc() const override { return 0; }
          [[nodiscard]] const rt::MeshGeometry& geometry() const override {
            return mesh;
          }
          void propagate(const rt::Action&) override {}
          void schedule_local(const rt::Action&) override {}
          void charge(std::uint32_t) override {}
          [[nodiscard]] rt::ArenaObject* deref(rt::GlobalAddress) override {
            return nullptr;
          }
          std::optional<rt::GlobalAddress> allocate_local(rt::ObjectKind) override {
            return std::nullopt;
          }
          void call_cc_allocate(rt::ObjectKind, rt::GlobalAddress, rt::HandlerId,
                                rt::Word) override {}
          [[nodiscard]] rt::Xoshiro256& rng() override { return rng_; }
          const rt::MeshGeometry& mesh;
          rt::Xoshiro256 rng_{0};
        } null_ctx(chip.geometry());
        frag->ghosts[i].fulfil(rt::GlobalAddress::unpack(addr_w), null_ctx);
      } else if (state != "E") {
        fail("bad ghost state '" + state + "'");
      }
    }
    expect_tag(in, "end");
    if (!in) fail("truncated fragment record");

    const bool root_flag = is_root != 0;
    const auto addr = chip.host_allocate(cc, std::move(frag));
    if (!addr || addr->slot != slot) {
      fail("fragment placement diverged (cell " + std::to_string(cc) +
           "): restore requires a fresh chip");
    }
    if (root_flag) {
      const auto it = g->root_to_vid_.find(*addr);
      if (it == g->root_to_vid_.end() || it->second != vid) {
        fail("root fragment not present in the roots table");
      }
    }
  }

  for (const auto a : g->roots_) {
    const auto* frag = chip.as<VertexFragment>(a);
    if (frag == nullptr || !frag->is_root) fail("roots table points at a non-root");
  }
  return g;
}

SnapshotDigest parse_snapshot_digest(std::istream& in) {
  expect_tag(in, kMagic);
  std::string version;
  if (!(in >> version) || (version != kVersion && version != kVersionLegacy)) {
    fail("unsupported snapshot version '" + version + "'");
  }
  const bool legacy_v1 = version == kVersionLegacy;
  expect_tag(in, "chip");
  std::uint32_t width = 0, height = 0;
  in >> width >> height;
  expect_tag(in, "rpvo");
  std::uint32_t edge_capacity = 0, ghost_fanout = 0;
  in >> edge_capacity >> ghost_fanout;
  expect_tag(in, "graph");
  SnapshotDigest d;
  std::uint64_t src_rr = 0, dst_rr = 0;
  in >> d.num_vertices >> d.rhizomes >> src_rr >> dst_rr;
  if (!in) fail("truncated header");
  if (d.rhizomes == 0) fail("zero rhizome count");

  expect_tag(in, "roots");
  std::size_t nroots = 0;
  in >> nroots;
  if (nroots != d.num_vertices * d.rhizomes) fail("roots table size mismatch");
  std::vector<rt::GlobalAddress> roots;
  roots.reserve(nroots);
  std::unordered_map<rt::GlobalAddress, std::uint64_t> root_to_vid;
  for (std::size_t i = 0; i < nroots; ++i) {
    rt::Word w = 0;
    in >> w;
    roots.push_back(rt::GlobalAddress::unpack(w));
    root_to_vid.emplace(roots.back(), i / d.rhizomes);
  }
  if (!in) fail("truncated roots table");

  // Pass 1: every fragment block, keyed by its chip address so the chain
  // walk below can follow ghost links without a chip to dereference.
  struct DigestFrag {
    std::vector<SnapshotDigest::Arc> arcs;
    std::vector<rt::GlobalAddress> ghost_links;
    AppState app{};
    std::uint64_t vid = 0;
    bool is_root = false;
  };
  std::unordered_map<rt::GlobalAddress, DigestFrag> frags;
  std::string tag;
  while (in >> tag) {
    if (tag != "frag") fail("expected 'frag', got '" + tag + "'");
    std::uint32_t cc = 0, slot = 0;
    int is_root = 0;
    rt::Word root_w = 0, rhz_w = 0;
    std::uint64_t inserts_seen = 0, deletes_seen = 0;
    DigestFrag f;
    in >> cc >> slot >> f.vid >> is_root >> root_w >> rhz_w >> inserts_seen;
    if (!legacy_v1) in >> deletes_seen;
    f.is_root = is_root != 0;

    expect_tag(in, "app");
    for (auto& w : f.app) in >> w;

    expect_tag(in, "edges");
    std::size_t nedges = 0;
    in >> nedges;
    if (nedges > edge_capacity) fail("fragment overflows edge capacity");
    for (std::size_t i = 0; i < nedges; ++i) {
      rt::Word dst_w = 0;
      std::uint32_t weight = 0;
      in >> dst_w >> weight;
      const auto it = root_to_vid.find(rt::GlobalAddress::unpack(dst_w));
      if (it == root_to_vid.end()) fail("edge record targets a non-root");
      f.arcs.push_back({it->second, weight});
    }

    expect_tag(in, "ghosts");
    std::size_t nghosts = 0;
    in >> nghosts;
    if (nghosts != ghost_fanout) fail("ghost fan-out mismatch");
    for (std::size_t i = 0; i < nghosts; ++i) {
      std::string state;
      in >> state;
      if (state == "R") {
        rt::Word addr_w = 0;
        in >> addr_w;
        const auto link = rt::GlobalAddress::unpack(addr_w);
        if (!link.is_null()) f.ghost_links.push_back(link);
      } else if (state != "E") {
        fail("bad ghost state '" + state + "'");
      }
    }
    expect_tag(in, "end");
    if (!in) fail("truncated fragment record");
    frags.emplace(rt::GlobalAddress{cc, slot}, std::move(f));
  }

  // Pass 2: per vertex, the same breadth-first rhizome/ghost chain walk as
  // StreamingGraph::fragments_of, so digest adjacency order matches
  // neighbors() exactly.
  d.adjacency.resize(d.num_vertices);
  d.app_words.resize(d.num_vertices);
  for (std::uint64_t vid = 0; vid < d.num_vertices; ++vid) {
    std::vector<rt::GlobalAddress> frontier(
        roots.begin() + static_cast<std::ptrdiff_t>(vid * d.rhizomes),
        roots.begin() + static_cast<std::ptrdiff_t>((vid + 1) * d.rhizomes));
    bool first = true;
    while (!frontier.empty()) {
      std::vector<rt::GlobalAddress> next;
      for (const auto addr : frontier) {
        const auto it = frags.find(addr);
        if (it == frags.end()) fail("chain link points at a missing fragment");
        const DigestFrag& f = it->second;
        if (f.vid != vid) fail("chain link crosses vertices");
        if (first) {
          if (!f.is_root) fail("roots table points at a non-root");
          d.app_words[vid] = f.app;  // primary root carries the result words
          first = false;
        }
        d.adjacency[vid].insert(d.adjacency[vid].end(), f.arcs.begin(),
                                f.arcs.end());
        d.num_edges += f.arcs.size();
        next.insert(next.end(), f.ghost_links.begin(), f.ghost_links.end());
      }
      frontier = std::move(next);
    }
  }
  return d;
}

}  // namespace ccastream::graph
