#include "graph/protocol.hpp"

#include <algorithm>
#include <memory>

namespace ccastream::graph {

GraphProtocol::GraphProtocol(sim::Chip& chip, RpvoConfig cfg)
    : chip_(chip), cfg_(cfg) {
  blocks_.resize(std::max<std::uint32_t>(1, chip.partitions()));
  // A fragment must hold at least one edge (capacity 0 would grow an
  // infinite ghost chain) and have at least one ghost slot.
  if (cfg_.edge_capacity == 0) cfg_.edge_capacity = 1;
  if (cfg_.ghost_fanout == 0) cfg_.ghost_fanout = 1;
  // Ghost fragments are created remotely by the allocate system action; the
  // factory produces a blank ghost (identity arrives via init-ghost).
  chip_.register_object_kind(kFragmentKind, [this]() {
    return std::make_unique<VertexFragment>(/*vertex_id=*/0, /*root=*/false, cfg_,
                                            hooks_.ghost_init);
  });

  h_insert_ = chip_.handlers().register_handler(
      "graph.insert-edge",
      [this](rt::Context& ctx, const rt::Action& a) { handle_insert(ctx, a); });
  h_delete_ = chip_.handlers().register_handler(
      "graph.delete-edge",
      [this](rt::Context& ctx, const rt::Action& a) { handle_delete(ctx, a); });
  h_ghost_reply_ = chip_.handlers().register_handler(
      "graph.ghost-reply",
      [this](rt::Context& ctx, const rt::Action& a) { handle_ghost_reply(ctx, a); });
  h_init_ghost_ = chip_.handlers().register_handler(
      "graph.init-ghost",
      [this](rt::Context& ctx, const rt::Action& a) { handle_init_ghost(ctx, a); });
}

// insert-edge-action — paper Listing 6.
// args: w0 = dst root address, w1 = weight.
void GraphProtocol::handle_insert(rt::Context& ctx, const rt::Action& a) {
  ProtocolStats& ps = partition_stats(ctx);
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) {
    ++ps.bad_targets;
    return;
  }
  ++frag->inserts_seen;
  ctx.charge(1);  // has-room test + degree bookkeeping

  if (frag->has_room()) {
    // (insert-edge v e)
    const EdgeRecord edge{rt::GlobalAddress::unpack(a.args[0]),
                          static_cast<std::uint32_t>(a.args[1])};
    frag->edges.push_back(edge);
    ++ps.edges_inserted;
    ctx.charge(1);
    // Chain into the application (Listing 4: propagate bfs-action ...).
    if (hooks_.on_edge_inserted && !hooks_suppressed_) {
      hooks_.on_edge_inserted(ctx, *frag, edge);
    }
    return;
  }

  // Edge list full: the edge must flow to a ghost fragment.
  rt::FutureAddr& ghost = frag->ghosts[frag->next_ghost_slot()];
  const auto slot_tag = static_cast<rt::Word>(&ghost - frag->ghosts.data());

  if (ghost.is_empty()) {
    // Ghost not allocated yet: mark the future pending and fire the
    // allocate continuation at a cell chosen by the chip's policy
    // (Listing 6 lines 14-18). The edge itself waits on the future.
    ghost.set_pending();
    ctx.call_cc_allocate(kFragmentKind, a.target, h_ghost_reply_, slot_tag);
    ++ps.ghost_allocs_started;
    rt::Action deferred = a;
    deferred.target = rt::kNullAddress;  // patched with the value at fulfilment
    ghost.enqueue(deferred);
    ++ps.inserts_deferred;
    ctx.charge(2);
  } else if (ghost.is_pending()) {
    // Allocation already in flight: park this insert on the wait queue
    // (Listing 6 lines 21-26, Figure 4 state 2).
    rt::Action deferred = a;
    deferred.target = rt::kNullAddress;
    ghost.enqueue(deferred);
    ++ps.inserts_deferred;
    ctx.charge(1);
  } else {
    // Ghost exists: recursively propagate the insert down the chain
    // (Listing 6 lines 27-30).
    rt::Action fwd = a;
    fwd.target = ghost.value();
    if (fwd.target.is_null()) {
      // A previous allocation failed terminally; surface and drop.
      ++ps.bad_targets;
      return;
    }
    ctx.propagate(fwd);
    ++ps.inserts_forwarded;
    ctx.charge(1);
  }
}

// Return trigger of the allocate continuation — paper Figure 3 step 3 and
// Figure 4 states 3-4. args: w0 = new fragment address (null on failure),
// w1 = ghost slot index.
void GraphProtocol::handle_ghost_reply(rt::Context& ctx, const rt::Action& a) {
  ProtocolStats& ps = partition_stats(ctx);
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) {
    ++ps.bad_targets;
    return;
  }
  const rt::GlobalAddress ghost_addr = rt::GlobalAddress::unpack(a.args[0]);
  const auto slot = static_cast<std::size_t>(a.args[1]);
  if (slot >= frag->ghosts.size()) {
    ++ps.bad_targets;
    return;
  }
  ctx.charge(2);

  if (ghost_addr.is_null()) {
    // The allocator exhausted its forwarding budget: every scratchpad it
    // probed was full. Fulfil with null — parked inserts are dropped at
    // dispatch and counted as faults, and the failure is visible here.
    ++ps.ghost_alloc_failures;
  } else {
    ++ps.ghost_links_made;
    ctx.count(rt::SimCounter::kFuturesFulfilled, 1);
    // Teach the new ghost its identity (vertex id + root address) so
    // chain-walking applications can orient themselves.
    ctx.propagate(rt::make_action(h_init_ghost_, ghost_addr,
                                  static_cast<rt::Word>(frag->vid),
                                  frag->root.pack()));
  }

  const int drained = frag->ghosts[slot].fulfil(ghost_addr, ctx);
  if (drained > 0) {
    ctx.count(rt::SimCounter::kFutureWaitersDrained,
              static_cast<std::uint64_t>(drained));
  }
  if (!ghost_addr.is_null() && hooks_.on_ghost_linked && !hooks_suppressed_) {
    hooks_.on_ghost_linked(ctx, *frag, ghost_addr);
  }
}

// delete-edge-action — the expiry/sliding-window extension. args: w0 = dst
// root address, w1 reserved. Removes every matching record in this fragment
// and forwards a copy down EVERY ghost branch (delete-all-matches), parking
// on pending futures exactly like inserts so a racing allocation cannot
// lose the delete.
void GraphProtocol::handle_delete(rt::Context& ctx, const rt::Action& a) {
  ProtocolStats& ps = partition_stats(ctx);
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) {
    ++ps.bad_targets;
    return;
  }
  ++frag->deletes_seen;
  const rt::GlobalAddress dst = rt::GlobalAddress::unpack(a.args[0]);
  // Scan-and-erase is charged like the scan the real cell would do.
  ctx.charge(static_cast<std::uint32_t>(1 + frag->edges.size()));

  std::uint64_t removed = 0;
  if (hooks_.on_edge_deleted && !hooks_suppressed_) {
    for (const EdgeRecord& e : frag->edges) {
      if (e.dst == dst) hooks_.on_edge_deleted(ctx, *frag, e);
    }
  }
  std::erase_if(frag->edges, [&](const EdgeRecord& e) {
    if (e.dst == dst) {
      ++removed;
      return true;
    }
    return false;
  });
  ps.edges_deleted += removed;

  bool forwarded = false;
  for (rt::FutureAddr& ghost : frag->ghosts) {
    if (ghost.is_empty()) continue;
    if (ghost.is_pending()) {
      rt::Action deferred = a;
      deferred.target = rt::kNullAddress;  // patched at fulfilment
      ghost.enqueue(deferred);
      ++ps.deletes_deferred;
      forwarded = true;
    } else if (!ghost.value().is_null()) {
      rt::Action fwd = a;
      fwd.target = ghost.value();
      ctx.propagate(fwd);
      ++ps.deletes_forwarded;
      forwarded = true;
    }
  }
  if (!forwarded && removed == 0) ++ps.deletes_unmatched;
}

// Sets a freshly allocated ghost's identity. args: w0 = vid, w1 = root addr.
void GraphProtocol::handle_init_ghost(rt::Context& ctx, const rt::Action& a) {
  auto* frag = ctx.as<VertexFragment>(a.target);
  if (frag == nullptr) {
    ++partition_stats(ctx).bad_targets;
    return;
  }
  frag->vid = a.args[0];
  frag->root = rt::GlobalAddress::unpack(a.args[1]);
  ctx.charge(1);
}

ProtocolStats GraphProtocol::stats() const noexcept {
  ProtocolStats total;
  for (const StatsBlock& sh : blocks_) {
    total.edges_inserted += sh.s.edges_inserted;
    total.inserts_forwarded += sh.s.inserts_forwarded;
    total.inserts_deferred += sh.s.inserts_deferred;
    total.edges_deleted += sh.s.edges_deleted;
    total.deletes_forwarded += sh.s.deletes_forwarded;
    total.deletes_deferred += sh.s.deletes_deferred;
    total.deletes_unmatched += sh.s.deletes_unmatched;
    total.ghost_allocs_started += sh.s.ghost_allocs_started;
    total.ghost_links_made += sh.s.ghost_links_made;
    total.ghost_alloc_failures += sh.s.ghost_alloc_failures;
    total.bad_targets += sh.s.bad_targets;
  }
  return total;
}

}  // namespace ccastream::graph
