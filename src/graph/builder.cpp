#include "graph/builder.hpp"

#include <memory>
#include <stdexcept>

#include "runtime/check.hpp"
#include "runtime/rng.hpp"
#include "sim/energy.hpp"

namespace ccastream::graph {

StreamingGraph::StreamingGraph(GraphProtocol& protocol, GraphConfig cfg)
    : proto_(protocol),
      chip_(protocol.chip()),
      cfg_(cfg),
      rhizomes_(cfg.rhizomes == 0 ? 1 : cfg.rhizomes) {
  const std::uint32_t cells = chip_.geometry().cell_count();
  const std::uint64_t total_roots = cfg_.num_vertices * rhizomes_;
  roots_.reserve(total_roots);
  root_to_vid_.reserve(total_roots);

  rt::Xoshiro256 rng(cfg_.placement_seed);
  const std::uint64_t per_cell =
      cells == 0 ? 0 : (total_roots + cells - 1) / cells;

  for (std::uint64_t r = 0; r < total_roots; ++r) {
    const std::uint64_t vid = r / rhizomes_;
    std::uint32_t cc = 0;
    switch (cfg_.placement) {
      case PlacementPolicy::kRoundRobin:
        // Consecutive rhizomes of a vertex land on different cells.
        cc = static_cast<std::uint32_t>(r % cells);
        break;
      case PlacementPolicy::kBlocked:
        cc = static_cast<std::uint32_t>(r / per_cell);
        break;
      case PlacementPolicy::kRandom:
        cc = static_cast<std::uint32_t>(rng.below(cells));
        break;
    }
    auto frag = std::make_unique<VertexFragment>(vid, /*as_root=*/true,
                                                 proto_.rpvo_config(),
                                                 cfg_.root_init);
    const auto addr = chip_.host_allocate(cc, std::move(frag));
    if (!addr) {
      throw std::runtime_error(
          "StreamingGraph: scratchpad of cell " + std::to_string(cc) +
          " cannot hold its share of root fragments; raise "
          "ChipConfig::cc_memory_bytes or shrink the graph");
    }
    chip_.as<VertexFragment>(*addr)->root = *addr;
    roots_.push_back(*addr);
    root_to_vid_.emplace(*addr, vid);
  }

  // Link each vertex's rhizome roots into a ring so monotone applications
  // can synchronise state across them.
  if (rhizomes_ > 1) {
    for (std::uint64_t vid = 0; vid < cfg_.num_vertices; ++vid) {
      for (std::uint32_t i = 0; i < rhizomes_; ++i) {
        auto* frag = chip_.as<VertexFragment>(roots_[vid * rhizomes_ + i]);
        frag->rhizome_next = roots_[vid * rhizomes_ + (i + 1) % rhizomes_];
      }
    }
  }
}

void StreamingGraph::set_root_app_word(std::uint64_t vid, std::size_t word,
                                       rt::Word value) {
  for (const auto addr : rhizome_roots(vid)) {
    chip_.as<VertexFragment>(addr)->app[word] = value;
  }
}

void StreamingGraph::enqueue_edge(const StreamEdge& e) {
  // Ingest hardening: a malformed stream edge must fail loudly host-side,
  // not index past roots_ (the chip has no way to bounds-check a bogus
  // root address once the action is in flight).
  if (e.src >= cfg_.num_vertices || e.dst >= cfg_.num_vertices) {
    throw std::out_of_range(
        "StreamingGraph::enqueue_edge: vertex id out of range (edge " +
        std::to_string(e.src) + " -> " + std::to_string(e.dst) + ", graph has " +
        std::to_string(cfg_.num_vertices) + " vertices)");
  }
  if (e.is_delete()) {
    if (rhizomes_ > 1) throw DeletionRhizomeError(rhizomes_);
    chip_.io_enqueue(proto_.make_delete(roots_[e.src], roots_[e.dst]));
    return;
  }
  // Round-robin over the source's rhizomes (which root ingests the edge)
  // and over the destination's rhizomes (which root the stored edge points
  // to) — the hub-load-spreading of the Rhizomes design.
  const rt::GlobalAddress src =
      roots_[e.src * rhizomes_ + (rhizomes_ > 1 ? src_rr_++ % rhizomes_ : 0)];
  const rt::GlobalAddress dst =
      roots_[e.dst * rhizomes_ + (rhizomes_ > 1 ? dst_rr_++ % rhizomes_ : 0)];
  chip_.io_enqueue(proto_.make_insert(src, dst, e.weight));
}

IncrementReport StreamingGraph::stream_increment(std::span<const StreamEdge> edges,
                                                 std::uint64_t max_cycles) {
  const sim::ChipStats before = chip_.stats();
  const double energy_before = chip_.energy_pj();

  std::uint64_t deletes = 0;
  for (const StreamEdge& e : edges) {
    if (e.is_delete()) ++deletes;
  }

  if (deletes > 0) {
    // Validate the whole increment before any op is enqueued so a
    // misconfiguration surfaces as one structured error, not a fatal (or a
    // half-streamed batch) mid-increment.
    if (rhizomes_ > 1) throw DeletionRhizomeError(rhizomes_);
    const AppHooks& h = proto_.hooks();
    if (h.on_edge_inserted && !h.host_repair.invalidate && !h.on_edge_deleted) {
      // An app is chaining computation off inserts but has no deletion
      // story at all: structure-only deletion would silently leave its
      // state stale. Fail loudly (see the header comment).
      rt::fatal_misuse(
          "stream_increment: deleting increment under an app without "
          "deletion repair (no host_repair/on_edge_deleted hook)",
          __FILE__, __LINE__);
    }
  }

  if (deletes == 0) {
    // Insert-only fast path: unchanged single-phase streaming.
    for (const StreamEdge& e : edges) enqueue_edge(e);
    chip_.run_until_quiescent(max_cycles);
  } else {
    // Op-mixed increment: the four-phase deletion protocol (see the
    // header). The app's on-cell hooks are suppressed for the structural
    // phases when it provides host repair, so application state stays
    // frozen at its pre-increment fixed point until phase I reads it.
    const AppHooks& hooks = proto_.hooks();
    const bool repair = static_cast<bool>(hooks.host_repair.invalidate);
    if (repair) proto_.set_hooks_suppressed(true);

    // Phase S-D: all deletes, to quiescence. Running deletes strictly
    // before inserts gives op-mixed increments a defined order — a delete
    // and re-insert of the same pair in one increment nets one record —
    // and matches base::DynamicBfs::apply_increment.
    for (const StreamEdge& e : edges) {
      if (e.is_delete()) enqueue_edge(e);
    }
    chip_.run_until_quiescent(max_cycles);

    // Phase S-I: all inserts, to quiescence.
    for (const StreamEdge& e : edges) {
      if (!e.is_delete()) enqueue_edge(e);
    }
    chip_.run_until_quiescent(max_cycles);

    if (repair) {
      proto_.set_hooks_suppressed(false);
      // Phase I: host seeds invalidation from the pre-increment app state,
      // the chip runs the un-settle wave to quiescence.
      const bool invalidated = hooks.host_repair.invalidate(*this, edges);
      chip_.run_until_quiescent(max_cycles);
      // Phase R: host seeds re-settlement; monotone diffusion repairs the
      // invalidated region (and performs the inserts' deferred diffusion).
      if (hooks.host_repair.resettle) {
        hooks.host_repair.resettle(*this, edges, invalidated);
        chip_.run_until_quiescent(max_cycles);
      }
    }
  }

  IncrementReport r;
  r.edges = edges.size();
  r.deletes = deletes;
  r.stats_delta = chip_.stats().delta_since(before);
  r.cycles = r.stats_delta.cycles;
  r.energy_uj = sim::pj_to_uj(chip_.energy_pj() - energy_before);
  return r;
}

std::uint64_t StreamingGraph::run(std::uint64_t max_cycles) {
  return chip_.run_until_quiescent(max_cycles);
}

std::vector<rt::GlobalAddress> StreamingGraph::fragments_of(std::uint64_t vid) const {
  std::vector<rt::GlobalAddress> chain;
  std::vector<rt::GlobalAddress> frontier;
  for (const auto addr : rhizome_roots(vid)) frontier.push_back(addr);
  // Ghost fan-out > 1 makes the RPVO a small tree; walk it breadth-first.
  while (!frontier.empty()) {
    std::vector<rt::GlobalAddress> next;
    for (const auto addr : frontier) {
      const auto* frag =
          const_cast<sim::Chip&>(chip_).as<VertexFragment>(addr);
      if (frag == nullptr) continue;
      chain.push_back(addr);
      for (const auto& g : frag->ghosts) {
        if (g.is_ready() && !g.value().is_null()) next.push_back(g.value());
      }
    }
    frontier = std::move(next);
  }
  return chain;
}

std::uint64_t StreamingGraph::stored_degree(std::uint64_t vid) const {
  std::uint64_t n = 0;
  for (const auto addr : fragments_of(vid)) {
    n += const_cast<sim::Chip&>(chip_).as<VertexFragment>(addr)->edges.size();
  }
  return n;
}

std::vector<std::pair<std::uint64_t, std::uint32_t>> StreamingGraph::neighbors(
    std::uint64_t vid) const {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  for (const auto addr : fragments_of(vid)) {
    const auto* frag = const_cast<sim::Chip&>(chip_).as<VertexFragment>(addr);
    for (const EdgeRecord& e : frag->edges) {
      const auto it = root_to_vid_.find(e.dst);
      if (it != root_to_vid_.end()) out.emplace_back(it->second, e.weight);
    }
  }
  return out;
}

rt::Word StreamingGraph::app_word(std::uint64_t vid, std::size_t word) const {
  return const_cast<sim::Chip&>(chip_)
      .as<VertexFragment>(roots_[vid * rhizomes_])
      ->app[word];
}

rt::Word StreamingGraph::app_word_chain_sum(std::uint64_t vid,
                                            std::size_t word) const {
  rt::Word sum = 0;
  for (const auto addr : fragments_of(vid)) {
    sum += const_cast<sim::Chip&>(chip_).as<VertexFragment>(addr)->app[word];
  }
  return sum;
}

std::optional<std::uint64_t> StreamingGraph::vid_of_root(rt::GlobalAddress a) const {
  const auto it = root_to_vid_.find(a);
  if (it == root_to_vid_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ccastream::graph
