// The Figure 5 design study as a runnable example: how the ghost-vertex
// allocation policy shapes message locality. Streams a hub-heavy R-MAT
// graph (long RPVO chains) under each policy and reports latency/energy.
//
//   $ ./allocator_study
#include <cstdio>

#include "ccastream/ccastream.hpp"

using namespace ccastream;

int main() {
  // R-MAT graphs have heavy hubs -> deep RPVO chains -> the allocator's
  // placement decision dominates intra-vertex traffic.
  wl::RmatParams rp;
  rp.scale = 11;  // 2048 vertices
  rp.num_edges = 30'000;
  const auto edges = wl::generate_rmat(rp);

  std::printf("R-MAT scale %u, %zu edges, streaming BFS from vertex 0\n",
              rp.scale, edges.size());
  std::printf("%-12s %10s %12s %10s %10s %12s\n", "Policy", "Cycles",
              "Energy uJ", "MeanHops", "MeanLat", "GhostLinks");

  for (const auto policy :
       {rt::AllocPolicyKind::kVicinity, rt::AllocPolicyKind::kRandom,
        rt::AllocPolicyKind::kRoundRobin, rt::AllocPolicyKind::kLocal}) {
    sim::ChipConfig cfg;
    cfg.width = 16;
    cfg.height = 16;
    cfg.alloc_policy = policy;
    sim::Chip chip(cfg);
    graph::RpvoConfig rc;
    rc.edge_capacity = 8;
    graph::GraphProtocol protocol(chip, rc);
    apps::StreamingBfs bfs(protocol);
    bfs.install();
    graph::GraphConfig gc;
    gc.num_vertices = 1ull << rp.scale;
    gc.root_init = apps::StreamingBfs::initial_state();
    graph::StreamingGraph g(protocol, gc);
    bfs.set_source(g, 0);

    const auto r = g.stream_increment(edges);
    std::printf("%-12s %10lu %12.1f %10.2f %10.2f %12lu\n",
                std::string(rt::to_string(policy)).c_str(), r.cycles,
                r.energy_uj, chip.stats().mean_hops(),
                chip.stats().mean_delivery_latency(),
                protocol.stats().ghost_links_made);
  }
  std::printf(
      "\nThe hub-heavy trade-off: vicinity minimises hops and energy (chain\n"
      "links <=2 hops apart) but clusters a hub's chain in one neighbourhood,\n"
      "which serialises under load; random pays chip-diameter traffic yet\n"
      "spreads the chain's work across the mesh. 'local' is the degenerate\n"
      "case: minimal hops, fully serialised hub. On community-structured\n"
      "graphs without extreme hubs (bench_fig5_allocator), vicinity wins\n"
      "cycles as well - matching the paper's choice.\n");
  return 0;
}
