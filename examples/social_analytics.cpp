// Social-network analytics on the chip: the "more complex message-driven
// streaming dynamic algorithms" the paper's conclusion calls for —
// connected components while edges stream, then triangle counting and
// Jaccard similarity queries over the built graph.
//
//   $ ./social_analytics
#include <cstdio>

#include "ccastream/ccastream.hpp"

using namespace ccastream;

int main() {
  // A community-structured "social network": 600 users, 8 communities.
  wl::SbmParams sbm;
  sbm.num_vertices = 600;
  sbm.num_edges = 3000;
  sbm.num_blocks = 8;
  sbm.intra_prob = 0.85;
  sbm.seed = 2024;
  const auto undirected = wl::undirected_simple(wl::generate_sbm(sbm));

  sim::ChipConfig cfg;
  cfg.width = 16;
  cfg.height = 16;
  sim::Chip chip(cfg);
  graph::GraphProtocol protocol(chip);

  // --- Streaming connected components -------------------------------------
  apps::StreamingComponents cc(protocol);
  cc.install();
  apps::TriangleCounter tri(protocol);
  apps::JaccardQuery jacc(protocol);

  graph::GraphConfig gc;
  gc.num_vertices = sbm.num_vertices;
  gc.root_init = apps::StreamingComponents::initial_state();
  graph::StreamingGraph g(protocol, gc);
  cc.seed_labels(g);

  const auto r = g.stream_increment(undirected);
  std::printf("streamed %zu (directed) edges in %lu cycles, %.1f uJ\n",
              undirected.size(), r.cycles, r.energy_uj);

  std::uint64_t components = 0;
  for (std::uint64_t v = 0; v < sbm.num_vertices; ++v) {
    if (cc.label_of(g, v) == v) ++components;
  }
  std::printf("connected components: %lu\n", components);

  // --- Triangle counting ----------------------------------------------------
  tri.start(g);
  g.run();
  std::printf("triangles: %lu (%lu closed wedges)\n", tri.triangles(g),
              tri.closed_wedges(g));

  // --- Jaccard similarity of a few user pairs -------------------------------
  std::printf("similarity probes:\n");
  rt::Xoshiro256 rng(99);
  for (int i = 0; i < 5; ++i) {
    // Same community vs cross community: pick from block 0 and block 4.
    const std::uint64_t u = rng.below(75);
    const std::uint64_t same = rng.below(75);
    const std::uint64_t other = 300 + rng.below(75);
    std::printf("  J(%3lu, %3lu) same community  = %.3f\n", u, same,
                jacc.query(g, u, same));
    std::printf("  J(%3lu, %3lu) cross community = %.3f\n", u, other,
                jacc.query(g, u, other));
  }
  std::printf(
      "expected: same-community pairs overlap far more than cross pairs.\n");

  // Cross-check against the sequential oracle.
  base::RefGraph ref(sbm.num_vertices);
  ref.add_edges(undirected);
  std::printf("oracle triangles: %lu -> %s\n", base::closed_wedges(ref) / 3,
              base::closed_wedges(ref) / 3 == tri.triangles(g) ? "match"
                                                               : "MISMATCH");
  return 0;
}
