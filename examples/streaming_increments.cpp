// A miniature of the paper's headline experiment: a GraphChallenge-like
// SBM graph streamed in 10 increments onto a 16x16 chip, with per-increment
// cycle counts for ingestion-only vs ingestion+BFS (Figure 8 in the small)
// and verification against the sequential oracle.
//
//   $ ./streaming_increments [vertices] [edges]
#include <cstdio>
#include <cstdlib>

#include "ccastream/ccastream.hpp"

using namespace ccastream;

namespace {

struct Run {
  std::vector<std::uint64_t> cycles_per_increment;
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<apps::StreamingBfs> bfs;
  std::unique_ptr<graph::StreamingGraph> graph;
};

Run run(const wl::StreamSchedule& sched, std::uint64_t verts, bool with_bfs,
        std::uint64_t source) {
  Run r;
  sim::ChipConfig cfg;
  cfg.width = 16;
  cfg.height = 16;
  r.chip = std::make_unique<sim::Chip>(cfg);
  r.proto = std::make_unique<graph::GraphProtocol>(*r.chip);
  r.bfs = std::make_unique<apps::StreamingBfs>(*r.proto);
  if (with_bfs) r.bfs->install();
  graph::GraphConfig gc;
  gc.num_vertices = verts;
  gc.root_init = apps::StreamingBfs::initial_state();
  r.graph = std::make_unique<graph::StreamingGraph>(*r.proto, gc);
  if (with_bfs) r.bfs->set_source(*r.graph, source);
  for (const auto& inc : sched.increments) {
    r.cycles_per_increment.push_back(r.graph->stream_increment(inc).cycles);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t verts = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::uint64_t edges = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40000;

  for (const auto kind : {wl::SamplingKind::kEdge, wl::SamplingKind::kSnowball}) {
    const auto sched = wl::make_graphchallenge_like(verts, edges, kind, 10, 7);
    const std::uint64_t source =
        kind == wl::SamplingKind::kSnowball ? sched.seed_vertex : 0;

    auto ingest = run(sched, verts, /*with_bfs=*/false, source);
    auto full = run(sched, verts, /*with_bfs=*/true, source);

    std::printf("\n%s sampling (%lu vertices, %lu edges, source %lu):\n",
                std::string(wl::to_string(kind)).c_str(), verts, edges, source);
    std::printf("%-10s %10s %12s %12s\n", "Increment", "Edges", "Streaming",
                "Stream+BFS");
    for (std::size_t i = 0; i < sched.increments.size(); ++i) {
      std::printf("%-10zu %10zu %12lu %12lu\n", i + 1,
                  sched.increments[i].size(), ingest.cycles_per_increment[i],
                  full.cycles_per_increment[i]);
    }

    // Verify the final levels against the sequential oracle.
    base::DynamicBfs oracle(verts, source);
    for (const auto& inc : sched.increments) oracle.insert_increment(inc);
    std::uint64_t mismatches = 0;
    for (std::uint64_t v = 0; v < verts; ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? apps::StreamingBfs::kUnreached
                                : oracle.level_of(v);
      if (full.bfs->level_of(*full.graph, v) != want) ++mismatches;
    }
    std::printf("verification vs oracle: %s (%lu mismatches)\n",
                mismatches == 0 ? "OK" : "FAILED", mismatches);
  }
  return 0;
}
