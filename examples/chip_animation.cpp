// Renders the chip's spatial activity during a streaming run as PGM frames
// (one per N cycles) — the same kind of animation the paper's repository
// publishes for "how streaming dynamic BFS transfers parallel control over
// the cellular grid".
//
//   $ ./chip_animation [out_dir]
//   $ ffmpeg -i out/frame_%d.pgm activity.gif   # optional
#include <cstdio>
#include <filesystem>
#include <string>

#include "ccastream/ccastream.hpp"

using namespace ccastream;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "chip_frames";
  std::filesystem::create_directories(out_dir);

  sim::ChipConfig cfg;
  cfg.width = 16;
  cfg.height = 16;
  sim::Chip chip(cfg);
  graph::GraphProtocol protocol(chip);
  apps::StreamingBfs bfs(protocol);
  bfs.install();
  graph::GraphConfig gc;
  gc.num_vertices = 1500;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(protocol, gc);
  bfs.set_source(g, 0);

  const auto sched = wl::make_graphchallenge_like(
      1500, 15000, wl::SamplingKind::kSnowball, 1, 5);

  // Enqueue everything, then step manually, snapshotting as we go.
  for (const auto& inc : sched.increments) {
    for (const auto& e : inc) g.enqueue_edge(e);
  }
  const sim::ActivityGridWriter writer(out_dir, cfg.width, cfg.height);
  std::uint64_t frame = 0;
  const std::uint64_t stride = 25;  // one frame per 25 cycles
  while (!chip.quiescent()) {
    chip.step();
    if (chip.now() % stride == 0) {
      writer.write_frame(frame++, chip.activity_levels());
    }
  }
  std::printf("simulated %lu cycles, wrote %lu frames of %ux%u to %s/\n",
              chip.stats().cycles, frame, cfg.width, cfg.height,
              out_dir.c_str());
  std::printf("render: ffmpeg -framerate 20 -i %s/frame_%%d.pgm activity.gif\n",
              out_dir.c_str());
  return 0;
}
