// Quickstart: build a chip, stream a small graph through the IO channels,
// and watch streaming dynamic BFS keep its levels current.
//
//   $ ./quickstart
#include <cstdio>

#include "ccastream/ccastream.hpp"

using namespace ccastream;

int main() {
  // 1. An 8x8 AM-CCA chip with the paper's defaults: YX routing, vicinity
  //    ghost allocation, IO channels on the west and east borders.
  sim::ChipConfig cfg;
  cfg.width = 8;
  cfg.height = 8;
  sim::Chip chip(cfg);

  // 2. The streaming-graph protocol (insert-edge-action + ghost futures)
  //    and the streaming BFS application chained into it.
  graph::GraphProtocol protocol(chip);
  apps::StreamingBfs bfs(protocol);
  bfs.install();

  // 3. Place 10 vertex roots across the chip and pick vertex 0 as source.
  graph::GraphConfig gc;
  gc.num_vertices = 10;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(protocol, gc);
  bfs.set_source(g, 0);

  // 4. Stream the first increment: a path 0 -> 1 -> ... -> 5 plus a branch.
  const std::vector<StreamEdge> inc1{
      {0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}, {1, 6, 1}};
  auto r = g.stream_increment(inc1);
  std::printf("increment 1: %zu edges in %lu cycles (%.1f pJ/edge)\n",
              inc1.size(), r.cycles,
              chip.energy_pj() / static_cast<double>(inc1.size()));
  for (std::uint64_t v = 0; v < 7; ++v) {
    std::printf("  level(%lu) = %lu\n", v, bfs.level_of(g, v));
  }

  // 5. A second increment adds a shortcut 0 -> 4: levels 4 and 5 improve
  //    incrementally, no recomputation from scratch.
  r = g.stream_increment(std::vector<StreamEdge>{{0, 4, 1}});
  std::printf("increment 2 (shortcut 0->4): %lu cycles\n", r.cycles);
  std::printf("  level(4) = %lu (was 4)\n", bfs.level_of(g, 4));
  std::printf("  level(5) = %lu (was 5)\n", bfs.level_of(g, 5));

  // 6. Chip-level accounting.
  std::printf("chip: %lu actions, %lu message-hops, %.0f pJ total\n",
              chip.stats().actions_executed, chip.stats().hops,
              chip.energy_pj());
  return 0;
}
