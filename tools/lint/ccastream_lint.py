#!/usr/bin/env python3
"""ccastream's structural lint: invariants the type system cannot express.

The simulator's correctness story rests on a handful of repo-wide
conventions — FIFO mutations go through the counter-maintaining ComputeCell
helpers, the core contains no nondeterminism sources, threading stays inside
sim/parallel, and every runtime knob (env var or CLI flag) is documented in
docs/TUNING.md. This tool makes those conventions machine-checked; CI runs
it on every push (and `--self-test` proves each rule still has teeth).

Usage:
  tools/lint/ccastream_lint.py                 # lint the repository
  tools/lint/ccastream_lint.py --only env-docs,flag-docs,doc-links
  tools/lint/ccastream_lint.py --self-test     # each rule catches its seed
  tools/lint/ccastream_lint.py --list-rules

Rules live in tools/lint/rules.toml. A finding is suppressed by putting
`lint:allow(<rule>)` in a comment on the offending line — pair every
suppression with a justification.

Exit status: 0 clean, 1 findings (or a failed self-test), 2 usage/config
error. Requires Python >= 3.11 (tomllib); no third-party packages.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
import tempfile
import tomllib
from pathlib import Path
from typing import NamedTuple


class Finding(NamedTuple):
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rel(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


def strip_comments(text: str) -> str:
    """Blanks C++ // and /* */ comments, preserving line structure and
    string/char literals (env-var names live in strings). Comment bytes
    become spaces so column/line numbers of the surviving code are stable.
    """
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
            elif c == "'":
                state = "squote"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # dquote / squote
            quote = '"' if state == "dquote" else "'"
            if c == "\\" and nxt:
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def allowed(line: str, rule: str) -> bool:
    return f"lint:allow({rule})" in line


def iter_source_files(
    root: Path, paths: list[str], include: list[str], exclude_files: list[str]
) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        base = root / p
        if not base.exists():
            continue
        for f in sorted(base.rglob("*")):
            if not f.is_file():
                continue
            if not any(fnmatch.fnmatch(f.name, g) for g in include):
                continue
            if rel(f, root) in exclude_files:
                continue
            files.append(f)
    return files


# --- Rule runners -----------------------------------------------------------


def run_regex_rule(name: str, cfg: dict, root: Path) -> list[Finding]:
    pattern = re.compile(cfg["pattern"])
    allow_files = set(cfg.get("allow_files", []))
    findings: list[Finding] = []
    for f in iter_source_files(
        root, cfg["paths"], cfg["include"], cfg.get("exclude_files", [])
    ):
        rpath = rel(f, root)
        if rpath in allow_files:
            continue
        text = f.read_text(errors="replace")
        scan = strip_comments(text) if cfg.get("strip_comments") else text
        originals = text.splitlines()
        for lineno, line in enumerate(scan.splitlines(), start=1):
            if not pattern.search(line):
                continue
            if allowed(originals[lineno - 1], name):
                continue
            findings.append(Finding(name, rpath, lineno, cfg["message"]))
    return findings


def run_env_docs_rule(name: str, cfg: dict, root: Path) -> list[Finding]:
    doc_path = root / cfg["doc"]
    if not doc_path.is_file():
        return [Finding(name, cfg["doc"], 1, "tuning documentation missing")]
    doc_text = doc_path.read_text(errors="replace")
    pattern = re.compile(cfg["env_pattern"])
    first_ref: dict[str, tuple[str, int]] = {}
    for f in iter_source_files(
        root, cfg["paths"], cfg["include"], cfg.get("exclude_files", [])
    ):
        rpath = rel(f, root)
        for lineno, line in enumerate(
            f.read_text(errors="replace").splitlines(), start=1
        ):
            if allowed(line, name):
                continue
            for var in pattern.findall(line):
                first_ref.setdefault(var, (rpath, lineno))
    return [
        Finding(name, path, lineno, f"{var} is not documented in {cfg['doc']}")
        for var, (path, lineno) in sorted(first_ref.items())
        if var not in doc_text
    ]


def run_flag_docs_rule(name: str, cfg: dict, root: Path) -> list[Finding]:
    cli_path = root / cfg["cli"]
    if not cli_path.is_file():
        return [Finding(name, cfg["cli"], 1, "CLI source missing")]
    doc_path = root / cfg["doc"]
    if not doc_path.is_file():
        return [Finding(name, cfg["doc"], 1, "tuning documentation missing")]
    doc_text = doc_path.read_text(errors="replace")
    pattern = re.compile(cfg["flag_pattern"])
    allow_flags = set(cfg.get("allow_flags", []))
    first_ref: dict[str, tuple[str, int]] = {}
    for lineno, line in enumerate(
        cli_path.read_text(errors="replace").splitlines(), start=1
    ):
        if allowed(line, name):
            continue
        for flag in pattern.findall(line):
            if flag not in allow_flags:
                first_ref.setdefault(flag, (rel(cli_path, root), lineno))
    return [
        Finding(name, path, lineno, f"{flag} is not documented in {cfg['doc']}")
        for flag, (path, lineno) in sorted(first_ref.items())
        if f"`{flag}" not in doc_text and flag not in doc_text
    ]


LINK_RE = re.compile(r"\]\(([^)]+)\)")


def run_doc_links_rule(name: str, cfg: dict, root: Path) -> list[Finding]:
    findings: list[Finding] = []
    docs: list[Path] = []
    for g in cfg["docs"]:
        docs.extend(sorted(root.glob(g)))
    for doc in docs:
        if not doc.is_file():
            continue
        rpath = rel(doc, root)
        for lineno, line in enumerate(
            doc.read_text(errors="replace").splitlines(), start=1
        ):
            if allowed(line, name):
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                if not (doc.parent / file_part).exists():
                    findings.append(
                        Finding(name, rpath, lineno, f"broken link -> {target}")
                    )
    return findings


RUNNERS = {
    "regex": run_regex_rule,
    "env-docs": run_env_docs_rule,
    "flag-docs": run_flag_docs_rule,
    "doc-links": run_doc_links_rule,
}


def run_rules(
    rules: dict[str, dict], root: Path, only: list[str] | None = None
) -> list[Finding]:
    findings: list[Finding] = []
    for name, cfg in rules.items():
        if only is not None and name not in only:
            continue
        findings.extend(RUNNERS[cfg["kind"]](name, cfg, root))
    return findings


# --- Self-test --------------------------------------------------------------

# One seeded violation per rule: (file to create, its content, substring the
# finding's message must contain). The self-test plants each seed in a
# scratch tree, asserts the rule fires on it, then appends a
# `lint:allow(<rule>)` marker and asserts the finding is suppressed — so CI
# proves both halves of every rule on every run.
SELF_TEST_SEEDS: dict[str, tuple[str, str, str]] = {
    "fifo-discipline": (
        "src/sim/bad_fifo.cpp",
        "void f(Fifo<int>& q) { q.push(1); }\n",
        "sanctioned ComputeCell helpers",
    ),
    "determinism": (
        "src/sim/bad_det.cpp",
        "int f() { return std::rand(); }\n",
        "nondeterminism",
    ),
    "soa-atomics": (
        "src/sim/bad_atomic.cpp",
        "void f(std::uint64_t& w) { std::atomic_ref<std::uint64_t>(w).store(1); }\n",
        "atomic_ref outside the CellSoA activity bitmap",
    ),
    "soa-backdoor": (
        "src/sim/bad_backdoor.cpp",
        "void f(CellSoA& s) { s.fifo_msgs_ref(3) += 1; }\n",
        "corruption backdoor",
    ),
    "thread-primitives": (
        "src/runtime/bad_thread.hpp",
        "static std::mutex guard;\n",
        "threading primitive",
    ),
    "env-docs": (
        "src/sim/bad_env.cpp",
        'const char* v = std::getenv("CCASTREAM_SELFTEST_BOGUS");\n',
        "CCASTREAM_SELFTEST_BOGUS is not documented",
    ),
    "flag-docs": (
        "tools/ccastream_cli.cpp",
        'if (arg == "--selftest-bogus") {}\n',
        "--selftest-bogus is not documented",
    ),
    "doc-links": (
        "README.md",
        "See [missing](no_such_selftest_file.md) for details.\n",
        "broken link",
    ),
}


def self_test(rules: dict[str, dict]) -> int:
    missing = set(rules) - set(SELF_TEST_SEEDS)
    if missing:
        print(f"self-test: no seed for rule(s): {', '.join(sorted(missing))}")
        return 1
    failures = 0
    with tempfile.TemporaryDirectory(prefix="ccastream_lint_selftest_") as tmp:
        root = Path(tmp)
        # A TUNING.md that documents nothing, so the doc rules must fire.
        (root / "docs").mkdir()
        (root / "docs" / "TUNING.md").write_text("# Tuning\n")
        for rule, (seed_path, content, expect) in SELF_TEST_SEEDS.items():
            target = root / seed_path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content)

            hits = [
                f for f in run_rules(rules, root, only=[rule]) if expect in f.message
            ]
            if len(hits) != 1 or hits[0].rule != rule:
                print(f"self-test FAIL: {rule}: expected 1 finding "
                      f"matching {expect!r}, got {hits}")
                failures += 1

            # The suppression half: the same seed with an allow marker on
            # the offending line must produce no finding.
            marker = f"lint:allow({rule})"
            comment = "" if seed_path.endswith(".md") else "// "
            target.write_text(
                content.rstrip("\n") + f"  {comment}{marker} self-test\n"
            )
            if run_rules(rules, root, only=[rule]):
                print(f"self-test FAIL: {rule}: {marker} did not suppress")
                failures += 1
            target.unlink()
    if failures:
        print(f"self-test FAILED: {failures} assertion(s)")
        return 1
    print(f"self-test OK: all {len(SELF_TEST_SEEDS)} rules fire on their "
          "seed and honour lint:allow")
    return 0


# --- Entry point ------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ccastream_lint.py",
        description="structural lint for the ccastream repository",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent.parent,
        help="repository root (default: two levels above this script)",
    )
    parser.add_argument(
        "--rules",
        type=Path,
        default=Path(__file__).resolve().parent / "rules.toml",
        help="rule configuration file",
    )
    parser.add_argument(
        "--only",
        metavar="RULE[,RULE...]",
        help="run only the named rules (e.g. env-docs,flag-docs,doc-links)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify every rule catches a seeded violation (and that "
        "lint:allow suppresses it), then exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list configured rules"
    )
    args = parser.parse_args(argv)

    try:
        with open(args.rules, "rb") as fh:
            rules = tomllib.load(fh)["rules"]
    except (OSError, tomllib.TOMLDecodeError, KeyError) as e:
        print(f"cannot load rules from {args.rules}: {e}", file=sys.stderr)
        return 2
    unknown = [n for n, c in rules.items() if c.get("kind") not in RUNNERS]
    if unknown:
        print(f"unknown rule kind for: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.list_rules:
        for name, cfg in rules.items():
            print(f"{name} ({cfg['kind']})")
        return 0
    if args.self_test:
        return self_test(rules)

    only = None
    if args.only:
        only = [r.strip() for r in args.only.split(",") if r.strip()]
        bad = [r for r in only if r not in rules]
        if bad:
            print(f"unknown rule(s): {', '.join(bad)}", file=sys.stderr)
            return 2

    findings = run_rules(rules, args.root, only)
    for f in findings:
        print(f.render())
    ran = only if only is not None else list(rules)
    if findings:
        print(f"lint FAILED: {len(findings)} finding(s) across "
              f"{len(ran)} rule(s)")
        return 1
    print(f"lint OK: {len(ran)} rule(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
