#!/usr/bin/env bash
# Runs every bench executable at CCASTREAM_SCALE=tiny and aggregates their
# JSON records (one headline record per bench, emitted via the harness
# JsonReporter) into a single BENCH_*.json array.
#
# Usage: tools/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    defaults to build
#   OUTPUT_JSON  defaults to BENCH_seed.json (in the current directory)
#
# CCASTREAM_THREADS selects the simulator backend for the whole sweep
# (default 1 = serial engine), CCASTREAM_PARTITION its mesh partition
# (rows|cols|tiles[:GXxGY][+rebalance], default rows), and CCASTREAM_ENGINE
# its cycle engine (scan|active, default active — the simulator's default
# hybrid engine); every emitted record carries
# matching "threads", "partition", and "engine" fields, so sweeps from
# different backends can be aggregated and compared side by side, e.g.:
#   tools/run_benches.sh build BENCH_seed.json
#   CCASTREAM_THREADS=4 tools/run_benches.sh build BENCH_parallel.json
#   CCASTREAM_THREADS=4 CCASTREAM_PARTITION=tiles+rebalance \
#     tools/run_benches.sh build BENCH_partition.json
#   CCASTREAM_ENGINE=scan tools/run_benches.sh build BENCH_scan.json
# (bench_active_set runs both engines explicitly whatever the env, emitting
# per-engine records with "cell_visits" — the scan-vs-active comparison is
# in every sweep.)
set -euo pipefail

BUILD_DIR=${1:-build}
OUTPUT=${2:-BENCH_seed.json}
export CCASTREAM_THREADS=${CCASTREAM_THREADS:-1}
export CCASTREAM_PARTITION=${CCASTREAM_PARTITION:-rows}
export CCASTREAM_ENGINE=${CCASTREAM_ENGINE:-active}

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

OUTPUT_ABS=$(cd "$(dirname "$OUTPUT")" && pwd)/$(basename "$OUTPUT")

# Benches write their CSV/JSONL side outputs to cwd; keep them out of the
# source tree.
SCRATCH="$BUILD_DIR/bench-out"
mkdir -p "$SCRATCH"
SCRATCH_ABS=$(cd "$SCRATCH" && pwd)
RECORDS="$SCRATCH_ABS/records.jsonl"
: > "$RECORDS"

export CCASTREAM_SCALE=tiny
export CCASTREAM_BENCH_JSON="$RECORDS"

shopt -s nullglob
BENCHES=("$BUILD_DIR"/bench/bench_*)
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  echo "error: no bench executables under $BUILD_DIR/bench" >&2
  exit 1
fi

ran=0
for bench in "${BENCHES[@]}"; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name=$(basename "$bench")
  ran=$((ran + 1))
  args=()
  # Keep the google-benchmark binary quick: the headline record comes from
  # its one-shot ingest, not from long calibration runs.
  [[ "$name" == bench_micro ]] && args=(--benchmark_min_time=0.01)
  echo "=== running $name (CCASTREAM_SCALE=tiny, CCASTREAM_THREADS=$CCASTREAM_THREADS, CCASTREAM_PARTITION=$CCASTREAM_PARTITION, CCASTREAM_ENGINE=$CCASTREAM_ENGINE) ==="
  bench_abs=$(cd "$(dirname "$bench")" && pwd)/$name
  (cd "$SCRATCH_ABS" && "$bench_abs" "${args[@]}")
done

# Wrap the JSONL records into a JSON array: one object per line, indented.
{
  echo "["
  awk 'NR > 1 { print prev "," } { prev = "  " $0 } END { if (NR > 0) print prev }' "$RECORDS"
  echo "]"
} > "$OUTPUT_ABS"

count=$(wc -l < "$RECORDS")
echo "wrote $OUTPUT_ABS ($count records)"
if (( count < ran )); then
  echo "error: only $count records for $ran benches — a reporter write failed" >&2
  exit 1
fi
