#!/usr/bin/env bash
# Documentation consistency gate — now a thin wrapper over the structural
# lint, which owns the link and knob-documentation rules (plus the code
# rules CI runs separately; see tools/lint/rules.toml):
#
#   doc-links  — every relative markdown link in README.md, ROADMAP.md and
#                docs/*.md resolves to an existing file;
#   env-docs   — every CCASTREAM_* environment variable referenced by the
#                sources is documented in docs/TUNING.md;
#   flag-docs  — every CLI --flag is documented in docs/TUNING.md.
#
# Kept as a shell entry point so existing habits (`tools/check_docs.sh`)
# and the CI docs job keep working unchanged.
set -euo pipefail
cd "$(dirname "$0")/.."
exec python3 tools/lint/ccastream_lint.py --only doc-links,env-docs,flag-docs
