#!/usr/bin/env bash
# Documentation consistency gate (CI docs job; run it locally from the
# repo root before pushing doc or knob changes):
#
#   1. every relative markdown link in README.md, ROADMAP.md and docs/*.md
#      must resolve to an existing file;
#   2. every CCASTREAM_* environment variable referenced by the sources
#      (src/, bench/, tools/, tests/, examples/ — not CMake build options)
#      must be documented in docs/TUNING.md.
#
# Exits nonzero listing every violation, so CI shows the full picture.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. Internal links ------------------------------------------------------
docs=(README.md ROADMAP.md docs/*.md)
for doc in "${docs[@]}"; do
  [[ -f "$doc" ]] || continue
  dir=$(dirname "$doc")
  # Markdown inline links: [text](target). Skip absolute URLs and
  # pure-anchor links; strip #fragment from file links.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    file="${target%%#*}"
    [[ -z "$file" ]] && continue
    if [[ ! -e "$dir/$file" ]]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. Env vars documented in TUNING.md ------------------------------------
tuning=docs/TUNING.md
if [[ ! -f "$tuning" ]]; then
  echo "MISSING: $tuning"
  exit 1
fi
# Source-referenced env vars only: CMakeLists options are build-system
# knobs, not runtime environment, so only C++/shell sources are scanned —
# excluding this script itself, whose variable mentions are meta.
vars=$(grep -rhoE 'CCASTREAM_[A-Z_]+' \
         --include='*.cpp' --include='*.hpp' --include='*.sh' \
         --exclude='check_docs.sh' \
         src bench tools tests examples | sort -u)
for v in $vars; do
  if ! grep -q "$v" "$tuning"; then
    echo "UNDOCUMENTED ENV VAR: $v missing from $tuning"
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK: $(printf '%s\n' "$vars" | wc -l) env vars documented, links resolve"
