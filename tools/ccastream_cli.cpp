// ccastream_cli — run a streaming dynamic-graph experiment from the command
// line: pick the chip, the workload, the sampling order and the application,
// get a per-increment report (and optionally CSV series, an activation
// trace, oracle verification, and a snapshot of the final graph).
//
// Examples:
//   ccastream_cli --vertices 5000 --edges 100000 --sampling snowball --app bfs
//   ccastream_cli --edges-file graph.el --app components --verify
//   ccastream_cli --vertices 2000 --edges 40000 --rhizomes 4
//                 --routing odd-even --alloc random --csv run.csv
//
// Service mode: `serve` replays a recorded binary increment log through the
// long-lived streaming service (svc::StreamService) — continuous ingest with
// backpressure, queries answered from latched snapshots — and emits the same
// JSON lines a batch run with --json-results produces, cycle for cycle:
//   ccastream_cli --vertices 500 --edges 4000 --record-log inc.bin
//                 --json-results batch.jsonl
//   ccastream_cli serve --increment-log inc.bin > serve.jsonl
//   diff batch.jsonl serve.jsonl
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "ccastream/ccastream.hpp"

using namespace ccastream;

namespace {

struct Options {
  std::uint64_t vertices = 2000;
  std::uint64_t edges = 40000;
  std::string edges_file;
  wl::SamplingKind sampling = wl::SamplingKind::kEdge;
  std::uint32_t increments = 10;
  std::uint32_t width = 16, height = 16;
  std::uint32_t threads = 0;  // 0 = CCASTREAM_THREADS env, else serial
  std::optional<sim::PartitionSpec> partition;  // unset = env, else rows
  std::optional<sim::EngineKind> engine;        // unset = env, else active
  std::uint32_t dense_pct = 0;  // 0 = CCASTREAM_DENSE_PCT env, else 50
  std::optional<rt::CheckLevel> check;  // unset = CCASTREAM_CHECK env, else off
  sim::RoutingPolicyKind routing = sim::RoutingPolicyKind::kYX;
  rt::AllocPolicyKind alloc = rt::AllocPolicyKind::kVicinity;
  std::uint32_t vicinity_radius = 2;
  std::uint32_t edge_capacity = 16;
  std::uint32_t ghost_fanout = 1;
  std::uint32_t rhizomes = 1;
  std::string app = "bfs";  // none|bfs|sssp|components
  std::uint32_t window = 0;  // 0 = CCASTREAM_WINDOW env, else no expiry
  bool window_drain = false;
  std::uint64_t source = 0;
  bool source_set = false;
  std::uint64_t seed = 42;
  bool verify = false;
  std::string csv_path;
  std::string activation_path;
  std::string snapshot_path;
  bool serve = false;
  std::string increment_log;                    // serve: log to replay
  std::string record_log;                       // batch: log to record
  std::string json_results;                     // JSON lines ('-' = stdout)
  std::optional<svc::QueueSpec> svc_queue;      // unset = env, else block:8
};

void usage() {
  std::puts(
      "ccastream_cli [serve] [options]\n"
      "  serve                         service mode: replay --increment-log\n"
      "                                through the streaming service (bounded\n"
      "                                ingest queue + engine loop + snapshot\n"
      "                                queries) and emit JSON lines — output\n"
      "                                is identical to a batch run of the\n"
      "                                same log with --json-results\n"
      "  --increment-log PATH          serve: binary increment log to replay\n"
      "                                ('-' = stdin; vertex count comes from\n"
      "                                the log header)\n"
      "  --record-log PATH             batch: also record the streamed\n"
      "                                increments as a binary increment log\n"
      "                                (replayable with serve)\n"
      "  --json-results PATH           emit per-increment and final-result\n"
      "                                JSON lines ('-' = stdout; serve mode\n"
      "                                defaults to stdout)\n"
      "  --svc-queue SPEC              serve ingest queue, block|drop|flush\n"
      "                                [:capacity 1..65536] (default:\n"
      "                                CCASTREAM_SVC_QUEUE or block:8)\n"
      "  --vertices N --edges M        synthetic SBM workload size\n"
      "  --edges-file PATH             stream an edge-list file instead\n"
      "  --sampling edge|snowball      streaming order (default edge)\n"
      "  --increments K                number of increments (default 10)\n"
      "  --width W --height H          chip mesh (default 16x16)\n"
      "  --threads N                   simulator worker threads (default:\n"
      "                                CCASTREAM_THREADS or 1; results are\n"
      "                                identical for every N)\n"
      "  --partition SPEC              mesh partition for the parallel engine:\n"
      "                                rows|cols|tiles[:GXxGY], optionally\n"
      "                                +rebalance for load-adaptive boundaries\n"
      "                                (default: CCASTREAM_PARTITION or rows;\n"
      "                                results are identical for every SPEC)\n"
      "  --engine scan|active          cycle engine: the event-driven\n"
      "                                active-set hybrid (default:\n"
      "                                CCASTREAM_ENGINE or active) or the\n"
      "                                full-mesh scan oracle; results are\n"
      "                                identical either way\n"
      "  --dense-pct N                 hybrid dense-mode threshold, percent\n"
      "                                of a partition's cells (default:\n"
      "                                CCASTREAM_DENSE_PCT or 50; >100 pins\n"
      "                                the engine sparse; results are\n"
      "                                identical for every N)\n"
      "  --check off|cheap|full        runtime invariant checking (default:\n"
      "                                CCASTREAM_CHECK or off; full adds an\n"
      "                                O(mesh) sweep per cycle)\n"
      "  --routing yx|xy|west-first|odd-even\n"
      "  --alloc vicinity|random|round-robin|local\n"
      "  --radius R                    vicinity radius (default 2)\n"
      "  --edge-capacity C             edge slots per fragment (default 16)\n"
      "  --ghost-fanout F              ghost futures per fragment (default 1)\n"
      "  --rhizomes R                  roots per vertex (default 1)\n"
      "  --app none|bfs|sssp|components\n"
      "  --window K                    sliding window: edges expire (as delete\n"
      "                                ops) K increments after their latest\n"
      "                                observation (default: CCASTREAM_WINDOW\n"
      "                                or no expiry; every app repairs\n"
      "                                deletions except pagerank/triangles;\n"
      "                                needs --rhizomes 1)\n"
      "  --window-drain                append delete-only increments until the\n"
      "                                window empties (shrinking-frontier tail)\n"
      "  --source V                    BFS/SSSP source (default snowball seed\n"
      "                                or vertex 0)\n"
      "  --seed X                      workload/chip seed (default 42)\n"
      "  --verify                      check results against the CPU oracle\n"
      "  --csv PATH                    per-increment CSV\n"
      "  --activation PATH             per-cycle activation CSV\n"
      "  --snapshot PATH               save the final graph snapshot\n");
}

bool parse(int argc, char** argv, Options& o) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    }
    if (a == "serve") o.serve = true;
    else if (a == "--increment-log") o.increment_log = need(i);
    else if (a == "--record-log") o.record_log = need(i);
    else if (a == "--json-results") o.json_results = need(i);
    else if (a == "--svc-queue") {
      const char* v = need(i);
      o.svc_queue = svc::parse_queue_spec(v);
      if (!o.svc_queue) {
        std::fprintf(stderr,
                     "invalid --svc-queue '%s' (want block|drop|flush"
                     "[:1..65536])\n",
                     v);
        return false;
      }
    }
    else if (a == "--vertices") o.vertices = std::strtoull(need(i), nullptr, 10);
    else if (a == "--edges") o.edges = std::strtoull(need(i), nullptr, 10);
    else if (a == "--edges-file") o.edges_file = need(i);
    else if (a == "--sampling") {
      const std::string v = need(i);
      o.sampling = v == "snowball" ? wl::SamplingKind::kSnowball
                                   : wl::SamplingKind::kEdge;
    } else if (a == "--increments") {
      o.increments = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--width") {
      o.width = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--height") {
      o.height = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--threads") {
      o.threads = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--partition") {
      const char* v = need(i);
      o.partition = sim::PartitionSpec::parse(v);
      if (!o.partition) {
        std::fprintf(stderr, "invalid --partition '%s'\n", v);
        return false;
      }
    } else if (a == "--engine") {
      const char* v = need(i);
      o.engine = sim::parse_engine(v);
      if (!o.engine) {
        std::fprintf(stderr, "invalid --engine '%s'\n", v);
        return false;
      }
    } else if (a == "--dense-pct") {
      // Same validation as resolve_dense_threshold applies to the env var:
      // reject instead of silently falling back (0 would mean "use the
      // env/default", masking the typo).
      const char* v = need(i);
      char* end = nullptr;
      const long pct = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || pct < 1 || pct > 1000) {
        std::fprintf(stderr, "invalid --dense-pct '%s' (want 1..1000)\n", v);
        return false;
      }
      o.dense_pct = static_cast<std::uint32_t>(pct);
    } else if (a == "--check") {
      const char* v = need(i);
      o.check = rt::parse_check_level(v);
      if (!o.check) {
        std::fprintf(stderr, "invalid --check '%s' (want off|cheap|full)\n", v);
        return false;
      }
    } else if (a == "--routing") {
      const std::string v = need(i);
      if (v == "xy") o.routing = sim::RoutingPolicyKind::kXY;
      else if (v == "west-first") o.routing = sim::RoutingPolicyKind::kWestFirst;
      else if (v == "odd-even") o.routing = sim::RoutingPolicyKind::kOddEven;
      else o.routing = sim::RoutingPolicyKind::kYX;
    } else if (a == "--alloc") {
      const std::string v = need(i);
      if (v == "random") o.alloc = rt::AllocPolicyKind::kRandom;
      else if (v == "round-robin") o.alloc = rt::AllocPolicyKind::kRoundRobin;
      else if (v == "local") o.alloc = rt::AllocPolicyKind::kLocal;
      else o.alloc = rt::AllocPolicyKind::kVicinity;
    } else if (a == "--radius") {
      o.vicinity_radius = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--edge-capacity") {
      o.edge_capacity = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--ghost-fanout") {
      o.ghost_fanout = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--rhizomes") {
      o.rhizomes = static_cast<std::uint32_t>(std::strtoul(need(i), nullptr, 10));
    } else if (a == "--app") {
      o.app = need(i);
    } else if (a == "--window") {
      // Same validation resolve_window applies to the env var: reject
      // instead of silently falling back (0 would mean "use the env").
      const char* v = need(i);
      char* end = nullptr;
      const long w = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || w < 1 || w > 1'000'000) {
        std::fprintf(stderr, "invalid --window '%s' (want 1..1000000)\n", v);
        return false;
      }
      o.window = static_cast<std::uint32_t>(w);
    } else if (a == "--window-drain") {
      o.window_drain = true;
    } else if (a == "--source") {
      o.source = std::strtoull(need(i), nullptr, 10);
      o.source_set = true;
    } else if (a == "--seed") {
      o.seed = std::strtoull(need(i), nullptr, 10);
    } else if (a == "--verify") {
      o.verify = true;
    } else if (a == "--csv") {
      o.csv_path = need(i);
    } else if (a == "--activation") {
      o.activation_path = need(i);
    } else if (a == "--snapshot") {
      o.snapshot_path = need(i);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
      return false;
    }
  }
  return true;
}

// JSON-lines emission shared by batch (--json-results) and serve mode, so
// the two outputs are byte-diffable (the CI serve smoke relies on this).
void print_increment_json(std::FILE* f, std::uint64_t seq, std::uint64_t edges,
                          std::uint64_t deletes, std::uint64_t cycles,
                          double energy_uj) {
  std::fprintf(f,
               "{\"type\":\"increment\",\"seq\":%lu,\"edges\":%lu,"
               "\"deletes\":%lu,\"cycles\":%lu,\"energy_uj\":%.6f}\n",
               seq, edges, deletes, cycles, energy_uj);
}

void print_result_json(std::FILE* f, const std::string& app, std::uint64_t seq,
                       std::span<const rt::Word> values) {
  std::fprintf(f, "{\"type\":\"result\",\"app\":\"%s\",\"seq\":%lu,\"values\":[",
               app.c_str(), seq);
  for (std::size_t v = 0; v < values.size(); ++v) {
    std::fprintf(f, "%s%lu", v == 0 ? "" : ",", values[v]);
  }
  std::fprintf(f, "]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }
  if (o.serve && o.increment_log.empty()) {
    std::fprintf(stderr, "serve requires --increment-log PATH\n");
    return 2;
  }
  if (o.serve && o.json_results.empty()) o.json_results = "-";

  // Serve mode replays a recorded log; the log header carries the vertex
  // count, so the reader must open before graph construction.
  std::ifstream log_file;
  std::optional<io::IncrementLogReader> log_reader;
  if (o.serve) {
    std::istream* in = &std::cin;
    if (o.increment_log != "-") {
      log_file.open(o.increment_log, std::ios::binary);
      if (!log_file) {
        std::fprintf(stderr, "cannot open increment log '%s'\n",
                     o.increment_log.c_str());
        return 2;
      }
      in = &log_file;
    }
    try {
      log_reader.emplace(*in);
    } catch (const io::IncrementCodecError& e) {
      std::fprintf(stderr, "ccastream_cli: %s\n", e.what());
      return 2;
    }
    o.vertices = log_reader->header().num_vertices;
  }

  // --- Workload --------------------------------------------------------------
  wl::StreamSchedule sched;
  if (o.serve) {
    // No synthetic schedule: increments come framed from the log.
  } else if (!o.edges_file.empty()) {
    auto edges = io::read_edgelist_file(o.edges_file);
    std::uint64_t max_vid = 0;
    for (const auto& e : edges) max_vid = std::max({max_vid, e.src, e.dst});
    o.vertices = max_vid + 1;
    sched = o.sampling == wl::SamplingKind::kSnowball
                ? wl::snowball_sampling(edges, o.vertices, o.increments, o.seed)
                : wl::edge_sampling(std::move(edges), o.increments, o.seed);
  } else {
    sched = wl::make_graphchallenge_like(o.vertices, o.edges, o.sampling,
                                         o.increments, o.seed);
  }
  if (!o.source_set && !o.serve) {
    o.source = o.sampling == wl::SamplingKind::kSnowball ? sched.seed_vertex : 0;
  }

  // Sliding window (config > env > disabled): rewrite the schedule so aged
  // edges expire as delete ops. Deletions are repaired by the monotone-raise
  // framework for bfs/sssp/components and applied structure-only for
  // "none". The rhizomes > 1 conflict is reported by the streaming layer as
  // graph::DeletionRhizomeError — caught around the increment loop below.
  // A replayed log already contains its delete ops verbatim, so serve mode
  // never rewrites.
  if (!o.serve) {
    o.window = wl::resolve_window(o.window);
    if (o.window != 0) {
      sched = wl::apply_sliding_window(sched, o.window, o.window_drain);
    }
  }

  // --- Chip + graph + app ------------------------------------------------------
  sim::ChipConfig cfg;
  cfg.width = o.width;
  cfg.height = o.height;
  cfg.routing = o.routing;
  cfg.alloc_policy = o.alloc;
  cfg.vicinity_radius = o.vicinity_radius;
  cfg.seed = o.seed;
  cfg.threads = o.threads;
  cfg.partition = o.partition;
  cfg.engine = o.engine;
  cfg.dense_threshold_pct = o.dense_pct;
  cfg.check_level = o.check;
  cfg.record_activation = !o.activation_path.empty();
  sim::Chip chip(cfg);

  graph::RpvoConfig rc;
  rc.edge_capacity = o.edge_capacity;
  rc.ghost_fanout = o.ghost_fanout;
  graph::GraphProtocol proto(chip, rc);

  apps::StreamingBfs bfs(proto);
  apps::StreamingSssp sssp(proto);
  apps::StreamingComponents comps(proto);

  graph::GraphConfig gc;
  gc.num_vertices = o.vertices;
  gc.rhizomes = o.rhizomes;
  if (o.app == "bfs") {
    bfs.install();
    gc.root_init = apps::StreamingBfs::initial_state();
  } else if (o.app == "sssp") {
    sssp.install();
    gc.root_init = apps::StreamingSssp::initial_state();
  } else if (o.app == "components") {
    comps.install();
    gc.root_init = apps::StreamingComponents::initial_state();
  }
  graph::StreamingGraph g(proto, gc);
  if (o.app == "bfs") bfs.set_source(g, o.source);
  if (o.app == "sssp") sssp.set_source(g, o.source);
  if (o.app == "components") comps.seed_labels(g);

  std::FILE* jf = nullptr;
  if (!o.json_results.empty()) {
    jf = o.json_results == "-" ? stdout : std::fopen(o.json_results.c_str(), "w");
    if (!jf) {
      std::fprintf(stderr, "cannot open json results '%s'\n",
                   o.json_results.c_str());
      return 2;
    }
  }

  // --- Serve: replay the log through the streaming service ---------------------
  if (o.serve) {
    // Human chatter goes to stderr so stdout stays pure JSON lines for the
    // batch-vs-serve diff.
    const svc::QueueSpec queue = svc::resolve_queue_spec(o.svc_queue);
    std::fprintf(stderr,
                 "serve: chip %ux%u  app %s  queue %s  %lu vertices, "
                 "engine %s, threads %u\n",
                 o.width, o.height, o.app.c_str(), queue.to_string().c_str(),
                 o.vertices, std::string(sim::to_string(chip.engine())).c_str(),
                 chip.threads());
    svc::StreamService service(g, {queue});
    try {
      while (auto inc = log_reader->next()) {
        service.submit(std::move(*inc));
      }
      service.flush();
    } catch (const io::IncrementCodecError& e) {
      std::fprintf(stderr, "ccastream_cli: %s\n", e.what());
      return 2;
    } catch (const graph::DeletionRhizomeError& e) {
      std::fprintf(stderr, "ccastream_cli: %s\n", e.what());
      return 2;
    }
    for (const auto& r : service.batch_reports()) {
      print_increment_json(jf, r.seq, r.edges, r.deletes, r.cycles, r.energy_uj);
    }
    if (o.app != "none") {
      svc::QueryRequest req;
      req.kind = svc::QueryKind::kAppWord;
      req.app_word = 0;
      const svc::QueryResult res = service.query(req);
      print_result_json(jf, o.app, res.seq, res.values);
    }
    service.stop();
    std::fprintf(stderr, "serve: %lu increments, %lu cycles, %lu queries\n",
                 service.stats().batches_executed, chip.stats().cycles,
                 service.stats().queries_answered);
    if (jf != stdout) std::fclose(jf);
    return 0;
  }

  // --- Record the schedule as a replayable increment log -----------------------
  if (!o.record_log.empty()) {
    std::ofstream f(o.record_log, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "cannot open record log '%s'\n", o.record_log.c_str());
      return 2;
    }
    io::write_increment_log(f, o.vertices, sched.increments);
    std::printf("wrote increment log (%zu increments) to %s\n",
                sched.increments.size(), o.record_log.c_str());
  }

  // --- Stream ------------------------------------------------------------------
  std::printf(
      "chip %ux%u  routing %s  alloc %s  rhizomes %u  app %s  threads %u  "
      "partition %s  engine %s",
      o.width, o.height, std::string(sim::to_string(o.routing)).c_str(),
      std::string(rt::to_string(o.alloc)).c_str(), o.rhizomes, o.app.c_str(),
      chip.threads(), chip.partition_spec().to_string().c_str(),
      std::string(sim::to_string(chip.engine())).c_str());
  if (chip.engine() == sim::EngineKind::kActive) {
    std::printf("  dense-pct %u", chip.dense_threshold_pct());
  }
  std::printf("\n");
  std::printf("%lu vertices, %lu ops, %s sampling, %zu increments, source %lu",
              o.vertices, sched.total_edges(),
              std::string(wl::to_string(sched.kind)).c_str(),
              sched.increments.size(), o.source);
  if (o.window != 0) {
    std::printf("  window %u%s", o.window, o.window_drain ? "+drain" : "");
  }
  std::printf("\n");
  std::printf("%-10s %10s %12s %12s %12s\n", "Increment", "Edges", "Cycles",
              "Energy µJ", "Msgs");

  std::optional<io::CsvWriter> csv;
  if (!o.csv_path.empty()) {
    csv.emplace(o.csv_path, std::initializer_list<std::string>{
                                "increment", "edges", "cycles", "energy_uj",
                                "messages"});
  }
  for (std::size_t i = 0; i < sched.increments.size(); ++i) {
    graph::IncrementReport r;
    try {
      r = g.stream_increment(sched.increments[i]);
    } catch (const graph::DeletionRhizomeError& e) {
      std::fprintf(stderr, "ccastream_cli: %s\n", e.what());
      return 2;
    }
    std::printf("%-10zu %10lu %12lu %12.2f %12lu\n", i + 1, r.edges, r.cycles,
                r.energy_uj, r.stats_delta.actions_created);
    if (jf) {
      print_increment_json(jf, i + 1, r.edges, r.deletes, r.cycles, r.energy_uj);
    }
    if (csv) {
      csv->row_numeric({static_cast<double>(i + 1), static_cast<double>(r.edges),
                        static_cast<double>(r.cycles), r.energy_uj,
                        static_cast<double>(r.stats_delta.actions_created)});
    }
  }
  std::printf("total: %lu cycles (%.1f µs @1GHz), %.1f µJ, %lu hops\n",
              chip.stats().cycles, sim::cycles_to_us(chip.stats().cycles),
              sim::pj_to_uj(chip.energy_pj()), chip.stats().hops);

  if (jf) {
    if (o.app != "none") {
      // Same final-result line serve mode emits: the app's word-0 fixed
      // point per vertex, read from the chip.
      std::vector<rt::Word> values;
      values.reserve(o.vertices);
      for (std::uint64_t v = 0; v < o.vertices; ++v) {
        values.push_back(g.app_word(v, 0));
      }
      print_result_json(jf, o.app, sched.increments.size(), values);
    }
    if (jf != stdout) std::fclose(jf);
  }

  // --- Optional outputs ----------------------------------------------------------
  if (!o.activation_path.empty()) {
    io::CsvWriter act(o.activation_path, {"cycle", "percent_active"});
    for (const auto& [cycle, pct] :
         chip.activation().percent_series(chip.geometry().cell_count(), 2048)) {
      act.row_numeric({static_cast<double>(cycle), pct});
    }
    std::printf("wrote activation series to %s\n", o.activation_path.c_str());
  }
  if (!o.snapshot_path.empty()) {
    std::ofstream snap(o.snapshot_path);
    g.save_snapshot(snap);
    std::printf("wrote graph snapshot to %s\n", o.snapshot_path.c_str());
  }

  // --- Verification ---------------------------------------------------------------
  if (o.verify && o.app != "none") {
    base::RefGraph ref(o.vertices);
    for (const auto& inc : sched.increments) ref.add_edges(inc);
    std::uint64_t mismatches = 0;
    if (o.app == "bfs") {
      const auto want = base::bfs_levels(ref, o.source);
      for (std::uint64_t v = 0; v < o.vertices; ++v) {
        const rt::Word w = want[v] == base::kUnreached
                               ? apps::StreamingBfs::kUnreached
                               : want[v];
        if (bfs.level_of(g, v) != w) ++mismatches;
      }
    } else if (o.app == "sssp") {
      const auto want = base::sssp_distances(ref, o.source);
      for (std::uint64_t v = 0; v < o.vertices; ++v) {
        const rt::Word w = want[v] == base::kUnreached
                               ? apps::StreamingSssp::kUnreached
                               : want[v];
        if (sssp.distance_of(g, v) != w) ++mismatches;
      }
    } else if (o.app == "components") {
      // The streamed fixed point is the *directed* min-reaching label (the
      // CLI does not symmetrize the stream), so compare against the
      // directed oracle's from-scratch sweep, not undirected union-find.
      base::DynamicComponents oracle(o.vertices);
      for (const auto& inc : sched.increments) oracle.apply_increment(inc);
      const auto want = oracle.recompute();
      for (std::uint64_t v = 0; v < o.vertices; ++v) {
        if (comps.label_of(g, v) != want[v]) ++mismatches;
      }
    }
    std::printf("verification vs oracle: %s (%lu mismatches)\n",
                mismatches == 0 ? "OK" : "FAILED", mismatches);
    if (mismatches != 0) return 1;
  }
  return 0;
}
