// I/O round trips: edge lists and CSV experiment outputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "test_util.hpp"

namespace ccastream::io {
namespace {

TEST(EdgeList, RoundTripThroughStream) {
  const std::vector<StreamEdge> edges{{0, 1, 1}, {5, 3, 9}, {2, 2, 1}};
  std::stringstream ss;
  write_edgelist(ss, edges);
  EXPECT_EQ(read_edgelist(ss), edges);
}

TEST(EdgeList, SkipsCommentsAndBlanks) {
  std::stringstream ss("# a comment\n\n  \t\n1 2\n# more\n3 4 7\n");
  const auto edges = read_edgelist(ss);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (StreamEdge{1, 2, 1}));  // default weight
  EXPECT_EQ(edges[1], (StreamEdge{3, 4, 7}));
}

TEST(EdgeList, MalformedLineThrows) {
  std::stringstream ss("1 2\nbogus\n");
  EXPECT_THROW(read_edgelist(ss), std::runtime_error);
}

TEST(EdgeList, MissingFileThrows) {
  EXPECT_THROW(read_edgelist_file("/nonexistent/nope.el"), std::runtime_error);
}

TEST(EdgeList, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ccastream_io_test.el";
  const std::vector<StreamEdge> edges{{10, 20, 2}, {30, 40, 1}};
  write_edgelist_file(path, edges);
  EXPECT_EQ(read_edgelist_file(path), edges);
  std::remove(path.c_str());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/ccastream_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({"hello", "wor,ld"});
    csv.row_numeric({1.5, 2.0});
  }
  std::ifstream f(path);
  std::string l1, l2, l3;
  std::getline(f, l1);
  std::getline(f, l2);
  std::getline(f, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "hello,\"wor,ld\"");
  EXPECT_EQ(l3, "1.5,2");
  std::remove(path.c_str());
}

TEST(Trace, PercentSeriesAndStats) {
  sim::ActivationTrace trace;
  trace.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    trace.record(i < 50 ? 64 : 0, 64);  // half the run fully active
  }
  EXPECT_DOUBLE_EQ(trace.peak_active_fraction(64), 1.0);
  EXPECT_NEAR(trace.mean_active_fraction(64), 0.5, 1e-9);
  const auto series = trace.percent_series(64, 10);
  ASSERT_FALSE(series.empty());
  EXPECT_LE(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().second, 100.0);
  EXPECT_DOUBLE_EQ(series.back().second, 0.0);
}

TEST(Trace, DisabledRecordsNothing) {
  sim::ActivationTrace trace;
  trace.record(1, 1);
  EXPECT_TRUE(trace.samples().empty());
  EXPECT_DOUBLE_EQ(trace.mean_active_fraction(4), 0.0);
}

TEST(Trace, GridWriterProducesPgm) {
  sim::ActivityGridWriter writer(::testing::TempDir(), 4, 2);
  EXPECT_TRUE(writer.write_frame(0, std::vector<std::uint8_t>(8, 128)));
  EXPECT_FALSE(writer.write_frame(1, std::vector<std::uint8_t>(3, 0)));  // bad size
  std::ifstream f(::testing::TempDir() + "/frame_0.pgm", std::ios::binary);
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove((::testing::TempDir() + "/frame_0.pgm").c_str());
}

}  // namespace
}  // namespace ccastream::io
