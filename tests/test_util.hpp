// Shared helpers for the ccastream test suite.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "ccastream/ccastream.hpp"

namespace ccastream::test {

/// Pins one environment variable for a test's lifetime, restoring the
/// previous value on destruction. Pass `nullptr` to unset. Used by every
/// knob-resolution test (engine, dense threshold, check level).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_) {
      ::setenv(name_.c_str(), saved_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> saved_;
};

/// Minimal rt::Context for unit-testing runtime components in isolation
/// (futures, handlers) without a chip. Records everything it is asked to do.
class MockContext final : public rt::Context {
 public:
  explicit MockContext(std::uint32_t cc = 0, std::uint32_t mesh_dim = 4)
      : mesh_(mesh_dim, mesh_dim), rng_(1234), cc_(cc) {}

  [[nodiscard]] std::uint32_t cc() const override { return cc_; }
  [[nodiscard]] const rt::MeshGeometry& geometry() const override { return mesh_; }

  void propagate(const rt::Action& a) override { propagated.push_back(a); }
  void schedule_local(const rt::Action& a) override { scheduled.push_back(a); }
  void charge(std::uint32_t n) override { charged += n; }

  [[nodiscard]] rt::ArenaObject* deref(rt::GlobalAddress addr) override {
    if (addr.cc != cc_ || addr.slot >= objects.size()) return nullptr;
    return objects[addr.slot];
  }

  std::optional<rt::GlobalAddress> allocate_local(rt::ObjectKind) override {
    return std::nullopt;  // tests that need allocation use a real chip
  }

  void call_cc_allocate(rt::ObjectKind kind, rt::GlobalAddress reply_to,
                        rt::HandlerId reply_handler, rt::Word tag) override {
    alloc_requests.push_back({kind, reply_to, reply_handler, tag});
  }

  [[nodiscard]] rt::Xoshiro256& rng() override { return rng_; }

  struct AllocRequest {
    rt::ObjectKind kind;
    rt::GlobalAddress reply_to;
    rt::HandlerId reply_handler;
    rt::Word tag;
  };

  std::vector<rt::Action> propagated;
  std::vector<rt::Action> scheduled;
  std::vector<AllocRequest> alloc_requests;
  std::vector<rt::ArenaObject*> objects;  // slot -> object (not owned)
  std::uint32_t charged = 0;

 private:
  rt::MeshGeometry mesh_;
  rt::Xoshiro256 rng_;
  std::uint32_t cc_;
};

/// A small chip configuration that keeps unit tests fast.
inline sim::ChipConfig small_chip_config(std::uint32_t dim = 8) {
  sim::ChipConfig cfg;
  cfg.width = dim;
  cfg.height = dim;
  cfg.cc_memory_bytes = 1u << 20;
  return cfg;
}

/// Builds a RefGraph from streamed edges.
inline base::RefGraph ref_graph_of(std::uint64_t n,
                                   const std::vector<StreamEdge>& edges) {
  base::RefGraph g(n);
  g.add_edges(edges);
  return g;
}

}  // namespace ccastream::test
