// Tests for the shared bench harness (bench/harness.hpp): scale selection
// from the environment, the dataset table at every scale, and the JSON
// reporting layer round trip (format -> parse, and file append -> re-read).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "harness.hpp"

namespace bench = ccastream::bench;

namespace {

// RAII environment override so a failing assertion can't leak state into
// the other tests in this binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ScaleFromEnv, DefaultsToPaperWhenUnset) {
  const ScopedEnv env("CCASTREAM_SCALE", nullptr);
  EXPECT_EQ(bench::scale_from_env(), bench::Scale::kPaper);
}

TEST(ScaleFromEnv, ReadsEachKnownValue) {
  {
    const ScopedEnv env("CCASTREAM_SCALE", "tiny");
    EXPECT_EQ(bench::scale_from_env(), bench::Scale::kTiny);
  }
  {
    const ScopedEnv env("CCASTREAM_SCALE", "paper");
    EXPECT_EQ(bench::scale_from_env(), bench::Scale::kPaper);
  }
  {
    const ScopedEnv env("CCASTREAM_SCALE", "large");
    EXPECT_EQ(bench::scale_from_env(), bench::Scale::kLarge);
  }
}

TEST(ScaleFromEnv, UnknownValueFallsBackToPaper) {
  const ScopedEnv env("CCASTREAM_SCALE", "galactic");
  EXPECT_EQ(bench::scale_from_env(), bench::Scale::kPaper);
}

TEST(Datasets, TwoRowsAtEveryScale) {
  for (const auto scale :
       {bench::Scale::kTiny, bench::Scale::kPaper, bench::Scale::kLarge}) {
    const auto ds = bench::datasets(scale);
    ASSERT_EQ(ds.size(), 2u) << bench::to_string(scale);
    EXPECT_LT(ds[0].vertices, ds[1].vertices);
    for (const auto& d : ds) {
      EXPECT_FALSE(d.label.empty());
      EXPECT_GT(d.vertices, 0u);
      EXPECT_GT(d.edges, d.vertices);  // all rows are denser than a tree
    }
  }
}

TEST(Datasets, PaperRowsMatchTable1) {
  const auto ds = bench::datasets(bench::Scale::kPaper);
  EXPECT_EQ(ds[0].label, "50K");
  EXPECT_EQ(ds[0].vertices, 50'000u);
  EXPECT_EQ(ds[0].edges, 1'000'000u);
  EXPECT_FALSE(ds[0].scaled);
  EXPECT_TRUE(ds[1].scaled);

  const auto large = bench::datasets(bench::Scale::kLarge);
  EXPECT_EQ(large[1].vertices, 500'000u);
  EXPECT_EQ(large[1].edges, 10'200'000u);
}

TEST(Datasets, TinyIsCiSized) {
  for (const auto& d : bench::datasets(bench::Scale::kTiny)) {
    EXPECT_LE(d.edges, 200'000u);
    EXPECT_TRUE(d.scaled);
  }
}

TEST(ScaleNames, RoundTripThroughEnv) {
  for (const auto scale :
       {bench::Scale::kTiny, bench::Scale::kPaper, bench::Scale::kLarge}) {
    const ScopedEnv env("CCASTREAM_SCALE", bench::to_string(scale));
    EXPECT_EQ(bench::scale_from_env(), scale);
  }
}

TEST(JsonRecord, FormatParseRoundTrip) {
  const bench::BenchRecord r{"bench_table2", "500K(1/5)", 123456789,
                             4669.125, "paper"};
  const auto parsed = bench::parse_record(bench::format_record(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);
}

TEST(JsonRecord, RoundTripPreservesAwkwardValues) {
  const bench::BenchRecord r{"bench \"quoted\"\\slash", "ds\nnewline\ttab",
                             0, 0.1 + 0.2, "tiny"};
  const std::string line = bench::format_record(r);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "records must be one line";
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);  // %.17g keeps the double bit-exact
}

TEST(JsonRecord, ControlCharactersEscapeAndRoundTrip) {
  const bench::BenchRecord r{"bench\rcarriage", "ds\x01\x1f", 7, 1.0, "tiny"};
  const std::string line = bench::format_record(r);
  for (const char c : line) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control char leaked into JSON";
  }
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);
}

TEST(JsonRecord, CyclesAbove2Pow53StayExact) {
  const bench::BenchRecord r{"b", "d", (1ull << 53) + 1, 0.0, "large"};
  const auto parsed = bench::parse_record(bench::format_record(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cycles, (1ull << 53) + 1);
}

TEST(PathSafeLabel, StripsDirectorySeparators) {
  EXPECT_EQ(bench::path_safe_label("500K(1/5)"), "500K(1-5)");
  EXPECT_EQ(bench::path_safe_label("a\\b c"), "a-b-c");
  EXPECT_EQ(bench::path_safe_label("2K(tiny)"), "2K(tiny)");
}

TEST(JsonRecord, ParseRejectsGarbage) {
  EXPECT_FALSE(bench::parse_record("").has_value());
  EXPECT_FALSE(bench::parse_record("not json at all").has_value());
  EXPECT_FALSE(
      bench::parse_record("{\"bench\":\"x\",\"cycles\":1}").has_value());
  EXPECT_FALSE(
      bench::parse_record("{\"bench\":\"unterminated").has_value());
}

TEST(JsonRecord, ThreadsFieldRoundTrips) {
  const bench::BenchRecord r{"b", "64x64", 100, 2.5, "tiny", /*threads=*/4};
  const std::string line = bench::format_record(r);
  EXPECT_NE(line.find("\"threads\":4"), std::string::npos);
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->threads, 4u);
  EXPECT_EQ(*parsed, r);
}

TEST(JsonRecord, WallMsRoundTripsAndIsOmittedWhenUnmeasured) {
  const bench::BenchRecord measured{"b", "64x64", 100, 2.5, "tiny",
                                    /*threads=*/4, /*wall_ms=*/123.456};
  const std::string line = bench::format_record(measured);
  EXPECT_NE(line.find("\"wall_ms\":"), std::string::npos);
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, measured);  // %.17g keeps the double bit-exact

  const bench::BenchRecord unmeasured{"b", "d", 1, 1.0, "tiny"};
  const std::string bare = bench::format_record(unmeasured);
  EXPECT_EQ(bare.find("wall_ms"), std::string::npos);
  const auto reparsed = bench::parse_record(bare);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->wall_ms, 0.0);
}

TEST(JsonRecord, PartitionFieldRoundTrips) {
  bench::BenchRecord r{"b", "64x64", 100, 2.5, "tiny", /*threads=*/4};
  r.partition = "tiles:2x2+rebalance";
  const std::string line = bench::format_record(r);
  EXPECT_NE(line.find("\"partition\":\"tiles:2x2+rebalance\""),
            std::string::npos);
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->partition, "tiles:2x2+rebalance");
  EXPECT_EQ(*parsed, r);
}

TEST(JsonRecord, LegacyRecordWithoutThreadsDefaultsToSerial) {
  // Records written before the parallel backend existed carry no threads
  // field; they were all measured on the serial engine — and records from
  // before the partition layer were all row stripes.
  const std::string line =
      "{\"bench\":\"b\",\"dataset\":\"d\",\"cycles\":5,"
      "\"energy_uj\":1.0,\"scale\":\"tiny\"}";
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->threads, 1u);
  EXPECT_EQ(parsed->partition, "rows");
}

TEST(JsonRecord, ParseRejectsNegativeCycles) {
  const std::string line =
      "{\"bench\":\"b\",\"dataset\":\"d\",\"cycles\":-1,"
      "\"energy_uj\":1.0,\"scale\":\"tiny\"}";
  EXPECT_FALSE(bench::parse_record(line).has_value());
}

TEST(JsonReporter, FixedScaleOverridesEnvironment) {
  const ScopedEnv scale("CCASTREAM_SCALE", "paper");
  const std::string path = ::testing::TempDir() + "harness_test_fixed.jsonl";
  std::remove(path.c_str());
  const ScopedEnv json("CCASTREAM_BENCH_JSON", path.c_str());
  const bench::JsonReporter reporter("bench_micro", "fixed");
  reporter.record("2K/20K(ingest)", 1, 1.0);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto r = bench::parse_record(line);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->scale, "fixed");
  std::remove(path.c_str());
}

TEST(JsonReporter, DisabledWithoutEnvWritesNothing) {
  const ScopedEnv env("CCASTREAM_BENCH_JSON", nullptr);
  const bench::JsonReporter reporter("bench_x");
  EXPECT_FALSE(reporter.enabled());
  reporter.record("ds", 1, 1.0);  // must be a no-op, not a crash
}

TEST(JsonReporter, AppendsParseableRecordsToEnvNamedFile) {
  const std::string path =
      ::testing::TempDir() + "harness_test_records.jsonl";
  std::remove(path.c_str());
  const ScopedEnv json(("CCASTREAM_BENCH_JSON"), path.c_str());
  const ScopedEnv scale("CCASTREAM_SCALE", "tiny");

  {
    const bench::JsonReporter reporter("bench_alpha");
    ASSERT_TRUE(reporter.enabled());
    reporter.record("2K(tiny)", 1000, 1.5);
  }
  {
    const bench::JsonReporter reporter("bench_beta");
    reporter.record("8K(tiny)", 2000, 2.5);  // appends, never truncates
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<bench::BenchRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    const auto r = bench::parse_record(line);
    ASSERT_TRUE(r.has_value()) << line;
    records.push_back(*r);
  }
  ASSERT_EQ(records.size(), 2u);
  // The reporter tags every record with the env-resolved backend (thread
  // count and partition spec), so the expectations must match whatever
  // CCASTREAM_THREADS / CCASTREAM_PARTITION the suite itself runs under
  // (e.g. CI's thread and partition matrices).
  const std::uint64_t backend = ccastream::sim::resolve_threads(0);
  const std::string partition = ccastream::sim::resolve_partition({}).to_string();
  const std::string engine{
      ccastream::sim::to_string(ccastream::sim::resolve_engine({}))};
  bench::BenchRecord alpha{"bench_alpha", "2K(tiny)", 1000,
                           1.5, "tiny",   backend,    0.0,
                           partition,     engine};
  bench::BenchRecord beta{"bench_beta", "8K(tiny)", 2000,
                          2.5, "tiny",  backend,    0.0,
                          partition,    engine};
  // The reporter stamps the measuring host's core count on every record.
  alpha.host_cores = std::max(1u, std::thread::hardware_concurrency());
  beta.host_cores = alpha.host_cores;
  EXPECT_EQ(records[0], alpha);
  EXPECT_EQ(records[1], beta);
  std::remove(path.c_str());
}

TEST(JsonRecord, HostCoresRoundTripsAndLegacyDefaultsToOne) {
  bench::BenchRecord r{"b", "64x64", 100, 2.5, "tiny"};
  r.host_cores = 96;
  const std::string line = bench::format_record(r);
  EXPECT_NE(line.find("\"host_cores\":96"), std::string::npos);
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);

  // Records written before hardware context existed carry no host_cores
  // field; they parse as the conservative single-core default, which is
  // also what a default-constructed record holds — so legacy lines still
  // round-trip through format_record unchanged.
  const auto legacy = bench::parse_record(
      "{\"bench\":\"b\",\"dataset\":\"d\",\"cycles\":5,"
      "\"energy_uj\":1.0,\"scale\":\"tiny\"}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->host_cores, 1u);
}

TEST(JsonReporter, StampsHostCoresOnEveryRecord) {
  const std::string path = ::testing::TempDir() + "harness_test_cores.jsonl";
  std::remove(path.c_str());
  const ScopedEnv json("CCASTREAM_BENCH_JSON", path.c_str());
  const bench::JsonReporter reporter("bench_cores", "fixed");
  reporter.record("ds", 1, 1.0);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto r = bench::parse_record(line);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->host_cores, std::max(1u, std::thread::hardware_concurrency()));
  std::remove(path.c_str());
}

TEST(JsonRecord, RssKbRoundTripsAndIsOmittedWhenUnmeasured) {
  bench::BenchRecord r{"b", "256x256", 100, 2.5, "paper"};
  r.rss_kb = 214'780;
  const std::string line = bench::format_record(r);
  EXPECT_NE(line.find("\"rss_kb\":214780"), std::string::npos);
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);

  // 0 means unmeasured (no procfs): the field is omitted on write and
  // legacy lines without it parse back to the same 0 default.
  const bench::BenchRecord bare{"b", "d", 1, 1.0, "tiny"};
  EXPECT_EQ(bench::format_record(bare).find("rss_kb"), std::string::npos);
  const auto legacy = bench::parse_record(
      "{\"bench\":\"b\",\"dataset\":\"d\",\"cycles\":5,"
      "\"energy_uj\":1.0,\"scale\":\"tiny\"}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->rss_kb, 0u);
}

TEST(PeakRss, ReportsANonDecreasingHighWaterOnLinux) {
  const std::uint64_t before = bench::peak_rss_kb();
  if (before == 0) GTEST_SKIP() << "procfs unavailable on this host";
  // Touch a few MiB so the high-water mark has definitely been pushed past
  // zero; the mark never decreases within a process lifetime.
  std::vector<char> ballast(8u << 20, 1);
  EXPECT_GE(bench::peak_rss_kb(), before);
  EXPECT_GT(ballast[4u << 20], 0);
}

TEST(JsonRecord, EngineAndCellVisitsRoundTrip) {
  bench::BenchRecord r{"b", "64x64", 100, 2.5, "tiny", /*threads=*/4};
  r.engine = "active";
  r.cell_visits = 123'456;
  const std::string line = bench::format_record(r);
  EXPECT_NE(line.find("\"engine\":\"active\""), std::string::npos);
  EXPECT_NE(line.find("\"cell_visits\":123456"), std::string::npos);
  const auto parsed = bench::parse_record(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, r);

  // Unmeasured visit counts are omitted, and legacy lines (no engine
  // field) were all measured on the scan engine.
  const bench::BenchRecord bare{"b", "d", 1, 1.0, "tiny"};
  EXPECT_EQ(bench::format_record(bare).find("cell_visits"), std::string::npos);
  const auto legacy = bench::parse_record(
      "{\"bench\":\"b\",\"dataset\":\"d\",\"cycles\":5,"
      "\"energy_uj\":1.0,\"scale\":\"tiny\"}");
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->engine, "scan");
  EXPECT_EQ(legacy->cell_visits, 0u);
}

}  // namespace
