// The struct-of-arrays hot cell state (sim/cell_soa.hpp): the contract
// between the SoA words and the per-cell containers they summarise.
//
//   * the packed hot word is busy << 32 | work_items, and work_items is
//     exactly FIFO messages + staged + task + action queue entries — the
//     invariant idle() reduces to a single load on;
//   * the cached fifo_msgs counter equals real lane occupancy after every
//     sanctioned mutation (push_router/push_io/push_local_out/pop_input),
//     including a randomized interleaving of all of them;
//   * the activity bitmap's span sweep (for_each_active) visits exactly
//     the set bits of a half-open span in ascending order, with correct
//     masking at every 64-bit word boundary — the core of the dense-mode
//     phase walks;
//   * lane geometry: arbitration order, per-lane isolation in the slab,
//     the owns_lane ownership guard, and the snapshot latches.
//
// Low-level tests drive a standalone CellSoA; the agreement tests go
// through a real Chip so the sanctioned helpers are exercised exactly as
// the engines use them.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "test_util.hpp"

namespace ccastream::sim {
namespace {

Message make_msg(std::uint32_t src) {
  Message m;
  m.src_cc = src;
  return m;
}

// ---------------------------------------------------------------------------
// Standalone CellSoA: layout, lanes, arbitration, snapshots, bitmap.

TEST(CellSoALayout, InitCarvesAllZeroIdleState) {
  CellSoA soa;
  soa.init(256, 4);
  EXPECT_EQ(soa.cell_count(), 256u);
  EXPECT_EQ(soa.fifo_depth(), 4u);
  EXPECT_GT(soa.slab_bytes(), 0u);
  for (std::uint32_t cc : {0u, 1u, 63u, 64u, 255u}) {
    EXPECT_EQ(soa.hot_word(cc), 0u);
    EXPECT_EQ(soa.fifo_msgs(cc), 0u);
    EXPECT_EQ(soa.lane_occupancy(cc), 0u);
    EXPECT_EQ(soa.arb_next(cc), 0u);
    EXPECT_FALSE(soa.is_active(cc));
    for (std::size_t d = 0; d < kMeshDirections; ++d) {
      EXPECT_EQ(soa.snapshot(cc)[d], 0u);
    }
    for (std::size_t l = 0; l < CellSoA::kLanes; ++l) {
      EXPECT_TRUE(soa.lane(cc, l).empty());
      EXPECT_EQ(soa.lane(cc, l).capacity(), 4u);
    }
  }
}

TEST(CellSoALayout, PackedHotWordHalves) {
  CellSoA soa;
  soa.init(8, 2);
  soa.add_work(3);
  soa.add_work(3);
  soa.set_busy(3, 5);
  EXPECT_EQ(soa.hot_word(3), (5ull << 32) | 2u);
  EXPECT_EQ(soa.busy(3), 5u);
  EXPECT_EQ(soa.work_items(3), 2u);
  soa.dec_busy(3);
  soa.sub_work(3);
  EXPECT_EQ(soa.hot_word(3), (4ull << 32) | 1u);
  // set_busy must not disturb the work half, and vice versa.
  soa.set_busy(3, 0);
  EXPECT_EQ(soa.hot_word(3), 1u);
  soa.sub_work(3);
  EXPECT_EQ(soa.hot_word(3), 0u);
  // Neighbours were never touched.
  EXPECT_EQ(soa.hot_word(2), 0u);
  EXPECT_EQ(soa.hot_word(4), 0u);
}

TEST(CellSoALayout, LanesAreIsolatedPerCellAndLane) {
  CellSoA soa;
  soa.init(16, 3);
  // One distinct message in every lane of two adjacent cells: no lane may
  // alias another's slab slice.
  for (std::uint32_t cc : {6u, 7u}) {
    for (std::size_t l = 0; l < CellSoA::kLanes; ++l) {
      soa.lane(cc, l).push(make_msg(cc * 10 + static_cast<std::uint32_t>(l)));
    }
  }
  for (std::uint32_t cc : {6u, 7u}) {
    for (std::size_t l = 0; l < CellSoA::kLanes; ++l) {
      ASSERT_EQ(soa.lane(cc, l).size(), 1u);
      EXPECT_EQ(soa.lane(cc, l).front().src_cc,
                cc * 10 + static_cast<std::uint32_t>(l));
    }
    EXPECT_EQ(soa.lane_occupancy(cc), CellSoA::kLanes);
  }
  EXPECT_EQ(soa.lane_occupancy(5), 0u);
  EXPECT_EQ(soa.lane_occupancy(8), 0u);
}

TEST(CellSoALayout, OwnsLaneGuardsCellBoundaries) {
  CellSoA soa;
  soa.init(8, 2);
  for (std::size_t l = 0; l < CellSoA::kLanes; ++l) {
    EXPECT_TRUE(soa.owns_lane(4, soa.lane(4, l)));
    EXPECT_FALSE(soa.owns_lane(3, soa.lane(4, l)));
    EXPECT_FALSE(soa.owns_lane(5, soa.lane(4, l)));
  }
}

TEST(CellSoALayout, ArbitrationPointerWrapsOverAllLanes) {
  CellSoA soa;
  soa.init(4, 2);
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::size_t l = 0; l < CellSoA::kLanes; ++l) {
      EXPECT_EQ(soa.arb_next(1), l);
      soa.advance_arb(1);
    }
  }
  EXPECT_EQ(soa.arb_next(1), 0u);
  EXPECT_EQ(soa.arb_next(0), 0u);  // untouched neighbour
}

TEST(CellSoALayout, SnapshotLatchesRouterLanesOnly) {
  CellSoA soa;
  soa.init(8, 4);
  soa.lane(2, 0).push(make_msg(0));
  soa.lane(2, 0).push(make_msg(0));
  soa.lane(2, 3).push(make_msg(0));
  soa.lane(2, CellSoA::kIoLane).push(make_msg(0));        // not latched
  soa.lane(2, CellSoA::kLocalOutLane).push(make_msg(0));  // not latched
  soa.latch_snapshot(2);
  EXPECT_EQ(soa.snapshot(2)[0], 2u);
  EXPECT_EQ(soa.snapshot(2)[1], 0u);
  EXPECT_EQ(soa.snapshot(2)[2], 0u);
  EXPECT_EQ(soa.snapshot(2)[3], 1u);
  // The latch is a copy: draining the lane afterwards must not move it.
  soa.lane(2, 0).pop();
  EXPECT_EQ(soa.snapshot(2)[0], 2u);
  soa.zero_snapshot(2);
  for (std::size_t d = 0; d < kMeshDirections; ++d) {
    EXPECT_EQ(soa.snapshot(2)[d], 0u);
  }
}

// ---------------------------------------------------------------------------
// The activity bitmap and its span sweep.

std::vector<std::uint32_t> sweep(const CellSoA& soa, std::uint32_t begin,
                                 std::uint32_t end) {
  std::vector<std::uint32_t> out;
  soa.for_each_active(begin, end, [&out](std::uint32_t cc) { out.push_back(cc); });
  return out;
}

TEST(CellSoABitmap, SetClearIsActive) {
  CellSoA soa;
  soa.init(256, 2);
  for (std::uint32_t cc : {0u, 63u, 64u, 127u, 128u, 255u}) {
    EXPECT_FALSE(soa.is_active(cc));
    soa.set_active(cc);
    EXPECT_TRUE(soa.is_active(cc));
  }
  soa.clear_active(64);
  EXPECT_FALSE(soa.is_active(64));
  EXPECT_TRUE(soa.is_active(63));   // same-word neighbour bit survives
  EXPECT_TRUE(soa.is_active(127));
}

TEST(CellSoABitmap, SweepVisitsSetBitsAscending) {
  CellSoA soa;
  soa.init(256, 2);
  const std::vector<std::uint32_t> bits = {0, 1, 62, 63, 64, 100, 191, 192, 255};
  for (const auto cc : bits) soa.set_active(cc);
  EXPECT_EQ(sweep(soa, 0, 256), bits);
  EXPECT_EQ(soa.count_active(0, 256), bits.size());
}

TEST(CellSoABitmap, SpanMaskingAtWordBoundaries) {
  CellSoA soa;
  soa.init(256, 2);
  for (std::uint32_t cc = 0; cc < 256; ++cc) soa.set_active(cc);

  // Empty and degenerate spans.
  EXPECT_TRUE(sweep(soa, 17, 17).empty());
  EXPECT_TRUE(sweep(soa, 100, 50).empty());
  // Span inside one word.
  EXPECT_EQ(sweep(soa, 5, 9), (std::vector<std::uint32_t>{5, 6, 7, 8}));
  // First/last cell of a word.
  EXPECT_EQ(sweep(soa, 63, 65), (std::vector<std::uint32_t>{63, 64}));
  // end on a word boundary (end & 63 == 0) must not shift by 64.
  EXPECT_EQ(soa.count_active(0, 64), 64u);
  EXPECT_EQ(soa.count_active(32, 128), 96u);
  EXPECT_EQ(soa.count_active(0, 256), 256u);
  // begin on a word boundary.
  EXPECT_EQ(soa.count_active(64, 67), 3u);
  // A span is a half-open interval: end is excluded, begin included.
  const auto span = sweep(soa, 60, 70);
  EXPECT_EQ(span.front(), 60u);
  EXPECT_EQ(span.back(), 69u);
  EXPECT_EQ(span.size(), 10u);
}

TEST(CellSoABitmap, SweepSkipsClearedWords) {
  CellSoA soa;
  soa.init(512, 2);
  soa.set_active(300);
  EXPECT_EQ(sweep(soa, 0, 512), (std::vector<std::uint32_t>{300}));
  EXPECT_EQ(soa.count_active(0, 300), 0u);
  EXPECT_EQ(soa.count_active(301, 512), 0u);
  EXPECT_EQ(soa.count_active(300, 301), 1u);
}

// ---------------------------------------------------------------------------
// Word <-> container agreement through the sanctioned ComputeCell helpers,
// on a real chip — the exact call sites the engines use.

void expect_consistent(const sim::Chip& chip, std::uint32_t cc) {
  const auto& cell = chip.cell(cc);
  const auto& soa = chip.cell_state();
  ASSERT_EQ(cell.fifo_msgs(), cell.router_occupancy());
  ASSERT_EQ(cell.fifo_msgs(), soa.lane_occupancy(cc));
  const std::uint64_t expected_work =
      cell.fifo_msgs() + cell.staged_count() + cell.task_count() +
      cell.action_count();
  ASSERT_EQ(soa.work_items(cc), expected_work);
  ASSERT_EQ(soa.hot_word(cc),
            (static_cast<std::uint64_t>(cell.busy()) << 32) | expected_work);
  ASSERT_EQ(cell.idle(), soa.hot_word(cc) == 0);
}

TEST(SoAAgreement, SanctionedHelpersKeepHotWordInLockstep) {
  sim::Chip chip(test::small_chip_config(4));
  auto& cell = chip.cell(5);
  expect_consistent(chip, 5);

  cell.push_router(2, make_msg(1));
  cell.push_io(make_msg(2));
  cell.push_local_out(make_msg(3));
  cell.push_staged(make_msg(4));
  cell.push_task(rt::Action{});
  cell.push_action(rt::Action{});
  cell.set_busy(7);
  expect_consistent(chip, 5);
  EXPECT_EQ(cell.fifo_msgs(), 3u);
  EXPECT_EQ(chip.cell_state().work_items(5), 6u);
  EXPECT_FALSE(cell.idle());

  cell.pop_input(cell.router_in(2));
  cell.pop_input(cell.io_in());
  cell.pop_input(cell.local_out());
  cell.pop_staged();
  cell.pop_task();
  cell.pop_action();
  expect_consistent(chip, 5);
  EXPECT_TRUE(cell.busy() > 0);  // busy alone keeps the cell non-idle
  EXPECT_FALSE(cell.idle());
  cell.set_busy(0);
  expect_consistent(chip, 5);
  EXPECT_TRUE(cell.idle());
}

TEST(SoAAgreement, RandomizedInterleavingStaysConsistent) {
  auto cfg = test::small_chip_config(4);
  cfg.check_level = rt::CheckLevel::cheap;  // helpers self-check every op
  sim::Chip chip(cfg);
  const std::uint32_t cc = 9;
  auto& cell = chip.cell(cc);
  rt::Xoshiro256 rng(0xD15EA5E);

  for (int step = 0; step < 2000; ++step) {
    switch (rng.next() % 10) {
      case 0: {
        const std::size_t port = rng.next() % kMeshDirections;
        if (cell.router_in(port).has_room()) cell.push_router(port, make_msg(cc));
        break;
      }
      case 1:
        if (cell.io_in().has_room()) cell.push_io(make_msg(cc));
        break;
      case 2:
        if (cell.local_out().has_room()) cell.push_local_out(make_msg(cc));
        break;
      case 3: {
        // Pop from the first non-empty lane, arbitration-style.
        for (std::size_t l = 0; l < CellSoA::kLanes; ++l) {
          const auto lane = chip.cell_state().lane(cc, l);
          if (!lane.empty()) {
            cell.pop_input(lane);
            break;
          }
        }
        break;
      }
      case 4:
        cell.push_staged(make_msg(cc));
        break;
      case 5:
        if (cell.staged_count() > 0) cell.pop_staged();
        break;
      case 6:
        cell.push_task(rt::Action{});
        break;
      case 7:
        if (cell.task_count() > 0) cell.pop_task();
        break;
      case 8:
        cell.push_action(rt::Action{});
        if (cell.action_count() > 3) cell.pop_action();
        break;
      case 9:
        if (cell.busy() > 0) {
          cell.dec_busy();
        } else {
          cell.set_busy(rng.next() % 4);
        }
        break;
    }
    if (step % 64 == 0) expect_consistent(chip, cc);
  }
  expect_consistent(chip, cc);
  // A cell mutated in isolation never leaks into its neighbours' words.
  expect_consistent(chip, 8);
  expect_consistent(chip, 10);
  EXPECT_TRUE(chip.cell(8).idle());
  EXPECT_TRUE(chip.cell(10).idle());
}

}  // namespace
}  // namespace ccastream::sim
