// Stress/scale sweep: mesh sizes {8x8, 32x32, 64x64} crossed with IO-side
// configurations and partition shapes (row stripes, column stripes, and
// rebalancing 2-D tiles), each streaming an SBM workload through BFS and
// verifying against the sequential oracle. Heavyweight by design: the
// suite is registered with ctest label `slow` and every test GTEST_SKIPs
// unless CCASTREAM_STRESS=1, so the default `ctest` run stays fast while
// CI's stress step (and `ctest -L slow` locally) exercises the full sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>

#include "test_util.hpp"

namespace ccastream {
namespace {

bool stress_enabled() {
  const char* v = std::getenv("CCASTREAM_STRESS");
  return v != nullptr && *v != '\0' && *v != '0';
}

using Case = std::tuple<std::uint32_t /*mesh*/, std::uint8_t /*io_sides*/,
                        const char* /*partition*/>;

class StressScale : public ::testing::TestWithParam<Case> {};

TEST_P(StressScale, StreamingBfsSettlesAndMatchesOracle) {
  if (!stress_enabled()) {
    GTEST_SKIP() << "set CCASTREAM_STRESS=1 to run the stress/scale sweep";
  }
  const auto [dim, io_sides, partition] = GetParam();

  sim::ChipConfig cfg;
  cfg.width = dim;
  cfg.height = dim;
  cfg.io_sides = io_sides;
  cfg.partition = *sim::PartitionSpec::parse(partition);
  cfg.seed = 0x57AE55ull + dim;
  // threads left at 0: honours CCASTREAM_THREADS, so the CI thread matrix
  // stresses both engines — and every partition shape — with the same
  // sweep (at 1 thread the shapes collapse to a single partition, which is
  // exactly the serial baseline the determinism suite pins against).
  sim::Chip chip(cfg);
  graph::GraphProtocol proto(chip);
  apps::StreamingBfs bfs(proto);
  bfs.install();

  // Scale the workload with the mesh so big chips do proportionally big
  // work: ~2 vertices per cell, average degree 6.
  const std::uint64_t n = 2ull * dim * dim;
  const std::uint64_t m = 6 * n;
  graph::GraphConfig gc;
  gc.num_vertices = n;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(proto, gc);
  bfs.set_source(g, 0);

  const auto sched = wl::make_graphchallenge_like(n, m, wl::SamplingKind::kEdge,
                                                  /*increments=*/3, cfg.seed);
  for (const auto& inc : sched.increments) {
    g.stream_increment(inc, /*max_cycles=*/200'000'000);
    ASSERT_TRUE(chip.quiescent()) << "increment failed to settle on " << dim
                                  << "x" << dim;
  }

  base::RefGraph ref(n);
  for (const auto& inc : sched.increments) ref.add_edges(inc);
  const auto want = base::bfs_levels(ref, 0);
  std::uint64_t mismatches = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    const rt::Word w = want[v] == base::kUnreached
                           ? apps::StreamingBfs::kUnreached
                           : want[v];
    if (bfs.level_of(g, v) != w) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(chip.stats().io_injections, 0u);
}

// Million-cell smoke: a 1024x1024 chip (2^20 cells) must be constructible
// and usable at a bounded footprint. Two distinct memory properties are
// pinned (see sim/cell_soa.hpp and docs/ARCHITECTURE.md "Memory layout"):
//
//   1. Construction is zero-page cheap: the ~1.8 GiB lane slab is reserved
//      from calloc zero pages, so a freshly built million-cell chip is a
//      few hundred MiB resident (the cold ComputeCell array dominates),
//      not the slab's worst case.
//   2. Even after a workload whose cross-mesh routing first-touches lanes
//      all over the chip (YX paths average ~2/3 of the mesh diameter, so
//      in-flight messages page in intermediate cells' lane blocks), the
//      total footprint stays near ~2 KiB/cell — well under the pre-SoA
//      layout's ~5.5 KiB/cell (BENCH_scale.json baseline), which per-cell
//      heap FIFOs paid at construction time for every cell.
std::uint64_t vm_hwm_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

TEST(StressMillionCell, SparseBfsOnMillionCellMeshStaysLean) {
  if (!stress_enabled()) {
    GTEST_SKIP() << "set CCASTREAM_STRESS=1 to run the stress/scale sweep";
  }
  sim::ChipConfig cfg;
  cfg.width = 1024;
  cfg.height = 1024;
  cfg.seed = 0x57AE55ull + 1024;
  sim::Chip chip(cfg);
  ASSERT_EQ(chip.cell_state().cell_count(), 1u << 20);
  const std::uint64_t rss_after_ctor = vm_hwm_kb();
  if (rss_after_ctor != 0) {
    // Property 1: the lane slab's reservation alone is ~1.8 GiB; a fresh
    // chip must not have paged it in.
    EXPECT_LT(rss_after_ctor, 600'000u)
        << "million-cell chip construction paged in " << rss_after_ctor
        << " KiB — zero-page lane slab regressed?";
  }

  // A deliberately small graph: the point is the mesh scale, not the load.
  graph::GraphProtocol proto(chip);
  apps::StreamingBfs bfs(proto);
  bfs.install();
  const std::uint64_t n = 2048;
  graph::GraphConfig gc;
  gc.num_vertices = n;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(proto, gc);
  bfs.set_source(g, 0);

  const auto sched = wl::make_graphchallenge_like(n, 6 * n,
                                                  wl::SamplingKind::kEdge,
                                                  /*increments=*/1, cfg.seed);
  g.stream_increment(sched.increments[0], /*max_cycles=*/200'000'000);
  ASSERT_TRUE(chip.quiescent());

  base::RefGraph ref(n);
  ref.add_edges(sched.increments[0]);
  const auto want = base::bfs_levels(ref, 0);
  std::uint64_t mismatches = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    const rt::Word w = want[v] == base::kUnreached
                           ? apps::StreamingBfs::kUnreached
                           : want[v];
    if (bfs.level_of(g, v) != w) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);

  // Property 2: ~2 KiB/cell after traffic, vs the pre-SoA ~5.5 KiB/cell.
  // Generous bound — this is a smoke test, not a perf gate; the calibrated
  // gates live in bench_mesh_scale.
  const std::uint64_t rss = vm_hwm_kb();
  if (rss != 0) {
    EXPECT_LT(rss, 3'500'000u)
        << "million-cell run reached " << rss
        << " KiB resident — over ~3.4 KiB/cell, approaching the pre-SoA "
           "per-cell-container footprint";
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto [dim, io_sides, partition] = info.param;
  std::string name = "Mesh" + std::to_string(dim) + "x" + std::to_string(dim);
  name += "_Io";
  if (io_sides & sim::kIoNorth) name += "N";
  if (io_sides & sim::kIoSouth) name += "S";
  if (io_sides & sim::kIoWest) name += "W";
  if (io_sides & sim::kIoEast) name += "E";
  name += "_";
  for (const char* c = partition; *c != '\0'; ++c) {
    if (*c == '+') {
      name += "Rebal";
      break;  // the suffix is always "+rebalance"
    }
    name += *c;
  }
  return name;
}

// The partition dimension covers the motivating shapes: row stripes (the
// default), column stripes (west/east IO), and rebalancing 2-D tiles (the
// most general decomposition plus the load-adaptive path) — 27 cases.
INSTANTIATE_TEST_SUITE_P(
    Sweep, StressScale,
    ::testing::Combine(
        ::testing::Values(8u, 32u, 64u),
        ::testing::Values(
            static_cast<std::uint8_t>(sim::kIoNorth | sim::kIoSouth),
            static_cast<std::uint8_t>(sim::kIoWest | sim::kIoEast),
            static_cast<std::uint8_t>(sim::kIoNorth | sim::kIoSouth |
                                      sim::kIoWest | sim::kIoEast)),
        ::testing::Values("rows", "cols", "tiles+rebalance")),
    case_name);

}  // namespace
}  // namespace ccastream
