// Message-driven triangle counting & Jaccard queries vs the oracles.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct TriFixture {
  explicit TriFixture(std::uint64_t nverts, std::uint32_t edge_capacity = 16) {
    chip = std::make_unique<sim::Chip>(small_chip_config());
    graph::RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    tri = std::make_unique<TriangleCounter>(*proto);
    jacc = std::make_unique<JaccardQuery>(*proto);
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }

  std::uint64_t count(const std::vector<StreamEdge>& undirected_edges) {
    sym = wl::undirected_simple(undirected_edges);
    g->stream_increment(sym);
    tri->start(*g);
    g->run();
    return tri->triangles(*g);
  }

  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<TriangleCounter> tri;
  std::unique_ptr<JaccardQuery> jacc;
  std::unique_ptr<graph::StreamingGraph> g;
  std::vector<StreamEdge> sym;
};

TEST(Triangles, SingleTriangle) {
  TriFixture f(3);
  EXPECT_EQ(f.count({{0, 1, 1}, {1, 2, 1}, {0, 2, 1}}), 1u);
}

TEST(Triangles, PathHasNone) {
  TriFixture f(4);
  EXPECT_EQ(f.count({{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}), 0u);
}

TEST(Triangles, K4HasFour) {
  TriFixture f(4);
  EXPECT_EQ(f.count({{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
                     {1, 2, 1}, {1, 3, 1}, {2, 3, 1}}),
            4u);
}

TEST(Triangles, K5HasTen) {
  TriFixture f(5);
  std::vector<StreamEdge> k5;
  for (std::uint64_t i = 0; i < 5; ++i) {
    for (std::uint64_t j = i + 1; j < 5; ++j) k5.push_back({i, j, 1});
  }
  EXPECT_EQ(f.count(k5), 10u);
}

TEST(Triangles, CountSurvivesGhostChains) {
  TriFixture f(4, /*edge_capacity=*/1);
  EXPECT_EQ(f.count({{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
                     {1, 2, 1}, {1, 3, 1}, {2, 3, 1}}),
            4u);
}

class TriEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriEquivalence, ClosedWedgesMatchOracle) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t n = 24;
  TriFixture f(n, /*edge_capacity=*/4);
  rt::Xoshiro256 rng(seed);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 60; ++i) {
    edges.push_back({rng.below(n), rng.below(n), 1});
  }
  f.count(edges);  // runs the chip
  const auto ref = base::closed_wedges(test::ref_graph_of(n, f.sym));
  EXPECT_EQ(f.tri->closed_wedges(*f.g), ref);
  EXPECT_EQ(ref % 3, 0u);  // symmetric simple graph: wedges = 3 * triangles
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriEquivalence,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

TEST(Jaccard, DisjointNeighborhoodsGiveZero) {
  TriFixture f(6);
  f.g->stream_increment(wl::symmetrize(
      std::vector<StreamEdge>{{0, 1, 1}, {0, 2, 1}, {3, 4, 1}, {3, 5, 1}}));
  EXPECT_DOUBLE_EQ(f.jacc->query(*f.g, 0, 3), 0.0);
}

TEST(Jaccard, KnownOverlap) {
  // N(0) = {1,2,3}, N(4) = {2,3,5}: common 2, union 4 -> J = 0.5.
  TriFixture f(6);
  f.g->stream_increment(wl::symmetrize(std::vector<StreamEdge>{
      {0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {4, 2, 1}, {4, 3, 1}, {4, 5, 1}}));
  EXPECT_DOUBLE_EQ(f.jacc->query(*f.g, 0, 4), 0.5);
}

class JaccardEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JaccardEquivalence, MatchesOracleOnRandomPairs) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t n = 20;
  TriFixture f(n, /*edge_capacity=*/3);
  rt::Xoshiro256 rng(seed);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 50; ++i) edges.push_back({rng.below(n), rng.below(n), 1});
  const auto sym = wl::undirected_simple(edges);
  f.g->stream_increment(sym);
  const auto ref_g = test::ref_graph_of(n, sym);
  for (int q = 0; q < 6; ++q) {
    const std::uint64_t u = rng.below(n);
    const std::uint64_t v = rng.below(n);
    if (u == v) continue;
    ASSERT_DOUBLE_EQ(f.jacc->query(*f.g, u, v), base::jaccard(ref_g, u, v))
        << "pair (" << u << "," << v << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JaccardEquivalence,
                         ::testing::Values(61, 62, 63, 64));

}  // namespace
}  // namespace ccastream::apps
