// The parallel engine's headline guarantee: a run is cycle-for-cycle
// identical for every thread count AND every mesh partition (row stripes,
// column stripes, 2-D tiles; with or without load-adaptive rebalancing).
// BFS and SSSP stream an SBM graph in increments on 1-, 2-, and 4-thread
// chips; final cycle count, the full ChipStats counter block, total energy,
// and every per-vertex result must match the serial engine exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

/// Minimal arena object used as a diffusion target.
class Blob final : public rt::ArenaObject {
 public:
  [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 16; }
};

constexpr std::uint64_t kVertices = 800;
constexpr std::uint64_t kEdges = 12'000;
constexpr std::uint64_t kSeed = 2024;

struct RunResult {
  std::uint64_t cycles = 0;
  sim::ChipStats stats;
  double energy_pj = 0.0;
  std::vector<rt::Word> results;  ///< Per-vertex app output.

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

enum class App { kBfs, kSssp };

RunResult run_app(App app, std::uint32_t threads,
                  const char* partition = nullptr) {
  sim::ChipConfig cfg;
  cfg.width = 16;
  cfg.height = 16;
  cfg.threads = threads;
  cfg.seed = kSeed;
  if (partition != nullptr) {
    cfg.partition = *sim::PartitionSpec::parse(partition);
  }
  sim::Chip chip(cfg);
  EXPECT_EQ(chip.threads(), threads);

  graph::GraphProtocol proto(chip);
  apps::StreamingBfs bfs(proto);
  apps::StreamingSssp sssp(proto);
  graph::GraphConfig gc;
  gc.num_vertices = kVertices;
  if (app == App::kBfs) {
    bfs.install();
    gc.root_init = apps::StreamingBfs::initial_state();
  } else {
    sssp.install();
    gc.root_init = apps::StreamingSssp::initial_state();
  }
  graph::StreamingGraph g(proto, gc);
  if (app == App::kBfs) {
    bfs.set_source(g, 0);
  } else {
    sssp.set_source(g, 0);
  }

  const auto sched = wl::make_graphchallenge_like(kVertices, kEdges,
                                                  wl::SamplingKind::kEdge,
                                                  /*increments=*/4, kSeed);
  for (const auto& inc : sched.increments) {
    g.stream_increment(inc);
  }
  EXPECT_TRUE(chip.quiescent());

  RunResult r;
  r.cycles = chip.stats().cycles;
  r.stats = chip.stats();
  r.energy_pj = chip.energy_pj();
  r.results.reserve(kVertices);
  for (std::uint64_t v = 0; v < kVertices; ++v) {
    r.results.push_back(app == App::kBfs ? bfs.level_of(g, v)
                                         : sssp.distance_of(g, v));
  }
  return r;
}

class Determinism : public ::testing::TestWithParam<App> {};

TEST_P(Determinism, ParallelRunsAreCycleIdenticalToSerial) {
  const RunResult serial = run_app(GetParam(), 1);
  // The serial run did real work (the comparison is not vacuous).
  ASSERT_GT(serial.cycles, 0u);
  ASSERT_GT(serial.stats.hops, 0u);
  ASSERT_GT(serial.energy_pj, 0.0);

  for (const std::uint32_t threads : {2u, 4u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    const RunResult parallel = run_app(GetParam(), threads);
    EXPECT_EQ(parallel.cycles, serial.cycles);
    EXPECT_EQ(parallel.stats, serial.stats);  // every ChipStats counter
    EXPECT_EQ(parallel.energy_pj, serial.energy_pj);
    EXPECT_EQ(parallel.results, serial.results);
  }
}

INSTANTIATE_TEST_SUITE_P(BfsAndSssp, Determinism,
                         ::testing::Values(App::kBfs, App::kSssp),
                         [](const auto& info) {
                           return info.param == App::kBfs ? "Bfs" : "Sssp";
                         });

// The partition-shape × thread-count matrix: every shape, with and without
// load-adaptive rebalancing, at 2 and 4 workers, against the serial run. A
// west/east-IO configuration rides along because it is the motivating case
// for column partitions (row stripes put every IO cell into two stripes)
// and exercises cross-partition traffic on the orthogonal axis. Shallow
// FIFOs + single ejection keep the mesh congested, where order-dependence
// would hide.
struct MatrixResult {
  sim::ChipStats stats;
  double energy_pj = 0.0;
  std::vector<rt::Word> levels;
  friend bool operator==(const MatrixResult&, const MatrixResult&) = default;
};

TEST(Determinism, PartitionShapeMatrixIsCycleIdenticalToSerial) {
  auto run = [](std::uint8_t io_sides, const char* partition,
                std::uint32_t threads) {
    sim::ChipConfig cfg;
    cfg.width = 12;
    cfg.height = 12;
    cfg.fifo_depth = 2;
    cfg.ejections_per_cycle = 1;
    cfg.io_sides = io_sides;
    cfg.threads = threads;
    cfg.partition = *sim::PartitionSpec::parse(partition);
    cfg.seed = 99;
    sim::Chip chip(cfg);
    graph::GraphProtocol proto(chip);
    apps::StreamingBfs bfs(proto);
    bfs.install();
    graph::GraphConfig gc;
    gc.num_vertices = 240;
    gc.root_init = apps::StreamingBfs::initial_state();
    graph::StreamingGraph g(proto, gc);
    bfs.set_source(g, 0);
    const auto sched = wl::make_graphchallenge_like(240, 4'000,
                                                    wl::SamplingKind::kEdge,
                                                    /*increments=*/3, 99);
    for (const auto& inc : sched.increments) g.stream_increment(inc);
    EXPECT_TRUE(chip.quiescent());
    MatrixResult r;
    r.stats = chip.stats();
    r.energy_pj = chip.energy_pj();
    for (std::uint64_t v = 0; v < 240; ++v) r.levels.push_back(bfs.level_of(g, v));
    return r;
  };

  for (const std::uint8_t io_sides :
       {static_cast<std::uint8_t>(sim::kIoNorth | sim::kIoSouth),
        static_cast<std::uint8_t>(sim::kIoWest | sim::kIoEast)}) {
    SCOPED_TRACE("io_sides = " + std::to_string(io_sides));
    const MatrixResult serial = run(io_sides, "rows", 1);
    ASSERT_GT(serial.stats.stage_stalls, 0u) << "config failed to congest";
    for (const char* partition :
         {"rows", "cols", "tiles", "rows+rebalance", "cols+rebalance",
          "tiles+rebalance"}) {
      for (const std::uint32_t threads : {2u, 4u}) {
        SCOPED_TRACE(std::string("partition = ") + partition +
                     ", threads = " + std::to_string(threads));
        EXPECT_EQ(run(io_sides, partition, threads), serial);
      }
    }
  }
}

// Deletion workloads go through a different protocol path than inserts
// (S-D delete phase, host-seeded unsettle waves, forced resettle
// diffusion), so cycle-identity is re-proven here on a sliding-window
// schedule whose drained tail is pure deletions — for every app the
// monotone-raise repair framework instantiates (BFS, SSSP, components):
// every engine, thread count, and partition shape must land on the
// identical counter block, energy, and per-vertex results as the serial
// scan run.
enum class WindowedApp { kBfs, kSssp, kComponents };

TEST(Determinism, SlidingWindowDeletionsAreCycleIdenticalToSerial) {
  auto run = [](WindowedApp app, sim::EngineKind engine, std::uint32_t threads,
                const char* partition) {
    sim::ChipConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.threads = threads;
    cfg.engine = engine;
    cfg.partition = *sim::PartitionSpec::parse(partition);
    cfg.seed = 404;
    sim::Chip chip(cfg);
    graph::GraphProtocol proto(chip);
    apps::StreamingBfs bfs(proto);
    apps::StreamingSssp sssp(proto);
    apps::StreamingComponents comps(proto);
    graph::GraphConfig gc;
    gc.num_vertices = 200;
    switch (app) {
      case WindowedApp::kBfs:
        bfs.install();
        gc.root_init = apps::StreamingBfs::initial_state();
        break;
      case WindowedApp::kSssp:
        sssp.install();
        gc.root_init = apps::StreamingSssp::initial_state();
        break;
      case WindowedApp::kComponents:
        comps.install();
        gc.root_init = apps::StreamingComponents::initial_state();
        break;
    }
    graph::StreamingGraph g(proto, gc);
    switch (app) {
      case WindowedApp::kBfs: bfs.set_source(g, 0); break;
      case WindowedApp::kSssp: sssp.set_source(g, 0); break;
      case WindowedApp::kComponents: comps.seed_labels(g); break;
    }
    auto sched = wl::make_graphchallenge_like(200, 3'000,
                                              wl::SamplingKind::kEdge,
                                              /*increments=*/5, 404);
    sched = wl::apply_sliding_window(sched, /*window=*/2, /*drain=*/true);
    std::uint64_t deletes = 0;
    for (const auto& inc : sched.increments) {
      deletes += g.stream_increment(inc).deletes;
    }
    EXPECT_TRUE(chip.quiescent());
    EXPECT_GT(deletes, 0u) << "window produced no deletions";
    MatrixResult r;
    r.stats = chip.stats();
    r.energy_pj = chip.energy_pj();
    for (std::uint64_t v = 0; v < 200; ++v) {
      switch (app) {
        case WindowedApp::kBfs: r.levels.push_back(bfs.level_of(g, v)); break;
        case WindowedApp::kSssp:
          r.levels.push_back(sssp.distance_of(g, v));
          break;
        case WindowedApp::kComponents:
          r.levels.push_back(comps.label_of(g, v));
          break;
      }
    }
    return r;
  };

  for (const auto& [app, name] :
       {std::pair{WindowedApp::kBfs, "bfs"}, {WindowedApp::kSssp, "sssp"},
        {WindowedApp::kComponents, "components"}}) {
    SCOPED_TRACE(std::string("app = ") + name);
    const MatrixResult serial = run(app, sim::EngineKind::kScan, 1, "rows");
    // The drained schedule ends with every edge deleted, so the comparison
    // covers full invalidation cascades: only the source survives for
    // BFS/SSSP, and every component label collapses back to its own id.
    if (app == WindowedApp::kComponents) {
      for (std::uint64_t v = 0; v < 200; ++v) {
        ASSERT_EQ(serial.levels[v], v) << "drained label not self at " << v;
      }
    } else {
      ASSERT_EQ(serial.levels[0], 0u);
      for (std::uint64_t v = 1; v < 200; ++v) {
        ASSERT_EQ(serial.levels[v], apps::StreamingBfs::kUnreached)
            << "drained graph still reaches vertex " << v;
      }
    }
    for (const sim::EngineKind engine :
         {sim::EngineKind::kScan, sim::EngineKind::kActive}) {
      for (const char* partition : {"rows", "cols", "tiles+rebalance"}) {
        for (const std::uint32_t threads : {2u, 4u}) {
          SCOPED_TRACE(std::string("engine = ") +
                       std::string(sim::to_string(engine)) +
                       ", partition = " + partition +
                       ", threads = " + std::to_string(threads));
          EXPECT_EQ(run(app, engine, threads, partition), serial);
        }
      }
    }
  }
}

// An explicit tile grid pins the partition count independently of the
// worker request — and still changes nothing.
TEST(Determinism, ExplicitTileGridIsCycleIdenticalToSerial) {
  const RunResult serial = run_app(App::kBfs, 1);
  const RunResult tiled = run_app(App::kBfs, 4, "tiles:2x2+rebalance");
  EXPECT_EQ(tiled, serial);
}

// Congestion is where order-dependence would hide: shallow FIFOs and a
// single ejection per cycle force sustained backpressure (stage stalls,
// full router ports), yet the snapshot protocol must still be exact — for
// every thread count AND both cycle engines (the active-set engine must
// track full router ports precisely, or a stale room snapshot would skew
// the hop counters here first).
TEST(Determinism, HeavyCongestionIsCycleIdenticalAcrossThreadCounts) {
  auto run = [](std::uint32_t threads,
                sim::EngineKind engine = sim::EngineKind::kScan,
                std::uint32_t dense_pct = 0) {
    sim::ChipConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.fifo_depth = 2;
    cfg.ejections_per_cycle = 1;
    cfg.threads = threads;
    cfg.engine = engine;
    cfg.dense_threshold_pct = dense_pct;
    cfg.seed = 77;
    sim::Chip chip(cfg);
    graph::GraphProtocol proto(chip);
    apps::StreamingBfs bfs(proto);
    bfs.install();
    graph::GraphConfig gc;
    gc.num_vertices = 300;
    gc.root_init = apps::StreamingBfs::initial_state();
    graph::StreamingGraph g(proto, gc);
    bfs.set_source(g, 0);
    const auto sched = wl::make_graphchallenge_like(300, 6'000,
                                                    wl::SamplingKind::kEdge,
                                                    /*increments=*/3, 77);
    for (const auto& inc : sched.increments) g.stream_increment(inc);
    return chip.stats();
  };
  const sim::ChipStats serial = run(1);
  EXPECT_GT(serial.stage_stalls, 0u) << "config failed to congest the mesh";
  for (const std::uint32_t threads : {2u, 4u, 7u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    EXPECT_EQ(run(threads), serial);
  }
  for (const std::uint32_t threads : {1u, 2u, 4u, 7u}) {
    SCOPED_TRACE("engine = active, threads = " + std::to_string(threads));
    EXPECT_EQ(run(threads, sim::EngineKind::kActive), serial);
  }
  // The hybrid's dense mode under the same congestion: a threshold of 1
  // keeps the bitmap walk (counting merge) engaged for essentially the
  // whole run, 1000 pins the sorted-vector sparse mode — neither may move
  // a single counter.
  for (const std::uint32_t dense_pct : {1u, 1000u}) {
    SCOPED_TRACE("engine = active, threads = 4, dense_pct = " +
                 std::to_string(dense_pct));
    EXPECT_EQ(run(4, sim::EngineKind::kActive, dense_pct), serial);
  }
}

// Service-mode replay: the same recorded increment log driven through
// svc::StreamService (codec round-trip included) must be cycle-identical
// to the one-shot batch oracle — at every thread count and under both
// cycle engines. The service adds an ingest queue, an engine thread, and
// per-batch snapshot latching around stream_increment; none of that may
// move a single counter, because latching only reads the quiescent chip.
TEST(Determinism, ServiceReplayIsCycleIdenticalToBatchRun) {
  constexpr std::uint64_t n = 260;
  auto sched = wl::make_graphchallenge_like(n, 4'200, wl::SamplingKind::kEdge,
                                            /*increments=*/4, /*seed=*/606);
  sched = wl::apply_sliding_window(sched, /*window=*/2, /*drain=*/false);

  // Record and re-read through the binary codec, so the replayed stream is
  // exactly what a serve-mode run would consume.
  std::stringstream log;
  io::write_increment_log(log, n, sched.increments);
  const io::DecodedIncrementLog decoded = io::read_increment_log(log);
  ASSERT_EQ(decoded.increments, sched.increments);

  auto make_rig = [&](std::uint32_t threads, sim::EngineKind engine) {
    sim::ChipConfig cfg;
    cfg.width = 8;
    cfg.height = 8;
    cfg.threads = threads;
    cfg.engine = engine;
    cfg.seed = 606;
    return cfg;
  };
  auto collect = [&](sim::Chip& chip, apps::StreamingBfs& bfs,
                     graph::StreamingGraph& g) {
    MatrixResult r;
    r.stats = chip.stats();
    r.energy_pj = chip.energy_pj();
    for (std::uint64_t v = 0; v < n; ++v) r.levels.push_back(bfs.level_of(g, v));
    return r;
  };

  // Batch oracle: serial scan engine, one-shot stream_increment loop.
  MatrixResult batch;
  {
    sim::Chip chip(make_rig(1, sim::EngineKind::kScan));
    graph::GraphProtocol proto(chip);
    apps::StreamingBfs bfs(proto);
    bfs.install();
    graph::GraphConfig gc;
    gc.num_vertices = n;
    gc.root_init = apps::StreamingBfs::initial_state();
    graph::StreamingGraph g(proto, gc);
    bfs.set_source(g, 0);
    for (const auto& inc : decoded.increments) g.stream_increment(inc);
    batch = collect(chip, bfs, g);
  }
  ASSERT_GT(batch.stats.cycles, 0u);

  for (const sim::EngineKind engine :
       {sim::EngineKind::kScan, sim::EngineKind::kActive}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE(std::string("engine = ") +
                   std::string(sim::to_string(engine)) +
                   ", threads = " + std::to_string(threads));
      sim::Chip chip(make_rig(threads, engine));
      graph::GraphProtocol proto(chip);
      apps::StreamingBfs bfs(proto);
      bfs.install();
      graph::GraphConfig gc;
      gc.num_vertices = n;
      gc.root_init = apps::StreamingBfs::initial_state();
      graph::StreamingGraph g(proto, gc);
      bfs.set_source(g, 0);

      svc::StreamService service(g);
      for (const auto& inc : decoded.increments) {
        ASSERT_TRUE(service.submit(inc));
      }
      service.flush();

      // The service's latched view agrees with the chip fixed point...
      svc::QueryRequest req;
      req.kind = svc::QueryKind::kAppWord;
      req.app_word = apps::StreamingBfs::kLevelWord;
      const svc::QueryResult res = service.query(req);
      EXPECT_EQ(res.seq, decoded.increments.size());
      service.stop();

      // ...and the whole run is cycle-identical to the batch oracle:
      // counters, energy, per-vertex results, per-batch cycle totals.
      const MatrixResult served = collect(chip, bfs, g);
      EXPECT_EQ(served, batch);
      EXPECT_EQ(res.values, batch.levels);
      std::uint64_t cycles = 0;
      for (const auto& r : service.batch_reports()) cycles += r.cycles;
      EXPECT_EQ(cycles, batch.stats.cycles);
    }
  }
}

// Repeated runs at the same thread count are identical too (no hidden
// dependence on scheduling or wall-clock).
TEST(Determinism, RepeatedParallelRunsAreIdentical) {
  const RunResult a = run_app(App::kBfs, 4);
  const RunResult b = run_app(App::kBfs, 4);
  EXPECT_EQ(a, b);
}

// step()-wise execution matches run_until_quiescent: the engine has no
// batching artefacts across dispatch granularity — and neither has the
// active-set engine, whose sparse fast path flips between pooled and
// serial cycle execution at exactly this boundary.
TEST(Determinism, SingleSteppingMatchesBatchedRun) {
  auto make_chip = [](std::uint32_t threads,
                      sim::EngineKind engine = sim::EngineKind::kScan) {
    sim::ChipConfig cfg = test::small_chip_config();
    cfg.threads = threads;
    cfg.engine = engine;
    return cfg;
  };
  auto seed_work = [](sim::Chip& chip) {
    const auto tgt = *chip.host_allocate(17, std::make_unique<Blob>());
    const rt::HandlerId fan = chip.handlers().register_handler(
        "fan", [tgt](rt::Context& ctx, const rt::Action& a) {
          if (a.args[0] > 0) {
            for (int i = 0; i < 3; ++i) {
              ctx.propagate(rt::make_action(a.handler, tgt, a.args[0] - 1));
            }
          }
        });
    chip.inject_local(rt::make_action(fan, tgt, rt::Word{5}));
  };

  sim::Chip batched(make_chip(2));
  seed_work(batched);
  const std::uint64_t cycles = batched.run_until_quiescent();

  sim::Chip stepped(make_chip(2));
  seed_work(stepped);
  std::uint64_t stepped_cycles = 0;
  while (!stepped.quiescent()) {
    stepped.step();
    ++stepped_cycles;
  }
  EXPECT_EQ(stepped_cycles, cycles);
  EXPECT_EQ(stepped.stats(), batched.stats());

  // The same scenario under the active-set engine, stepped AND batched,
  // must land on the identical cycle count and counter block.
  sim::Chip active_batched(make_chip(2, sim::EngineKind::kActive));
  seed_work(active_batched);
  EXPECT_EQ(active_batched.run_until_quiescent(), cycles);
  EXPECT_EQ(active_batched.stats(), batched.stats());

  sim::Chip active_stepped(make_chip(2, sim::EngineKind::kActive));
  seed_work(active_stepped);
  std::uint64_t active_cycles = 0;
  while (!active_stepped.quiescent()) {
    active_stepped.step();
    ++active_cycles;
  }
  EXPECT_EQ(active_cycles, cycles);
  EXPECT_EQ(active_stepped.stats(), batched.stats());
}

// The idle-cycle regression of the active-set engine: a chip with zero
// injected work is quiescent from construction, quiesces in O(1) cycles
// (run_until_quiescent runs none at all), and forced idle steps visit no
// cells whatsoever — while the scan engine pays the full mesh walk for the
// same nothing.
TEST(Determinism, IdleChipQuiescesImmediatelyUnderBothEngines) {
  for (const sim::EngineKind engine :
       {sim::EngineKind::kScan, sim::EngineKind::kActive}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      SCOPED_TRACE(std::string("engine = ") +
                   std::string(sim::to_string(engine)) +
                   ", threads = " + std::to_string(threads));
      sim::ChipConfig cfg = test::small_chip_config();  // 8x8
      cfg.threads = threads;
      cfg.engine = engine;
      sim::Chip chip(cfg);
      EXPECT_TRUE(chip.quiescent());
      EXPECT_EQ(chip.run_until_quiescent(1'000), 0u);
      EXPECT_EQ(chip.stats().cycles, 0u);
      EXPECT_EQ(chip.cell_visits(), 0u);

      chip.step();
      chip.step();
      EXPECT_EQ(chip.stats().cycles, 2u);
      EXPECT_TRUE(chip.quiescent());
      if (engine == sim::EngineKind::kActive) {
        // O(active cells) with zero active cells: no visits at all — and
        // the sparse fast path keeps even the pooled chip off its
        // barriers.
        EXPECT_EQ(chip.cell_visits(), 0u);
        EXPECT_EQ(chip.barrier_syncs(), 0u);
      } else {
        // The scan engine's cost floor: 3 full-mesh walks per cycle.
        EXPECT_EQ(chip.cell_visits(), 2u * 3u * 64u);
      }
    }
  }
}

}  // namespace
}  // namespace ccastream
