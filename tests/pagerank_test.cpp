// Asynchronous PageRank vs the sequential delta-push reference.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "test_util.hpp"

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct PrFixture {
  PrFixture(std::uint64_t nverts, PageRank::Params params) {
    chip = std::make_unique<sim::Chip>(small_chip_config());
    proto = std::make_unique<graph::GraphProtocol>(*chip);
    pr = std::make_unique<PageRank>(*proto, params);
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<PageRank> pr;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(PageRank, IsolatedVerticesGetBaseRank) {
  PrFixture f(4, {.damping = 0.85, .epsilon = 1e-12});
  f.g->run();
  f.pr->seed(*f.g);
  f.g->run();
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(f.pr->rank_of(*f.g, v), 0.15, 1e-9);
  }
}

TEST(PageRank, CycleIsUniform) {
  // On a directed cycle every vertex has identical rank.
  PrFixture f(5, {.damping = 0.85, .epsilon = 1e-12});
  std::vector<StreamEdge> cyc;
  for (std::uint64_t v = 0; v < 5; ++v) cyc.push_back({v, (v + 1) % 5, 1});
  f.g->stream_increment(cyc);
  f.pr->seed(*f.g);
  f.g->run();
  const double r0 = f.pr->rank_of(*f.g, 0);
  for (std::uint64_t v = 1; v < 5; ++v) {
    EXPECT_NEAR(f.pr->rank_of(*f.g, v), r0, 1e-6);
  }
  // Mass conservation: ranks sum to ~n * (1-d) / (1-d) = n... for a cycle
  // (no dangling mass), total rank approaches 1 per vertex * n * 0.15 / 0.15.
  double sum = 0;
  for (std::uint64_t v = 0; v < 5; ++v) sum += f.pr->rank_of(*f.g, v);
  EXPECT_NEAR(sum, 5.0, 1e-6);  // unnormalised PR sums to n on a cycle
}

class PrEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrEquivalence, MatchesSequentialDeltaPush) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t n = 24;
  const PageRank::Params params{.damping = 0.85, .epsilon = 1e-5};
  PrFixture f(n, params);

  rt::Xoshiro256 rng(seed);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 96; ++i) {
    edges.push_back({rng.below(n), rng.below(n), 1});
  }
  f.g->stream_increment(edges);
  f.pr->seed(*f.g);
  f.g->run();

  const auto ref = base::pagerank(test::ref_graph_of(n, edges), params.damping,
                                  params.epsilon);
  for (std::uint64_t v = 0; v < n; ++v) {
    // Both sides converge to the true PR within O(eps * n / (1-d)); the
    // tolerance is loose but far tighter than inter-vertex differences.
    // (epsilon is kept moderate: unbatched asynchronous push generates one
    // message per residual quantum, so message count grows as the number of
    // propagation paths above the threshold.)
    ASSERT_NEAR(f.pr->rank_of(*f.g, v), ref[v], 5e-3) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrEquivalence, ::testing::Values(41, 42));

TEST(PageRank, WorksAcrossGhostChains) {
  auto cfg = small_chip_config();
  auto chip = std::make_unique<sim::Chip>(cfg);
  graph::RpvoConfig rc;
  rc.edge_capacity = 2;  // force chains
  graph::GraphProtocol proto(*chip, rc);
  PageRank pr(proto, {.damping = 0.85, .epsilon = 1e-9});
  graph::GraphConfig gc;
  gc.num_vertices = 10;
  graph::StreamingGraph g(proto, gc);

  // A hub with out-degree 8: pushes must walk the chain to reach them all.
  std::vector<StreamEdge> edges;
  for (std::uint64_t v = 1; v < 9; ++v) edges.push_back({0, v, 1});
  g.stream_increment(edges);
  pr.seed(g);
  g.run();

  const auto ref =
      base::pagerank(test::ref_graph_of(10, edges), 0.85, 1e-9);
  for (std::uint64_t v = 0; v < 10; ++v) {
    ASSERT_NEAR(pr.rank_of(g, v), ref[v], 1e-6) << "vertex " << v;
  }
}

}  // namespace
}  // namespace ccastream::apps
