// Property tests for the mesh partition layer (sim/partition.hpp): every
// shape must cover each cell exactly once with contiguous rectangles, the
// spec grammar must round-trip, and load-adaptive rebalancing must produce
// valid, balanced splits from skewed histograms — all invariants the
// parallel engine's correctness (and the determinism suite) rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

using sim::PartitionLayout;
using sim::PartitionShape;
using sim::PartitionSpec;
using sim::PartRect;

/// The structural invariant behind everything: rectangles are in-bounds,
/// non-empty, and their disjoint union covers the mesh; the O(1) owner
/// table agrees with rectangle membership.
void expect_valid(const PartitionLayout& layout) {
  const std::uint32_t w = layout.mesh_width();
  const std::uint32_t h = layout.mesh_height();
  ASSERT_GE(layout.parts(), 1u);
  EXPECT_EQ(layout.parts(), layout.grid_x() * layout.grid_y());

  std::vector<std::uint32_t> covered(static_cast<std::size_t>(w) * h, 0);
  for (std::uint32_t p = 0; p < layout.parts(); ++p) {
    const PartRect& r = layout.rect(p);
    ASSERT_LT(r.x0, r.x1) << "empty rect in partition " << p;
    ASSERT_LT(r.y0, r.y1) << "empty rect in partition " << p;
    ASSERT_LE(r.x1, w);
    ASSERT_LE(r.y1, h);
    for (std::uint32_t y = r.y0; y < r.y1; ++y) {
      for (std::uint32_t x = r.x0; x < r.x1; ++x) {
        const std::uint32_t cell = y * w + x;
        ++covered[cell];
        EXPECT_EQ(layout.owner(cell), p)
            << "owner table disagrees with rect membership at (" << x << ","
            << y << ")";
      }
    }
  }
  for (std::uint32_t cell = 0; cell < w * h; ++cell) {
    EXPECT_EQ(covered[cell], 1u) << "cell " << cell << " covered "
                                 << covered[cell] << " times";
  }

  // The layout's own self-check (what CCASTREAM_CHECK=full runs at every
  // barrier) must agree with this independent reimplementation.
  EXPECT_TRUE(layout.exact_cover());
}

TEST(PartitionSpec, ParsesEveryGrammarForm) {
  struct Case {
    const char* text;
    PartitionShape shape;
    bool rebalance;
    std::uint32_t gx, gy;
  };
  const Case cases[] = {
      {"rows", PartitionShape::kRows, false, 0, 0},
      {"cols", PartitionShape::kCols, false, 0, 0},
      {"tiles", PartitionShape::kTiles, false, 0, 0},
      {"tiles:4x2", PartitionShape::kTiles, false, 4, 2},
      {"rows+rebalance", PartitionShape::kRows, true, 0, 0},
      {"cols+rebalance", PartitionShape::kCols, true, 0, 0},
      {"tiles:1x8+rebalance", PartitionShape::kTiles, true, 1, 8},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.text);
    const auto spec = PartitionSpec::parse(c.text);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->shape, c.shape);
    EXPECT_EQ(spec->rebalance, c.rebalance);
    EXPECT_EQ(spec->tiles_x, c.gx);
    EXPECT_EQ(spec->tiles_y, c.gy);
    // to_string round-trips the canonical spelling.
    EXPECT_EQ(spec->to_string(), c.text);
    EXPECT_EQ(PartitionSpec::parse(spec->to_string()), *spec);
  }
}

TEST(PartitionSpec, RejectsGarbage) {
  for (const char* bad :
       {"", "stripes", "row", "tiles:", "tiles:4", "tiles:x2", "tiles:4x",
        "tiles:0x2", "tiles:2x0", "tiles:2x2x2", "tiles:axb",
        "rows+rebalanced", "rows+", "+rebalance", "rows +rebalance"}) {
    EXPECT_FALSE(PartitionSpec::parse(bad).has_value()) << bad;
  }
}

TEST(PartitionLayout, RowStripesCoverEveryCellOnce) {
  for (const auto& [w, h] : {std::pair{8u, 8u}, {16u, 4u}, {5u, 7u}, {1u, 9u},
                            {32u, 32u}}) {
    for (const std::uint32_t parts : {1u, 2u, 3u, 4u, 7u, 16u}) {
      SCOPED_TRACE(std::to_string(w) + "x" + std::to_string(h) + " parts=" +
                   std::to_string(parts));
      const auto layout = PartitionLayout::build({}, w, h, parts);
      expect_valid(layout);
      EXPECT_EQ(layout.parts(), std::min(parts, h));  // clamped by rows
      for (std::uint32_t p = 0; p < layout.parts(); ++p) {
        EXPECT_EQ(layout.rect(p).width(), w) << "row stripes span the width";
      }
    }
  }
}

TEST(PartitionLayout, ColumnStripesCoverEveryCellOnce) {
  PartitionSpec spec;
  spec.shape = PartitionShape::kCols;
  for (const auto& [w, h] : {std::pair{8u, 8u}, {4u, 16u}, {7u, 5u}, {9u, 1u}}) {
    for (const std::uint32_t parts : {1u, 2u, 3u, 4u, 7u, 16u}) {
      SCOPED_TRACE(std::to_string(w) + "x" + std::to_string(h) + " parts=" +
                   std::to_string(parts));
      const auto layout = PartitionLayout::build(spec, w, h, parts);
      expect_valid(layout);
      EXPECT_EQ(layout.parts(), std::min(parts, w));  // clamped by columns
      for (std::uint32_t p = 0; p < layout.parts(); ++p) {
        EXPECT_EQ(layout.rect(p).height(), h) << "col stripes span the height";
      }
    }
  }
}

TEST(PartitionLayout, AutoTileGridsFactorTheWorkerCount) {
  PartitionSpec spec;
  spec.shape = PartitionShape::kTiles;
  for (std::uint32_t parts = 1; parts <= 8; ++parts) {
    SCOPED_TRACE("parts=" + std::to_string(parts));
    const auto layout = PartitionLayout::build(spec, 8, 8, parts);
    expect_valid(layout);
    EXPECT_EQ(layout.parts(), parts);  // 8x8 fits every factorisation to 8
  }
  // 4 workers on 8x8 should pick the square 2x2 grid, not a 1x4 stripe.
  const auto square = PartitionLayout::build(spec, 8, 8, 4);
  EXPECT_EQ(square.grid_x(), 2u);
  EXPECT_EQ(square.grid_y(), 2u);
  // A mesh too narrow for the square grid falls back to a fitting shape.
  const auto narrow = PartitionLayout::build(spec, 1, 8, 4);
  expect_valid(narrow);
  EXPECT_EQ(narrow.grid_x(), 1u);
  EXPECT_EQ(narrow.grid_y(), 4u);
}

TEST(PartitionLayout, ExplicitTileGridPinsThePartitionCount) {
  PartitionSpec spec = *PartitionSpec::parse("tiles:3x2");
  const auto layout = PartitionLayout::build(spec, 9, 8, /*target_parts=*/1);
  expect_valid(layout);
  EXPECT_EQ(layout.parts(), 6u);  // grid wins over the worker request
  EXPECT_EQ(layout.grid_x(), 3u);
  EXPECT_EQ(layout.grid_y(), 2u);
  // Oversized grids clamp to the mesh.
  const auto clamped = PartitionLayout::build(*PartitionSpec::parse("tiles:16x16"),
                                              4, 4, 1);
  expect_valid(clamped);
  EXPECT_EQ(clamped.parts(), 16u);  // 4x4 grid of single cells
}

TEST(PartitionLayout, HugeTileRequestClampsInsteadOfStalling) {
  // choose_tile_grid's divisor search is quadratic in the part count; an
  // unclamped worker request must degrade to the mesh capacity, not stall.
  const auto layout = PartitionLayout::build(*PartitionSpec::parse("tiles"),
                                             16, 16, 100'000'000);
  expect_valid(layout);
  EXPECT_EQ(layout.parts(), 256u);  // every cell its own tile
}

TEST(BalancedBoundaries, SkewedHistogramMovesTheBoundaries) {
  // All load in bin 0 of 8 bins, 4 parts: the first band collapses to the
  // single hot bin and the rest split the idle tail.
  std::vector<std::uint64_t> bins(8, 0);
  bins[0] = 1000;
  const auto b = sim::balanced_boundaries(bins, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[1], 1u) << "hot bin isolated in its own band";
  EXPECT_EQ(b[4], 8u);
  for (std::size_t s = 1; s < b.size(); ++s) {
    EXPECT_GT(b[s], b[s - 1]) << "every band keeps at least one bin";
  }
}

TEST(BalancedBoundaries, QuantileSplitIsBalanced) {
  // A spiky but clamp-free histogram: every band's load stays below the
  // ideal share plus one bin — the standard quantile-split bound.
  std::vector<std::uint64_t> bins = {1, 1, 100, 1, 1,  40, 1, 1,
                                     1, 9, 1,   1, 60, 1,  1, 30};
  const std::uint64_t total = std::accumulate(bins.begin(), bins.end(), 0ull);
  const std::uint64_t max_bin = *std::max_element(bins.begin(), bins.end());
  for (const std::uint32_t parts : {2u, 3u, 4u}) {
    SCOPED_TRACE("parts=" + std::to_string(parts));
    const auto b = sim::balanced_boundaries(bins, parts);
    for (std::uint32_t s = 0; s < parts; ++s) {
      const std::uint64_t band = std::accumulate(
          bins.begin() + b[s], bins.begin() + b[s + 1], 0ull);
      EXPECT_LE(band, total / parts + max_bin + 1);
    }
  }
}

TEST(BalancedBoundaries, ZeroLoadDegradesToUniform) {
  const std::vector<std::uint64_t> bins(12, 0);
  const auto b = sim::balanced_boundaries(bins, 4);
  EXPECT_EQ(b, (std::vector<std::uint32_t>{0, 3, 6, 9, 12}));
}

TEST(PartitionLayout, RebalanceIsValidDeterministicAndLoadAware) {
  for (const char* text : {"rows", "cols", "tiles"}) {
    SCOPED_TRACE(text);
    const auto spec = *PartitionSpec::parse(text);
    const auto uniform = PartitionLayout::build(spec, 8, 8, 4);
    // Synthetic skew: the north-west corner is hot (as under north IO with
    // a west-heavy workload).
    std::vector<std::uint64_t> load(64, 1);
    for (std::uint32_t y = 0; y < 2; ++y) {
      for (std::uint32_t x = 0; x < 2; ++x) load[y * 8 + x] = 500;
    }
    const auto balanced = uniform.rebalanced(load);
    expect_valid(balanced);
    EXPECT_EQ(balanced.parts(), uniform.parts());
    EXPECT_EQ(balanced.grid_x(), uniform.grid_x());
    EXPECT_EQ(balanced.grid_y(), uniform.grid_y());
    EXPECT_NE(balanced.rects(), uniform.rects())
        << "skewed load must move a boundary";
    // Same histogram, same split: the rebalance schedule is a pure
    // function of the load (what keeps parallel runs deterministic).
    EXPECT_EQ(uniform.rebalanced(load), balanced);
    // Zero load snaps back to the uniform layout.
    EXPECT_EQ(balanced.rebalanced(std::vector<std::uint64_t>(64, 0)), uniform);
  }
}

TEST(PartitionLayout, TileRebalanceBalancesBothAxesIndependently) {
  const auto spec = *PartitionSpec::parse("tiles");
  const auto uniform = PartitionLayout::build(spec, 8, 8, 4);  // 2x2 grid
  std::vector<std::uint64_t> load(64, 0);
  for (std::uint32_t x = 0; x < 8; ++x) load[0 * 8 + x] += 800;  // hot row 0
  for (std::uint32_t y = 0; y < 8; ++y) load[y * 8 + 0] += 800;  // hot col 0
  const auto balanced = uniform.rebalanced(load);
  expect_valid(balanced);
  EXPECT_EQ(balanced.grid_x(), 2u);
  EXPECT_EQ(balanced.grid_y(), 2u);
  // The hot row and column each land alone in the first band of their axis.
  EXPECT_EQ(balanced.rect(0), (PartRect{0, 1, 0, 1}));
}

// Hysteresis: the ROADMAP's oscillating-workload scenario. A hot row that
// wobbles between two adjacent positions makes the plain quantile split
// flip the boundary every call even though neither split is better — the
// ping-pong a minimum-improvement threshold exists to stop.
TEST(PartitionLayout, RebalanceHysteresisStopsMarginalPingPong) {
  const auto uniform = PartitionLayout::build({}, 8, 8, 2);  // 2 row stripes
  auto hot_row = [](std::uint32_t row) {
    std::vector<std::uint64_t> load(64, 1);
    for (std::uint32_t x = 0; x < 8; ++x) load[row * 8 + x] = 1000;
    return load;
  };
  // Settle on the split for a hot row 2 (boundary right behind it).
  const auto settled = uniform.rebalanced(hot_row(2));
  expect_valid(settled);
  ASSERT_NE(settled, uniform);

  // The hot row wobbles to 3: the quantile boundary wants to chase it even
  // though the hottest band barely changes (it contains the hot row either
  // way). Without hysteresis the layout flips…
  const auto chased = settled.rebalanced(hot_row(3), /*min_gain_pct=*/0);
  EXPECT_NE(chased, settled) << "test premise: plain quantiles ping-pong";
  // …and flips straight back on the next wobble: a genuine oscillation.
  EXPECT_EQ(chased.rebalanced(hot_row(2), 0), settled);

  // With the threshold the marginal move is rejected, in both directions.
  EXPECT_EQ(settled.rebalanced(hot_row(3), /*min_gain_pct=*/5), settled);
  EXPECT_EQ(chased.rebalanced(hot_row(2), /*min_gain_pct=*/5), chased);
}

// The threshold must not block genuine improvements: a load shift that
// clearly shrinks the hottest band still moves the boundaries.
TEST(PartitionLayout, RebalanceHysteresisStillAdoptsRealGains) {
  const auto uniform = PartitionLayout::build({}, 8, 8, 2);
  std::vector<std::uint64_t> top_heavy(64, 10);
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 8; ++x) top_heavy[y * 8 + x] = 200;
  }
  // Uniform split: hottest band 4 × 8 × 200; balanced split isolates fewer
  // hot rows — far past any sane threshold.
  const auto balanced = uniform.rebalanced(top_heavy, /*min_gain_pct=*/5);
  expect_valid(balanced);
  EXPECT_NE(balanced, uniform);
  EXPECT_EQ(balanced, uniform.rebalanced(top_heavy, 0))
      << "threshold changes *whether* to move, never *where*";
}

// The chip end of the contract: partition counts resolve per shape, an
// explicit grid overrides the thread request, and rebalancing relayouts
// between increments without changing any result.
TEST(ChipPartition, ShapeResolutionAndRebalanceAreResultInvariant) {
  sim::ChipConfig cfg = test::small_chip_config();  // 8x8 mesh
  cfg.threads = 3;
  cfg.partition = *PartitionSpec::parse("cols");
  sim::Chip cols(cfg);
  EXPECT_EQ(cols.partitions(), 3u);
  EXPECT_EQ(cols.partition_layout().grid_x(), 3u);

  cfg.threads = 1;
  cfg.partition = *PartitionSpec::parse("tiles:2x2");
  sim::Chip tiles(cfg);
  EXPECT_EQ(tiles.partitions(), 4u) << "explicit grid pins the worker count";

  // Identical skewed diffusions on rebalancing and non-rebalancing chips:
  // boundaries must move, results must not.
  auto run = [](bool rebalance) {
    sim::ChipConfig c = test::small_chip_config();
    c.threads = 4;
    c.partition = *PartitionSpec::parse(rebalance ? "rows+rebalance" : "rows");
    sim::Chip chip(c);
    const rt::HandlerId fan = chip.handlers().register_handler(
        "fan", [](rt::Context& ctx, const rt::Action& a) {
          ctx.charge(3);
          if (a.args[0] == 0) return;
          // Skew the diffusion into the top-left quadrant.
          const std::uint32_t cc = ctx.cc();
          const auto c0 = ctx.geometry().coord_of(cc);
          const rt::Coord next{c0.x / 2, c0.y / 2};
          ctx.propagate(rt::make_action(
              a.handler,
              rt::GlobalAddress{ctx.geometry().index_of(next), 0},
              a.args[0] - 1));
        });
    for (std::uint32_t burst = 0; burst < 4; ++burst) {
      for (std::uint32_t cc = 0; cc < chip.geometry().cell_count(); cc += 3) {
        chip.inject_local(rt::make_action(fan, rt::GlobalAddress{cc, 0},
                                          rt::Word{6}));
      }
      chip.run_until_quiescent(200'000);  // one "increment"
    }
    return std::pair{chip.stats(), chip.partition_rebalances()};
  };
  const auto [stats_plain, rebal_plain] = run(false);
  const auto [stats_rebal, rebal_count] = run(true);
  EXPECT_EQ(rebal_plain, 0u);
  EXPECT_GT(rebal_count, 0u) << "skewed load should trigger a re-split";
  EXPECT_EQ(stats_rebal, stats_plain)
      << "rebalancing must be cycle-for-cycle invisible in results";
}

// Chip-level hysteresis: a workload whose hot row oscillates between two
// mesh rows re-splits on every increment without damping; with the default
// minimum-improvement threshold (plus the decayed load window) the chip
// stops chasing it — and, as always, the results cannot tell the
// difference.
TEST(ChipPartition, RebalanceHysteresisDampensOscillation) {
  auto run = [](std::uint32_t min_gain) {
    sim::ChipConfig cfg = test::small_chip_config();  // 8x8
    cfg.threads = 2;
    cfg.partition = *PartitionSpec::parse("rows+rebalance");
    cfg.rebalance_min_gain_pct = min_gain;
    sim::Chip chip(cfg);
    const rt::HandlerId burn = chip.handlers().register_handler(
        "burn", [](rt::Context& ctx, const rt::Action&) { ctx.charge(24); });
    for (std::uint32_t burst = 0; burst < 6; ++burst) {
      const std::uint32_t row = burst % 2 == 0 ? 2 : 3;  // the oscillation
      for (std::uint32_t x = 0; x < 8; ++x) {
        chip.inject_local(rt::make_action(
            burn, rt::GlobalAddress{row * 8 + x, 0}));
      }
      chip.run_until_quiescent(100'000);
    }
    return std::pair{chip.stats(), chip.partition_rebalances()};
  };
  const auto [stats_plain, flips] = run(0);
  const auto [stats_damped, damped_flips] = run(5);
  EXPECT_GT(flips, 0u) << "test premise: the oscillation moves boundaries";
  EXPECT_LT(damped_flips, flips) << "hysteresis must damp the ping-pong";
  EXPECT_EQ(stats_damped, stats_plain)
      << "the rebalance schedule must never change results";
}

// A throwing handler must surface as a fault on every engine — under the
// worker pool an escaping exception would strand the other partitions at
// the phase barrier (deadlock), and the fault count must stay identical to
// serial.
TEST(ChipPartition, ThrowingHandlerIsAFaultNotADeadlock) {
  auto run = [](std::uint32_t threads) {
    sim::ChipConfig cfg = test::small_chip_config();
    cfg.threads = threads;
    sim::Chip chip(cfg);
    const rt::HandlerId boom = chip.handlers().register_handler(
        "boom", [](rt::Context&, const rt::Action&) {
          throw std::runtime_error("boom");
        });
    chip.inject_local(rt::make_action(boom, rt::GlobalAddress{5, 0}));
    chip.run_until_quiescent(10'000);
    return chip.stats();
  };
  const sim::ChipStats serial = run(1);
  EXPECT_EQ(serial.faults, 1u);
  EXPECT_EQ(run(4), serial);
}

}  // namespace
}  // namespace ccastream
