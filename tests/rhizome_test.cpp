// Rhizome support: multiple root fragments per vertex (the hub-spreading
// extension from the authors' companion design). Invariants: edges are
// conserved across all rhizomes' chains, monotone apps converge to the same
// answers as with a single root, hub load actually spreads, and the
// unsupported apps refuse loudly.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace ccastream::graph {
namespace {

using test::small_chip_config;

struct RhizomeFixture {
  RhizomeFixture(std::uint64_t nverts, std::uint32_t rhizomes,
                 std::uint32_t edge_capacity = 4,
                 sim::ChipConfig cfg = small_chip_config()) {
    chip = std::make_unique<sim::Chip>(cfg);
    RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<GraphProtocol>(*chip, rc);
    bfs = std::make_unique<apps::StreamingBfs>(*proto);
    bfs->install();
    GraphConfig gc;
    gc.num_vertices = nverts;
    gc.rhizomes = rhizomes;
    gc.root_init = apps::StreamingBfs::initial_state();
    g = std::make_unique<StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<GraphProtocol> proto;
  std::unique_ptr<apps::StreamingBfs> bfs;
  std::unique_ptr<StreamingGraph> g;
};

TEST(Rhizomes, RootsFormARing) {
  RhizomeFixture f(4, 3);
  for (std::uint64_t vid = 0; vid < 4; ++vid) {
    const auto roots = f.g->rhizome_roots(vid);
    ASSERT_EQ(roots.size(), 3u);
    // Follow the ring: must visit all three roots and return to the start.
    rt::GlobalAddress cur = roots[0];
    std::set<rt::Word> seen;
    for (int i = 0; i < 3; ++i) {
      seen.insert(cur.pack());
      cur = f.chip->as<VertexFragment>(cur)->rhizome_next;
    }
    EXPECT_EQ(cur, roots[0]);
    EXPECT_EQ(seen.size(), 3u);
  }
}

TEST(Rhizomes, SingleRhizomeHasNoRing) {
  RhizomeFixture f(4, 1);
  for (std::uint64_t vid = 0; vid < 4; ++vid) {
    EXPECT_TRUE(
        f.chip->as<VertexFragment>(f.g->root_of(vid))->rhizome_next.is_null());
  }
}

TEST(Rhizomes, EdgesConservedAcrossRhizomes) {
  RhizomeFixture f(8, 3, /*edge_capacity=*/2);
  std::vector<StreamEdge> edges;
  std::vector<std::uint64_t> expect(8, 0);
  rt::Xoshiro256 rng(5);
  for (int i = 0; i < 200; ++i) {
    const StreamEdge e{rng.below(8), rng.below(8), 1};
    edges.push_back(e);
    ++expect[e.src];
  }
  f.g->stream_increment(edges);
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(f.g->stored_degree(v), expect[v]) << "vertex " << v;
  }
}

TEST(Rhizomes, InsertsSpreadOverRoots) {
  // A hub with 120 out-edges and 4 rhizomes: each root should ingest ~30.
  RhizomeFixture f(8, 4, /*edge_capacity=*/64);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 120; ++i) edges.push_back({0, 1 + (i % 7), 1});
  f.g->stream_increment(edges);
  for (const auto root : f.g->rhizome_roots(0)) {
    const auto* frag = f.chip->as<VertexFragment>(root);
    EXPECT_EQ(frag->inserts_seen, 30u);
  }
}

struct RhizomeBfsCase {
  std::uint32_t rhizomes;
  std::uint64_t vertices;
  std::uint64_t edges;
  std::uint64_t seed;
};

class RhizomeBfs : public ::testing::TestWithParam<RhizomeBfsCase> {};

TEST_P(RhizomeBfs, LevelsMatchOracle) {
  const auto p = GetParam();
  RhizomeFixture f(p.vertices, p.rhizomes);
  rt::Xoshiro256 rng(p.seed);
  std::vector<StreamEdge> all;
  for (std::uint64_t i = 0; i < p.edges; ++i) {
    all.push_back({rng.below(p.vertices), rng.below(p.vertices), 1});
  }
  const std::uint64_t source = rng.below(p.vertices);
  f.bfs->set_source(*f.g, source);
  base::DynamicBfs oracle(p.vertices, source);

  const std::size_t half = all.size() / 2;
  for (const auto& inc :
       {std::vector<StreamEdge>(all.begin(), all.begin() + half),
        std::vector<StreamEdge>(all.begin() + half, all.end())}) {
    f.g->stream_increment(inc);
    oracle.insert_increment(inc);
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? apps::StreamingBfs::kUnreached
                                : oracle.level_of(v);
      ASSERT_EQ(f.bfs->level_of(*f.g, v), want)
          << "vertex " << v << " rhizomes " << p.rhizomes;
    }
    // Ring synchronisation: every rhizome root agrees with the primary.
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      for (const auto root : f.g->rhizome_roots(v)) {
        ASSERT_EQ(f.chip->as<VertexFragment>(root)
                      ->app[apps::StreamingBfs::kLevelWord],
                  f.bfs->level_of(*f.g, v));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RhizomeBfs,
    ::testing::Values(RhizomeBfsCase{2, 32, 150, 1}, RhizomeBfsCase{3, 32, 150, 2},
                      RhizomeBfsCase{4, 64, 400, 3}, RhizomeBfsCase{2, 64, 400, 4},
                      RhizomeBfsCase{8, 16, 80, 5}));

TEST(Rhizomes, ComponentsAgreeAcrossRing) {
  auto chip = std::make_unique<sim::Chip>(small_chip_config());
  GraphProtocol proto(*chip);
  apps::StreamingComponents cc(proto);
  cc.install();
  GraphConfig gc;
  gc.num_vertices = 20;
  gc.rhizomes = 3;
  gc.root_init = apps::StreamingComponents::initial_state();
  StreamingGraph g(proto, gc);
  cc.seed_labels(g);

  rt::Xoshiro256 rng(9);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 30; ++i) {
    const StreamEdge e{rng.below(20), rng.below(20), 1};
    if (e.src != e.dst) edges.push_back(e);
  }
  const auto sym = wl::symmetrize(edges);
  g.stream_increment(sym);
  const auto ref = base::component_min_labels(test::ref_graph_of(20, sym));
  for (std::uint64_t v = 0; v < 20; ++v) {
    ASSERT_EQ(cc.label_of(g, v), ref[v]) << "vertex " << v;
  }
}

TEST(Rhizomes, UnsupportedAppsThrow) {
  auto chip = std::make_unique<sim::Chip>(small_chip_config());
  GraphProtocol proto(*chip);
  apps::PageRank pr(proto);
  apps::TriangleCounter tri(proto);
  apps::JaccardQuery jacc(proto);
  GraphConfig gc;
  gc.num_vertices = 4;
  gc.rhizomes = 2;
  StreamingGraph g(proto, gc);
  EXPECT_THROW(pr.seed(g), std::invalid_argument);
  EXPECT_THROW(tri.start(g), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(jacc.query(g, 0, 1)), std::invalid_argument);
}

TEST(Rhizomes, ZeroRhizomesClampedToOne) {
  auto chip = std::make_unique<sim::Chip>(small_chip_config());
  GraphProtocol proto(*chip);
  GraphConfig gc;
  gc.num_vertices = 2;
  gc.rhizomes = 0;
  StreamingGraph g(proto, gc);
  EXPECT_EQ(g.rhizome_count(), 1u);
}

}  // namespace
}  // namespace ccastream::graph
