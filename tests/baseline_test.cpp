// Baseline oracles: known-answer tests plus the incremental-equals-
// recompute property of DynamicBfs.
#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace ccastream::base {
namespace {

RefGraph path4() {
  RefGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(RefBfs, Path) {
  const auto l = bfs_levels(path4(), 0);
  EXPECT_EQ(l, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(RefBfs, UnreachableAndDirectionality) {
  const auto l = bfs_levels(path4(), 2);
  EXPECT_EQ(l[0], kUnreached);
  EXPECT_EQ(l[1], kUnreached);
  EXPECT_EQ(l[2], 0u);
  EXPECT_EQ(l[3], 1u);
}

TEST(RefSssp, PrefersLightPath) {
  RefGraph g(3);
  g.add_edge(0, 2, 10);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  const auto d = sssp_distances(g, 0);
  EXPECT_EQ(d[2], 5u);
}

TEST(RefComponents, MinLabels) {
  RefGraph g(6);
  g.add_edge(1, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 4);
  const auto l = component_min_labels(g);
  EXPECT_EQ(l, (std::vector<std::uint64_t>{0, 1, 2, 1, 2, 1}));
}

TEST(RefTriangles, K4) {
  RefGraph g(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      if (i != j) g.add_edge(i, j);
    }
  }
  EXPECT_EQ(closed_wedges(g), 12u);  // 3 * 4 triangles
}

TEST(RefJaccard, KnownValue) {
  RefGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(4, 2);
  g.add_edge(4, 3);
  g.add_edge(4, 5);
  EXPECT_DOUBLE_EQ(jaccard(g, 0, 4), 0.5);
  EXPECT_DOUBLE_EQ(jaccard(g, 1, 5), 0.0);
}

TEST(RefPageRank, SumsToVertexCountOnCycle) {
  RefGraph g(4);
  for (std::uint64_t v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  const auto pr = pagerank(g, 0.85, 1e-12);
  double sum = 0;
  for (const double r : pr) sum += r;
  EXPECT_NEAR(sum, 4.0, 1e-6);
  for (const double r : pr) EXPECT_NEAR(r, 1.0, 1e-6);
}

TEST(DynamicBfs, InsertionRepairsLevels) {
  DynamicBfs d(5, 0);
  d.insert_edge(0, 1);
  d.insert_edge(1, 2);
  EXPECT_EQ(d.level_of(2), 2u);
  d.insert_edge(0, 2);  // shortcut
  EXPECT_EQ(d.level_of(2), 1u);
  EXPECT_EQ(d.level_of(3), kUnreached);
}

TEST(DynamicBfs, EdgeIntoSourceDoesNothing) {
  DynamicBfs d(3, 0);
  d.insert_edge(1, 0);
  EXPECT_EQ(d.level_of(0), 0u);
  EXPECT_EQ(d.level_of(1), kUnreached);
}

class DynamicEqualsRecompute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicEqualsRecompute, AfterEveryIncrement) {
  rt::Xoshiro256 rng(GetParam());
  const std::uint64_t n = 80;
  DynamicBfs d(n, 0);
  for (int inc = 0; inc < 8; ++inc) {
    std::vector<StreamEdge> edges;
    for (int i = 0; i < 40; ++i) edges.push_back({rng.below(n), rng.below(n), 1});
    d.insert_increment(edges);
    ASSERT_EQ(d.levels(), d.recompute()) << "increment " << inc;
  }
  EXPECT_GT(d.vertices_resettled(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicEqualsRecompute,
                         ::testing::Values(71, 72, 73, 74, 75));

}  // namespace
}  // namespace ccastream::base
