// Baseline oracles: known-answer tests plus the incremental-equals-
// recompute property of DynamicBfs.
#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace ccastream::base {
namespace {

RefGraph path4() {
  RefGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(RefBfs, Path) {
  const auto l = bfs_levels(path4(), 0);
  EXPECT_EQ(l, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(RefBfs, UnreachableAndDirectionality) {
  const auto l = bfs_levels(path4(), 2);
  EXPECT_EQ(l[0], kUnreached);
  EXPECT_EQ(l[1], kUnreached);
  EXPECT_EQ(l[2], 0u);
  EXPECT_EQ(l[3], 1u);
}

TEST(RefSssp, PrefersLightPath) {
  RefGraph g(3);
  g.add_edge(0, 2, 10);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 3);
  const auto d = sssp_distances(g, 0);
  EXPECT_EQ(d[2], 5u);
}

TEST(RefComponents, MinLabels) {
  RefGraph g(6);
  g.add_edge(1, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 4);
  const auto l = component_min_labels(g);
  EXPECT_EQ(l, (std::vector<std::uint64_t>{0, 1, 2, 1, 2, 1}));
}

TEST(RefTriangles, K4) {
  RefGraph g(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    for (std::uint64_t j = 0; j < 4; ++j) {
      if (i != j) g.add_edge(i, j);
    }
  }
  EXPECT_EQ(closed_wedges(g), 12u);  // 3 * 4 triangles
}

TEST(RefJaccard, KnownValue) {
  RefGraph g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(4, 2);
  g.add_edge(4, 3);
  g.add_edge(4, 5);
  EXPECT_DOUBLE_EQ(jaccard(g, 0, 4), 0.5);
  EXPECT_DOUBLE_EQ(jaccard(g, 1, 5), 0.0);
}

TEST(RefPageRank, SumsToVertexCountOnCycle) {
  RefGraph g(4);
  for (std::uint64_t v = 0; v < 4; ++v) g.add_edge(v, (v + 1) % 4);
  const auto pr = pagerank(g, 0.85, 1e-12);
  double sum = 0;
  for (const double r : pr) sum += r;
  EXPECT_NEAR(sum, 4.0, 1e-6);
  for (const double r : pr) EXPECT_NEAR(r, 1.0, 1e-6);
}

TEST(DynamicBfs, InsertionRepairsLevels) {
  DynamicBfs d(5, 0);
  d.insert_edge(0, 1);
  d.insert_edge(1, 2);
  EXPECT_EQ(d.level_of(2), 2u);
  d.insert_edge(0, 2);  // shortcut
  EXPECT_EQ(d.level_of(2), 1u);
  EXPECT_EQ(d.level_of(3), kUnreached);
}

TEST(DynamicBfs, EdgeIntoSourceDoesNothing) {
  DynamicBfs d(3, 0);
  d.insert_edge(1, 0);
  EXPECT_EQ(d.level_of(0), 0u);
  EXPECT_EQ(d.level_of(1), kUnreached);
}

TEST(DynamicBfs, OutOfRangeEndpointsAreRejectedNotUndefined) {
  // Regression: insert_edge/flood_from used to index level_ with whatever
  // ids the caller supplied — an out-of-range id was a heap overrun. They
  // now reject and count.
  DynamicBfs d(5, 0);
  d.insert_edge(0, 1);
  ASSERT_EQ(d.level_of(1), 1u);

  d.insert_edge(5, 1);      // src one past the end
  d.insert_edge(1, 1'000'000);  // dst far out
  d.delete_edge(7, 0);
  EXPECT_EQ(d.edges_rejected(), 3u);
  // State is untouched by rejected ops.
  EXPECT_EQ(d.level_of(0), 0u);
  EXPECT_EQ(d.level_of(1), 1u);
  EXPECT_EQ(d.levels(), d.recompute());

  // The batch form skips bad ops and applies the rest.
  d.apply_increment(std::vector<StreamEdge>{{1, 99, 1}, {1, 2, 1}});
  EXPECT_EQ(d.edges_rejected(), 4u);
  EXPECT_EQ(d.level_of(2), 2u);
}

TEST(DynamicBfs, ResettledCountsActualLevelChangesOnly) {
  // Regression: flood_from used to bump the counter on every queue pop, so
  // vertices_resettled over-reported by every non-improving visit. It now
  // counts exactly the level assignments.
  DynamicBfs d(5, 0);
  d.insert_edge(0, 1);  // settles 1
  d.insert_edge(1, 2);  // settles 2
  EXPECT_EQ(d.vertices_resettled(), 2u);

  d.insert_edge(0, 1);  // duplicate: no level changes anywhere
  d.insert_edge(2, 1);  // back edge: 1 is already better
  EXPECT_EQ(d.vertices_resettled(), 2u);

  d.insert_edge(0, 2);  // shortcut: exactly vertex 2 improves (2 -> 1)
  EXPECT_EQ(d.vertices_resettled(), 3u);
}

TEST(DynamicBfs, DeleteEdgeRemovesAllCopiesAndRepairs) {
  DynamicBfs d(5, 0);
  d.insert_edge(0, 1);
  d.insert_edge(0, 1);  // parallel record
  d.insert_edge(1, 2);
  d.insert_edge(0, 3);
  d.insert_edge(3, 2);
  ASSERT_EQ(d.level_of(2), 2u);

  d.delete_edge(0, 1);  // both copies fall
  EXPECT_EQ(d.edges_deleted(), 2u);
  EXPECT_GT(d.vertices_invalidated(), 0u);
  EXPECT_EQ(d.level_of(1), kUnreached);
  EXPECT_EQ(d.level_of(2), 2u);  // re-settled through 3
  EXPECT_EQ(d.levels(), d.recompute());
}

TEST(DynamicBfs, DeletingTheOnlyPathUnreachesTheSubtree) {
  DynamicBfs d(4, 0);
  d.insert_edge(0, 1);
  d.insert_edge(1, 2);
  d.insert_edge(2, 3);
  d.delete_edge(0, 1);
  EXPECT_EQ(d.level_of(0), 0u);
  for (std::uint64_t v = 1; v < 4; ++v) EXPECT_EQ(d.level_of(v), kUnreached);
  EXPECT_EQ(d.levels(), d.recompute());
}

TEST(DynamicBfs, NonTreeEdgeDeletionLeavesLevelsAlone) {
  // (2, 1) goes "backwards" (level 2 -> level 1), so no shortest path uses
  // it; deleting it must not invalidate anything.
  DynamicBfs d(3, 0);
  d.insert_edge(0, 1);
  d.insert_edge(1, 2);
  d.insert_edge(2, 1);
  const auto before = d.levels();
  d.delete_edge(2, 1);
  EXPECT_EQ(d.vertices_invalidated(), 0u);
  EXPECT_EQ(d.levels(), before);
}

class DynamicEqualsRecompute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicEqualsRecompute, AfterEveryIncrement) {
  rt::Xoshiro256 rng(GetParam());
  const std::uint64_t n = 80;
  DynamicBfs d(n, 0);
  for (int inc = 0; inc < 8; ++inc) {
    std::vector<StreamEdge> edges;
    for (int i = 0; i < 40; ++i) edges.push_back({rng.below(n), rng.below(n), 1});
    d.insert_increment(edges);
    ASSERT_EQ(d.levels(), d.recompute()) << "increment " << inc;
  }
  EXPECT_GT(d.vertices_resettled(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicEqualsRecompute,
                         ::testing::Values(71, 72, 73, 74, 75));

// The same property with deletions in the mix: after every increment of
// randomly interleaved inserts and deletes, the incrementally maintained
// levels equal a from-scratch BFS of the surviving graph.
class DynamicDeletionsEqualRecompute
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicDeletionsEqualRecompute, AfterEveryIncrement) {
  rt::Xoshiro256 rng(GetParam());
  const std::uint64_t n = 60;
  DynamicBfs d(n, 0);
  std::vector<StreamEdge> live;
  for (int inc = 0; inc < 10; ++inc) {
    std::vector<StreamEdge> ops;
    for (int i = 0; i < 30; ++i) {
      if (!live.empty() && rng.below(3) == 0) {
        const auto& victim = live[rng.below(live.size())];
        ops.push_back(make_delete_edge(victim.src, victim.dst));
        std::erase_if(live, [&](const StreamEdge& e) {
          return e.src == victim.src && e.dst == victim.dst;
        });
      } else {
        const StreamEdge e{rng.below(n), rng.below(n), 1};
        ops.push_back(e);
        live.push_back(e);
      }
    }
    d.apply_increment(ops);
    ASSERT_EQ(d.levels(), d.recompute()) << "increment " << inc;
  }
  EXPECT_GT(d.edges_deleted(), 0u);
  EXPECT_GT(d.vertices_invalidated(), 0u);
}

// Seeds picked so every one produces both deletions and at least one
// invalidation cascade (84 deleted only non-tree edges and is skipped).
INSTANTIATE_TEST_SUITE_P(Seeds, DynamicDeletionsEqualRecompute,
                         ::testing::Values(81, 82, 83, 85, 86));

}  // namespace
}  // namespace ccastream::base
