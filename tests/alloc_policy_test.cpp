// Unit + property tests: ghost allocation policies (paper Figure 5).
#include <gtest/gtest.h>

#include <set>

#include "runtime/alloc_policy.hpp"
#include "runtime/rng.hpp"

namespace ccastream::rt {
namespace {

TEST(AllocPolicy, Names) {
  EXPECT_EQ(to_string(AllocPolicyKind::kVicinity), "vicinity");
  EXPECT_EQ(to_string(AllocPolicyKind::kRandom), "random");
  EXPECT_EQ(to_string(AllocPolicyKind::kRoundRobin), "round-robin");
  EXPECT_EQ(to_string(AllocPolicyKind::kLocal), "local");
}

TEST(AllocPolicy, FactoryProducesRequestedKind) {
  for (const auto kind :
       {AllocPolicyKind::kVicinity, AllocPolicyKind::kRandom,
        AllocPolicyKind::kRoundRobin, AllocPolicyKind::kLocal}) {
    EXPECT_EQ(make_alloc_policy(kind)->kind(), kind);
  }
}

// Property sweep: every vicinity choice is within the radius, never the
// origin, and the whole ring is eventually covered.
struct VicinityCase {
  std::uint32_t mesh;
  std::uint32_t radius;
  std::uint32_t origin;
};

class VicinityProperty : public ::testing::TestWithParam<VicinityCase> {};

TEST_P(VicinityProperty, ChoicesWithinRadiusAndCoverRing) {
  const auto [dim, radius, origin] = GetParam();
  const MeshGeometry mesh(dim, dim);
  VicinityAllocator policy(radius);
  Xoshiro256 rng(origin * 7919 + radius);

  std::set<std::uint32_t> seen;
  for (int i = 0; i < 4000; ++i) {
    const std::uint32_t cc = policy.choose(origin, mesh, rng);
    ASSERT_LT(cc, mesh.cell_count());
    ASSERT_NE(cc, origin);
    ASSERT_LE(mesh.hops(origin, cc), radius)
        << "ghost placed " << mesh.hops(origin, cc) << " hops away";
    seen.insert(cc);
  }
  // Count the true candidate set and require full coverage.
  std::uint32_t candidates = 0;
  for (std::uint32_t cc = 0; cc < mesh.cell_count(); ++cc) {
    const auto h = mesh.hops(origin, cc);
    if (h >= 1 && h <= radius) ++candidates;
  }
  EXPECT_EQ(seen.size(), candidates);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VicinityProperty,
    ::testing::Values(VicinityCase{8, 2, 0},        // corner
                      VicinityCase{8, 2, 27},       // interior
                      VicinityCase{8, 1, 7},        // corner, radius 1
                      VicinityCase{8, 3, 36},
                      VicinityCase{4, 2, 5},
                      VicinityCase{16, 2, 120},
                      VicinityCase{3, 2, 4},        // radius covers most of mesh
                      VicinityCase{32, 2, 32 * 16 + 16}));

TEST(VicinityAllocator, DegenerateOneByOneMeshFallsBackToOrigin) {
  const MeshGeometry mesh(1, 1);
  VicinityAllocator policy(2);
  Xoshiro256 rng(1);
  EXPECT_EQ(policy.choose(0, mesh, rng), 0u);
}

TEST(RandomAllocator, UniformOverChip) {
  const MeshGeometry mesh(8, 8);
  RandomAllocator policy;
  Xoshiro256 rng(3);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const auto cc = policy.choose(0, mesh, rng);
    ASSERT_LT(cc, 64u);
    seen.insert(cc);
  }
  EXPECT_EQ(seen.size(), 64u);  // every cell eventually chosen
}

TEST(RoundRobinAllocator, CyclesThroughAllCellsFromOrigin) {
  // Per-origin rotation, anchored at the origin cell: origin 5 walks
  // 5, 6, ..., 15, 0, ..., 4 and wraps. (Keyed per cell — not one global
  // call-order cursor — so the parallel engine's scheduling cannot perturb
  // the sequence; anchoring spreads concurrent origins over the chip.)
  const MeshGeometry mesh(4, 4);
  RoundRobinAllocator policy;
  Xoshiro256 rng(3);
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < 16; ++i) {
      EXPECT_EQ(policy.choose(5, mesh, rng), (5 + i) % 16);
    }
  }
}

TEST(RoundRobinAllocator, OriginsRotateIndependently) {
  const MeshGeometry mesh(4, 4);
  RoundRobinAllocator policy;
  policy.prepare(mesh);
  Xoshiro256 rng(3);
  // Interleaved calls from two origins never disturb each other's walk,
  // and distinct origins start at distinct cells.
  EXPECT_EQ(policy.choose(3, mesh, rng), 3u);
  EXPECT_EQ(policy.choose(9, mesh, rng), 9u);
  EXPECT_EQ(policy.choose(3, mesh, rng), 4u);
  EXPECT_EQ(policy.choose(9, mesh, rng), 10u);
}

TEST(LocalAllocator, AlwaysOrigin) {
  const MeshGeometry mesh(4, 4);
  LocalAllocator policy;
  Xoshiro256 rng(3);
  for (std::uint32_t origin = 0; origin < 16; ++origin) {
    EXPECT_EQ(policy.choose(origin, mesh, rng), origin);
  }
}

}  // namespace
}  // namespace ccastream::rt
