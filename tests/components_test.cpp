// Streaming connected components vs the union-find oracle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct CcFixture {
  explicit CcFixture(std::uint64_t nverts, sim::ChipConfig cfg = small_chip_config()) {
    chip = std::make_unique<sim::Chip>(cfg);
    proto = std::make_unique<graph::GraphProtocol>(*chip);
    cc = std::make_unique<StreamingComponents>(*proto);
    cc->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = StreamingComponents::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
    cc->seed_labels(*g);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<StreamingComponents> cc;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(StreamingComponents, IsolatedVerticesKeepOwnLabel) {
  CcFixture f(5);
  f.g->run();
  for (std::uint64_t v = 0; v < 5; ++v) EXPECT_EQ(f.cc->label_of(*f.g, v), v);
}

TEST(StreamingComponents, TwoComponentsMerge) {
  CcFixture f(6);
  // {0,1,2} and {3,4,5} as undirected chains.
  f.g->stream_increment(wl::symmetrize(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {4, 5, 1}}));
  EXPECT_EQ(f.cc->label_of(*f.g, 2), 0u);
  EXPECT_EQ(f.cc->label_of(*f.g, 5), 3u);
  // A bridge merges them: all labels collapse to 0 incrementally.
  f.g->stream_increment(wl::symmetrize(std::vector<StreamEdge>{{2, 3, 1}}));
  for (std::uint64_t v = 0; v < 6; ++v) EXPECT_EQ(f.cc->label_of(*f.g, v), 0u);
}

class CcEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CcEquivalence, MatchesUnionFind) {
  const std::uint64_t seed = GetParam();
  const std::uint64_t n = 64;
  CcFixture f(n);
  rt::Xoshiro256 rng(seed);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 70; ++i) {  // sparse: many components
    const StreamEdge e{rng.below(n), rng.below(n), 1};
    if (e.src != e.dst) edges.push_back(e);
  }
  const auto sym = wl::symmetrize(edges);
  f.g->stream_increment(sym);
  const auto ref = base::component_min_labels(test::ref_graph_of(n, sym));
  for (std::uint64_t v = 0; v < n; ++v) {
    ASSERT_EQ(f.cc->label_of(*f.g, v), ref[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CcEquivalence,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

}  // namespace
}  // namespace ccastream::apps
