// Checkpoint/restore: a restored graph is observationally identical and
// continues streaming exactly like the uninterrupted original.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "test_util.hpp"

namespace ccastream::graph {
namespace {

using test::small_chip_config;

struct Rig {  // NOLINT(readability-identifier-naming)
  explicit Rig(std::uint64_t nverts, std::uint32_t rhizomes = 1,
                 std::uint32_t edge_capacity = 3) {
    chip = std::make_unique<sim::Chip>(small_chip_config());
    RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<GraphProtocol>(*chip, rc);
    bfs = std::make_unique<apps::StreamingBfs>(*proto);
    bfs->install();
    GraphConfig gc;
    gc.num_vertices = nverts;
    gc.rhizomes = rhizomes;
    gc.root_init = apps::StreamingBfs::initial_state();
    g = std::make_unique<StreamingGraph>(*proto, gc);
  }
  /// Fresh chip + protocol for the restore side.
  Rig clone_empty() const {
    Rig s;
    s.chip = std::make_unique<sim::Chip>(small_chip_config());
    s.proto = std::make_unique<GraphProtocol>(*s.chip, proto->rpvo_config());
    s.bfs = std::make_unique<apps::StreamingBfs>(*s.proto);
    s.bfs->install();
    return s;
  }
  Rig() = default;
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<GraphProtocol> proto;
  std::unique_ptr<apps::StreamingBfs> bfs;
  std::unique_ptr<StreamingGraph> g;
};

std::vector<StreamEdge> random_edges(std::uint64_t n, int count, std::uint64_t seed) {
  rt::Xoshiro256 rng(seed);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < count; ++i) {
    edges.push_back({rng.below(n), rng.below(n),
                     static_cast<std::uint32_t>(1 + rng.below(4))});
  }
  return edges;
}

TEST(Snapshot, RoundTripPreservesStructureAndState) {
  Rig a(40);
  a.bfs->set_source(*a.g, 0);
  a.g->stream_increment(random_edges(40, 300, 11));

  std::stringstream snap;
  a.g->save_snapshot(snap);

  Rig b = a.clone_empty();
  b.g = StreamingGraph::load_snapshot(*b.proto, snap);

  for (std::uint64_t v = 0; v < 40; ++v) {
    EXPECT_EQ(b.g->stored_degree(v), a.g->stored_degree(v)) << "vertex " << v;
    EXPECT_EQ(b.g->neighbors(v), a.g->neighbors(v)) << "vertex " << v;
    EXPECT_EQ(b.bfs->level_of(*b.g, v), a.bfs->level_of(*a.g, v)) << "vertex " << v;
    EXPECT_EQ(b.g->fragments_of(v), a.g->fragments_of(v)) << "vertex " << v;
  }
}

TEST(Snapshot, StreamingContinuesIdentically) {
  // Stream half, checkpoint, restore elsewhere, stream the other half on
  // both: final levels and degrees must agree everywhere.
  const std::uint64_t n = 60;
  const auto all = random_edges(n, 500, 12);
  const std::vector<StreamEdge> first(all.begin(), all.begin() + 250);
  const std::vector<StreamEdge> second(all.begin() + 250, all.end());

  Rig a(n);
  a.bfs->set_source(*a.g, 3);
  a.g->stream_increment(first);

  std::stringstream snap;
  a.g->save_snapshot(snap);
  Rig b = a.clone_empty();
  b.g = StreamingGraph::load_snapshot(*b.proto, snap);

  a.g->stream_increment(second);
  b.g->stream_increment(second);

  const auto ref = base::bfs_levels(test::ref_graph_of(n, all), 3);
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_EQ(a.g->stored_degree(v), b.g->stored_degree(v));
    const rt::Word want = ref[v] == base::kUnreached
                              ? apps::StreamingBfs::kUnreached
                              : ref[v];
    EXPECT_EQ(a.bfs->level_of(*a.g, v), want);
    EXPECT_EQ(b.bfs->level_of(*b.g, v), want);
  }
}

TEST(Snapshot, PreservesRhizomes) {
  Rig a(16, /*rhizomes=*/3);
  a.bfs->set_source(*a.g, 0);
  a.g->stream_increment(random_edges(16, 150, 13));

  std::stringstream snap;
  a.g->save_snapshot(snap);
  Rig b = a.clone_empty();
  b.g = StreamingGraph::load_snapshot(*b.proto, snap);

  EXPECT_EQ(b.g->rhizome_count(), 3u);
  for (std::uint64_t v = 0; v < 16; ++v) {
    const auto ra = a.g->rhizome_roots(v);
    const auto rb = b.g->rhizome_roots(v);
    ASSERT_EQ(std::vector(ra.begin(), ra.end()), std::vector(rb.begin(), rb.end()));
  }
}

TEST(Snapshot, RefusesNonQuiescentChip) {
  Rig a(8);
  a.g->enqueue_edge({0, 1, 1});  // work queued, not run
  std::stringstream snap;
  EXPECT_THROW(a.g->save_snapshot(snap), std::logic_error);
}

TEST(Snapshot, RejectsGeometryMismatch) {
  Rig a(8);
  a.g->stream_increment(random_edges(8, 20, 14));
  std::stringstream snap;
  a.g->save_snapshot(snap);

  sim::Chip other(test::small_chip_config(4));  // different mesh
  GraphProtocol proto(other, a.proto->rpvo_config());
  EXPECT_THROW(StreamingGraph::load_snapshot(proto, snap), std::runtime_error);
}

TEST(Snapshot, RejectsRpvoMismatch) {
  Rig a(8, 1, /*edge_capacity=*/3);
  a.g->stream_increment(random_edges(8, 20, 15));
  std::stringstream snap;
  a.g->save_snapshot(snap);

  sim::Chip other(small_chip_config());
  RpvoConfig rc;
  rc.edge_capacity = 5;  // mismatch
  GraphProtocol proto(other, rc);
  EXPECT_THROW(StreamingGraph::load_snapshot(proto, snap), std::runtime_error);
}

TEST(Snapshot, RejectsGarbage) {
  sim::Chip chip(small_chip_config());
  GraphProtocol proto(chip);
  std::stringstream junk("definitely not a snapshot");
  EXPECT_THROW(StreamingGraph::load_snapshot(proto, junk), std::runtime_error);
}

TEST(Snapshot, RestoreIntoUsedChipFails) {
  Rig a(8);
  a.g->stream_increment(random_edges(8, 30, 16));
  std::stringstream snap;
  a.g->save_snapshot(snap);

  // The destination chip already carries fragments: placement diverges.
  Rig b(8);
  b.g->stream_increment(random_edges(8, 10, 17));
  EXPECT_THROW(StreamingGraph::load_snapshot(*b.proto, snap),
               std::runtime_error);
}

}  // namespace
}  // namespace ccastream::graph
