// Edge deletion, end to end: the delete-edge protocol on RPVO chains
// (delete-all-matches, ghost forwarding, deferred parking), the ingest
// hardening around it (endpoint validation, the rhizome restriction), the
// four-phase deletion increment driving the monotone-raise repair
// framework for BFS/SSSP/components (invalidation + re-settlement pinned
// against the dynamic oracles), the fail-loud contract for apps without a
// deletion story (PageRank, triangles, hook-chaining apps), and the v2
// snapshot format that persists the deletes_seen counter.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace ccastream::graph {
namespace {

using test::small_chip_config;

struct Fixture {
  explicit Fixture(std::uint32_t edge_capacity = 4, std::uint64_t nverts = 8,
                   sim::ChipConfig cfg = small_chip_config(),
                   std::uint32_t rhizomes = 1) {
    chip = std::make_unique<sim::Chip>(cfg);
    RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<GraphProtocol>(*chip, rc);
    GraphConfig gc;
    gc.num_vertices = nverts;
    gc.rhizomes = rhizomes;
    g = std::make_unique<StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<GraphProtocol> proto;
  std::unique_ptr<StreamingGraph> g;
};

TEST(Deletion, RemovesStoredRecord) {
  Fixture f;
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 5}, {0, 2, 7}});
  ASSERT_EQ(f.g->stored_degree(0), 2u);

  const auto r = f.g->stream_increment(
      std::vector<StreamEdge>{make_delete_edge(0, 1)});
  EXPECT_EQ(r.edges, 1u);
  EXPECT_EQ(r.deletes, 1u);
  EXPECT_EQ(f.g->stored_degree(0), 1u);
  const auto nbrs = f.g->neighbors(0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].first, 2u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 1u);
  EXPECT_EQ(f.proto->stats().deletes_unmatched, 0u);

  // The root observed one delete, mirroring inserts_seen.
  const auto* root = f.chip->as<VertexFragment>(f.g->root_of(0));
  EXPECT_EQ(root->inserts_seen, 2u);
  EXPECT_EQ(root->deletes_seen, 1u);
}

TEST(Deletion, RemovesEveryMatchingRecord) {
  // Multigraph semantics on the way in, delete-all-matches on the way out
  // (see graph/stream_edge.hpp): one delete op clears all three (2, 5)
  // records and leaves the self-edge alone.
  Fixture f;
  f.g->stream_increment(
      std::vector<StreamEdge>{{2, 5, 1}, {2, 5, 2}, {2, 2, 1}, {2, 5, 3}});
  ASSERT_EQ(f.g->stored_degree(2), 4u);
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(2, 5)});
  EXPECT_EQ(f.g->stored_degree(2), 1u);
  EXPECT_EQ(f.g->neighbors(2)[0].first, 2u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 3u);
}

TEST(Deletion, ForwardsDownGhostChains) {
  // Capacity-1 fragments scatter the duplicates across a long chain; the
  // delete must walk every link and clear them all.
  Fixture f(/*edge_capacity=*/1);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 10; ++i) edges.push_back({0, 1 + (i % 2), 1});
  f.g->stream_increment(edges);
  ASSERT_EQ(f.g->stored_degree(0), 10u);
  ASSERT_GE(f.g->fragments_of(0).size(), 10u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)});
  EXPECT_EQ(f.g->stored_degree(0), 5u);  // only the (0, 2) records remain
  for (const auto& [dst, w] : f.g->neighbors(0)) EXPECT_EQ(dst, 2u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 5u);
  EXPECT_GT(f.proto->stats().deletes_forwarded, 0u);
}

TEST(Deletion, UnmatchedDeleteIsCountedNotFatal) {
  Fixture f;
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}});
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 7)});
  EXPECT_TRUE(f.chip->quiescent());
  EXPECT_EQ(f.g->stored_degree(0), 1u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 0u);
  EXPECT_EQ(f.proto->stats().deletes_unmatched, 1u);
  EXPECT_EQ(f.proto->stats().bad_targets, 0u);
}

TEST(Deletion, OnEdgeDeletedHookSeesEveryRemovedRecord) {
  Fixture f;
  std::uint64_t hook_calls = 0;
  AppHooks hooks;
  hooks.on_edge_deleted = [&](rt::Context&, VertexFragment&,
                              const EdgeRecord&) { ++hook_calls; };
  f.proto->set_hooks(hooks);
  f.g->stream_increment(
      std::vector<StreamEdge>{{3, 4, 1}, {3, 4, 2}, {3, 5, 1}});
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(3, 4)});
  EXPECT_EQ(hook_calls, 2u);
}

TEST(Deletion, StreamIncrementRejectsOutOfRangeEndpoints) {
  Fixture f(4, /*nverts=*/8);
  EXPECT_THROW(f.g->stream_increment(std::vector<StreamEdge>{{8, 0, 1}}),
               std::out_of_range);
  EXPECT_THROW(f.g->stream_increment(std::vector<StreamEdge>{{0, 99, 1}}),
               std::out_of_range);
  EXPECT_THROW(
      f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 8)}),
      std::out_of_range);
  // Nothing was enqueued by the rejected batches.
  EXPECT_EQ(f.g->stored_degree(0), 0u);
  EXPECT_EQ(f.proto->stats().edges_inserted, 0u);
}

TEST(Deletion, DeletesRequireSingleRhizome) {
  // Streamed edges round-robin their destination address across rhizome
  // roots, so a delete aimed at one ring member cannot see records parked
  // on the others; the façade refuses rather than silently missing them.
  Fixture f(4, 8, small_chip_config(), /*rhizomes=*/2);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}});
  EXPECT_THROW(
      f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)}),
      std::runtime_error);
}

TEST(Deletion, RhizomeConflictIsStructuredAndActionable) {
  // The precondition surfaces as the typed DeletionRhizomeError (still a
  // std::runtime_error for generic handlers), thrown before anything is
  // enqueued, with a message that names both knobs involved.
  Fixture f(4, 8, small_chip_config(), /*rhizomes=*/3);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}});
  const std::uint64_t inserted = f.proto->stats().edges_inserted;
  try {
    f.g->stream_increment(std::vector<StreamEdge>{
        make_insert_edge(1, 2), make_delete_edge(0, 1)});
    FAIL() << "deleting increment with rhizomes > 1 must throw";
  } catch (const DeletionRhizomeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rhizomes == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("--window"), std::string::npos) << what;
    EXPECT_NE(what.find("--rhizomes 1"), std::string::npos) << what;
  }
  // Upfront validation: the batch's insert was not half-streamed.
  EXPECT_EQ(f.proto->stats().edges_inserted, inserted);
}

TEST(Deletion, SnapshotV2RoundTripsDeletesSeen) {
  const auto cfg = small_chip_config();
  Fixture f(4, 8, cfg);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {0, 2, 1}, {1, 2, 1}});
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)});

  std::stringstream snap;
  f.g->save_snapshot(snap);
  EXPECT_NE(snap.str().find("ccastream-snapshot v2"), std::string::npos);

  Fixture fresh(4, 8, cfg);
  fresh.chip = std::make_unique<sim::Chip>(cfg);
  RpvoConfig rc;
  rc.edge_capacity = 4;
  fresh.proto = std::make_unique<GraphProtocol>(*fresh.chip, rc);
  auto restored = StreamingGraph::load_snapshot(*fresh.proto, snap);
  EXPECT_EQ(restored->stored_degree(0), 1u);
  const auto* root = fresh.chip->as<VertexFragment>(restored->root_of(0));
  EXPECT_EQ(root->deletes_seen, 1u);
  EXPECT_EQ(root->inserts_seen, 2u);
}

TEST(Deletion, LegacyV1SnapshotLoadsWithZeroDeletesSeen) {
  const auto cfg = small_chip_config();
  Fixture f(4, 8, cfg);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}});

  std::stringstream snap;
  f.g->save_snapshot(snap);
  // Re-create the pre-deletion format: v1 header, no deletes_seen column
  // on the frag lines (it is the last field in v2).
  std::istringstream v2(snap.str());
  std::ostringstream v1;
  std::string line;
  while (std::getline(v2, line)) {
    if (line.rfind("ccastream-snapshot", 0) == 0) {
      line = "ccastream-snapshot v1";
    } else if (line.rfind("frag ", 0) == 0) {
      line = line.substr(0, line.rfind(' '));
    }
    v1 << line << '\n';
  }

  Fixture fresh(4, 8, cfg);
  fresh.chip = std::make_unique<sim::Chip>(cfg);
  RpvoConfig rc;
  rc.edge_capacity = 4;
  fresh.proto = std::make_unique<GraphProtocol>(*fresh.chip, rc);
  std::istringstream in(v1.str());
  auto restored = StreamingGraph::load_snapshot(*fresh.proto, in);
  EXPECT_EQ(restored->stored_degree(0), 1u);
  const auto* root = fresh.chip->as<VertexFragment>(restored->root_of(0));
  EXPECT_EQ(root->inserts_seen, 1u);
  EXPECT_EQ(root->deletes_seen, 0u);  // the v1 world never counted them
}

TEST(Deletion, DeleteThenReinsertInOneIncrementNetsOneRecord) {
  // Sub-phase order inside an increment is deletes first, then inserts —
  // on the chip, the oracle, and RefGraph alike. A same-pair delete +
  // insert therefore nets exactly one stored record.
  Fixture f;
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {0, 1, 2}});
  ASSERT_EQ(f.g->stored_degree(0), 2u);
  f.g->stream_increment(
      std::vector<StreamEdge>{make_delete_edge(0, 1), make_insert_edge(0, 1, 9)});
  EXPECT_EQ(f.g->stored_degree(0), 1u);
  EXPECT_EQ(f.g->neighbors(0)[0].second, 9u);
}

}  // namespace
}  // namespace ccastream::graph

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct BfsFixture {
  explicit BfsFixture(std::uint64_t nverts,
                      sim::ChipConfig cfg = small_chip_config(),
                      graph::RpvoConfig rc = {}) {
    chip = std::make_unique<sim::Chip>(cfg);
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    bfs = std::make_unique<StreamingBfs>(*proto);
    bfs->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = StreamingBfs::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }

  void expect_matches_oracle(const base::DynamicBfs& oracle,
                             const char* when) {
    for (std::uint64_t v = 0; v < g->num_vertices(); ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? StreamingBfs::kUnreached
                                : oracle.level_of(v);
      ASSERT_EQ(bfs->level_of(*g, v), want) << when << ", vertex " << v;
    }
  }

  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<StreamingBfs> bfs;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(BfsDeletion, TreeEdgeDeletionRaisesLevelsThroughAlternatePath) {
  // 0 -> 3 directly (level 1) and 0 -> 1 -> 2 -> 3 the long way. Deleting
  // the shortcut must raise 3 to its alternate-path level, not orphan it.
  BfsFixture f(4);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 1}});
  ASSERT_EQ(f.bfs->level_of(*f.g, 3), 1u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 3)});
  EXPECT_EQ(f.bfs->level_of(*f.g, 3), 3u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), 1u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), 2u);
}

TEST(BfsDeletion, DeletionCanDisconnect) {
  BfsFixture f(4);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  ASSERT_EQ(f.bfs->level_of(*f.g, 3), 3u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(1, 2)});
  EXPECT_EQ(f.bfs->level_of(*f.g, 0), 0u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), 1u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), StreamingBfs::kUnreached);
  EXPECT_EQ(f.bfs->level_of(*f.g, 3), StreamingBfs::kUnreached);
}

TEST(BfsDeletion, DuplicateEdgesKeepVertexReachable) {
  // Two parallel (0, 1) records: deleting the pair removes both (delete-
  // all-matches), so reachability through them must go in one step.
  BfsFixture f(3);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {0, 1, 2}, {1, 2, 1}});
  ASSERT_EQ(f.bfs->level_of(*f.g, 2), 2u);
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)});
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), StreamingBfs::kUnreached);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), StreamingBfs::kUnreached);
}

TEST(BfsDeletion, MixedIncrementMatchesOracle) {
  // Deletes and inserts in one increment, including a delete + re-insert
  // of the same pair: both the chip and the oracle apply deletes first.
  BfsFixture f(6);
  f.bfs->set_source(*f.g, 0);
  base::DynamicBfs oracle(6, 0);
  const std::vector<StreamEdge> inc1{{0, 1, 1}, {1, 2, 1}, {2, 3, 1},
                                     {3, 4, 1}, {0, 5, 1}};
  f.g->stream_increment(inc1);
  oracle.apply_increment(inc1);
  f.expect_matches_oracle(oracle, "after insert increment");

  const std::vector<StreamEdge> inc2{make_delete_edge(1, 2),
                                     make_insert_edge(5, 2, 1),
                                     make_delete_edge(0, 5),
                                     make_insert_edge(0, 5, 1)};
  f.g->stream_increment(inc2);
  oracle.apply_increment(inc2);
  f.expect_matches_oracle(oracle, "after mixed increment");
  ASSERT_EQ(oracle.levels(), oracle.recompute());
}

// Property sweep: random interleavings of inserts and deletes, streamed in
// increments, across RPVO capacities and seeds — chip levels equal the
// deletion oracle's after every increment, and the oracle equals its own
// from-scratch recompute.
struct DeletionCase {
  std::uint64_t vertices;
  std::uint32_t edge_capacity;
  std::uint64_t seed;
};

class BfsDeletionEquivalence
    : public ::testing::TestWithParam<DeletionCase> {};

TEST_P(BfsDeletionEquivalence, MatchesOracleAfterEveryIncrement) {
  const auto p = GetParam();
  auto cfg = small_chip_config();
  cfg.seed = p.seed;
  graph::RpvoConfig rc;
  rc.edge_capacity = p.edge_capacity;
  BfsFixture f(p.vertices, cfg, rc);

  rt::Xoshiro256 rng(p.seed);
  const std::uint64_t source = rng.below(p.vertices);
  f.bfs->set_source(*f.g, source);
  base::DynamicBfs oracle(p.vertices, source);

  std::vector<StreamEdge> live;  // pairs believed present, for deletions
  for (int inc = 0; inc < 6; ++inc) {
    std::vector<StreamEdge> ops;
    for (int i = 0; i < 24; ++i) {
      const bool del = !live.empty() && rng.below(4) == 0;
      if (del) {
        const auto& victim = live[rng.below(live.size())];
        ops.push_back(make_delete_edge(victim.src, victim.dst));
        std::erase_if(live, [&](const StreamEdge& e) {
          return e.src == victim.src && e.dst == victim.dst;
        });
      } else {
        const StreamEdge e{rng.below(p.vertices), rng.below(p.vertices), 1};
        ops.push_back(e);
        live.push_back(e);
      }
    }
    f.g->stream_increment(ops);
    oracle.apply_increment(ops);
    ASSERT_TRUE(f.chip->quiescent());
    ASSERT_EQ(oracle.levels(), oracle.recompute())
        << "oracle self-check, seed " << p.seed << " increment " << inc;
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? StreamingBfs::kUnreached
                                : oracle.level_of(v);
      ASSERT_EQ(f.bfs->level_of(*f.g, v), want)
          << "vertex " << v << " seed " << p.seed << " increment " << inc;
    }
  }
  EXPECT_GT(oracle.edges_deleted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsDeletionEquivalence,
    ::testing::Values(DeletionCase{16, 4, 101}, DeletionCase{24, 2, 102},
                      DeletionCase{32, 1, 103}, DeletionCase{32, 8, 104},
                      DeletionCase{48, 4, 105}, DeletionCase{20, 3, 106}));

TEST(BfsDeletion, SlidingWindowScheduleMatchesOracles) {
  // The tentpole integration: an SBM arrival stream windowed with drain,
  // streamed increment by increment. The chip must track the deletion
  // oracle throughout and end on the all-unreached empty graph.
  BfsFixture f(64);
  const auto arrivals =
      wl::make_graphchallenge_like(64, 400, wl::SamplingKind::kEdge, 5, 99);
  const auto sched = wl::apply_sliding_window(arrivals, /*window=*/2,
                                              /*drain=*/true);
  ASSERT_EQ(sched.increments.size(), arrivals.increments.size() + 2);
  f.bfs->set_source(*f.g, 0);
  base::DynamicBfs oracle(64, 0);
  for (const auto& inc : sched.increments) {
    f.g->stream_increment(inc);
    oracle.apply_increment(inc);
    f.expect_matches_oracle(oracle, "windowed increment");
  }
  // Drained: every record deleted, only the source still settled.
  EXPECT_TRUE(wl::live_edges(sched).empty());
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(f.g->stored_degree(v), 0u) << "vertex " << v;
    EXPECT_EQ(f.bfs->level_of(*f.g, v),
              v == 0 ? rt::Word{0} : StreamingBfs::kUnreached);
  }
}

// ---------------------------------------------------------------------------
// SSSP deletion repair (distance policy of the monotone-raise framework)
// ---------------------------------------------------------------------------

struct SsspFixture {
  explicit SsspFixture(std::uint64_t nverts,
                       sim::ChipConfig cfg = small_chip_config(),
                       graph::RpvoConfig rc = {}) {
    chip = std::make_unique<sim::Chip>(cfg);
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    sssp = std::make_unique<StreamingSssp>(*proto);
    sssp->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = StreamingSssp::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }

  void expect_matches_oracle(const base::DynamicSssp& oracle,
                             const char* when) {
    for (std::uint64_t v = 0; v < g->num_vertices(); ++v) {
      const rt::Word want = oracle.distance_of(v) == base::kUnreached
                                ? StreamingSssp::kUnreached
                                : oracle.distance_of(v);
      ASSERT_EQ(sssp->distance_of(*g, v), want) << when << ", vertex " << v;
    }
  }

  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<StreamingSssp> sssp;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(SsspDeletion, TreeArcDeletionRaisesDistanceThroughAlternatePath) {
  // 0 -> 3 with weight 2 (the shortest path) and 0 -> 1 -> 2 -> 3 at total
  // weight 4. Deleting the shortcut must raise 3 to the alternate cost.
  SsspFixture f(4);
  f.sssp->set_source(*f.g, 0);
  f.g->stream_increment(std::vector<StreamEdge>{
      {0, 1, 1}, {1, 2, 2}, {2, 3, 1}, {0, 3, 2}});
  ASSERT_EQ(f.sssp->distance_of(*f.g, 3), 2u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 3)});
  EXPECT_EQ(f.sssp->distance_of(*f.g, 3), 4u);
  EXPECT_EQ(f.sssp->distance_of(*f.g, 1), 1u);
  EXPECT_EQ(f.sssp->distance_of(*f.g, 2), 3u);
}

TEST(SsspDeletion, NonTreeArcDeletionLeavesDistancesAlone) {
  // The conservative host seed (dist(dst) > dist(src)) fires for the
  // deleted heavy arc even though it carried nothing; resettle must
  // restore the exact distances it cleared.
  SsspFixture f(3);
  f.sssp->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {0, 2, 7}});
  ASSERT_EQ(f.sssp->distance_of(*f.g, 2), 2u);
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 2)});
  EXPECT_EQ(f.sssp->distance_of(*f.g, 1), 1u);
  EXPECT_EQ(f.sssp->distance_of(*f.g, 2), 2u);
}

TEST(SsspDeletion, DeletionCanDisconnect) {
  SsspFixture f(4);
  f.sssp->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 3}, {1, 2, 2}, {2, 3, 4}});
  ASSERT_EQ(f.sssp->distance_of(*f.g, 3), 9u);
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(1, 2)});
  EXPECT_EQ(f.sssp->distance_of(*f.g, 1), 3u);
  EXPECT_EQ(f.sssp->distance_of(*f.g, 2), StreamingSssp::kUnreached);
  EXPECT_EQ(f.sssp->distance_of(*f.g, 3), StreamingSssp::kUnreached);
}

class SsspDeletionEquivalence
    : public ::testing::TestWithParam<DeletionCase> {};

TEST_P(SsspDeletionEquivalence, MatchesOracleAfterEveryIncrement) {
  const auto p = GetParam();
  auto cfg = small_chip_config();
  cfg.seed = p.seed;
  graph::RpvoConfig rc;
  rc.edge_capacity = p.edge_capacity;
  SsspFixture f(p.vertices, cfg, rc);

  rt::Xoshiro256 rng(p.seed);
  const std::uint64_t source = rng.below(p.vertices);
  f.sssp->set_source(*f.g, source);
  base::DynamicSssp oracle(p.vertices, source);

  std::vector<StreamEdge> live;
  for (int inc = 0; inc < 6; ++inc) {
    std::vector<StreamEdge> ops;
    for (int i = 0; i < 24; ++i) {
      const bool del = !live.empty() && rng.below(4) == 0;
      if (del) {
        const auto& victim = live[rng.below(live.size())];
        ops.push_back(make_delete_edge(victim.src, victim.dst));
        std::erase_if(live, [&](const StreamEdge& e) {
          return e.src == victim.src && e.dst == victim.dst;
        });
      } else {
        // Weighted arcs, 1..4 — parallel records of one pair may carry
        // different weights, and delete-all-matches clears them together.
        const StreamEdge e{rng.below(p.vertices), rng.below(p.vertices),
                           static_cast<std::uint32_t>(1 + rng.below(4))};
        ops.push_back(e);
        live.push_back(e);
      }
    }
    f.g->stream_increment(ops);
    oracle.apply_increment(ops);
    ASSERT_TRUE(f.chip->quiescent());
    ASSERT_EQ(oracle.distances(), oracle.recompute())
        << "oracle self-check, seed " << p.seed << " increment " << inc;
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      const rt::Word want = oracle.distance_of(v) == base::kUnreached
                                ? StreamingSssp::kUnreached
                                : oracle.distance_of(v);
      ASSERT_EQ(f.sssp->distance_of(*f.g, v), want)
          << "vertex " << v << " seed " << p.seed << " increment " << inc;
    }
  }
  EXPECT_GT(oracle.edges_deleted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspDeletionEquivalence,
    ::testing::Values(DeletionCase{16, 4, 201}, DeletionCase{24, 2, 202},
                      DeletionCase{32, 1, 203}, DeletionCase{32, 8, 204},
                      DeletionCase{48, 4, 205}, DeletionCase{20, 3, 206}));

TEST(SsspDeletion, SlidingWindowScheduleMatchesOracles) {
  SsspFixture f(64);
  const auto arrivals =
      wl::make_graphchallenge_like(64, 400, wl::SamplingKind::kEdge, 5, 99);
  const auto sched = wl::apply_sliding_window(arrivals, /*window=*/2,
                                              /*drain=*/true);
  f.sssp->set_source(*f.g, 0);
  base::DynamicSssp oracle(64, 0);
  for (const auto& inc : sched.increments) {
    f.g->stream_increment(inc);
    oracle.apply_increment(inc);
    f.expect_matches_oracle(oracle, "windowed increment");
  }
  EXPECT_TRUE(wl::live_edges(sched).empty());
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(f.g->stored_degree(v), 0u) << "vertex " << v;
    EXPECT_EQ(f.sssp->distance_of(*f.g, v),
              v == 0 ? rt::Word{0} : StreamingSssp::kUnreached);
  }
}

// ---------------------------------------------------------------------------
// Components deletion repair (label policy: reset-to-self-id, protect the
// label source)
// ---------------------------------------------------------------------------

struct ComponentsFixture {
  explicit ComponentsFixture(std::uint64_t nverts,
                             sim::ChipConfig cfg = small_chip_config(),
                             graph::RpvoConfig rc = {}) {
    chip = std::make_unique<sim::Chip>(cfg);
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    comps = std::make_unique<StreamingComponents>(*proto);
    comps->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = StreamingComponents::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
    comps->seed_labels(*g);
  }

  void expect_matches_oracle(const base::DynamicComponents& oracle,
                             const char* when) {
    for (std::uint64_t v = 0; v < g->num_vertices(); ++v) {
      ASSERT_EQ(comps->label_of(*g, v), oracle.label_of(v))
          << when << ", vertex " << v;
    }
  }

  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<StreamingComponents> comps;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(ComponentsDeletion, SplittingAComponentRestoresPerSideMinima) {
  // 0 <-> 1 <-> 2 as symmetric pairs plus the bridge 1 -> 3 -> 4 side.
  // Cutting the bridge must give the severed side its own minimum back.
  ComponentsFixture f(5);
  f.g->stream_increment(std::vector<StreamEdge>{
      {0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}, {1, 3, 1}, {3, 4, 1}});
  ASSERT_EQ(f.comps->label_of(*f.g, 3), 0u);
  ASSERT_EQ(f.comps->label_of(*f.g, 4), 0u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(1, 3)});
  EXPECT_EQ(f.comps->label_of(*f.g, 0), 0u);
  EXPECT_EQ(f.comps->label_of(*f.g, 1), 0u);
  EXPECT_EQ(f.comps->label_of(*f.g, 2), 0u);
  EXPECT_EQ(f.comps->label_of(*f.g, 3), 3u);
  EXPECT_EQ(f.comps->label_of(*f.g, 4), 3u);
}

TEST(ComponentsDeletion, LabelSourceSurvivesWaveThroughIt) {
  // 5 -> 0 -> 6 all labelled 0... except the wave for deleting (5, 0)
  // must protect vertex 0 (its label is its own id) and therefore leave
  // the 0-derived label at 6 intact too.
  ComponentsFixture f(7);
  f.g->stream_increment(std::vector<StreamEdge>{{5, 0, 1}, {0, 6, 1}});
  ASSERT_EQ(f.comps->label_of(*f.g, 0), 0u);
  ASSERT_EQ(f.comps->label_of(*f.g, 6), 0u);
  ASSERT_EQ(f.comps->label_of(*f.g, 5), 5u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(5, 0)});
  EXPECT_EQ(f.comps->label_of(*f.g, 0), 0u);
  EXPECT_EQ(f.comps->label_of(*f.g, 6), 0u);
  EXPECT_EQ(f.comps->label_of(*f.g, 5), 5u);
}

class ComponentsDeletionEquivalence
    : public ::testing::TestWithParam<DeletionCase> {};

TEST_P(ComponentsDeletionEquivalence, MatchesOracleAfterEveryIncrement) {
  const auto p = GetParam();
  auto cfg = small_chip_config();
  cfg.seed = p.seed;
  graph::RpvoConfig rc;
  rc.edge_capacity = p.edge_capacity;
  ComponentsFixture f(p.vertices, cfg, rc);

  rt::Xoshiro256 rng(p.seed);
  base::DynamicComponents oracle(p.vertices);

  std::vector<StreamEdge> live;
  for (int inc = 0; inc < 6; ++inc) {
    std::vector<StreamEdge> ops;
    for (int i = 0; i < 24; ++i) {
      const bool del = !live.empty() && rng.below(4) == 0;
      if (del) {
        const auto& victim = live[rng.below(live.size())];
        ops.push_back(make_delete_edge(victim.src, victim.dst));
        std::erase_if(live, [&](const StreamEdge& e) {
          return e.src == victim.src && e.dst == victim.dst;
        });
      } else {
        const StreamEdge e{rng.below(p.vertices), rng.below(p.vertices), 1};
        ops.push_back(e);
        live.push_back(e);
      }
    }
    f.g->stream_increment(ops);
    oracle.apply_increment(ops);
    ASSERT_TRUE(f.chip->quiescent());
    ASSERT_EQ(oracle.labels(), oracle.recompute())
        << "oracle self-check, seed " << p.seed << " increment " << inc;
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      ASSERT_EQ(f.comps->label_of(*f.g, v), oracle.label_of(v))
          << "vertex " << v << " seed " << p.seed << " increment " << inc;
    }
  }
  EXPECT_GT(oracle.edges_deleted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComponentsDeletionEquivalence,
    ::testing::Values(DeletionCase{16, 4, 301}, DeletionCase{24, 2, 302},
                      DeletionCase{32, 1, 303}, DeletionCase{32, 8, 304},
                      DeletionCase{48, 4, 305}, DeletionCase{20, 3, 306}));

TEST(ComponentsDeletion, SlidingWindowScheduleMatchesOracles) {
  ComponentsFixture f(64);
  const auto arrivals =
      wl::make_graphchallenge_like(64, 400, wl::SamplingKind::kEdge, 5, 99);
  const auto sched = wl::apply_sliding_window(arrivals, /*window=*/2,
                                              /*drain=*/true);
  base::DynamicComponents oracle(64);
  for (const auto& inc : sched.increments) {
    f.g->stream_increment(inc);
    oracle.apply_increment(inc);
    f.expect_matches_oracle(oracle, "windowed increment");
  }
  // Drained: the empty graph's labels are each vertex's own id.
  EXPECT_TRUE(wl::live_edges(sched).empty());
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(f.g->stored_degree(v), 0u) << "vertex " << v;
    EXPECT_EQ(f.comps->label_of(*f.g, v), v);
  }
}

// ---------------------------------------------------------------------------
// Fail-loud contract: apps without a deletion story must abort
// deterministically on a deleting increment, not give silent wrong answers.
// ---------------------------------------------------------------------------

using DeletionDeathTest = ::testing::Test;

TEST(DeletionDeathTest, PageRankRefusesToSeedAfterDeletions) {
  auto chip = std::make_unique<sim::Chip>(small_chip_config());
  graph::GraphProtocol proto(*chip, {});
  PageRank pr(proto);  // installs no hooks: structure-only deletion runs
  graph::GraphConfig gc;
  gc.num_vertices = 8;
  graph::StreamingGraph g(proto, gc);
  g.stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}});
  g.stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)});
  EXPECT_DEATH(pr.seed(g),
               "fatal misuse: PageRank::seed on a graph that streamed "
               "deletions");
}

TEST(DeletionDeathTest, TriangleCounterRefusesToStartAfterDeletions) {
  auto chip = std::make_unique<sim::Chip>(small_chip_config());
  graph::GraphProtocol proto(*chip, {});
  TriangleCounter tri(proto);
  graph::GraphConfig gc;
  gc.num_vertices = 8;
  graph::StreamingGraph g(proto, gc);
  g.stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}});
  g.stream_increment(std::vector<StreamEdge>{make_delete_edge(2, 0)});
  EXPECT_DEATH(tri.start(g),
               "fatal misuse: TriangleCounter::start on a graph that "
               "streamed deletions");
}

TEST(DeletionDeathTest, InsertChainingAppWithoutRepairDiesOnDeletes) {
  // An app that chains computation off on_edge_inserted but provides
  // neither host_repair nor on_edge_deleted (reachability is the in-tree
  // example) must hit the stream_increment misuse check up front.
  auto chip = std::make_unique<sim::Chip>(small_chip_config());
  graph::GraphProtocol proto(*chip, {});
  MultiSourceReach reach(proto);
  reach.install();
  graph::GraphConfig gc;
  gc.num_vertices = 8;
  graph::StreamingGraph g(proto, gc);
  g.stream_increment(std::vector<StreamEdge>{{0, 1, 1}});
  EXPECT_DEATH(
      g.stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)}),
      "fatal misuse: stream_increment: deleting increment under an app "
      "without deletion repair");
}

}  // namespace
}  // namespace ccastream::apps
