// Edge deletion, end to end: the delete-edge protocol on RPVO chains
// (delete-all-matches, ghost forwarding, deferred parking), the ingest
// hardening around it (endpoint validation, the rhizome restriction), the
// four-phase deletion increment driving BFS invalidation + re-settlement,
// and the v2 snapshot format that persists the deletes_seen counter.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace ccastream::graph {
namespace {

using test::small_chip_config;

struct Fixture {
  explicit Fixture(std::uint32_t edge_capacity = 4, std::uint64_t nverts = 8,
                   sim::ChipConfig cfg = small_chip_config(),
                   std::uint32_t rhizomes = 1) {
    chip = std::make_unique<sim::Chip>(cfg);
    RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<GraphProtocol>(*chip, rc);
    GraphConfig gc;
    gc.num_vertices = nverts;
    gc.rhizomes = rhizomes;
    g = std::make_unique<StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<GraphProtocol> proto;
  std::unique_ptr<StreamingGraph> g;
};

TEST(Deletion, RemovesStoredRecord) {
  Fixture f;
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 5}, {0, 2, 7}});
  ASSERT_EQ(f.g->stored_degree(0), 2u);

  const auto r = f.g->stream_increment(
      std::vector<StreamEdge>{make_delete_edge(0, 1)});
  EXPECT_EQ(r.edges, 1u);
  EXPECT_EQ(r.deletes, 1u);
  EXPECT_EQ(f.g->stored_degree(0), 1u);
  const auto nbrs = f.g->neighbors(0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].first, 2u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 1u);
  EXPECT_EQ(f.proto->stats().deletes_unmatched, 0u);

  // The root observed one delete, mirroring inserts_seen.
  const auto* root = f.chip->as<VertexFragment>(f.g->root_of(0));
  EXPECT_EQ(root->inserts_seen, 2u);
  EXPECT_EQ(root->deletes_seen, 1u);
}

TEST(Deletion, RemovesEveryMatchingRecord) {
  // Multigraph semantics on the way in, delete-all-matches on the way out
  // (see graph/stream_edge.hpp): one delete op clears all three (2, 5)
  // records and leaves the self-edge alone.
  Fixture f;
  f.g->stream_increment(
      std::vector<StreamEdge>{{2, 5, 1}, {2, 5, 2}, {2, 2, 1}, {2, 5, 3}});
  ASSERT_EQ(f.g->stored_degree(2), 4u);
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(2, 5)});
  EXPECT_EQ(f.g->stored_degree(2), 1u);
  EXPECT_EQ(f.g->neighbors(2)[0].first, 2u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 3u);
}

TEST(Deletion, ForwardsDownGhostChains) {
  // Capacity-1 fragments scatter the duplicates across a long chain; the
  // delete must walk every link and clear them all.
  Fixture f(/*edge_capacity=*/1);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 10; ++i) edges.push_back({0, 1 + (i % 2), 1});
  f.g->stream_increment(edges);
  ASSERT_EQ(f.g->stored_degree(0), 10u);
  ASSERT_GE(f.g->fragments_of(0).size(), 10u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)});
  EXPECT_EQ(f.g->stored_degree(0), 5u);  // only the (0, 2) records remain
  for (const auto& [dst, w] : f.g->neighbors(0)) EXPECT_EQ(dst, 2u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 5u);
  EXPECT_GT(f.proto->stats().deletes_forwarded, 0u);
}

TEST(Deletion, UnmatchedDeleteIsCountedNotFatal) {
  Fixture f;
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}});
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 7)});
  EXPECT_TRUE(f.chip->quiescent());
  EXPECT_EQ(f.g->stored_degree(0), 1u);
  EXPECT_EQ(f.proto->stats().edges_deleted, 0u);
  EXPECT_EQ(f.proto->stats().deletes_unmatched, 1u);
  EXPECT_EQ(f.proto->stats().bad_targets, 0u);
}

TEST(Deletion, OnEdgeDeletedHookSeesEveryRemovedRecord) {
  Fixture f;
  std::uint64_t hook_calls = 0;
  AppHooks hooks;
  hooks.on_edge_deleted = [&](rt::Context&, VertexFragment&,
                              const EdgeRecord&) { ++hook_calls; };
  f.proto->set_hooks(hooks);
  f.g->stream_increment(
      std::vector<StreamEdge>{{3, 4, 1}, {3, 4, 2}, {3, 5, 1}});
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(3, 4)});
  EXPECT_EQ(hook_calls, 2u);
}

TEST(Deletion, StreamIncrementRejectsOutOfRangeEndpoints) {
  Fixture f(4, /*nverts=*/8);
  EXPECT_THROW(f.g->stream_increment(std::vector<StreamEdge>{{8, 0, 1}}),
               std::out_of_range);
  EXPECT_THROW(f.g->stream_increment(std::vector<StreamEdge>{{0, 99, 1}}),
               std::out_of_range);
  EXPECT_THROW(
      f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 8)}),
      std::out_of_range);
  // Nothing was enqueued by the rejected batches.
  EXPECT_EQ(f.g->stored_degree(0), 0u);
  EXPECT_EQ(f.proto->stats().edges_inserted, 0u);
}

TEST(Deletion, DeletesRequireSingleRhizome) {
  // Streamed edges round-robin their destination address across rhizome
  // roots, so a delete aimed at one ring member cannot see records parked
  // on the others; the façade refuses rather than silently missing them.
  Fixture f(4, 8, small_chip_config(), /*rhizomes=*/2);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}});
  EXPECT_THROW(
      f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)}),
      std::runtime_error);
}

TEST(Deletion, SnapshotV2RoundTripsDeletesSeen) {
  const auto cfg = small_chip_config();
  Fixture f(4, 8, cfg);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {0, 2, 1}, {1, 2, 1}});
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)});

  std::stringstream snap;
  f.g->save_snapshot(snap);
  EXPECT_NE(snap.str().find("ccastream-snapshot v2"), std::string::npos);

  Fixture fresh(4, 8, cfg);
  fresh.chip = std::make_unique<sim::Chip>(cfg);
  RpvoConfig rc;
  rc.edge_capacity = 4;
  fresh.proto = std::make_unique<GraphProtocol>(*fresh.chip, rc);
  auto restored = StreamingGraph::load_snapshot(*fresh.proto, snap);
  EXPECT_EQ(restored->stored_degree(0), 1u);
  const auto* root = fresh.chip->as<VertexFragment>(restored->root_of(0));
  EXPECT_EQ(root->deletes_seen, 1u);
  EXPECT_EQ(root->inserts_seen, 2u);
}

TEST(Deletion, LegacyV1SnapshotLoadsWithZeroDeletesSeen) {
  const auto cfg = small_chip_config();
  Fixture f(4, 8, cfg);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}});

  std::stringstream snap;
  f.g->save_snapshot(snap);
  // Re-create the pre-deletion format: v1 header, no deletes_seen column
  // on the frag lines (it is the last field in v2).
  std::istringstream v2(snap.str());
  std::ostringstream v1;
  std::string line;
  while (std::getline(v2, line)) {
    if (line.rfind("ccastream-snapshot", 0) == 0) {
      line = "ccastream-snapshot v1";
    } else if (line.rfind("frag ", 0) == 0) {
      line = line.substr(0, line.rfind(' '));
    }
    v1 << line << '\n';
  }

  Fixture fresh(4, 8, cfg);
  fresh.chip = std::make_unique<sim::Chip>(cfg);
  RpvoConfig rc;
  rc.edge_capacity = 4;
  fresh.proto = std::make_unique<GraphProtocol>(*fresh.chip, rc);
  std::istringstream in(v1.str());
  auto restored = StreamingGraph::load_snapshot(*fresh.proto, in);
  EXPECT_EQ(restored->stored_degree(0), 1u);
  const auto* root = fresh.chip->as<VertexFragment>(restored->root_of(0));
  EXPECT_EQ(root->inserts_seen, 1u);
  EXPECT_EQ(root->deletes_seen, 0u);  // the v1 world never counted them
}

TEST(Deletion, DeleteThenReinsertInOneIncrementNetsOneRecord) {
  // Sub-phase order inside an increment is deletes first, then inserts —
  // on the chip, the oracle, and RefGraph alike. A same-pair delete +
  // insert therefore nets exactly one stored record.
  Fixture f;
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {0, 1, 2}});
  ASSERT_EQ(f.g->stored_degree(0), 2u);
  f.g->stream_increment(
      std::vector<StreamEdge>{make_delete_edge(0, 1), make_insert_edge(0, 1, 9)});
  EXPECT_EQ(f.g->stored_degree(0), 1u);
  EXPECT_EQ(f.g->neighbors(0)[0].second, 9u);
}

}  // namespace
}  // namespace ccastream::graph

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct BfsFixture {
  explicit BfsFixture(std::uint64_t nverts,
                      sim::ChipConfig cfg = small_chip_config(),
                      graph::RpvoConfig rc = {}) {
    chip = std::make_unique<sim::Chip>(cfg);
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    bfs = std::make_unique<StreamingBfs>(*proto);
    bfs->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = StreamingBfs::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }

  void expect_matches_oracle(const base::DynamicBfs& oracle,
                             const char* when) {
    for (std::uint64_t v = 0; v < g->num_vertices(); ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? StreamingBfs::kUnreached
                                : oracle.level_of(v);
      ASSERT_EQ(bfs->level_of(*g, v), want) << when << ", vertex " << v;
    }
  }

  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<StreamingBfs> bfs;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(BfsDeletion, TreeEdgeDeletionRaisesLevelsThroughAlternatePath) {
  // 0 -> 3 directly (level 1) and 0 -> 1 -> 2 -> 3 the long way. Deleting
  // the shortcut must raise 3 to its alternate-path level, not orphan it.
  BfsFixture f(4);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {0, 3, 1}});
  ASSERT_EQ(f.bfs->level_of(*f.g, 3), 1u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 3)});
  EXPECT_EQ(f.bfs->level_of(*f.g, 3), 3u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), 1u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), 2u);
}

TEST(BfsDeletion, DeletionCanDisconnect) {
  BfsFixture f(4);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  ASSERT_EQ(f.bfs->level_of(*f.g, 3), 3u);

  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(1, 2)});
  EXPECT_EQ(f.bfs->level_of(*f.g, 0), 0u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), 1u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), StreamingBfs::kUnreached);
  EXPECT_EQ(f.bfs->level_of(*f.g, 3), StreamingBfs::kUnreached);
}

TEST(BfsDeletion, DuplicateEdgesKeepVertexReachable) {
  // Two parallel (0, 1) records: deleting the pair removes both (delete-
  // all-matches), so reachability through them must go in one step.
  BfsFixture f(3);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {0, 1, 2}, {1, 2, 1}});
  ASSERT_EQ(f.bfs->level_of(*f.g, 2), 2u);
  f.g->stream_increment(std::vector<StreamEdge>{make_delete_edge(0, 1)});
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), StreamingBfs::kUnreached);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), StreamingBfs::kUnreached);
}

TEST(BfsDeletion, MixedIncrementMatchesOracle) {
  // Deletes and inserts in one increment, including a delete + re-insert
  // of the same pair: both the chip and the oracle apply deletes first.
  BfsFixture f(6);
  f.bfs->set_source(*f.g, 0);
  base::DynamicBfs oracle(6, 0);
  const std::vector<StreamEdge> inc1{{0, 1, 1}, {1, 2, 1}, {2, 3, 1},
                                     {3, 4, 1}, {0, 5, 1}};
  f.g->stream_increment(inc1);
  oracle.apply_increment(inc1);
  f.expect_matches_oracle(oracle, "after insert increment");

  const std::vector<StreamEdge> inc2{make_delete_edge(1, 2),
                                     make_insert_edge(5, 2, 1),
                                     make_delete_edge(0, 5),
                                     make_insert_edge(0, 5, 1)};
  f.g->stream_increment(inc2);
  oracle.apply_increment(inc2);
  f.expect_matches_oracle(oracle, "after mixed increment");
  ASSERT_EQ(oracle.levels(), oracle.recompute());
}

// Property sweep: random interleavings of inserts and deletes, streamed in
// increments, across RPVO capacities and seeds — chip levels equal the
// deletion oracle's after every increment, and the oracle equals its own
// from-scratch recompute.
struct DeletionCase {
  std::uint64_t vertices;
  std::uint32_t edge_capacity;
  std::uint64_t seed;
};

class BfsDeletionEquivalence
    : public ::testing::TestWithParam<DeletionCase> {};

TEST_P(BfsDeletionEquivalence, MatchesOracleAfterEveryIncrement) {
  const auto p = GetParam();
  auto cfg = small_chip_config();
  cfg.seed = p.seed;
  graph::RpvoConfig rc;
  rc.edge_capacity = p.edge_capacity;
  BfsFixture f(p.vertices, cfg, rc);

  rt::Xoshiro256 rng(p.seed);
  const std::uint64_t source = rng.below(p.vertices);
  f.bfs->set_source(*f.g, source);
  base::DynamicBfs oracle(p.vertices, source);

  std::vector<StreamEdge> live;  // pairs believed present, for deletions
  for (int inc = 0; inc < 6; ++inc) {
    std::vector<StreamEdge> ops;
    for (int i = 0; i < 24; ++i) {
      const bool del = !live.empty() && rng.below(4) == 0;
      if (del) {
        const auto& victim = live[rng.below(live.size())];
        ops.push_back(make_delete_edge(victim.src, victim.dst));
        std::erase_if(live, [&](const StreamEdge& e) {
          return e.src == victim.src && e.dst == victim.dst;
        });
      } else {
        const StreamEdge e{rng.below(p.vertices), rng.below(p.vertices), 1};
        ops.push_back(e);
        live.push_back(e);
      }
    }
    f.g->stream_increment(ops);
    oracle.apply_increment(ops);
    ASSERT_TRUE(f.chip->quiescent());
    ASSERT_EQ(oracle.levels(), oracle.recompute())
        << "oracle self-check, seed " << p.seed << " increment " << inc;
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? StreamingBfs::kUnreached
                                : oracle.level_of(v);
      ASSERT_EQ(f.bfs->level_of(*f.g, v), want)
          << "vertex " << v << " seed " << p.seed << " increment " << inc;
    }
  }
  EXPECT_GT(oracle.edges_deleted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsDeletionEquivalence,
    ::testing::Values(DeletionCase{16, 4, 101}, DeletionCase{24, 2, 102},
                      DeletionCase{32, 1, 103}, DeletionCase{32, 8, 104},
                      DeletionCase{48, 4, 105}, DeletionCase{20, 3, 106}));

TEST(BfsDeletion, SlidingWindowScheduleMatchesOracles) {
  // The tentpole integration: an SBM arrival stream windowed with drain,
  // streamed increment by increment. The chip must track the deletion
  // oracle throughout and end on the all-unreached empty graph.
  BfsFixture f(64);
  const auto arrivals =
      wl::make_graphchallenge_like(64, 400, wl::SamplingKind::kEdge, 5, 99);
  const auto sched = wl::apply_sliding_window(arrivals, /*window=*/2,
                                              /*drain=*/true);
  ASSERT_EQ(sched.increments.size(), arrivals.increments.size() + 2);
  f.bfs->set_source(*f.g, 0);
  base::DynamicBfs oracle(64, 0);
  for (const auto& inc : sched.increments) {
    f.g->stream_increment(inc);
    oracle.apply_increment(inc);
    f.expect_matches_oracle(oracle, "windowed increment");
  }
  // Drained: every record deleted, only the source still settled.
  EXPECT_TRUE(wl::live_edges(sched).empty());
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(f.g->stored_degree(v), 0u) << "vertex " << v;
    EXPECT_EQ(f.bfs->level_of(*f.g, v),
              v == 0 ? rt::Word{0} : StreamingBfs::kUnreached);
  }
}

}  // namespace
}  // namespace ccastream::apps
