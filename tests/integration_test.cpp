// End-to-end integration: full streaming experiments on schedules like the
// paper's, checking cross-module invariants (quiescence, stats consistency,
// determinism, BFS correctness per increment, allocator/routing matrix).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

using test::small_chip_config;

struct Pipeline {
  Pipeline(sim::ChipConfig cfg, std::uint64_t nverts, std::uint32_t edge_capacity) {
    chip = std::make_unique<sim::Chip>(cfg);
    graph::RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    bfs = std::make_unique<apps::StreamingBfs>(*proto);
    bfs->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = apps::StreamingBfs::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<apps::StreamingBfs> bfs;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(Integration, FullStreamingBfsRunWithReports) {
  auto cfg = small_chip_config();
  cfg.record_activation = true;
  Pipeline p(cfg, 200, 8);
  const auto sched = wl::make_graphchallenge_like(
      200, 1500, wl::SamplingKind::kEdge, 10, 100);
  p.bfs->set_source(*p.g, 0);

  base::DynamicBfs oracle(200, 0);
  std::uint64_t total_cycles = 0;
  for (const auto& inc : sched.increments) {
    const auto report = p.g->stream_increment(inc);
    oracle.insert_increment(inc);
    EXPECT_EQ(report.edges, inc.size());
    EXPECT_GT(report.cycles, 0u);
    total_cycles += report.cycles;
    ASSERT_TRUE(p.chip->quiescent());
  }
  EXPECT_EQ(total_cycles, p.chip->stats().cycles);
  EXPECT_EQ(p.chip->activation().samples().size(), p.chip->stats().cycles);

  for (std::uint64_t v = 0; v < 200; ++v) {
    const rt::Word want = oracle.level_of(v) == base::kUnreached
                              ? apps::StreamingBfs::kUnreached
                              : oracle.level_of(v);
    ASSERT_EQ(p.bfs->level_of(*p.g, v), want);
  }
}

TEST(Integration, StatsInternallyConsistent) {
  Pipeline p(small_chip_config(), 100, 4);
  const auto sched = wl::make_graphchallenge_like(
      100, 800, wl::SamplingKind::kSnowball, 5, 101);
  p.bfs->set_source(*p.g, sched.seed_vertex);
  for (const auto& inc : sched.increments) p.g->stream_increment(inc);

  const auto& s = p.chip->stats();
  // Every created action is eventually executed or faulted.
  EXPECT_EQ(s.actions_created + s.tasks_scheduled, s.actions_executed + s.faults);
  // Everything staged is delivered (all messages reach a real target).
  EXPECT_EQ(s.messages_staged + s.io_injections, s.deliveries);
  // Ingest accounting: every streamed edge is inserted exactly once.
  EXPECT_EQ(p.proto->stats().edges_inserted, sched.total_edges());
  // Ghost protocol: links made + failures == allocations started.
  EXPECT_EQ(p.proto->stats().ghost_links_made +
                p.proto->stats().ghost_alloc_failures,
            p.proto->stats().ghost_allocs_started);
  EXPECT_EQ(s.faults, 0u);
  EXPECT_GT(s.hops, 0u);
  EXPECT_GT(p.chip->energy_pj(), 0.0);
}

TEST(Integration, DeterministicEndToEnd) {
  auto run = [] {
    auto cfg = small_chip_config();
    cfg.seed = 2024;
    Pipeline p(cfg, 150, 4);
    const auto sched = wl::make_graphchallenge_like(
        150, 1200, wl::SamplingKind::kEdge, 4, 55);
    p.bfs->set_source(*p.g, 0);
    std::vector<std::uint64_t> cycles;
    for (const auto& inc : sched.increments) {
      cycles.push_back(p.g->stream_increment(inc).cycles);
    }
    return std::pair{cycles, p.chip->stats().hops};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

struct MatrixCase {
  rt::AllocPolicyKind alloc;
  sim::RoutingPolicyKind routing;
  graph::PlacementPolicy placement;
};

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, StreamingBfsCorrectUnderAllConfigs) {
  const auto m = GetParam();
  auto cfg = small_chip_config();
  cfg.alloc_policy = m.alloc;
  cfg.routing = m.routing;

  auto chip = std::make_unique<sim::Chip>(cfg);
  graph::RpvoConfig rc;
  rc.edge_capacity = 3;
  graph::GraphProtocol proto(*chip, rc);
  apps::StreamingBfs bfs(proto);
  bfs.install();
  graph::GraphConfig gc;
  gc.num_vertices = 80;
  gc.placement = m.placement;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(proto, gc);

  rt::Xoshiro256 rng(7);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 400; ++i) edges.push_back({rng.below(80), rng.below(80), 1});
  bfs.set_source(g, 3);
  g.stream_increment(edges);

  const auto ref = base::bfs_levels(test::ref_graph_of(80, edges), 3);
  for (std::uint64_t v = 0; v < 80; ++v) {
    const rt::Word want = ref[v] == base::kUnreached
                              ? apps::StreamingBfs::kUnreached
                              : ref[v];
    ASSERT_EQ(bfs.level_of(g, v), want) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrix,
    ::testing::Values(
        MatrixCase{rt::AllocPolicyKind::kVicinity, sim::RoutingPolicyKind::kYX,
                   graph::PlacementPolicy::kRoundRobin},
        MatrixCase{rt::AllocPolicyKind::kVicinity, sim::RoutingPolicyKind::kXY,
                   graph::PlacementPolicy::kBlocked},
        MatrixCase{rt::AllocPolicyKind::kRandom, sim::RoutingPolicyKind::kYX,
                   graph::PlacementPolicy::kRandom},
        MatrixCase{rt::AllocPolicyKind::kRandom,
                   sim::RoutingPolicyKind::kWestFirst,
                   graph::PlacementPolicy::kRoundRobin},
        MatrixCase{rt::AllocPolicyKind::kRoundRobin,
                   sim::RoutingPolicyKind::kYX,
                   graph::PlacementPolicy::kBlocked},
        MatrixCase{rt::AllocPolicyKind::kLocal, sim::RoutingPolicyKind::kXY,
                   graph::PlacementPolicy::kRandom},
        MatrixCase{rt::AllocPolicyKind::kVicinity,
                   sim::RoutingPolicyKind::kOddEven,
                   graph::PlacementPolicy::kRoundRobin},
        MatrixCase{rt::AllocPolicyKind::kRandom,
                   sim::RoutingPolicyKind::kOddEven,
                   graph::PlacementPolicy::kRandom}));

TEST(Integration, TinyFifosStillDrainCorrectly) {
  // Extreme backpressure: FIFO depth 1 must still deliver everything
  // (dimension-ordered routing is deadlock-free for any positive depth).
  auto cfg = small_chip_config();
  cfg.fifo_depth = 1;
  Pipeline p(cfg, 60, 2);
  rt::Xoshiro256 rng(13);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 500; ++i) edges.push_back({rng.below(60), rng.below(60), 1});
  p.bfs->set_source(*p.g, 0);
  const auto report = p.g->stream_increment(edges, /*max_cycles=*/2'000'000);
  ASSERT_TRUE(p.chip->quiescent()) << "possible deadlock with depth-1 FIFOs";
  EXPECT_EQ(p.proto->stats().edges_inserted, 500u);
  EXPECT_GT(report.stats_delta.stage_stalls, 0u);  // backpressure happened

  const auto ref = base::bfs_levels(test::ref_graph_of(60, edges), 0);
  for (std::uint64_t v = 0; v < 60; ++v) {
    const rt::Word want = ref[v] == base::kUnreached
                              ? apps::StreamingBfs::kUnreached
                              : ref[v];
    ASSERT_EQ(p.bfs->level_of(*p.g, v), want);
  }
}

TEST(Integration, PaperShapeSnowballIngestionGrowsPerIncrement) {
  // Qualitative Figure 8/9 shape check at test scale: snowball increments
  // grow, so ingestion cycles grow. A small chip with few IO cells keeps
  // injection (which scales with increment size) dominant over the
  // fixed drain-latency overhead, as at paper scale.
  auto cfg = small_chip_config(4);  // 4x4 chip, 8 IO cells
  Pipeline p(cfg, 200, 8);
  p.proto->set_hooks(graph::AppHooks{});  // ingestion only
  const auto sched = wl::make_graphchallenge_like(
      200, 12000, wl::SamplingKind::kSnowball, 10, 103);
  std::vector<std::uint64_t> cycles;
  for (const auto& inc : sched.increments) {
    cycles.push_back(p.g->stream_increment(inc).cycles);
  }
  EXPECT_LT(cycles.front() * 2, cycles.back())
      << "snowball ingestion should ramp with increment size";
  // And the paper's companion observation: the ramp is roughly monotone.
  const auto first3 = cycles[0] + cycles[1] + cycles[2];
  const auto last3 = cycles[7] + cycles[8] + cycles[9];
  EXPECT_LT(first3 * 2, last3);
}

}  // namespace
}  // namespace ccastream
