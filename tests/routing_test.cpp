// Property tests: routing policies are minimal and respect their turn
// restrictions (the deadlock-freedom argument), for every policy and many
// source/destination pairs.
#include <gtest/gtest.h>

#include "runtime/geometry.hpp"
#include "sim/routing.hpp"

namespace ccastream::sim {
namespace {

using rt::Coord;
using rt::MeshGeometry;

TEST(Routing, OppositeIsInvolution) {
  for (const auto d : {Direction::kNorth, Direction::kSouth, Direction::kEast,
                       Direction::kWest}) {
    EXPECT_EQ(opposite(opposite(d)), d);
    EXPECT_NE(opposite(d), d);
  }
  EXPECT_EQ(opposite(Direction::kLocal), Direction::kLocal);
}

TEST(Routing, ArrivedIsLocal) {
  const DownstreamOccupancy occ{};
  for (const auto p : {RoutingPolicyKind::kYX, RoutingPolicyKind::kXY,
                       RoutingPolicyKind::kWestFirst}) {
    EXPECT_EQ(route(p, Coord{3, 3}, Coord{3, 3}, occ), Direction::kLocal);
  }
}

TEST(Routing, YxGoesVerticalFirst) {
  const DownstreamOccupancy occ{};
  EXPECT_EQ(route(RoutingPolicyKind::kYX, {0, 0}, {5, 5}, occ), Direction::kSouth);
  EXPECT_EQ(route(RoutingPolicyKind::kYX, {0, 5}, {5, 5}, occ), Direction::kEast);
  EXPECT_EQ(route(RoutingPolicyKind::kYX, {5, 5}, {0, 0}, occ), Direction::kNorth);
}

TEST(Routing, XyGoesHorizontalFirst) {
  const DownstreamOccupancy occ{};
  EXPECT_EQ(route(RoutingPolicyKind::kXY, {0, 0}, {5, 5}, occ), Direction::kEast);
  EXPECT_EQ(route(RoutingPolicyKind::kXY, {5, 0}, {5, 5}, occ), Direction::kSouth);
}

TEST(Routing, WestFirstTakesWestImmediately) {
  const DownstreamOccupancy occ{};
  EXPECT_EQ(route(RoutingPolicyKind::kWestFirst, {5, 2}, {1, 6}, occ),
            Direction::kWest);
}

TEST(Routing, WestFirstAdaptsToCongestion) {
  // Destination is south-east: both East and South are productive; the
  // policy should prefer the emptier buffer.
  DownstreamOccupancy occ{};
  occ[static_cast<std::size_t>(Direction::kSouth)] = 3;
  occ[static_cast<std::size_t>(Direction::kEast)] = 0;
  EXPECT_EQ(route(RoutingPolicyKind::kWestFirst, {0, 0}, {4, 4}, occ),
            Direction::kEast);
  occ[static_cast<std::size_t>(Direction::kSouth)] = 0;
  occ[static_cast<std::size_t>(Direction::kEast)] = 3;
  EXPECT_EQ(route(RoutingPolicyKind::kWestFirst, {0, 0}, {4, 4}, occ),
            Direction::kSouth);
}

TEST(Routing, TurnRules) {
  using D = Direction;
  using P = RoutingPolicyKind;
  // YX: a message moving horizontally may never turn vertical.
  EXPECT_FALSE(turn_allowed(P::kYX, D::kEast, D::kNorth));
  EXPECT_FALSE(turn_allowed(P::kYX, D::kWest, D::kSouth));
  EXPECT_TRUE(turn_allowed(P::kYX, D::kSouth, D::kEast));
  EXPECT_TRUE(turn_allowed(P::kYX, D::kNorth, D::kNorth));
  // XY is the dual.
  EXPECT_FALSE(turn_allowed(P::kXY, D::kSouth, D::kEast));
  EXPECT_TRUE(turn_allowed(P::kXY, D::kEast, D::kSouth));
  // West-first: only turning into west is forbidden.
  EXPECT_FALSE(turn_allowed(P::kWestFirst, D::kNorth, D::kWest));
  EXPECT_TRUE(turn_allowed(P::kWestFirst, D::kWest, D::kWest));
  EXPECT_TRUE(turn_allowed(P::kWestFirst, D::kEast, D::kNorth));
}

// Exhaustive path property: for every (src, dst) pair on a mesh, following
// the policy reaches dst in exactly manhattan(src, dst) hops (minimality),
// never leaves the mesh, and never takes a forbidden turn.
class PathProperty : public ::testing::TestWithParam<RoutingPolicyKind> {};

TEST_P(PathProperty, MinimalLegalPathsForAllPairs) {
  const RoutingPolicyKind policy = GetParam();
  const MeshGeometry mesh(7, 5);
  DownstreamOccupancy occ{};  // zero occupancy: deterministic adaptive choice

  for (std::uint32_t s = 0; s < mesh.cell_count(); ++s) {
    for (std::uint32_t d = 0; d < mesh.cell_count(); ++d) {
      Coord cur = mesh.coord_of(s);
      const Coord dst = mesh.coord_of(d);
      const std::uint32_t expected = mesh.hops(s, d);
      std::uint32_t hops = 0;
      Direction prev = Direction::kLocal;
      while (!(cur == dst)) {
        const Direction dir = route(policy, cur, dst, occ);
        ASSERT_NE(dir, Direction::kLocal);
        ASSERT_TRUE(turn_allowed(policy, prev, dir, cur))
            << "illegal " << to_string(prev) << "->" << to_string(dir)
            << " turn under " << to_string(policy) << " at column " << cur.x;
        cur = step(cur, dir);
        ASSERT_TRUE(mesh.contains(cur)) << "routed off-mesh";
        prev = dir;
        ASSERT_LE(++hops, expected) << "non-minimal path";
      }
      EXPECT_EQ(hops, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PathProperty,
                         ::testing::Values(RoutingPolicyKind::kYX,
                                           RoutingPolicyKind::kXY,
                                           RoutingPolicyKind::kWestFirst,
                                           RoutingPolicyKind::kOddEven),
                         [](const auto& info) {
                           std::string n(to_string(info.param));
                           if (n == "west-first") return std::string("WestFirst");
                           if (n == "odd-even") return std::string("OddEven");
                           return n;
                         });

TEST(Routing, OddEvenTurnRulesDependOnColumnParity) {
  using D = Direction;
  using P = RoutingPolicyKind;
  // East->vertical: odd columns only.
  EXPECT_FALSE(turn_allowed(P::kOddEven, D::kEast, D::kNorth, {2, 3}));
  EXPECT_TRUE(turn_allowed(P::kOddEven, D::kEast, D::kNorth, {3, 3}));
  EXPECT_FALSE(turn_allowed(P::kOddEven, D::kEast, D::kSouth, {0, 0}));
  // Vertical->west: even columns only.
  EXPECT_FALSE(turn_allowed(P::kOddEven, D::kNorth, D::kWest, {5, 3}));
  EXPECT_TRUE(turn_allowed(P::kOddEven, D::kSouth, D::kWest, {4, 3}));
  // Straight-through and other turns are unrestricted.
  EXPECT_TRUE(turn_allowed(P::kOddEven, D::kEast, D::kEast, {2, 2}));
  EXPECT_TRUE(turn_allowed(P::kOddEven, D::kNorth, D::kEast, {2, 2}));
}

TEST(Routing, OddEvenAdaptsAmongAdmissibleDirections) {
  // At an odd column heading south-east, both south and east are
  // admissible: congestion decides.
  DownstreamOccupancy occ{};
  occ[static_cast<std::size_t>(Direction::kSouth)] = 4;
  occ[static_cast<std::size_t>(Direction::kEast)] = 1;
  EXPECT_EQ(route(RoutingPolicyKind::kOddEven, {3, 0}, {6, 4}, occ),
            Direction::kEast);
  occ[static_cast<std::size_t>(Direction::kSouth)] = 0;
  EXPECT_EQ(route(RoutingPolicyKind::kOddEven, {3, 0}, {6, 4}, occ),
            Direction::kSouth);
}

}  // namespace
}  // namespace ccastream::sim
