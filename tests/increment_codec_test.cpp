// The binary increment-log codec (io/increment_codec): round-trips every op
// shape the streaming layer produces, rejects malformed input with
// structured errors instead of UB (this suite is part of the ubsan CI
// preset), and pins the v1 wire format byte-for-byte so a rewrite cannot
// silently change what recorded logs mean.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

using io::IncrementCodecError;
using io::IncrementLogReader;
using io::IncrementLogWriter;

std::string encode(std::uint64_t num_vertices,
                   const std::vector<std::vector<StreamEdge>>& incs) {
  std::ostringstream out;
  io::write_increment_log(out, num_vertices, incs);
  return out.str();
}

// --- Round-trips -------------------------------------------------------------

TEST(IncrementCodec, RoundTripsInsertOnlyIncrements) {
  const std::vector<std::vector<StreamEdge>> incs = {
      {make_insert_edge(0, 1), make_insert_edge(1, 2, 7)},
      {},  // an empty increment is legal and must survive framing
      {make_insert_edge(41, 0, 3)},
  };
  std::istringstream in(encode(42, incs));
  const io::DecodedIncrementLog log = io::read_increment_log(in);
  EXPECT_EQ(log.header.version, io::kIncrementLogVersion);
  EXPECT_EQ(log.header.num_vertices, 42u);
  EXPECT_EQ(log.increments, incs);
}

TEST(IncrementCodec, RoundTripsDeleteAndWindowedStreams) {
  // A windowed schedule is the realistic mixed-op producer: aged edges
  // come back as delete ops, including delete-only drain increments.
  auto sched = wl::make_graphchallenge_like(60, 600, wl::SamplingKind::kEdge,
                                            /*increments=*/4, /*seed=*/7);
  sched = wl::apply_sliding_window(sched, /*window=*/2, /*drain=*/true);
  std::uint64_t deletes = 0;
  for (const auto& inc : sched.increments) {
    for (const auto& e : inc) deletes += e.is_delete() ? 1 : 0;
  }
  ASSERT_GT(deletes, 0u) << "window produced no deletions";

  std::istringstream in(encode(60, sched.increments));
  const io::DecodedIncrementLog log = io::read_increment_log(in);
  EXPECT_EQ(log.increments, sched.increments);
}

TEST(IncrementCodec, RoundTripsExtremeFieldValues) {
  const std::vector<std::vector<StreamEdge>> incs = {{
      StreamEdge{~0ull, ~0ull, ~0u, EdgeOp::kDelete},
      StreamEdge{0, 0, 0, EdgeOp::kInsert},
  }};
  std::istringstream in(encode(~0ull, incs));
  const io::DecodedIncrementLog log = io::read_increment_log(in);
  EXPECT_EQ(log.header.num_vertices, ~0ull);
  EXPECT_EQ(log.increments, incs);
}

TEST(IncrementCodec, StreamingReaderYieldsFramesInOrder) {
  const std::vector<std::vector<StreamEdge>> incs = {
      {make_insert_edge(1, 2)}, {make_delete_edge(1, 2)}};
  std::istringstream in(encode(3, incs));
  IncrementLogReader r(in);
  EXPECT_EQ(r.increments_read(), 0u);
  EXPECT_EQ(r.next(), incs[0]);
  EXPECT_EQ(r.next(), incs[1]);
  EXPECT_EQ(r.increments_read(), 2u);
  EXPECT_EQ(r.next(), std::nullopt);  // clean EOF at a frame boundary
  EXPECT_EQ(r.next(), std::nullopt);  // and stays there
}

// --- Golden pin of format v1 -------------------------------------------------

// The exact bytes of a two-increment v1 log. If this test fails, the wire
// format changed: bump kIncrementLogVersion and add a new pin — do not
// update these bytes in place, existing recorded logs would rot silently.
TEST(IncrementCodec, GoldenBytesForFormatV1) {
  const std::vector<std::vector<StreamEdge>> incs = {
      {make_insert_edge(0x0102030405060708ull, 0x11, 0xAABB)},
      {make_delete_edge(0x11, 0x22)},
  };
  const std::string got = encode(/*num_vertices=*/0x2A, incs);

  const unsigned char want[] = {
      // header: magic "CCIL", version 1, record stride 24,
      // num_vertices 0x2A, reserved 0 (all little-endian)
      'C', 'C', 'I', 'L', 0x01, 0x00, 0x18, 0x00,
      0x2A, 0, 0, 0, 0, 0, 0, 0,
      0, 0, 0, 0, 0, 0, 0, 0,
      // frame 1: "INCR", op count 1
      'I', 'N', 'C', 'R', 0x01, 0x00, 0x00, 0x00,
      // record: src, dst, weight, op=insert, padding
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      0x11, 0, 0, 0, 0, 0, 0, 0,
      0xBB, 0xAA, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // frame 2: "INCR", op count 1
      'I', 'N', 'C', 'R', 0x01, 0x00, 0x00, 0x00,
      // record: src, dst, weight=1, op=delete, padding
      0x11, 0, 0, 0, 0, 0, 0, 0,
      0x22, 0, 0, 0, 0, 0, 0, 0,
      0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
  };
  ASSERT_EQ(got.size(), sizeof want);
  for (std::size_t i = 0; i < sizeof want; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(got[i]), want[i])
        << "byte " << i << " diverged from the v1 pin";
  }

  // And the pinned bytes decode back to the source increments (the pin is
  // not write-only).
  std::istringstream in(got);
  EXPECT_EQ(io::read_increment_log(in).increments, incs);
}

TEST(IncrementCodec, SizeConstantsMatchTheLayout) {
  EXPECT_EQ(encode(1, {}).size(), io::kIncrementLogHeaderBytes);
  EXPECT_EQ(encode(1, {{}}).size(),
            io::kIncrementLogHeaderBytes + io::kIncrementFrameHeaderBytes);
  EXPECT_EQ(encode(1, {{make_insert_edge(0, 0)}}).size(),
            io::kIncrementLogHeaderBytes + io::kIncrementFrameHeaderBytes +
                io::kIncrementRecordBytes);
}

// --- Malformed input: structured rejection, no UB ---------------------------

void expect_rejects(std::string bytes, const char* fragment) {
  std::istringstream in(bytes);
  try {
    (void)io::read_increment_log(in);
    FAIL() << "decoder accepted malformed input (wanted error containing '"
           << fragment << "')";
  } catch (const IncrementCodecError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(IncrementCodec, RejectsGarbageMagic) {
  // A text snapshot misfed to the binary reader (long enough to fill the
  // fixed-size header, so the failure is the magic check, not truncation).
  expect_rejects("ccastream-snapshot v2\nchip 8 8\n", "bad magic");
  expect_rejects(std::string(64, '\xFF'), "bad magic");
  // Anything shorter than one header is truncation by definition.
  expect_rejects("CCIL", "truncated header");
}

TEST(IncrementCodec, RejectsFutureAndZeroVersions) {
  std::string log = encode(5, {});
  log[4] = 0x02;  // version 2: a future build's log
  expect_rejects(log, "unsupported version 2");
  log[4] = 0x00;
  expect_rejects(log, "unsupported version 0");
}

TEST(IncrementCodec, RejectsTruncationAtEveryByteBoundary) {
  const std::string full = encode(9, {{make_insert_edge(1, 2)},
                                      {make_delete_edge(1, 2)}});
  // Chopping the log anywhere that is not a frame boundary must throw a
  // structured "truncated ..." error — never return partial data, never
  // read out of bounds (the ubsan leg watches this loop).
  const std::size_t frame1_end = io::kIncrementLogHeaderBytes +
                                 io::kIncrementFrameHeaderBytes +
                                 io::kIncrementRecordBytes;
  for (std::size_t len = 1; len < full.size(); ++len) {
    if (len == io::kIncrementLogHeaderBytes || len == frame1_end) {
      // These are clean frame boundaries: a shorter log, not a broken one.
      std::istringstream in(full.substr(0, len));
      EXPECT_NO_THROW((void)io::read_increment_log(in)) << "length " << len;
      continue;
    }
    SCOPED_TRACE("truncated to " + std::to_string(len) + " bytes");
    expect_rejects(full.substr(0, len), "truncated");
  }
}

TEST(IncrementCodec, RejectsCorruptFrameAndRecordFields) {
  const std::string full = encode(9, {{make_insert_edge(1, 2)}});
  {
    std::string log = full;
    log[6] = 0x10;  // record stride 16 instead of 24
    expect_rejects(log, "record stride");
  }
  {
    std::string log = full;
    log[20] = 0x01;  // reserved header word no longer zero
    expect_rejects(log, "reserved");
  }
  {
    std::string log = full;
    log[io::kIncrementLogHeaderBytes] = 'X';  // frame tag corrupted
    expect_rejects(log, "frame tag");
  }
  {
    std::string log = full;
    // op byte beyond EdgeOp::kDelete
    log[io::kIncrementLogHeaderBytes + io::kIncrementFrameHeaderBytes + 20] =
        0x07;
    expect_rejects(log, "unknown op kind 7");
  }
  {
    std::string log = full;
    // nonzero record padding: reject so the bytes stay canonical (a v2
    // could repurpose them without ambiguity)
    log[io::kIncrementLogHeaderBytes + io::kIncrementFrameHeaderBytes + 23] =
        0x01;
    expect_rejects(log, "padding");
  }
}

TEST(IncrementCodec, RejectsOverdeclaredOpCount) {
  // Frame promises 1000 ops but carries one: truncated record, not a hang
  // or an overread.
  std::string log = encode(9, {{make_insert_edge(1, 2)}});
  log[io::kIncrementLogHeaderBytes + 4] = 0xE8;  // op count -> 1000
  log[io::kIncrementLogHeaderBytes + 5] = 0x03;
  expect_rejects(log, "truncated record");
}

TEST(IncrementCodec, ReaderErrorsAreSticky) {
  // After a framing error the stream is desynchronised by definition;
  // continuing to call next() keeps throwing rather than resyncing on
  // garbage.
  std::string log = encode(9, {{make_insert_edge(1, 2)}, {}});
  log[io::kIncrementLogHeaderBytes] = 'X';
  std::istringstream in(log);
  IncrementLogReader r(in);
  EXPECT_THROW((void)r.next(), IncrementCodecError);
  EXPECT_THROW((void)r.next(), IncrementCodecError);
}

}  // namespace
}  // namespace ccastream
