// Unit tests: per-cell scratchpad object arena.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/arena.hpp"

namespace ccastream::rt {
namespace {

class TestObject final : public ArenaObject {
 public:
  explicit TestObject(std::size_t bytes, int tag = 0) : tag(tag), bytes_(bytes) {}
  [[nodiscard]] std::size_t logical_bytes() const noexcept override { return bytes_; }
  int tag;

 private:
  std::size_t bytes_;
};

TEST(ObjectArena, InsertReturnsSequentialSlots) {
  ObjectArena arena(1024);
  const auto s0 = arena.insert(std::make_unique<TestObject>(100, 0));
  const auto s1 = arena.insert(std::make_unique<TestObject>(100, 1));
  ASSERT_TRUE(s0 && s1);
  EXPECT_EQ(*s0, 0u);
  EXPECT_EQ(*s1, 1u);
  EXPECT_EQ(arena.object_count(), 2u);
  EXPECT_EQ(arena.bytes_used(), 200u);
}

TEST(ObjectArena, GetReturnsInsertedObject) {
  ObjectArena arena(1024);
  const auto slot = arena.insert(std::make_unique<TestObject>(10, 42));
  ASSERT_TRUE(slot);
  auto* obj = dynamic_cast<TestObject*>(arena.get(*slot));
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->tag, 42);
}

TEST(ObjectArena, GetOutOfRangeIsNull) {
  ObjectArena arena(1024);
  EXPECT_EQ(arena.get(0), nullptr);
  arena.insert(std::make_unique<TestObject>(1));
  EXPECT_EQ(arena.get(1), nullptr);
}

TEST(ObjectArena, RejectsOverflow) {
  ObjectArena arena(100);
  EXPECT_TRUE(arena.insert(std::make_unique<TestObject>(60)));
  EXPECT_FALSE(arena.insert(std::make_unique<TestObject>(60)));  // 120 > 100
  EXPECT_TRUE(arena.insert(std::make_unique<TestObject>(40)));   // exactly fits
  EXPECT_EQ(arena.bytes_used(), 100u);
  EXPECT_FALSE(arena.insert(std::make_unique<TestObject>(1)));
}

TEST(ObjectArena, RejectsNull) {
  ObjectArena arena(100);
  EXPECT_FALSE(arena.insert(nullptr));
}

TEST(ObjectArena, WouldFit) {
  ObjectArena arena(100);
  EXPECT_TRUE(arena.would_fit(100));
  EXPECT_FALSE(arena.would_fit(101));
  arena.insert(std::make_unique<TestObject>(30));
  EXPECT_TRUE(arena.would_fit(70));
  EXPECT_FALSE(arena.would_fit(71));
}

TEST(ObjectArena, PointersStableAcrossGrowth) {
  ObjectArena arena(1u << 20);
  const auto first = arena.insert(std::make_unique<TestObject>(8, 7));
  auto* before = arena.get(*first);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(arena.insert(std::make_unique<TestObject>(8, i)));
  }
  EXPECT_EQ(arena.get(*first), before);  // slot 0 never moved
}

TEST(ObjectArena, ClearResetsUsage) {
  ObjectArena arena(100);
  arena.insert(std::make_unique<TestObject>(80));
  arena.clear();
  EXPECT_EQ(arena.object_count(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_TRUE(arena.insert(std::make_unique<TestObject>(80)));
}

}  // namespace
}  // namespace ccastream::rt
