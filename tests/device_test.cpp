// The AmccaDevice façade: paper Listing 1's host flow end to end.
#include <gtest/gtest.h>

#include <vector>

#include "test_util.hpp"

namespace ccastream::graph {
namespace {

TEST(AmccaDevice, Listing1Flow) {
  // AMCCA_Device dev = /* Initialize the device. */
  sim::ChipConfig cfg;
  cfg.width = 8;
  cfg.height = 8;
  AmccaDevice dev(cfg);

  // Application actions chain through hooks; BFS here, like the paper.
  apps::StreamingBfs bfs(dev.protocol());
  bfs.install();

  // vertices = /* allocate vertices on the device ... */
  GraphConfig gc;
  gc.num_vertices = 6;
  gc.root_init = apps::StreamingBfs::initial_state();
  auto& g = dev.allocate_vertices(gc);
  bfs.set_source(g, 0);

  // dev.register_data_transfer(vertices, edges, INSERT_ACTION);
  const std::vector<StreamEdge> edges{
      {0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}};
  dev.register_data_transfer(edges);
  EXPECT_GT(dev.chip().io_pending(), 0u);

  // AMCCA_Terminator terminator; dev.run(terminator);
  Terminator terminator;
  EXPECT_FALSE(terminator.satisfied());
  const auto cycles = dev.run(terminator);
  EXPECT_TRUE(terminator.satisfied());
  EXPECT_EQ(terminator.cycles_waited(), cycles);
  EXPECT_GT(cycles, 0u);

  for (std::uint64_t v = 0; v < 6; ++v) EXPECT_EQ(bfs.level_of(g, v), v);
}

TEST(AmccaDevice, RegisterActionDispatches) {
  AmccaDevice dev(test::small_chip_config());
  int calls = 0;
  const rt::HandlerId h = dev.register_action(
      "test.count", [&](rt::Context&, const rt::Action&) { ++calls; });
  GraphConfig gc;
  gc.num_vertices = 1;
  auto& g = dev.allocate_vertices(gc);
  dev.chip().inject_local(rt::make_action(h, g.root_of(0)));
  Terminator t;
  dev.run(t);
  EXPECT_EQ(calls, 1);
}

TEST(AmccaDevice, DoubleAllocateThrows) {
  AmccaDevice dev(test::small_chip_config());
  GraphConfig gc;
  gc.num_vertices = 1;
  dev.allocate_vertices(gc);
  EXPECT_THROW(dev.allocate_vertices(gc), std::logic_error);
}

TEST(AmccaDevice, TransferBeforeAllocateThrows) {
  AmccaDevice dev(test::small_chip_config());
  const std::vector<StreamEdge> edges{{0, 1, 1}};
  EXPECT_THROW(dev.register_data_transfer(edges), std::logic_error);
  EXPECT_FALSE(dev.has_graph());
}

TEST(AmccaDevice, RunWithBudgetLeavesTerminatorUnsatisfied) {
  AmccaDevice dev(test::small_chip_config());
  apps::StreamingBfs bfs(dev.protocol());
  bfs.install();
  GraphConfig gc;
  gc.num_vertices = 50;
  gc.root_init = apps::StreamingBfs::initial_state();
  auto& g = dev.allocate_vertices(gc);
  bfs.set_source(g, 0);
  std::vector<StreamEdge> edges;
  rt::Xoshiro256 rng(3);
  for (int i = 0; i < 300; ++i) edges.push_back({rng.below(50), rng.below(50), 1});
  dev.register_data_transfer(edges);

  Terminator t;
  dev.run(t, /*max_cycles=*/3);  // far too few
  EXPECT_FALSE(t.satisfied());
  dev.run(t);  // finish the diffusion
  EXPECT_TRUE(t.satisfied());
}

}  // namespace
}  // namespace ccastream::graph
