// Workload generators: SBM, R-MAT, Edge/Snowball sampling schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "test_util.hpp"

namespace ccastream::wl {
namespace {

std::multiset<std::pair<std::uint64_t, std::uint64_t>> edge_multiset(
    const std::vector<StreamEdge>& edges) {
  std::multiset<std::pair<std::uint64_t, std::uint64_t>> s;
  for (const auto& e : edges) s.insert({e.src, e.dst});
  return s;
}

TEST(Sbm, GeneratesRequestedCount) {
  SbmParams p;
  p.num_vertices = 100;
  p.num_edges = 500;
  const auto edges = generate_sbm(p);
  EXPECT_EQ(edges.size(), 500u);
  for (const auto& e : edges) {
    EXPECT_LT(e.src, 100u);
    EXPECT_LT(e.dst, 100u);
    EXPECT_NE(e.src, e.dst);  // self loops off by default
  }
}

TEST(Sbm, Deterministic) {
  SbmParams p;
  p.num_vertices = 50;
  p.num_edges = 200;
  p.seed = 9;
  EXPECT_EQ(edge_multiset(generate_sbm(p)), edge_multiset(generate_sbm(p)));
  p.seed = 10;
  EXPECT_NE(edge_multiset(generate_sbm(p)),
            edge_multiset(generate_sbm({50, 200, 32, 0.7, 1.0, false, 9})));
}

TEST(Sbm, IntraBlockBias) {
  SbmParams p;
  p.num_vertices = 1000;
  p.num_edges = 20000;
  p.num_blocks = 10;
  p.intra_prob = 0.9;
  const auto edges = generate_sbm(p);
  std::uint64_t intra = 0;
  for (const auto& e : edges) {
    if (e.src / 100 == e.dst / 100) ++intra;
  }
  // 90% intra + ~1% of inter landing in-block by chance.
  EXPECT_GT(static_cast<double>(intra) / edges.size(), 0.85);
}

TEST(Sbm, SelfLoopsWhenAllowed) {
  SbmParams p;
  p.num_vertices = 10;
  p.num_edges = 3000;
  p.allow_self_loops = true;
  const auto edges = generate_sbm(p);
  EXPECT_TRUE(std::any_of(edges.begin(), edges.end(),
                          [](const StreamEdge& e) { return e.src == e.dst; }));
}

TEST(EdgeSampling, PartitionsEvenly) {
  SbmParams p;
  p.num_vertices = 64;
  p.num_edges = 1003;
  auto edges = generate_sbm(p);
  const auto before = edge_multiset(edges);
  const auto sched = edge_sampling(std::move(edges), 10, 1);

  ASSERT_EQ(sched.increments.size(), 10u);
  EXPECT_EQ(sched.total_edges(), 1003u);
  // Near-equal: paper Table 1's Edge rows are all ~102K.
  for (const auto& inc : sched.increments) {
    EXPECT_GE(inc.size(), 100u);
    EXPECT_LE(inc.size(), 101u);
  }
  // Permutation: nothing lost, nothing invented.
  std::vector<StreamEdge> flat;
  for (const auto& inc : sched.increments) {
    flat.insert(flat.end(), inc.begin(), inc.end());
  }
  EXPECT_EQ(edge_multiset(flat), before);
}

TEST(SnowballSampling, RampsUpAndPreservesEdges) {
  SbmParams p;
  p.num_vertices = 200;
  p.num_edges = 3000;
  const auto edges = generate_sbm(p);
  const auto sched = snowball_sampling(edges, 200, 10, 2);

  ASSERT_EQ(sched.increments.size(), 10u);
  EXPECT_EQ(sched.total_edges(), 3000u);
  EXPECT_LT(sched.seed_vertex, 200u);
  // Table 1 snowball shape: later increments are much larger than earlier.
  EXPECT_LT(sched.increments.front().size() * 3, sched.increments.back().size());
  // Monotone non-decreasing ramp.
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_GE(sched.increments[i].size() + 1, sched.increments[i - 1].size());
  }
  std::vector<StreamEdge> flat;
  for (const auto& inc : sched.increments) {
    flat.insert(flat.end(), inc.begin(), inc.end());
  }
  EXPECT_EQ(edge_multiset(flat), edge_multiset(edges));
}

TEST(SnowballSampling, EarlyEdgesTouchSeedNeighborhood) {
  SbmParams p;
  p.num_vertices = 300;
  p.num_edges = 4000;
  const auto edges = generate_sbm(p);
  const auto sched = snowball_sampling(edges, 300, 10, 3);
  // The first increment's edges are discovered from the seed: the seed (or
  // a vertex reached from it) appears among the earliest endpoints.
  ASSERT_FALSE(sched.increments.front().empty());
  const auto& first = sched.increments.front().front();
  EXPECT_TRUE(first.src == sched.seed_vertex || first.dst == sched.seed_vertex);
}

TEST(GraphChallengeLike, BothKindsProduceFullSchedules) {
  for (const auto kind : {SamplingKind::kEdge, SamplingKind::kSnowball}) {
    const auto sched = make_graphchallenge_like(500, 5000, kind, 10, 4);
    EXPECT_EQ(sched.kind, kind);
    EXPECT_EQ(sched.increments.size(), 10u);
    EXPECT_EQ(sched.total_edges(), 5000u);
  }
}

TEST(Symmetrize, AddsReverses) {
  const auto sym = symmetrize({{0, 1, 3}, {2, 2, 1}});
  ASSERT_EQ(sym.size(), 3u);  // self loop not doubled
  EXPECT_EQ(sym[1].src, 1u);
  EXPECT_EQ(sym[1].dst, 0u);
  EXPECT_EQ(sym[1].weight, 3u);
}

TEST(Simplify, DropsDupsAndSelfLoops) {
  const auto simple =
      simplify({{0, 1, 1}, {0, 1, 9}, {1, 0, 1}, {2, 2, 1}, {0, 2, 1}});
  ASSERT_EQ(simple.size(), 3u);  // (0,1), (1,0), (0,2)
}

TEST(Simplify, DuplicatePairKeepsLastWeightAtFirstPosition) {
  // The project-wide last-write rule (graph/stream_edge.hpp): a duplicate
  // observation renews the pair with its weight, matching what a chip
  // stream of delete+insert would leave behind. Position stays stable so
  // schedules remain deterministic.
  const auto simple = simplify({{0, 1, 1}, {0, 2, 4}, {0, 1, 9}});
  ASSERT_EQ(simple.size(), 2u);
  EXPECT_EQ(simple[0], (StreamEdge{0, 1, 9}));
  EXPECT_EQ(simple[1], (StreamEdge{0, 2, 4}));
}

TEST(UndirectedSimple, DedupsUnorderedPairs) {
  const auto out = undirected_simple(
      {{0, 1, 1}, {1, 0, 5}, {2, 2, 1}, {3, 1, 1}, {0, 1, 9}});
  // Pairs {0,1} and {1,3} survive, each emitted in both directions; the
  // last observation of {0,1} (weight 9) wins, at the pair's first
  // position — the same last-write rule simplify applies.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], (StreamEdge{0, 1, 9}));
  EXPECT_EQ(out[1], (StreamEdge{1, 0, 9}));
  EXPECT_EQ(out[2], (StreamEdge{1, 3, 1}));
  EXPECT_EQ(out[3], (StreamEdge{3, 1, 1}));
}

TEST(SlidingWindow, ExpiresPairsExactlyWindowIncrementsAfterLastSeen) {
  StreamSchedule arrivals;
  arrivals.increments = {{{0, 1, 1}}, {{1, 2, 1}}, {}, {}};
  const auto out = apply_sliding_window(arrivals, /*window=*/2);
  ASSERT_EQ(out.increments.size(), 4u);
  // Increment 2: (0,1) from increment 0 ages out, ahead of any arrivals.
  ASSERT_EQ(out.increments[2].size(), 1u);
  EXPECT_TRUE(out.increments[2][0].is_delete());
  EXPECT_EQ(out.increments[2][0].src, 0u);
  EXPECT_EQ(out.increments[2][0].dst, 1u);
  // Increment 3: (1,2) follows.
  ASSERT_EQ(out.increments[3].size(), 1u);
  EXPECT_EQ(out.increments[3][0].src, 1u);
}

TEST(SlidingWindow, ReobservationRenewsTheLease) {
  StreamSchedule arrivals;
  arrivals.increments = {{{0, 1, 1}}, {{0, 1, 2}}, {}, {}, {}};
  const auto out = apply_sliding_window(arrivals, /*window=*/2);
  // The increment-1 re-observation renews (0, 1): nothing expires at
  // increment 2; the single delete lands at increment 3.
  EXPECT_TRUE(out.increments[2].empty());
  ASSERT_EQ(out.increments[3].size(), 1u);
  EXPECT_TRUE(out.increments[3][0].is_delete());
  EXPECT_TRUE(out.increments[4].empty());
  std::uint64_t deletes = 0;
  for (const auto& inc : out.increments) {
    for (const auto& e : inc) deletes += e.is_delete() ? 1 : 0;
  }
  EXPECT_EQ(deletes, 1u);  // one lease, one expiry, despite two arrivals
}

TEST(SlidingWindow, DrainAppendsWindowIncrementsAndEmptiesTheGraph) {
  SbmParams p;
  p.num_vertices = 40;
  p.num_edges = 200;
  const auto sched = edge_sampling(generate_sbm(p), 5, 1);
  const auto windowed = apply_sliding_window(sched, /*window=*/2,
                                             /*drain=*/true);
  EXPECT_EQ(windowed.increments.size(), 7u);  // 5 arrivals + window tail
  EXPECT_TRUE(live_edges(windowed).empty());
  // Without drain the last window's pairs are still live.
  const auto open = apply_sliding_window(sched, /*window=*/2);
  EXPECT_EQ(open.increments.size(), 5u);
  EXPECT_FALSE(live_edges(open).empty());
  // Every insert of the original schedule appears in the windowed one.
  EXPECT_EQ(windowed.kind, sched.kind);
  std::uint64_t inserts = 0;
  for (const auto& inc : windowed.increments) {
    for (const auto& e : inc) inserts += e.is_delete() ? 0 : 1;
  }
  EXPECT_EQ(inserts, sched.total_edges());
}

TEST(SlidingWindow, WindowZeroIsPassThrough) {
  StreamSchedule arrivals;
  arrivals.increments = {{{0, 1, 1}}, {{1, 2, 1}}};
  const auto out = apply_sliding_window(arrivals, 0);
  EXPECT_EQ(out.increments.size(), 2u);
  for (const auto& inc : out.increments) {
    for (const auto& e : inc) EXPECT_FALSE(e.is_delete());
  }
}

TEST(SlidingWindow, LiveEdgesHonorsDeleteAllThenReinsert) {
  StreamSchedule s;
  s.increments = {{{0, 1, 1}, {0, 1, 2}},
                  {make_delete_edge(0, 1), make_insert_edge(0, 1, 7)}};
  const auto live = live_edges(s);
  // Deletes apply before the increment's inserts (the chip's sub-phase
  // order), and remove every matching pair: both weight-1 and weight-2
  // records fall, the re-insert survives.
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].weight, 7u);
}

TEST(ResolveWindow, ExplicitRequestWinsOverEnvironment) {
  const test::ScopedEnv env("CCASTREAM_WINDOW", "5");
  EXPECT_EQ(resolve_window(3), 3u);
  EXPECT_EQ(resolve_window(0), 5u);
}

TEST(ResolveWindow, RejectsMalformedEnvValues) {
  for (const char* bad : {"0", "-3", "2x", "", "1000001"}) {
    const test::ScopedEnv env("CCASTREAM_WINDOW", bad);
    EXPECT_EQ(resolve_window(0), 0u) << "value '" << bad << "'";
  }
  const test::ScopedEnv unset("CCASTREAM_WINDOW", nullptr);
  EXPECT_EQ(resolve_window(0), 0u);
}

TEST(Rmat, GeneratesSkewedGraph) {
  RmatParams p;
  p.scale = 8;   // 256 vertices
  p.num_edges = 4096;
  const auto edges = generate_rmat(p);
  EXPECT_EQ(edges.size(), 4096u);
  std::map<std::uint64_t, std::uint64_t> degree;
  for (const auto& e : edges) {
    EXPECT_LT(e.src, 256u);
    EXPECT_LT(e.dst, 256u);
    EXPECT_NE(e.src, e.dst);
    ++degree[e.src];
  }
  // Skew: the hottest vertex should far exceed the mean degree (16).
  std::uint64_t dmax = 0;
  for (const auto& [v, d] : degree) dmax = std::max(dmax, d);
  EXPECT_GT(dmax, 48u);
}

TEST(Rmat, DefaultEdgeCountIsGraph500Density) {
  RmatParams p;
  p.scale = 6;
  const auto edges = generate_rmat(p);
  EXPECT_EQ(edges.size(), 16u * 64u);
}

}  // namespace
}  // namespace ccastream::wl
