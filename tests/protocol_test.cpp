// Unit + property tests: the insert-edge / ghost-allocation protocol
// building the RPVO structure (paper Listings 4 & 6, Figures 1, 3, 4).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "test_util.hpp"

namespace ccastream::graph {
namespace {

using rt::GlobalAddress;
using test::small_chip_config;

struct Fixture {
  explicit Fixture(std::uint32_t edge_capacity = 4, std::uint64_t nverts = 8,
                   sim::ChipConfig cfg = small_chip_config()) {
    chip = std::make_unique<sim::Chip>(cfg);
    RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<GraphProtocol>(*chip, rc);
    GraphConfig gc;
    gc.num_vertices = nverts;
    g = std::make_unique<StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<GraphProtocol> proto;
  std::unique_ptr<StreamingGraph> g;
};

TEST(Protocol, SingleEdgeInsert) {
  Fixture f;
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 5}});
  EXPECT_EQ(f.g->stored_degree(0), 1u);
  EXPECT_EQ(f.g->stored_degree(1), 0u);
  const auto nbrs = f.g->neighbors(0);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0].first, 1u);
  EXPECT_EQ(nbrs[0].second, 5u);
  EXPECT_EQ(f.proto->stats().edges_inserted, 1u);
  EXPECT_EQ(f.proto->stats().ghost_allocs_started, 0u);
}

TEST(Protocol, FillWithinCapacityNeedsNoGhost) {
  Fixture f(/*edge_capacity=*/4);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 4; ++i) edges.push_back({0, 1 + i, 1});
  f.g->stream_increment(edges);
  EXPECT_EQ(f.g->stored_degree(0), 4u);
  EXPECT_EQ(f.g->fragments_of(0).size(), 1u);  // root only
  EXPECT_EQ(f.proto->stats().ghost_allocs_started, 0u);
}

TEST(Protocol, OverflowAllocatesGhostChain) {
  Fixture f(/*edge_capacity=*/4);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 10; ++i) edges.push_back({0, (1 + i) % 8, 1});
  f.g->stream_increment(edges);
  EXPECT_EQ(f.g->stored_degree(0), 10u);
  // 10 edges at capacity 4: root + at least 2 ghosts.
  EXPECT_GE(f.g->fragments_of(0).size(), 3u);
  EXPECT_GE(f.proto->stats().ghost_links_made, 2u);
  EXPECT_EQ(f.proto->stats().ghost_alloc_failures, 0u);
}

TEST(Protocol, GhostLearnsIdentity) {
  Fixture f(/*edge_capacity=*/2);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 5; ++i) edges.push_back({3, (i + 4) % 8, 1});
  f.g->stream_increment(edges);
  const auto frags = f.g->fragments_of(3);
  ASSERT_GE(frags.size(), 2u);
  for (const auto addr : frags) {
    const auto* frag = f.chip->as<VertexFragment>(addr);
    EXPECT_EQ(frag->vid, 3u);
    EXPECT_EQ(frag->root, frags[0]);
  }
  const auto* root = f.chip->as<VertexFragment>(frags[0]);
  EXPECT_TRUE(root->is_root);
  EXPECT_EQ(root->inserts_seen, 5u);  // every insert passes the root
}

TEST(Protocol, VicinityGhostsStayClose) {
  auto cfg = small_chip_config();
  cfg.alloc_policy = rt::AllocPolicyKind::kVicinity;
  cfg.vicinity_radius = 2;
  Fixture f(2, 8, cfg);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 12; ++i) edges.push_back({0, 1 + (i % 7), 1});
  f.g->stream_increment(edges);
  const auto frags = f.g->fragments_of(0);
  ASSERT_GE(frags.size(), 2u);
  // Every ghost is within 2 hops of the fragment that allocated it, hence
  // within 2 * (chain position) of the root.
  for (std::size_t i = 1; i < frags.size(); ++i) {
    EXPECT_LE(f.chip->geometry().hops(frags[i - 1].cc, frags[i].cc), 2u);
  }
}

// Property: edge conservation. Whatever the stream, capacity, fan-out and
// allocation policy, every streamed edge is stored exactly once across the
// destination vertex's fragments.
struct ConservationCase {
  std::uint32_t edge_capacity;
  std::uint32_t ghost_fanout;
  rt::AllocPolicyKind policy;
  std::uint64_t seed;
};

class EdgeConservation : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(EdgeConservation, EveryEdgeStoredExactlyOnce) {
  const auto p = GetParam();
  auto cfg = small_chip_config();
  cfg.alloc_policy = p.policy;
  cfg.seed = p.seed;

  auto chip = std::make_unique<sim::Chip>(cfg);
  RpvoConfig rc;
  rc.edge_capacity = p.edge_capacity;
  rc.ghost_fanout = p.ghost_fanout;
  GraphProtocol proto(*chip, rc);
  GraphConfig gc;
  gc.num_vertices = 32;
  StreamingGraph g(proto, gc);

  rt::Xoshiro256 rng(p.seed);
  std::vector<StreamEdge> edges;
  std::vector<std::uint64_t> expected_degree(32, 0);
  for (int i = 0; i < 600; ++i) {
    const StreamEdge e{rng.below(32), rng.below(32), 1};
    edges.push_back(e);
    ++expected_degree[e.src];
  }
  g.stream_increment(edges);

  ASSERT_TRUE(chip->quiescent());
  EXPECT_EQ(proto.stats().edges_inserted, 600u);
  EXPECT_EQ(proto.stats().ghost_alloc_failures, 0u);
  EXPECT_EQ(proto.stats().bad_targets, 0u);
  for (std::uint64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(g.stored_degree(v), expected_degree[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EdgeConservation,
    ::testing::Values(
        ConservationCase{1, 1, rt::AllocPolicyKind::kVicinity, 11},
        ConservationCase{2, 1, rt::AllocPolicyKind::kVicinity, 12},
        ConservationCase{4, 1, rt::AllocPolicyKind::kRandom, 13},
        ConservationCase{4, 2, rt::AllocPolicyKind::kVicinity, 14},
        ConservationCase{8, 3, rt::AllocPolicyKind::kRandom, 15},
        ConservationCase{16, 1, rt::AllocPolicyKind::kRoundRobin, 16},
        ConservationCase{2, 2, rt::AllocPolicyKind::kLocal, 17},
        ConservationCase{3, 1, rt::AllocPolicyKind::kRandom, 18}));

TEST(Protocol, DeferredInsertsDrainThroughFuture) {
  // Capacity 1 and a burst at one vertex forces the pending-future path:
  // many inserts arrive while the first ghost allocation is in flight.
  Fixture f(/*edge_capacity=*/1);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 16; ++i) edges.push_back({0, 1 + (i % 7), 1});
  f.g->stream_increment(edges);
  EXPECT_EQ(f.g->stored_degree(0), 16u);
  EXPECT_GT(f.proto->stats().inserts_deferred, 0u);
  EXPECT_GT(f.chip->stats().future_waiters_drained, 0u);
  EXPECT_EQ(f.g->fragments_of(0).size(), 16u);  // capacity-1 chain
}

TEST(Protocol, ArenaExhaustionSurfacesAllocFailures) {
  auto cfg = small_chip_config(2);      // 4 cells
  cfg.cc_memory_bytes = 600;            // a handful of fragments per cell
  cfg.alloc_forward_budget = 3;
  Fixture f(/*edge_capacity=*/1, /*nverts=*/4, cfg);
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < 200; ++i) edges.push_back({0, 1 + (i % 3), 1});
  f.g->stream_increment(edges, /*max_cycles=*/200000);
  // The chip must reach quiescence (failures must not wedge the system)...
  EXPECT_TRUE(f.chip->quiescent());
  // ...and the failure is observable, with some edges never stored.
  EXPECT_GT(f.chip->stats().alloc_failures, 0u);
  EXPECT_LT(f.g->stored_degree(0), 200u);
}

TEST(Protocol, SelfEdgesAndDuplicatesAreStored) {
  Fixture f;
  f.g->stream_increment(
      std::vector<StreamEdge>{{2, 2, 1}, {2, 5, 1}, {2, 5, 1}, {2, 5, 2}});
  EXPECT_EQ(f.g->stored_degree(2), 4u);  // multigraph semantics
}

TEST(Protocol, PlacementPoliciesCoverAllCells) {
  for (const auto placement :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kBlocked,
        PlacementPolicy::kRandom}) {
    auto cfg = small_chip_config(4);
    sim::Chip chip(cfg);
    GraphProtocol proto(chip);
    GraphConfig gc;
    gc.num_vertices = 64;
    gc.placement = placement;
    StreamingGraph g(proto, gc);
    std::set<std::uint32_t> cells;
    for (std::uint64_t v = 0; v < 64; ++v) cells.insert(g.root_of(v).cc);
    if (placement == PlacementPolicy::kRandom) {
      EXPECT_GE(cells.size(), 8u);  // probabilistic, loose bound
    } else {
      EXPECT_EQ(cells.size(), 16u);
    }
  }
}

TEST(Protocol, IncrementReportsAddUp) {
  Fixture f;
  std::vector<StreamEdge> inc1{{0, 1, 1}, {1, 2, 1}};
  std::vector<StreamEdge> inc2{{2, 3, 1}, {3, 4, 1}, {4, 5, 1}};
  const auto r1 = f.g->stream_increment(inc1);
  const auto r2 = f.g->stream_increment(inc2);
  EXPECT_EQ(r1.edges, 2u);
  EXPECT_EQ(r2.edges, 3u);
  EXPECT_GT(r1.cycles, 0u);
  EXPECT_GT(r2.cycles, 0u);
  EXPECT_EQ(r1.cycles + r2.cycles, f.chip->stats().cycles);
  EXPECT_GT(r1.energy_uj, 0.0);
}

}  // namespace
}  // namespace ccastream::graph
