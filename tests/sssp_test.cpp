// Streaming SSSP correctness against the Dijkstra oracle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct SsspFixture {
  explicit SsspFixture(std::uint64_t nverts, sim::ChipConfig cfg = small_chip_config(),
                       graph::RpvoConfig rc = {}) {
    chip = std::make_unique<sim::Chip>(cfg);
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    sssp = std::make_unique<StreamingSssp>(*proto);
    sssp->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = StreamingSssp::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<StreamingSssp> sssp;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(StreamingSssp, WeightedPathBeatsHopPath) {
  // 0 -> 1 -> 2 with weights 1+1 beats the direct 0 -> 2 of weight 5.
  SsspFixture f(3);
  f.sssp->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 2, 5}, {0, 1, 1}, {1, 2, 1}});
  EXPECT_EQ(f.sssp->distance_of(*f.g, 1), 1u);
  EXPECT_EQ(f.sssp->distance_of(*f.g, 2), 2u);
}

TEST(StreamingSssp, LaterCheaperEdgeImprovesDistance) {
  SsspFixture f(3);
  f.sssp->set_source(*f.g, 0);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 10}});
  EXPECT_EQ(f.sssp->distance_of(*f.g, 1), 10u);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 2, 2}, {2, 1, 3}});
  EXPECT_EQ(f.sssp->distance_of(*f.g, 1), 5u);  // improved incrementally
}

TEST(StreamingSssp, UnreachableIsInfinite) {
  SsspFixture f(3);
  f.sssp->set_source(*f.g, 0);
  f.g->stream_increment(std::vector<StreamEdge>{{1, 2, 1}});
  EXPECT_EQ(f.sssp->distance_of(*f.g, 2), StreamingSssp::kUnreached);
}

struct SsspCase {
  std::uint64_t vertices;
  std::uint64_t edges;
  std::uint32_t max_weight;
  std::uint32_t edge_capacity;
  std::uint64_t seed;
};

class SsspEquivalence : public ::testing::TestWithParam<SsspCase> {};

TEST_P(SsspEquivalence, MatchesDijkstraAfterEveryIncrement) {
  const auto p = GetParam();
  auto cfg = small_chip_config();
  cfg.seed = p.seed;
  graph::RpvoConfig rc;
  rc.edge_capacity = p.edge_capacity;
  SsspFixture f(p.vertices, cfg, rc);

  rt::Xoshiro256 rng(p.seed);
  std::vector<StreamEdge> all;
  for (std::uint64_t i = 0; i < p.edges; ++i) {
    all.push_back({rng.below(p.vertices), rng.below(p.vertices),
                   static_cast<std::uint32_t>(1 + rng.below(p.max_weight))});
  }
  const std::uint64_t source = rng.below(p.vertices);
  f.sssp->set_source(*f.g, source);

  std::vector<StreamEdge> so_far;
  const std::size_t half = all.size() / 2;
  for (const auto& inc :
       {std::vector<StreamEdge>(all.begin(), all.begin() + half),
        std::vector<StreamEdge>(all.begin() + half, all.end())}) {
    f.g->stream_increment(inc);
    so_far.insert(so_far.end(), inc.begin(), inc.end());
    const auto ref =
        base::sssp_distances(test::ref_graph_of(p.vertices, so_far), source);
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      const rt::Word want =
          ref[v] == base::kUnreached ? StreamingSssp::kUnreached : ref[v];
      ASSERT_EQ(f.sssp->distance_of(*f.g, v), want)
          << "vertex " << v << " seed " << p.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SsspEquivalence,
    ::testing::Values(SsspCase{16, 60, 10, 4, 21}, SsspCase{32, 150, 5, 2, 22},
                      SsspCase{64, 400, 20, 8, 23}, SsspCase{64, 400, 1, 4, 24},
                      SsspCase{100, 700, 7, 3, 25},
                      SsspCase{48, 200, 100, 1, 26}));

}  // namespace
}  // namespace ccastream::apps
