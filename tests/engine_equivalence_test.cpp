// The event-driven engine's headline guarantee: the active-set engine is
// cycle-for-cycle identical to the full-scan oracle — same cycle count,
// same complete ChipStats counter block, same energy, same activation
// trace, same per-vertex results — across the engine × partition shape ×
// thread count × io_sides matrix, while visiting strictly fewer cells per
// cycle whenever the mesh is not saturated. Shallow FIFOs and a single
// ejection per cycle keep the mesh congested, where a set-maintenance bug
// (a cell activated late, a stale snapshot latch) would surface as a
// divergent counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

using sim::EngineKind;

/// Minimal arena object used as a diffusion target.
class Blob final : public rt::ArenaObject {
 public:
  [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 16; }
};

struct EngineResult {
  std::uint64_t cycles = 0;
  sim::ChipStats stats;
  double energy_pj = 0.0;
  std::vector<rt::Word> levels;  ///< Per-vertex BFS output.
  std::vector<sim::ActivationTrace::Sample> trace;
  std::uint64_t cell_visits = 0;  ///< Engine-dependent by design.
};

/// Everything that must be engine-invariant (cell_visits deliberately
/// excluded — it is the one number the engines are allowed to differ in).
void expect_equivalent(const EngineResult& active, const EngineResult& scan) {
  EXPECT_EQ(active.cycles, scan.cycles);
  EXPECT_EQ(active.stats, scan.stats);  // every ChipStats counter
  EXPECT_EQ(active.energy_pj, scan.energy_pj);
  EXPECT_EQ(active.levels, scan.levels);
  ASSERT_EQ(active.trace.size(), scan.trace.size());
  for (std::size_t i = 0; i < active.trace.size(); ++i) {
    EXPECT_EQ(active.trace[i].active, scan.trace[i].active) << "cycle " << i;
    EXPECT_EQ(active.trace[i].live, scan.trace[i].live) << "cycle " << i;
  }
}

EngineResult run_bfs(EngineKind engine, const char* partition,
                     std::uint32_t threads, std::uint8_t io_sides,
                     std::uint32_t dense_pct = 0) {
  sim::ChipConfig cfg;
  cfg.width = 12;
  cfg.height = 12;
  cfg.fifo_depth = 2;
  cfg.ejections_per_cycle = 1;
  cfg.io_sides = io_sides;
  cfg.threads = threads;
  cfg.partition = *sim::PartitionSpec::parse(partition);
  cfg.engine = engine;
  cfg.dense_threshold_pct = dense_pct;
  cfg.record_activation = true;
  cfg.seed = 99;
  sim::Chip chip(cfg);
  EXPECT_EQ(chip.engine(), engine);

  graph::GraphProtocol proto(chip);
  apps::StreamingBfs bfs(proto);
  bfs.install();
  graph::GraphConfig gc;
  gc.num_vertices = 240;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(proto, gc);
  bfs.set_source(g, 0);
  const auto sched = wl::make_graphchallenge_like(240, 4'000,
                                                  wl::SamplingKind::kEdge,
                                                  /*increments=*/3, 99);
  for (const auto& inc : sched.increments) g.stream_increment(inc);
  EXPECT_TRUE(chip.quiescent());

  EngineResult r;
  r.cycles = chip.stats().cycles;
  r.stats = chip.stats();
  r.energy_pj = chip.energy_pj();
  for (std::uint64_t v = 0; v < 240; ++v) r.levels.push_back(bfs.level_of(g, v));
  r.trace = chip.activation().samples();
  r.cell_visits = chip.cell_visits();
  return r;
}

// The acceptance matrix: engine × {rows, cols, tiles+rebalance} ×
// {1, 2, 4} threads × {north/south, west/east} IO, every cell compared
// against the scan-serial oracle of its io_sides group.
TEST(EngineEquivalence, MatrixIsCycleIdenticalToScanOracle) {
  for (const std::uint8_t io_sides :
       {static_cast<std::uint8_t>(sim::kIoNorth | sim::kIoSouth),
        static_cast<std::uint8_t>(sim::kIoWest | sim::kIoEast)}) {
    SCOPED_TRACE("io_sides = " + std::to_string(io_sides));
    const EngineResult oracle =
        run_bfs(EngineKind::kScan, "rows", 1, io_sides);
    ASSERT_GT(oracle.cycles, 0u);
    ASSERT_GT(oracle.stats.stage_stalls, 0u) << "config failed to congest";

    for (const char* partition : {"rows", "cols", "tiles+rebalance"}) {
      for (const std::uint32_t threads : {1u, 2u, 4u}) {
        for (const EngineKind engine :
             {EngineKind::kScan, EngineKind::kActive}) {
          SCOPED_TRACE(std::string("partition = ") + partition +
                       ", threads = " + std::to_string(threads) +
                       ", engine = " + std::string(sim::to_string(engine)));
          const EngineResult r = run_bfs(engine, partition, threads, io_sides);
          expect_equivalent(r, oracle);
          if (engine == EngineKind::kActive) {
            // The refactor's point: the same simulation, fewer visits.
            EXPECT_LT(r.cell_visits, oracle.cell_visits);
          } else {
            EXPECT_EQ(r.cell_visits, oracle.cell_visits)
                << "scan visits every cell every cycle, whatever the shape";
          }
        }
      }
    }
  }
}

// The hybrid's threshold dimension: whatever dense threshold the chip runs
// under — 1 (dense from the first live cell), the default band, or 1000
// (pinned sparse, the pre-hybrid engine) — the run stays cycle-identical
// to the scan oracle, and never visits more cells than it. The dense mode
// rides the same congested workload as the matrix above, on both the
// serial and the most complex threaded decomposition.
TEST(EngineEquivalence, HybridThresholdSweepMatchesOracle) {
  const auto io_sides = static_cast<std::uint8_t>(sim::kIoNorth | sim::kIoSouth);
  const EngineResult oracle = run_bfs(EngineKind::kScan, "rows", 1, io_sides);
  ASSERT_GT(oracle.cycles, 0u);
  for (const std::uint32_t pct : {1u, 40u, 1000u}) {
    for (const auto& [partition, threads] :
         {std::pair{"rows", 1u}, std::pair{"tiles+rebalance", 4u}}) {
      SCOPED_TRACE(std::string("dense_pct = ") + std::to_string(pct) +
                   ", partition = " + partition +
                   ", threads = " + std::to_string(threads));
      const EngineResult r =
          run_bfs(EngineKind::kActive, partition, threads, io_sides, pct);
      expect_equivalent(r, oracle);
      // Even fully dense partitions walk only their rectangles, so the
      // hybrid can never exceed the scan engine's visit bill.
      EXPECT_LE(r.cell_visits, oracle.cell_visits);
    }
  }
}

// The large-mesh leg: the SoA layout's dense-mode walks are 64-cell bitmap
// word sweeps over per-row spans, so meshes whose partition rectangles
// start and end mid-word are where a masking bug would live — unreachable
// on the 12x12 matrix above. 128x128 (256 bitmap words, threaded tile
// rectangles with word-unaligned row spans) runs in the default suite;
// CCASTREAM_STRESS=1 upgrades the leg to the full 512x512 acceptance mesh.
EngineResult run_large_bfs(EngineKind engine, std::uint32_t dim,
                           const char* partition, std::uint32_t threads,
                           std::uint32_t dense_pct) {
  sim::ChipConfig cfg;
  cfg.width = dim;
  cfg.height = dim;
  cfg.threads = threads;
  cfg.partition = *sim::PartitionSpec::parse(partition);
  cfg.engine = engine;
  cfg.dense_threshold_pct = dense_pct;
  cfg.record_activation = true;
  cfg.seed = 7 + dim;
  sim::Chip chip(cfg);

  graph::GraphProtocol proto(chip);
  apps::StreamingBfs bfs(proto);
  bfs.install();
  const std::uint64_t n = dim == 128 ? 2'048 : 8'192;
  graph::GraphConfig gc;
  gc.num_vertices = n;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(proto, gc);
  bfs.set_source(g, 0);
  const auto sched = wl::make_graphchallenge_like(n, 6 * n,
                                                  wl::SamplingKind::kEdge,
                                                  /*increments=*/1, cfg.seed);
  g.stream_increment(sched.increments[0], /*max_cycles=*/200'000'000);
  EXPECT_TRUE(chip.quiescent());

  EngineResult r;
  r.cycles = chip.stats().cycles;
  r.stats = chip.stats();
  r.energy_pj = chip.energy_pj();
  for (std::uint64_t v = 0; v < n; ++v) r.levels.push_back(bfs.level_of(g, v));
  r.trace = chip.activation().samples();
  r.cell_visits = chip.cell_visits();
  return r;
}

TEST(EngineEquivalence, LargeMeshMatchesScanOracle) {
  const char* stress = std::getenv("CCASTREAM_STRESS");
  const std::uint32_t dim =
      (stress != nullptr && *stress != '\0' && *stress != '0') ? 512u : 128u;
  SCOPED_TRACE("mesh = " + std::to_string(dim) + "x" + std::to_string(dim));
  const EngineResult oracle = run_large_bfs(EngineKind::kScan, dim, "rows", 1, 0);
  ASSERT_GT(oracle.cycles, 0u);

  struct Leg {
    const char* partition;
    std::uint32_t threads;
    std::uint32_t dense_pct;
  };
  // Sparse serial, sparse threaded tiles (word-unaligned rectangle spans),
  // and pinned-dense threaded tiles (every phase a full bitmap word sweep).
  for (const Leg leg : {Leg{"rows", 1, 0}, Leg{"tiles+rebalance", 4, 0},
                        Leg{"tiles+rebalance", 4, 1}}) {
    SCOPED_TRACE(std::string("partition = ") + leg.partition +
                 ", threads = " + std::to_string(leg.threads) +
                 ", dense_pct = " + std::to_string(leg.dense_pct));
    const EngineResult r = run_large_bfs(EngineKind::kActive, dim,
                                         leg.partition, leg.threads,
                                         leg.dense_pct);
    expect_equivalent(r, oracle);
    EXPECT_LE(r.cell_visits, oracle.cell_visits);
  }
}

// Host-side injection paths (inject_local seeding, inject_via network
// entry, io_enqueue) all feed the active set correctly: a diffusion seeded
// through each path must match the scan engine exactly. This is the
// step()-driven variant, so engine switching inside step() is covered too.
TEST(EngineEquivalence, AllInjectionPathsMatchUnderStepping) {
  auto run = [](EngineKind engine) {
    sim::ChipConfig cfg = test::small_chip_config();
    cfg.threads = 2;
    cfg.engine = engine;
    sim::Chip chip(cfg);
    const auto tgt = *chip.host_allocate(17, std::make_unique<Blob>());
    const rt::HandlerId fan = chip.handlers().register_handler(
        "fan", [tgt](rt::Context& ctx, const rt::Action& a) {
          if (a.args[0] > 0) {
            for (int i = 0; i < 3; ++i) {
              ctx.propagate(rt::make_action(a.handler, tgt, a.args[0] - 1));
            }
          }
        });
    chip.inject_local(rt::make_action(fan, tgt, rt::Word{4}));
    chip.inject_via(0, rt::make_action(fan, tgt, rt::Word{3}));
    chip.io_enqueue(rt::make_action(fan, tgt, rt::Word{2}));
    std::uint64_t steps = 0;
    while (!chip.quiescent() && steps < 100'000) {
      chip.step();
      ++steps;
    }
    EXPECT_TRUE(chip.quiescent());
    return std::pair{steps, chip.stats()};
  };
  const auto [scan_steps, scan_stats] = run(EngineKind::kScan);
  const auto [active_steps, active_stats] = run(EngineKind::kActive);
  EXPECT_EQ(active_steps, scan_steps);
  EXPECT_EQ(active_stats, scan_stats);
}

// CCASTREAM_ENGINE grammar: explicit config wins, parse round-trips, and
// garbage is rejected.
TEST(EngineEquivalence, EngineSpecParsesAndResolves) {
  EXPECT_EQ(sim::parse_engine("scan"), EngineKind::kScan);
  EXPECT_EQ(sim::parse_engine("active"), EngineKind::kActive);
  for (const char* bad : {"", "Active", "scan ", "fast", "event"}) {
    EXPECT_FALSE(sim::parse_engine(bad).has_value()) << bad;
  }
  EXPECT_EQ(sim::to_string(EngineKind::kScan), "scan");
  EXPECT_EQ(sim::to_string(EngineKind::kActive), "active");
  EXPECT_EQ(sim::resolve_engine(EngineKind::kActive), EngineKind::kActive);
  EXPECT_EQ(sim::resolve_engine(EngineKind::kScan), EngineKind::kScan);
}

}  // namespace
}  // namespace ccastream
