// Unit tests: global addresses, action packing, mesh geometry, RNGs.
#include <gtest/gtest.h>

#include <set>

#include "runtime/action.hpp"
#include "runtime/geometry.hpp"
#include "runtime/rng.hpp"
#include "runtime/types.hpp"

namespace ccastream::rt {
namespace {

TEST(GlobalAddress, DefaultIsNull) {
  GlobalAddress a;
  EXPECT_TRUE(a.is_null());
  EXPECT_TRUE(kNullAddress.is_null());
}

TEST(GlobalAddress, PackUnpackRoundTrip) {
  const GlobalAddress a{12345, 67890};
  EXPECT_EQ(GlobalAddress::unpack(a.pack()), a);
  EXPECT_EQ(GlobalAddress::unpack(kNullAddress.pack()), kNullAddress);
  EXPECT_TRUE(GlobalAddress::unpack(kNullAddress.pack()).is_null());
}

TEST(GlobalAddress, EqualityAndHash) {
  const GlobalAddress a{1, 2}, b{1, 2}, c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(std::hash<GlobalAddress>{}(a), std::hash<GlobalAddress>{}(b));
}

TEST(Action, MakeActionPacksOperands) {
  const GlobalAddress t{3, 4};
  const Action a = make_action(HandlerId{7}, t, Word{10}, Word{20}, Word{30});
  EXPECT_EQ(a.handler, 7);
  EXPECT_EQ(a.target, t);
  EXPECT_EQ(a.nargs, 3);
  EXPECT_EQ(a.args[0], 10u);
  EXPECT_EQ(a.args[1], 20u);
  EXPECT_EQ(a.args[2], 30u);
}

TEST(Action, MakeActionNoOperands) {
  const Action a = make_action(HandlerId{1}, GlobalAddress{0, 0});
  EXPECT_EQ(a.nargs, 0);
}

TEST(MeshGeometry, IndexCoordRoundTrip) {
  const MeshGeometry m(5, 7);
  EXPECT_EQ(m.cell_count(), 35u);
  for (std::uint32_t i = 0; i < m.cell_count(); ++i) {
    EXPECT_EQ(m.index_of(m.coord_of(i)), i);
    EXPECT_TRUE(m.contains(m.coord_of(i)));
  }
  EXPECT_FALSE(m.contains(Coord{5, 0}));
  EXPECT_FALSE(m.contains(Coord{0, 7}));
}

TEST(MeshGeometry, ManhattanHops) {
  const MeshGeometry m(8, 8);
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(m.index_of({0, 0}), m.index_of({7, 7})), 14u);
  EXPECT_EQ(m.hops(m.index_of({3, 2}), m.index_of({1, 5})), 5u);
  // Symmetry.
  for (std::uint32_t a = 0; a < m.cell_count(); a += 7) {
    for (std::uint32_t b = 0; b < m.cell_count(); b += 5) {
      EXPECT_EQ(m.hops(a, b), m.hops(b, a));
    }
  }
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, XoshiroBelowStaysInBounds) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, XoshiroBelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // LLN sanity
}

TEST(Rng, BernoulliRespectsP) {
  Xoshiro256 rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace ccastream::rt
