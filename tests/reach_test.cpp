// Bit-parallel multi-source reachability vs per-source BFS oracles.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct ReachFixture {
  explicit ReachFixture(std::uint64_t nverts, std::uint32_t rhizomes = 1,
                        std::uint32_t edge_capacity = 4) {
    chip = std::make_unique<sim::Chip>(small_chip_config());
    graph::RpvoConfig rc;
    rc.edge_capacity = edge_capacity;
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    reach = std::make_unique<MultiSourceReach>(*proto);
    reach->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.rhizomes = rhizomes;
    gc.root_init = MultiSourceReach::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<MultiSourceReach> reach;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(MultiSourceReach, TwoSourcesOnAPath) {
  ReachFixture f(5);
  f.reach->add_source(*f.g, 0, 0);
  f.reach->add_source(*f.g, 3, 1);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  // Source 0 reaches everything; source 1 (at vertex 3) reaches only 3, 4.
  for (std::uint64_t v = 0; v < 5; ++v) EXPECT_TRUE(f.reach->reached(*f.g, v, 0));
  EXPECT_FALSE(f.reach->reached(*f.g, 2, 1));
  EXPECT_TRUE(f.reach->reached(*f.g, 3, 1));
  EXPECT_TRUE(f.reach->reached(*f.g, 4, 1));
  EXPECT_EQ(f.reach->reach_count(*f.g, 4), 2u);
}

TEST(MultiSourceReach, HighSourceIndexUsesUpperWords) {
  ReachFixture f(3);
  f.reach->add_source(*f.g, 0, 255);  // last bit of word 3
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}});
  EXPECT_TRUE(f.reach->reached(*f.g, 2, 255));
  EXPECT_FALSE(f.reach->reached(*f.g, 2, 254));
}

TEST(MultiSourceReach, SourceIndexOutOfRangeThrows) {
  ReachFixture f(2);
  EXPECT_THROW(f.reach->add_source(*f.g, 0, 256), std::out_of_range);
}

TEST(MultiSourceReach, LateEdgeExtendsReachability) {
  ReachFixture f(4);
  f.reach->add_source(*f.g, 0, 7);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {2, 3, 1}});
  EXPECT_FALSE(f.reach->reached(*f.g, 3, 7));
  f.g->stream_increment(std::vector<StreamEdge>{{1, 2, 1}});  // bridge
  EXPECT_TRUE(f.reach->reached(*f.g, 3, 7));
}

struct ReachCase {
  std::uint64_t vertices;
  std::uint64_t edges;
  std::uint32_t sources;
  std::uint32_t rhizomes;
  std::uint32_t edge_capacity;
  std::uint64_t seed;
};

class ReachEquivalence : public ::testing::TestWithParam<ReachCase> {};

TEST_P(ReachEquivalence, MatchesPerSourceBfs) {
  const auto p = GetParam();
  ReachFixture f(p.vertices, p.rhizomes, p.edge_capacity);
  rt::Xoshiro256 rng(p.seed);

  std::vector<std::uint64_t> sources;
  for (std::uint32_t s = 0; s < p.sources; ++s) {
    sources.push_back(rng.below(p.vertices));
    f.reach->add_source(*f.g, sources.back(), s);
  }
  std::vector<StreamEdge> edges;
  for (std::uint64_t i = 0; i < p.edges; ++i) {
    edges.push_back({rng.below(p.vertices), rng.below(p.vertices), 1});
  }
  f.g->stream_increment(edges);

  const auto ref = test::ref_graph_of(p.vertices, edges);
  for (std::uint32_t s = 0; s < p.sources; ++s) {
    const auto levels = base::bfs_levels(ref, sources[s]);
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      ASSERT_EQ(f.reach->reached(*f.g, v, s), levels[v] != base::kUnreached)
          << "vertex " << v << " source " << s << " seed " << p.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReachEquivalence,
    ::testing::Values(ReachCase{32, 120, 8, 1, 4, 1},
                      ReachCase{64, 300, 64, 1, 8, 2},
                      ReachCase{64, 300, 200, 1, 4, 3},
                      ReachCase{32, 150, 16, 2, 4, 4},
                      ReachCase{48, 200, 32, 3, 2, 5},
                      ReachCase{16, 60, 256, 1, 1, 6}));

}  // namespace
}  // namespace ccastream::apps
