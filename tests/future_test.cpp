// Unit + property tests: the future LCO state machine of paper Figure 4.
#include <gtest/gtest.h>

#include "runtime/future.hpp"
#include "runtime/rng.hpp"
#include "test_util.hpp"

namespace ccastream::rt {
namespace {

using test::MockContext;

rt::Action waiter(Word payload) {
  return make_action(HandlerId{9}, kNullAddress, payload);
}

TEST(FutureAddr, LifecycleMatchesFigure4) {
  FutureAddr fut;
  MockContext ctx;

  // State 0: null.
  EXPECT_TRUE(fut.is_empty());
  EXPECT_TRUE(fut.value().is_null());

  // State 1: first insert puts it in pending.
  EXPECT_TRUE(fut.set_pending());
  EXPECT_TRUE(fut.is_pending());

  // State 2: dependent tasks enqueue.
  EXPECT_TRUE(fut.enqueue(waiter(1)));
  EXPECT_TRUE(fut.enqueue(waiter(2)));
  EXPECT_TRUE(fut.enqueue(waiter(3)));
  EXPECT_EQ(fut.pending_tasks(), 3u);

  // State 3: the continuation returns and sets the value.
  const GlobalAddress ghost{5, 17};
  EXPECT_EQ(fut.fulfil(ghost, ctx), 3);
  EXPECT_TRUE(fut.is_ready());
  EXPECT_EQ(fut.value(), ghost);

  // State 4: tasks scheduled, queue emptied, targets patched.
  EXPECT_EQ(fut.pending_tasks(), 0u);
  ASSERT_EQ(ctx.scheduled.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ctx.scheduled[i].target, ghost);
    EXPECT_EQ(ctx.scheduled[i].args[0], i + 1);
  }
}

TEST(FutureAddr, SetPendingOnlyFromEmpty) {
  FutureAddr fut;
  MockContext ctx;
  EXPECT_TRUE(fut.set_pending());
  EXPECT_FALSE(fut.set_pending());  // already pending
  fut.fulfil(GlobalAddress{1, 1}, ctx);
  EXPECT_FALSE(fut.set_pending());  // already ready
}

TEST(FutureAddr, EnqueueRequiresPending) {
  FutureAddr fut;
  MockContext ctx;
  EXPECT_FALSE(fut.enqueue(waiter(0)));  // empty: nothing in flight
  fut.set_pending();
  EXPECT_TRUE(fut.enqueue(waiter(0)));
  fut.fulfil(GlobalAddress{1, 1}, ctx);
  EXPECT_FALSE(fut.enqueue(waiter(1)));  // ready: callers read the value
}

TEST(FutureAddr, DoubleFulfilIsAFault) {
  FutureAddr fut;
  MockContext ctx;
  fut.set_pending();
  EXPECT_EQ(fut.fulfil(GlobalAddress{1, 1}, ctx), 0);
  EXPECT_EQ(fut.fulfil(GlobalAddress{2, 2}, ctx), -1);
  EXPECT_EQ(fut.value(), (GlobalAddress{1, 1}));  // first value sticks
}

TEST(FutureAddr, FulfilWithNullStillDrains) {
  FutureAddr fut;
  MockContext ctx;
  fut.set_pending();
  fut.enqueue(waiter(1));
  EXPECT_EQ(fut.fulfil(kNullAddress, ctx), 1);
  ASSERT_EQ(ctx.scheduled.size(), 1u);
  EXPECT_TRUE(ctx.scheduled[0].target.is_null());
}

TEST(FutureAddr, MaxQueueDepthTracksHighWater) {
  FutureAddr fut;
  MockContext ctx;
  fut.set_pending();
  for (int i = 0; i < 7; ++i) fut.enqueue(waiter(i));
  fut.fulfil(GlobalAddress{0, 0}, ctx);
  EXPECT_EQ(fut.max_queue_depth(), 7u);
}

// Property: whatever interleaving of enqueues happens before fulfilment, no
// waiter is ever lost and every waiter is retargeted to the value.
class FutureInterleaving : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FutureInterleaving, NoLostWakeups) {
  Xoshiro256 rng(GetParam());
  FutureAddr fut;
  MockContext ctx;
  fut.set_pending();

  const int n = static_cast<int>(rng.below(64));
  int enqueued = 0;
  for (int i = 0; i < n; ++i) {
    if (fut.enqueue(waiter(i))) ++enqueued;
  }
  const GlobalAddress value{static_cast<std::uint32_t>(rng.below(100)),
                            static_cast<std::uint32_t>(rng.below(100))};
  EXPECT_EQ(fut.fulfil(value, ctx), enqueued);
  EXPECT_EQ(ctx.scheduled.size(), static_cast<std::size_t>(enqueued));
  for (const auto& a : ctx.scheduled) EXPECT_EQ(a.target, value);
  // Late arrivals see the value instead of queueing.
  EXPECT_FALSE(fut.enqueue(waiter(999)));
  EXPECT_EQ(fut.value(), value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FutureInterleaving,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ccastream::rt
