// The dense/sparse hybrid of the (now default) active-set engine and its
// memory story:
//   * resolution — `active` is the default engine, CCASTREAM_ENGINE=scan
//     still selects the oracle, and the dense threshold resolves from
//     config / CCASTREAM_DENSE_PCT / the 50% default;
//   * the idle-chip memory regression — active-set capacity decays after a
//     burst instead of pinning its high-water for the rest of the run
//     (sparse mode via the shrink policy, dense mode by releasing the
//     vectors outright at the switch);
//   * the dense↔sparse oscillation contract — a workload that flaps
//     between saturated and sparse stays cycle-identical to the scan
//     oracle while the mode actually switches, and the half-threshold
//     hysteresis holds the mode steady while occupancy sits between the
//     exit and entry thresholds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

using sim::EngineKind;

/// Minimal arena object used as a diffusion target.
class Blob final : public rt::ArenaObject {
 public:
  [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 16; }
};

using test::ScopedEnv;

/// Registers the self-spinning handler: each execution burns instruction
/// cycles and, while its countdown lasts, re-propagates to its own cell —
/// so an injected cell stays continuously live for a duration proportional
/// to the countdown, letting tests hold mesh occupancy at a chosen level.
rt::HandlerId install_spin(sim::Chip& chip) {
  return chip.handlers().register_handler(
      "spin", [](rt::Context& ctx, const rt::Action& a) {
        ctx.charge(3);
        if (a.args[0] > 0) {
          ctx.propagate(rt::make_action(
              a.handler, rt::GlobalAddress::unpack(a.args[1]), a.args[0] - 1,
              a.args[1]));
        }
      });
}

/// Allocates a Blob on cell `cc` and injects a spinner with `rounds`
/// self-propagations there.
rt::GlobalAddress seed_spinner(sim::Chip& chip, rt::HandlerId spin,
                               std::uint32_t cc, rt::Word rounds) {
  const auto tgt = *chip.host_allocate(cc, std::make_unique<Blob>());
  chip.inject_local(rt::make_action(spin, tgt, rounds, tgt.pack()));
  return tgt;
}

/// Like seed_spinner, but the action enters the mesh at `entry_cc` and
/// traverses the network to `cc` — so the run pays real hops (and, with
/// multiple partitions, cross-partition traffic) on its way.
void seed_spinner_via(sim::Chip& chip, rt::HandlerId spin,
                      std::uint32_t entry_cc, std::uint32_t cc,
                      rt::Word rounds) {
  const auto tgt = *chip.host_allocate(cc, std::make_unique<Blob>());
  chip.inject_via(entry_cc, rt::make_action(spin, tgt, rounds, tgt.pack()));
}

// `active` is the default engine since the hybrid made it safe there; the
// scan oracle stays one env var away, and the dense threshold resolves
// config > CCASTREAM_DENSE_PCT > 50.
TEST(HybridEngine, DefaultsResolveToActiveHybrid) {
  {
    const ScopedEnv engine("CCASTREAM_ENGINE", nullptr);
    EXPECT_EQ(sim::resolve_engine({}), EngineKind::kActive);
  }
  {
    const ScopedEnv engine("CCASTREAM_ENGINE", "scan");
    EXPECT_EQ(sim::resolve_engine({}), EngineKind::kScan);
  }
  // Explicit config always wins over the environment.
  {
    const ScopedEnv engine("CCASTREAM_ENGINE", "scan");
    EXPECT_EQ(sim::resolve_engine(EngineKind::kActive), EngineKind::kActive);
  }

  EXPECT_EQ(sim::resolve_dense_threshold(37), 37u);
  {
    const ScopedEnv pct("CCASTREAM_DENSE_PCT", nullptr);
    EXPECT_EQ(sim::resolve_dense_threshold(0), sim::kDefaultDenseThresholdPct);
  }
  {
    const ScopedEnv pct("CCASTREAM_DENSE_PCT", "80");
    EXPECT_EQ(sim::resolve_dense_threshold(0), 80u);
    EXPECT_EQ(sim::resolve_dense_threshold(12), 12u);  // config still wins
  }
  {
    // Out-of-range / garbage values fall back to the default.
    const ScopedEnv pct("CCASTREAM_DENSE_PCT", "0");
    EXPECT_EQ(sim::resolve_dense_threshold(0), sim::kDefaultDenseThresholdPct);
  }
}

// The idle-chip memory regression (sparse path): a burst that lights most
// of the mesh while the hybrid is pinned sparse grows the active-set
// vectors to the burst's high-water; sustained low occupancy afterwards
// must decay that capacity instead of pinning it for the rest of the run.
TEST(HybridEngine, ActiveSetCapacityShrinksAfterBurst) {
  sim::ChipConfig cfg = test::small_chip_config(16);  // 256 cells
  cfg.engine = EngineKind::kActive;
  cfg.dense_threshold_pct = 1000;  // pin sparse: exercise the shrink policy
  // Pin a single partition: the capacity floor is per-partition, so the
  // expectations below must not drift with CI's CCASTREAM_THREADS /
  // CCASTREAM_PARTITION matrix.
  cfg.threads = 1;
  cfg.partition = sim::PartitionSpec{};
  sim::Chip chip(cfg);
  const rt::HandlerId spin = install_spin(chip);
  for (std::uint32_t cc = 0; cc < 256; ++cc) seed_spinner(chip, spin, cc, 12);
  chip.run_until_quiescent();

  const std::uint64_t peak = chip.active_set_capacity_peak();
  EXPECT_GE(peak, 256u) << "burst failed to grow the active set";
  EXPECT_EQ(chip.hybrid_dense_cycles(), 0u) << "1000% threshold went dense?";

  // Idle cycles are exactly where capacity used to pin: the set is empty,
  // the vectors keep their burst-sized allocation until the shrink policy
  // fires.
  for (int i = 0; i < 200; ++i) chip.step();
  const std::uint64_t end = chip.active_set_capacity();
  EXPECT_LT(end, peak);
  EXPECT_LE(end, 128u) << "capacity did not decay to the floor";
  EXPECT_EQ(chip.active_set_capacity_peak(), peak) << "peak must be sticky";
}

// The dense path of the same regression: with the default threshold the
// burst crosses into dense (bitmap) mode, which releases the vectors
// outright — saturating the mesh must *free* active-set memory, not grow
// it.
TEST(HybridEngine, DenseSwitchReleasesVectorsAndRunsDenseCycles) {
  sim::ChipConfig cfg = test::small_chip_config();
  cfg.engine = EngineKind::kActive;
  cfg.dense_threshold_pct = 30;
  cfg.threads = 1;  // single partition: occupancy math below assumes it
  cfg.partition = sim::PartitionSpec{};
  sim::Chip chip(cfg);
  const rt::HandlerId spin = install_spin(chip);
  for (std::uint32_t cc = 0; cc < 64; ++cc) seed_spinner(chip, spin, cc, 12);
  chip.run_until_quiescent();

  EXPECT_GE(chip.hybrid_dense_switches(), 2u)
      << "expected at least one dense entry and one exit";
  EXPECT_GT(chip.hybrid_dense_cycles(), 0u);
  EXPECT_EQ(chip.dense_partitions(), 0u) << "drained chip should be sparse";
  // While dense, the membership vectors hold no storage at all; whatever
  // the sparse ramp-in/out left allocated is bounded by the shrink floor's
  // order of magnitude, not the 64-cell burst.
  for (int i = 0; i < 200; ++i) chip.step();
  EXPECT_LE(chip.active_set_capacity(), 128u);
  EXPECT_TRUE(chip.quiescent());
}

/// One dense↔sparse oscillation run: alternating full-mesh bursts and
/// three-cell trickles, everything (cycles, full counter block, energy)
/// returned for engine comparison.
struct OscResult {
  std::uint64_t cycles = 0;
  sim::ChipStats stats;
  double energy_pj = 0.0;

  friend bool operator==(const OscResult&, const OscResult&) = default;
};

OscResult run_oscillation(EngineKind engine, std::uint32_t threads,
                          std::uint32_t dense_pct) {
  sim::ChipConfig cfg;
  cfg.width = 12;
  cfg.height = 12;
  cfg.fifo_depth = 2;
  cfg.ejections_per_cycle = 1;
  cfg.threads = threads;
  cfg.engine = engine;
  cfg.dense_threshold_pct = dense_pct;
  cfg.seed = 4242;
  sim::Chip chip(cfg);
  const rt::HandlerId spin = install_spin(chip);
  for (int round = 0; round < 3; ++round) {
    // Dense burst: every cell lives for a dozen self-propagations.
    for (std::uint32_t cc = 0; cc < 144; ++cc) {
      seed_spinner(chip, spin, cc, 12);
    }
    chip.run_until_quiescent();
    // Sparse trickle: three long-lived cells, reached through the network
    // from a corner entry so the oscillation also pays hops (and, when
    // threaded, cross-partition traffic).
    for (std::uint32_t cc : {5u, 77u, 140u}) {
      seed_spinner_via(chip, spin, /*entry_cc=*/0, cc, 30);
    }
    chip.run_until_quiescent();
  }
  OscResult r;
  r.cycles = chip.stats().cycles;
  r.stats = chip.stats();
  r.energy_pj = chip.energy_pj();
  if (engine == EngineKind::kActive && dense_pct <= 100) {
    // The workload must actually exercise the switch in both directions
    // (one entry + one exit per burst, per partition, at minimum).
    EXPECT_GE(chip.hybrid_dense_switches(), 6u);
    EXPECT_EQ(chip.dense_partitions(), 0u);
  }
  return r;
}

// The oscillation contract: whatever the hybrid's mode schedule does —
// including thresholds that make it switch every burst — the run is
// cycle-identical to the scan oracle, serial and threaded.
TEST(HybridEngine, OscillationIsCycleIdenticalToScanOracle) {
  const OscResult oracle =
      run_oscillation(EngineKind::kScan, 1, sim::kDefaultDenseThresholdPct);
  ASSERT_GT(oracle.cycles, 0u);
  ASSERT_GT(oracle.stats.hops, 0u);
  for (const std::uint32_t threads : {1u, 4u}) {
    for (const std::uint32_t pct : {1u, 40u, 1000u}) {
      SCOPED_TRACE("threads = " + std::to_string(threads) +
                   ", dense_pct = " + std::to_string(pct));
      EXPECT_EQ(run_oscillation(EngineKind::kActive, threads, pct), oracle);
    }
  }
}

// The hysteresis pin: occupancy parked between the exit threshold (half)
// and the entry threshold must hold the current mode — the switch count
// stays at exactly one entry and one exit despite hundreds of in-band
// cycles, and a run that never reaches the entry threshold never switches
// at all.
TEST(HybridEngine, HysteresisHoldsModeInsideTheBand) {
  // 8x8 mesh, one partition: dense_pct 25 => enter at >= 16 live cells,
  // exit below 8.
  constexpr std::uint32_t kPct = 25;

  // Phase A: 10 long spinners (in the (8, 16) band from the start) — the
  // threshold is never reached, so the chip must stay sparse throughout.
  {
    sim::ChipConfig cfg = test::small_chip_config();
    cfg.engine = EngineKind::kActive;
    cfg.dense_threshold_pct = kPct;
    cfg.threads = 1;  // the band arithmetic assumes one 64-cell partition
    cfg.partition = sim::PartitionSpec{};
    sim::Chip chip(cfg);
    const rt::HandlerId spin = install_spin(chip);
    for (std::uint32_t cc = 0; cc < 10; ++cc) seed_spinner(chip, spin, cc, 40);
    chip.run_until_quiescent();
    EXPECT_EQ(chip.hybrid_dense_switches(), 0u);
    EXPECT_EQ(chip.hybrid_dense_cycles(), 0u);
  }

  // Phase B: the same 10 long spinners plus 30 short ones. The short burst
  // crosses the entry threshold (40 live >= 16); when it drains, occupancy
  // falls back to 10 — inside the band — and hysteresis must hold dense
  // until the long spinners die too. Exactly one entry, one exit.
  sim::ChipConfig cfg = test::small_chip_config();
  cfg.engine = EngineKind::kActive;
  cfg.dense_threshold_pct = kPct;
  cfg.threads = 1;
  cfg.partition = sim::PartitionSpec{};
  sim::Chip chip(cfg);
  const rt::HandlerId spin = install_spin(chip);
  for (std::uint32_t cc = 0; cc < 10; ++cc) seed_spinner(chip, spin, cc, 60);
  for (std::uint32_t cc = 10; cc < 40; ++cc) seed_spinner(chip, spin, cc, 4);
  chip.run_until_quiescent();
  EXPECT_EQ(chip.hybrid_dense_switches(), 2u)
      << "mode flapped inside the hysteresis band";
  // The band period dominates the run: the dense stretch must cover far
  // more than the burst itself (~30 cycles), proving the hold.
  EXPECT_GT(chip.hybrid_dense_cycles(), 100u);
  EXPECT_EQ(chip.dense_partitions(), 0u);
}

// The deletion-driven collapse: a bulk ingest pushes the (single) dense
// partition over the entry threshold; mass deletions then drive live
// occupancy down through the hysteresis band, and the engine must exit
// dense mode, end the run sparse, and let the shrink policy decay the
// active-set capacity it rebuilt on the way out — deletions must *return*
// memory, not strand the burst-era high-water.
TEST(HybridEngine, MassDeletionCollapsesDenseToSparseAndShrinks) {
  sim::ChipConfig cfg = test::small_chip_config();  // 8x8
  cfg.engine = EngineKind::kActive;
  cfg.dense_threshold_pct = 20;  // enter dense at >= 12 of 64 live cells
  cfg.threads = 1;  // one partition: the mode counters below assume it
  cfg.partition = sim::PartitionSpec{};
  sim::Chip chip(cfg);
  graph::GraphProtocol proto(chip);
  apps::StreamingBfs bfs(proto);
  bfs.install();
  graph::GraphConfig gc;
  gc.num_vertices = 128;
  gc.root_init = apps::StreamingBfs::initial_state();
  graph::StreamingGraph g(proto, gc);
  bfs.set_source(g, 0);

  // Bulk ingest: 1024 edges flood the 64-cell mesh, crossing into dense.
  wl::SbmParams p;
  p.num_vertices = 128;
  p.num_edges = 1024;
  p.seed = 5;
  const auto edges = wl::simplify(wl::generate_sbm(p));
  g.stream_increment(edges);
  ASSERT_GE(chip.hybrid_dense_switches(), 2u)
      << "ingest never saturated the partition into dense mode";

  // Mass deletion: every live pair goes, in four delete-heavy increments.
  // Each one runs the four-phase repair and quiesces; as the graph thins
  // out the dense episodes must keep terminating in a sparse exit.
  std::vector<StreamEdge> doomed;
  doomed.reserve(edges.size());
  for (const auto& e : edges) doomed.push_back(make_delete_edge(e.src, e.dst));
  const std::size_t chunk = (doomed.size() + 3) / 4;
  for (std::size_t i = 0; i < doomed.size(); i += chunk) {
    const std::size_t n = std::min(chunk, doomed.size() - i);
    g.stream_increment(std::span<const StreamEdge>(doomed.data() + i, n));
  }
  for (std::uint64_t v = 0; v < 128; ++v) ASSERT_EQ(g.stored_degree(v), 0u);
  EXPECT_EQ(bfs.level_of(g, 0), 0u);  // only the source survives

  ASSERT_TRUE(chip.quiescent());
  EXPECT_EQ(chip.dense_partitions(), 0u)
      << "drained chip is still dense: the deletion wave never exited";
  EXPECT_EQ(chip.hybrid_dense_switches() % 2, 0u);  // every entry exited

  // The memory half of the regression: idle settle after the collapse must
  // decay whatever sparse-mode capacity the repair waves rebuilt.
  const std::uint64_t peak = chip.active_set_capacity_peak();
  for (int i = 0; i < 200; ++i) chip.step();
  const std::uint64_t end = chip.active_set_capacity();
  EXPECT_LE(end, 128u) << "capacity did not decay to the floor";
  if (peak > 128u) {
    EXPECT_LT(end, peak);
  }
}

// Rebalancing moves cells between partitions mid-run; the hybrid state
// (mode, counts, vectors) must survive the relayout with results — and the
// active-set invariant — intact. This is the oscillation workload on a
// rebalancing tile decomposition, stepped through repeated increments.
TEST(HybridEngine, SurvivesRebalancingLayoutsUnchanged) {
  auto run = [](EngineKind engine) {
    sim::ChipConfig cfg;
    cfg.width = 12;
    cfg.height = 12;
    cfg.threads = 4;
    cfg.partition = *sim::PartitionSpec::parse("tiles+rebalance");
    cfg.engine = engine;
    cfg.dense_threshold_pct = 20;
    cfg.seed = 11;
    sim::Chip chip(cfg);
    const rt::HandlerId spin = install_spin(chip);
    for (int round = 0; round < 4; ++round) {
      // Skewed bursts (top-left corner) so rebalancing actually moves
      // boundaries between the run calls.
      for (std::uint32_t y = 0; y < 6; ++y) {
        for (std::uint32_t x = 0; x < 6; ++x) {
          seed_spinner(chip, spin, y * 12 + x, 10);
        }
      }
      chip.run_until_quiescent();
    }
    return std::pair{chip.stats(), chip.partition_rebalances()};
  };
  const auto [scan_stats, scan_moves] = run(EngineKind::kScan);
  const auto [active_stats, active_moves] = run(EngineKind::kActive);
  EXPECT_EQ(active_stats, scan_stats);
  EXPECT_EQ(active_moves, scan_moves);
}

}  // namespace
}  // namespace ccastream
