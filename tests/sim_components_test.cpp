// Unit tests for the smaller sim components: IO system construction and
// distribution, the energy model arithmetic, and ChipStats deltas.
#include <gtest/gtest.h>

#include "runtime/geometry.hpp"
#include "sim/energy.hpp"
#include "sim/io_channel.hpp"
#include "sim/stats.hpp"

namespace ccastream::sim {
namespace {

TEST(IoSystem, SideSelectionControlsCellCount) {
  const rt::MeshGeometry mesh(8, 6);
  EXPECT_EQ(IoSystem(mesh, kIoWest).cell_count(), 6u);
  EXPECT_EQ(IoSystem(mesh, kIoEast).cell_count(), 6u);
  EXPECT_EQ(IoSystem(mesh, kIoNorth).cell_count(), 8u);
  EXPECT_EQ(IoSystem(mesh, kIoSouth).cell_count(), 8u);
  EXPECT_EQ(IoSystem(mesh, kIoWest | kIoEast).cell_count(), 12u);
  EXPECT_EQ(IoSystem(mesh, kIoNorth | kIoSouth).cell_count(), 16u);
  EXPECT_EQ(IoSystem(mesh, kIoWest | kIoEast | kIoNorth | kIoSouth).cell_count(),
            28u);
}

TEST(IoSystem, NoSidesFallsBackToOneCell) {
  const rt::MeshGeometry mesh(4, 4);
  IoSystem io(mesh, 0);
  EXPECT_EQ(io.cell_count(), 1u);  // degenerate config still streams
}

TEST(IoSystem, CellsAttachToBorderCells) {
  const rt::MeshGeometry mesh(5, 4);
  IoSystem io(mesh, kIoNorth | kIoSouth);
  for (std::size_t i = 0; i < io.cell_count(); ++i) {
    const auto c = mesh.coord_of(io.cell(i).attached_cc);
    EXPECT_TRUE(c.y == 0 || c.y == 3) << "io cell attached to interior cell";
  }
}

TEST(IoSystem, EnqueueRoundRobins) {
  const rt::MeshGeometry mesh(4, 4);
  IoSystem io(mesh, kIoWest);  // 4 cells
  for (int i = 0; i < 10; ++i) io.enqueue(rt::Action{});
  EXPECT_EQ(io.pending(), 10u);
  EXPECT_EQ(io.cell(0).pending.size(), 3u);
  EXPECT_EQ(io.cell(1).pending.size(), 3u);
  EXPECT_EQ(io.cell(2).pending.size(), 2u);
  EXPECT_EQ(io.cell(3).pending.size(), 2u);
  EXPECT_FALSE(io.drained());
}

TEST(IoSystem, EnqueueAtTargetsSpecificCell) {
  const rt::MeshGeometry mesh(4, 4);
  IoSystem io(mesh, kIoWest);
  io.enqueue_at(2, rt::Action{});
  io.enqueue_at(6, rt::Action{});  // wraps modulo cell count
  EXPECT_EQ(io.cell(2).pending.size(), 2u);
}

TEST(EnergyModel, TotalIsLinearInEvents) {
  EnergyModel m;
  EnergyEvents e;
  EXPECT_DOUBLE_EQ(total_pj(m, e), 0.0);
  e.instructions = 10;
  e.hops = 5;
  e.stages = 3;
  e.deliveries = 2;
  e.allocations = 1;
  e.io_injections = 4;
  const double expect = 10 * m.instruction_pj + 5 * m.hop_pj + 3 * m.stage_pj +
                        2 * m.delivery_pj + 1 * m.allocation_pj +
                        4 * m.io_injection_pj;
  EXPECT_DOUBLE_EQ(total_pj(m, e), expect);
  // Doubling every count doubles the energy.
  EnergyEvents e2 = e;
  e2.instructions *= 2;
  e2.hops *= 2;
  e2.stages *= 2;
  e2.deliveries *= 2;
  e2.allocations *= 2;
  e2.io_injections *= 2;
  EXPECT_DOUBLE_EQ(total_pj(m, e2), 2 * expect);
}

TEST(EnergyModel, UnitConversions) {
  EXPECT_DOUBLE_EQ(pj_to_uj(1e6), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_us(22000), 22.0);       // 1 GHz
  EXPECT_DOUBLE_EQ(cycles_to_us(22000, 2.0), 11.0);  // 2 GHz
}

TEST(ChipStats, DeltaSubtractsEveryCounter) {
  ChipStats a;
  a.cycles = 100;
  a.actions_created = 50;
  a.actions_executed = 40;
  a.instructions = 200;
  a.hops = 300;
  a.deliveries = 30;
  a.total_delivery_latency = 900;
  ChipStats b = a;
  b.cycles = 150;
  b.actions_created = 80;
  b.actions_executed = 70;
  b.instructions = 260;
  b.hops = 450;
  b.deliveries = 45;
  b.total_delivery_latency = 1500;

  const ChipStats d = b.delta_since(a);
  EXPECT_EQ(d.cycles, 50u);
  EXPECT_EQ(d.actions_created, 30u);
  EXPECT_EQ(d.actions_executed, 30u);
  EXPECT_EQ(d.instructions, 60u);
  EXPECT_EQ(d.hops, 150u);
  EXPECT_EQ(d.deliveries, 15u);
  EXPECT_DOUBLE_EQ(d.mean_delivery_latency(), 600.0 / 15.0);
  EXPECT_DOUBLE_EQ(d.mean_hops(), 10.0);
}

TEST(ChipStats, MeansAreZeroWhenNothingDelivered) {
  const ChipStats s;
  EXPECT_DOUBLE_EQ(s.mean_delivery_latency(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_hops(), 0.0);
}

TEST(ChipStats, EnergyEventsViewMatchesCounters) {
  ChipStats s;
  s.instructions = 7;
  s.hops = 8;
  s.messages_staged = 9;
  s.deliveries = 10;
  s.allocations = 11;
  s.io_injections = 12;
  const auto e = s.energy_events();
  EXPECT_EQ(e.instructions, 7u);
  EXPECT_EQ(e.hops, 8u);
  EXPECT_EQ(e.stages, 9u);
  EXPECT_EQ(e.deliveries, 10u);
  EXPECT_EQ(e.allocations, 11u);
  EXPECT_EQ(e.io_injections, 12u);
}

}  // namespace
}  // namespace ccastream::sim
