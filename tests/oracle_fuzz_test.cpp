// Randomized oracle cross-checks: ~20 seeded random instances mixing
// R-MAT and SBM workloads, mesh shapes, thread counts, partition shapes
// (rows/cols/tiles, with and without rebalancing), apps, and streaming
// orders, each streamed as interleaved edge increments and verified
// vertex-by-vertex against the `base::` sequential oracles. Every instance
// derives from a printed seed so any failure replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

struct Instance {
  std::uint64_t seed = 0;
  bool rmat = false;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint32_t mesh_dim = 8;
  std::uint32_t threads = 1;
  std::uint32_t increments = 3;
  std::uint32_t edge_capacity = 16;
  wl::SamplingKind sampling = wl::SamplingKind::kEdge;
  int app = 0;  // 0 = bfs, 1 = sssp, 2 = components
  sim::PartitionSpec partition;
  sim::EngineKind engine = sim::EngineKind::kScan;
  std::uint32_t dense_pct = 0;  // hybrid threshold (0 = resolved default)
  std::uint32_t window = 0;     // sliding window (0 = insert-only stream)

  [[nodiscard]] std::string describe() const {
    return "replay seed=" + std::to_string(seed) +
           " workload=" + (rmat ? "rmat" : "sbm") +
           " vertices=" + std::to_string(vertices) +
           " edges=" + std::to_string(edges) +
           " mesh=" + std::to_string(mesh_dim) + "x" + std::to_string(mesh_dim) +
           " threads=" + std::to_string(threads) +
           " increments=" + std::to_string(increments) +
           " edge_capacity=" + std::to_string(edge_capacity) +
           " sampling=" + std::string(wl::to_string(sampling)) +
           " app=" + (app == 0 ? "bfs" : app == 1 ? "sssp" : "components") +
           " partition=" + partition.to_string() +
           " engine=" + std::string(sim::to_string(engine)) +
           " dense_pct=" + std::to_string(dense_pct) +
           " window=" + std::to_string(window);
  }
};

/// Expands a replay seed into a full instance. All parameters derive from
/// the seed alone, so one printed number reproduces the whole run.
Instance make_instance(std::uint64_t seed) {
  rt::Xoshiro256 rng(seed);
  Instance in;
  in.seed = seed;
  in.rmat = rng.bernoulli(0.5);
  in.vertices = 150 + rng.below(450);
  in.edges = in.vertices * (3 + rng.below(5));
  in.mesh_dim = rng.bernoulli(0.5) ? 8 : 4;
  in.threads = 1u << rng.below(3);  // 1, 2, or 4
  in.increments = 2 + static_cast<std::uint32_t>(rng.below(4));
  in.edge_capacity = 4u << rng.below(3);  // 4, 8, or 16
  in.sampling = rng.bernoulli(0.5) ? wl::SamplingKind::kSnowball
                                   : wl::SamplingKind::kEdge;
  in.app = static_cast<int>(rng.below(3));
  // Partition draws come last so older replay seeds keep their meaning for
  // every field above.
  in.partition.shape = static_cast<sim::PartitionShape>(rng.below(3));
  in.partition.rebalance = rng.bernoulli(0.5);
  // Engine draw follows the same append-only rule: half the instances run
  // the event-driven active-set engine, half the full-scan oracle, so any
  // set-maintenance divergence shows up against base:: references too.
  in.engine = rng.bernoulli(0.5) ? sim::EngineKind::kActive
                                 : sim::EngineKind::kScan;
  // Hybrid threshold draw (appended last, same rule): the resolved
  // default, near-always-dense, a mid band, and pinned sparse — so the
  // fuzzer crosses the dense switch and its hysteresis on random
  // workloads.
  constexpr std::uint32_t kDensePcts[] = {0, 1, 35, 1000};
  in.dense_pct = kDensePcts[rng.below(4)];
  // Sliding-window draw (appended last, same rule): half the instances
  // re-run their schedule through wl::apply_sliding_window with drain, so
  // the fuzzer covers randomized insert/delete interleavings and the
  // deletion repair protocol — for every app, each pinned against its
  // dynamic deletion oracle (DynamicBfs/DynamicSssp/DynamicComponents)
  // in run_instance.
  constexpr std::uint32_t kWindows[] = {0, 0, 1, 2};
  in.window = kWindows[rng.below(4)];
  return in;
}

std::vector<StreamEdge> make_edges(const Instance& in) {
  if (in.rmat) {
    wl::RmatParams p;
    // Smallest scale whose vertex space covers the instance.
    p.scale = 1;
    while ((1ull << p.scale) < in.vertices) ++p.scale;
    p.num_edges = in.edges;
    p.seed = in.seed;
    return wl::generate_rmat(p);
  }
  wl::SbmParams p;
  p.num_vertices = in.vertices;
  p.num_edges = in.edges;
  p.num_blocks = 8;
  p.seed = in.seed;
  return wl::generate_sbm(p);
}

void run_instance(const Instance& in) {
  std::vector<StreamEdge> edges = make_edges(in);
  // Components runs on undirected semantics: stream both directions.
  if (in.app == 2) edges = wl::symmetrize(edges);
  std::uint64_t max_vid = 0;
  for (const auto& e : edges) max_vid = std::max({max_vid, e.src, e.dst});
  const std::uint64_t n = std::max(in.vertices, max_vid + 1);

  wl::StreamSchedule sched =
      in.sampling == wl::SamplingKind::kSnowball
          ? wl::snowball_sampling(edges, n, in.increments, in.seed)
          : wl::edge_sampling(edges, in.increments, in.seed);
  const std::uint64_t source =
      in.sampling == wl::SamplingKind::kSnowball ? sched.seed_vertex : 0;
  // Instances with a window draw stream expirations too (drained, so a
  // randomized delete mix hits every increment past the window). All
  // three apps repair deletions through the monotone-raise framework.
  const bool windowed = in.window > 0;
  if (windowed) {
    sched = wl::apply_sliding_window(sched, in.window, /*drain=*/true);
  }

  sim::ChipConfig cfg;
  cfg.width = in.mesh_dim;
  cfg.height = in.mesh_dim;
  cfg.threads = in.threads;
  cfg.partition = in.partition;
  cfg.engine = in.engine;
  cfg.dense_threshold_pct = in.dense_pct;
  cfg.seed = in.seed;
  sim::Chip chip(cfg);
  graph::RpvoConfig rc;
  rc.edge_capacity = in.edge_capacity;
  graph::GraphProtocol proto(chip, rc);

  apps::StreamingBfs bfs(proto);
  apps::StreamingSssp sssp(proto);
  apps::StreamingComponents comps(proto);
  graph::GraphConfig gc;
  gc.num_vertices = n;
  if (in.app == 0) {
    bfs.install();
    gc.root_init = apps::StreamingBfs::initial_state();
  } else if (in.app == 1) {
    sssp.install();
    gc.root_init = apps::StreamingSssp::initial_state();
  } else {
    comps.install();
    gc.root_init = apps::StreamingComponents::initial_state();
  }
  graph::StreamingGraph g(proto, gc);
  if (in.app == 0) bfs.set_source(g, source);
  if (in.app == 1) sssp.set_source(g, source);
  if (in.app == 2) comps.seed_labels(g);

  // Interleaved inserts: every increment streams and settles before the
  // next arrives, exercising the incremental-update (not recompute) path.
  for (const auto& inc : sched.increments) {
    const auto report = g.stream_increment(inc, /*max_cycles=*/50'000'000);
    ASSERT_TRUE(chip.quiescent()) << "increment did not settle";
    ASSERT_GT(report.cycles, 0u);
  }

  // Oracle comparison over the full edge set (add_edges is op-aware, so a
  // windowed schedule leaves ref holding exactly the surviving edges).
  base::RefGraph ref(n);
  for (const auto& inc : sched.increments) ref.add_edges(inc);
  std::uint64_t mismatches = 0;
  if (in.app == 0) {
    const auto want = base::bfs_levels(ref, source);
    if (windowed) {
      // Deletion-oracle cross-check: the incrementally maintained
      // DynamicBfs, fed the same op stream, must agree with the
      // from-scratch BFS of the survivors before we trust either.
      base::DynamicBfs dyn(n, source);
      for (const auto& inc : sched.increments) dyn.apply_increment(inc);
      ASSERT_EQ(dyn.levels(), want) << "DynamicBfs diverged from recompute";
      ASSERT_GT(dyn.edges_deleted(), 0u) << "window produced no deletions";
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      const rt::Word w = want[v] == base::kUnreached
                             ? apps::StreamingBfs::kUnreached
                             : want[v];
      if (bfs.level_of(g, v) != w) ++mismatches;
    }
  } else if (in.app == 1) {
    const auto want = base::sssp_distances(ref, source);
    if (windowed) {
      // Same cross-check for SSSP: DynamicSssp replays the op stream
      // increment by increment and must land on the survivors' Dijkstra.
      base::DynamicSssp dyn(n, source);
      for (const auto& inc : sched.increments) dyn.apply_increment(inc);
      ASSERT_EQ(dyn.distances(), want)
          << "DynamicSssp diverged from recompute";
      ASSERT_GT(dyn.edges_deleted(), 0u) << "window produced no deletions";
    }
    for (std::uint64_t v = 0; v < n; ++v) {
      const rt::Word w = want[v] == base::kUnreached
                             ? apps::StreamingSssp::kUnreached
                             : want[v];
      if (sssp.distance_of(g, v) != w) ++mismatches;
    }
  } else if (windowed) {
    // Windowed components can expire the two arcs of a symmetrized pair
    // in different increments, so the undirected union-find is not a
    // valid oracle mid-stream; use the directed deletion oracle, checked
    // against its own from-scratch recompute first.
    base::DynamicComponents dyn(n);
    for (const auto& inc : sched.increments) dyn.apply_increment(inc);
    ASSERT_EQ(dyn.labels(), dyn.recompute())
        << "DynamicComponents diverged from recompute";
    ASSERT_GT(dyn.edges_deleted(), 0u) << "window produced no deletions";
    const auto& want = dyn.labels();
    for (std::uint64_t v = 0; v < n; ++v) {
      if (comps.label_of(g, v) != want[v]) ++mismatches;
    }
  } else {
    const auto want = base::component_min_labels(ref);
    for (std::uint64_t v = 0; v < n; ++v) {
      if (comps.label_of(g, v) != want[v]) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(OracleFuzz, RandomInstancesMatchSequentialOracles) {
  constexpr int kInstances = 20;
  for (int i = 0; i < kInstances; ++i) {
    const std::uint64_t seed = 0xF00DBA5Eull + 7919ull * static_cast<std::uint64_t>(i);
    const Instance in = make_instance(seed);
    SCOPED_TRACE(in.describe());
    run_instance(in);
    if (::testing::Test::HasFailure()) {
      // Seed printed for replay (also carried by SCOPED_TRACE above).
      std::fprintf(stderr, "oracle_fuzz FAILURE — %s\n", in.describe().c_str());
      break;
    }
  }
}

}  // namespace
}  // namespace ccastream
