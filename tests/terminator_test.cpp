// Unit + property tests: Safra's distributed termination detection.
//
// The key safety property: the detector NEVER announces while basic
// messages are in flight or any process is active. The liveness property:
// once the system is truly quiescent, a bounded number of token rounds
// announces termination.
#include <gtest/gtest.h>

#include <deque>

#include "runtime/rng.hpp"
#include "runtime/terminator.hpp"

namespace ccastream::rt {
namespace {

TEST(SafraTerminator, SingleProcessTerminatesImmediately) {
  SafraTerminator t(1);
  t.on_passive(0);
  EXPECT_TRUE(t.pump(4));
  EXPECT_TRUE(t.terminated());
}

TEST(SafraTerminator, DoesNotAnnounceWhileActive) {
  SafraTerminator t(3);
  t.on_passive(1);
  t.on_passive(2);
  // Process 0 still active: the token may not even start.
  EXPECT_FALSE(t.pump(100));
  t.on_passive(0);
  EXPECT_TRUE(t.pump(100));
}

TEST(SafraTerminator, InFlightMessageBlocksAnnouncement) {
  SafraTerminator t(4);
  for (std::uint32_t p = 0; p < 4; ++p) t.on_passive(p);
  // p1 sent a message that nobody has received yet: counters sum to +1.
  t.on_send(1);
  EXPECT_FALSE(t.pump(1000));
  // Delivery re-activates p3; still no announcement.
  t.on_receive(3);
  EXPECT_FALSE(t.pump(1000));
  // p3 finishes: now the system is quiescent and detection must succeed.
  t.on_passive(3);
  EXPECT_TRUE(t.pump(1000));
}

TEST(SafraTerminator, BlackProcessForcesAnotherRound) {
  SafraTerminator t(2);
  t.on_passive(0);
  t.on_passive(1);
  t.on_send(0);
  t.on_receive(1);  // p1 turns black
  t.on_passive(1);
  EXPECT_TRUE(t.pump(100));  // needs >1 round but must get there
  EXPECT_GE(t.token_rounds(), 2u);
}

// Property: simulate random message-passing histories; check the detector
// never announces early and always announces after quiescence.
class SafraProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SafraProperty, SoundAndLive) {
  Xoshiro256 rng(GetParam());
  const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.below(6));
  SafraTerminator det(n);

  struct Proc {
    bool active = true;
    std::uint32_t work = 0;  // messages it will still send while active
  };
  std::vector<Proc> procs(n);
  for (auto& p : procs) p.work = static_cast<std::uint32_t>(rng.below(5));
  std::deque<std::uint32_t> in_flight;  // destination of undelivered messages

  auto quiescent = [&] {
    if (!in_flight.empty()) return false;
    for (const auto& p : procs) {
      if (p.active) return false;
    }
    return true;
  };

  for (int step = 0; step < 4000; ++step) {
    ASSERT_FALSE(det.terminated() && !quiescent())
        << "announced termination while system is live (seed " << GetParam()
        << ", step " << step << ")";
    if (det.terminated()) break;

    const auto choice = rng.below(4);
    if (choice == 0 && !in_flight.empty()) {
      // Deliver a message.
      const std::uint32_t dst = in_flight.front();
      in_flight.pop_front();
      procs[dst].active = true;
      procs[dst].work += static_cast<std::uint32_t>(rng.below(3));
      det.on_receive(dst);
    } else if (choice == 1) {
      // Some active process does one unit of work (maybe sending).
      for (std::uint32_t p = 0; p < n; ++p) {
        if (!procs[p].active) continue;
        if (procs[p].work > 0) {
          --procs[p].work;
          const auto dst = static_cast<std::uint32_t>(rng.below(n));
          in_flight.push_back(dst);
          det.on_send(p);
        } else {
          procs[p].active = false;
          det.on_passive(p);
        }
        break;
      }
    } else {
      det.pump(1 + static_cast<std::uint32_t>(rng.below(3)));
    }
  }

  // Drain everything, then detection must fire within bounded pumping.
  while (!in_flight.empty()) {
    const std::uint32_t dst = in_flight.front();
    in_flight.pop_front();
    det.on_receive(dst);
    det.on_passive(dst);
    procs[dst].active = false;
  }
  for (std::uint32_t p = 0; p < n; ++p) {
    if (procs[p].active) {
      procs[p].active = false;
      det.on_passive(p);
    }
  }
  ASSERT_TRUE(quiescent());
  EXPECT_TRUE(det.pump(10 * (n + 1) * (n + 1)))
      << "failed to detect termination (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafraProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace ccastream::rt
