// Unit tests: the chip's execution model — action dispatch, diffusion,
// timing rules, IO injection, quiescence, the allocate system action, and
// fault handling.
#include <gtest/gtest.h>

#include <memory>

#include "test_util.hpp"

namespace ccastream::sim {
namespace {

using rt::Action;
using rt::GlobalAddress;
using rt::make_action;
using rt::Word;
using test::small_chip_config;

/// Simple counter object used as an action target.
class Counter final : public rt::ArenaObject {
 public:
  [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 16; }
  std::uint64_t value = 0;
};

TEST(Chip, StartsQuiescent) {
  Chip chip(small_chip_config());
  EXPECT_TRUE(chip.quiescent());
  EXPECT_EQ(chip.run_until_quiescent(100), 0u);
  EXPECT_EQ(chip.now(), 0u);
}

TEST(Chip, ExecutesInjectedAction) {
  Chip chip(small_chip_config());
  const auto addr = chip.host_allocate(5, std::make_unique<Counter>());
  ASSERT_TRUE(addr);
  const rt::HandlerId h = chip.handlers().register_handler(
      "bump", [](rt::Context& ctx, const Action& a) {
        auto* c = ctx.as<Counter>(a.target);
        ASSERT_NE(c, nullptr);
        c->value += a.args[0];
      });
  chip.inject_local(make_action(h, *addr, Word{7}));
  EXPECT_FALSE(chip.quiescent());
  chip.run_until_quiescent();
  EXPECT_TRUE(chip.quiescent());
  EXPECT_EQ(chip.as<Counter>(*addr)->value, 7u);
  EXPECT_EQ(chip.stats().actions_executed, 1u);
}

TEST(Chip, PropagatedActionTraversesNetworkMinimally) {
  auto cfg = small_chip_config(8);
  Chip chip(cfg);
  // Target in the far corner, injected at the near corner.
  const auto dst = chip.host_allocate(63, std::make_unique<Counter>());
  ASSERT_TRUE(dst);
  const rt::HandlerId h = chip.handlers().register_handler(
      "bump", [](rt::Context& ctx, const Action& a) {
        if (auto* c = ctx.as<Counter>(a.target)) ++c->value;
      });
  chip.inject_via(0, make_action(h, *dst));
  chip.run_until_quiescent();
  EXPECT_EQ(chip.as<Counter>(*dst)->value, 1u);
  // (0,0) -> (7,7) is 14 hops; injection adds no hop.
  EXPECT_EQ(chip.stats().hops, 14u);
  EXPECT_EQ(chip.stats().deliveries, 1u);
  // Staging (1 cycle) + 14 hops + ejection + dispatch: latency is bounded.
  EXPECT_GE(chip.now(), 15u);
  EXPECT_LE(chip.now(), 25u);
}

TEST(Chip, DiffusionFanOut) {
  Chip chip(small_chip_config());
  // One seed action at cell 0 propagates to 10 counters spread around.
  std::vector<GlobalAddress> targets;
  for (std::uint32_t i = 0; i < 10; ++i) {
    targets.push_back(*chip.host_allocate(i * 6 % 64, std::make_unique<Counter>()));
  }
  const rt::HandlerId bump = chip.handlers().register_handler(
      "bump", [](rt::Context& ctx, const Action& a) {
        if (auto* c = ctx.as<Counter>(a.target)) ++c->value;
      });
  const auto seed_addr = *chip.host_allocate(0, std::make_unique<Counter>());
  const rt::HandlerId seed = chip.handlers().register_handler(
      "seed", [&](rt::Context& ctx, const Action&) {
        for (const auto& t : targets) ctx.propagate(make_action(bump, t));
      });
  chip.inject_local(make_action(seed, seed_addr));
  chip.run_until_quiescent();
  for (const auto& t : targets) EXPECT_EQ(chip.as<Counter>(t)->value, 1u);
  EXPECT_EQ(chip.stats().actions_executed, 11u);
  EXPECT_EQ(chip.stats().messages_staged, 10u);
}

TEST(Chip, StagingTakesOneCycleEach) {
  // A handler that propagates K self-local messages keeps its cell busy for
  // K staging cycles (one op per cycle, paper §4).
  Chip chip(small_chip_config());
  const auto tgt = *chip.host_allocate(0, std::make_unique<Counter>());
  const rt::HandlerId noop =
      chip.handlers().register_handler("noop", [](rt::Context&, const Action&) {});
  const rt::HandlerId burst = chip.handlers().register_handler(
      "burst", [&](rt::Context& ctx, const Action&) {
        for (int i = 0; i < 5; ++i) ctx.propagate(make_action(noop, tgt));
      });
  chip.inject_local(make_action(burst, tgt));
  chip.run_until_quiescent();
  EXPECT_EQ(chip.stats().messages_staged, 5u);
  // 5 stage ops + 6 dispatches at >= 1 cycle each.
  EXPECT_GE(chip.stats().cycles, 11u);
}

TEST(Chip, ActionCostKeepsCellBusy) {
  auto cfg = small_chip_config();
  cfg.action_base_cost = 1;
  Chip chip(cfg);
  const auto tgt = *chip.host_allocate(0, std::make_unique<Counter>());
  const rt::HandlerId heavy = chip.handlers().register_handler(
      "heavy", [](rt::Context& ctx, const Action&) { ctx.charge(9); });
  chip.inject_local(make_action(heavy, tgt));
  chip.run_until_quiescent();
  // 1 base + 9 charged = 10 instruction cycles.
  EXPECT_EQ(chip.stats().instructions, 10u);
  EXPECT_EQ(chip.stats().cycles, 10u);
}

TEST(Chip, UnknownHandlerCountsFault) {
  Chip chip(small_chip_config());
  const auto tgt = *chip.host_allocate(0, std::make_unique<Counter>());
  chip.inject_local(make_action(rt::HandlerId{999}, tgt));
  chip.run_until_quiescent();
  EXPECT_EQ(chip.stats().faults, 1u);
  EXPECT_EQ(chip.stats().actions_executed, 0u);
  EXPECT_TRUE(chip.quiescent());
}

TEST(Chip, IoInjectsOnePerCellPerCycle) {
  auto cfg = small_chip_config(4);
  cfg.io_sides = kIoWest;  // 4 IO cells
  Chip chip(cfg);
  const auto tgt = *chip.host_allocate(15, std::make_unique<Counter>());
  const rt::HandlerId bump = chip.handlers().register_handler(
      "bump", [](rt::Context& ctx, const Action& a) {
        if (auto* c = ctx.as<Counter>(a.target)) ++c->value;
      });
  for (int i = 0; i < 40; ++i) chip.io_enqueue(make_action(bump, tgt));
  EXPECT_EQ(chip.io_pending(), 40u);
  // 40 actions over 4 IO cells: at least 10 cycles of injection.
  chip.run_until_quiescent();
  EXPECT_EQ(chip.io_pending(), 0u);
  EXPECT_EQ(chip.stats().io_injections, 40u);
  EXPECT_EQ(chip.as<Counter>(tgt)->value, 40u);
  EXPECT_GE(chip.stats().cycles, 10u);
}

TEST(Chip, AllocateSystemActionRoundTrip) {
  auto cfg = small_chip_config();
  cfg.alloc_policy = rt::AllocPolicyKind::kVicinity;
  Chip chip(cfg);
  chip.register_object_kind(7, [] { return std::make_unique<Counter>(); });

  // The reply handler fulfils nothing fancy — it just records the address.
  const auto home = *chip.host_allocate(20, std::make_unique<Counter>());
  GlobalAddress got = rt::kNullAddress;
  const rt::HandlerId reply = chip.handlers().register_handler(
      "reply", [&](rt::Context&, const Action& a) {
        got = GlobalAddress::unpack(a.args[0]);
        EXPECT_EQ(a.args[1], 42u);  // tag round-trips
      });
  const rt::HandlerId kick = chip.handlers().register_handler(
      "kick", [&](rt::Context& ctx, const Action& a) {
        ctx.call_cc_allocate(7, a.target, reply, 42);
      });
  chip.inject_local(make_action(kick, home));
  chip.run_until_quiescent();

  ASSERT_FALSE(got.is_null());
  EXPECT_NE(chip.deref(got), nullptr);
  EXPECT_EQ(chip.stats().allocations, 1u);
  // Vicinity policy: the new object is at most 2 hops from the requester.
  EXPECT_LE(chip.geometry().hops(20, got.cc), 2u);
}

TEST(Chip, AllocateForwardsWhenArenaFull) {
  auto cfg = small_chip_config(4);
  cfg.cc_memory_bytes = 8;  // nothing fits anywhere...
  cfg.alloc_forward_budget = 5;
  Chip chip(cfg);
  chip.register_object_kind(7, [] { return std::make_unique<Counter>(); });

  bool got_null = false;
  const rt::HandlerId reply = chip.handlers().register_handler(
      "reply", [&](rt::Context&, const Action& a) {
        got_null = GlobalAddress::unpack(a.args[0]).is_null();
      });
  const rt::HandlerId kick = chip.handlers().register_handler(
      "kick", [&](rt::Context& ctx, const Action& a) {
        ctx.call_cc_allocate(7, a.target, reply, 0);
      });
  // The reply target object cannot be host_allocated (memory 8 < 16), so
  // target a dummy address; reply handler doesn't deref.
  chip.inject_local(make_action(kick, GlobalAddress{0, 0}));
  chip.run_until_quiescent();

  EXPECT_TRUE(got_null);
  EXPECT_EQ(chip.stats().alloc_forwards, 5u);  // bounced budget times
  EXPECT_EQ(chip.stats().alloc_failures, 1u);
  EXPECT_EQ(chip.stats().allocations, 0u);
}

TEST(Chip, EnergyAccumulatesPerEvent) {
  auto cfg = small_chip_config();
  cfg.energy = EnergyModel{};  // defaults
  Chip chip(cfg);
  const auto tgt = *chip.host_allocate(32, std::make_unique<Counter>());
  const rt::HandlerId bump = chip.handlers().register_handler(
      "bump", [](rt::Context&, const Action&) {});
  EXPECT_EQ(chip.energy_pj(), 0.0);
  chip.io_enqueue(make_action(bump, tgt));
  chip.run_until_quiescent();
  const auto ev = chip.stats().energy_events();
  EXPECT_GT(ev.instructions, 0u);
  EXPECT_GT(ev.io_injections, 0u);
  EXPECT_DOUBLE_EQ(chip.energy_pj(), total_pj(cfg.energy, ev));
  EXPECT_GT(chip.energy_pj(), 0.0);
}

TEST(Chip, ScheduleLocalRunsBeforeQueuedActions) {
  Chip chip(small_chip_config());
  const auto tgt = *chip.host_allocate(3, std::make_unique<Counter>());
  std::vector<int> order;
  const rt::HandlerId second = chip.handlers().register_handler(
      "second", [&](rt::Context&, const Action&) { order.push_back(2); });
  const rt::HandlerId task = chip.handlers().register_handler(
      "task", [&](rt::Context&, const Action&) { order.push_back(1); });
  const rt::HandlerId first = chip.handlers().register_handler(
      "first", [&](rt::Context& ctx, const Action& a) {
        order.push_back(0);
        ctx.schedule_local(make_action(task, a.target));
      });
  chip.inject_local(make_action(first, tgt));
  chip.inject_local(make_action(second, tgt));
  chip.run_until_quiescent();
  ASSERT_EQ(order.size(), 3u);
  // The locally scheduled task preempts the queued "second" action.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Chip, DeterministicAcrossRuns) {
  auto make_run = [] {
    auto cfg = small_chip_config();
    cfg.seed = 99;
    Chip chip(cfg);
    const auto tgt = *chip.host_allocate(17, std::make_unique<Counter>());
    const rt::HandlerId fan = chip.handlers().register_handler(
        "fan", [&, tgt](rt::Context& ctx, const Action& a) {
          if (a.args[0] > 0) {
            for (int i = 0; i < 3; ++i) {
              ctx.propagate(make_action(a.handler, tgt, a.args[0] - 1));
            }
          }
        });
    chip.inject_local(make_action(fan, tgt, Word{4}));
    chip.run_until_quiescent();
    return chip.stats().cycles;
  };
  EXPECT_EQ(make_run(), make_run());
}

TEST(Chip, ActivationTraceRecordsWhenEnabled) {
  auto cfg = small_chip_config();
  cfg.record_activation = true;
  Chip chip(cfg);
  const auto tgt = *chip.host_allocate(9, std::make_unique<Counter>());
  const rt::HandlerId bump = chip.handlers().register_handler(
      "bump", [](rt::Context&, const Action&) {});
  chip.io_enqueue(make_action(bump, tgt));
  chip.run_until_quiescent();
  EXPECT_EQ(chip.activation().samples().size(), chip.stats().cycles);
  EXPECT_GT(chip.activation().peak_active_fraction(64), 0.0);
}

TEST(Chip, ActivityLevelsShapeMatchesMesh) {
  Chip chip(small_chip_config(4));
  const auto levels = chip.activity_levels();
  EXPECT_EQ(levels.size(), 16u);
  for (const auto l : levels) EXPECT_EQ(l, 0);  // idle chip is dark
}

}  // namespace
}  // namespace ccastream::sim
