// Chip instrumentation: per-handler profiles and per-cell load counters.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "test_util.hpp"

namespace ccastream::sim {
namespace {

using rt::Action;
using rt::make_action;
using test::small_chip_config;

class Obj final : public rt::ArenaObject {
 public:
  [[nodiscard]] std::size_t logical_bytes() const noexcept override { return 16; }
};

TEST(Profiling, HandlerProfileCountsExecutionsAndInstructions) {
  auto cfg = small_chip_config();
  cfg.profile_handlers = true;
  cfg.action_base_cost = 2;
  Chip chip(cfg);
  const auto tgt = *chip.host_allocate(5, std::make_unique<Obj>());
  const rt::HandlerId cheap = chip.handlers().register_handler(
      "cheap", [](rt::Context&, const Action&) {});
  const rt::HandlerId costly = chip.handlers().register_handler(
      "costly", [](rt::Context& ctx, const Action&) { ctx.charge(8); });

  for (int i = 0; i < 3; ++i) chip.inject_local(make_action(cheap, tgt));
  chip.inject_local(make_action(costly, tgt));
  chip.run_until_quiescent();

  const auto& prof = chip.handler_profile();
  ASSERT_GT(prof.size(), static_cast<std::size_t>(costly));
  EXPECT_EQ(prof[cheap].executions, 3u);
  EXPECT_EQ(prof[cheap].instructions, 6u);   // 3 x base cost 2
  EXPECT_EQ(prof[costly].executions, 1u);
  EXPECT_EQ(prof[costly].instructions, 10u);  // base 2 + charged 8
}

TEST(Profiling, ProfileDisabledByDefault) {
  Chip chip(small_chip_config());
  const auto tgt = *chip.host_allocate(0, std::make_unique<Obj>());
  const rt::HandlerId h =
      chip.handlers().register_handler("h", [](rt::Context&, const Action&) {});
  chip.inject_local(make_action(h, tgt));
  chip.run_until_quiescent();
  EXPECT_TRUE(chip.handler_profile().empty());
}

TEST(Profiling, CellLoadTracksWhereWorkHappened) {
  Chip chip(small_chip_config());
  const auto hot = *chip.host_allocate(42, std::make_unique<Obj>());
  const rt::HandlerId h = chip.handlers().register_handler(
      "h", [](rt::Context& ctx, const Action&) { ctx.charge(5); });
  for (int i = 0; i < 4; ++i) chip.inject_local(make_action(h, hot));
  chip.run_until_quiescent();

  const auto& load = chip.cell_load();
  ASSERT_EQ(load.size(), 64u);
  // All compute happened on cell 42 (no messages were sent).
  EXPECT_GE(load[42], 4u * 7u);  // 4 dispatches x (base 2 + 5) cycles
  const auto total = std::accumulate(load.begin(), load.end(), std::uint64_t{0});
  EXPECT_EQ(total, load[42]);
}

TEST(Profiling, CellLoadSpreadsWithDiffusion) {
  auto cfg = small_chip_config();
  Chip chip(cfg);
  graph::GraphProtocol proto(chip);
  graph::GraphConfig gc;
  gc.num_vertices = 64;
  graph::StreamingGraph g(proto, gc);
  rt::Xoshiro256 rng(8);
  std::vector<StreamEdge> edges;
  for (int i = 0; i < 400; ++i) edges.push_back({rng.below(64), rng.below(64), 1});
  g.stream_increment(edges);

  const auto& load = chip.cell_load();
  const auto busy_cells = static_cast<std::size_t>(
      std::count_if(load.begin(), load.end(), [](auto v) { return v > 0; }));
  EXPECT_GT(busy_cells, 32u);  // round-robin roots: most cells did work
}

}  // namespace
}  // namespace ccastream::sim
