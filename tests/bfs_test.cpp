// Streaming dynamic BFS correctness: the chip's asynchronous diffusion must
// converge, after every increment, to exactly the BFS levels a sequential
// oracle computes on the same edge set (the paper verifies against
// NetworkX; we verify against baseline::DynamicBfs / bfs_levels).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "test_util.hpp"

namespace ccastream::apps {
namespace {

using test::small_chip_config;

struct BfsFixture {
  explicit BfsFixture(std::uint64_t nverts, sim::ChipConfig cfg = small_chip_config(),
                      graph::RpvoConfig rc = {}) {
    chip = std::make_unique<sim::Chip>(cfg);
    proto = std::make_unique<graph::GraphProtocol>(*chip, rc);
    bfs = std::make_unique<StreamingBfs>(*proto);
    bfs->install();
    graph::GraphConfig gc;
    gc.num_vertices = nverts;
    gc.root_init = StreamingBfs::initial_state();
    g = std::make_unique<graph::StreamingGraph>(*proto, gc);
  }

  void expect_levels_match(const std::vector<std::uint64_t>& expected) {
    for (std::uint64_t v = 0; v < expected.size(); ++v) {
      const rt::Word got = bfs->level_of(*g, v);
      const rt::Word want = expected[v] == base::kUnreached
                                ? StreamingBfs::kUnreached
                                : expected[v];
      ASSERT_EQ(got, want) << "vertex " << v;
    }
  }

  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<graph::GraphProtocol> proto;
  std::unique_ptr<StreamingBfs> bfs;
  std::unique_ptr<graph::StreamingGraph> g;
};

TEST(StreamingBfs, PathGraph) {
  BfsFixture f(5);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  for (std::uint64_t v = 0; v < 5; ++v) EXPECT_EQ(f.bfs->level_of(*f.g, v), v);
}

TEST(StreamingBfs, EdgeArrivalOrderIrrelevant) {
  // The path's edges arrive in reverse: later edges must still pick up the
  // level once the earlier part of the path connects.
  BfsFixture f(5);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(
      std::vector<StreamEdge>{{3, 4, 1}, {2, 3, 1}, {1, 2, 1}, {0, 1, 1}});
  for (std::uint64_t v = 0; v < 5; ++v) EXPECT_EQ(f.bfs->level_of(*f.g, v), v);
}

TEST(StreamingBfs, UnreachableStaysUnreached) {
  BfsFixture f(4);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {2, 3, 1}});
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), 1u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), StreamingBfs::kUnreached);
  EXPECT_EQ(f.bfs->level_of(*f.g, 3), StreamingBfs::kUnreached);
}

TEST(StreamingBfs, ShortcutEdgeLowersLevels) {
  BfsFixture f(6);
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(std::vector<StreamEdge>{
      {0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}});
  EXPECT_EQ(f.bfs->level_of(*f.g, 5), 5u);
  // Streaming a shortcut 0 -> 4 must incrementally drop levels 4 and 5
  // without any recompute-from-scratch.
  f.g->stream_increment(std::vector<StreamEdge>{{0, 4, 1}});
  EXPECT_EQ(f.bfs->level_of(*f.g, 4), 1u);
  EXPECT_EQ(f.bfs->level_of(*f.g, 5), 2u);
}

TEST(StreamingBfs, KickOnPrebuiltGraph) {
  // Build with BFS hooks installed but no source: nothing diffuses.
  BfsFixture f(4);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(f.bfs->level_of(*f.g, v), StreamingBfs::kUnreached);
  }
  // Seed afterwards: the kick action floods the existing structure.
  f.bfs->kick_source(*f.g, 0);
  f.g->run();
  for (std::uint64_t v = 0; v < 4; ++v) EXPECT_EQ(f.bfs->level_of(*f.g, v), v);
}

TEST(StreamingBfs, LevelsSurviveGhostChains) {
  // Tiny fragments force ghosts everywhere; levels must be identical.
  graph::RpvoConfig rc;
  rc.edge_capacity = 1;
  BfsFixture f(8, small_chip_config(), rc);
  f.bfs->set_source(*f.g, 0);
  std::vector<StreamEdge> star;
  for (std::uint64_t v = 1; v < 8; ++v) star.push_back({0, v, 1});
  for (std::uint64_t v = 1; v < 8; ++v) star.push_back({v, 0, 1});
  f.g->stream_increment(star);
  for (std::uint64_t v = 1; v < 8; ++v) EXPECT_EQ(f.bfs->level_of(*f.g, v), 1u);
}

// Property sweep: random graphs, streamed in random increments, across
// chip/RPVO/policy configurations — levels equal the oracle's after every
// increment.
struct BfsCase {
  std::uint64_t vertices;
  std::uint64_t edges;
  std::uint32_t edge_capacity;
  rt::AllocPolicyKind policy;
  sim::RoutingPolicyKind routing;
  std::uint64_t seed;
};

class BfsEquivalence : public ::testing::TestWithParam<BfsCase> {};

TEST_P(BfsEquivalence, MatchesOracleAfterEveryIncrement) {
  const auto p = GetParam();
  auto cfg = small_chip_config();
  cfg.alloc_policy = p.policy;
  cfg.routing = p.routing;
  cfg.seed = p.seed;
  graph::RpvoConfig rc;
  rc.edge_capacity = p.edge_capacity;
  BfsFixture f(p.vertices, cfg, rc);

  rt::Xoshiro256 rng(p.seed);
  std::vector<StreamEdge> all;
  for (std::uint64_t i = 0; i < p.edges; ++i) {
    all.push_back({rng.below(p.vertices), rng.below(p.vertices), 1});
  }
  const std::uint64_t source = rng.below(p.vertices);
  f.bfs->set_source(*f.g, source);
  base::DynamicBfs oracle(p.vertices, source);

  const std::size_t half = all.size() / 2;
  const std::vector<StreamEdge> inc1(all.begin(), all.begin() + half);
  const std::vector<StreamEdge> inc2(all.begin() + half, all.end());
  for (const auto& inc : {inc1, inc2}) {
    f.g->stream_increment(inc);
    oracle.insert_increment(inc);
    ASSERT_TRUE(f.chip->quiescent());
    for (std::uint64_t v = 0; v < p.vertices; ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? StreamingBfs::kUnreached
                                : oracle.level_of(v);
      ASSERT_EQ(f.bfs->level_of(*f.g, v), want)
          << "vertex " << v << " seed " << p.seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfsEquivalence,
    ::testing::Values(
        BfsCase{16, 40, 4, rt::AllocPolicyKind::kVicinity,
                sim::RoutingPolicyKind::kYX, 1},
        BfsCase{32, 120, 2, rt::AllocPolicyKind::kVicinity,
                sim::RoutingPolicyKind::kYX, 2},
        BfsCase{64, 300, 8, rt::AllocPolicyKind::kRandom,
                sim::RoutingPolicyKind::kYX, 3},
        BfsCase{64, 300, 4, rt::AllocPolicyKind::kVicinity,
                sim::RoutingPolicyKind::kXY, 4},
        BfsCase{64, 300, 4, rt::AllocPolicyKind::kVicinity,
                sim::RoutingPolicyKind::kWestFirst, 5},
        BfsCase{100, 600, 3, rt::AllocPolicyKind::kRoundRobin,
                sim::RoutingPolicyKind::kYX, 6},
        BfsCase{128, 1000, 16, rt::AllocPolicyKind::kVicinity,
                sim::RoutingPolicyKind::kYX, 7},
        BfsCase{40, 80, 1, rt::AllocPolicyKind::kLocal,
                sim::RoutingPolicyKind::kYX, 8},
        BfsCase{200, 1500, 4, rt::AllocPolicyKind::kVicinity,
                sim::RoutingPolicyKind::kYX, 9},
        BfsCase{64, 500, 2, rt::AllocPolicyKind::kRandom,
                sim::RoutingPolicyKind::kWestFirst, 10}));

TEST(StreamingBfs, SbmScheduleBothSamplings) {
  for (const auto kind : {wl::SamplingKind::kEdge, wl::SamplingKind::kSnowball}) {
    auto cfg = small_chip_config();
    BfsFixture f(300, cfg);
    const auto sched = wl::make_graphchallenge_like(300, 2000, kind, 5, 77);
    const std::uint64_t source =
        kind == wl::SamplingKind::kSnowball ? sched.seed_vertex : 0;
    f.bfs->set_source(*f.g, source);
    base::DynamicBfs oracle(300, source);
    for (const auto& inc : sched.increments) {
      f.g->stream_increment(inc);
      oracle.insert_increment(inc);
    }
    for (std::uint64_t v = 0; v < 300; ++v) {
      const rt::Word want = oracle.level_of(v) == base::kUnreached
                                ? StreamingBfs::kUnreached
                                : oracle.level_of(v);
      ASSERT_EQ(f.bfs->level_of(*f.g, v), want)
          << "vertex " << v << " sampling " << wl::to_string(kind);
    }
  }
}

TEST(StreamingBfs, IngestionOnlyModeDoesNotCompute) {
  // The paper's ingestion-only experiment: hooks removed, edges stream, no
  // bfs-action is ever created.
  auto cfg = small_chip_config();
  BfsFixture f(16, cfg);
  f.proto->set_hooks(graph::AppHooks{});  // disable the BFS chaining
  f.bfs->set_source(*f.g, 0);
  f.g->stream_increment(std::vector<StreamEdge>{{0, 1, 1}, {1, 2, 1}});
  EXPECT_EQ(f.bfs->level_of(*f.g, 1), StreamingBfs::kUnreached);
  EXPECT_EQ(f.bfs->level_of(*f.g, 2), StreamingBfs::kUnreached);
  EXPECT_EQ(f.g->stored_degree(0), 1u);  // ingestion itself still works
}

}  // namespace
}  // namespace ccastream::apps
