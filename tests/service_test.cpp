// Service-level pinning of svc::StreamService — the ISSUE's streaming
// service mode. Covered here:
//   - ingest/drain lifecycle (initial latch, per-batch reports, stop
//     semantics, misuse after stop)
//   - service-batched increments land on the exact one-shot results
//     (cycles, counters, energy, per-vertex fixed points)
//   - queries answer from the latched snapshot: never a torn mid-increment
//     state, always the fixed point of some executed batch prefix
//   - backpressure policies: block waits for space, drop counts rejects,
//     flush quiesces the queue before enqueueing
//   - engine failures surface on the caller's thread
//   - a seeded concurrent soak vs the oracle, gated on CCASTREAM_STRESS=1
// The whole suite runs under the TSan CI leg (the service is one of the
// two sanctioned threading sites; see tools/lint/rules.toml).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "test_util.hpp"

namespace ccastream {
namespace {

using svc::QueuePolicy;
using svc::QueueSpec;
using svc::StreamService;

constexpr std::uint64_t kVertices = 120;
constexpr std::uint64_t kSeed = 515;

// A chip + protocol + BFS app + graph bundle, identical every time it is
// built — so a service-mode run and a one-shot run are comparable
// cycle-for-cycle.
struct Rig {
  sim::Chip chip;
  graph::GraphProtocol proto;
  apps::StreamingBfs bfs;
  std::unique_ptr<graph::StreamingGraph> g;

  explicit Rig(std::uint64_t n = kVertices, std::uint32_t rhizomes = 1,
               std::uint32_t threads = 1,
               std::optional<sim::EngineKind> engine = std::nullopt)
      : chip([&] {
          sim::ChipConfig cfg = test::small_chip_config();
          cfg.seed = kSeed;
          cfg.threads = threads;
          cfg.engine = engine;
          return cfg;
        }()),
        proto(chip),
        bfs(proto) {
    bfs.install();
    graph::GraphConfig gc;
    gc.num_vertices = n;
    gc.rhizomes = rhizomes;
    gc.root_init = apps::StreamingBfs::initial_state();
    g = std::make_unique<graph::StreamingGraph>(proto, gc);
    bfs.set_source(*g, 0);
  }
};

std::vector<std::vector<StreamEdge>> make_increments(std::size_t count,
                                                     std::uint64_t seed = kSeed) {
  return wl::make_graphchallenge_like(kVertices, 1'200,
                                      wl::SamplingKind::kEdge, count, seed)
      .increments;
}

/// BFS oracle over the first `prefix` increments, in app encoding
/// (kUnreached instead of base::kUnreached).
std::vector<rt::Word> oracle_after(
    const std::vector<std::vector<StreamEdge>>& incs, std::size_t prefix) {
  base::RefGraph ref(kVertices);
  for (std::size_t i = 0; i < prefix; ++i) ref.add_edges(incs[i]);
  std::vector<rt::Word> want = base::bfs_levels(ref, 0);
  for (auto& w : want) {
    if (w == base::kUnreached) w = apps::StreamingBfs::kUnreached;
  }
  return want;
}

std::vector<rt::Word> app_word_query(const StreamService& s) {
  svc::QueryRequest req;
  req.kind = svc::QueryKind::kAppWord;
  req.app_word = apps::StreamingBfs::kLevelWord;
  return s.query(req).values;
}

// --- Queue-spec parsing and resolution ---------------------------------------

TEST(QueueSpec, ParsesPolicyAndCapacity) {
  EXPECT_EQ(svc::parse_queue_spec("block"),
            (QueueSpec{QueuePolicy::kBlock, 8}));
  EXPECT_EQ(svc::parse_queue_spec("drop:32"),
            (QueueSpec{QueuePolicy::kDrop, 32}));
  EXPECT_EQ(svc::parse_queue_spec("flush:1"),
            (QueueSpec{QueuePolicy::kFlush, 1}));
  EXPECT_EQ(svc::parse_queue_spec("block:65536"),
            (QueueSpec{QueuePolicy::kBlock, 65536}));

  for (const char* bad : {"", "Block", "drop:", "drop:0", "drop:65537",
                          "drop:8x", "flush:-1", "block:8:8", "fifo"}) {
    EXPECT_EQ(svc::parse_queue_spec(bad), std::nullopt) << "'" << bad << "'";
  }
  EXPECT_EQ(QueueSpec{}.to_string(), "block:8");
  EXPECT_EQ((QueueSpec{QueuePolicy::kFlush, 4}).to_string(), "flush:4");
}

TEST(QueueSpec, ResolvesExplicitOverEnvOverDefault) {
  {
    test::ScopedEnv env("CCASTREAM_SVC_QUEUE", "drop:2");
    EXPECT_EQ(svc::resolve_queue_spec(),
              (QueueSpec{QueuePolicy::kDrop, 2}));
    // An explicit spec beats the env var.
    EXPECT_EQ(svc::resolve_queue_spec(QueueSpec{QueuePolicy::kFlush, 3}),
              (QueueSpec{QueuePolicy::kFlush, 3}));
  }
  {
    test::ScopedEnv env("CCASTREAM_SVC_QUEUE", nullptr);
    EXPECT_EQ(svc::resolve_queue_spec(), QueueSpec{});
  }
  {
    // Unparsable env values fall back to the default instead of failing.
    test::ScopedEnv env("CCASTREAM_SVC_QUEUE", "bogus:99");
    EXPECT_EQ(svc::resolve_queue_spec(), QueueSpec{});
  }
}

// --- Ingest/drain lifecycle --------------------------------------------------

TEST(StreamService, LifecycleLatchesDrainsAndStops) {
  Rig rig;
  const auto incs = make_increments(2);
  StreamService s(*rig.g);
  EXPECT_EQ(s.queue_spec(), QueueSpec{});

  // Before any ingest: the seq-0 (pre-stream) snapshot is already latched
  // and queryable.
  const auto initial = s.snapshot();
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(initial->seq(), 0u);
  EXPECT_EQ(initial->num_vertices(), kVertices);
  EXPECT_EQ(initial->num_edges(), 0u);
  EXPECT_EQ(app_word_query(s), oracle_after(incs, 0));

  EXPECT_TRUE(s.submit(incs[0]));
  EXPECT_TRUE(s.submit(incs[1]));
  s.flush();

  const svc::ServiceStats st = s.stats();
  EXPECT_EQ(st.batches_submitted, 2u);
  EXPECT_EQ(st.batches_executed, 2u);
  EXPECT_EQ(st.batches_dropped, 0u);
  EXPECT_EQ(st.ops_executed, incs[0].size() + incs[1].size());
  EXPECT_EQ(st.snapshots_latched, 3u);  // seq 0, 1, 2

  const auto reports = s.batch_reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].seq, 1u);
  EXPECT_EQ(reports[1].seq, 2u);
  EXPECT_GT(reports[0].cycles, 0u);
  EXPECT_EQ(reports[0].edges, incs[0].size());

  s.stop();
  s.stop();  // idempotent
  EXPECT_TRUE(rig.chip.quiescent());
  EXPECT_THROW((void)s.submit(incs[0]), std::logic_error);
}

TEST(StreamService, StopDrainsAcceptedBatchesWithoutFlush) {
  Rig rig;
  const auto incs = make_increments(3);
  {
    StreamService s(*rig.g);
    for (const auto& inc : incs) ASSERT_TRUE(s.submit(inc));
    // Destructor-driven stop: everything accepted still executes.
  }
  EXPECT_TRUE(rig.chip.quiescent());
  std::vector<rt::Word> got;
  for (std::uint64_t v = 0; v < kVertices; ++v) {
    got.push_back(rig.bfs.level_of(*rig.g, v));
  }
  EXPECT_EQ(got, oracle_after(incs, incs.size()));
}

TEST(StreamService, RejectsZeroCapacity) {
  Rig rig;
  EXPECT_THROW(StreamService(*rig.g, {QueueSpec{QueuePolicy::kBlock, 0}}),
               std::invalid_argument);
}

// --- Service-batched == one-shot ---------------------------------------------

TEST(StreamService, BatchedIncrementsMatchOneShotRunExactly) {
  const auto incs = make_increments(4);

  Rig oneshot;
  for (const auto& inc : incs) oneshot.g->stream_increment(inc);
  std::vector<rt::Word> oneshot_levels;
  for (std::uint64_t v = 0; v < kVertices; ++v) {
    oneshot_levels.push_back(oneshot.bfs.level_of(*oneshot.g, v));
  }

  Rig served;
  StreamService s(*served.g);
  for (const auto& inc : incs) ASSERT_TRUE(s.submit(inc));
  s.flush();

  // Cycle-for-cycle: the service pays exactly the one-shot cycles and
  // energy, counter for counter (snapshot latching is host-side only).
  EXPECT_EQ(served.chip.stats(), oneshot.chip.stats());
  EXPECT_EQ(served.chip.energy_pj(), oneshot.chip.energy_pj());

  // Per-batch cycles sum to the chip total.
  std::uint64_t cycles = 0;
  for (const auto& r : s.batch_reports()) cycles += r.cycles;
  EXPECT_EQ(cycles, served.chip.stats().cycles);

  // The latched view carries the identical fixed point and adjacency.
  EXPECT_EQ(app_word_query(s), oneshot_levels);
  const auto view = s.snapshot();
  EXPECT_EQ(view->seq(), incs.size());
  for (std::uint64_t v = 0; v < kVertices; ++v) {
    const auto want = served.g->neighbors(v);
    const auto& got = view->out(v);
    ASSERT_EQ(got.size(), want.size()) << "vertex " << v;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].dst, want[i].first);
      EXPECT_EQ(got[i].weight, want[i].second);
    }
  }
  s.stop();
}

TEST(StreamService, AlgorithmicQueriesMatchOracles) {
  Rig rig;
  const auto incs = make_increments(3);
  StreamService s(*rig.g);
  for (const auto& inc : incs) ASSERT_TRUE(s.submit(inc));
  s.flush();

  base::RefGraph ref(kVertices);
  for (const auto& inc : incs) ref.add_edges(inc);

  svc::QueryRequest req;
  req.kind = svc::QueryKind::kBfs;
  req.source = 0;
  EXPECT_EQ(s.query(req).values, base::bfs_levels(ref, 0));

  req.kind = svc::QueryKind::kSssp;
  EXPECT_EQ(s.query(req).values, base::sssp_distances(ref, 0));

  req.kind = svc::QueryKind::kComponents;
  base::DynamicComponents comps(kVertices);
  for (const auto& inc : incs) comps.apply_increment(inc);
  EXPECT_EQ(s.query(req).values, comps.recompute());

  req.kind = svc::QueryKind::kPagerank;
  const auto pr = s.query(req);
  // The digest stores arcs in fragment-chain order, not insertion order,
  // so the delta-push sums accumulate in a different order: compare with
  // a tolerance instead of bit-exactly.
  const auto want_pr = base::pagerank(ref, req.damping, req.epsilon);
  ASSERT_EQ(pr.ranks.size(), want_pr.size());
  for (std::size_t v = 0; v < want_pr.size(); ++v) {
    EXPECT_NEAR(pr.ranks[v], want_pr[v], 1e-6) << "vertex " << v;
  }

  req.kind = svc::QueryKind::kBfs;
  req.source = kVertices;  // out of range
  EXPECT_THROW((void)s.query(req), std::out_of_range);

  EXPECT_EQ(s.stats().queries_answered, 4u);  // the throwing one answered nothing
  s.stop();
}

// --- Snapshot latching: queries are never torn -------------------------------

TEST(StreamService, QueryDuringQueuedIncrementReturnsLatchedSnapshot) {
  Rig rig;
  const auto incs = make_increments(2);
  StreamService s(*rig.g);

  ASSERT_TRUE(s.submit(incs[0]));
  s.flush();
  ASSERT_EQ(s.snapshot()->seq(), 1u);

  // Park the engine, then submit batch 2: it sits in the queue, and every
  // query keeps answering the batch-1 fixed point — not empty, not a
  // partial batch 2.
  s.pause();
  ASSERT_TRUE(s.submit(incs[1]));
  for (int i = 0; i < 3; ++i) {
    const auto res = app_word_query(s);
    EXPECT_EQ(s.snapshot()->seq(), 1u);
    EXPECT_EQ(res, oracle_after(incs, 1));
  }
  s.resume();
  s.flush();
  EXPECT_EQ(s.snapshot()->seq(), 2u);
  EXPECT_EQ(app_word_query(s), oracle_after(incs, 2));
  s.stop();
}

TEST(StreamService, ConcurrentQueriesAlwaysSeeSomePrefixFixedPoint) {
  Rig rig;
  const auto incs = make_increments(6);
  // Every query must equal the oracle fixed point of exactly the prefix
  // its seq claims — the torn-read detector. Precompute all prefixes.
  std::vector<std::vector<rt::Word>> prefix_oracle;
  for (std::size_t k = 0; k <= incs.size(); ++k) {
    prefix_oracle.push_back(oracle_after(incs, k));
  }

  StreamService s(*rig.g);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        svc::QueryRequest req;
        req.kind = svc::QueryKind::kAppWord;
        req.app_word = apps::StreamingBfs::kLevelWord;
        const svc::QueryResult res = s.query(req);
        ASSERT_LE(res.seq, incs.size());
        // gtest assertions are not thread-safe for output, but a failing
        // EXPECT here still fails the test; keep the hot check cheap.
        EXPECT_EQ(res.values, prefix_oracle[res.seq]) << "seq " << res.seq;
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (const auto& inc : incs) ASSERT_TRUE(s.submit(inc));
  s.flush();
  done.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  s.stop();

  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(s.snapshot()->seq(), incs.size());
  EXPECT_GE(s.stats().queries_answered, checked.load());
}

// --- Backpressure policies ---------------------------------------------------

TEST(StreamService, DropPolicyCountsAndRejectsOverflow) {
  Rig rig;
  const auto incs = make_increments(3);
  StreamService s(*rig.g, {QueueSpec{QueuePolicy::kDrop, 1}});
  s.pause();  // engine parked: the queue fills deterministically

  EXPECT_TRUE(s.submit(incs[0]));    // queue: [0]
  EXPECT_FALSE(s.submit(incs[1]));   // full -> dropped
  EXPECT_FALSE(s.submit(incs[2]));   // still full -> dropped
  EXPECT_EQ(s.stats().batches_dropped, 2u);
  EXPECT_EQ(s.stats().batches_submitted, 1u);

  s.resume();
  s.flush();
  EXPECT_EQ(s.stats().batches_executed, 1u);
  // Only the accepted batch's ops ran.
  EXPECT_EQ(app_word_query(s), oracle_after(incs, 1));
  s.stop();
}

TEST(StreamService, BlockPolicyWaitsForQueueSpace) {
  Rig rig;
  const auto incs = make_increments(2);
  StreamService s(*rig.g, {QueueSpec{QueuePolicy::kBlock, 1}});
  s.pause();
  ASSERT_TRUE(s.submit(incs[0]));  // fills the queue

  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    EXPECT_TRUE(s.submit(incs[1]));  // must block until the engine drains
    second_accepted.store(true, std::memory_order_release);
  });
  // The producer is wedged on the full queue: while the engine stays
  // parked, the submit cannot complete (a buggy non-blocking submit races
  // to true here and fails the check below).
  for (int i = 0; i < 50 && !second_accepted.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(second_accepted.load(std::memory_order_acquire));
  EXPECT_EQ(s.stats().batches_submitted, 1u);

  s.resume();  // engine drains batch 1 -> slot frees -> producer unblocks
  producer.join();
  EXPECT_TRUE(second_accepted.load(std::memory_order_acquire));
  s.flush();
  EXPECT_EQ(s.stats().batches_submitted, 2u);
  EXPECT_EQ(s.stats().batches_executed, 2u);
  EXPECT_EQ(s.stats().batches_dropped, 0u);
  EXPECT_EQ(app_word_query(s), oracle_after(incs, 2));
  s.stop();
}

TEST(StreamService, FlushPolicyQuiescesTheQueueBeforeEnqueueing) {
  Rig rig;
  const auto incs = make_increments(3);
  StreamService s(*rig.g, {QueueSpec{QueuePolicy::kFlush, 2}});
  s.pause();
  ASSERT_TRUE(s.submit(incs[0]));
  ASSERT_TRUE(s.submit(incs[1]));  // queue now at capacity

  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    EXPECT_TRUE(s.submit(incs[2]));  // full -> quiesce first
    third_accepted.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 50 && !third_accepted.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(third_accepted.load(std::memory_order_acquire));

  s.resume();
  producer.join();
  s.flush();
  const svc::ServiceStats st = s.stats();
  EXPECT_EQ(st.flush_waits, 1u);
  EXPECT_EQ(st.batches_submitted, 3u);
  EXPECT_EQ(st.batches_executed, 3u);
  EXPECT_EQ(app_word_query(s), oracle_after(incs, 3));
  s.stop();
}

// --- Engine failure propagation ----------------------------------------------

TEST(StreamService, EngineFailureRethrowsOnCallerThread) {
  // Deletes on a rhizomed graph are a structured streaming-layer error
  // (graph::DeletionRhizomeError); raised on the engine thread, it must
  // surface on the next client call, and the service must stay joinable.
  Rig rig(kVertices, /*rhizomes=*/2);
  StreamService s(*rig.g);
  ASSERT_TRUE(s.submit({make_insert_edge(0, 1), make_insert_edge(1, 2)}));
  s.flush();

  ASSERT_TRUE(s.submit({make_delete_edge(0, 1)}));
  EXPECT_THROW(s.flush(), graph::DeletionRhizomeError);
  EXPECT_THROW((void)s.submit({make_insert_edge(2, 3)}),
               graph::DeletionRhizomeError);
  // The last good snapshot is still queryable.
  EXPECT_EQ(s.snapshot()->seq(), 1u);
  s.stop();
}

// --- Seeded concurrent soak (CCASTREAM_STRESS=1) -----------------------------

TEST(StreamService, StressSoakAgainstOracle) {
  if (const char* flag = std::getenv("CCASTREAM_STRESS");
      flag == nullptr || std::string(flag) != "1") {
    GTEST_SKIP() << "set CCASTREAM_STRESS=1 to run the service soak";
  }
  // A longer windowed schedule (inserts + expiry deletions) streamed
  // through the service while reader threads hammer queries — checked
  // against the per-prefix oracle at every answer, on a 4-thread chip with
  // the active-set engine (the production configuration).
  auto sched = wl::make_graphchallenge_like(kVertices, 4'000,
                                            wl::SamplingKind::kEdge,
                                            /*increments=*/12, kSeed);
  sched = wl::apply_sliding_window(sched, /*window=*/3, /*drain=*/true);
  const auto& incs = sched.increments;

  std::vector<base::RefGraph> prefix_ref;
  prefix_ref.emplace_back(kVertices);
  for (const auto& inc : incs) {
    base::RefGraph next = prefix_ref.back();
    next.add_edges(inc);  // mixed-op batch: deletes first, like the chip
    prefix_ref.push_back(std::move(next));
  }
  std::vector<std::vector<rt::Word>> prefix_oracle;
  for (const auto& ref : prefix_ref) {
    std::vector<rt::Word> want = base::bfs_levels(ref, 0);
    for (auto& w : want) {
      if (w == base::kUnreached) w = apps::StreamingBfs::kUnreached;
    }
    prefix_oracle.push_back(std::move(want));
  }

  Rig rig(kVertices, /*rhizomes=*/1, /*threads=*/4, sim::EngineKind::kActive);
  StreamService s(*rig.g, {QueueSpec{QueuePolicy::kBlock, 2}});
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> checked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        svc::QueryRequest req;
        req.kind = svc::QueryKind::kAppWord;
        req.app_word = apps::StreamingBfs::kLevelWord;
        const svc::QueryResult res = s.query(req);
        ASSERT_LT(res.seq, prefix_oracle.size());
        EXPECT_EQ(res.values, prefix_oracle[res.seq]) << "seq " << res.seq;
        checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (const auto& inc : incs) ASSERT_TRUE(s.submit(inc));
  s.flush();
  done.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_GT(checked.load(), 0u);
  EXPECT_EQ(s.stats().batches_executed, incs.size());
  EXPECT_EQ(app_word_query(s), prefix_oracle.back());
  s.stop();
}

}  // namespace
}  // namespace ccastream
