// Unit tests: the router port ring-buffer FIFO.
#include <gtest/gtest.h>

#include "sim/fifo.hpp"

namespace ccastream::sim {
namespace {

TEST(Fifo, StartsEmpty) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.capacity(), 4u);
  EXPECT_TRUE(f.has_room());
}

TEST(Fifo, FifoOrder) {
  Fifo<int> f(4);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.front(), 1);
  f.pop();
  EXPECT_EQ(f.front(), 2);
  f.pop();
  f.push(4);
  EXPECT_EQ(f.front(), 3);
  f.pop();
  EXPECT_EQ(f.front(), 4);
}

TEST(Fifo, FullReportsNoRoom) {
  Fifo<int> f(2);
  f.push(1);
  EXPECT_TRUE(f.has_room());
  f.push(2);
  EXPECT_FALSE(f.has_room());
  f.pop();
  EXPECT_TRUE(f.has_room());
}

TEST(Fifo, WrapsAroundManyTimes) {
  Fifo<int> f(3);
  for (int i = 0; i < 100; ++i) {
    f.push(i);
    EXPECT_EQ(f.front(), i);
    f.pop();
  }
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, InterleavedWrap) {
  Fifo<int> f(3);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    while (f.has_room()) f.push(next_in++);
    while (!f.empty()) {
      EXPECT_EQ(f.front(), next_out++);
      f.pop();
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(Fifo, SetCapacityOnEmpty) {
  Fifo<int> f;
  EXPECT_EQ(f.capacity(), 0u);
  EXPECT_FALSE(f.has_room());
  f.set_capacity(5);
  EXPECT_EQ(f.capacity(), 5u);
  for (int i = 0; i < 5; ++i) f.push(i);
  EXPECT_FALSE(f.has_room());
}

TEST(Fifo, ClearEmptiesButKeepsCapacity) {
  Fifo<int> f(3);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.capacity(), 3u);
  f.push(9);
  EXPECT_EQ(f.front(), 9);
}

}  // namespace
}  // namespace ccastream::sim
