// Unit tests: the router port ring-buffer FIFO — ordering/wrap behaviour
// plus the always-on misuse guards (push-on-full, pop-on-empty,
// resize-nonempty abort in every build type, not just debug; see the
// header comment in sim/fifo.hpp).
#include <gtest/gtest.h>

#include "sim/fifo.hpp"

namespace ccastream::sim {
namespace {

TEST(Fifo, StartsEmpty) {
  Fifo<int> f(4);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_EQ(f.capacity(), 4u);
  EXPECT_TRUE(f.has_room());
}

TEST(Fifo, FifoOrder) {
  Fifo<int> f(4);
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.front(), 1);
  f.pop();
  EXPECT_EQ(f.front(), 2);
  f.pop();
  f.push(4);
  EXPECT_EQ(f.front(), 3);
  f.pop();
  EXPECT_EQ(f.front(), 4);
}

TEST(Fifo, FullReportsNoRoom) {
  Fifo<int> f(2);
  f.push(1);
  EXPECT_TRUE(f.has_room());
  f.push(2);
  EXPECT_FALSE(f.has_room());
  f.pop();
  EXPECT_TRUE(f.has_room());
}

TEST(Fifo, WrapsAroundManyTimes) {
  Fifo<int> f(3);
  for (int i = 0; i < 100; ++i) {
    f.push(i);
    EXPECT_EQ(f.front(), i);
    f.pop();
  }
  EXPECT_TRUE(f.empty());
}

TEST(Fifo, InterleavedWrap) {
  Fifo<int> f(3);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    while (f.has_room()) f.push(next_in++);
    while (!f.empty()) {
      EXPECT_EQ(f.front(), next_out++);
      f.pop();
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(Fifo, SetCapacityOnEmpty) {
  Fifo<int> f;
  EXPECT_EQ(f.capacity(), 0u);
  EXPECT_FALSE(f.has_room());
  f.set_capacity(5);
  EXPECT_EQ(f.capacity(), 5u);
  for (int i = 0; i < 5; ++i) f.push(i);
  EXPECT_FALSE(f.has_room());
}

TEST(Fifo, ClearEmptiesButKeepsCapacity) {
  Fifo<int> f(3);
  f.push(1);
  f.push(2);
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.capacity(), 3u);
  f.push(9);
  EXPECT_EQ(f.front(), 9);
}

// The misuse guards are fatal_misuse-based rather than assert-based so
// that the contract — callers gate on has_room()/empty() — holds in
// Release builds too (NDEBUG compiles assert out). Each death test pins
// both the abort and the diagnostic naming the violated contract.
using FifoDeathTest = ::testing::Test;

TEST(FifoDeathTest, PushOnFullAborts) {
  Fifo<int> f(1);
  f.push(7);
  EXPECT_DEATH(f.push(8), "fatal misuse: Fifo::push on a full FIFO");
}

TEST(FifoDeathTest, PushOnZeroCapacityAborts) {
  Fifo<int> f;
  EXPECT_DEATH(f.push(1), "fatal misuse: Fifo::push on a full FIFO");
}

TEST(FifoDeathTest, PopOnEmptyAborts) {
  Fifo<int> f(2);
  EXPECT_DEATH(f.pop(), "fatal misuse: Fifo::pop on an empty FIFO");
}

TEST(FifoDeathTest, PopAfterDrainAborts) {
  Fifo<int> f(2);
  f.push(1);
  f.pop();
  EXPECT_DEATH(f.pop(), "fatal misuse: Fifo::pop on an empty FIFO");
}

TEST(FifoDeathTest, SetCapacityOnNonEmptyAborts) {
  Fifo<int> f(2);
  f.push(1);
  EXPECT_DEATH(f.set_capacity(8),
               "fatal misuse: Fifo::set_capacity on a non-empty FIFO");
}

}  // namespace
}  // namespace ccastream::sim
